# Convenience wrapper around dune. `make check` is the one-stop gate:
# full build plus the whole test suite (unit, property, durability
# matrix, bench golden files).

DUNE ?= dune

.PHONY: all check test bench bench-smoke fmt clean

all:
	$(DUNE) build @all

check: all
	$(DUNE) runtest

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe -- --fast

# CI-sized bench run: short timing quotas, hard wall-clock cap so a
# regression can never hang the pipeline.
bench-smoke:
	timeout 600 $(DUNE) exec bench/main.exe -- --fast

# No-op when ocamlformat is not installed; otherwise rewrites in place.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping"; \
	fi

clean:
	$(DUNE) clean
