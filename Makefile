# Convenience wrapper around dune. `make check` is the one-stop gate:
# full build plus the whole test suite (unit, property, durability
# matrix, bench golden files).

DUNE ?= dune

.PHONY: all check test bench bench-smoke metrics-demo analyze-demo session-demo constraints-demo monitor-demo semantics-demo index-demo fmt clean

all:
	$(DUNE) build @all

check: all
	$(DUNE) runtest

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe -- --fast

# CI-sized bench run: short timing quotas, hard wall-clock cap so a
# regression can never hang the pipeline. Includes the E19 gate on
# disabled-instrumentation overhead and the E20 gates on parallel
# parity/speedup and dispatch overhead (exit 1 on violation). Runs on
# a 4-domain pool so the parallel code paths are actually exercised.
bench-smoke:
	NULLREL_DOMAINS=4 timeout 600 $(DUNE) exec bench/main.exe -- --fast

# Observability end to end on a sample workload: run a governed query
# with tracing on, dump the metrics registry, and print it.
metrics-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf 'S#,P#\ns1,p1\ns2,p1\ns3,p2\ns4,-\n' > "$$tmp/ps.csv"; \
	$(DUNE) exec bin/nullrel_cli.exe -- query \
	  --timeout 10 --max-tuples 100000 \
	  --metrics-file "$$tmp/metrics.prom" --trace \
	  --rel "PS=$$tmp/ps.csv" \
	  'range of p is PS retrieve (p.S#) where p.P# = "p1"'; \
	echo; echo "--- $$tmp/metrics.prom ---"; cat "$$tmp/metrics.prom"

# Statistics end to end on a sample database: load it into the shell,
# run .analyze, list the stats catalog, and show a plan costed with
# the collected statistics. Exercised by CI at 1 and 4 domains so the
# governed analyze scan runs through both kernel strategies.
analyze-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf 'S#,P#\ns1,p1\ns2,p1\ns3,p2\ns4,-\n' > "$$tmp/ps.csv"; \
	printf 'S#,CITY\ns1,london\ns2,paris\ns3,-\n' > "$$tmp/s.csv"; \
	{ printf '.load PS %s/ps.csv\n' "$$tmp"; \
	  printf '.load S %s/s.csv\n' "$$tmp"; \
	  printf '.analyze\n.stats-catalog\n'; \
	  printf '.plan range of p is PS range of s is S retrieve (s.CITY) where p.S# = s.S# and p.P# = "p1"\n'; \
	  printf '.quit\n'; } | \
	$(DUNE) exec bin/nullrel_cli.exe -- repl

# The session layer end to end: two sessions race a write-write
# hotspot on overlapping snapshots — one group batch, a conflict, a
# retry — then a contended load drive over real domains. Exercised by
# CI at 1 and 4 domains so the commit path runs both inline and truly
# concurrent.
session-demo:
	$(DUNE) build bin/nullrel_cli.exe
	$(DUNE) exec bin/nullrel_cli.exe -- sessions --demo
	$(DUNE) exec bin/nullrel_cli.exe -- sessions --sessions 2 --txns 25 --conflict-every 3

# Constraints end to end: two relations under a foreign key, a
# cascading delete chains through both, then a restrict declaration
# blocks the same delete (the CLI must exit 10 on that). Exercised by
# CI at 1 and 4 domains like the other demos.
constraints-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf 'K,V\n1,10\n2,20\n' > "$$tmp/t.csv"; \
	printf 'F,W\n1,5\n2,6\n' > "$$tmp/r.csv"; \
	echo "--- cascade: deleting T(K=1) chains into R ---"; \
	$(DUNE) exec bin/nullrel_cli.exe -- dml --dir "$$tmp/cascade" \
	  --load "T=$$tmp/t.csv" --load "R=$$tmp/r.csv" \
	  'constrain fk R (F) to T (K) on delete cascade as fkr' \
	  'range of v is T delete v where v.K = 1' \
	  'range of v is R retrieve (v.F, v.W)' || exit 1; \
	echo "--- restrict: the same delete must be refused (exit 10) ---"; \
	$(DUNE) exec bin/nullrel_cli.exe -- dml --dir "$$tmp/restrict" \
	  --load "T=$$tmp/t.csv" --load "R=$$tmp/r.csv" \
	  'constrain fk R (F) to T (K) on delete restrict as fkr' \
	  'range of v is T delete v where v.K = 1'; \
	status=$$?; \
	if [ $$status -ne 10 ]; then \
	  echo "expected exit 10 from the restricted delete, got $$status"; exit 1; \
	fi; \
	echo "restricted delete refused with exit 10, as declared"

# The system catalog end to end: turn the flight recorder on, run a
# session workload and a governed join, render the .monitor top view,
# then answer the observability questions as plain Quel over sys_* —
# stale stats from sys_relations, p99 commit latency from
# sys_metrics_history, and a join of sys_sessions against the history
# ring. Greps assert the stale verdict and the p99 series actually
# appeared. Exercised by CI at 1 and 4 domains.
monitor-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf 'S#,P#\ns1,p1\ns2,p1\ns3,p2\ns4,-\n' > "$$tmp/ps.csv"; \
	{ printf '.monitor on\n'; \
	  printf '.load PS %s/ps.csv\n' "$$tmp"; \
	  printf '.analyze PS\n'; \
	  printf 'append to PS (S# = "s5", P# = "p2")\n'; \
	  printf '.session %s/demo\n' "$$tmp"; \
	  printf 'range of p is PS range of q is PS retrieve (p.S#, q.S#) where p.P# = q.P#\n'; \
	  printf '.monitor 4\n'; \
	  printf 'range of r is sys_relations retrieve (r.NAME, r.STATS) where r.STATS = "stale" or r.UNVERIFIED > 0\n'; \
	  printf 'range of h is sys_metrics_history retrieve (h.SEQ, h.VALUE) where h.NAME = "nullrel_session_commit_us_p99"\n'; \
	  printf 'range of s is sys_sessions range of h is sys_metrics_history retrieve (s.SID, s.STATE, h.NAME, h.VALUE) where h.NAME = "nullrel_session_commits_total"\n'; \
	  printf '.quit\n'; } | \
	$(DUNE) exec bin/nullrel_cli.exe -- repl | tee "$$tmp/out.txt"; \
	grep -q 'commit_p99_us' "$$tmp/out.txt" || { echo "monitor view missing its p99 column"; exit 1; }; \
	grep -q 'stale' "$$tmp/out.txt" || { echo "sys_relations query missed the stale verdict"; exit 1; }

# The semantics dialects end to end: the differential harness checks
# the containment lattice on generated queries (exit 1 on any oracle
# failure), the shell switches dialects mid-session and must print a
# MAYBE band plus the SEMANTICS column of sys_sessions, and the CLI
# answers the same query under --semantics sql with an UNKNOWN band.
# Exercised by CI at 1 and 4 domains like the other demos.
semantics-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(DUNE) exec bin/nullrel_cli.exe -- semantics --queries 300 \
	  | tee "$$tmp/diff.txt"; \
	grep -q 'containment lattice: ok' "$$tmp/diff.txt" || { \
	  echo "differential harness failed"; exit 1; }; \
	printf 'S#,P#\ns1,p1\ns2,p1\ns3,p2\ns4,-\n' > "$$tmp/ps.csv"; \
	{ printf '.load PS %s/ps.csv\n' "$$tmp"; \
	  printf '.semantics\n.semantics codd\n'; \
	  printf 'range of p is PS retrieve (p.S#) where p.P# = "p1"\n'; \
	  printf '.semantics certain\n'; \
	  printf 'range of p is PS retrieve (p.S#, p.P#)\n'; \
	  printf 'range of s is sys_sessions retrieve (s.SID, s.SEMANTICS)\n'; \
	  printf '.quit\n'; } | \
	$(DUNE) exec bin/nullrel_cli.exe -- repl | tee "$$tmp/shell.txt"; \
	grep -q 'MAYBE band' "$$tmp/shell.txt" || { \
	  echo "shell did not print the MAYBE band under codd"; exit 1; }; \
	grep -q 'SEMANTICS' "$$tmp/shell.txt" || { \
	  echo "sys_sessions did not report the SEMANTICS column"; exit 1; }; \
	grep -q 'certain' "$$tmp/shell.txt" || { \
	  echo "the certain dialect never round-tripped"; exit 1; }; \
	$(DUNE) exec bin/nullrel_cli.exe -- query --semantics sql \
	  --rel "PS=$$tmp/ps.csv" \
	  'range of p is PS retrieve (p.S#) where p.P# = "p1"' \
	  | tee "$$tmp/cli.txt"; \
	grep -q 'UNKNOWN band' "$$tmp/cli.txt" || { \
	  echo "--semantics sql did not print the UNKNOWN band"; exit 1; }

# Secondary indexes end to end: declare a hash index, watch an
# equi-join get served by probes (the probe-equijoin operator in
# .stats), append through the index (it advances in place rather than
# rebuilding), then save and reopen the directory — the persisted dump
# must re-attach under its CRC stamp with the appended tuple counted.
# Exercised by CI at 1 and 4 domains like the other demos.
index-demo:
	$(DUNE) build bin/nullrel_cli.exe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf 'ENAME,EDEPT\nanne,toys\nbert,toys\ncarl,candy\ndora,-\nerik,candy\nfred,toys\ngina,books\n' > "$$tmp/emp.csv"; \
	printf 'DDEPT,LOC\ntoys,london\ncandy,paris\nbooks,oslo\n' > "$$tmp/dept.csv"; \
	{ printf '.load EMP %s/emp.csv\n' "$$tmp"; \
	  printf '.load DEPT %s/dept.csv\n' "$$tmp"; \
	  printf '.index DEPT hash DDEPT\n.indexes\n'; \
	  printf '.trace on\n'; \
	  printf 'range of e is EMP range of d is DEPT retrieve (e.ENAME, d.LOC) where e.EDEPT = d.DDEPT\n'; \
	  printf '.stats\n'; \
	  printf 'append to DEPT (DDEPT = "it", LOC = "zurich")\n'; \
	  printf '.indexes\n'; \
	  printf '.save %s/db\n' "$$tmp"; \
	  printf '.quit\n'; } | \
	$(DUNE) exec bin/nullrel_cli.exe -- repl | tee "$$tmp/out.txt"; \
	grep -q 'probe-equijoin' "$$tmp/out.txt" || { \
	  echo "the equi-join was not served by index probes"; exit 1; }; \
	grep -q '4 tuples indexed' "$$tmp/out.txt" || { \
	  echo "the append did not advance the declared index"; exit 1; }; \
	{ printf '.open %s/db\n.indexes\n.quit\n' "$$tmp"; } | \
	$(DUNE) exec bin/nullrel_cli.exe -- repl | tee "$$tmp/reopen.txt"; \
	grep -q 'DEPT hash(DDEPT) -- 4 tuples indexed' "$$tmp/reopen.txt" || { \
	  echo "the persisted index did not survive the reopen"; exit 1; }; \
	! grep -q 'problems found' "$$tmp/reopen.txt" || { \
	  echo "reopen reported problems"; exit 1; }; \
	echo "index demo ok: probes served the join and the dump re-attached"

# No-op when ocamlformat is not installed; otherwise rewrites in place.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping"; \
	fi

clean:
	$(DUNE) clean
