(* The full spectrum of answers to one query over incomplete data
   (Section 5): the sure lower bound ||Q||- (the paper's choice), Codd's
   MAYBE rows, the "unknown"-interpretation lower bound (with tautology
   detection), and the possible-worlds upper bound ||Q||+.

   Run with: dune exec examples/query_bounds.exe *)

open Nullrel

let printf = Format.printf
let i n = Value.Int n
let s x = Value.Str x
let t = Tuple.of_strings

let schema =
  Schema.make "SENSOR" ~key:[ "ID" ]
    [
      ("ID", Domain.Ints);
      ("SITE", Domain.Enum [ "north"; "south" ]);
      ("TEMP", Domain.Int_range (-20, 60));
    ]

let readings =
  Xrel.of_list
    [
      t [ ("ID", i 1); ("SITE", s "north"); ("TEMP", i 31) ];
      t [ ("ID", i 2); ("SITE", s "north"); ("TEMP", i 18) ];
      t [ ("ID", i 3); ("SITE", s "south") ];
      (* temperature not reported *)
      t [ ("ID", i 4); ("TEMP", i 35) ];
      (* site not reported *)
      t [ ("ID", i 5) ];
      (* nothing but the id *)
    ]

let db : Quel.Resolve.db = [ ("SENSOR", (schema, readings)) ]

let show title (result : Quel.Eval.result) =
  printf "%a@."
    (Pp.table ~title result.Quel.Eval.attrs)
    result.Quel.Eval.rel

let () =
  printf "%a@." (Pp.table_of_schema schema) readings;

  let src = "range of r is SENSOR retrieve (r.ID) where r.TEMP > 30" in
  printf "query: %s@.@." src;
  let q = Quel.Parser.parse src in

  show "||Q||- : hot for sure (the paper's answer)" (Quel.Eval.run db q);
  show "MAYBE rows (Codd): temperature unknown" (Quel.Eval.run_maybe db q);
  show "||Q||+ : cannot be ruled out" (Quel.Eval.run_upper db q);

  (* A tautologous qualification separates the interpretations. *)
  let taut = "range of r is SENSOR retrieve (r.ID) \
              where r.TEMP <= 30 or r.TEMP > 30" in
  printf "query: %s@.@." taut;
  let qt = Quel.Parser.parse taut in
  show "||Q||- under ni: unreported TEMP still excluded"
    (Quel.Eval.run db qt);
  show "unknown interpretation: every sensor that HAS a temperature"
    (Quel.Eval.run_unknown db qt);
  printf
    "The ni bound treats the unreported TEMP as possibly nonexistent, so@.";
  printf
    "even a tautology does not qualify it; the unknown interpretation@.";
  printf "must detect the tautology (Appendix) to include it.@."
