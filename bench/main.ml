(* The reproduction harness.

   One section per experiment of DESIGN.md's index: E1-E6 and E9-E10
   regenerate the paper's tables, figures and worked examples (symbolic
   results, checked against the paper's printed answers); E7 and E8 turn
   the paper's complexity claims into measured series (Bechamel).

   Run with: dune exec bench/main.exe            (full run)
             dune exec bench/main.exe -- --fast  (shorter timing quotas)
             dune exec bench/main.exe -- --skip-timings *)

open Nullrel
open Paperdata.Fixtures

let printf = Format.printf

let section id title =
  printf "@.=================================================================@.";
  printf "%s | %s@." id title;
  printf "=================================================================@."

let verdict label ok expected =
  printf "  [%s] %s (paper: %s)@." (if ok then "OK" else "DEVIATION") label
    expected

let show_table ?title attrs x = printf "%a" (Pp.table_s ?title attrs) x

(* ---------------------------------------------------------------- *)

let e1 () =
  section "E1" "Tables I and II: schema evolution, no information change";
  show_table ~title:"Table I: EMP(E#, NAME, SEX, MGR#)"
    [ "E#"; "NAME"; "SEX"; "MGR#" ]
    emp;
  let table2 =
    Xrel.of_list
      (List.map (fun r -> Tuple.set r (Attr.make "TEL#") Value.Null)
         (Xrel.to_list emp))
  in
  show_table ~title:"Table II: EMP(E#, NAME, SEX, MGR#, TEL#)"
    [ "E#"; "NAME"; "SEX"; "MGR#"; "TEL#" ]
    table2;
  verdict "Table I and Table II are information-wise equivalent"
    (Xrel.equal emp table2) "equivalent (Section 2)"

(* ---------------------------------------------------------------- *)

let e2 () =
  section "E2" "Table III: the three-valued logic tables";
  let cell v = Printf.sprintf "%-5s" (Tvl.to_string v) in
  let header = String.concat " " (List.map cell Tvl.all) in
  printf "  AND   | %s@." header;
  List.iter
    (fun a ->
      printf "  %s | %s@." (cell a)
        (String.concat " " (List.map (fun b -> cell (Tvl.and_ a b)) Tvl.all)))
    Tvl.all;
  printf "  OR    | %s@." header;
  List.iter
    (fun a ->
      printf "  %s | %s@." (cell a)
        (String.concat " " (List.map (fun b -> cell (Tvl.or_ a b)) Tvl.all)))
    Tvl.all;
  printf "  NOT   |@.";
  List.iter
    (fun a -> printf "  %s | %s@." (cell a) (cell (Tvl.not_ a)))
    Tvl.all;
  verdict "tables match Table III (Kleene tables, ni absorbing)"
    Tvl.(
      equal (and_ True Ni) Ni && equal (or_ False Ni) Ni
      && equal (not_ Ni) Ni && equal (and_ False Ni) False
      && equal (or_ True Ni) True)
    "same tables, ni in place of MAYBE"

(* ---------------------------------------------------------------- *)

let e3 () =
  section "E3"
    "Displays (1.1)/(1.2): set comparisons -- Codd's 3VL vs this paper";
  show_table ~title:"PS'(P#, S#)  -- display (1.1)" [ "P#"; "S#" ] ps';
  show_table ~title:"PS''(P#, S#) -- display (1.2)" [ "P#"; "S#" ] ps'';
  let e_ps' = Codd.Maybe_algebra.Rel (Relation.of_list ps'_tuples) in
  let e_ps'' = Codd.Maybe_algebra.Rel (Relation.of_list ps''_tuples) in
  let scope = Attr.set_of_list [ "P#"; "S#" ] in
  let codd_contains a b =
    Codd.Maybe_algebra.contains3 ~domains:ps_small_domains ~scope a b
  in
  let codd_equal a b =
    Codd.Maybe_algebra.equal3 ~domains:ps_small_domains ~scope a b
  in
  let ours_bool b = if b then "TRUE" else "FALSE" in
  let row expr codd ours expected =
    printf "  %-22s  codd: %-6s  ours: %-6s  expected: %s@." expr
      (Tvl.to_string_maybe codd) ours expected
  in
  printf "  expression              Codd 3VL      ours          set theory@.";
  row "PS'' >= PS'"
    (codd_contains e_ps'' e_ps')
    (ours_bool (Xrel.contains ps'' ps'))
    "TRUE";
  row "PS' u PS'' >= PS'"
    (codd_contains (Codd.Maybe_algebra.Union (e_ps', e_ps'')) e_ps')
    (ours_bool (Xrel.contains (Xrel.union ps' ps'') ps'))
    "TRUE";
  row "PS' n PS'' <= PS'"
    (codd_contains e_ps' (Codd.Maybe_algebra.Inter (e_ps', e_ps'')))
    (ours_bool (Xrel.contains ps' (Xrel.inter ps' ps'')))
    "TRUE";
  row "PS' = PS'" (codd_equal e_ps' e_ps') (ours_bool (Xrel.equal ps' ps'))
    "TRUE";
  row "PS' = PS''" (codd_equal e_ps' e_ps'')
    (ours_bool (Xrel.equal ps' ps''))
    "FALSE";
  verdict
    "Codd's comparisons degrade to MAYBE; ours give the expected answers"
    (Tvl.equal (codd_contains e_ps'' e_ps') Tvl.Ni
    && Xrel.contains ps'' ps' && Xrel.equal ps' ps'
    && not (Xrel.equal ps' ps''))
    "Section 1 discussion";
  printf
    "  note: the paper asserts PS' = PS'' is MAYBE under Codd's rules; the@.";
  printf
    "  strict substitution principle yields FALSE (cardinalities can never@.";
  printf "  match). Recorded as deviation D1 in EXPERIMENTS.md.@."

(* ---------------------------------------------------------------- *)

let qa_db : Quel.Resolve.db = [ ("EMP", (emp_schema_finite_tel, emp)) ]

let e4 () =
  section "E4" "Figure 1 (query QA): ni vs unknown interpretation";
  printf "%s@.@." qa_verbatim;
  let names result =
    match Xrel.to_list result.Quel.Eval.rel with
    | [] -> "(no tuples)"
    | rows ->
        String.concat ", "
          (List.map
             (fun r -> Value.to_string (Tuple.get r (Attr.make "NAME")))
             rows)
  in
  let ni_result = Quel.Eval.run qa_db (Quel.Parser.parse qa_verbatim) in
  printf "  ni lower bound ||QA||-           : %s@." (names ni_result);
  let unknown_verbatim =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force qa_db
      (Quel.Parser.parse qa_verbatim)
  in
  printf "  unknown interpretation, verbatim : %s   (gap at TEL# = 2634000)@."
    (names unknown_verbatim);
  let unknown_adjusted =
    Quel.Eval.run_unknown qa_db (Quel.Parser.parse qa_adjusted)
  in
  printf "  unknown interpretation, >= form  : %s@." (names unknown_adjusted);
  let maybe_result = Quel.Eval.run_maybe qa_db (Quel.Parser.parse qa_verbatim) in
  printf
    "  Codd MAYBE retrieval             : %s   (low selectivity: every \
     null-TEL# row)@."
    (names maybe_result);
  verdict
    "ni evaluation excludes BROWN without tautology detection; the unknown \
     interpretation must detect the tautology to include her"
    (Xrel.is_empty ni_result.Quel.Eval.rel
    && names unknown_adjusted = "BROWN")
    "Section 5, Figure 1"

(* ---------------------------------------------------------------- *)

let e5 () =
  section "E5" "Section 6: division under nulls (display (6.6))";
  show_table ~title:"PS(S#, P#) -- display (6.6), all seven rows"
    [ "S#"; "P#" ]
    (Xrel.unsafe_of_minimal ps_rel);
  let y = Attr.set_of_list [ "S#" ] in
  let sel_s2 = Predicate.cmp_const "S#" Predicate.Eq (s "s2") in
  let p_only = Attr.set_of_list [ "P#" ] in
  let codd_ps2 =
    Codd.Maybe_algebra.(project p_only (select_true sel_s2 ps_rel))
  in
  let codd_ps2_maybe =
    Codd.Maybe_algebra.(project p_only (select_maybe sel_s2 ps_rel))
  in
  let ours_ps2 = Algebra.project p_only (Algebra.select sel_s2 ps) in
  let rel_to_string r =
    let cells =
      List.map
        (fun tu ->
          if Tuple.is_null_tuple tu then "-"
          else Value.to_string (Tuple.get tu (Attr.make "P#")))
        (Relation.to_list r)
    in
    "{" ^ String.concat ", " cells ^ "}"
  in
  let srel_to_string r =
    let cells =
      List.map
        (fun tu -> Value.to_string (Tuple.get tu (Attr.make "S#")))
        (Relation.to_list r)
    in
    "{" ^ String.concat ", " cells ^ "}"
  in
  printf "  Ps2, Codd TRUE select  : %s   (paper: {p1, -})@."
    (rel_to_string codd_ps2);
  printf "  Ps2, Codd MAYBE select : %s   (paper: empty)@."
    (rel_to_string codd_ps2_maybe);
  printf "  Ps2, ours (minimal)    : %s   (equivalent to {p1, -})@."
    (rel_to_string (Xrel.rep ours_ps2));
  let a1 = Codd.Maybe_algebra.divide_true ~y ps_rel codd_ps2 in
  let a2 = Codd.Maybe_algebra.divide_maybe ~y ps_rel codd_ps2 in
  let a3 = Algebra.divide y ps ours_ps2 in
  printf "  A1 (Codd TRUE division)  : %s   (paper: no supplier)@."
    (srel_to_string a1);
  printf "  A2 (Codd MAYBE division) : %s   (paper: {s1, s2, s3})@."
    (srel_to_string a2);
  printf "  A3 (our division)        : %s   (paper: {s1, s2})@."
    (srel_to_string (Xrel.rep a3));
  let q4 =
    Xrel.diff
      (Algebra.project p_only
         (Algebra.select_ak (Attr.make "S#") Predicate.Eq (s "s1") ps))
      (Algebra.project p_only
         (Algebra.select_ak (Attr.make "S#") Predicate.Eq (s "s2") ps))
  in
  printf "  Q4: parts by s1 not s2   : %s   (paper: {p2})@."
    (rel_to_string (Xrel.rep q4));
  let expected_a3 = Xrel.of_list [ t [ ("S#", s "s1") ]; t [ ("S#", s "s2") ] ] in
  verdict "A1, A2, A3 and Q4 match the paper's printed answers"
    (Relation.is_empty a1
    && Relation.cardinal a2 = 3
    && Xrel.equal a3 expected_a3
    && Xrel.equal q4 (Xrel.of_list [ t [ ("P#", s "p2") ] ]))
    "Section 6 worked example"

(* ---------------------------------------------------------------- *)

let qb_schema =
  Schema.make "EMP"
    [
      ("E#", Domain.Int_range (1000, 3000));
      ("NAME", Domain.Strings);
      ("SEX", Domain.Enum [ "M"; "F" ]);
      ("MGR#", Domain.Int_range (1000, 3000));
    ]

let qb_emp =
  Xrel.of_list
    [
      t [ ("E#", i 2235); ("NAME", s "BOSS"); ("SEX", s "M"); ("MGR#", i 1255) ];
      t [ ("E#", i 1255); ("NAME", s "CHIEF"); ("SEX", s "M") ];
      t [ ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M"); ("MGR#", i 2235) ];
      t [ ("NAME", s "DOE"); ("SEX", s "F"); ("MGR#", i 2235) ];
    ]

let qb_db : Quel.Resolve.db = [ ("EMP", (qb_schema, qb_emp)) ]

let qb_legal r =
  let get name = Tuple.get r (Attr.make name) in
  let distinct a b =
    match (get a, get b) with
    | Value.Int x, Value.Int y -> x <> y
    | _ -> true
  in
  distinct "e.E#" "e.MGR#" && distinct "e.E#" "m.MGR#"
  && distinct "m.E#" "m.MGR#"

let e6 () =
  section "E6" "Figure 2 (query QB): schema constraints and tautologies";
  printf "%s@.@." qb;
  show_table ~title:"EMP (with a marked-null-style DOE and unknown MGR# for CHIEF)"
    [ "E#"; "NAME"; "SEX"; "MGR#" ]
    qb_emp;
  let names result =
    match Xrel.to_list result.Quel.Eval.rel with
    | [] -> "(no tuples)"
    | rows ->
        String.concat ", "
          (List.sort compare
             (List.map
                (fun r -> Value.to_string (Tuple.get r (Attr.make "NAME")))
                rows))
  in
  let parsed = Quel.Parser.parse qb in
  let ni_result = Quel.Eval.run qb_db parsed in
  printf "  ni lower bound                     : %s@." (names ni_result);
  let unconstrained =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force qb_db parsed
  in
  printf "  unknown, no integrity constraints  : %s@." (names unconstrained);
  let constrained = Quel.Eval.run_unknown ~legal:qb_legal qb_db parsed in
  printf "  unknown, with schema constraints   : %s@." (names constrained);
  verdict
    "correct unknown-evaluation of QB requires interpreting the schema's \
     semantic constraints; ni evaluation does not"
    (names ni_result = "SMITH"
    && names unconstrained = "SMITH"
    && names constrained = "BOSS, DOE, SMITH")
    "Appendix discussion of QB"

(* ---------------------------------------------------------------- *)

let e9 () =
  section "E9" "Section 7: the lattice of x-relations";
  let tiny =
    [
      (Attr.make "A", Domain.Enum [ "a1" ]);
      (Attr.make "B", Domain.Enum [ "b1"; "b2" ]);
    ]
  in
  let r1 = Xrel.of_list [ t [ ("A", s "a1"); ("B", s "b1") ] ] in
  let r2 = Xrel.of_list [ t [ ("A", s "a1"); ("B", s "b2") ] ] in
  printf "  U = {A, B}, DOM(A) = {a1}, DOM(B) = {b1, b2}@.";
  printf "  R1 = {(a1, b1)}   R2 = {(a1, b2)}@.";
  printf "  set intersection  R1 n R2 : %a@." Xrel.pp
    (Xrel.set_inter_total r1 r2);
  printf "  x-intersection    R1 n R2 : %a@." Xrel.pp (Xrel.inter r1 r2);
  let star = Xrel.pseudo_complement tiny in
  printf "  R1* = TOP - R1            : %a@." Xrel.pp (star r1);
  printf "  R1 u R1*                  : %a@." Xrel.pp (Xrel.union r1 (star r1));
  printf "  R1 n R1* (not empty!)     : %a@." Xrel.pp (Xrel.inter r1 (star r1));
  verdict
    "x-relations form a distributive pseudo-complemented lattice whose meet \
     differs from the Boolean meet of the total sublattice"
    (Xrel.is_empty (Xrel.set_inter_total r1 r2)
    && Xrel.x_mem (t [ ("A", s "a1") ]) (Xrel.inter r1 r2)
    && Xrel.equal (Xrel.union r1 (star r1)) (Xrel.top tiny)
    && not (Xrel.is_empty (Xrel.inter r1 (star r1))))
    "Sections 4 and 7"

(* ---------------------------------------------------------------- *)

let e10 () =
  section "E10" "Section 7: the embedding of Codd relations";
  (* A quick randomized spot-check; the full property suite lives in
     test/props_embedding.ml. *)
  let g = Workload.Prng.create 2024 in
  let spec =
    { Workload.Gen.arity = 3; rows = 30; domain_size = 4; null_density = 0.0 }
  in
  let trials = 200 in
  let ok = ref true in
  for _ = 1 to trials do
    let r1 = Workload.Gen.total_relation g spec in
    let r2 = Workload.Gen.total_relation g spec in
    let x1 = Xrel.of_relation r1 and x2 = Xrel.of_relation r2 in
    let classical_union = Relation.union r1 r2 in
    let classical_diff =
      Relation.filter (fun tu -> not (Relation.mem tu r2)) r1
    in
    ok :=
      !ok
      && Xrel.equal (Xrel.union x1 x2) (Xrel.of_relation classical_union)
      && Xrel.equal (Xrel.diff x1 x2) (Xrel.of_relation classical_diff)
      && Xrel.contains x1 x2
         = Tuple.Set.subset (Relation.tuples r2) (Relation.tuples r1)
  done;
  printf "  %d random total-relation trials: union, difference, containment@."
    trials;
  verdict "operators on total x-relations coincide with Codd's"
    !ok "Section 7 claims (1)-(5)"

(* ---------------------------------------------------------------- *)
(* E7: complexity of the set operations (4.6)-(4.8).                  *)

let e7 ~with_timings () =
  section "E7"
    "Set-operation cost: naive (4.6)-(4.8) vs combinatorial hashing";
  printf
    "  paper: union O(|R1|+|R2|); x-intersection and difference\n\
    \  O(|R1| x |R2|); hashing 'can provide more efficient solutions'.@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let sizes = [ 200; 400; 800; 1600 ] in
    printf
      "  %6s | %10s %10s %10s | %10s %10s | %10s %10s@." "n" "rep-union"
      "xrel-union" "hash-union" "naive-diff" "hash-diff" "naive-min"
      "hash-min";
    let results =
      List.map
        (fun n ->
          let g = Workload.Prng.create (1000 + n) in
          let spec =
            {
              Workload.Gen.arity = 4;
              rows = n;
              domain_size = 10 * n;
              null_density = 0.2;
            }
          in
          let r1 = Workload.Gen.relation g spec in
          let r2 = Workload.Gen.relation g spec in
          let x1 = Xrel.of_relation r1 and x2 = Xrel.of_relation r2 in
          let t_rep_union =
            Timing.ns_per_run (fun () -> ignore (Relation.union r1 r2))
          in
          let t_xrel_union =
            Timing.ns_per_run (fun () -> ignore (Xrel.union x1 x2))
          in
          let t_hash_union =
            Timing.ns_per_run (fun () ->
                ignore (Storage.Hash_index.minimize (Relation.union r1 r2)))
          in
          let t_naive_diff =
            Timing.ns_per_run (fun () -> ignore (Xrel.diff x1 x2))
          in
          let t_hash_diff =
            Timing.ns_per_run (fun () ->
                ignore (Storage.Hash_index.diff (Xrel.rep x1) (Xrel.rep x2)))
          in
          let t_naive_min =
            Timing.ns_per_run (fun () -> ignore (Relation.minimize r1))
          in
          let t_hash_min =
            Timing.ns_per_run (fun () ->
                ignore (Storage.Hash_index.minimize r1))
          in
          printf "  %6d | %10s %10s %10s | %10s %10s | %10s %10s@." n
            (Timing.pp_ns t_rep_union) (Timing.pp_ns t_xrel_union)
            (Timing.pp_ns t_hash_union) (Timing.pp_ns t_naive_diff)
            (Timing.pp_ns t_hash_diff) (Timing.pp_ns t_naive_min)
            (Timing.pp_ns t_hash_min);
          (n, t_xrel_union, t_hash_union, t_naive_diff, t_hash_diff))
        sizes
    in
    (match (List.nth_opt results 0, List.nth_opt results (List.length results - 1)) with
    | Some (n0, u0, hu0, d0, hd0), Some (n1, u1, hu1, d1, hd1) when n0 <> n1 ->
        let exponent a b = log (b /. a) /. log (float n1 /. float n0) in
        printf
          "  observed scaling exponents (t ~ n^e): xrel-union e=%.2f, \
           hash-union e=%.2f, naive-diff e=%.2f, hash-diff e=%.2f@."
          (exponent u0 u1) (exponent hu0 hu1) (exponent d0 d1)
          (exponent hd0 hd1);
        verdict
          "naive minimized union/difference scale ~quadratically; hashed \
           versions ~linearly"
          (exponent d0 d1 > 1.5 && exponent hd0 hd1 < 1.5)
          "Section 4 complexity remarks"
    | _ -> ());
    (* x-intersection at small sizes: O(n^2) pairwise meets. *)
    let inter_sizes = [ 50; 100; 200; 400 ] in
    printf "  x-intersection (pairwise meets):@.";
    let inter_times =
      List.map
        (fun n ->
          let g = Workload.Prng.create (7000 + n) in
          let spec =
            {
              Workload.Gen.arity = 4;
              rows = n;
              domain_size = 8;
              null_density = 0.2;
            }
          in
          let x1 = Workload.Gen.xrel g spec in
          let x2 = Workload.Gen.xrel g spec in
          let dt = Timing.ns_per_run (fun () -> ignore (Xrel.inter x1 x2)) in
          printf "    n = %4d : %s@." n (Timing.pp_ns dt);
          (n, dt))
        inter_sizes
    in
    (match (List.nth_opt inter_times 0, List.nth_opt inter_times 3) with
    | Some (n0, t0), Some (n1, t1) ->
        printf "  x-intersection scaling exponent: %.2f (expected ~2)@."
          (log (t1 /. t0) /. log (float n1 /. float n0))
    | _ -> ());
    (* Ablation: null density vs minimization work.  Denser nulls mean
       more subsumption (smaller minimal forms) but every tuple still
       probes; the hashed reduction stays flat. *)
    printf "  ablation: null density (n = 800, domain 40):@.";
    printf "  %8s | %12s | %12s | %12s@." "density" "minimal size"
      "naive-min" "hash-min";
    List.iter
      (fun density ->
        let g = Workload.Prng.create 4242 in
        let spec =
          {
            Workload.Gen.arity = 4;
            rows = 800;
            domain_size = 40;
            null_density = density;
          }
        in
        let r = Workload.Gen.relation g spec in
        let minimal = Relation.cardinal (Relation.minimize r) in
        let t_naive =
          Timing.ns_per_run (fun () -> ignore (Relation.minimize r))
        in
        let t_hash =
          Timing.ns_per_run (fun () -> ignore (Storage.Hash_index.minimize r))
        in
        printf "  %8.2f | %6d / %3d | %12s | %12s@." density minimal
          (Relation.cardinal r) (Timing.pp_ns t_naive) (Timing.pp_ns t_hash))
      [ 0.0; 0.1; 0.3; 0.5 ]
  end

(* ---------------------------------------------------------------- *)
(* E8: the cost of tautology detection (Appendix).                    *)

let e8 ~with_timings () =
  section "E8"
    "Appendix: tautology detection under the unknown interpretation";
  printf
    "  paper: correct unknown-evaluation needs per-tuple tautology checks;\n\
    \  brute force is exponential in the null count, NP-hard in general.\n\
    \  The ni interpretation needs none of it.@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let domain_size = 8 in
    let domains a =
      match Attr.name a with
      | "SEX" -> Domain.Enum [ "M"; "F" ]
      | _ -> Domain.Int_range (0, domain_size - 1)
    in
    (* k null columns, each constrained by a tautologous disjunction. *)
    let predicate k =
      let clause j =
        let col = Printf.sprintf "B%d" j in
        Predicate.(cmp_const col Lt (i 4) ||| cmp_const col Ge (i 4))
      in
      let rec conj j = if j > k then Predicate.Const Tvl.True
        else Predicate.And (clause j, conj (j + 1))
      in
      conj 1
    in
    printf "  %8s | %14s | %12s | %12s | %12s@." "nulls k" "substitutions"
      "brute-force" "ni eval" "symbolic";
    List.iter
      (fun k ->
        let p = predicate k in
        let tuple = Tuple.of_strings [ ("A", i 1) ] in
        let count =
          Codd.Subst.count_substitutions ~domains
            ~over:(Predicate.attrs p) [ tuple ]
        in
        let t_brute =
          Timing.ns_per_run (fun () ->
              ignore (Codd.Tautology.brute_force ~domains p tuple))
        in
        let t_ni =
          Timing.ns_per_run (fun () -> ignore (Predicate.eval p tuple))
        in
        let t_symbolic =
          if k = 1 then
            Timing.ns_per_run (fun () ->
                ignore (Codd.Tautology.breakpoints p tuple))
          else nan
        in
        printf "  %8d | %14d | %12s | %12s | %12s@." k count
          (Timing.pp_ns t_brute) (Timing.pp_ns t_ni)
          (if Float.is_nan t_symbolic then "(n/a: k>1)"
           else Timing.pp_ns t_symbolic))
      [ 1; 2; 3; 4; 5 ];
    (* Query-level comparison on Figure 1's QA, growing the TEL# domain. *)
    printf "  query QA (adjusted form), growing TEL# domain:@.";
    printf "  %12s | %12s | %12s@." "domain size" "ni eval" "unknown (brute)";
    List.iter
      (fun d ->
        let schema =
          Schema.add_column emp_schema_v1 "TEL#"
            (Domain.Int_range (2630000, 2630000 + d - 1))
        in
        let db : Quel.Resolve.db = [ ("EMP", (schema, emp)) ] in
        let parsed = Quel.Parser.parse qa_adjusted in
        let t_ni = Timing.ns_per_run (fun () -> ignore (Quel.Eval.run db parsed)) in
        let t_unknown =
          Timing.ns_per_run (fun () ->
              ignore
                (Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force db
                   parsed))
        in
        printf "  %12d | %12s | %12s@." d (Timing.pp_ns t_ni)
          (Timing.pp_ns t_unknown))
      [ 10; 100; 1000; 10000 ];
    verdict
      "ni evaluation cost is independent of domains and null counts; \
       substitution-based tautology checking grows with both"
      true "Appendix"
  end

(* ---------------------------------------------------------------- *)
(* E11: Section 1's practical complaint about MAYBE queries — "the
   high cost, for little additional information (due to their low
   selectivity)".                                                     *)

let e11 ~with_timings () =
  section "E11" "Selectivity and cost of Codd's MAYBE queries";
  printf
    "  paper (Section 1): MAYBE versions of queries carry 'high cost, for\n\
    \  little additional information'; most systems implement only the\n\
    \  TRUE version.@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let n = 1000 in
    let p = Predicate.cmp_const "A1" Predicate.Le (i 100) in
    printf "  selection A1 <= 100 over %d rows, domain 1000:@." n;
    printf "  %8s | %10s %10s | %12s %12s@." "nulls" "TRUE rows" "MAYBE rows"
      "TRUE time" "MAYBE time";
    List.iter
      (fun density ->
        let g = Workload.Prng.create 77 in
        let spec =
          {
            Workload.Gen.arity = 2;
            rows = n;
            domain_size = 1000;
            null_density = density;
          }
        in
        let r = Workload.Gen.relation g spec in
        let sure = Codd.Maybe_algebra.select_true p r in
        let maybe = Codd.Maybe_algebra.select_maybe p r in
        let t_true =
          Timing.ns_per_run (fun () ->
              ignore (Codd.Maybe_algebra.select_true p r))
        in
        let t_maybe =
          Timing.ns_per_run (fun () ->
              ignore (Codd.Maybe_algebra.select_maybe p r))
        in
        printf "  %8.2f | %10d %10d | %12s %12s@." density
          (Relation.cardinal sure) (Relation.cardinal maybe)
          (Timing.pp_ns t_true) (Timing.pp_ns t_maybe))
      [ 0.05; 0.2; 0.5 ];
    (* MAYBE joins approach the Cartesian product.  Keyed rows so null
       join values do not collapse in the set representation. *)
    let g = Workload.Prng.create 78 in
    let keyed prefix =
      Relation.of_list
        (List.init 200 (fun k ->
             Tuple.of_strings
               [
                 (prefix ^ "K", i k);
                 ( prefix ^ "V",
                   if Workload.Prng.bool g 0.3 then Value.Null
                   else i (Workload.Prng.int g 400) );
               ]))
    in
    let left = keyed "L" and right = keyed "R" in
    let jt = Codd.Maybe_algebra.join_true (Attr.make "LV") Predicate.Eq
        (Attr.make "RV") left right in
    let jm = Codd.Maybe_algebra.join_maybe (Attr.make "LV") Predicate.Eq
        (Attr.make "RV") left right in
    printf
      "  equijoin of 200 x 200 rows (30%% nulls): TRUE join %d rows, MAYBE \
       join %d rows@."
      (Relation.cardinal jt) (Relation.cardinal jm);
    verdict
      "MAYBE answers balloon with null density while carrying no definite \
       information"
      (Relation.cardinal jm > 10 * Relation.cardinal jt)
      "Section 1"
  end

(* ---------------------------------------------------------------- *)
(* E13: physical join strategies — the nested-loop definitional join
   (5.4') vs hash partitioning on the X-restrictions.                 *)

let e13 ~with_timings () =
  section "E13" "Join strategies: nested loop vs hash partitioning";
  printf
    "  Only X-total tuples participate in the equijoin (Section 5), so\n\
    \  partitioning by the X-restriction preserves the semantics exactly.@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    printf "  %6s | %12s | %12s | %10s@." "n" "nested loop" "hash join"
      "speedup";
    List.iter
      (fun n ->
        let g = Workload.Prng.create (300 + n) in
        let spec =
          {
            Workload.Gen.arity = 3;
            rows = n;
            domain_size = n;
            null_density = 0.15;
          }
        in
        let x1 = Workload.Gen.xrel g spec in
        let x2 = Workload.Gen.xrel g spec in
        let on = Attr.set_of_list [ "A1" ] in
        let t_nested =
          Timing.ns_per_run (fun () -> ignore (Algebra.equijoin on x1 x2))
        in
        let t_hash =
          Timing.ns_per_run (fun () ->
              ignore (Storage.Join.hash_equijoin on x1 x2))
        in
        printf "  %6d | %12s | %12s | %9.1fx@." n (Timing.pp_ns t_nested)
          (Timing.pp_ns t_hash) (t_nested /. t_hash))
      [ 200; 400; 800; 1600 ]
  end

(* ---------------------------------------------------------------- *)
(* E12: the Section 8 claim — efficient evaluation through the
   calculus -> algebra correspondence (selection pushdown).            *)

let e12 ~with_timings () =
  section "E12"
    "Calculus-to-algebra compilation and algebraic optimization";
  printf
    "  paper (Sections 1, 8): the approach 'guarantees efficient\n\
    \  query-evaluation algorithms through the well-known correspondence\n\
    \  between the relational calculus and the relational algebra'.@.";
  let src =
    "range of r is R range of s is S retrieve (r.A1, s.B1) \
     where r.A1 = s.B1 and r.A2 <= 3 and s.B2 <= 3"
  in
  printf "  query: %s@." src;
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let make_rel prefix seed n =
      let g = Workload.Prng.create seed in
      let spec =
        { Workload.Gen.arity = 3; rows = n; domain_size = 30; null_density = 0.1 }
      in
      Algebra.rename
        (List.map
           (fun (a, _) ->
             (a, Attr.make (prefix ^ String.sub (Attr.name a) 1 1)))
           (Workload.Gen.universe spec))
        (Workload.Gen.xrel g spec)
    in
    printf "  %6s | %14s | %14s | %10s@." "n" "unoptimized" "optimized"
      "speedup";
    List.iter
      (fun n ->
        let r = make_rel "A" (100 + n) n and s_rel = make_rel "B" (200 + n) n in
        let schema_of prefix =
          Schema.make "X"
            (List.map
               (fun k -> (Printf.sprintf "%s%d" prefix k, Domain.Int_range (0, 29)))
               [ 1; 2; 3 ])
        in
        let db : Quel.Resolve.db =
          [ ("R", (schema_of "A", r)); ("S", (schema_of "B", s_rel)) ]
        in
        let q = Quel.Parser.parse src in
        let t_plain =
          Timing.ns_per_run (fun () ->
              ignore (Plan.Compile.run ~optimize:false db q))
        in
        let t_opt =
          Timing.ns_per_run (fun () -> ignore (Plan.Compile.run db q))
        in
        printf "  %6d | %14s | %14s | %9.1fx@." n (Timing.pp_ns t_plain)
          (Timing.pp_ns t_opt) (t_plain /. t_opt))
      [ 50; 100; 200; 400 ];
    verdict
      "pushing the single-relation selections below the product turns the \
       quadratic scan into a pre-filtered join"
      true "Sections 1/8 efficiency claim"
  end

(* ---------------------------------------------------------------- *)
(* E15: indexed selections -- a sorted index answers A theta k by
   binary search; nulls never qualify, so they simply drop out of the
   index.                                                              *)

let e15 ~with_timings () =
  section "E15" "Selection strategies: full scan vs sorted range index";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    printf "  select A1 <= k (1%% selectivity), 15%% nulls:@.";
    printf "  %8s | %12s | %12s | %12s | %10s@." "n" "scan" "index probe"
      "index build" "speedup";
    List.iter
      (fun n ->
        let g = Workload.Prng.create (500 + n) in
        let spec =
          {
            Workload.Gen.arity = 3;
            rows = n;
            domain_size = n;
            null_density = 0.15;
          }
        in
        (* hash-minimize: the naive canonicalization would dominate at
           these sizes *)
        let x1 =
          Xrel.unsafe_of_minimal
            (Storage.Hash_index.minimize (Workload.Gen.relation g spec))
        in
        let a = Attr.make "A1" in
        let k = i (n / 100) in
        let idx = Storage.Range_index.build a x1 in
        let t_scan =
          Timing.ns_per_run (fun () ->
              ignore (Algebra.select_ak a Predicate.Le k x1))
        in
        let t_probe =
          Timing.ns_per_run (fun () ->
              ignore (Storage.Range_index.select idx Predicate.Le k))
        in
        let t_build =
          Timing.ns_per_run (fun () ->
              ignore (Storage.Range_index.build a x1))
        in
        printf "  %8d | %12s | %12s | %12s | %9.1fx@." n (Timing.pp_ns t_scan)
          (Timing.pp_ns t_probe) (Timing.pp_ns t_build) (t_scan /. t_probe))
      [ 1000; 4000; 16000; 32000 ]
  end

(* ---------------------------------------------------------------- *)
(* E16: aggregate bounds -- how the sure/possible gap widens with
   null density, and what the substitution reasoning costs.           *)

let e16 ~with_timings () =
  section "E16" "Aggregate bounds vs null density (Section 5 framework)";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let n = 300 in
    printf
      "  COUNT and SUM(G) bounds of 'Q >= 10' over %d rows, G,Q in 0..20:@."
      n;
    printf "  %8s | %14s | %16s | %12s@." "nulls" "count bounds" "sum bounds"
      "time";
    List.iter
      (fun density ->
        let g = Workload.Prng.create 11 in
        let row k =
          Tuple.of_strings
            [
              ("K", i k);
              ( "Q",
                if Workload.Prng.bool g density then Value.Null
                else i (Workload.Prng.int g 21) );
              ( "G",
                if Workload.Prng.bool g density then Value.Null
                else i (Workload.Prng.int g 21) );
            ]
        in
        let rel_x = Xrel.of_list (List.init n row) in
        let schema =
          Schema.make "R" ~key:[ "K" ]
            [
              ("K", Domain.Ints);
              ("Q", Domain.Int_range (0, 20));
              ("G", Domain.Int_range (0, 20));
            ]
        in
        let db : Quel.Resolve.db = [ ("R", (schema, rel_x)) ] in
        let q =
          Quel.Parser.parse "range of v is R retrieve (v.K) where v.Q >= 10"
        in
        let count = Quel.Aggregate.bounds db q Quel.Aggregate.Count in
        let sum = Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "G")) in
        let dt =
          Timing.ns_per_run (fun () ->
              ignore (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "G"))))
        in
        printf "  %8.2f | %6d .. %-6d| %7d .. %-7d| %12s@." density
          count.Quel.Aggregate.lower count.Quel.Aggregate.upper
          sum.Quel.Aggregate.lower sum.Quel.Aggregate.upper (Timing.pp_ns dt))
      [ 0.0; 0.1; 0.3; 0.5 ];
    verdict
      "bounds collapse to exact values on total data and widen \
       monotonically with null density"
      true "Section 5 bounds, applied to aggregation"
  end

(* ---------------------------------------------------------------- *)
(* E17: the durability subsystem -- what a crash-safe checkpoint, a
   journal append and a journal replay cost.                          *)

let e17 ~with_timings () =
  section "E17" "Durability: checkpoint, journal append, recovery replay";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let tmp_dir =
      let base = Filename.get_temp_dir_name () in
      let rec fresh k =
        let dir = Filename.concat base (Printf.sprintf "nullrel_bench_%d" k) in
        if Sys.file_exists dir then fresh (k + 1) else dir
      in
      fresh 0
    in
    let cleanup () =
      if Sys.file_exists tmp_dir then begin
        Array.iter
          (fun e -> Sys.remove (Filename.concat tmp_dir e))
          (Sys.readdir tmp_dir);
        Sys.rmdir tmp_dir
      end
    in
    printf "  checkpoint = atomic save, journal = one appended statement,@.";
    printf "  recover = load + replay of the journal the appends built:@.";
    printf "  %8s | %12s | %14s | %12s@." "rows" "checkpoint" "journal/stmt"
      "recover";
    List.iter
      (fun n ->
        let g = Workload.Prng.create (900 + n) in
        let spec =
          {
            Workload.Gen.arity = 3;
            rows = n;
            domain_size = n;
            null_density = 0.1;
          }
        in
        let schema =
          Schema.make "R"
            (List.map
               (fun a -> (Attr.name a, Domain.Ints))
               (Workload.Gen.attrs spec))
        in
        let x1 = Workload.Gen.xrel g spec in
        let cat = Storage.Catalog.add_unchecked Storage.Catalog.empty schema x1 in
        let t_save =
          Timing.ns_per_run (fun () ->
              cleanup ();
              Storage.Persist.save ~dir:tmp_dir cat)
        in
        cleanup ();
        Storage.Persist.save ~dir:tmp_dir cat;
        let d, _ = Dml.open_durable ~checkpoint_every:max_int ~dir:tmp_dir () in
        let dref = ref d and k = ref 0 in
        let t_append =
          Timing.ns_per_run (fun () ->
              incr k;
              let d', _ =
                Dml.exec_durable_string !dref
                  (Printf.sprintf "append to R (A1 = %d, A2 = %d)" (n + !k) !k)
              in
              dref := d')
        in
        let t_recover =
          Timing.ns_per_run (fun () ->
              ignore (Storage.Persist.load_report ~dir:tmp_dir ()))
        in
        cleanup ();
        printf "  %8d | %12s | %14s | %12s@." n (Timing.pp_ns t_save)
          (Timing.pp_ns t_append) (Timing.pp_ns t_recover))
      [ 100; 1000; 4000 ]
  end

(* ---------------------------------------------------------------- *)
(* E18: the resource governor -- what the amortized checks cost on a
   governed-but-unconstrained run, and how quickly a deadline stops a
   deliberately exponential tautology check.                          *)

let e18 ~with_timings () =
  section "E18" "Resource governor: overhead and time-to-abort";
  printf
    "  Governed runs tick inside the hot loops; the tuple budget is an\n\
    \  int compare per tick, clock/cancellation polls amortized (1/256).@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* Overhead: the same workload, ungoverned vs under a governor whose
       limits can never fire.  The governor setup (one gettimeofday, one
       full check) is charged to every run, as it is per-statement in
       the shell. *)
    let g = Workload.Prng.create 1812 in
    let spec =
      { Workload.Gen.arity = 4; rows = 400; domain_size = 8; null_density = 0.2 }
    in
    let x1 = Workload.Gen.xrel g spec in
    let x2 = Workload.Gen.xrel g spec in
    let workload () = ignore (Xrel.inter x1 x2) in
    let governed () =
      Exec.with_governor
        (Exec.make ~deadline_s:3600. ~max_tuples:max_int ())
        workload
    in
    (* Interleaved rounds with a min on each side: alternation cancels
       slow drift, and scheduler or GC noise only ever adds time, so
       the minimum is the faithful per-run cost. *)
    let time_once f =
      let t0 = Exec.monotonic_now () in
      f ();
      (Exec.monotonic_now () -. t0) *. 1e9
    in
    Gc.major ();
    let t_off = ref infinity and t_on = ref infinity in
    for _ = 1 to 12 do
      t_off := Float.min !t_off (time_once workload);
      t_on := Float.min !t_on (time_once governed)
    done;
    let t_off = !t_off and t_on = !t_on in
    let overhead = (t_on -. t_off) /. t_off *. 100. in
    printf
      "  x-intersection, 400 x 400 rows (min of 12 interleaved rounds):@.";
    printf "  ungoverned %s, governed %s@." (Timing.pp_ns t_off)
      (Timing.pp_ns t_on);
    printf "  governor overhead: %+.1f%%  (target: < 5%%)@." overhead;
    verdict "amortized governor checks stay under the 5% overhead target"
      (overhead < 5.0) "robustness goal, not a paper claim";
    (* Time-to-abort: a brute-force tautology check over 10^12
       substitutions would run for hours; a 20 ms deadline must stop it
       almost immediately. *)
    let domains _ = Domain.Int_range (0, 99) in
    let k = 6 in
    let clause j =
      let col = Printf.sprintf "B%d" j in
      Predicate.(cmp_const col Lt (i 50) ||| cmp_const col Ge (i 50))
    in
    let rec conj j =
      if j > k then Predicate.Const Tvl.True
      else Predicate.And (clause j, conj (j + 1))
    in
    let p = conj 1 in
    let tuple = Tuple.of_strings [ ("A", i 1) ] in
    let deadline_s = 0.02 in
    let t0 = Exec.monotonic_now () in
    let outcome =
      match
        Exec.with_governor
          (Exec.make ~deadline_s ())
          (fun () -> Codd.Tautology.brute_force ~domains p tuple)
      with
      | _ -> "completed (unexpected)"
      | exception Exec_error.Error (Exec_error.Timeout _) -> "timeout"
    in
    let elapsed = Exec.monotonic_now () -. t0 in
    printf
      "  brute-force tautology, %d null columns over 0..99 (10^%d \
       substitutions):@." k (2 * k);
    printf "  deadline %.0f ms -> %s after %.1f ms@." (deadline_s *. 1e3)
      outcome (elapsed *. 1e3);
    verdict "the deadline stops an exponential tautology check promptly"
      (outcome = "timeout" && elapsed < 1.0)
      "robustness goal, not a paper claim"
  end

(* ---------------------------------------------------------------- *)
(* E19: observability -- what the Obs layer costs when nobody is
   watching (the branch in Exec.tick and the metric call sites) and
   when everything is on.                                             *)

let e19_gate_failed = ref false

(* A structurally 1:1 reimplementation of Xrel.inter (pairwise meets,
   then Kernel.minimize, which picks the Subsume_index strategy at
   this size on one domain), calling the real Exec.tick -- whose
   ungoverned, unobserved path is instruction for instruction the one
   the engine paid before the Obs layer existed -- but with no metric
   sites, no enabled-branches, no histogram probes and no strategy
   dispatch: the "what if the instrumentation and the Kernel facade
   did not exist" baseline the <3% disabled-path gate compares
   against. Kept in lockstep with Xrel.inter / Kernel.minimize by
   eye; it only feeds this measurement. *)
let bare_inter x1 x2 =
  let s1 = Relation.tuples (Xrel.rep x1) in
  let s2 = Relation.tuples (Xrel.rep x2) in
  let meets =
    Tuple.Set.fold
      (fun r1 acc ->
        Tuple.Set.fold
          (fun r2 acc ->
            Exec.tick ();
            Tuple.Set.add (Tuple.meet r1 r2) acc)
          s2 acc)
      s1 Tuple.Set.empty
  in
  let meets_rel = Relation.of_tuples meets in
  let idx = Subsume_index.build meets_rel in
  Relation.filter
    (fun t_ ->
      Exec.tick ();
      (not (Tuple.is_null_tuple t_))
      && not (Subsume_index.strictly_subsuming_exists idx t_))
    meets_rel

let e19 ~with_timings () =
  section "E19" "Observability: instrumentation overhead, off and on";
  printf
    "  Obs off must cost one branch per tick site; Obs on pays counters,\n\
    \  histograms and span charges.  Gate: disabled-path overhead < 3%%.@.";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* Pin the pool to one domain so Kernel.minimize deterministically
       picks the indexed strategy the bare replica mirrors, whatever
       NULLREL_DOMAINS says; restored at the end of the section. *)
    let saved_domains = Par.Pool.domains () in
    Par.Pool.set_domains 1;
    let g = Workload.Prng.create 1912 in
    let spec =
      { Workload.Gen.arity = 4; rows = 200; domain_size = 8; null_density = 0.2 }
    in
    let x1 = Workload.Gen.xrel g spec in
    let x2 = Workload.Gen.xrel g spec in
    let bare () = ignore (bare_inter x1 x2) in
    let instrumented () = ignore (Xrel.inter x1 x2) in
    let enabled () =
      Obs.Metrics.set_enabled true;
      Obs.Span.with_span "bench.e19" (fun () -> ignore (Xrel.inter x1 x2));
      Obs.Metrics.set_enabled false
    in
    (* Interleaved rounds like E18, but a blockwise estimator: the 80
       rounds are cut into blocks of 10, each block takes the min per
       side (timing noise is additive-positive, so the min is the
       cleanest round), the ratio is formed within the block (the two
       minima are temporally close, so clock drift cancels), and the
       median across blocks rejects the odd block still corrupted by a
       GC pause or scheduler preemption. *)
    let time_once f =
      let t0 = Exec.monotonic_now () in
      f ();
      (Exec.monotonic_now () -. t0) *. 1e9
    in
    Gc.major ();
    let blocks = 8 and per_block = 10 in
    let r_off = Array.make blocks 0. and r_on = Array.make blocks 0. in
    let t_bare = ref infinity
    and t_off = ref infinity
    and t_on = ref infinity in
    for i = 0 to blocks - 1 do
      let b = ref infinity and o = ref infinity and e = ref infinity in
      for _ = 1 to per_block do
        b := Float.min !b (time_once bare);
        o := Float.min !o (time_once instrumented);
        e := Float.min !e (time_once enabled)
      done;
      r_off.(i) <- !o /. !b;
      r_on.(i) <- !e /. !b;
      t_bare := Float.min !t_bare !b;
      t_off := Float.min !t_off !o;
      t_on := Float.min !t_on !e
    done;
    let median a =
      Array.sort Float.compare a;
      (a.((Array.length a - 1) / 2) +. a.(Array.length a / 2)) /. 2.
    in
    let over_off = (median r_off -. 1.) *. 100. in
    let over_on = (median r_on -. 1.) *. 100. in
    printf
      "  x-intersection, 200 x 200 rows (median over 8 blocks of 10 \
       interleaved rounds):@.";
    printf "  uninstrumented %s, obs off %s, obs on %s (overall minima)@."
      (Timing.pp_ns !t_bare) (Timing.pp_ns !t_off) (Timing.pp_ns !t_on);
    printf "  overhead: off %+.1f%% (gate: < 3%%), on %+.1f%%@." over_off
      over_on;
    let ok = over_off < 3.0 in
    if not ok then e19_gate_failed := true;
    verdict "disabled instrumentation stays under the 3% overhead gate" ok
      "observability goal, not a paper claim";
    Obs.Metrics.reset ();
    Par.Pool.set_domains saved_domains
  end

(* ---------------------------------------------------------------- *)
(* E20: multicore kernels -- parity everywhere, speedup where the
   hardware allows it.                                                *)

let e20_gate_failed = ref false

let e20 ~with_timings () =
  section "E20" "Parallel kernels: one dispatch, byte-identical results";
  printf
    "  Minimization and subsumption verdicts are per-tuple independent and\n\
    \  results are sets (Defs 4.6-4.7), so chunked fan-out over domains\n\
    \  cannot change any answer -- checked here for every strategy. The\n\
    \  speedup gate only binds when the hardware offers >= 4 cores.@.";
  (* Parity must hold at any pool size (CI runs this under
     NULLREL_DOMAINS=1 and =4 against the same golden output), so no
     domain counts are printed here. *)
  let g = Workload.Prng.create 2025 in
  let spec =
    {
      Workload.Gen.arity = 5;
      rows = 1500;
      domain_size = 12;
      null_density = 0.3;
    }
  in
  let r = Workload.Gen.relation g spec in
  let m_seq = Kernel.minimize ~strategy:Sequential r in
  let m_idx = Kernel.minimize ~strategy:Indexed r in
  let m_par = Kernel.minimize ~strategy:Parallel r in
  verdict "indexed and parallel minimize agree with the sequential kernel"
    (Relation.equal m_seq m_idx && Relation.equal m_seq m_par)
    "the minimal representation is unique (Def 4.6)";
  let r2 = Workload.Gen.relation g spec in
  let sub_parity =
    List.for_all
      (fun (a, b) ->
        let expected = Kernel.subsumes ~strategy:Sequential a b in
        Kernel.subsumes ~strategy:Indexed a b = expected
        && Kernel.subsumes ~strategy:Parallel a b = expected)
      [ (m_seq, r); (r, r2); (r2, r) ]
  and mem_parity =
    List.for_all
      (fun t_ ->
        let expected = Kernel.x_mem ~strategy:Sequential t_ r in
        Kernel.x_mem ~strategy:Indexed t_ r = expected
        && Kernel.x_mem ~strategy:Parallel t_ r = expected)
      (Relation.to_list (Workload.Gen.relation g { spec with rows = 64 }))
  in
  verdict "subsumption and x-membership agree across all strategies"
    (sub_parity && mem_parity) "Def 4.7 / (4.2')";
  let jspec =
    { Workload.Gen.arity = 4; rows = 1500; domain_size = 6; null_density = 0.2 }
  in
  let j1 = Workload.Gen.xrel g jspec and j2 = Workload.Gen.xrel g jspec in
  let jx = Attr.set_of_list [ "A1" ] in
  let j_seq = Storage.Join.hash_equijoin ~strategy:Kernel.Sequential jx j1 j2 in
  let j_par = Storage.Join.hash_equijoin ~strategy:Kernel.Parallel jx j1 j2 in
  let j_rng =
    Storage.Join.hash_equijoin ~strategy:Kernel.Parallel
      ~index:(module Storage.Range_index.Equi)
      jx j1 j2
  in
  let u_seq =
    Storage.Join.hash_union_join ~strategy:Kernel.Sequential jx j1 j2
  in
  let u_par = Storage.Join.hash_union_join ~strategy:Kernel.Parallel jx j1 j2 in
  verdict
    "partition-parallel equijoin and union-join agree across strategies and \
     indexes"
    (Xrel.equal j_seq j_par && Xrel.equal j_seq j_rng && Xrel.equal u_seq u_par)
    "probe chunks merge by set union; order cannot matter";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let saved_domains = Par.Pool.domains () in
    (* Single-domain dispatch overhead: below the cutover, Auto must
       cost no more than calling Relation.minimize directly -- the
       facade's price is one cardinal scan and a match. Gate: < 3%. *)
    Par.Pool.set_domains 1;
    let small =
      Workload.Gen.relation g
        { Workload.Gen.arity = 4; rows = 50; domain_size = 8;
          null_density = 0.2 }
    in
    let direct = ref infinity and dispatched = ref infinity in
    for _ = 1 to 5 do
      direct :=
        Float.min !direct
          (Timing.ns_per_run (fun () -> ignore (Relation.minimize small)));
      dispatched :=
        Float.min !dispatched
          (Timing.ns_per_run (fun () -> ignore (Kernel.minimize small)))
    done;
    let over = ((!dispatched /. !direct) -. 1.) *. 100. in
    printf
      "  dispatch overhead (%d tuples, sequential): direct %s, via Kernel %s \
       (%+.1f%%)@."
      (Relation.cardinal small) (Timing.pp_ns !direct)
      (Timing.pp_ns !dispatched) over;
    let ok_dispatch = over < 3.0 in
    if not ok_dispatch then e20_gate_failed := true;
    verdict "single-domain dispatch overhead stays under the 3% gate"
      ok_dispatch "engineering goal, not a paper claim";
    (* Parallel speedup: gated only on hardware with >= 4 cores. The
       baseline is the best single-domain strategy (indexed for
       minimize, sequential probing for the join) -- the naive
       sequential kernel is slower still, so the gate is
       conservative. *)
    let hw = Stdlib.Domain.recommended_domain_count () in
    if hw < 4 then
      printf
        "  (parallel speedup gate skipped: hardware recommends %d domain%s)@."
        hw
        (if hw = 1 then "" else "s")
    else begin
      let big =
        Workload.Gen.relation g
          { Workload.Gen.arity = 6; rows = 20000; domain_size = 16;
            null_density = 0.35 }
      in
      let b1 =
        Workload.Gen.xrel g
          { Workload.Gen.arity = 4; rows = 20000; domain_size = 64;
            null_density = 0.1 }
      and b2 =
        Workload.Gen.xrel g
          { Workload.Gen.arity = 4; rows = 20000; domain_size = 64;
            null_density = 0.1 }
      in
      let bx = Attr.set_of_list [ "A1" ] in
      Par.Pool.set_domains 1;
      let t_min_base =
        Timing.ns_per_run (fun () ->
            ignore (Kernel.minimize ~strategy:Indexed big))
      and t_join_base =
        Timing.ns_per_run (fun () ->
            ignore
              (Storage.Join.hash_equijoin ~strategy:Kernel.Sequential bx b1 b2))
      in
      printf "  domains  minimize      equijoin@.";
      printf "  %7d  %-12s  %-12s@." 1 (Timing.pp_ns t_min_base)
        (Timing.pp_ns t_join_base);
      let speedups =
        List.filter_map
          (fun d ->
            if d > hw then None
            else begin
              Par.Pool.set_domains d;
              let t_min =
                Timing.ns_per_run (fun () ->
                    ignore (Kernel.minimize ~strategy:Parallel big))
              and t_join =
                Timing.ns_per_run (fun () ->
                    ignore
                      (Storage.Join.hash_equijoin ~strategy:Kernel.Parallel bx
                         b1 b2))
              in
              printf "  %7d  %-12s  %-12s@." d (Timing.pp_ns t_min)
                (Timing.pp_ns t_join);
              Some (d, t_min_base /. t_min, t_join_base /. t_join)
            end)
          [ 2; 4 ]
      in
      match List.find_opt (fun (d, _, _) -> d = 4) speedups with
      | None -> ()
      | Some (_, s_min, s_join) ->
          printf "  speedup on 4 domains: minimize %.2fx, equijoin %.2fx@."
            s_min s_join;
          let ok = s_min >= 1.8 && s_join >= 1.8 in
          if not ok then e20_gate_failed := true;
          verdict "parallel kernels reach 1.8x on 4 domains" ok
            "ROADMAP: as fast as the hardware allows"
    end;
    Par.Pool.set_domains saved_domains
  end

(* ---------------------------------------------------------------- *)
(* E21: the null-aware statistics catalog -- does feeding collected
   null fractions / distinct counts / min-max ranges into Plan.Cost
   actually estimate better than the constant model, and does the
   cost-based reorder change a plan?                                  *)

let e21_gate_failed = ref false

let e21 ~with_timings () =
  section "E21" "Null-aware statistics: estimation quality, plan changes";
  printf
    "  The constant model prices every selection at 1/3 and every join at\n\
    \  1/10; the statistics model uses collected row counts, null\n\
    \  fractions (Table III: a comparison touching a null is ni, so nulls\n\
    \  never qualify), distinct counts and min-max ranges.  Gates: the\n\
    \  median est/actual error must strictly improve, and the reorder\n\
    \  must flip at least one join order.@.";
  (* --- estimation error sweep over generated databases ---------- *)
  let sweep_specs =
    [
      (101, { Workload.Gen.arity = 3; rows = 400; domain_size = 25; null_density = 0.1 });
      (102, { Workload.Gen.arity = 3; rows = 800; domain_size = 50; null_density = 0.3 });
      (103, { Workload.Gen.arity = 2; rows = 200; domain_size = 10; null_density = 0.2 });
    ]
  in
  let errors_const = ref [] and errors_stats = ref [] in
  List.iter
    (fun (seed, spec) ->
      let prng = Workload.Prng.create seed in
      let r = Workload.Gen.xrel prng spec in
      let s = Workload.Gen.xrel (Workload.Prng.split prng) spec in
      let attrs = Workload.Gen.attrs spec in
      let rowcount = function
        | "R" -> Some (Xrel.cardinal r)
        | "S" -> Some (Xrel.cardinal s)
        | _ -> None
      in
      let const_model = Plan.Cost.of_rowcount rowcount in
      let stats_model =
        let tables =
          [ ("R", Stats.collect ~attrs r); ("S", Stats.collect ~attrs s) ]
        in
        {
          Plan.Cost.rowcount;
          table = (fun n -> List.assoc_opt n tables);
          equipped = (fun _ _ -> false);
        }
      in
      let env = function "R" -> Some r | "S" -> Some s | _ -> None in
      let mid = spec.Workload.Gen.domain_size / 2 in
      let ja = Attr.set_of_list [ "A1" ] in
      let plans =
        [
          Plan.Expr.Select (Predicate.cmp_const "A1" Predicate.Eq (i 3), Rel "R");
          Plan.Expr.Select (Predicate.cmp_const "A2" Predicate.Le (i mid), Rel "R");
          Plan.Expr.Select
            ( Predicate.And
                ( Predicate.cmp_const "A1" Predicate.Gt (i mid),
                  Predicate.cmp_const "A2" Predicate.Neq (i 0) ),
              Rel "S" );
          Plan.Expr.Project (ja, Rel "S");
          Plan.Expr.Equijoin (ja, Rel "R", Project (ja, Rel "S"));
        ]
      in
      List.iter
        (fun plan ->
          let actual = float (Xrel.cardinal (Plan.Expr.eval ~env plan)) in
          let err stats =
            let est = Plan.Cost.cardinality ~stats plan in
            let est = Float.max est 1. and actual = Float.max actual 1. in
            Float.max (est /. actual) (actual /. est)
          in
          errors_const := err const_model :: !errors_const;
          errors_stats := err stats_model :: !errors_stats)
        plans)
    sweep_specs;
  let median l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    (a.((Array.length a - 1) / 2) +. a.(Array.length a / 2)) /. 2.
  in
  let m_const = median !errors_const and m_stats = median !errors_stats in
  printf
    "  est/actual error over %d plans on 3 generated databases:@.\
    \  constant model median %.2fx, statistics model median %.2fx@."
    (List.length !errors_const) m_const m_stats;
  let ok_error = m_stats < m_const in
  if not ok_error then e21_gate_failed := true;
  verdict "collected statistics beat the constant cost model" ok_error
    "engineering goal on top of the Table III semantics";
  (* --- the reorder changes a join order ------------------------- *)
  let big_schema =
    Schema.make "BIG" [ ("A", Domain.Ints); ("B", Domain.Ints) ]
  in
  let mid_schema = Schema.make "MID" [ ("M", Domain.Ints) ] in
  let small_schema = Schema.make "SMALL" [ ("K", Domain.Ints) ] in
  let big =
    Xrel.of_list (List.init 300 (fun k -> t [ ("A", i (k mod 17)); ("B", i k) ]))
  in
  let midr = Xrel.of_list (List.init 40 (fun k -> t [ ("M", i k) ])) in
  let small = Xrel.of_list (List.init 3 (fun k -> t [ ("K", i k) ])) in
  let db =
    [
      ("BIG", (big_schema, big));
      ("MID", (mid_schema, midr));
      ("SMALL", (small_schema, small));
    ]
  in
  let env_scope name =
    Option.map (fun (s_, _) -> Schema.attr_set s_) (List.assoc_opt name db)
  in
  let stats =
    List.map
      (fun (name, (schema, x)) ->
        (name, Stats.collect ~attrs:(Schema.attrs schema) x))
      db
    |> fun tables ->
    {
      Plan.Cost.rowcount =
        (fun n -> Option.map (fun (_, x) -> Xrel.cardinal x) (List.assoc_opt n db));
      table = (fun n -> List.assoc_opt n tables);
      equipped = (fun _ _ -> false);
    }
  in
  let chain =
    Plan.Expr.Product (Plan.Expr.Product (Rel "BIG", Rel "MID"), Rel "SMALL")
  in
  let without = Plan.Rewrite.optimize ~env_scope chain in
  let with_stats = Plan.Rewrite.optimize ~cost:stats ~env_scope chain in
  printf "  product chain as written:  %s@." (Pp.to_string Plan.Expr.pp chain);
  printf "  optimized without stats:   %s@."
    (Pp.to_string Plan.Expr.pp without);
  printf "  optimized with stats:      %s@."
    (Pp.to_string Plan.Expr.pp with_stats);
  let env name = Option.map snd (List.assoc_opt name db) in
  let ok_reorder =
    (not (Plan.Expr.equal with_stats chain))
    && Plan.Expr.equal without chain
    && Xrel.equal (Plan.Expr.eval ~env chain) (Plan.Expr.eval ~env with_stats)
  in
  if not ok_reorder then e21_gate_failed := true;
  verdict "statistics flip the join order (smallest first), same answer"
    ok_reorder "cost-based reorder, result preserved by commutativity";
  (* --- analyze overhead ----------------------------------------- *)
  if not with_timings then printf "  (timings skipped)@."
  else begin
    let spec =
      { Workload.Gen.arity = 4; rows = 5000; domain_size = 100; null_density = 0.2 }
    in
    let x = Workload.Gen.xrel (Workload.Prng.create 2104) spec in
    let attrs = Workload.Gen.attrs spec in
    let rows = Xrel.to_list x in
    let t_scan =
      Timing.ns_per_run (fun () ->
          List.iter
            (fun r -> List.iter (fun a -> ignore (Tuple.get r a)) attrs)
            rows)
    in
    let t_collect =
      Timing.ns_per_run (fun () -> ignore (Stats.collect ~attrs x))
    in
    let ratio = t_collect /. t_scan in
    printf
      "  analyze on %d rows x %d columns: bare scan %s, collect %s \
       (%.1fx; gate: < 50x)@."
      (Xrel.cardinal x) (List.length attrs) (Timing.pp_ns t_scan)
      (Timing.pp_ns t_collect) ratio;
    let ok_overhead = ratio < 50. in
    if not ok_overhead then e21_gate_failed := true;
    verdict "analyze costs a bounded constant factor over one scan"
      ok_overhead "single governed pass per relation"
  end

(* ---------------------------------------------------------------- *)
(* E22: the concurrent session layer -- snapshot isolation, group
   commit throughput, and the crash-fault matrix.                     *)

let e22_gate_failed = ref false

let e22_temp_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec fresh k =
    let dir = Filename.concat base (Printf.sprintf "nullrel_e22_%s_%d" tag k) in
    if Sys.file_exists dir then fresh (k + 1) else dir
  in
  fresh 0

let rec e22_rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun e -> e22_rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let e22 ~with_timings () =
  section "E22" "Concurrent sessions: isolation, group commit, crash drills";
  (* --- the deterministic walkthrough ----------------------------- *)
  printf
    "  Two sessions race on overlapping snapshots; the first committer\n\
    \  wins, the loser aborts whole and retries on a fresh snapshot:@.";
  let demo_dir = e22_temp_dir "demo" in
  Fun.protect
    ~finally:(fun () -> e22_rm_rf demo_dir)
    (fun () ->
      List.iter
        (fun line -> printf "    %s@." line)
        (Session.Drive.demo ~dir:demo_dir ()));
  (* --- the crash-fault matrix ------------------------------------ *)
  printf
    "@.  Crash-fault matrix: each seeded trial builds acknowledged history\n\
    \  (including one deliberately aborted transaction), then stages a\n\
    \  group batch and kills the modelled process at a chosen point of\n\
    \  the commit window. Gates: every injected fault fires, recovery\n\
    \  loses no acknowledged transaction, resurrects no aborted one, and\n\
    \  a second replay finds nothing left to do.@.";
  let trials = 34 in
  let modes =
    [
      ("before group fsync", `Before_fsync);
      ("inside fsync (torn)", `Inside_fsync);
      ("after fsync, pre-publish", `After_fsync);
    ]
  in
  printf "  %-26s | %6s | %7s | %4s | %11s | %4s | %5s@." "kill point" "trials"
    "crashes" "lost" "resurrected" "torn" "clean";
  let all_ok = ref true in
  List.iter
    (fun (label, mode) ->
      let dir = e22_temp_dir "crash" in
      let d =
        Fun.protect
          ~finally:(fun () -> e22_rm_rf dir)
          (fun () -> Session.Drive.crash_matrix ~dir ~trials ~mode ())
      in
      printf "  %-26s | %6d | %7d | %4d | %11d | %4d | %5d@." label
        d.Session.Drive.trials d.Session.Drive.crashes d.Session.Drive.lost
        d.Session.Drive.resurrected d.Session.Drive.torn_tails
        d.Session.Drive.clean_second_replays;
      let ok =
        d.Session.Drive.crashes = trials
        && d.Session.Drive.lost = 0
        && d.Session.Drive.resurrected = 0
        && d.Session.Drive.clean_second_replays = trials
      in
      if not ok then all_ok := false)
    modes;
  if not !all_ok then e22_gate_failed := true;
  verdict
    (Printf.sprintf
       "%d seeded kills: zero lost committed, zero resurrected aborted"
       (3 * trials))
    !all_ok "fsync happens-before publish; validation is all-or-nothing";
  (* --- group commit vs one fsync per transaction ----------------- *)
  if not with_timings then printf "  (timings skipped)@."
  else begin
    printf
      "@.  Throughput on a modelled disk (every journal append pays a\n\
    \  ~1 ms fsync): N session domains each commit %d transactions.\n\
    \  Group commit drains whatever piled up behind the leader into one\n\
    \  append; the serial baseline pays one fsync per transaction.\n\
    \  Gate: >= 2x committed-txn throughput at 8 sessions.@."
      40;
    let fsync_s = 1e-3 in
    let slow_disk base =
      {
        base with
        Storage.Io.append_file =
          (fun path data ->
            (try Unix.sleepf fsync_s with Unix.Unix_error _ -> ());
            base.Storage.Io.append_file path data);
      }
    in
    let drive ~group ~sessions ~txns =
      let dir = e22_temp_dir "drive" in
      Fun.protect
        ~finally:(fun () -> e22_rm_rf dir)
        (fun () ->
          Session.Drive.seed ~dir ();
          let config =
            { Session.default_config with Session.group; checkpoint_every = 0 }
          in
          let eng, _ =
            Session.open_engine ~io:(slow_disk Storage.Io.real) ~config ~dir ()
          in
          let t0 = Unix.gettimeofday () in
          let workers =
            List.init sessions (fun k ->
                Stdlib.Domain.spawn (fun () ->
                    let s = Session.attach eng in
                    let lat = ref [] in
                    for j = 1 to txns do
                      ignore
                        (Session.exec_string s
                           (Printf.sprintf
                              "append to EVENTS (SID = %d, SEQ = %d)" (k + 1) j));
                      let t = Unix.gettimeofday () in
                      let rec commit budget =
                        match Session.commit s with
                        | _ -> ()
                        | exception
                            Session.Session_error.Error
                              (Session.Session_error.Queue_full _)
                          when budget > 0 ->
                            Session.flush eng;
                            commit (budget - 1)
                      in
                      commit 100;
                      lat := (Unix.gettimeofday () -. t) :: !lat
                    done;
                    !lat))
          in
          let lats = List.concat_map Stdlib.Domain.join workers in
          let elapsed = Unix.gettimeofday () -. t0 in
          let stats = Session.stats eng in
          Session.shutdown eng;
          let lat = Array.of_list lats in
          Array.sort compare lat;
          let tp = float_of_int stats.Session.committed /. elapsed in
          (tp, lat, stats))
    in
    let txns = 40 in
    printf "  %8s | %22s | %22s | %7s@." "sessions"
      "group txn/s (p50/p99)" "serial txn/s (p50/p99)" "speedup";
    let speedup_at_8 = ref 0. in
    List.iter
      (fun sessions ->
        let tp_g, lat_g, st_g = drive ~group:true ~sessions ~txns in
        let tp_s, lat_s, _ = drive ~group:false ~sessions ~txns in
        let speedup = tp_g /. Float.max 1e-9 tp_s in
        if sessions = 8 then speedup_at_8 := speedup;
        printf "  %8d | %8.0f (%4.1f/%4.1f ms) | %8.0f (%4.1f/%4.1f ms) | %6.1fx@."
          sessions tp_g
          (1e3 *. Session.Drive.percentile lat_g 50.)
          (1e3 *. Session.Drive.percentile lat_g 99.)
          tp_s
          (1e3 *. Session.Drive.percentile lat_s 50.)
          (1e3 *. Session.Drive.percentile lat_s 99.)
          speedup;
        ignore st_g)
      [ 1; 2; 4; 8 ];
    let ok = !speedup_at_8 >= 2. in
    if not ok then e22_gate_failed := true;
    verdict
      (Printf.sprintf
         "group commit amortizes the fsync: %.1fx throughput at 8 sessions \
          (gate: >= 2x)"
         !speedup_at_8)
      ok "one bounded-window fsync per batch"
  end

(* ---------------------------------------------------------------- *)
(* E23: the constraint subsystem -- index probes vs full rescans, and
   the price of the machinery when nothing is declared.               *)

let e23_gate_failed = ref false

let e23 ~with_timings () =
  section "E23" "Constraints: incremental enforcement cost";
  printf
    "  An insert under a foreign key is validated by probing the target's\n\
    \  index, not by rescanning the catalog; a catalog with no declarations\n\
    \  must pay one branch.  Gates: per-insert probe cost grows sublinearly\n\
    \  where a full check_references pass grows with the target, and the\n\
    \  constraint-free DML overhead stays < 3%%.@.";
  (* Declared constraints mirror into the advisory full-scan check --
     the symbolic half of the section, independent of timings. *)
  let mk_cat n =
    let t_schema = Schema.make "T" [ ("K", Domain.Ints); ("V", Domain.Ints) ] in
    let r_schema = Schema.make "R" [ ("F", Domain.Ints); ("W", Domain.Ints) ] in
    let t_rows =
      Xrel.of_list (List.init n (fun k -> t [ ("K", i k); ("V", i (k mod 7)) ]))
    in
    let r_rows =
      Xrel.of_list
        (List.init (n / 4) (fun k -> t [ ("F", i (k mod n)); ("W", i k) ]))
    in
    let cat = Storage.Catalog.add Storage.Catalog.empty t_schema t_rows in
    let cat = Storage.Catalog.add cat r_schema r_rows in
    (Dml.exec_string cat "constrain fk R (F) to T (K) on delete restrict as fk_rt")
      .Dml.catalog
  in
  let sample = mk_cat 16 in
  let dangling =
    match Dml.exec_string sample "append to R (F = 99, W = 0)" with
    | _ -> false
    | exception Constr.Error _ -> true
  in
  let clean = Storage.Catalog.check_references sample = [] in
  verdict "the declared foreign key rejects a dangling insert by probe"
    (dangling && clean) "incremental enforcement agrees with the full scan";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* --- (a) probe vs rescan, n and 8n rows ----------------------- *)
    (* Validating one insert incrementally means enforcing a one-tuple
       delta (an index probe into T); the alternative is re-running the
       full check_references pass, which re-validates every tuple of R.
       Both are measured on the post-insert catalog, outside statement
       application, with T's lazy index forced beforehand. *)
    let measure cat =
      let added = t [ ("F", i 1); ("W", i 999_983) ] in
      let after =
        Storage.Catalog.set_relation cat "R"
          (Xrel.union (Storage.Catalog.relation cat "R") (Xrel.of_list [ added ]))
      in
      let delta =
        {
          Constr.d_rel = "R";
          d_added = Tuple.Set.singleton added;
          d_removed = Tuple.Set.empty;
        }
      in
      ignore (Storage.Catalog.enforce after [ delta ]);
      let p =
        Timing.ns_per_run (fun () ->
            match Storage.Catalog.enforce after [ delta ] with
            | [] -> ()
            | _ -> assert false)
      in
      let s =
        Timing.ns_per_run (fun () ->
            match Storage.Catalog.check_references after with
            | [] -> ()
            | _ -> assert false)
      in
      (p, s)
    in
    let n = 2_000 in
    let p1, s1 = measure (mk_cat n) in
    let p8, s8 = measure (mk_cat (8 * n)) in
    let growth_p = p8 /. p1 and growth_s = s8 /. s1 in
    printf "  validating one insert, catalog at %d rows -> %d rows:@." n (8 * n);
    printf "  index probe:       %s -> %s (%.1fx)@." (Timing.pp_ns p1)
      (Timing.pp_ns p8) growth_p;
    printf "  check_references:  %s -> %s (%.1fx)@." (Timing.pp_ns s1)
      (Timing.pp_ns s8) growth_s;
    let ok_sublinear = growth_p < 0.5 *. growth_s && p8 < s8 in
    if not ok_sublinear then e23_gate_failed := true;
    verdict "probe cost is sublinear in the target where the rescan is not"
      ok_sublinear "incremental enforcement pays per statement, not per row";
    (* --- (b) constraint-free overhead, blockwise like E19 --------- *)
    let free =
      let schema = Schema.make "P" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
      let rows =
        Xrel.of_list (List.init 400 (fun k -> t [ ("A", i k); ("B", i (k mod 13)) ]))
      in
      Storage.Catalog.add Storage.Catalog.empty schema rows
    in
    let stmts =
      List.init 8 (fun k ->
          Quel.Parser.parse_statement
            (Printf.sprintf "append to P (A = %d, B = %d)" (500 + k) k))
    in
    let workload () =
      List.iter (fun stmt -> ignore (Dml.exec free stmt)) stmts
    in
    let time_once f =
      let t0 = Exec.monotonic_now () in
      f ();
      (Exec.monotonic_now () -. t0) *. 1e9
    in
    Gc.major ();
    let blocks = 8 and per_block = 10 in
    let ratios = Array.make blocks 0. in
    let t_off = ref infinity and t_on = ref infinity in
    for b = 0 to blocks - 1 do
      let off = ref infinity and on_ = ref infinity in
      for _ = 1 to per_block do
        Constr.enabled := false;
        off := Float.min !off (time_once workload);
        Constr.enabled := true;
        on_ := Float.min !on_ (time_once workload)
      done;
      ratios.(b) <- !on_ /. !off;
      t_off := Float.min !t_off !off;
      t_on := Float.min !t_on !on_
    done;
    Constr.enabled := true;
    let median a =
      Array.sort Float.compare a;
      (a.((Array.length a - 1) / 2) +. a.(Array.length a / 2)) /. 2.
    in
    let overhead = (median ratios -. 1.) *. 100. in
    printf
      "  8 appends on a constraint-free catalog (median over %d blocks of \
       %d):@."
      blocks per_block;
    printf "  kill switch off %s, on %s; overhead %+.1f%% (gate: < 3%%)@."
      (Timing.pp_ns !t_off) (Timing.pp_ns !t_on) overhead;
    let ok_overhead = overhead < 3.0 in
    if not ok_overhead then e23_gate_failed := true;
    verdict "an undeclared catalog pays under 3% for the machinery"
      ok_overhead "the enforcement fast path is one branch"
  end

(* ---------------------------------------------------------------- *)
(* E24: the system catalog -- telemetry as relations, the history
   ring, and the price of the machinery when the recorder is off.     *)

let e24_gate_failed = ref false

let e24 ~with_timings () =
  section "E24" "System catalog: telemetry as relations";
  printf
    "  Engine state is queryable as sys_* x-relations with ni for honestly\n\
    \  unknown fields; the Obs.History ring makes p99-over-time a plain\n\
    \  retrieve.  Gates: sys_relations freshness agrees with the catalog\n\
    \  stamps, the ring stays bounded, and a metrics-hot governed workload\n\
    \  pays < 3%% for the recorder machinery while it is switched off.@.";
  (* --- symbolic: freshness agreement + the acceptance query ------- *)
  let mk_schema name attr = Schema.make name [ (attr, Domain.Ints) ] in
  let cat =
    Storage.Catalog.add Storage.Catalog.empty (mk_schema "T" "K")
      (Xrel.of_list (List.init 64 (fun k -> t [ ("K", i k) ])))
  in
  let cat =
    Storage.Catalog.add cat (mk_schema "R" "F")
      (Xrel.of_list (List.init 16 (fun k -> t [ ("F", i (k mod 64)) ])))
  in
  (* T: analyzed then mutated (stale); R: never analyzed (missing);
     one constraint attached unverified, as recovery does. *)
  let cat =
    Storage.Catalog.set_stats cat "T"
      (Stats.collect ~attrs:[ Attr.make "K" ]
         (Storage.Catalog.relation cat "T"))
  in
  let cat = (Dml.exec_string cat "append to T (K = 64)").Dml.catalog in
  let cat =
    Storage.Catalog.attach_constraint ~verified:false cat
      (Constr.Unique { name = "t_key"; rel = "T"; attrs = [ Attr.make "K" ] })
  in
  let agreement =
    List.for_all
      (fun name ->
        let _, (_, sys) = Sysview.sys_relations cat in
        match
          List.find_opt
            (fun r -> Tuple.get r (Attr.make "NAME") = Value.Str name)
            (Xrel.to_list sys)
        with
        | None -> false
        | Some r ->
            let expect =
              match Storage.Catalog.stats_status cat name with
              | Storage.Catalog.Fresh _ -> "fresh"
              | Storage.Catalog.Stale _ -> "stale"
              | Storage.Catalog.Missing -> "missing"
            in
            Tuple.get r (Attr.make "STATS") = Value.Str expect)
      (Storage.Catalog.names cat)
  in
  verdict "sys_relations freshness agrees with the catalog stamps" agreement
    "telemetry is derived, never bookkept twice";
  (* The acceptance query, pure Quel: which relations need attention
     (stale statistics or constraints awaiting re-verification)? *)
  let db = Storage.Catalog.to_db cat @ Sysview.db cat in
  let attention =
    Quel.Eval.run_string db
      "range of r is sys_relations retrieve (r.NAME) where r.STATS = \
       \"stale\" or r.UNVERIFIED > 0"
  in
  let names =
    List.sort String.compare
      (List.map
         (fun r -> Value.to_string (Tuple.get r (Attr.make "NAME")))
         (Xrel.to_list attention.Quel.Eval.rel))
  in
  verdict "one Quel query names the relations needing attention"
    (names = [ "T" ])
    "the catalog joins like user data";
  (* --- symbolic: the ring is bounded ------------------------------ *)
  Obs.Metrics.set_enabled true;
  Obs.History.set_enabled true;
  Obs.History.configure ~interval:1_000_000_000 ~capacity:6 ();
  for _ = 1 to 20 do
    Obs.History.snap_now ()
  done;
  let retained = List.length (Obs.History.entries ()) in
  Obs.History.set_enabled false;
  Obs.History.clear ();
  Obs.History.configure ~interval:50_000 ~capacity:64 ();
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  verdict "20 snapshots into a 6-slot ring retain exactly 6" (retained = 6)
    "the flight recorder is bounded";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* --- recorder off vs on, blockwise like E23 ------------------- *)
    (* A metrics-hot governed workload (every tick takes the observed
       main-domain branch, where History.charge sits): the kill switch
       off must make the recorder one predicted branch, and even on,
       snapshots at the default interval amortize to noise. *)
    let left =
      Xrel.of_list
        (List.init 300 (fun k -> t [ ("ID", i (k mod 97)); ("A", i k) ]))
    in
    let right =
      Xrel.of_list
        (List.init 300 (fun k -> t [ ("ID", i (k mod 97)); ("B", i k) ]))
    in
    let on' = Attr.set_of_list [ "ID" ] in
    let workload () =
      Exec.with_governor (Exec.make ()) (fun () ->
          ignore (Algebra.equijoin on' left right))
    in
    let time_once f =
      let t0 = Exec.monotonic_now () in
      f ();
      (Exec.monotonic_now () -. t0) *. 1e9
    in
    Obs.Metrics.set_enabled true;
    Gc.major ();
    let blocks = 8 and per_block = 10 in
    let ratios = Array.make blocks 0. in
    let t_off = ref infinity and t_on = ref infinity in
    for b = 0 to blocks - 1 do
      let off = ref infinity and on_ = ref infinity in
      for _ = 1 to per_block do
        Obs.History.set_enabled false;
        off := Float.min !off (time_once workload);
        Obs.History.set_enabled true;
        on_ := Float.min !on_ (time_once workload)
      done;
      ratios.(b) <- !on_ /. !off;
      t_off := Float.min !t_off !off;
      t_on := Float.min !t_on !on_
    done;
    Obs.History.set_enabled false;
    Obs.History.clear ();
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    let median a =
      Array.sort Float.compare a;
      (a.((Array.length a - 1) / 2) +. a.(Array.length a / 2)) /. 2.
    in
    let overhead = (median ratios -. 1.) *. 100. in
    printf
      "  governed 300x300 equijoin, metrics hot (median over %d blocks of \
       %d):@."
      blocks per_block;
    printf "  recorder off %s, on %s; overhead %+.1f%% (gate: < 3%%)@."
      (Timing.pp_ns !t_off) (Timing.pp_ns !t_on) overhead;
    let ok_overhead = overhead < 3.0 in
    if not ok_overhead then e24_gate_failed := true;
    verdict "the switched-off recorder pays under 3%" ok_overhead
      "history is one branch until asked for"
  end

(* ---------------------------------------------------------------- *)
(* E25: the semantics dialects -- the containment lattice between the
   four readings, and the price of routing ||Q||- through the seam.   *)

let e25_gate_failed = ref false

let e25 ~with_timings () =
  section "E25" "Semantics dialects: one seam, four readings";
  printf
    "  Every evaluator now answers through a Semantics capability record\n\
    \  (ni / codd / sql / certain).  Gates: the differential harness's\n\
    \  containment lattice holds on generated queries, the dialects split\n\
    \  the paper's PS example as Section 5 predicts, and the ni dialect\n\
    \  pays < 3%% over a replica of the pre-seam evaluator.@.";
  (* --- symbolic: the harness at bench volume ---------------------- *)
  let report = Workload.Diff.run ~queries:200 () in
  List.iter
    (fun line -> printf "  %s@." line)
    (String.split_on_char '\n' (Workload.Diff.render report));
  verdict "containment lattice holds on 200 generated queries"
    (Workload.Diff.ok report)
    "certain <= ni <= TRUE band; UNKNOWN <= MAYBE (Section 5)";
  (* --- symbolic: the PS example under all four dialects ----------- *)
  let db =
    [
      ( "PS",
        ( Schema.make "PS" [ ("S#", Domain.Strings); ("P#", Domain.Strings) ],
          ps ) );
    ]
  in
  let q = Quel.Parser.parse "range of p is PS retrieve (p.S#) where p.P# = \"p1\"" in
  let names (r : Relation.t) =
    List.sort String.compare
      (List.map
         (fun row -> Value.to_string (Tuple.get row (Attr.make "S#")))
         (Relation.to_list r))
  in
  let split_as_printed =
    List.for_all
      (fun (d, want_sure, want_band) ->
        let b =
          Quel.Eval.query
            (Quel.Eval.ctx ~semantics:(Semantics.of_dialect d) ())
            db q
        in
        let band =
          match b.Quel.Eval.maybe with Some m -> names m | None -> []
        in
        printf "  %-7s sure {%s}%s@."
          (Semantics.to_string d)
          (String.concat ", " (names b.Quel.Eval.sure))
          (match b.Quel.Eval.maybe with
          | None -> ""
          | Some _ ->
              Printf.sprintf "  %s {%s}"
                (Semantics.of_dialect d).Semantics.maybe_label
                (String.concat ", " band)
          );
        names b.Quel.Eval.sure = want_sure && band = want_band)
      [
        (Semantics.Ni_lower, [ "s1"; "s2" ], []);
        (Semantics.Codd_maybe, [ "s1"; "s2" ], [ "s3" ]);
        (Semantics.Sql_3vl, [ "s1"; "s2" ], [ "s3" ]);
        (Semantics.Certain, [ "s1"; "s2" ], []);
      ]
  in
  verdict "the dialects split the PS example as the paper predicts"
    split_as_printed "||Q||- = {s1,s2}; s3 is MAYBE/UNKNOWN only";
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* --- seam cost on the ni fast path, blockwise like E23 -------- *)
    (* A replica of the pre-seam evaluator: the same combined tuples,
       a plain [Predicate.eval = True] filter, the same projection and
       minimizing x-relation build.  The seam adds one record
       dereference per connective and a band dispatch per row; that
       must stay in the noise. *)
    let spec =
      { Workload.Gen.rows = 400; domain_size = 16; arity = 4;
        null_density = 0.15 }
    in
    let g = Workload.Prng.create 7 in
    let bdb = Workload.Gen.db (Workload.Prng.split g) spec 1 in
    let bq =
      Quel.Parser.parse
        "range of x is R1 retrieve (x.A1, x.A2) where x.A1 > 3 and x.A3 <= 12"
    in
    let replica () =
      let p =
        match bq.Quel.Ast.where with
        | None -> Predicate.Const Tvl.True
        | Some c -> Quel.Eval.predicate_of_cond c
      in
      let rows =
        List.filter
          (fun r ->
            Exec.tick ();
            Predicate.eval p r = Tvl.True)
          (Quel.Eval.combined_tuples bdb bq)
      in
      let attrs =
        List.map (Quel.Eval.target_attr bq.Quel.Ast.targets) bq.Quel.Ast.targets
      in
      let project r =
        List.fold_left2
          (fun acc (v, a) out ->
            Tuple.set acc out (Tuple.get r (Quel.Resolve.prefixed v a)))
          Tuple.empty bq.Quel.Ast.targets attrs
      in
      ignore (Xrel.of_list (List.map project rows))
    in
    let seam () = ignore (Quel.Eval.run bdb bq) in
    let time_once f =
      let t0 = Exec.monotonic_now () in
      f ();
      (Exec.monotonic_now () -. t0) *. 1e9
    in
    Gc.major ();
    let blocks = 8 and per_block = 10 in
    let ratios = Array.make blocks 0. in
    let t_pre = ref infinity and t_seam = ref infinity in
    for b = 0 to blocks - 1 do
      let pre = ref infinity and post = ref infinity in
      for _ = 1 to per_block do
        pre := Float.min !pre (time_once replica);
        post := Float.min !post (time_once seam)
      done;
      ratios.(b) <- !post /. !pre;
      t_pre := Float.min !t_pre !pre;
      t_seam := Float.min !t_seam !post
    done;
    let median a =
      Array.sort Float.compare a;
      (a.((Array.length a - 1) / 2) +. a.(Array.length a / 2)) /. 2.
    in
    let overhead = (median ratios -. 1.) *. 100. in
    printf
      "  400-row ni retrieve (median over %d blocks of %d):@." blocks
      per_block;
    printf "  pre-seam replica %s, through the seam %s; overhead %+.1f%% \
            (gate: < 3%%)@."
      (Timing.pp_ns !t_pre) (Timing.pp_ns !t_seam) overhead;
    let ok_overhead = overhead < 3.0 in
    if not ok_overhead then e25_gate_failed := true;
    verdict "the ni fast path pays under 3% for the seam" ok_overhead
      "the lower bound stays the cheap default"
  end

(* ---------------------------------------------------------------- *)
(* E26: incremental minimality and persistent secondary indexes --
   writes maintain the minimal representation by probing the
   subsumption index instead of re-minimizing, and declared
   equi-indexes survive a restart under the CRC stamp protocol.       *)

let e26_gate_failed = ref false

let e26_read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let e26_write path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let e26_prefixed prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

(* Keep only the [keep] lines of the INDEX file and restamp the
   self-checksum trailer, so the loader sees a well-formed file that is
   merely missing entries (a stale or partial writer, not a torn one). *)
let e26_filter_index dir keep =
  let path = Filename.concat dir "INDEX" in
  let body =
    String.concat ""
      (List.filter_map
         (fun l ->
           if l = "" || e26_prefixed "end\t" l then None
           else if keep l then Some (l ^ "\n")
           else None)
         (String.split_on_char '\n' (e26_read path)))
  in
  e26_write path
    (Printf.sprintf "%send\t%s\n" body
       (Storage.Crc32.to_hex (Storage.Crc32.digest body)))

let e26_contains s sub =
  let n = String.length sub in
  let rec go k =
    k + n <= String.length s && (String.sub s k n = sub || go (k + 1))
  in
  go 0

let e26 ~with_timings () =
  section "E26" "Incremental minimality and persistent secondary indexes";
  printf
    "  A write maintains the minimal representation by probing the\n\
    \  relation's subsumption index -- admit, absorb, or evict -- never by\n\
    \  re-minimizing from scratch, and declared equi-indexes persist\n\
    \  beside the data under a per-relation CRC stamp.  Gates: a mixed\n\
    \  schedule lands on the full-rewrite oracle's catalog word for word,\n\
    \  per-append cost is sublinear where the oracle's is not, and a cold\n\
    \  start attaching fresh dumps beats rebuilding >= 2x.@.";
  (* --- symbolic: incremental DML = the full-rewrite oracle --------- *)
  let schedule =
    [
      "append to R (A = 1)";
      "append to R (B = 2)";
      "append to R (A = 1, B = 2)";
      "append to R (A = 1, B = 2)";
      "append to R (A = 3)";
      "append to S (K = 1, V = \"one\")";
      "append to S (K = 1, V = \"two\")";
      "range of r is R replace r (B = 9) where r.A = 3";
      "range of r is R delete r where r.B = 2";
    ]
  in
  let run incremental =
    let was = !Dml.incremental in
    Dml.incremental := incremental;
    Fun.protect
      ~finally:(fun () -> Dml.incremental := was)
      (fun () ->
        let seed =
          let r =
            Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ]
          in
          let s =
            Schema.make "S" ~key:[ "K" ]
              [ ("K", Domain.Ints); ("V", Domain.Strings) ]
          in
          Storage.Catalog.add
            (Storage.Catalog.add Storage.Catalog.empty r Xrel.bottom)
            s Xrel.bottom
        in
        List.fold_left
          (fun (cat, log) stmt ->
            match Dml.exec_string cat stmt with
            | o -> (o.Dml.catalog, o.Dml.message :: log)
            | exception Storage.Catalog.Violation _ ->
                (cat, "rejected (key violation)" :: log))
          (seed, []) schedule)
  in
  let cat_inc, log_inc = run true in
  let cat_ora, log_ora = run false in
  List.iter2
    (fun stmt msg -> printf "  %-48s -> %s@." stmt msg)
    schedule (List.rev log_inc);
  let catalogs_agree =
    Storage.Catalog.names cat_inc = Storage.Catalog.names cat_ora
    && List.for_all
         (fun n ->
           Xrel.equal
             (Storage.Catalog.relation cat_inc n)
             (Storage.Catalog.relation cat_ora n))
         (Storage.Catalog.names cat_inc)
  in
  let ok_parity =
    catalogs_agree && List.equal String.equal log_inc log_ora
  in
  if not ok_parity then e26_gate_failed := true;
  verdict "the incremental path lands on the oracle's catalog, word for word"
    ok_parity "minimality is maintained, never re-established";
  show_table ~title:"R after the schedule (either pipeline)" [ "A"; "B" ]
    (Storage.Catalog.relation cat_inc "R");
  (* --- symbolic: the INDEX stamp protocol -------------------------- *)
  let dept = Attr.Set.singleton (Attr.make "DEPT") in
  let proto_rows =
    Xrel.of_list
      [
        t [ ("ENAME", Value.Str "anne"); ("DEPT", Value.Str "toys"); ("SAL", i 12) ];
        t [ ("ENAME", Value.Str "bert"); ("DEPT", Value.Str "toys"); ("SAL", i 10) ];
        t [ ("ENAME", Value.Str "carl"); ("DEPT", Value.Str "candy"); ("SAL", i 9) ];
        t [ ("ENAME", Value.Str "dora"); ("SAL", i 11) ];
      ]
  in
  let proto_dir = e22_temp_dir "e26proto" in
  Fun.protect
    ~finally:(fun () -> e22_rm_rf proto_dir)
    (fun () ->
      let cat =
        Storage.Catalog.add Storage.Catalog.empty
          (Schema.make "EMP"
             [
               ("ENAME", Domain.Strings);
               ("DEPT", Domain.Strings);
               ("SAL", Domain.Ints);
             ])
          proto_rows
      in
      let cat = Storage.Catalog.create_index cat "EMP" ~kind:"hash" dept in
      let cat =
        Storage.Catalog.create_index cat "EMP" ~kind:"range"
          (Attr.Set.singleton (Attr.make "SAL"))
      in
      Storage.Persist.save ~dir:proto_dir cat;
      let probes_toys rpt =
        match
          Storage.Catalog.equi_probe rpt.Storage.Persist.catalog "EMP" dept
        with
        | None -> false
        | Some probe ->
            List.length (probe (t [ ("DEPT", Value.Str "toys") ])) = 2
      in
      let indexes rpt =
        List.length (Storage.Catalog.all_indexes rpt.Storage.Persist.catalog)
      in
      let fresh = Storage.Persist.load_report ~dir:proto_dir () in
      let ok_attach =
        fresh.Storage.Persist.journal_note = None
        && indexes fresh = 2 && probes_toys fresh
      in
      verdict "a fresh stamp re-attaches both dumps, no rebuild, no note"
        ok_attach "attach is the cold-start fast path";
      e26_filter_index proto_dir (fun l -> not (e26_prefixed "line\t" l));
      let rebuilt = Storage.Persist.load_report ~dir:proto_dir () in
      let ok_rebuild =
        rebuilt.Storage.Persist.journal_note = None
        && indexes rebuilt = 2 && probes_toys rebuilt
      in
      verdict "a missing dump degrades to a from-scratch rebuild"
        ok_rebuild "slower, never wrong";
      let path = Filename.concat proto_dir "INDEX" in
      let data = e26_read path in
      e26_write path (String.sub data 0 (String.length data / 2));
      let torn = Storage.Persist.load_report ~dir:proto_dir () in
      let ok_torn =
        (match torn.Storage.Persist.journal_note with
        | Some note -> e26_contains note "INDEX"
        | None -> false)
        && Storage.Catalog.all_indexes torn.Storage.Persist.catalog = []
        && Xrel.equal
             (Storage.Catalog.relation torn.Storage.Persist.catalog "EMP")
             proto_rows
      in
      if not (ok_attach && ok_rebuild && ok_torn) then
        e26_gate_failed := true;
      verdict "a torn INDEX file drops the declarations loudly, data intact"
        ok_torn "acceleration is never allowed to be wrong");
  if not with_timings then printf "  (timings skipped)@."
  else begin
    (* --- (a) one append, incremental vs the oracle, n and 8n ------- *)
    (* The incremental path probes the relation's memoized subsumption
       index and applies the one-tuple delta; the oracle re-runs
       [Update.insert] against the whole relation and re-diffs the
       catalogs.  Both are measured on a warmed catalog (the lazy index
       is forced by a throwaway statement first). *)
    let mk_cat n =
      let schema =
        Schema.make "T" [ ("A", Domain.Ints); ("B", Domain.Ints) ]
      in
      let rows =
        Xrel.of_list
          (List.init n (fun k -> t [ ("A", i k); ("B", i (k * 7 mod n)) ]))
      in
      Storage.Catalog.add Storage.Catalog.empty schema rows
    in
    let stmt =
      Quel.Parser.parse_statement "append to T (A = 999983, B = 999983)"
    in
    let measure cat =
      let time flag =
        let was = !Dml.incremental in
        Dml.incremental := flag;
        Fun.protect
          ~finally:(fun () -> Dml.incremental := was)
          (fun () ->
            ignore (Dml.exec cat stmt);
            Timing.ns_per_run (fun () -> ignore (Dml.exec cat stmt)))
      in
      let p = time true in
      let s = time false in
      (p, s)
    in
    let n = 2_000 in
    let p1, s1 = measure (mk_cat n) in
    let p8, s8 = measure (mk_cat (8 * n)) in
    let growth_p = p8 /. p1 and growth_s = s8 /. s1 in
    printf "  one append, relation at %d rows -> %d rows:@." n (8 * n);
    printf "  incremental probe: %s -> %s (%.1fx)@." (Timing.pp_ns p1)
      (Timing.pp_ns p8) growth_p;
    printf "  full-rewrite oracle: %s -> %s (%.1fx)@." (Timing.pp_ns s1)
      (Timing.pp_ns s8) growth_s;
    let ok_sublinear = growth_p < 0.5 *. growth_s && p8 < s8 in
    if not ok_sublinear then e26_gate_failed := true;
    verdict "per-statement cost is sublinear where the oracle's is not"
      ok_sublinear "maintenance pays for the delta, not the relation";
    (* --- (b) cold start: attach fresh dumps vs rebuild ------------- *)
    (* The loader's index phase is [Catalog.restore_index] once per
       declaration: a positional re-attach of the dump when the stamp
       matched the data file, a from-scratch build otherwise.  Both are
       run here against the same already-decoded data catalog, so the
       measured difference is exactly the attach-vs-build work (the
       data decode, identical on either path, is excluded). *)
    let n = 8_000 in
    let schema =
      Schema.make "C"
        [ ("K", Domain.Ints); ("S", Domain.Strings); ("W", Domain.Ints) ]
    in
    let rows =
      Xrel.of_list
        (List.init n (fun k ->
             t
               [
                 ("K", i (k * 7919 mod n));
                 ("S", Value.Str (Printf.sprintf "s%05d" (k mod 97)));
                 ("W", i (k mod 251));
               ]))
    in
    let data_cat = Storage.Catalog.add Storage.Catalog.empty schema rows in
    let decls =
      [
        ("range", [ "K" ]); ("range", [ "S" ]); ("range", [ "W" ]);
        ("hash", [ "S" ]); ("hash", [ "W" ]);
      ]
    in
    let indexed_cat =
      List.fold_left
        (fun cat (kind, attrs) ->
          Storage.Catalog.create_index cat "C" ~kind (Attr.set_of_list attrs))
        data_cat decls
    in
    let dumps =
      List.filter_map
        (fun (kind, attrs0) ->
          let attrs = Attr.set_of_list attrs0 in
          Option.map
            (fun ls -> (kind, attrs, ls))
            (Storage.Catalog.dump_index indexed_cat "C" ~kind attrs))
        decls
    in
    let restore lines_of =
      List.fold_left
        (fun (cat, all) (kind, attrs, ls) ->
          let cat, attached =
            Storage.Catalog.restore_index cat "C" ~kind attrs
              ~lines:(lines_of ls)
          in
          (cat, all && attached))
        (data_cat, true) dumps
    in
    let all_attached =
      List.length dumps = List.length decls && snd (restore (fun ls -> Some ls))
    in
    let attach_ns =
      Timing.ns_per_run (fun () -> ignore (restore (fun ls -> Some ls)))
    in
    let rebuild_ns =
      Timing.ns_per_run (fun () -> ignore (restore (fun _ -> None)))
    in
    printf "  cold-start index phase, %d rows, %d declarations:@." n
      (List.length decls);
    printf "  attach fresh dumps: %s; rebuild from declarations: %s (%.1fx)@."
      (Timing.pp_ns attach_ns) (Timing.pp_ns rebuild_ns)
      (rebuild_ns /. attach_ns);
    let ok_cold = all_attached && rebuild_ns >= 2. *. attach_ns in
    if not ok_cold then e26_gate_failed := true;
    verdict "attaching fresh dumps beats rebuilding >= 2x" ok_cold
      "persisted indexes are worth their bytes"
  end

(* ---------------------------------------------------------------- *)
(* E14: the conclusion's open problem -- FD generalizations lose
   Armstrong properties.                                              *)

let e14 () =
  section "E14"
    "Functional dependencies under nulls: the Section 8 open problem";
  printf
    "  paper: 'we do not know of any generalization of concepts such as\n\
    \  functional or multivalued dependencies, which preserves all the\n\
    \  properties that makes them so useful'. Audit of three candidate\n\
    \  satisfaction notions against the Armstrong axioms:@.";
  let universe = Attr.set_of_list [ "A"; "B"; "C" ] in
  let battery =
    [
      Relation.of_list
        [ t [ ("A", i 1); ("B", i 10) ]; t [ ("A", i 2); ("B", i 10) ] ];
      Relation.of_list [ t [ ("A", i 1); ("B", i 10) ]; t [ ("A", i 1) ] ];
      (* B null everywhere: A -> B and B -> C vacuous, A -> C violated *)
      Relation.of_list
        [ t [ ("A", i 1); ("C", i 1) ]; t [ ("A", i 1); ("C", i 2) ] ];
      Relation.of_list [ t [ ("A", i 1); ("B", i 1); ("C", i 1) ] ];
      Relation.empty;
    ]
  in
  let notions =
    [
      ("total-pairs", Deps.Fd.satisfies_total);
      ("no-conflict", Deps.Fd.satisfies_no_conflict);
    ]
  in
  List.iter
    (fun (name, notion) ->
      printf "  notion %-12s:@." name;
      List.iter
        (fun v -> printf "    %a@." Deps.Armstrong.pp_verdict v)
        (Deps.Armstrong.audit notion battery ~universe))
    notions;
  let failing_transitivity =
    List.for_all
      (fun (_, notion) ->
        match Deps.Armstrong.audit notion battery ~universe with
        | [ r; a; t_ ] ->
            r.Deps.Armstrong.holds && a.Deps.Armstrong.holds
            && not t_.Deps.Armstrong.holds
        | _ -> false)
      notions
  in
  verdict
    "both null-aware notions keep reflexivity and augmentation but lose \
     transitivity"
    failing_transitivity "Section 8 conclusion"

(* ---------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv in
  let with_timings = not (List.mem "--skip-timings" args) in
  if List.mem "--fast" args then Timing.fast ();
  printf
    "Reproduction harness for: C. Zaniolo, \"Database Relations with Null \
     Values\" (PODS 1982 / JCSS 28, 1984)@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e9 ();
  e10 ();
  e7 ~with_timings ();
  e8 ~with_timings ();
  e11 ~with_timings ();
  e12 ~with_timings ();
  e13 ~with_timings ();
  e15 ~with_timings ();
  e16 ~with_timings ();
  e17 ~with_timings ();
  e18 ~with_timings ();
  e19 ~with_timings ();
  e20 ~with_timings ();
  e21 ~with_timings ();
  e22 ~with_timings ();
  e23 ~with_timings ();
  e24 ~with_timings ();
  e25 ~with_timings ();
  e26 ~with_timings ();
  e14 ();
  printf "@.All sections completed.@.";
  if
    !e19_gate_failed || !e20_gate_failed || !e21_gate_failed
    || !e22_gate_failed || !e23_gate_failed || !e24_gate_failed
    || !e25_gate_failed || !e26_gate_failed
  then exit 1
