open Nullrel

type t = Mtuple.Set.t

let empty = Mtuple.Set.empty
let of_list = Mtuple.Set.of_list
let to_list = Mtuple.Set.elements
let cardinal = Mtuple.Set.cardinal
let add = Mtuple.Set.add
let mem = Mtuple.Set.mem

let select_eq a v r =
  Mtuple.Set.filter
    (fun tu -> Tvl.equal (Mvalue.select_eq3 (Mtuple.get tu a) v) Tvl.True)
    r

let select qualification r =
  Mtuple.Set.filter (fun tu -> Tvl.equal (qualification tu) Tvl.True) r

let equijoin x r1 r2 =
  Mtuple.Set.fold
    (fun t1 acc ->
      Mtuple.Set.fold
        (fun t2 acc ->
          match Mtuple.join_on x t1 t2 with
          | Some joined -> Mtuple.Set.add joined acc
          | None -> acc)
        r2 acc)
    r1 Mtuple.Set.empty

let project x r = Mtuple.Set.map (fun tu -> Mtuple.restrict tu x) r

let to_plain r =
  Mtuple.Set.fold
    (fun tu acc -> Relation.add (Mtuple.to_plain tu) acc)
    r Relation.empty

let instantiate valuation r = Mtuple.Set.map (Mtuple.instantiate valuation) r

let marks r =
  let module Int_set = Set.Make (Int) in
  let collect tu acc =
    List.fold_left
      (fun acc (_, v) ->
        match v with
        | Mvalue.Marked m -> Int_set.add (m :> int) acc
        | Mvalue.Const _ -> acc)
      acc (Mtuple.to_list tu)
  in
  Int_set.elements (Mtuple.Set.fold collect r Int_set.empty)
  |> List.map Mvalue.mark_of_int

let pp ppf r =
  Format.fprintf ppf "{@[<hv>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Mtuple.pp)
    (to_list r)
