(** Relations over marked tuples, with the dual select/join semantics
    of Section 2's marked-null discussion.

    This is deliberately a thin layer: marked relations support the
    operations the paper's example needs (selection, equijoin,
    projection) plus the two bridges back into the core model —
    {!to_plain} (forget marks) and {!instantiate} (resolve marks).
    The full lattice theory lives in {!Nullrel.Xrel}; marks are the
    "more informative interpretation" the conclusion leaves as a
    trade-off, not a replacement. *)

open Nullrel

type t

val empty : t
val of_list : Mtuple.t list -> t
val to_list : t -> Mtuple.t list
val cardinal : t -> int
val add : Mtuple.t -> t -> t
val mem : Mtuple.t -> t -> bool

val select_eq : Attr.t -> Mvalue.t -> t -> t
(** Selection with the "regular unknown" discipline: keeps tuples whose
    attribute is {e certainly} equal — a marked null qualifies only
    against the very same mark, never against a constant. *)

val select : (Mtuple.t -> Tvl.t) -> t -> t
(** General selection by a three-valued qualification (keeps [True]). *)

val equijoin : Attr.Set.t -> t -> t -> t
(** Join with the "regular nonnull value" discipline: marks join marks
    with the same identity, constants join equal constants, plain nulls
    join nothing. *)

val project : Attr.Set.t -> t -> t

val to_plain : t -> Relation.t
(** Forgets marks; the resulting representation is a sound
    no-information approximation of the marked database. *)

val instantiate : (Mvalue.mark -> Value.t option) -> t -> t
(** Resolves marks pointwise: every occurrence of a bound mark is
    replaced throughout the relation — the linking behaviour that plain
    ni nulls cannot express. *)

val marks : t -> Mvalue.mark list
(** The distinct marks occurring in the relation, in increasing order. *)

val pp : Format.formatter -> t -> unit
