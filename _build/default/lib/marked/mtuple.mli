(** Tuples over marked values. Canonical form stores neither plain
    nulls nor nothing-known attributes; marked nulls {e are} stored —
    a mark is information (it links occurrences), unlike ni. *)

open Nullrel

type t

val empty : t
val of_list : (Attr.t * Mvalue.t) list -> t
(** Plain-null bindings are dropped (canonical form); marked bindings
    are kept. *)

val of_strings : (string * Mvalue.t) list -> t
val to_list : t -> (Attr.t * Mvalue.t) list
val get : t -> Attr.t -> Mvalue.t
(** [Const Value.Null] when unbound. *)

val set : t -> Attr.t -> Mvalue.t -> t
val attrs : t -> Attr.Set.t
val equal : t -> t -> bool
val compare : t -> t -> int
val restrict : t -> Attr.Set.t -> t

val join_on : Attr.Set.t -> t -> t -> t option
(** Combines two tuples when they {!Mvalue.join_matches} on every
    attribute of the join set (marks match only themselves) and are
    non-conflicting elsewhere; [None] otherwise. *)

val to_plain : t -> Tuple.t
(** Forgets all marks, yielding a plain no-information tuple. *)

val instantiate : (Mvalue.mark -> Value.t option) -> t -> t
(** Replaces each marked null whose mark the valuation binds; unbound
    marks stay marked. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
