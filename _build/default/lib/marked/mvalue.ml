open Nullrel

type mark = int

let counter = ref 0

let fresh_mark () =
  incr counter;
  !counter

let mark_of_int n = n

type t = Const of Value.t | Marked of mark

let const v = Const v
let marked m = Marked m

let is_null = function
  | Const v -> Value.is_null v
  | Marked _ -> true

let equal a b =
  match (a, b) with
  | Const v, Const w -> Value.equal v w
  | Marked m, Marked n -> Int.equal m n
  | (Const _ | Marked _), _ -> false

let compare a b =
  match (a, b) with
  | Const v, Const w -> Value.compare v w
  | Marked m, Marked n -> Int.compare m n
  | Const _, Marked _ -> -1
  | Marked _, Const _ -> 1

let select_eq3 a b =
  match (a, b) with
  | Marked m, Marked n when Int.equal m n -> Tvl.True
  | (Marked _ | Const Value.Null), _ | _, (Marked _ | Const Value.Null) ->
      Tvl.Ni
  | Const v, Const w -> Tvl.of_bool (Value.equal v w)

let join_matches a b =
  match (a, b) with
  | Marked m, Marked n -> Int.equal m n
  | Const Value.Null, _ | _, Const Value.Null -> false
  | Const v, Const w -> Value.equal v w
  | (Const _ | Marked _), _ -> false

let to_plain = function Const v -> v | Marked _ -> Value.Null

let pp ppf = function
  | Const v -> Value.pp ppf v
  | Marked m -> Format.fprintf ppf "_%d" m
