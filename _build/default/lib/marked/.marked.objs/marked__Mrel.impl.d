lib/marked/mrel.ml: Format Int List Mtuple Mvalue Nullrel Relation Set Tvl
