lib/marked/mvalue.ml: Format Int Nullrel Tvl Value
