lib/marked/mtuple.mli: Attr Format Mvalue Nullrel Set Tuple Value
