lib/marked/mvalue.mli: Format Nullrel Tvl Value
