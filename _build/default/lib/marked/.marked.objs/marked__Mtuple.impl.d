lib/marked/mtuple.ml: Attr Format List Mvalue Nullrel Set Tuple Value
