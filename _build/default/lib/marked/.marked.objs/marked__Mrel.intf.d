lib/marked/mrel.mli: Attr Format Mtuple Mvalue Nullrel Relation Tvl Value
