open Nullrel

type t = Mvalue.t Attr.Map.t

let empty = Attr.Map.empty

let is_plain_null = function
  | Mvalue.Const v -> Value.is_null v
  | Mvalue.Marked _ -> false

let set r a v = if is_plain_null v then Attr.Map.remove a r else Attr.Map.add a v r

let of_list bindings =
  List.fold_left (fun r (a, v) -> set r a v) Attr.Map.empty bindings

let of_strings bindings =
  of_list (List.map (fun (name, v) -> (Attr.make name, v)) bindings)

let to_list r = Attr.Map.bindings r

let get r a =
  match Attr.Map.find_opt a r with
  | Some v -> v
  | None -> Mvalue.Const Value.Null

let attrs r = Attr.Map.fold (fun a _ acc -> Attr.Set.add a acc) r Attr.Set.empty
let equal r t = Attr.Map.equal Mvalue.equal r t
let compare r t = Attr.Map.compare Mvalue.compare r t
let restrict r x = Attr.Map.filter (fun a _ -> Attr.Set.mem a x) r

exception Conflict

let join_on x r1 r2 =
  let on_x = Attr.Set.for_all (fun a -> Mvalue.join_matches (get r1 a) (get r2 a)) x in
  if not on_x then None
  else
    let merge a v1 v2 =
      match (v1, v2) with
      | (Some _ as v), None | None, (Some _ as v) -> v
      | Some v1, Some v2 ->
          (* Off the join columns we still refuse contradictions; a
             shared mark or equal constant merges, anything else
             conflicts unless one side is absent (handled above). *)
          if Mvalue.equal v1 v2 then Some v1
          else if Attr.Set.mem a x then Some v1 (* matched by join_matches *)
          else raise Conflict
      | None, None -> None
    in
    match Attr.Map.merge merge r1 r2 with
    | joined -> Some joined
    | exception Conflict -> None

let to_plain r =
  Attr.Map.fold (fun a v acc -> Tuple.set acc a (Mvalue.to_plain v)) r
    Tuple.empty

let instantiate valuation r =
  Attr.Map.fold
    (fun a v acc ->
      let v' =
        match v with
        | Mvalue.Marked m -> (
            match valuation m with
            | Some value -> Mvalue.Const value
            | None -> v)
        | Mvalue.Const _ -> v
      in
      set acc a v')
    r empty

let pp ppf r =
  let pp_binding ppf (a, v) =
    Format.fprintf ppf "%a=%a" Attr.pp a Mvalue.pp v
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_binding)
    (to_list r)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
