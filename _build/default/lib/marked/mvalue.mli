(** Marked null values — the extension sketched in Section 2.

    The paper's example: "Bob Smith's manager is a woman". The identity
    of the manager is unknown, but two places in the database refer to
    {e the same} unknown individual. A {e marked null} (Imielinski &
    Lipski \[11\], Maier \[17\]) carries a mark linking the occurrences:
    "while this marked null will be treated as a regular unknown when a
    select operation is performed, it will be treated as a regular
    nonnull value when performing a join".

    This module provides the value layer: ordinary values, the
    no-information null, and marked nulls, with the two comparison
    disciplines the quote prescribes. *)

open Nullrel

type mark = private int
(** An opaque mark identifying one unknown individual. *)

val fresh_mark : unit -> mark
(** A mark never returned before (process-global counter). *)

val mark_of_int : int -> mark
(** Deterministic marks for tests and serialization. *)

type t =
  | Const of Value.t  (** An ordinary value; [Const Value.Null] is plain ni. *)
  | Marked of mark  (** The same unknown value wherever the mark recurs. *)

val const : Value.t -> t
val marked : mark -> t
val is_null : t -> bool
(** [true] on [Const Null] and on every [Marked _] — both are nulls for
    information-content purposes. *)

val equal : t -> t -> bool
(** Structural (container) equality: marks compare by identity. *)

val compare : t -> t -> int

val select_eq3 : t -> t -> Tvl.t
(** Selection-time equality — the "regular unknown" discipline:
    any null (marked or not) against anything is [ni]; two occurrences
    of the {e same} mark are certainly equal ([True]); two different
    marks may or may not denote the same value ([ni]). *)

val join_matches : t -> t -> bool
(** Join-time matching — the "regular nonnull value" discipline: a mark
    matches exactly itself; ordinary values match by equality; the plain
    null matches nothing (it joins no one for sure). *)

val to_plain : t -> Value.t
(** Forgets marks: [Marked _] becomes the plain ni. This is the
    projection into the paper's no-information model — marks only add
    information, so the result is a sound lower approximation. *)

val pp : Format.formatter -> t -> unit
(** Marked nulls print as [_1], [_2], ...; the plain null as [-]. *)
