(** Relational views over mini-QUEL (virtual derived relations).

    The paper grew out of work on relational views over richer schemas
    (references \[26, 27\]), and null values are what make
    information-preserving views possible (the union-join discussion of
    Section 5). This module provides classical view support on top of
    the query language: a view is a named query; queries mentioning a
    view are {e unfolded} — the view's ranges, qualification and target
    mapping are inlined with freshened variable names — so evaluation
    needs no materialization. A materializing path is provided too, and
    the two provably agree (property-tested). *)

open Nullrel

type env = (string * Quel.Ast.query) list
(** Named view definitions. *)

exception Cycle of string
(** A view (transitively) ranges over itself. *)

exception Error of string
(** A reference to a target the view does not retrieve, or a duplicate
    definition problem. *)

val expand : views:env -> Quel.Ast.query -> Quel.Ast.query
(** Unfolds every range clause that names a view, recursively. View
    variables are freshened as [v$w] (user variables cannot contain
    [$]); references [v.A] to a view variable are rewritten to the
    underlying [w.B] the view's target list retrieves as [A]. Raises
    {!Cycle} / {!Error}. Queries not mentioning views are returned
    unchanged. *)

val view_schema : Quel.Resolve.db -> views:env -> string -> Schema.t
(** The schema a view exposes: its output columns, with each column's
    domain taken from the underlying base attribute. *)

val materialize :
  Quel.Resolve.db -> views:env -> string -> Schema.t * Xrel.t
(** Evaluates the (expanded) view body against the database. *)

val db_with_views : Quel.Resolve.db -> views:env -> Quel.Resolve.db
(** The database extended with every view materialized — the heavyweight
    alternative to {!expand}; used in tests to validate unfolding. *)
