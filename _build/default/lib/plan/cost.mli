(** A unit-work cost model for plans.

    Deliberately simple: it exists to make the effect of the rewrite
    rules measurable (and reportable in the benchmark harness), not to
    drive a cost-based search. Cardinalities are estimated top-down
    from base-relation statistics with fixed selectivities; cost is the
    sum over operator nodes of the work each performs on its estimated
    inputs (pairwise operators pay the product of their input sizes —
    the paper's own O(|R1| x |R2|) accounting). *)

val selectivity : float
(** Estimated fraction of tuples surviving a selection (1/3). *)

val cardinality : stats:(string -> int option) -> Expr.t -> float
(** Estimated output cardinality. Unknown base relations estimate to
    {!default_cardinality}. *)

val default_cardinality : float

val cost : stats:(string -> int option) -> Expr.t -> float
(** Estimated total work of evaluating the plan bottom-up. *)
