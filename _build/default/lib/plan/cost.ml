open Nullrel

let selectivity = 1. /. 3.
let default_cardinality = 1000.
let join_selectivity = 0.1

let rec cardinality ~stats = function
  | Expr.Rel name -> (
      match stats name with
      | Some n -> float n
      | None -> default_cardinality)
  | Expr.Const x -> float (Xrel.cardinal x)
  | Expr.Select (_, e) -> selectivity *. cardinality ~stats e
  | Expr.Project (_, e) -> cardinality ~stats e
  | Expr.Product (e1, e2) -> cardinality ~stats e1 *. cardinality ~stats e2
  | Expr.Equijoin (_, e1, e2) ->
      join_selectivity *. cardinality ~stats e1 *. cardinality ~stats e2
  | Expr.Union_join (_, e1, e2) ->
      let n1 = cardinality ~stats e1 and n2 = cardinality ~stats e2 in
      (join_selectivity *. n1 *. n2) +. n1 +. n2
  | Expr.Union (e1, e2) -> cardinality ~stats e1 +. cardinality ~stats e2
  | Expr.Diff (e1, _) -> cardinality ~stats e1
  | Expr.Inter (e1, e2) ->
      Float.min (cardinality ~stats e1) (cardinality ~stats e2)
  | Expr.Divide (_, e1, _) -> selectivity *. cardinality ~stats e1
  | Expr.Rename (_, e) -> cardinality ~stats e

let rec cost ~stats expr =
  let card = cardinality ~stats in
  match expr with
  | Expr.Rel _ | Expr.Const _ -> 0.
  | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
      card e +. cost ~stats e
  | Expr.Product (e1, e2)
  | Expr.Equijoin (_, e1, e2)
  | Expr.Union_join (_, e1, e2)
  | Expr.Diff (e1, e2)
  | Expr.Inter (e1, e2)
  | Expr.Divide (_, e1, e2) ->
      (card e1 *. card e2) +. cost ~stats e1 +. cost ~stats e2
  | Expr.Union (e1, e2) ->
      card e1 +. card e2 +. cost ~stats e1 +. cost ~stats e2
