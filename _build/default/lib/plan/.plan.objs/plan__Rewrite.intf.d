lib/plan/rewrite.mli: Attr Expr Nullrel
