lib/plan/view.ml: Attr List Nullrel Option Printf Quel Schema String
