lib/plan/cost.mli: Expr
