lib/plan/view.mli: Nullrel Quel Schema Xrel
