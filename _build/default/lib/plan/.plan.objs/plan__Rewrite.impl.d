lib/plan/rewrite.ml: Attr Expr List Nullrel Predicate Xrel
