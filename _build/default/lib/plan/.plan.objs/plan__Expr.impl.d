lib/plan/expr.ml: Algebra Attr Format List Nullrel Predicate String Xrel
