lib/plan/compile.mli: Attr Expr Nullrel Quel
