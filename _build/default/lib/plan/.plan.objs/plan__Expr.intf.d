lib/plan/expr.mli: Attr Format Nullrel Predicate Xrel
