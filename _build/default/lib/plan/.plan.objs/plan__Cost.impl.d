lib/plan/cost.ml: Expr Float Nullrel Xrel
