lib/plan/compile.ml: Attr Expr List Nullrel Option Quel Rewrite Schema
