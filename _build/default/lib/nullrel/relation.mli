(** Relations as sets of tuples, with subsumption, information-wise
    equivalence and minimal representations (Section 4).

    A value of type {!t} is a {e representation}: an arbitrary finite set
    of tuples, possibly containing null tuples and tuples less
    informative than others. Two representations can denote the same
    x-relation; the quotient type lives in {!Xrel}. *)

type t

val empty : t
val of_list : Tuple.t list -> t
val of_tuples : Tuple.Set.t -> t
val to_list : t -> Tuple.t list
val tuples : t -> Tuple.Set.t
val cardinal : t -> int
val is_empty : t -> bool
val add : Tuple.t -> t -> t
val remove : Tuple.t -> t -> t

val mem : Tuple.t -> t -> bool
(** Ordinary set membership of the representation. *)

val x_mem : Tuple.t -> t -> bool
(** [x_mem t r]: [t] x-belongs to [r] (Definition 4.5, via
    Proposition 4.2) — some tuple of [r] is more informative than [t].
    Note [x_mem Tuple.empty r] holds iff [r] is non-empty. *)

val filter : (Tuple.t -> bool) -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val map : (Tuple.t -> Tuple.t) -> t -> t
val union : t -> t -> t
(** Plain set union of representations (no minimization). *)

val equal : t -> t -> bool
(** Structural set equality of representations (not [=~=]; for that see
    {!equiv}). *)

val compare : t -> t -> int

val subsumes : t -> t -> bool
(** Definition 4.1: [subsumes r1 r2] when every non-null tuple of [r2]
    has a more informative tuple in [r1]. Quasi-order on
    representations. *)

val equiv : t -> t -> bool
(** Definition 4.2: information-wise equivalence — mutual subsumption. *)

val minimize : t -> t
(** The minimal representation (Definition 4.6): drops null tuples and
    every tuple strictly less informative than another tuple. Unique for
    a given attribute universe; [minimize] is the canonicalization used
    by {!Xrel}. *)

val is_minimal : t -> bool

val scope : t -> Attr.Set.t
(** The scope (Definition 4.7): the smallest attribute set over which the
    relation can be represented — the union of the non-null attribute
    sets of its minimal representation's tuples. *)

val pp : Format.formatter -> t -> unit
