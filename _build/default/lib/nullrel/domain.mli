(** Attribute domains.

    A domain [DOM(A)] underlies each attribute (Section 3). Finite
    domains can be enumerated, which is what the lattice top
    [TOP_U = DOM(A1) x ... x DOM(Ap)], the pseudo-complement, and the
    null-substitution principle of the Codd baseline all require.
    Unbounded domains are supported everywhere else. *)

type t =
  | Int_range of int * int  (** Integers [lo..hi] inclusive; finite. *)
  | Enum of string list  (** An explicit finite string domain. *)
  | Bools  (** [{false, true}]; finite. *)
  | Ints  (** All integers; infinite. *)
  | Floats  (** All floats; infinite. *)
  | Strings  (** All strings; infinite. *)

exception Infinite of string
(** Raised when enumerating an infinite domain. *)

val is_finite : t -> bool

val cardinal : t -> int option
(** [Some n] for finite domains, [None] otherwise. *)

val members : t -> Value.t list
(** Enumerates a finite domain. Raises {!Infinite} on [Ints], [Floats]
    and [Strings]. The null value is never a member: [ni] extends the
    domain but is not part of it. *)

val mem : Value.t -> t -> bool
(** Domain membership. [mem Value.Null _ = false] — constants appearing
    in selections must be drawn from [DOM(A)], "not the ni symbol"
    (Section 5). *)

val pp : Format.formatter -> t -> unit
