(** Attribute names.

    Attributes are the column names of relations (Section 3 of the paper).
    They live in a finite universe [U]; in this implementation the universe
    is implicit — any string is a valid attribute — and operations that
    need an explicit finite universe (such as {!Xrel.top}) take it as an
    argument. *)

type t
(** An attribute name. *)

val make : string -> t
(** [make s] is the attribute named [s]. Raises [Invalid_argument] if [s]
    is empty. *)

val name : t -> string
(** [name a] is the attribute's name. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the bare attribute name. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : string list -> Set.t
(** [set_of_list names] is the attribute set containing [make n] for each
    [n] in [names]. *)

val pp_set : Format.formatter -> Set.t -> unit
(** Prints an attribute set as [{A, B, C}] in attribute order. *)
