type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

let null = Null
let is_null = function Null -> true | _ -> false

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"

let equal v w =
  match (v, w) with
  | Null, Null -> true
  | Int a, Int b -> Int.equal a b
  | Float a, Float b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | Bool a, Bool b -> Bool.equal a b
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> false

(* Rank of each constructor in the container order; [Null] first. *)
let rank = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | Str _ -> 3
  | Bool _ -> 4

let compare v w =
  match (v, w) with
  | Null, Null -> 0
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Str a, Str b -> String.compare a b
  | Bool a, Bool b -> Bool.compare a b
  | _ -> Int.compare (rank v) (rank w)

let hash = Hashtbl.hash

let type_error v w =
  raise
    (Type_error
       (Printf.sprintf "cannot compare %s with %s" (type_name v) (type_name w)))

let compare3 v w =
  match (v, w) with
  | Null, _ | _, Null -> None
  | Int a, Int b -> Some (Int.compare a b)
  | Float a, Float b -> Some (Float.compare a b)
  | Str a, Str b -> Some (String.compare a b)
  | Bool a, Bool b -> Some (Bool.compare a b)
  | _ -> type_error v w

let to_string = function
  | Null -> "-"
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> s
  | Bool b -> string_of_bool b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string_guess s =
  if String.equal s "-" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> (
            match bool_of_string_opt s with
            | Some b -> Bool b
            | None -> Str s))
