(** Domain values extended with the no-information null.

    Every attribute domain is extended with the distinguished symbol [ni]
    (Section 3): "we extend each domain to include the distinguished
    symbol ni which denotes the null value under the no-information
    interpretation". In tables the null is rendered as ["-"], following
    the paper. *)

type t =
  | Null  (** The no-information null, written [ni] in the paper. *)
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string
(** Raised when two non-null values of different domains are compared.
    The paper assumes [A theta B] compares attributes "from the same
    underlying domain" (Section 5); comparing across domains is a typing
    bug, not incomplete information, so it is an error rather than [ni]. *)

val null : t
val is_null : t -> bool

val equal : t -> t -> bool
(** Structural equality. [equal Null Null = true]: this is the syntactic
    equality used for set representations and for tuple meets/joins, where
    the paper notes "it is immaterial whether we assume ni = ni or
    ni <> ni" (footnote 4). It is {e not} the query-level comparison —
    see {!compare3}. *)

val compare : t -> t -> int
(** A total order used only for balanced-tree containers; [Null] sorts
    first. Carries no semantic meaning. *)

val hash : t -> int

val compare3 : t -> t -> int option
(** [compare3 v w] is the query-level comparison of Section 5: [None] if
    either value is null (the comparison has value [ni]), otherwise
    [Some c] with [c] the sign of the comparison. Raises {!Type_error}
    on values from different domains. *)

val type_name : t -> string
(** ["null"], ["int"], ["float"], ["string"] or ["bool"]. *)

val pp : Format.formatter -> t -> unit
(** Prints the value; [Null] prints as ["-"] as in the paper's tables. *)

val to_string : t -> string

val of_string_guess : string -> t
(** Parses ["-"] as [Null], then tries [int], [float], [bool], falling
    back to a string value. Used by the CSV loader. *)
