(** Selection predicates and their three-valued evaluation (Section 5).

    Predicates are the qualification expressions of the calculus:
    comparisons between attributes, or between an attribute and a
    non-null constant, combined with the Boolean connectives of
    Table III. A comparison touching a null evaluates to [ni]; the lower
    bound [||Q||-] keeps only [True] rows. *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge

val comparison_to_string : comparison -> string
(** ["="], ["<>"], ["<"], ["<="], [">"], [">="]. *)

val negate_comparison : comparison -> comparison
(** The complementary operator: [Eq <-> Neq], [Lt <-> Ge], [Gt <-> Le].
    Note that under three-valued evaluation [A negate(th) B] equals
    [Not (A th B)] — both are [ni] on nulls. *)

val apply_comparison : comparison -> Value.t -> Value.t -> Tvl.t
(** Three-valued comparison of two values: [Ni] if either is null.
    Raises [Value.Type_error] on cross-domain comparisons. *)

type t =
  | Cmp_attrs of Attr.t * comparison * Attr.t
      (** [t.A theta t.B] — requires both attributes non-null. *)
  | Cmp_const of Attr.t * comparison * Value.t
      (** [t.A theta k], [k] a non-null constant. *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Const of Tvl.t  (** A constant truth value (identity elements). *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

val cmp_const : string -> comparison -> Value.t -> t
(** [cmp_const "A" Eq v] is [Cmp_const (Attr.make "A", Eq, v)]. Raises
    [Invalid_argument] if [v] is null: selection constants must come from
    the domain, "not the ni symbol" (Section 5). *)

val cmp_attrs : string -> comparison -> string -> t

val eval : t -> Tuple.t -> Tvl.t
(** Three-valued evaluation against a tuple, per Table III. *)

val holds : t -> Tuple.t -> bool
(** [holds p r] iff [eval p r = True] — the lower-bound discipline. *)

val attrs : t -> Attr.Set.t
(** All attributes mentioned by the predicate. *)

val map_attrs : (Attr.t -> Attr.t) -> t -> t
(** Renames the attributes a predicate mentions (used by the plan
    optimizer to push selections through renames). *)

val pp : Format.formatter -> t -> unit
