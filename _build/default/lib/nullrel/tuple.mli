(** Tuples with null values and the "more informative" semilattice
    (Section 3).

    A tuple is an assignment of values from extended domains to a finite
    set of attributes. The paper's convention — "if r is an X-value and
    the attribute A is not in X, then r[A] = ni" — makes a tuple
    equivalent to every enlargement of it by null columns. We therefore
    keep tuples in {e canonical form}: only non-null bindings are stored,
    so information-wise equivalence of tuples coincides with structural
    equality, and a tuple is simultaneously an X-value for every X
    containing its non-null attributes.

    The key order is Definition 3.1: [r] is {e more informative} than
    [t] ([r >= t]) when [r] matches [t] on every non-null value of [t].
    Under canonical form this order is a genuine partial order; every two
    tuples have a meet, and joinable tuples have a join (the tuples of
    [U*] form a meet-semilattice, footnote 5). *)

type t

val empty : t
(** The null tuple: all attributes null. Bottom of the tuple order. *)

val of_list : (Attr.t * Value.t) list -> t
(** Builds a tuple from bindings; null bindings are dropped (canonical
    form), later bindings for the same attribute override earlier ones. *)

val of_strings : (string * Value.t) list -> t
(** Convenience wrapper over {!of_list} using attribute names. *)

val to_list : t -> (Attr.t * Value.t) list
(** The non-null bindings in attribute order. *)

val get : t -> Attr.t -> Value.t
(** [get r a] is [r\[A\]]; [Value.Null] when [a] is unbound. Total by the
    paper's convention. *)

val set : t -> Attr.t -> Value.t -> t
(** Functional update; setting [Value.Null] removes the binding. *)

val attrs : t -> Attr.Set.t
(** The attributes on which the tuple is non-null. *)

val is_null_tuple : t -> bool
(** True on tuples consisting only of nulls; all such tuples are
    equivalent to {!empty}. *)

val is_total_on : Attr.Set.t -> t -> bool
(** [is_total_on x r] iff [r] is X-total: non-null on every attribute of
    [x]. *)

val equal : t -> t -> bool
(** Information-wise equivalence of tuples — structural equality of
    canonical forms. *)

val compare : t -> t -> int
(** Container order (no semantic meaning). *)

val hash : t -> int

val more_informative : t -> t -> bool
(** [more_informative r t] is [r >= t] (Definition 3.1): for each
    non-null value of [t], [r] holds the same value. Reflexive,
    transitive, antisymmetric on canonical tuples. *)

val strictly_more_informative : t -> t -> bool
(** [r >= t] and [not (equal r t)]. *)

val meet : t -> t -> t
(** [meet r1 r2] is [r1 /\ r2]: keeps the bindings on which the two
    tuples agree. Always exists; it is the greatest lower bound. *)

val joinable : t -> t -> bool
(** [r1] and [r2] are joinable when they conflict on no attribute: for
    each [A], if [r1\[A\] <> r2\[A\]] then one of the two is null. *)

val join : t -> t -> t option
(** [join r1 r2] is [r1 \/ r2] when the tuples are joinable — the least
    upper bound, taking the more informative value on each attribute —
    and [None] otherwise. *)

val restrict : t -> Attr.Set.t -> t
(** [restrict r x] is the X-value [r\[X\]] (used by projection). *)

val remove : t -> Attr.Set.t -> t
(** [remove r x] drops the attributes of [x] from [r]. *)

val rename : (Attr.t * Attr.t) list -> t -> t
(** [rename mapping r] renames attributes per [mapping] (old, new);
    attributes not mentioned are kept. Raises [Invalid_argument] if two
    distinct non-null bindings collide on a target name. *)

val fold : (Attr.t -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over the non-null bindings in attribute order. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(A=1, B=-)]-style binding list (only non-null bindings). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
