type t = True | False | Ni

let equal a b =
  match (a, b) with
  | True, True | False, False | Ni, Ni -> true
  | (True | False | Ni), _ -> false

let rank = function False -> 0 | Ni -> 1 | True -> 2
let compare a b = Int.compare (rank a) (rank b)
let of_bool b = if b then True else False
let to_bool_lower = function True -> true | False | Ni -> false
let not_ = function True -> False | False -> True | Ni -> Ni

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | Ni, (True | Ni) | True, Ni -> Ni

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | Ni, (False | Ni) | False, Ni -> Ni

let conj = List.fold_left and_ True
let disj = List.fold_left or_ False
let all = [ True; False; Ni ]
let to_string = function True -> "TRUE" | False -> "FALSE" | Ni -> "ni"

let to_string_maybe = function
  | True -> "TRUE"
  | False -> "FALSE"
  | Ni -> "MAYBE"

let pp ppf v = Format.pp_print_string ppf (to_string v)
