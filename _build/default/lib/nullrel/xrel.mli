(** Extended relations (x-relations) and their lattice (Sections 4, 7).

    An x-relation is an equivalence class of relations under
    information-wise equivalence (Definition 4.3). This module represents
    each class by its unique {e minimal representation}, so structural
    equality of representations decides equality of x-relations and every
    constructor re-canonicalizes.

    X-relations under set containment (Definition 4.4) form a bounded,
    distributive, pseudo-complemented (dual Brouwerian) lattice:
    {!union} is the least upper bound (Proposition 4.4), {!inter} — the
    x-intersection — is the greatest lower bound (Proposition 4.5),
    {!bottom} is the empty relation, and over a finite universe {!top}
    is [DOM(A1) x ... x DOM(Ap)] with pseudo-complement
    [R* = TOP_U - R] (Section 7). The implementations follow the
    efficient reformulations (4.6)-(4.8) rather than the x-element
    definitions (4.1)-(4.3). *)

type t

val of_relation : Relation.t -> t
(** Canonicalizes an arbitrary representation (Definition 4.6). *)

val of_list : Tuple.t list -> t
val of_tuples : Tuple.Set.t -> t

val unsafe_of_minimal : Relation.t -> t
(** Wraps a representation the caller guarantees to be already minimal,
    skipping the quadratic minimization pass. Used by operators that
    provably preserve minimality (e.g. products with disjoint scopes).
    Breaking the guarantee breaks {!equal}. *)

val rep : t -> Relation.t
(** The minimal representation. [rep (of_relation r)] is
    [Relation.minimize r]. *)

val to_list : t -> Tuple.t list
val cardinal : t -> int
(** Number of tuples in the minimal representation. *)

val is_empty : t -> bool
val scope : t -> Attr.Set.t

val equal : t -> t -> bool
(** Equality of x-relations: [equal x1 x2] iff the underlying relations
    are information-wise equivalent (Proposition 4.1 reduces this to
    mutual containment; minimality reduces it to structural equality). *)

val compare : t -> t -> int

val x_mem : Tuple.t -> t -> bool
(** x-membership (Definition 4.5 / Proposition 4.2). *)

val contains : t -> t -> bool
(** Set containment (Definition 4.4): [contains x1 x2] iff [x1]'s
    representation subsumes [x2]'s. *)

val properly_contains : t -> t -> bool

val union : t -> t -> t
(** Least upper bound, per (4.6). The scope of the union is the union of
    the scopes. *)

val inter : t -> t -> t
(** X-intersection — greatest lower bound, per (4.7): pairwise tuple
    meets, minimized. {b Not} plain set intersection: the x-intersection
    of [{(a,b1)}] and [{(a,b2)}] x-contains [(a,-)] (Section 7). *)

val diff : t -> t -> t
(** Difference, per (4.8): keeps the tuples of the minuend that do not
    x-belong to the subtrahend. [diff x1 x2] is the smallest x-relation
    whose union with [x2] contains [x1] when [x1 ental contains x2]
    (Propositions 4.6-4.7). *)

val bottom : t
(** The empty x-relation; absorbing for {!inter}. *)

type universe = (Attr.t * Domain.t) list
(** A finite universe of attributes with their domains, needed by {!top}
    and {!pseudo_complement}. *)

val top : universe -> t
(** [TOP_U]: the Cartesian product of all the domains — every total tuple
    over the universe. Raises [Domain.Infinite] on infinite domains and
    [Invalid_argument] if the product exceeds [2^20] tuples. *)

val pseudo_complement : universe -> t -> t
(** [R* = TOP_U - R] (7.1): the smallest x-relation whose union with [R]
    yields [TOP_U]. [pseudo_complement u x] is always total over [u];
    pseudo-complements form the Boolean sublattice of U-total
    x-relations. *)

val filter : (Tuple.t -> bool) -> t -> t
(** Keeps the tuples of the minimal representation satisfying the
    predicate. Safe without re-minimization: a subset of a minimal
    representation is always minimal (Section 4). *)

val set_inter_total : t -> t -> t
(** Plain set intersection of representations — the meet of the Boolean
    lattice of U-total x-relations, exhibited in Section 7 as {e
    different} from {!inter}. Only meaningful on total relations over a
    common scope. *)

val pp : Format.formatter -> t -> unit
