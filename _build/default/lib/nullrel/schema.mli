(** Relation schemas: typed attribute lists with key constraints.

    A schema fixes the attribute order (for display), each attribute's
    domain, and an optional primary key. Following the paper's closing
    remarks, the basic constraints that extend without trouble to
    relations with nulls are enforced here: domain conformance, {e entity
    integrity} (key attributes may not be null) and key uniqueness. *)

type t

type foreign_key = {
  fk_target : string;  (** Name of the referenced relation. *)
  fk_pairs : (Attr.t * Attr.t) list;
      (** [(local, referenced)] attribute pairs, positionally paired
          from the declaration. *)
}
(** Referential integrity under nulls (Section 8: basic constraints
    "can be extended and enforced in the presence of null values,
    without major problems"): a reference with {e any} null attribute
    asserts nothing and is never a violation; a total reference must
    match a referenced tuple for sure. *)

val make :
  ?key:string list ->
  ?foreign_keys:(string list * string * string list) list ->
  string ->
  (string * Domain.t) list ->
  t
(** [make name columns ~key ~foreign_keys] builds a schema.
    [foreign_keys] entries are [(local attrs, target relation, target
    attrs)]. Raises [Invalid_argument] on duplicate attribute names, a
    key attribute missing from the columns, a foreign-key attribute
    missing from the columns, or arity mismatch between the two sides
    of a foreign key. *)

val name : t -> string
val attrs : t -> Attr.t list
(** Attributes in declaration order. *)

val attr_set : t -> Attr.Set.t
val key : t -> Attr.Set.t
(** The primary key; empty when none was declared. *)

val foreign_keys : t -> foreign_key list

val domain : t -> Attr.t -> Domain.t option
val mem : t -> Attr.t -> bool

val universe : t -> Xrel.universe
(** The schema's attributes paired with their domains, in order. *)

val add_column : t -> string -> Domain.t -> t
(** Schema evolution as in Section 2 (Table I to Table II): appends a new
    column. Existing tuples need no rewrite — their value on the new
    attribute is [ni] by convention, and the relation stays
    information-wise equivalent to what it was. *)

type violation =
  | Unknown_attribute of Attr.t
  | Domain_mismatch of Attr.t * Value.t
  | Null_in_key of Attr.t
  | Duplicate_key of Tuple.t
      (** Two distinct tuples share this key value. *)

val pp_violation : Format.formatter -> violation -> unit

val check_tuple : t -> Tuple.t -> violation list
(** Domain and entity-integrity violations of one tuple. *)

val check : t -> Xrel.t -> violation list
(** All violations of a relation, including key uniqueness. *)

val pp : Format.formatter -> t -> unit
