(** The generalized relational algebra over x-relations
    (Sections 5, 6).

    X-relations are closed under all the operators of the complete
    relational algebra — union, difference, selection, Cartesian product
    and projection (Section 7) — plus the derived theta-joins, equijoin,
    union-join (outer join) and division. Set union, x-intersection and
    difference live in {!Xrel}; this module holds the remaining
    operators. *)

val select : Predicate.t -> Xrel.t -> Xrel.t
(** Generalized selection: keeps the tuples whose qualification evaluates
    to [True] in the three-valued logic ([False] and [ni] rows are
    discarded — the lower-bound discipline of Section 5). Preserves
    minimality. *)

val select_ab : Attr.t -> Predicate.comparison -> Attr.t -> Xrel.t -> Xrel.t
(** [R\[A theta B\]] per (5.1): the selected tuples are A-total, B-total
    and satisfy the comparison. Equal to
    [select (Cmp_attrs (a, theta, b))]. *)

val select_ak : Attr.t -> Predicate.comparison -> Value.t -> Xrel.t -> Xrel.t
(** [R\[A theta k\]] per (5.2), [k] a non-null constant of [DOM(A)].
    Raises [Invalid_argument] if [k] is null. *)

val product : Xrel.t -> Xrel.t -> Xrel.t
(** Cartesian product (5.3): the tuple joins [r1 \/ r2] of the non-null
    pairs. When the operand scopes are disjoint (the standard case) every
    pair is joinable and the result of minimal operands is minimal;
    overlapping scopes behave like a natural join on the shared columns
    and the result is re-minimized. *)

val theta_join :
  Attr.t -> Predicate.comparison -> Attr.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [R1\[A theta B\]R2 = (R1 x R2)\[A theta B\]] per (5.4). *)

val equijoin : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [R1(.X)R2]: the joins [r1 \/ r2] of pairs that are both X-total (and
    hence agree on X). The join columns are not repeated. *)

val union_join : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [R1( *X)R2], the information-preserving union-join (the outer join of
    \[5,13,25\]): the equijoin together with the tuples of either operand
    that do not participate in it. Implemented as
    [union (equijoin x r1 r2) (union r1 r2)] — participating tuples are
    subsumed by their joins, so minimization keeps exactly the dangling
    ones. *)

val semijoin : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [semijoin x r1 r2]: the tuples of [r1] that participate in the
    equijoin on [x] — X-total and matched by an X-total partner in
    [r2]. The derived operator behind the union-join's "participating"
    notion; [union_join x r1 r2 = equijoin u (r1 - semijoin) u
    (r2 - semijoin')] up to minimization. *)

val antijoin : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [antijoin x r1 r2]: the tuples of [r1] that do {e not} participate
    in the equijoin — the dangling tuples the union-join preserves.
    Complementary to {!semijoin} within [r1]. *)

val project : Attr.Set.t -> Xrel.t -> Xrel.t
(** [R\[X\]] per (5.5). Projection can surface less informative
    duplicates, so the result is re-minimized. *)

val rename : (Attr.t * Attr.t) list -> Xrel.t -> Xrel.t
(** Attribute renaming [(old, new)]; needed to give product operands
    disjoint scopes. *)

val image : Attr.Set.t -> Attr.Set.t -> Tuple.t -> Xrel.t -> Xrel.t
(** [image y z t r] is the Z-image [Z_R(t)] of the Y-total tuple [t]
    under [r] (6.4): the Z-values of the tuples of [r] whose Y-value
    equals [t]. *)

val divide : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [R(/Y)S], the Y-quotient (Section 6): the Y-values [y] of the Y-total
    tuples of [R] such that for every tuple [z] of [S], [y \/ z]
    x-belongs to [R]. This is characterization (6.3), the consistent
    "for sure / for sure" reading of universal quantification; tuples
    that are not Y-total do not contribute. Expects the scopes of
    [R\[Y\]] and [S] to be disjoint (the case of practical interest). *)

val divide_algebraic : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** Division by its defining algebraic expression (6.2):
    [R_Y\[Y\] - ((R_Y\[Y\] x S) - R_Y)\[Y\]]. Agrees with {!divide} on
    disjoint scopes; kept as an executable witness of derivability from
    the five base operators. *)

val divide_via_images : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** Division by characterization (6.5): [y] qualifies iff the Z-image of
    [y] contains [S]. Agrees with {!divide}. *)
