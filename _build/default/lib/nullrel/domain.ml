type t =
  | Int_range of int * int
  | Enum of string list
  | Bools
  | Ints
  | Floats
  | Strings

exception Infinite of string

let is_finite = function
  | Int_range _ | Enum _ | Bools -> true
  | Ints | Floats | Strings -> false

let cardinal = function
  | Int_range (lo, hi) -> Some (max 0 (hi - lo + 1))
  | Enum ss -> Some (List.length ss)
  | Bools -> Some 2
  | Ints | Floats | Strings -> None

let members = function
  | Int_range (lo, hi) ->
      List.init (max 0 (hi - lo + 1)) (fun i -> Value.Int (lo + i))
  | Enum ss -> List.map (fun s -> Value.Str s) ss
  | Bools -> [ Value.Bool false; Value.Bool true ]
  | Ints -> raise (Infinite "Ints")
  | Floats -> raise (Infinite "Floats")
  | Strings -> raise (Infinite "Strings")

let mem v dom =
  match (v, dom) with
  | Value.Null, _ -> false
  | Value.Int i, Int_range (lo, hi) -> lo <= i && i <= hi
  | Value.Int _, Ints -> true
  | Value.Float _, Floats -> true
  | Value.Str s, Enum ss -> List.exists (String.equal s) ss
  | Value.Str _, Strings -> true
  | Value.Bool _, Bools -> true
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _), _ -> false

let pp ppf = function
  | Int_range (lo, hi) -> Format.fprintf ppf "int[%d..%d]" lo hi
  | Enum ss ->
      Format.fprintf ppf "enum{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        ss
  | Bools -> Format.pp_print_string ppf "bool"
  | Ints -> Format.pp_print_string ppf "int"
  | Floats -> Format.pp_print_string ppf "float"
  | Strings -> Format.pp_print_string ppf "string"
