lib/nullrel/value.mli: Format
