lib/nullrel/tvl.ml: Format Int List
