lib/nullrel/tuple.mli: Attr Format Map Set Value
