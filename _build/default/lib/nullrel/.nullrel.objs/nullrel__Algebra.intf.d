lib/nullrel/algebra.mli: Attr Predicate Tuple Value Xrel
