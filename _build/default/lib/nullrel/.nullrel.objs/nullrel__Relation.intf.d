lib/nullrel/relation.mli: Attr Format Tuple
