lib/nullrel/schema.mli: Attr Domain Format Tuple Value Xrel
