lib/nullrel/domain.mli: Format Value
