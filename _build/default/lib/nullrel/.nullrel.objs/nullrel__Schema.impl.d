lib/nullrel/schema.ml: Attr Domain Format Hashtbl List Printf Tuple Value Xrel
