lib/nullrel/predicate.mli: Attr Format Tuple Tvl Value
