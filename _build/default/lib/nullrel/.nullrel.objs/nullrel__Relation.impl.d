lib/nullrel/relation.ml: Attr Format Tuple
