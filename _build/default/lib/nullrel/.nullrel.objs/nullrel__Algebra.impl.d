lib/nullrel/algebra.ml: Attr List Predicate Relation Tuple Value Xrel
