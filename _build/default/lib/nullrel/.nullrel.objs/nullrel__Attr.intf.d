lib/nullrel/attr.mli: Format Map Set
