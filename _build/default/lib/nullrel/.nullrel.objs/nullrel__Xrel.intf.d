lib/nullrel/xrel.mli: Attr Domain Format Relation Tuple
