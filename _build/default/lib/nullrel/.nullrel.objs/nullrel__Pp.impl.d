lib/nullrel/pp.ml: Attr Buffer Format List Schema String Tuple Value Xrel
