lib/nullrel/xrel.ml: Attr Domain List Relation Tuple
