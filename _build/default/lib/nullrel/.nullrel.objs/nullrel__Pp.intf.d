lib/nullrel/pp.mli: Attr Format Schema Xrel
