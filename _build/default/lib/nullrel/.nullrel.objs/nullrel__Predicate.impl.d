lib/nullrel/predicate.ml: Attr Format Tuple Tvl Value
