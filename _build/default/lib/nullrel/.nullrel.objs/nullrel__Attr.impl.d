lib/nullrel/attr.ml: Format Hashtbl List Map Set String
