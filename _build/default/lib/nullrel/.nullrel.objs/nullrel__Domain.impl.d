lib/nullrel/domain.ml: Format List String Value
