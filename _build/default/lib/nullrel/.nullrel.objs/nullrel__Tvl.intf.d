lib/nullrel/tvl.mli: Format
