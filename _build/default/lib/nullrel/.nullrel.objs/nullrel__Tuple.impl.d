lib/nullrel/tuple.ml: Attr Format Hashtbl List Map Printf Set Value
