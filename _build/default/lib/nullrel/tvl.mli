(** The three-valued logic of Section 5 (Table III).

    Truth values are [TRUE], [FALSE] and [ni]. A relational expression
    touching a null evaluates to [ni]; Boolean connectives follow the
    (Kleene) tables reproduced as Table III of the paper. Query
    evaluation computes the lower bound [||Q||-] by keeping only tuples
    whose qualification evaluates to [True] — [False] and [Ni] tuples are
    both discarded.

    Codd's logic uses the same tables with [Ni] read as [MAYBE]; the
    difference between the two approaches is in the interpretation and in
    the treatment of sets, not in the tables (Section 5). *)

type t = True | False | Ni

val equal : t -> t -> bool
val compare : t -> t -> int

val of_bool : bool -> t

val to_bool_lower : t -> bool
(** The lower-bound collapse: [True] is [true]; [False] and [Ni] are
    [false]. This is the paper's query-evaluation discipline. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

val conj : t list -> t
(** n-ary [and_]; [conj [] = True]. *)

val disj : t list -> t
(** n-ary [or_]; [disj [] = False]. *)

val all : t list
(** All three truth values, for exhaustive tests and truth tables. *)

val to_string : t -> string
(** ["TRUE"], ["FALSE"] or ["ni"]. *)

val to_string_maybe : t -> string
(** Codd's reading: ["TRUE"], ["FALSE"] or ["MAYBE"]. *)

val pp : Format.formatter -> t -> unit
