open Nullrel

(* Bucket an operand's X-total tuples by their canonical X-restriction. *)
let partition x rel =
  let table = Hashtbl.create (Xrel.cardinal rel) in
  List.iter
    (fun r ->
      if Tuple.is_total_on x r then begin
        let key = Tuple.to_list (Tuple.restrict r x) in
        Hashtbl.replace table key
          (r :: Option.value (Hashtbl.find_opt table key) ~default:[])
      end)
    (Xrel.to_list rel);
  table

let hash_equijoin x r1 r2 =
  let buckets2 = partition x r2 in
  let joined =
    List.fold_left
      (fun acc t1 ->
        if not (Tuple.is_total_on x t1) then acc
        else
          let key = Tuple.to_list (Tuple.restrict t1 x) in
          List.fold_left
            (fun acc t2 ->
              match Tuple.join t1 t2 with
              | Some j -> Relation.add j acc
              | None -> acc)
            acc
            (Option.value (Hashtbl.find_opt buckets2 key) ~default:[]))
      Relation.empty (Xrel.to_list r1)
  in
  Xrel.of_relation joined

let hash_union_join x r1 r2 =
  Xrel.union (hash_equijoin x r1 r2) (Xrel.union r1 r2)
