(** Saving and loading a catalog to a directory.

    Each relation [NAME] is stored as two files:
    - [NAME.schema] — a line-oriented, tab-separated description:
      {v
      relation <TAB> NAME
      column <TAB> ATTR <TAB> int|float|string|bool
      column <TAB> ATTR <TAB> intrange <TAB> LO <TAB> HI
      column <TAB> ATTR <TAB> enum <TAB> V1 <TAB> V2 ...
      key <TAB> ATTR ...
      fk <TAB> TARGET <TAB> LOCAL <TAB> REFERENCED [<TAB> LOCAL <TAB> REFERENCED ...]
      v}
    - [NAME.csv] — the relation in the {!Csv} dialect ([-] for nulls),
      written in the schema's column order.

    Loading re-validates every relation against its schema
    ({!Catalog.add}); cross-relation references are {e not} checked at
    load time (a catalog may legitimately be loaded before its targets
    exist) — call {!Catalog.check_references} afterwards. *)

exception Error of string

val save : dir:string -> Catalog.t -> unit
(** Writes every relation. Creates [dir] if needed; overwrites existing
    files for the saved names, leaves other files alone. *)

val load : dir:string -> Catalog.t
(** Loads every [*.schema]/[*.csv] pair of the directory. Raises
    {!Error} on malformed schema files, {!Csv.Error} on malformed data,
    and {!Catalog.Violation} if a relation violates its own schema. *)

val schema_to_string : Nullrel.Schema.t -> string
val schema_of_string : string -> Nullrel.Schema.t
(** The [NAME.schema] format, exposed for tests and tooling. *)
