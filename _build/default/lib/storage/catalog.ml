open Nullrel
module String_map = Map.Make (String)

type t = (Schema.t * Xrel.t) String_map.t

exception Violation of Schema.violation list

let empty = String_map.empty

let add cat schema x =
  match Schema.check schema x with
  | [] -> String_map.add (Schema.name schema) (schema, x) cat
  | violations -> raise (Violation violations)

let add_unchecked cat schema x =
  String_map.add (Schema.name schema) (schema, x) cat

let find cat name = String_map.find_opt name cat
let get cat name = String_map.find name cat
let relation cat name = snd (get cat name)
let schema cat name = fst (get cat name)
let names cat = List.map fst (String_map.bindings cat)
let mem cat name = String_map.mem name cat
let remove cat name = String_map.remove name cat

let set_relation cat name x =
  let schema, _ = get cat name in
  add cat schema x

let to_db cat = String_map.bindings cat

type reference_violation = {
  relation : string;
  fk : Schema.foreign_key;
  tuple : Tuple.t;
}

let pp_reference_violation ppf v =
  Format.fprintf ppf "%s: tuple %a references no tuple of %s" v.relation
    Tuple.pp v.tuple v.fk.Schema.fk_target

(* A total reference (local attrs all bound) must be matched by a target
   tuple carrying the referenced values; partial references assert
   nothing. *)
let fk_violations cat rel_name fk x =
  let target = find cat fk.Schema.fk_target in
  let reference_of r =
    List.fold_left
      (fun acc (local, referenced) ->
        match acc with
        | None -> None
        | Some t -> (
            match Tuple.get r local with
            | Value.Null -> None
            | v -> Some (Tuple.set t referenced v)))
      (Some Tuple.empty) fk.Schema.fk_pairs
  in
  List.filter_map
    (fun r ->
      match reference_of r with
      | None -> None
      | Some reference ->
          let matched =
            match target with
            | None -> false
            | Some (_, target_x) -> Xrel.x_mem reference target_x
          in
          if matched then None else Some { relation = rel_name; fk; tuple = r })
    (Xrel.to_list x)

let check_references cat =
  String_map.fold
    (fun rel_name (schema, x) acc ->
      List.concat_map
        (fun fk -> fk_violations cat rel_name fk x)
        (Schema.foreign_keys schema)
      @ acc)
    cat []
