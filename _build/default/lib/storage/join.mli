(** Physical join operators.

    {!Nullrel.Algebra.equijoin} is the textbook nested loop —
    O(|R1| x |R2|). This module provides a hash-partitioned
    implementation of the same operator: only X-total tuples participate
    (Section 5's definition), so partitioning both operands by their
    X-restriction makes each bucket pair small; expected cost
    O(|R1| + |R2| + |output|). Agreement with the logical operator is
    property-tested; the speedup is benchmark E13. *)

open Nullrel

val hash_equijoin : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** [hash_equijoin x r1 r2] = [Algebra.equijoin x r1 r2], computed by
    hash partitioning on the X-restrictions. *)

val hash_union_join : Attr.Set.t -> Xrel.t -> Xrel.t -> Xrel.t
(** The union-join (outer join) on top of {!hash_equijoin}. *)
