(** Database updates, defined algebraically (Section 7).

    "The result of adding a set of tuples to a relation is defined as the
    union of the set with the relation; likewise deletion is defined by
    set difference; a modification can be viewed as a deletion followed
    by an addition."

    Because union is the lattice least upper bound, these definitions
    give updates the monotonicity the paper's introduction demands: after
    an insertion the new database always {e contains} the old one
    ([contains (insert x ts) x] holds as a matter of fact, not of
    MAYBE). *)

open Nullrel

val insert : Xrel.t -> Tuple.t list -> Xrel.t
(** Union with the inserted tuples. Inserting a tuple already subsumed by
    the relation is a no-op (the information is already there). *)

val delete : Xrel.t -> Xrel.t -> Xrel.t
(** Set difference: removes the tuples x-belonging to the second
    argument. *)

val delete_where : Predicate.t -> Xrel.t -> Xrel.t
(** Deletes the tuples whose qualification is TRUE — the lower-bound
    discipline applies to updates too: a tuple is only deleted when it
    {e surely} matches. *)

val modify : where:Predicate.t -> using:(Tuple.t -> Tuple.t) -> Xrel.t -> Xrel.t
(** Deletion of the matching tuples followed by insertion of their
    images. *)
