(** CSV import/export for relations.

    The dialect is RFC-4180-ish: comma separator, double-quote quoting
    with [""] escapes, one header line naming the attributes. The null
    value is written and read as the unquoted cell [-], matching the
    paper's tables; a quoted ["-"] is the one-character string. Values
    are parsed by {!Nullrel.Value.of_string_guess} unless a schema pins
    the column types. *)

open Nullrel

exception Error of string

val parse : string -> string list list
(** Raw CSV parsing into rows of cells. Raises {!Error} on unterminated
    quotes or stray characters after a closing quote. *)

val read_string : ?schema:Schema.t -> string -> Attr.t list * Xrel.t
(** Parses a relation: first row is the header. With [schema], cells are
    coerced to the declared column domains (ints for integer domains,
    strings for enums, ...) and unknown headers are an {!Error}. *)

val read_file : ?schema:Schema.t -> string -> Attr.t list * Xrel.t

val write_string : Attr.t list -> Xrel.t -> string
(** Renders a relation with the given column order. Nulls become [-]. *)

val write_file : string -> Attr.t list -> Xrel.t -> unit
