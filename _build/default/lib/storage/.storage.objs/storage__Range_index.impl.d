lib/storage/range_index.ml: Array Attr List Nullrel Predicate Relation Tuple Value Xrel
