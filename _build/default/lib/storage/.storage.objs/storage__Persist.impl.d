lib/storage/persist.ml: Array Attr Buffer Catalog Csv Domain Filename Fun List Nullrel Printf Schema String Sys
