lib/storage/catalog.mli: Format Nullrel Schema Tuple Xrel
