lib/storage/catalog.ml: Format List Map Nullrel Schema String Tuple Value Xrel
