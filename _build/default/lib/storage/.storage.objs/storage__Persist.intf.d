lib/storage/persist.mli: Catalog Nullrel
