lib/storage/binary.ml: Array Attr Buffer Char Fun Hashtbl Int64 List Nullrel Printf String Tuple Value Xrel
