lib/storage/update.ml: List Nullrel Predicate Xrel
