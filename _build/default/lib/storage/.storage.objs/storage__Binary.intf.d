lib/storage/binary.mli: Nullrel Xrel
