lib/storage/join.mli: Attr Nullrel Xrel
