lib/storage/csv.mli: Attr Nullrel Schema Xrel
