lib/storage/hash_index.ml: Attr Hashtbl List Nullrel Relation Tuple Value
