lib/storage/hash_index.mli: Nullrel Relation Tuple
