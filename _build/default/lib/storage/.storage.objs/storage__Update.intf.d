lib/storage/update.mli: Nullrel Predicate Tuple Xrel
