lib/storage/csv.ml: Attr Buffer Domain Fun List Nullrel Printf Schema String Tuple Value Xrel
