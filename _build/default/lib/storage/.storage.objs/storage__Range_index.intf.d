lib/storage/range_index.mli: Attr Nullrel Predicate Value Xrel
