lib/storage/join.ml: Hashtbl List Nullrel Option Relation Tuple Xrel
