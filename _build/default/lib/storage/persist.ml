open Nullrel

exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* ------------------------ schema format ----------------------- *)

let domain_fields = function
  | Domain.Ints -> [ "int" ]
  | Domain.Floats -> [ "float" ]
  | Domain.Strings -> [ "string" ]
  | Domain.Bools -> [ "bool" ]
  | Domain.Int_range (lo, hi) ->
      [ "intrange"; string_of_int lo; string_of_int hi ]
  | Domain.Enum values -> "enum" :: values

let domain_of_fields = function
  | [ "int" ] -> Domain.Ints
  | [ "float" ] -> Domain.Floats
  | [ "string" ] -> Domain.Strings
  | [ "bool" ] -> Domain.Bools
  | [ "intrange"; lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Domain.Int_range (lo, hi)
      | _ -> errorf "bad intrange bounds %s..%s" lo hi)
  | "enum" :: values -> Domain.Enum values
  | fields -> errorf "unknown domain %s" (String.concat " " fields)

let schema_to_string schema =
  let buf = Buffer.create 256 in
  let line fields =
    Buffer.add_string buf (String.concat "\t" fields);
    Buffer.add_char buf '\n'
  in
  line [ "relation"; Schema.name schema ];
  List.iter
    (fun (a, d) -> line (("column" :: [ Attr.name a ]) @ domain_fields d))
    (Schema.universe schema);
  (if not (Attr.Set.is_empty (Schema.key schema)) then
     line
       ("key" :: List.map Attr.name (Attr.Set.elements (Schema.key schema))));
  List.iter
    (fun fk ->
      let pairs =
        List.concat_map
          (fun (local, referenced) -> [ Attr.name local; Attr.name referenced ])
          fk.Schema.fk_pairs
      in
      line (("fk" :: [ fk.Schema.fk_target ]) @ pairs))
    (Schema.foreign_keys schema);
  Buffer.contents buf

let schema_of_string text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let parse_line acc line =
    let name, columns, key, fks = acc in
    match String.split_on_char '\t' line with
    | [ "relation"; n ] -> (Some n, columns, key, fks)
    | "column" :: attr :: domain ->
        (name, (attr, domain_of_fields domain) :: columns, key, fks)
    | "key" :: attrs -> (name, columns, attrs, fks)
    | "fk" :: target :: pairs ->
        let rec pair_up = function
          | [] -> ([], [])
          | local :: referenced :: rest ->
              let locals, refs = pair_up rest in
              (local :: locals, referenced :: refs)
          | [ _ ] -> errorf "fk line has an odd number of attributes"
        in
        let locals, refs = pair_up pairs in
        (name, columns, key, (locals, target, refs) :: fks)
    | _ -> errorf "unparseable schema line: %s" line
  in
  let name, columns, key, fks =
    List.fold_left parse_line (None, [], [], []) lines
  in
  match name with
  | None -> errorf "schema file has no 'relation' line"
  | Some name ->
      Schema.make ~key ~foreign_keys:(List.rev fks) name (List.rev columns)

(* --------------------------- files ---------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let save ~dir cat =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, (schema, x)) ->
      write_file (Filename.concat dir (name ^ ".schema"))
        (schema_to_string schema);
      write_file
        (Filename.concat dir (name ^ ".csv"))
        (Csv.write_string (Schema.attrs schema) x))
    (Catalog.to_db cat)

let load ~dir =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun cat entry ->
      if Filename.check_suffix entry ".schema" then begin
        let schema =
          schema_of_string (read_file (Filename.concat dir entry))
        in
        let csv_path =
          Filename.concat dir (Filename.chop_suffix entry ".schema" ^ ".csv")
        in
        if not (Sys.file_exists csv_path) then
          errorf "missing data file for %s" entry;
        let _, x = Csv.read_file ~schema csv_path in
        Catalog.add cat schema x
      end
      else cat)
    Catalog.empty entries
