open Nullrel

let insert x tuples = Xrel.union x (Xrel.of_list tuples)
let delete x removed = Xrel.diff x removed

let delete_where p x = Xrel.filter (fun r -> not (Predicate.holds p r)) x

let modify ~where ~using x =
  let matching = Xrel.filter (Predicate.holds where) x in
  let updated = List.map using (Xrel.to_list matching) in
  insert (delete_where where x) updated
