open Nullrel

type t = { lhs : Attr.Set.t; rhs : Attr.Set.t }

let make lhs rhs = { lhs = Attr.set_of_list lhs; rhs = Attr.set_of_list rhs }

let pp ppf fd =
  Format.fprintf ppf "%a -> %a" Attr.pp_set fd.lhs Attr.pp_set fd.rhs

let pairs rel f =
  let tuples = Relation.to_list rel in
  List.for_all
    (fun r1 -> List.for_all (fun r2 -> f r1 r2) tuples)
    tuples

let agree_on x r1 r2 =
  Attr.Set.for_all (fun a -> Value.equal (Tuple.get r1 a) (Tuple.get r2 a)) x

let satisfies_classical rel fd =
  pairs rel (fun r1 r2 ->
      (not (agree_on fd.lhs r1 r2)) || agree_on fd.rhs r1 r2)

let satisfies_total rel fd =
  let relevant = Attr.Set.union fd.lhs fd.rhs in
  pairs rel (fun r1 r2 ->
      (not (Tuple.is_total_on relevant r1 && Tuple.is_total_on relevant r2))
      || (not (agree_on fd.lhs r1 r2))
      || agree_on fd.rhs r1 r2)

let joinable_on x r1 r2 =
  Attr.Set.for_all
    (fun a ->
      match (Tuple.get r1 a, Tuple.get r2 a) with
      | Value.Null, _ | _, Value.Null -> true
      | v, w -> Value.equal v w)
    x

let satisfies_no_conflict rel fd =
  pairs rel (fun r1 r2 ->
      (not (Tuple.is_total_on fd.lhs r1 && Tuple.is_total_on fd.lhs r2))
      || (not (agree_on fd.lhs r1 r2))
      || joinable_on fd.rhs r1 r2)

let satisfies_possible ~domains rel fd =
  let over = Attr.Set.union fd.lhs fd.rhs in
  Seq.exists
    (fun completion ->
      satisfies_classical (Relation.of_list completion) fd)
    (Codd.Subst.relation_substitutions ~domains ~over (Relation.to_list rel))

(* ---------------- classical implication machinery --------------- *)

let closure fds x =
  let step acc =
    List.fold_left
      (fun acc fd ->
        if Attr.Set.subset fd.lhs acc then Attr.Set.union fd.rhs acc else acc)
      acc fds
  in
  let rec fixpoint acc =
    let next = step acc in
    if Attr.Set.equal next acc then acc else fixpoint next
  in
  fixpoint x

let implies fds fd = Attr.Set.subset fd.rhs (closure fds fd.lhs)

let is_key fds ~all x = Attr.Set.subset all (closure fds x)

let candidate_keys fds ~all =
  let attrs = Attr.Set.elements all in
  let rec subsets = function
    | [] -> [ Attr.Set.empty ]
    | a :: rest ->
        let smaller = subsets rest in
        smaller @ List.map (Attr.Set.add a) smaller
  in
  let keys = List.filter (is_key fds ~all) (subsets attrs) in
  (* keep the minimal ones *)
  List.filter
    (fun k ->
      not
        (List.exists
           (fun k' -> Attr.Set.subset k' k && not (Attr.Set.equal k' k))
           keys))
    keys
  |> List.sort_uniq Attr.Set.compare
