lib/deps/mvd.mli: Attr Fd Format Nullrel Relation
