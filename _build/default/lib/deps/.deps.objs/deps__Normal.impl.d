lib/deps/normal.ml: Attr Fd List Nullrel
