lib/deps/armstrong.ml: Attr Fd Format List Nullrel Pp Relation String
