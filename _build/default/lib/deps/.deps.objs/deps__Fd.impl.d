lib/deps/fd.ml: Attr Codd Format List Nullrel Relation Seq Tuple Value
