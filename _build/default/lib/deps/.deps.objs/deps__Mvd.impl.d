lib/deps/mvd.ml: Attr Fd Format List Nullrel Relation Tuple Value
