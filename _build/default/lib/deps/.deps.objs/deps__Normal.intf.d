lib/deps/normal.mli: Attr Fd Nullrel
