lib/deps/fd.mli: Attr Domain Format Nullrel Relation
