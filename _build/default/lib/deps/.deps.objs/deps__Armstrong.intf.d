lib/deps/armstrong.mli: Attr Fd Format Nullrel Relation
