open Nullrel

type notion = Relation.t -> Fd.t -> bool

type verdict = {
  axiom : string;
  holds : bool;
  counterexample : (Relation.t * string) option;
}

let subsets universe =
  List.fold_left
    (fun acc a -> acc @ List.map (Attr.Set.add a) acc)
    [ Attr.Set.empty ]
    (Attr.Set.elements universe)

let fd lhs rhs = { Fd.lhs; rhs }

let describe label parts =
  label ^ ": "
  ^ String.concat ", "
      (List.map
         (fun (name, x) -> name ^ " = " ^ Pp.to_string Attr.pp_set x)
         parts)

let find_counterexample rels cases =
  List.find_map
    (fun rel ->
      List.find_map
        (fun case ->
          match case rel with
          | Some descr -> Some (rel, descr)
          | None -> None)
        cases)
    rels

let verdict axiom = function
  | None -> { axiom; holds = true; counterexample = None }
  | Some ce -> { axiom; holds = false; counterexample = Some ce }

let reflexivity notion rels ~universe =
  let sets = subsets universe in
  let cases =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if Attr.Set.subset y x then
              Some
                (fun rel ->
                  if notion rel (fd x y) then None
                  else Some (describe "X -> Y with Y inside X fails"
                               [ ("X", x); ("Y", y) ]))
            else None)
          sets)
      sets
  in
  verdict "reflexivity" (find_counterexample rels cases)

let augmentation notion rels ~universe =
  let sets = subsets universe in
  let cases =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun y ->
            List.map
              (fun z rel ->
                if
                  notion rel (fd x y)
                  && not
                       (notion rel
                          (fd (Attr.Set.union x z) (Attr.Set.union y z)))
                then
                  Some
                    (describe "X -> Y holds but XZ -> YZ fails"
                       [ ("X", x); ("Y", y); ("Z", z) ])
                else None)
              sets)
          sets)
      sets
  in
  verdict "augmentation" (find_counterexample rels cases)

let transitivity notion rels ~universe =
  let sets = subsets universe in
  let cases =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun y ->
            List.map
              (fun z rel ->
                if
                  notion rel (fd x y) && notion rel (fd y z)
                  && not (notion rel (fd x z))
                then
                  Some
                    (describe "X -> Y and Y -> Z hold but X -> Z fails"
                       [ ("X", x); ("Y", y); ("Z", z) ])
                else None)
              sets)
          sets)
      sets
  in
  verdict "transitivity" (find_counterexample rels cases)

let audit notion rels ~universe =
  [
    reflexivity notion rels ~universe;
    augmentation notion rels ~universe;
    transitivity notion rels ~universe;
  ]

let pp_verdict ppf v =
  match v.counterexample with
  | None -> Format.fprintf ppf "%-13s holds" v.axiom
  | Some (rel, descr) ->
      Format.fprintf ppf "%-13s FAILS on %a (%s)" v.axiom Relation.pp rel
        descr
