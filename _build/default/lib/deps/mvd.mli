(** Multivalued dependencies, with and without nulls.

    The paper's introduction credits Lien \[14\] with "formalizing the
    concept of multivalued dependencies with nulls, for which he derives
    a complete set of inference rules" under the nonexistent
    interpretation. This module provides:

    - classical MVD satisfaction on total relations (the exchange/swap
      characterization);
    - a total-pairs generalization in the spirit of {!Fd.satisfies_total}
      — only tuples total on the relevant attributes constrain the
      relation, so null-bearing tuples are exempt (this matches the
      spirit of Lien's restriction of the swap requirement to tuples
      that are defined on the attributes involved);
    - the classical interplay laws, checked in the tests: an FD implies
      the MVD, and complementation [X ->> Y iff X ->> U - X - Y]. *)

open Nullrel

type t = { lhs : Attr.Set.t; rhs : Attr.Set.t }

val make : string list -> string list -> t
val pp : Format.formatter -> t -> unit

val complement : universe:Attr.Set.t -> t -> t
(** [X ->> U - X - Y]. *)

val satisfies_classical : universe:Attr.Set.t -> Relation.t -> t -> bool
(** Swap characterization over all attribute values (treats ni as a
    constant — only meaningful on total relations): for every [t1],
    [t2] agreeing on [lhs], the tuple taking [rhs] from [t1] and the
    rest from [t2] is in the relation. *)

val satisfies_total : universe:Attr.Set.t -> Relation.t -> t -> bool
(** The null-aware restriction: the swap is only required for pairs of
    tuples that are {e total on the whole universe}. Tuples with nulls
    neither impose nor witness swaps — the relation's total part must
    satisfy the classical MVD. *)

val of_fd : Fd.t -> t
(** Every FD is an MVD. *)
