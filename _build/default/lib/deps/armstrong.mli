(** Checking the Armstrong properties of an FD-satisfaction notion.

    A {e notion} is any predicate deciding whether a relation satisfies
    an FD. For classical FDs on total relations, satisfaction is closed
    under Armstrong's axioms — reflexivity, augmentation and
    transitivity — which is what makes implication and normalization
    work. The paper's conclusion observes that no known generalization
    to nulls keeps all of them; {!audit} checks each axiom for a given
    notion against a battery of relations and reports the verdicts with
    counterexamples. *)

open Nullrel

type notion = Relation.t -> Fd.t -> bool

type verdict = {
  axiom : string;
  holds : bool;
  counterexample : (Relation.t * string) option;
      (** A relation plus a description of the violated implication. *)
}

val reflexivity : notion -> Relation.t list -> universe:Attr.Set.t -> verdict
(** [Y subset of X] implies [X -> Y] must be satisfied — by every
    relation, unconditionally. *)

val augmentation : notion -> Relation.t list -> universe:Attr.Set.t -> verdict
(** If [X -> Y] is satisfied then [XZ -> YZ] must be. *)

val transitivity : notion -> Relation.t list -> universe:Attr.Set.t -> verdict
(** If [X -> Y] and [Y -> Z] are satisfied then [X -> Z] must be. *)

val audit :
  notion -> Relation.t list -> universe:Attr.Set.t -> verdict list
(** All three, in order. The verdict is [holds = true] when no
    counterexample was found in the battery — for the failing notions
    the battery in the callers contains known counterexamples, so a
    [true] there is meaningful. *)

val pp_verdict : Format.formatter -> verdict -> unit
