open Nullrel

let nontrivial ~all (fd : Fd.t) =
  (not (Attr.Set.subset fd.Fd.rhs fd.Fd.lhs)) && Attr.Set.subset fd.Fd.rhs all
  && Attr.Set.subset fd.Fd.lhs all

let bcnf_violation ~fds ~all candidates =
  List.find_opt
    (fun fd ->
      nontrivial ~all fd && not (Fd.is_key fds ~all fd.Fd.lhs))
    candidates

let is_bcnf ~fds ~all = bcnf_violation ~fds ~all fds = None

let subsets attrs =
  List.fold_left
    (fun acc a -> acc @ List.map (Attr.Set.add a) acc)
    [ Attr.Set.empty ] attrs

let project_fds ~fds ~onto =
  let candidates =
    List.filter_map
      (fun lhs ->
        let rhs = Attr.Set.inter (Fd.closure fds lhs) onto in
        let rhs = Attr.Set.diff rhs lhs in
        if Attr.Set.is_empty rhs then None else Some { Fd.lhs; rhs })
      (subsets (Attr.Set.elements onto))
  in
  (* prune dependencies implied by the others (simple cover reduction) *)
  let rec prune kept = function
    | [] -> List.rev kept
    | fd :: rest ->
        if Fd.implies (kept @ rest) fd then prune kept rest
        else prune (fd :: kept) rest
  in
  prune [] candidates

let lossless_split ~fds r1 r2 =
  let common = Attr.Set.inter r1 r2 in
  let closure = Fd.closure fds common in
  Attr.Set.subset r1 closure || Attr.Set.subset r2 closure

let bcnf_decompose ~fds ~all =
  let rec go fragment fds =
    match bcnf_violation ~fds ~all:fragment fds with
    | None -> [ fragment ]
    | Some fd ->
        let lhs_closure =
          Attr.Set.inter (Fd.closure fds fd.Fd.lhs) fragment
        in
        let left = lhs_closure in
        let right =
          Attr.Set.union fd.Fd.lhs (Attr.Set.diff fragment lhs_closure)
        in
        if Attr.Set.equal left fragment || Attr.Set.equal right fragment then
          (* no progress possible (degenerate closure): stop splitting *)
          [ fragment ]
        else
          go left (project_fds ~fds ~onto:left)
          @ go right (project_fds ~fds ~onto:right)
  in
  go all fds
