(** Schema normalization — the "formal analysis and design of
    relational schemas" the paper's conclusion cites FDs for.

    Classical, design-time machinery over attribute sets and FDs (no
    data involved): BCNF violation detection, the standard BCNF
    decomposition by violating-FD splitting, and the binary
    lossless-join test. Sound for the total-relation reading of the
    dependencies; the point of {!Armstrong} is that no null-aware
    satisfaction notion currently supports this machinery in full —
    which is exactly why it is kept separate from the data-level
    checks. *)

open Nullrel

val bcnf_violation :
  fds:Fd.t list -> all:Attr.Set.t -> Fd.t list -> Fd.t option
(** The first dependency of the given list that violates BCNF for the
    schema [all] under the implication closure of [fds]: a nontrivial
    [X -> Y] whose [X] is not a superkey. *)

val is_bcnf : fds:Fd.t list -> all:Attr.Set.t -> bool
(** No violation among [fds] themselves (the usual practical check —
    testing all implied FDs is equivalent for violation existence when
    [fds] is the declared cover, checked on projected dependencies). *)

val bcnf_decompose : fds:Fd.t list -> all:Attr.Set.t -> Attr.Set.t list
(** Standard BCNF decomposition: repeatedly split on a violating FD
    [X -> Y] into [X u Y] and [all - (Y - X)], projecting the
    dependencies (by closure) into each fragment. Always terminates;
    every returned fragment is in BCNF w.r.t. its projected FDs; the
    binary splits are lossless. *)

val lossless_split :
  fds:Fd.t list -> Attr.Set.t -> Attr.Set.t -> bool
(** The binary lossless-join test: [R1 n R2 -> R1] or [R1 n R2 -> R2]
    under the closure of [fds]. *)

val project_fds : fds:Fd.t list -> onto:Attr.Set.t -> Fd.t list
(** The projection of a dependency set onto an attribute subset:
    [X -> (closure X n onto)] for each [X] inside [onto] (exponential in
    [onto]; design-time sizes only). Trivial and redundant dependencies
    are pruned. *)
