(** Functional dependencies over relations with nulls — the open
    problem of the paper's conclusion, made executable.

    Section 8: "at the time of this writing, we do not know of any
    generalization of concepts such as functional or multivalued
    dependencies, which preserves all the properties that makes them so
    useful in the formal analysis and design of relational schemas."

    This module implements three natural candidate generalizations of
    FD satisfaction in the presence of ni nulls, plus the classical
    machinery (attribute-set closure, implication, key finding) that is
    sound for total relations. The test suite and benchmark section E14
    then {e demonstrate} the paper's claim: each candidate loses one of
    the Armstrong properties (reflexivity / augmentation / transitivity)
    that make FDs useful. *)

open Nullrel

type t = { lhs : Attr.Set.t; rhs : Attr.Set.t }

val make : string list -> string list -> t
(** [make ["A"] ["B"; "C"]] is the dependency [A -> B C]. *)

val pp : Format.formatter -> t -> unit

(** {1 Candidate satisfaction notions under nulls} *)

val satisfies_total : Relation.t -> t -> bool
(** {e Total satisfaction}: every pair of tuples that are total on
    [lhs u rhs] and agree on [lhs] also agree on [rhs]. Pairs with any
    relevant null are exempt. Reflexivity and augmentation survive;
    transitivity fails (a null on the middle attributes breaks the
    chain). *)

val satisfies_no_conflict : Relation.t -> t -> bool
(** {e No-conflict satisfaction}: every pair of tuples total on [lhs]
    that agree on [lhs] must be {e joinable} on [rhs] — their rhs
    values must not contradict (a null is compatible with anything).
    Strictly stronger than {!satisfies_total} on the same pairs; still
    loses transitivity. *)

val satisfies_possible :
  domains:(Attr.t -> Domain.t) -> Relation.t -> t -> bool
(** {e Weak (possible-world) satisfaction}: some completion of the
    nulls (over the given finite domains) satisfies the FD classically.
    Exponential in the number of nulls — Section 5's substitution costs
    all over again. *)

val satisfies_classical : Relation.t -> t -> bool
(** Classical two-valued satisfaction; meaningful on total relations
    (on relations with nulls it treats ni as just another constant,
    which is exactly the mistake the other notions try to avoid). *)

(** {1 Classical implication machinery (sound for total relations)} *)

val closure : t list -> Attr.Set.t -> Attr.Set.t
(** Attribute-set closure under a set of FDs (Armstrong's axioms). *)

val implies : t list -> t -> bool
(** [implies fds fd] iff [fd.rhs] is inside the closure of [fd.lhs]. *)

val is_key : t list -> all:Attr.Set.t -> Attr.Set.t -> bool
(** Does the attribute set determine every attribute of [all]? *)

val candidate_keys : t list -> all:Attr.Set.t -> Attr.Set.t list
(** The minimal keys (exponential search over subsets; meant for the
    small schemas of design work). *)
