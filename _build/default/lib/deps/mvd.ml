open Nullrel

type t = { lhs : Attr.Set.t; rhs : Attr.Set.t }

let make lhs rhs = { lhs = Attr.set_of_list lhs; rhs = Attr.set_of_list rhs }

let pp ppf mvd =
  Format.fprintf ppf "%a ->> %a" Attr.pp_set mvd.lhs Attr.pp_set mvd.rhs

let complement ~universe mvd =
  { mvd with rhs = Attr.Set.diff (Attr.Set.diff universe mvd.lhs) mvd.rhs }

let agree_on x r1 r2 =
  Attr.Set.for_all (fun a -> Value.equal (Tuple.get r1 a) (Tuple.get r2 a)) x

(* The swap of t1 and t2: lhs and rhs from t1, the remaining universe
   attributes from t2. *)
let swap ~universe mvd t1 t2 =
  let z = Attr.Set.diff (Attr.Set.diff universe mvd.lhs) mvd.rhs in
  Attr.Set.fold
    (fun a acc -> Tuple.set acc a (Tuple.get t2 a))
    z
    (Tuple.restrict t1 (Attr.Set.union mvd.lhs mvd.rhs))

let swap_check ~universe ~relevant rel mvd =
  let tuples = Relation.to_list rel in
  List.for_all
    (fun t1 ->
      List.for_all
        (fun t2 ->
          (not (relevant t1 && relevant t2))
          || (not (agree_on mvd.lhs t1 t2))
          || Relation.mem (swap ~universe mvd t1 t2) rel)
        tuples)
    tuples

let satisfies_classical ~universe rel mvd =
  swap_check ~universe ~relevant:(fun _ -> true) rel mvd

let satisfies_total ~universe rel mvd =
  swap_check ~universe ~relevant:(Tuple.is_total_on universe) rel mvd

let of_fd (fd : Fd.t) = { lhs = fd.Fd.lhs; rhs = fd.Fd.rhs }
