(** Deterministic pseudo-random number generator (splitmix64).

    Benchmarks and property tests need reproducible inputs independent of
    the stdlib [Random] state; splitmix64 is small, fast and
    well-distributed. *)

type t

val create : int -> t
(** A generator seeded deterministically. *)

val next : t -> int64
(** Next raw 64-bit output (mutates the state). *)

val int : t -> int -> int
(** [int g bound] is uniform in [0 .. bound-1]. [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool g p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val split : t -> t
(** A new generator statistically independent of the parent. *)
