type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  raw mod bound

let float g =
  let raw = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool g p = float g < p

let choose g items =
  match items with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth items (int g (List.length items))

let split g = { state = next g }
