lib/workload/gen.mli: Attr Nullrel Prng Relation Tuple Xrel
