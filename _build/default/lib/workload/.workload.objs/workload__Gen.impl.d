lib/workload/gen.ml: Attr Domain List Nullrel Printf Prng Relation Tuple Value Xrel
