lib/workload/prng.mli:
