(** Tautology detection for the "unknown" interpretation of nulls
    (Section 5 and the Appendix).

    Under the "unknown" interpretation, a tuple with nulls must be
    included in the lower bound [||Q||-] whenever the qualification
    evaluates to TRUE under {e every legal substitution} of its nulls —
    i.e. when the tuple {e defines a tautology} for the query. The
    Appendix argues that detecting this is NP-hard in general, entangled
    with arithmetic and with the schema's integrity constraints, and
    therefore impractical; the [ni] interpretation simply never needs it.

    Two detectors are provided:
    - {!brute_force}: enumerates every legal substitution over finite
      domains (the Appendix's infeasible-in-general method — benchmarked
      as E8);
    - {!breakpoints}: a sound-and-complete symbolic decision for the
      single-null case over an integer domain, by sampling around the
      comparison breakpoints (it decides the Appendix's
      [t.A > 3 /\ (t.B < 12 \/ t.B > t.A)] example); it illustrates how
      quickly "understanding simple mathematics" becomes necessary. *)

open Nullrel

val brute_force :
  domains:(Attr.t -> Domain.t) ->
  ?legal:(Tuple.t -> bool) ->
  Predicate.t ->
  Tuple.t ->
  bool
(** [brute_force ~domains ~legal p r]: does [p] evaluate to TRUE under
    every substitution of [r]'s nulls (on the attributes [p] mentions)
    that satisfies [legal] (the schema's integrity constraints; default:
    all substitutions are legal)? Vacuously false-friendly: if no
    substitution is legal the tuple defines a (degenerate) tautology.
    Cost: product of domain cardinalities over the null slots. *)

val brute_force_exists :
  domains:(Attr.t -> Domain.t) ->
  ?legal:(Tuple.t -> bool) ->
  Predicate.t ->
  Tuple.t ->
  bool
(** The satisfiability dual, needed for the upper bound [||Q||+] of
    Section 5: does {e some} legal substitution of the nulls make [p]
    TRUE (i.e. the tuple cannot be ruled out)? Same cost profile as
    {!brute_force}, short-circuiting on the first witness. *)

val breakpoints : Predicate.t -> Tuple.t -> bool option
(** Symbolic single-null decision. [Some b] when the tuple has exactly
    zero or one null attribute among those mentioned by [p], that
    attribute is only compared against integers (constants or the
    tuple's own non-null integer values), and the tautology question has
    answer [b] over the unbounded integer domain. [None] when the
    fragment does not apply (several nulls, non-integer comparisons).
    Soundness: the truth of such a predicate as a function of the null
    is piecewise constant between consecutive mentioned constants, so
    checking each breakpoint, its neighbours and the two extremes
    decides universality. *)

val breakpoints_exists : Predicate.t -> Tuple.t -> bool option
(** Symbolic satisfiability for the same single-null integer fragment:
    the predicate is satisfiable iff it holds at one of the breakpoint
    samples (the truth function is piecewise constant, so every piece
    contains a sample). *)
