lib/codd/maybe_algebra.ml: Attr Nullrel Predicate Relation Seq Subst Tuple Tvl
