lib/codd/maybe_algebra.mli: Attr Domain Nullrel Predicate Relation Tuple Tvl Value
