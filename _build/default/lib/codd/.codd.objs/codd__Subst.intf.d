lib/codd/subst.mli: Attr Domain Nullrel Seq Tuple Tvl
