lib/codd/subst.ml: Attr Domain List Nullrel Seq Tuple Tvl Value
