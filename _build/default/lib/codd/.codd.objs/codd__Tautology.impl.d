lib/codd/tautology.ml: Attr List Nullrel Predicate Seq Subst Tuple Value
