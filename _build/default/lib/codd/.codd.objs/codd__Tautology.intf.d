lib/codd/tautology.mli: Attr Domain Nullrel Predicate Tuple
