open Nullrel

let brute_force ~domains ?(legal = fun _ -> true) p r =
  let over = Predicate.attrs p in
  Seq.for_all
    (fun r' -> (not (legal r')) || Predicate.holds p r')
    (Subst.tuple_substitutions ~domains ~over r)

let brute_force_exists ~domains ?(legal = fun _ -> true) p r =
  let over = Predicate.attrs p in
  Seq.exists
    (fun r' -> legal r' && Predicate.holds p r')
    (Subst.tuple_substitutions ~domains ~over r)

(* Integer constants against which [p] compares the attribute [a], once
   the tuple's non-null values are folded in. [None] when some atom
   involving [a] is not an integer comparison we can handle. *)
let rec constants_against a r p =
  let const v = match v with Value.Int i -> Some [ i ] | _ -> None in
  match p with
  | Predicate.Const _ -> Some []
  | Predicate.Cmp_const (b, _, k) ->
      if Attr.equal a b then const k else Some []
  | Predicate.Cmp_attrs (b, _, c) ->
      let involves_b = Attr.equal a b and involves_c = Attr.equal a c in
      if involves_b && involves_c then Some [] (* a cmp a: constant truth *)
      else if involves_b then const (Tuple.get r c)
      else if involves_c then const (Tuple.get r b)
      else Some []
  | Predicate.And (p, q) | Predicate.Or (p, q) -> (
      match (constants_against a r p, constants_against a r q) with
      | Some ks, Some ks' -> Some (ks @ ks')
      | _ -> None)
  | Predicate.Not p -> constants_against a r p

(* Shared skeleton: decide a quantified question about the single null
   attribute by evaluating at the breakpoint samples. [combine] is
   [List.for_all] for tautology, [List.exists] for satisfiability. *)
let with_breakpoints combine p r =
  let mentioned = Predicate.attrs p in
  let nulls =
    Attr.Set.filter (fun a -> Value.is_null (Tuple.get r a)) mentioned
  in
  match Attr.Set.elements nulls with
  | [] -> Some (Predicate.holds p r)
  | [ a ] -> (
      match constants_against a r p with
      | None -> None
      | Some ks ->
          let samples =
            match ks with
            | [] -> [ 0 ]
            | _ ->
                let lo = List.fold_left min max_int ks
                and hi = List.fold_left max min_int ks in
                (lo - 1) :: (hi + 1)
                :: List.concat_map (fun k -> [ k - 1; k; k + 1 ]) ks
          in
          Some
            (combine
               (fun v -> Predicate.holds p (Tuple.set r a (Value.Int v)))
               samples))
  | _ :: _ :: _ -> None

let breakpoints p r = with_breakpoints (fun f l -> List.for_all f l) p r
let breakpoints_exists p r = with_breakpoints (fun f l -> List.exists f l) p r
