(** The null-substitution principle (Section 1, after display (1.2)).

    Codd's three-valued comparisons of relations are defined by replacing
    "each occurrence of [omega] by a possible distinct nonnull value":
    an expression yielding TRUE (FALSE) under every substitution
    evaluates to TRUE (FALSE); one yielding both evaluates to MAYBE.

    This module enumerates the substitutions. The enumeration is
    exponential in the number of null occurrences — this very blowup is
    one of the paper's arguments against the approach, and it is measured
    in benchmark E8. *)

open Nullrel

val tuple_substitutions :
  domains:(Attr.t -> Domain.t) ->
  over:Attr.Set.t ->
  Tuple.t ->
  Tuple.t Seq.t
(** All total completions of a tuple over the attributes [over]: each
    attribute of [over] that is null in the tuple ranges over its domain.
    Raises [Domain.Infinite] if such an attribute has an infinite
    domain. *)

val relation_substitutions :
  domains:(Attr.t -> Domain.t) ->
  over:Attr.Set.t ->
  Tuple.t list ->
  Tuple.t list Seq.t
(** All simultaneous total completions of a list of tuples, every null
    occurrence substituted independently (possibly by distinct values). *)

val count_substitutions :
  domains:(Attr.t -> Domain.t) -> over:Attr.Set.t -> Tuple.t list -> int
(** Number of substitutions {!relation_substitutions} would enumerate
    (product of domain cardinalities over all null slots). *)

val quantify : (Tuple.t list -> bool) -> Tuple.t list Seq.t -> Tvl.t
(** [quantify holds substitutions]: [True] if [holds] on every
    substitution, [False] if on none, [Ni] (read: MAYBE) otherwise.
    Short-circuits as soon as both a holding and a failing substitution
    have been seen. [True] on an empty sequence. *)
