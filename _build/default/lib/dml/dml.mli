(** Executing QUEL update statements against a catalog.

    The semantics are Section 7's: [append] is lattice union, [delete]
    is difference, [replace] is a deletion followed by an addition.
    Because the lower-bound discipline extends to updates, [delete] and
    [replace] touch only the tuples that {e surely} match the
    qualification — a null never matches, so incomplete tuples are never
    destroyed by a value-based condition.

    Every executed update re-checks the target relation against its
    schema ({!Storage.Catalog.Violation} aborts the update; the catalog
    is unchanged). *)


exception Error of string
(** Unknown relation, unknown attribute in an assignment, or a
    qualification referencing a variable other than the target. *)

type outcome = {
  catalog : Storage.Catalog.t;  (** The catalog after the statement. *)
  message : string;  (** One-line human summary ("2 tuples deleted"). *)
  result : Quel.Eval.result option;
      (** The table, for [retrieve] statements only. *)
}

val exec : Storage.Catalog.t -> Quel.Ast.statement -> outcome
val exec_string : Storage.Catalog.t -> string -> outcome
(** [exec] composed with {!Quel.Parser.parse_statement}. *)
