open Nullrel

exception Error of string

let errorf fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type outcome = {
  catalog : Storage.Catalog.t;
  message : string;
  result : Quel.Eval.result option;
}

let flip = function
  | Predicate.Eq -> Predicate.Eq
  | Predicate.Neq -> Predicate.Neq
  | Predicate.Lt -> Predicate.Gt
  | Predicate.Gt -> Predicate.Lt
  | Predicate.Le -> Predicate.Ge
  | Predicate.Ge -> Predicate.Le

(* Compile a single-variable qualification onto the base relation's own
   attribute names. *)
let rec base_predicate var = function
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Attr (w, b))
    when String.equal v var && String.equal w var ->
      Predicate.Cmp_attrs (Attr.make a, cmp, Attr.make b)
  | Quel.Ast.Cmp (Quel.Ast.Attr (v, a), cmp, Quel.Ast.Const k)
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k, cmp, Quel.Ast.Attr (v, a))
    when String.equal v var ->
      Predicate.Cmp_const (Attr.make a, flip cmp, k)
  | Quel.Ast.Cmp (Quel.Ast.Const k1, cmp, Quel.Ast.Const k2) ->
      Predicate.Const (Predicate.apply_comparison cmp k1 k2)
  | Quel.Ast.Cmp _ ->
      errorf "the qualification may only reference the variable %s" var
  | Quel.Ast.And (c1, c2) ->
      Predicate.And (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Or (c1, c2) ->
      Predicate.Or (base_predicate var c1, base_predicate var c2)
  | Quel.Ast.Not c -> Predicate.Not (base_predicate var c)

let where_predicate var = function
  | None -> Predicate.Const Tvl.True
  | Some c -> base_predicate var c

let relation_of cat rel =
  match Storage.Catalog.find cat rel with
  | Some entry -> entry
  | None -> errorf "unknown relation %s" rel

let tuple_of_assignments schema rel values =
  List.fold_left
    (fun t (a, v) ->
      let attr = Attr.make a in
      if not (Schema.mem schema attr) then
        errorf "relation %s has no attribute %s" rel a;
      if not (Value.is_null (Tuple.get t attr)) then
        errorf "attribute %s assigned twice" a;
      Tuple.set t attr v)
    Tuple.empty values

let plural n noun = Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s")

let exec cat statement =
  match statement with
  | Quel.Ast.Retrieve q ->
      let result = Quel.Eval.run (Storage.Catalog.to_db cat) q in
      { catalog = cat; message = ""; result = Some result }
  | Quel.Ast.Append { rel; values } ->
      let schema, x = relation_of cat rel in
      let tuple = tuple_of_assignments schema rel values in
      let updated = Storage.Update.insert x [ tuple ] in
      let grew = Xrel.cardinal updated <> Xrel.cardinal x in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message =
          (if Xrel.equal updated x then "appended tuple added no information"
           else if grew then "1 tuple appended"
           else "1 tuple appended (absorbed less informative rows)");
        result = None;
      }
  | Quel.Ast.Delete { var; rel; where } ->
      let _, x = relation_of cat rel in
      let p = where_predicate var where in
      let updated = Storage.Update.delete_where p x in
      let removed = Xrel.cardinal x - Xrel.cardinal updated in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message = plural removed "tuple" ^ " deleted";
        result = None;
      }
  | Quel.Ast.Replace { var; rel; values; where } ->
      let schema, x = relation_of cat rel in
      let p = where_predicate var where in
      let patch = tuple_of_assignments schema rel values in
      let apply r =
        Tuple.fold (fun a v acc -> Tuple.set acc a v) patch r
      in
      let touched = Xrel.cardinal (Algebra.select p x) in
      let updated = Storage.Update.modify ~where:p ~using:apply x in
      {
        catalog = Storage.Catalog.set_relation cat rel updated;
        message = plural touched "tuple" ^ " replaced";
        result = None;
      }

let exec_string cat src = exec cat (Quel.Parser.parse_statement src)
