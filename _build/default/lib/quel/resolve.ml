open Nullrel

type db = (string * (Schema.t * Xrel.t)) list

exception Error of string

let errorf fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let relation db name =
  match List.assoc_opt name db with
  | Some entry -> entry
  | None -> errorf "unknown relation %s" name

let schema_of db q v =
  match List.assoc_opt v q.Ast.ranges with
  | None -> errorf "unbound tuple variable %s" v
  | Some rel -> fst (relation db rel)

let check_ref db q (v, a) =
  let schema = schema_of db q v in
  if not (Schema.mem schema (Attr.make a)) then
    errorf "relation %s has no attribute %s (referenced as %s.%s)"
      (Schema.name schema) a v a

let check db q =
  let rec dup_var = function
    | [] -> ()
    | (v, _) :: rest ->
        if List.mem_assoc v rest then errorf "tuple variable %s bound twice" v
        else dup_var rest
  in
  dup_var q.Ast.ranges;
  List.iter (fun (v, rel) -> ignore (relation db rel) |> fun () -> ignore v)
    q.Ast.ranges;
  List.iter (check_ref db q) q.Ast.targets;
  match q.Ast.where with
  | None -> ()
  | Some c -> List.iter (check_ref db q) (Ast.cond_attrs c)

let prefixed v a = Attr.make (v ^ "." ^ a)
