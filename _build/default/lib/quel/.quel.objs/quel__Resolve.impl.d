lib/quel/resolve.ml: Ast Attr Format List Nullrel Schema Xrel
