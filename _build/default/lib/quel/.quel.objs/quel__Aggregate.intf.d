lib/quel/aggregate.mli: Ast Resolve
