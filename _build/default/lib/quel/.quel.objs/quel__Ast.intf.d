lib/quel/ast.mli: Format Nullrel Predicate Value
