lib/quel/aggregate.ml: Ast Attr Codd Eval List Nullrel Predicate Printf Resolve Seq Tuple Tvl Value
