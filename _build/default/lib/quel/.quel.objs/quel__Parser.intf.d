lib/quel/parser.mli: Ast
