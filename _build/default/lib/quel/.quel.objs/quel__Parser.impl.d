lib/quel/parser.ml: Ast Format Lexer List Nullrel Predicate Printf String Value
