lib/quel/resolve.mli: Ast Attr Nullrel Schema Xrel
