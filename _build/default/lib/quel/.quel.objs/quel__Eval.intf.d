lib/quel/eval.mli: Ast Attr Domain Nullrel Predicate Resolve Tuple Xrel
