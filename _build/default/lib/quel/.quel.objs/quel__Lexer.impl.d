lib/quel/lexer.ml: Buffer Format List Nullrel Printf String
