lib/quel/ast.ml: Format List Nullrel Predicate Value
