lib/quel/lexer.mli: Format Nullrel
