lib/quel/eval.ml: Ast Attr Codd List Nullrel Option Parser Predicate Resolve Schema String Tuple Tvl Xrel
