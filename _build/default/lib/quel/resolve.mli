(** Name resolution for mini-QUEL queries against a database. *)

open Nullrel

type db = (string * (Schema.t * Xrel.t)) list
(** A database: named relations with their schemas. *)

exception Error of string

val relation : db -> string -> Schema.t * Xrel.t
(** Looks a relation up by name. Raises {!Error} when absent. *)

val check : db -> Ast.query -> unit
(** Validates a query: every range relation exists, tuple variables are
    not bound twice, and every attribute reference (targets and
    qualification) names a declared attribute of its variable's relation.
    Raises {!Error} otherwise. *)

val prefixed : Ast.var -> string -> Attr.t
(** The attribute [v.A] of the combined tuple built by the evaluator for
    the reference [v.A]. *)
