(** Query evaluation (Section 5 and the Appendix).

    The evaluator considers all tuple combinations of the range relations
    (the Cartesian product), evaluates the where clause on each combined
    tuple, and projects the target list. Two disciplines are provided:

    - {!run}: the paper's strategy — three-valued evaluation under the
      [ni] interpretation, keeping only TRUE rows. This computes the
      correct lower bound [||Q||-] with no tautology machinery.
    - {!run_unknown}: the "unknown" interpretation — a combined tuple
      whose qualification evaluates to [ni] is additionally included if
      it {e defines a tautology} (TRUE under every legal substitution of
      its nulls). This is the expensive discipline the Appendix
      dissects. *)

open Nullrel

type result = {
  attrs : Attr.t list;  (** Output columns, in target-list order. *)
  rel : Xrel.t;
}

val target_attr : (Ast.var * string) list -> Ast.var * string -> Attr.t
(** Output column name for a target: the bare attribute name when
    unambiguous in the target list, otherwise [v.A]. *)

val predicate_of_cond : Ast.cond -> Predicate.t
(** Compiles a qualification over combined-tuple attributes ([v.A]).
    Constant-to-constant comparisons fold to a truth value; comparisons
    with the constant on the left are flipped. *)

val combined_tuples : Resolve.db -> Ast.query -> Tuple.t list
(** The Cartesian product of the range relations as combined tuples with
    prefixed attributes. Exposed for the benchmarks. *)

val domains_for : Resolve.db -> Ast.query -> Attr.t -> Domain.t
(** Domain oracle for the prefixed attributes ([v.A] resolves through
    [v]'s schema). Used by the substitution-based evaluators and the
    aggregate bounds. Raises [Invalid_argument] on unknown names. *)

val run : Resolve.db -> Ast.query -> result
(** Lower-bound evaluation under the [ni] interpretation. Raises
    {!Resolve.Error} on name errors. *)

val run_string : Resolve.db -> string -> result
(** [run] composed with {!Parser.parse}. *)

val run_maybe : Resolve.db -> Ast.query -> result
(** Codd's MAYBE version of the query: the combined tuples whose
    qualification evaluates to [ni]/MAYBE (Section 1). Disjoint from
    {!run}. The paper's practical complaint — low selectivity at full
    scan cost — is visible directly: with any null-bearing range this
    returns large, weakly informative results. Note this is {e not} the
    upper bound [||Q||+] of Section 5, whose correct computation the
    paper defers (footnote 6); it is the operator Codd's systems
    actually offered. *)

val run_upper :
  ?legal:(Tuple.t -> bool) ->
  Resolve.db ->
  Ast.query ->
  result
(** The upper bound [||Q||+] of Section 5: "the set of objects which may
    possibly satisfy Q (on the basis of the available information, they
    cannot be ruled out)". A combined tuple qualifies when its
    qualification is TRUE, or is [ni] and {e some} legal substitution of
    its nulls makes it TRUE (symbolic single-null decision first,
    brute-force enumeration otherwise — finite domains required on the
    enumerated attributes). The paper notes this bound is "of less
    practical interest and also the source of some difficult problems"
    (footnote 6) — here it is exact for finite domains, and the E8
    benchmark shows what it costs. [run q <= run_upper q] always holds. *)

type tautology_strategy =
  | Brute_force  (** Enumerate every legal substitution ({!Codd.Tautology.brute_force}). *)
  | Symbolic_first
      (** Try {!Codd.Tautology.breakpoints}; fall back to brute force
          when the symbolic fragment does not apply. *)

val run_unknown :
  ?strategy:tautology_strategy ->
  ?legal:(Tuple.t -> bool) ->
  Resolve.db ->
  Ast.query ->
  result
(** Evaluation under the "unknown" interpretation (default strategy
    {!Symbolic_first}). [legal] expresses the schema's integrity
    constraints on fully substituted combined tuples — substitutions
    violating it are not considered (Appendix, query QB); supplying it
    forces the brute-force path, since the symbolic checker cannot see
    constraints. Requires finite domains for the null attributes the
    qualification touches when brute force is engaged. *)
