(** Recursive-descent parser for mini-QUEL.

    Grammar (keywords case-insensitive):
    {v
    query    ::= range+ retrieve [where]
    range    ::= "range" "of" ident "is" ident
    retrieve ::= "retrieve" "(" target ("," target)* ")"
    target   ::= ident "." ident
    where    ::= "where" or-expr
    or-expr  ::= and-expr ("or" and-expr)*
    and-expr ::= not-expr ("and" not-expr)*
    not-expr ::= "not" not-expr | atom
    atom     ::= "(" or-expr ")" | term cmp term
    term     ::= ident "." ident | int | float | string
    cmp      ::= "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
    v} *)

exception Error of string
(** Parse error with a human-readable message. *)

val parse : string -> Ast.query
(** Parses a complete query. Raises {!Error} (or {!Lexer.Error}) on
    malformed input. *)

val parse_cond : string -> Ast.cond
(** Parses a bare qualification expression (handy in tests). *)

val parse_statement : string -> Ast.statement
(** Parses a statement — a retrieve query or one of QUEL's update
    statements:
    {v
    statement ::= query
                | "append" "to" ident assignments
                | range "delete" ident [where]
                | range "replace" ident assignments [where]
    assignments ::= "(" ident "=" literal ("," ident "=" literal)* ")"
    v}
    Delete and replace take a single range clause binding their target
    variable. *)
