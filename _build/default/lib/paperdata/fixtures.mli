(** The paper's running examples as ready-made relations.

    Everything here is transcribed directly from the paper: Table I /
    Table II (the EMP relation before and after the TEL# column is
    added), displays (1.1)/(1.2) (PS' and PS''), and display (6.6) (the
    PARTS-SUPPLIERS relation of Section 6). Shared by the test suite,
    the examples and the benchmark harness. *)

open Nullrel

val i : int -> Value.t
val s : string -> Value.t
val t : (string * Value.t) list -> Tuple.t

(** {1 Tables I and II — the EMP relation} *)

val emp_schema_v1 : Schema.t
(** [EMP(E#, NAME, SEX, MGR#)] with key [E#]. *)

val emp_schema_v2 : Schema.t
(** Schema (2.2): [emp_schema_v1] extended with [TEL#]. *)

val emp_schema_finite_tel : Schema.t
(** Like [emp_schema_v2] but with a finite TEL# domain
    ([2630000..2639999]) so brute-force tautology checking can enumerate
    it (used by the Figure 1 experiments). *)

val emp : Xrel.t
(** The three employees of Table I (equivalently Table II — the two are
    information-wise equivalent, which is the point of Section 2). *)

(** {1 Displays (1.1) and (1.2) — PS' and PS''} *)

val ps'_tuples : Tuple.t list
val ps''_tuples : Tuple.t list
val ps' : Xrel.t
val ps'' : Xrel.t

val ps_small_domains : Attr.t -> Domain.t
(** Finite domains for the PS universe ([P# in {p1,p2}],
    [S# in {s1,s2}]) used by the null-substitution baseline. *)

(** {1 Display (6.6) — the PARTS-SUPPLIERS relation} *)

val ps_tuples : Tuple.t list
(** The seven rows exactly as printed (including the less informative
    tuples the paper deliberately keeps). *)

val ps_rel : Relation.t
(** The representation with all seven rows — what the Codd baseline
    operates on. *)

val ps : Xrel.t
(** The x-relation (minimal representation: five rows). *)

(** {1 Figure 1 and Figure 2 queries} *)

val qa_verbatim : string
(** Query QA exactly as in Figure 1. Note the paper treats
    [TEL# > 2634000] and [TEL# < 2634000] as complementary; verbatim
    they leave the gap [TEL# = 2634000]. *)

val qa_adjusted : string
(** QA with [>=] so the two conditions are genuinely complementary —
    the form whose BROWN tuple defines the tautology the paper
    describes. *)

val qb : string
(** Query QB of Figure 2. *)
