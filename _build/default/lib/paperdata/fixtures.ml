open Nullrel

let i n = Value.Int n
let s x = Value.Str x
let t bindings = Tuple.of_strings bindings

let emp_schema_v1 =
  Schema.make "EMP" ~key:[ "E#" ]
    [
      ("E#", Domain.Ints);
      ("NAME", Domain.Strings);
      ("SEX", Domain.Enum [ "M"; "F" ]);
      ("MGR#", Domain.Ints);
    ]

let emp_schema_v2 = Schema.add_column emp_schema_v1 "TEL#" Domain.Ints

let emp_schema_finite_tel =
  Schema.add_column emp_schema_v1 "TEL#" (Domain.Int_range (2630000, 2639999))

let emp =
  Xrel.of_list
    [
      t [ ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M"); ("MGR#", i 2235) ];
      t [ ("E#", i 4335); ("NAME", s "BROWN"); ("SEX", s "F"); ("MGR#", i 2235) ];
      t [ ("E#", i 8799); ("NAME", s "GREEN"); ("SEX", s "M"); ("MGR#", i 1255) ];
    ]

let ps'_tuples = [ t [ ("S#", s "s1") ]; t [ ("P#", s "p1"); ("S#", s "s2") ] ]
let ps''_tuples = ps'_tuples @ [ t [ ("P#", s "p2"); ("S#", s "s2") ] ]
let ps' = Xrel.of_list ps'_tuples
let ps'' = Xrel.of_list ps''_tuples

let ps_small_domains a =
  match Attr.name a with
  | "P#" -> Domain.Enum [ "p1"; "p2" ]
  | "S#" -> Domain.Enum [ "s1"; "s2" ]
  | other -> invalid_arg ("Fixtures.ps_small_domains: " ^ other)

let ps_tuples =
  [
    t [ ("S#", s "s1"); ("P#", s "p1") ];
    t [ ("S#", s "s1"); ("P#", s "p2") ];
    t [ ("S#", s "s1") ];
    t [ ("S#", s "s2"); ("P#", s "p1") ];
    t [ ("S#", s "s2") ];
    t [ ("S#", s "s3") ];
    t [ ("S#", s "s4"); ("P#", s "p4") ];
  ]

let ps_rel = Relation.of_list ps_tuples
let ps = Xrel.of_relation ps_rel

let qa_verbatim =
  "range of e is EMP\n\
   retrieve (e.NAME, e.E#)\n\
   where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)"

let qa_adjusted =
  "range of e is EMP\n\
   retrieve (e.NAME, e.E#)\n\
   where (e.SEX = \"F\" and e.TEL# >= 2634000) or (e.TEL# < 2634000)"

let qb =
  "range of e is EMP\n\
   range of m is EMP\n\
   retrieve (e.NAME)\n\
   where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# <> e.E# and e.E# <> m.MGR#"
