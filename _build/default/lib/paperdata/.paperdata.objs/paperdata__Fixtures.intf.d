lib/paperdata/fixtures.mli: Attr Domain Nullrel Relation Schema Tuple Value Xrel
