lib/paperdata/fixtures.ml: Attr Domain Nullrel Relation Schema Tuple Value Xrel
