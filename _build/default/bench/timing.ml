(* Thin wrapper around Bechamel: measure one thunk, return ns/run. *)

open Bechamel

let quota = ref 0.25
let limit = ref 500

let fast () =
  quota := 0.05;
  limit := 100

let ns_per_run fn =
  let test = Test.make ~name:"t" (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:!limit ~quota:(Time.second !quota) ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> est
      | _ -> acc)
    results nan

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)
