bench/main.ml: Algebra Array Attr Codd Deps Domain Float Format List Nullrel Paperdata Plan Pp Predicate Printf Quel Relation Schema Storage String Sys Timing Tuple Tvl Value Workload Xrel
