bench/main.mli:
