(* Every worked example, table, figure and display of the paper, as
   executable assertions. The experiment ids (E1..E6, E9) follow
   DESIGN.md. *)

open Nullrel
open Helpers

(* ------------------------------------------------------------------ *)
(* E1 — Tables I and II: schema evolution without information change.  *)

let test_table1_table2_equivalent () =
  (* Build Table II the long way, with explicit ni TEL# entries; the
     canonical form must coincide with Table I's tuples. *)
  let with_tel =
    Xrel.of_list
      (List.map
         (fun r -> Tuple.set r (a_ "TEL#") Value.Null)
         (Xrel.to_list emp_table1))
  in
  check_xrel "Table I = Table II information-wise" emp_table1 with_tel;
  Alcotest.(check bool)
    "representations are mutually subsuming" true
    (Relation.equiv (Xrel.rep emp_table1) (Xrel.rep with_tel))

let test_schema_evolution_adds_column () =
  Alcotest.(check (list string))
    "v2 schema has TEL#"
    [ "E#"; "NAME"; "SEX"; "MGR#"; "TEL#" ]
    (List.map Attr.name (Schema.attrs emp_schema_v2));
  (* The evolved schema still accepts the old tuples: TEL# is ni. *)
  Alcotest.(check (list string))
    "no violations" []
    (List.map
       (fun v -> Nullrel.Pp.to_string Schema.pp_violation v)
       (Schema.check emp_schema_v2 emp_table2))

(* ------------------------------------------------------------------ *)
(* Section 3 — the r1..r4 examples of more-informative ordering.       *)

let r1 =
  t [ ("E#", i 5555); ("NAME", s "JONES"); ("MGR#", i 2231) ]

let r2 =
  t [ ("E#", i 5555); ("NAME", s "JONES"); ("SEX", s "F"); ("MGR#", i 2231) ]

let r3 =
  (* r2 extended with a null TEL#: equivalent to r2. *)
  Tuple.set r2 (a_ "TEL#") Value.Null

let r4 = Tuple.set r2 (a_ "TEL#") (i 2639452)

let test_more_informative_chain () =
  Alcotest.(check bool) "r1 <= r2" true (Tuple.more_informative r2 r1);
  Alcotest.(check bool) "r2 equiv r3" true (Tuple.equal r2 r3);
  Alcotest.(check bool) "r3 <= r4" true (Tuple.more_informative r4 r3);
  Alcotest.(check bool) "r4 not <= r1-with-SEX" true
    (not
       (Tuple.more_informative
          (Tuple.set r1 (a_ "SEX") (s "M"))
          r4))

(* ------------------------------------------------------------------ *)
(* E3 — Displays (1.1)/(1.2): Codd's set comparisons vs ours.          *)

let e3_domains a =
  match Attr.name a with
  | "P#" -> Domain.Enum [ "p1"; "p2" ]
  | "S#" -> Domain.Enum [ "s1"; "s2" ]
  | other -> invalid_arg other

let e3_scope = aset [ "P#"; "S#" ]

let codd_contains e1 e2 =
  Codd.Maybe_algebra.contains3 ~domains:e3_domains ~scope:e3_scope e1 e2

let codd_equal e1 e2 =
  Codd.Maybe_algebra.equal3 ~domains:e3_domains ~scope:e3_scope e1 e2

let ps'_expr = Codd.Maybe_algebra.Rel (rel ps'_tuples)
let ps''_expr = Codd.Maybe_algebra.Rel (rel ps''_tuples)

let test_codd_set_comparisons () =
  check_tvl "Codd: PS'' >= PS' is MAYBE" Tvl.Ni (codd_contains ps''_expr ps'_expr);
  check_tvl "Codd: PS' u PS'' >= PS' is MAYBE" Tvl.Ni
    (codd_contains (Codd.Maybe_algebra.Union (ps'_expr, ps''_expr)) ps'_expr);
  check_tvl "Codd: PS' n PS'' <= PS' is MAYBE" Tvl.Ni
    (codd_contains ps'_expr (Codd.Maybe_algebra.Inter (ps'_expr, ps''_expr)));
  check_tvl "Codd: PS' = PS' is MAYBE" Tvl.Ni (codd_equal ps'_expr ps'_expr)

let test_codd_equality_deviation () =
  (* The paper asserts PS' = PS'' is MAYBE; under the strict
     null-substitution principle the cardinalities can never match, so
     the comparison is FALSE under every substitution. Recorded as a
     deviation in EXPERIMENTS.md. *)
  check_tvl "Codd: PS' = PS'' (strict substitution semantics)" Tvl.False
    (codd_equal ps'_expr ps''_expr)

let test_our_set_comparisons () =
  Alcotest.(check bool) "ours: PS'' >= PS' holds" true (Xrel.contains ps'' ps');
  Alcotest.(check bool)
    "ours: PS' u PS'' >= PS' holds" true
    (Xrel.contains (Xrel.union ps' ps'') ps');
  Alcotest.(check bool)
    "ours: PS' n PS'' <= PS' holds" true
    (Xrel.contains ps' (Xrel.inter ps' ps''));
  Alcotest.(check bool) "ours: PS' = PS'" true (Xrel.equal ps' ps');
  Alcotest.(check bool) "ours: PS' <> PS''" false (Xrel.equal ps' ps'');
  (* The update reading: PS'' is PS' plus the tuple (p2, s2), and indeed
     the new database properly contains the old one. *)
  let updated = Storage.Update.insert ps' [ t [ ("P#", s "p2"); ("S#", s "s2") ] ] in
  check_xrel "insert reconstructs PS''" ps'' updated;
  Alcotest.(check bool) "new contains old, for sure" true
    (Xrel.contains updated ps')

(* ------------------------------------------------------------------ *)
(* E4 — Figure 1: query QA under ni and under "unknown".               *)

let emp_v2_with_domains =
  Schema.make "EMP" ~key:[ "E#" ]
    [
      ("E#", Domain.Ints);
      ("NAME", Domain.Strings);
      ("SEX", Domain.Enum [ "M"; "F" ]);
      ("MGR#", Domain.Ints);
      (* Finite so the brute-force tautology check can enumerate it. *)
      ("TEL#", Domain.Int_range (2630000, 2639999));
    ]

let db : Quel.Resolve.db = [ ("EMP", (emp_v2_with_domains, emp_table2)) ]

let qa_verbatim =
  "range of e is EMP\n\
   retrieve (e.NAME, e.E#)\n\
   where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)"

(* The paper reads the two TEL# conditions as complementary; verbatim
   they leave the gap TEL# = 2634000, so the adjusted form below is the
   one whose BROWN tuple defines a genuine tautology. *)
let qa_adjusted =
  "range of e is EMP\n\
   retrieve (e.NAME, e.E#)\n\
   where (e.SEX = \"F\" and e.TEL# >= 2634000) or (e.TEL# < 2634000)"

let test_qa_ni_lower_bound () =
  let result = Quel.Eval.run db (Quel.Parser.parse qa_verbatim) in
  check_xrel "ni interpretation: no tuple qualifies for sure" Xrel.bottom
    result.Quel.Eval.rel;
  let adjusted = Quel.Eval.run db (Quel.Parser.parse qa_adjusted) in
  check_xrel "ni interpretation is insensitive to the tautology" Xrel.bottom
    adjusted.Quel.Eval.rel

let test_qa_unknown_interpretation () =
  let brown = x [ t [ ("NAME", s "BROWN"); ("E#", i 4335) ] ] in
  let result =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Symbolic_first db
      (Quel.Parser.parse qa_adjusted)
  in
  check_xrel "unknown interpretation must include BROWN" brown
    result.Quel.Eval.rel;
  let brute =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force db
      (Quel.Parser.parse qa_adjusted)
  in
  check_xrel "brute force agrees with symbolic" brown brute.Quel.Eval.rel;
  (* Verbatim QA has the TEL# = 2634000 gap: not a tautology, so even the
     unknown interpretation excludes BROWN. *)
  let verbatim =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force db
      (Quel.Parser.parse qa_verbatim)
  in
  check_xrel "verbatim QA is not a tautology (gap at 2634000)" Xrel.bottom
    verbatim.Quel.Eval.rel

(* ------------------------------------------------------------------ *)
(* E5 — Section 6: division, displays (6.6)-(6.8).                     *)

let s_sharp = aset [ "S#" ]

let ps2_ours = Algebra.(project (aset [ "P#" ]) (select_ak (a_ "S#") Predicate.Eq (s "s2") ps))

let test_ps2_projection () =
  (* Ours: the minimal representation of {p1, -} is {p1}. *)
  check_xrel "Ps2 (ours)" (x [ t [ ("P#", s "p1") ] ]) ps2_ours;
  (* Codd TRUE version keeps the null tuple; MAYBE version is empty. *)
  let codd_true =
    Codd.Maybe_algebra.(project (aset [ "P#" ])
        (select_true (Predicate.cmp_const "S#" Predicate.Eq (s "s2")) ps_rel))
  in
  Alcotest.check relation "Codd TRUE Ps2 = {p1, -}"
    (rel [ t [ ("P#", s "p1") ]; Tuple.empty ])
    codd_true;
  let codd_maybe =
    Codd.Maybe_algebra.(project (aset [ "P#" ])
        (select_maybe (Predicate.cmp_const "S#" Predicate.Eq (s "s2")) ps_rel))
  in
  Alcotest.check relation "Codd MAYBE Ps2 = {}" Relation.empty codd_maybe

let codd_ps2 =
  Codd.Maybe_algebra.(project (aset [ "P#" ])
      (select_true (Predicate.cmp_const "S#" Predicate.Eq (s "s2")) ps_rel))

let test_division_answers () =
  (* A1: Codd's TRUE division — no supplier. *)
  Alcotest.check relation "A1 = {}" Relation.empty
    (Codd.Maybe_algebra.divide_true ~y:s_sharp ps_rel codd_ps2);
  (* A2: Codd's MAYBE division — {s1, s2, s3}. *)
  Alcotest.check relation "A2 = {s1, s2, s3}"
    (rel [ t [ ("S#", s "s1") ]; t [ ("S#", s "s2") ]; t [ ("S#", s "s3") ] ])
    (Codd.Maybe_algebra.divide_maybe ~y:s_sharp ps_rel codd_ps2);
  (* A3: our division — {s1, s2}. *)
  let a3 = x [ t [ ("S#", s "s1") ]; t [ ("S#", s "s2") ] ] in
  check_xrel "A3 = {s1, s2}" a3 (Algebra.divide s_sharp ps ps2_ours)

let test_division_characterizations_agree () =
  List.iter
    (fun (label, divisor) ->
      let reference = Algebra.divide s_sharp ps divisor in
      check_xrel (label ^ ": (6.2) agrees") reference
        (Algebra.divide_algebraic s_sharp ps divisor);
      check_xrel (label ^ ": (6.5) agrees") reference
        (Algebra.divide_via_images s_sharp ps divisor))
    [
      ("Ps2", ps2_ours);
      ("{p1,p2}", x [ t [ ("P#", s "p1") ]; t [ ("P#", s "p2") ] ]);
      ("empty divisor", Xrel.bottom);
      ("{p4}", x [ t [ ("P#", s "p4") ] ]);
    ]

let test_q4_difference () =
  (* Q4: parts supplied by s1 but not by s2 — {p2}. *)
  let parts_of supplier =
    Algebra.(project (aset [ "P#" ])
        (select_ak (a_ "S#") Predicate.Eq (s supplier) ps))
  in
  check_xrel "Q4 = {p2}"
    (x [ t [ ("P#", s "p2") ] ])
    (Xrel.diff (parts_of "s1") (parts_of "s2"))

(* ------------------------------------------------------------------ *)
(* E6 — Figure 2: query QB and constraint-dependent tautologies.       *)

let emp_qb_schema =
  Schema.make "EMP"
    [
      ("E#", Domain.Int_range (1000, 3000));
      ("NAME", Domain.Strings);
      ("SEX", Domain.Enum [ "M"; "F" ]);
      ("MGR#", Domain.Int_range (1000, 3000));
    ]

let emp_qb =
  x
    [
      t [ ("E#", i 2235); ("NAME", s "BOSS"); ("SEX", s "M"); ("MGR#", i 1255) ];
      (* CHIEF's own manager is unknown — keeps BOSS's qualification
         uncertain (cond 4 of QB). *)
      t [ ("E#", i 1255); ("NAME", s "CHIEF"); ("SEX", s "M") ];
      t [ ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M"); ("MGR#", i 2235) ];
      (* The employee whose own number is not known, only the manager. *)
      t [ ("NAME", s "DOE"); ("SEX", s "F"); ("MGR#", i 2235) ];
    ]

let qb_db : Quel.Resolve.db = [ ("EMP", (emp_qb_schema, emp_qb)) ]

let qb =
  "range of e is EMP\n\
   range of m is EMP\n\
   retrieve (e.NAME)\n\
   where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# <> e.E# and e.E# <> m.MGR#"

(* The schema's semantic constraints: an employee cannot be his own
   manager, nor the manager of his manager (Appendix). *)
let qb_legal r =
  let get name = Tuple.get r (Attr.make name) in
  let distinct a b =
    match (get a, get b) with
    | Value.Int x, Value.Int y -> x <> y
    | _ -> true
  in
  distinct "e.E#" "e.MGR#" && distinct "e.E#" "m.MGR#"
  && distinct "m.E#" "m.MGR#"

let test_qb_ni () =
  let result = Quel.Eval.run qb_db (Quel.Parser.parse qb) in
  (* For sure: SMITH has male manager BOSS (2235), doesn't manage himself
     or BOSS.  DOE's E# is unknown, so nothing is sure about her. *)
  check_xrel "ni: SMITH only"
    (x [ t [ ("NAME", s "SMITH") ] ])
    result.Quel.Eval.rel

let test_qb_unknown_needs_constraints () =
  (* Without integrity constraints, substituting DOE's E# by 2235 or 1255
     falsifies the inequalities: not a tautology, DOE excluded. *)
  let without =
    Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force qb_db
      (Quel.Parser.parse qb)
  in
  check_xrel "unknown without constraints: SMITH only"
    (x [ t [ ("NAME", s "SMITH") ] ])
    without.Quel.Eval.rel;
  (* With the constraints the forbidden substitutions are illegal:
     DOE's pair (e = DOE, m = BOSS) defines a tautology, and so does
     BOSS's pair (e = BOSS, m = CHIEF) — its only uncertain condition,
     [e.E# <> m.MGR#], is exactly the "cannot manage his manager"
     constraint, which is the Appendix's point about QB. *)
  let with_constraints =
    Quel.Eval.run_unknown ~legal:qb_legal qb_db (Quel.Parser.parse qb)
  in
  check_xrel "unknown with constraints: SMITH, DOE and BOSS"
    (x
       [
         t [ ("NAME", s "SMITH") ];
         t [ ("NAME", s "DOE") ];
         t [ ("NAME", s "BOSS") ];
       ])
    with_constraints.Quel.Eval.rel

(* ------------------------------------------------------------------ *)
(* E9 — Section 7: the lattice structure.                              *)

let tiny_universe =
  [
    (a_ "A", Domain.Enum [ "a1" ]);
    (a_ "B", Domain.Enum [ "b1"; "b2" ]);
  ]

let test_no_complement () =
  (* Section 4's example: R containing (a1,b1) has no complement, but it
     has a pseudo-complement. *)
  let r = x [ t [ ("A", s "a1"); ("B", s "b1") ] ] in
  let r_star = Xrel.pseudo_complement tiny_universe r in
  check_xrel "R* = {(a1, b2)}" (x [ t [ ("A", s "a1"); ("B", s "b2") ] ]) r_star;
  check_xrel "R u R* = TOP" (Xrel.top tiny_universe) (Xrel.union r r_star);
  Alcotest.(check bool)
    "R n R* <> bottom: (a1,-) x-belongs to it" true
    (Xrel.x_mem (t [ ("A", s "a1") ]) (Xrel.inter r r_star))

let test_two_meets_differ () =
  (* Section 7: the Brouwerian meet (x-intersection) differs from the
     Boolean meet (set intersection) of the total sublattice. *)
  let r1 = x [ t [ ("A", s "a1"); ("B", s "b1") ] ] in
  let r2 = x [ t [ ("A", s "a1"); ("B", s "b2") ] ] in
  check_xrel "set intersection is empty" Xrel.bottom
    (Xrel.set_inter_total r1 r2);
  check_xrel "x-intersection is {(a1, -)}"
    (x [ t [ ("A", s "a1") ] ])
    (Xrel.inter r1 r2)

let test_pseudo_complements_are_boolean () =
  (* The pseudo-complements form a Boolean lattice: R** is U-total and
     R*** = R*. *)
  let r = x [ t [ ("A", s "a1") ] ] in
  let star = Xrel.pseudo_complement tiny_universe in
  let r1 = star r in
  let r2 = star r1 in
  let r3 = star r2 in
  check_xrel "R*** = R*" r1 r3;
  Alcotest.(check bool)
    "R** is total over U" true
    (List.for_all
       (fun tu -> Tuple.is_total_on (aset [ "A"; "B" ]) tu)
       (Xrel.to_list r2))

let suite =
  [
    Alcotest.test_case "E1: Table I equiv Table II" `Quick
      test_table1_table2_equivalent;
    Alcotest.test_case "E1: schema evolution" `Quick
      test_schema_evolution_adds_column;
    Alcotest.test_case "S3: more-informative chain" `Quick
      test_more_informative_chain;
    Alcotest.test_case "E3: Codd set comparisons are MAYBE" `Quick
      test_codd_set_comparisons;
    Alcotest.test_case "E3: Codd equality deviation" `Quick
      test_codd_equality_deviation;
    Alcotest.test_case "E3: our set comparisons are definite" `Quick
      test_our_set_comparisons;
    Alcotest.test_case "E4: QA under ni" `Quick test_qa_ni_lower_bound;
    Alcotest.test_case "E4: QA under unknown" `Quick
      test_qa_unknown_interpretation;
    Alcotest.test_case "E5: Ps2 projection" `Quick test_ps2_projection;
    Alcotest.test_case "E5: division answers A1/A2/A3" `Quick
      test_division_answers;
    Alcotest.test_case "E5: division characterizations agree" `Quick
      test_division_characterizations_agree;
    Alcotest.test_case "E5: Q4 difference" `Quick test_q4_difference;
    Alcotest.test_case "E6: QB under ni" `Quick test_qb_ni;
    Alcotest.test_case "E6: QB tautology needs constraints" `Quick
      test_qb_unknown_needs_constraints;
    Alcotest.test_case "E9: no complement, pseudo-complement" `Quick
      test_no_complement;
    Alcotest.test_case "E9: the two meets differ" `Quick test_two_meets_differ;
    Alcotest.test_case "E9: pseudo-complements are Boolean" `Quick
      test_pseudo_complements_are_boolean;
  ]
