(* QCheck generators for tuples, relations and x-relations over a small
   universe {A, B, C} with integer values 0..3 — small on purpose, so
   subsumption, meets and joins actually occur. *)

open Nullrel

let universe_attrs = [ "A"; "B"; "C" ]
let universe : Xrel.universe =
  List.map (fun n -> (Attr.make n, Domain.Int_range (0, 3))) universe_attrs

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (3, map (fun i -> Value.Int i) (int_range 0 3));
      ])

let tuple_gen =
  QCheck.Gen.(
    let bind_attr t name =
      map (fun v -> Tuple.set t (Attr.make name) v) value_gen
    in
    List.fold_left
      (fun acc name -> acc >>= fun t -> bind_attr t name)
      (return Tuple.empty) universe_attrs)

let total_tuple_gen =
  QCheck.Gen.(
    let bind_attr t name =
      map
        (fun i -> Tuple.set t (Attr.make name) (Value.Int i))
        (int_range 0 3)
    in
    List.fold_left
      (fun acc name -> acc >>= fun t -> bind_attr t name)
      (return Tuple.empty) universe_attrs)

let tuple_print = Pp.to_string Tuple.pp

let arbitrary_tuple = QCheck.make ~print:tuple_print tuple_gen
let arbitrary_total_tuple = QCheck.make ~print:tuple_print total_tuple_gen

let relation_gen =
  QCheck.Gen.(map Relation.of_list (list_size (int_range 0 8) tuple_gen))

let total_relation_gen =
  QCheck.Gen.(map Relation.of_list (list_size (int_range 0 8) total_tuple_gen))

let xrel_gen = QCheck.Gen.map Xrel.of_relation relation_gen
let total_xrel_gen = QCheck.Gen.map Xrel.of_relation total_relation_gen

let relation_print = Pp.to_string Relation.pp
let xrel_print = Pp.to_string Xrel.pp

let arbitrary_relation = QCheck.make ~print:relation_print relation_gen
let arbitrary_xrel = QCheck.make ~print:xrel_print xrel_gen
let arbitrary_total_xrel = QCheck.make ~print:xrel_print total_xrel_gen

(* Pairs and triples with independent components. *)
let pair_xrel = QCheck.pair arbitrary_xrel arbitrary_xrel
let triple_xrel = QCheck.triple arbitrary_xrel arbitrary_xrel arbitrary_xrel

let to_alcotest = QCheck_alcotest.to_alcotest
