(* Table III of the paper, checked cell by cell, plus the algebraic laws
   of the three-valued connectives. *)

open Nullrel
open Helpers

let tt = Tvl.True
let ff = Tvl.False
let ni = Tvl.Ni

(* Table III, AND:       TRUE  FALSE  ni *)
let and_table =
  [
    (tt, [ (tt, tt); (ff, ff); (ni, ni) ]);
    (ff, [ (tt, ff); (ff, ff); (ni, ff) ]);
    (ni, [ (tt, ni); (ff, ff); (ni, ni) ]);
  ]

(* Table III, OR. *)
let or_table =
  [
    (tt, [ (tt, tt); (ff, tt); (ni, tt) ]);
    (ff, [ (tt, tt); (ff, ff); (ni, ni) ]);
    (ni, [ (tt, tt); (ff, ni); (ni, ni) ]);
  ]

(* Table III, NOT. *)
let not_table = [ (tt, ff); (ff, tt); (ni, ni) ]

let test_and_table () =
  List.iter
    (fun (a, row) ->
      List.iter
        (fun (b, expected) ->
          check_tvl
            (Printf.sprintf "%s and %s" (Tvl.to_string a) (Tvl.to_string b))
            expected (Tvl.and_ a b))
        row)
    and_table

let test_or_table () =
  List.iter
    (fun (a, row) ->
      List.iter
        (fun (b, expected) ->
          check_tvl
            (Printf.sprintf "%s or %s" (Tvl.to_string a) (Tvl.to_string b))
            expected (Tvl.or_ a b))
        row)
    or_table

let test_not_table () =
  List.iter
    (fun (a, expected) ->
      check_tvl (Printf.sprintf "not %s" (Tvl.to_string a)) expected (Tvl.not_ a))
    not_table

let for_all_pairs f = List.iter (fun a -> List.iter (f a) Tvl.all) Tvl.all

let for_all_triples f =
  List.iter
    (fun a -> List.iter (fun b -> List.iter (f a b) Tvl.all) Tvl.all)
    Tvl.all

let test_commutativity () =
  for_all_pairs (fun a b ->
      check_tvl "and commutes" (Tvl.and_ a b) (Tvl.and_ b a);
      check_tvl "or commutes" (Tvl.or_ a b) (Tvl.or_ b a))

let test_associativity () =
  for_all_triples (fun a b c ->
      check_tvl "and associates"
        (Tvl.and_ (Tvl.and_ a b) c)
        (Tvl.and_ a (Tvl.and_ b c));
      check_tvl "or associates"
        (Tvl.or_ (Tvl.or_ a b) c)
        (Tvl.or_ a (Tvl.or_ b c)))

let test_de_morgan () =
  for_all_pairs (fun a b ->
      check_tvl "~(a and b) = ~a or ~b"
        (Tvl.not_ (Tvl.and_ a b))
        (Tvl.or_ (Tvl.not_ a) (Tvl.not_ b));
      check_tvl "~(a or b) = ~a and ~b"
        (Tvl.not_ (Tvl.or_ a b))
        (Tvl.and_ (Tvl.not_ a) (Tvl.not_ b)))

let test_double_negation () =
  List.iter (fun a -> check_tvl "~~a = a" a (Tvl.not_ (Tvl.not_ a))) Tvl.all

let test_distributivity () =
  for_all_triples (fun a b c ->
      check_tvl "and over or"
        (Tvl.and_ a (Tvl.or_ b c))
        (Tvl.or_ (Tvl.and_ a b) (Tvl.and_ a c)))

let test_no_excluded_middle () =
  (* The law of excluded middle fails at ni — the source of the tautology
     problem under the "unknown" interpretation (Section 5). *)
  check_tvl "ni or ~ni = ni" ni (Tvl.or_ ni (Tvl.not_ ni));
  check_tvl "ni and ~ni = ni" ni (Tvl.and_ ni (Tvl.not_ ni))

let test_identities () =
  List.iter
    (fun a ->
      check_tvl "TRUE is and-identity" a (Tvl.and_ tt a);
      check_tvl "FALSE is or-identity" a (Tvl.or_ ff a);
      check_tvl "FALSE is and-absorbing" ff (Tvl.and_ ff a);
      check_tvl "TRUE is or-absorbing" tt (Tvl.or_ tt a))
    Tvl.all

let test_nary () =
  check_tvl "conj []" tt (Tvl.conj []);
  check_tvl "disj []" ff (Tvl.disj []);
  check_tvl "conj [T;ni;T]" ni (Tvl.conj [ tt; ni; tt ]);
  check_tvl "conj [T;ni;F]" ff (Tvl.conj [ tt; ni; ff ]);
  check_tvl "disj [F;ni]" ni (Tvl.disj [ ff; ni ]);
  check_tvl "disj [F;ni;T]" tt (Tvl.disj [ ff; ni; tt ])

let test_lower_bound_collapse () =
  Alcotest.(check bool) "True collapses to true" true (Tvl.to_bool_lower tt);
  Alcotest.(check bool) "False collapses to false" false (Tvl.to_bool_lower ff);
  Alcotest.(check bool) "ni collapses to false" false (Tvl.to_bool_lower ni)

let test_strings () =
  Alcotest.(check string) "ni prints" "ni" (Tvl.to_string ni);
  Alcotest.(check string) "Codd reading" "MAYBE" (Tvl.to_string_maybe ni);
  Alcotest.(check string) "TRUE stable" "TRUE" (Tvl.to_string_maybe tt)

let suite =
  [
    Alcotest.test_case "Table III: and" `Quick test_and_table;
    Alcotest.test_case "Table III: or" `Quick test_or_table;
    Alcotest.test_case "Table III: not" `Quick test_not_table;
    Alcotest.test_case "commutativity" `Quick test_commutativity;
    Alcotest.test_case "associativity" `Quick test_associativity;
    Alcotest.test_case "De Morgan" `Quick test_de_morgan;
    Alcotest.test_case "double negation" `Quick test_double_negation;
    Alcotest.test_case "distributivity" `Quick test_distributivity;
    Alcotest.test_case "no excluded middle at ni" `Quick
      test_no_excluded_middle;
    Alcotest.test_case "identities and absorption" `Quick test_identities;
    Alcotest.test_case "n-ary conj/disj" `Quick test_nary;
    Alcotest.test_case "lower-bound collapse" `Quick test_lower_bound_collapse;
    Alcotest.test_case "string renderings" `Quick test_strings;
  ]
