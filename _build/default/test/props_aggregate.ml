(* Property tests: the aggregate bounds really bracket every completion
   — validated against exhaustive enumeration on randomly generated
   small relations. *)

open Nullrel
open Qgen

let count = 100

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let schema =
  Schema.make "T"
    (List.map (fun n -> (n, Domain.Int_range (0, 3))) universe_attrs)

(* Small relations with a bounded number of nulls so full enumeration
   stays cheap: at most 4 tuples over {A, B, C} with values 0..3. *)
let small_rel_gen =
  QCheck.Gen.(map Relation.of_list (list_size (int_range 0 4) tuple_gen))

let arbitrary_small = QCheck.make ~print:(Pp.to_string Relation.pp) small_rel_gen

let q = Quel.Parser.parse "range of v is T retrieve (v.A) where v.B >= 2"

let domains _ = Domain.Int_range (0, 3)
let over = Attr.set_of_list universe_attrs

let qualifies row =
  match Tuple.get row (Attr.make "B") with
  | Value.Int n -> n >= 2
  | _ -> false

let completions rel =
  Codd.Subst.relation_substitutions ~domains ~over (Relation.to_list rel)

let classical_agg agg rel_tuples =
  let rows = List.filter qualifies rel_tuples in
  match agg with
  | `Count -> Some (List.length rows)
  | `Sum ->
      Some
        (List.fold_left
           (fun acc row ->
             match Tuple.get row (Attr.make "C") with
             | Value.Int n -> acc + n
             | _ -> acc)
           0 rows)
  | `Min ->
      if rows = [] then None
      else
        Some
          (List.fold_left
             (fun acc row ->
               match Tuple.get row (Attr.make "C") with
               | Value.Int n -> min acc n
               | _ -> acc)
             max_int rows)
  | `Max ->
      if rows = [] then None
      else
        Some
          (List.fold_left
             (fun acc row ->
               match Tuple.get row (Attr.make "C") with
               | Value.Int n -> max acc n
               | _ -> acc)
             min_int rows)

let kind_of = function
  | `Count -> Quel.Aggregate.Count
  | `Sum -> Quel.Aggregate.Sum ("v", "C")
  | `Min -> Quel.Aggregate.Min ("v", "C")
  | `Max -> Quel.Aggregate.Max ("v", "C")

let sandwich agg =
  test
    (Printf.sprintf "bounds are exact for %s"
       (match agg with
       | `Count -> "COUNT"
       | `Sum -> "SUM"
       | `Min -> "MIN"
       | `Max -> "MAX"))
    arbitrary_small
    (fun rel ->
      let db : Quel.Resolve.db = [ ("T", (schema, Xrel.unsafe_of_minimal (Relation.minimize rel))) ] in
      (* bounds are computed on the minimal representation; ground truth
         enumerates the same representation's completions *)
      let minimal = Relation.minimize rel in
      let ground =
        List.filter_map (classical_agg agg) (List.of_seq (completions minimal))
      in
      let b = Quel.Aggregate.bounds db q (kind_of agg) in
      match ground with
      | [] -> b.Quel.Aggregate.may_be_empty || Relation.is_empty minimal
      | _ ->
          let lo = List.fold_left min max_int ground in
          let hi = List.fold_left max min_int ground in
          (* sound: every completion's value is inside the bounds *)
          b.Quel.Aggregate.lower <= lo
          && hi <= b.Quel.Aggregate.upper
          (* tight: both ends attained *)
          && b.Quel.Aggregate.lower = lo
          && b.Quel.Aggregate.upper = hi)

let may_be_empty_correct =
  test "may_be_empty iff some completion empties the answer"
    arbitrary_small (fun rel ->
      let minimal = Relation.minimize rel in
      let db : Quel.Resolve.db =
        [ ("T", (schema, Xrel.unsafe_of_minimal minimal)) ]
      in
      let b = Quel.Aggregate.bounds db q Quel.Aggregate.Count in
      let some_empty =
        Seq.exists
          (fun completion -> not (List.exists qualifies completion))
          (completions minimal)
      in
      b.Quel.Aggregate.may_be_empty = some_empty)

let suite =
  List.map to_alcotest
    [
      sandwich `Count;
      sandwich `Sum;
      sandwich `Min;
      sandwich `Max;
      may_be_empty_correct;
    ]
