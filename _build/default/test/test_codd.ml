(* The Codd baseline: substitution enumeration, TRUE/MAYBE operators,
   tautology detectors. Paper-specific answers live in
   test_paper_examples.ml; this suite covers the machinery itself. *)

open Nullrel
open Helpers

let small_domains a =
  match Attr.name a with
  | "A" -> Domain.Int_range (0, 2)
  | "B" -> Domain.Int_range (0, 1)
  | other -> invalid_arg other

let over_ab = aset [ "A"; "B" ]

(* ------------------------- Subst -------------------------- *)

let test_tuple_substitutions () =
  let partial = t [ ("A", i 1) ] in
  let subs =
    List.of_seq
      (Codd.Subst.tuple_substitutions ~domains:small_domains ~over:over_ab
         partial)
  in
  Alcotest.(check int) "B ranges over 2 values" 2 (List.length subs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "total over A,B" true (Tuple.is_total_on over_ab r);
      Alcotest.check value "A untouched" (i 1) (Tuple.get r (a_ "A")))
    subs;
  (* A total tuple has exactly one substitution: itself. *)
  let total = t [ ("A", i 0); ("B", i 1) ] in
  Alcotest.(check (list tuple)) "total tuple fixed" [ total ]
    (List.of_seq
       (Codd.Subst.tuple_substitutions ~domains:small_domains ~over:over_ab
          total))

let test_relation_substitutions () =
  let tuples = [ t [ ("A", i 1) ]; t [ ("B", i 0) ] ] in
  (* First tuple: B free (2 choices); second: A free (3 choices). *)
  Alcotest.(check int) "2 x 3 combinations" 6
    (Seq.length
       (Codd.Subst.relation_substitutions ~domains:small_domains ~over:over_ab
          tuples));
  Alcotest.(check int) "count matches enumeration" 6
    (Codd.Subst.count_substitutions ~domains:small_domains ~over:over_ab tuples);
  (* The null tuple alone: 3 x 2 completions. *)
  Alcotest.(check int) "null tuple count" 6
    (Codd.Subst.count_substitutions ~domains:small_domains ~over:over_ab
       [ Tuple.empty ])

let test_quantify () =
  (* Encode booleans as tuples so the quantifier sees substitution
     instances. *)
  let of_bools bools =
    List.to_seq
      (List.map (fun b -> [ (if b then t [ ("B", i 1) ] else Tuple.empty) ]) bools)
  in
  let holds = function [ r ] -> not (Tuple.is_null_tuple r) | _ -> false in
  check_tvl "all true" Tvl.True (Codd.Subst.quantify holds (of_bools [ true; true ]));
  check_tvl "all false" Tvl.False
    (Codd.Subst.quantify holds (of_bools [ false; false ]));
  check_tvl "mixed is MAYBE" Tvl.Ni
    (Codd.Subst.quantify holds (of_bools [ true; false ]));
  check_tvl "empty is TRUE" Tvl.True (Codd.Subst.quantify holds (of_bools []))

(* --------------------- Maybe_algebra ---------------------- *)

let test_eq3 () =
  check_tvl "equal values" Tvl.True (Codd.Maybe_algebra.eq3 (i 1) (i 1));
  check_tvl "unequal values" Tvl.False (Codd.Maybe_algebra.eq3 (i 1) (i 2));
  check_tvl "null left is MAYBE" Tvl.Ni (Codd.Maybe_algebra.eq3 Value.Null (i 1));
  check_tvl "null both is MAYBE" Tvl.Ni
    (Codd.Maybe_algebra.eq3 Value.Null Value.Null)

let test_member3 () =
  let r = rel [ t [ ("A", i 1); ("B", i 0) ]; t [ ("A", i 2) ] ] in
  check_tvl "exact member" Tvl.True
    (Codd.Maybe_algebra.member3 ~over:over_ab (t [ ("A", i 1); ("B", i 0) ]) r);
  check_tvl "possible via null" Tvl.Ni
    (Codd.Maybe_algebra.member3 ~over:over_ab (t [ ("A", i 2); ("B", i 1) ]) r);
  check_tvl "ruled out" Tvl.False
    (Codd.Maybe_algebra.member3 ~over:over_ab (t [ ("A", i 0); ("B", i 0) ]) r);
  Alcotest.(check bool) "member_sure" true
    (Codd.Maybe_algebra.member_sure ~over:over_ab
       (t [ ("A", i 1); ("B", i 0) ])
       r);
  Alcotest.(check bool) "member_possible" true
    (Codd.Maybe_algebra.member_possible ~over:over_ab
       (t [ ("A", i 2); ("B", i 1) ])
       r)

let test_select_variants () =
  let r =
    rel [ t [ ("A", i 1); ("B", i 0) ]; t [ ("B", i 1) ]; t [ ("A", i 0) ] ]
  in
  let p = Predicate.cmp_const "A" Predicate.Eq (i 1) in
  Alcotest.check relation "TRUE selection"
    (rel [ t [ ("A", i 1); ("B", i 0) ] ])
    (Codd.Maybe_algebra.select_true p r);
  Alcotest.check relation "MAYBE selection"
    (rel [ t [ ("B", i 1) ] ])
    (Codd.Maybe_algebra.select_maybe p r);
  (* TRUE and MAYBE partitions are disjoint, FALSE is the rest. *)
  Alcotest.(check int) "partition sizes" 3
    (Relation.cardinal (Codd.Maybe_algebra.select_true p r)
    + Relation.cardinal (Codd.Maybe_algebra.select_maybe p r)
    + 1)

let test_product_and_joins () =
  let left = rel [ t [ ("A", i 1) ]; t [ ("A", i 2) ] ] in
  let right = rel [ t [ ("B", i 1) ]; t [ ("B", i 9) ]; t [] ] in
  (* product rides nulls along as values; the null tuple contributes
     bare copies of the left rows *)
  Alcotest.(check int) "product size" 6
    (Relation.cardinal (Codd.Maybe_algebra.product left right));
  let jt =
    Codd.Maybe_algebra.join_true (a_ "A") Predicate.Eq (a_ "B") left right
  in
  Alcotest.check relation "TRUE join keeps the sure match"
    (rel [ t [ ("A", i 1); ("B", i 1) ] ])
    jt;
  let jm =
    Codd.Maybe_algebra.join_maybe (a_ "A") Predicate.Eq (a_ "B") left right
  in
  (* the rows with a null B are the MAYBE matches *)
  Alcotest.check relation "MAYBE join keeps the null-B rows"
    (rel [ t [ ("A", i 1) ]; t [ ("A", i 2) ] ])
    jm;
  (* TRUE and MAYBE joins are disjoint *)
  Alcotest.(check bool) "disjoint" true
    (Relation.is_empty
       (Relation.filter (fun r -> Relation.mem r jt) jm))

let test_project_syntactic () =
  (* Codd projection keeps the null tuple — no minimization. *)
  let r = rel [ t [ ("A", i 1); ("B", i 0) ]; t [ ("B", i 1) ] ] in
  Alcotest.check relation "projection keeps nulls"
    (rel [ t [ ("A", i 1) ]; Tuple.empty ])
    (Codd.Maybe_algebra.project (aset [ "A" ]) r)

let test_contains3_totals () =
  (* On total relations the substitution principle degenerates to plain
     two-valued containment. *)
  let r1 = rel [ t [ ("A", i 1); ("B", i 0) ]; t [ ("A", i 2); ("B", i 1) ] ] in
  let r2 = rel [ t [ ("A", i 1); ("B", i 0) ] ] in
  let e r = Codd.Maybe_algebra.Rel r in
  check_tvl "total containment TRUE" Tvl.True
    (Codd.Maybe_algebra.contains3 ~domains:small_domains ~scope:over_ab (e r1)
       (e r2));
  check_tvl "total containment FALSE" Tvl.False
    (Codd.Maybe_algebra.contains3 ~domains:small_domains ~scope:over_ab (e r2)
       (e r1));
  check_tvl "total equality TRUE" Tvl.True
    (Codd.Maybe_algebra.equal3 ~domains:small_domains ~scope:over_ab (e r2)
       (e r2))

let test_contains3_with_nulls () =
  let r1 = rel [ t [ ("A", i 1) ] ] in
  (* {(1,-)} contains {(1,0)}? Depends on the substitution: MAYBE. *)
  let r2 = rel [ t [ ("A", i 1); ("B", i 0) ] ] in
  let e r = Codd.Maybe_algebra.Rel r in
  check_tvl "null containment MAYBE" Tvl.Ni
    (Codd.Maybe_algebra.contains3 ~domains:small_domains ~scope:over_ab (e r1)
       (e r2))

(* ----------------------- Tautology ------------------------ *)

let taut_p =
  (* B < 1 or B >= 1: a genuine tautology over the integers. *)
  Predicate.(cmp_const "B" Lt (i 1) ||| cmp_const "B" Ge (i 1))

let gap_p =
  (* B < 1 or B > 1: leaves the gap B = 1. *)
  Predicate.(cmp_const "B" Lt (i 1) ||| cmp_const "B" Gt (i 1))

let null_b = t [ ("A", i 0) ]

let test_brute_force () =
  Alcotest.(check bool) "tautology detected" true
    (Codd.Tautology.brute_force ~domains:small_domains taut_p null_b);
  Alcotest.(check bool) "gap detected" false
    (Codd.Tautology.brute_force ~domains:small_domains gap_p null_b);
  (* Constraints can close the gap: forbid B = 1. *)
  Alcotest.(check bool) "constraint closes the gap" true
    (Codd.Tautology.brute_force ~domains:small_domains
       ~legal:(fun r -> not (Value.equal (Tuple.get r (a_ "B")) (i 1)))
       gap_p null_b)

let test_breakpoints () =
  Alcotest.(check (option bool)) "tautology detected" (Some true)
    (Codd.Tautology.breakpoints taut_p null_b);
  Alcotest.(check (option bool)) "gap detected" (Some false)
    (Codd.Tautology.breakpoints gap_p null_b);
  (* No nulls: direct evaluation. *)
  Alcotest.(check (option bool)) "total tuple direct" (Some true)
    (Codd.Tautology.breakpoints taut_p (t [ ("B", i 7) ]));
  (* Two nulls: outside the fragment. *)
  let two_null_p = Predicate.(cmp_attrs "B" Lt "C" ||| cmp_attrs "B" Ge "C") in
  Alcotest.(check (option bool)) "two nulls unsupported" None
    (Codd.Tautology.breakpoints two_null_p Tuple.empty)

let test_breakpoints_appendix_example () =
  (* The Appendix's example: A > 3 and (B < 12 or B > A).
     With A known and 3 < A < 12 the B-null tuple is a tautology;
     with A >= 12 it is not (B = 12 falsifies both disjuncts). *)
  let p =
    Predicate.(
      cmp_const "A" Gt (i 3) &&& (cmp_const "B" Lt (i 12) ||| cmp_attrs "B" Gt "A"))
  in
  Alcotest.(check (option bool)) "A = 5: tautology" (Some true)
    (Codd.Tautology.breakpoints p (t [ ("A", i 5) ]));
  Alcotest.(check (option bool)) "A = 11: tautology" (Some true)
    (Codd.Tautology.breakpoints p (t [ ("A", i 11) ]));
  Alcotest.(check (option bool)) "A = 12: not a tautology" (Some false)
    (Codd.Tautology.breakpoints p (t [ ("A", i 12) ]));
  Alcotest.(check (option bool)) "A = 2: qualification false" (Some false)
    (Codd.Tautology.breakpoints p (t [ ("A", i 2) ]))

let test_exists_detectors () =
  (* Satisfiability duals: the gap predicate IS satisfiable (everywhere
     but B = 1), a contradiction is not. *)
  let contradiction = Predicate.(cmp_const "B" Gt (i 5) &&& cmp_const "B" Lt (i 3)) in
  Alcotest.(check bool) "gap is satisfiable" true
    (Codd.Tautology.brute_force_exists ~domains:small_domains gap_p null_b);
  Alcotest.(check bool) "contradiction is not" false
    (Codd.Tautology.brute_force_exists ~domains:small_domains contradiction
       null_b);
  Alcotest.(check (option bool)) "symbolic: gap satisfiable" (Some true)
    (Codd.Tautology.breakpoints_exists gap_p null_b);
  Alcotest.(check (option bool)) "symbolic: contradiction unsatisfiable"
    (Some false)
    (Codd.Tautology.breakpoints_exists contradiction null_b);
  (* legal constraints restrict the witnesses *)
  Alcotest.(check bool) "constraint can kill the witness" false
    (Codd.Tautology.brute_force_exists ~domains:small_domains
       ~legal:(fun r -> Value.equal (Tuple.get r (a_ "B")) (i 1))
       gap_p null_b)

let test_breakpoints_agrees_with_brute_force () =
  (* Cross-validate the two detectors on a family of predicates over a
     domain wide enough to include all breakpoints. *)
  let wide a =
    match Attr.name a with
    | "A" | "B" -> Domain.Int_range (-20, 20)
    | other -> invalid_arg other
  in
  let predicates =
    Predicate.
      [
        cmp_const "B" Lt (i 5) ||| cmp_const "B" Ge (i 5);
        cmp_const "B" Lt (i 5) ||| cmp_const "B" Gt (i 5);
        cmp_const "B" Le (i 5) &&& cmp_const "B" Ge (i (-5));
        Not (cmp_const "B" Eq (i 0));
        cmp_const "B" Neq (i 0) ||| cmp_const "B" Eq (i 0);
        cmp_const "A" Gt (i 3) &&& (cmp_const "B" Lt (i 12) ||| cmp_attrs "B" Gt "A");
      ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          match Codd.Tautology.breakpoints p r with
          | None -> ()
          | Some symbolic ->
              Alcotest.(check bool)
                (Nullrel.Pp.to_string Predicate.pp p)
                (Codd.Tautology.brute_force ~domains:wide p r)
                symbolic)
        [ t [ ("A", i 5) ]; t [ ("A", i 15) ]; Tuple.empty; t [ ("B", i 3) ] ])
    predicates

let suite =
  [
    Alcotest.test_case "tuple substitutions" `Quick test_tuple_substitutions;
    Alcotest.test_case "relation substitutions" `Quick
      test_relation_substitutions;
    Alcotest.test_case "quantify" `Quick test_quantify;
    Alcotest.test_case "eq3" `Quick test_eq3;
    Alcotest.test_case "member3" `Quick test_member3;
    Alcotest.test_case "TRUE/MAYBE selection" `Quick test_select_variants;
    Alcotest.test_case "product and TRUE/MAYBE joins" `Quick
      test_product_and_joins;
    Alcotest.test_case "syntactic projection" `Quick test_project_syntactic;
    Alcotest.test_case "contains3 on totals" `Quick test_contains3_totals;
    Alcotest.test_case "contains3 with nulls" `Quick test_contains3_with_nulls;
    Alcotest.test_case "brute-force tautology" `Quick test_brute_force;
    Alcotest.test_case "breakpoint tautology" `Quick test_breakpoints;
    Alcotest.test_case "satisfiability duals" `Quick test_exists_detectors;
    Alcotest.test_case "Appendix example" `Quick
      test_breakpoints_appendix_example;
    Alcotest.test_case "detectors agree" `Quick
      test_breakpoints_agrees_with_brute_force;
  ]
