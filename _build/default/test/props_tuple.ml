(* Property tests: the tuple semilattice of Section 3. *)

open Nullrel
open Qgen

let count = 500

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let ge = Tuple.more_informative

let reflexive =
  test "more_informative is reflexive" arbitrary_tuple (fun r -> ge r r)

let antisymmetric =
  test "more_informative is antisymmetric"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      if ge r t && ge t r then Tuple.equal r t else true)

let transitive =
  test "more_informative is transitive"
    (QCheck.triple arbitrary_tuple arbitrary_tuple arbitrary_tuple)
    (fun (r, t, u) -> if ge r t && ge t u then ge r u else true)

let null_tuple_is_bottom =
  test "null tuple is the bottom" arbitrary_tuple (fun r -> ge r Tuple.empty)

let meet_commutative =
  test "meet commutes" (QCheck.pair arbitrary_tuple arbitrary_tuple)
    (fun (r, t) -> Tuple.equal (Tuple.meet r t) (Tuple.meet t r))

let meet_associative =
  test "meet associates"
    (QCheck.triple arbitrary_tuple arbitrary_tuple arbitrary_tuple)
    (fun (r, t, u) ->
      Tuple.equal
        (Tuple.meet (Tuple.meet r t) u)
        (Tuple.meet r (Tuple.meet t u)))

let meet_idempotent =
  test "meet is idempotent" arbitrary_tuple (fun r ->
      Tuple.equal (Tuple.meet r r) r)

let meet_is_glb =
  test "meet is the greatest lower bound"
    (QCheck.triple arbitrary_tuple arbitrary_tuple arbitrary_tuple)
    (fun (r, t, l) ->
      let m = Tuple.meet r t in
      ge r m && ge t m && if ge r l && ge t l then ge m l else true)

let join_commutative =
  test "join commutes" (QCheck.pair arbitrary_tuple arbitrary_tuple)
    (fun (r, t) ->
      match (Tuple.join r t, Tuple.join t r) with
      | Some a, Some b -> Tuple.equal a b
      | None, None -> true
      | _ -> false)

let join_is_lub =
  test "join is the least upper bound"
    (QCheck.triple arbitrary_tuple arbitrary_tuple arbitrary_tuple)
    (fun (r, t, u) ->
      match Tuple.join r t with
      | None -> true
      | Some j ->
          ge j r && ge j t && if ge u r && ge u t then ge u j else true)

let joinable_iff_upper_bound =
  test "joinable iff a common upper bound exists"
    (QCheck.pair arbitrary_tuple arbitrary_total_tuple) (fun (r, u) ->
      (* every tuple below a total tuple is joinable with every other
         tuple below it *)
      let t = Tuple.meet r u in
      Tuple.joinable t u)

let order_via_meet_join =
  test "r >= t iff meet r t = t iff join r t = r"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      let via_meet = Tuple.equal (Tuple.meet r t) t in
      let via_join =
        match Tuple.join r t with Some j -> Tuple.equal j r | None -> false
      in
      let direct = ge r t in
      direct = via_meet && direct = via_join)

let absorption =
  test "absorption: meet r (join r t) = r"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      match Tuple.join r t with
      | None -> true
      | Some j -> Tuple.equal (Tuple.meet r j) r)

let restrict_monotone =
  test "restriction is monotone"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      let x = Attr.set_of_list [ "A"; "B" ] in
      (* force comparability: meet r t <= r *)
      ge (Tuple.restrict r x) (Tuple.restrict (Tuple.meet r t) x))

let restrict_distributes_over_meet =
  test "restriction distributes over meet"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      let x = Attr.set_of_list [ "A"; "C" ] in
      Tuple.equal
        (Tuple.restrict (Tuple.meet r t) x)
        (Tuple.meet (Tuple.restrict r x) (Tuple.restrict t x)))

let canonical_no_nulls =
  test "canonical form stores no nulls" arbitrary_tuple (fun r ->
      Tuple.fold (fun _ v acc -> acc && not (Value.is_null v)) r true)

let meet_in_u_star =
  (* Footnote: if r' ~ r then r' /\ t ~ r /\ t — trivial under canonical
     forms, kept as a regression anchor. *)
  test "meet respects canonical equality"
    (QCheck.pair arbitrary_tuple arbitrary_tuple) (fun (r, t) ->
      let r' = Tuple.set (Tuple.set r (Attr.make "Z") (Value.Int 1)) (Attr.make "Z") Value.Null in
      Tuple.equal (Tuple.meet r' t) (Tuple.meet r t))

let suite =
  List.map to_alcotest
    [
      reflexive;
      antisymmetric;
      transitive;
      null_tuple_is_bottom;
      meet_commutative;
      meet_associative;
      meet_idempotent;
      meet_is_glb;
      join_commutative;
      join_is_lub;
      joinable_iff_upper_bound;
      order_via_meet_join;
      absorption;
      restrict_monotone;
      restrict_distributes_over_meet;
      canonical_no_nulls;
      meet_in_u_star;
    ]
