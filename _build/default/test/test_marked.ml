(* Marked nulls (Section 2's discussion): "Bob Smith's manager is a
   woman" — selection treats the mark as unknown, join treats it as a
   value, and resolving the mark updates every occurrence at once. *)

open Nullrel
open Helpers

let mv v = Marked.Mvalue.const v
let mrel = Alcotest.testable Marked.Mrel.pp (fun a b ->
    Marked.Mrel.cardinal a = Marked.Mrel.cardinal b
    && List.for_all2 Marked.Mtuple.equal (Marked.Mrel.to_list a)
         (Marked.Mrel.to_list b))

(* The unknown manager: one mark, two occurrences. *)
let omega = Marked.Mvalue.mark_of_int 101
let m_omega = Marked.Mvalue.marked omega

let emp =
  Marked.Mrel.of_list
    [
      (* Bob Smith, whose manager is the unknown individual. *)
      Marked.Mtuple.of_strings
        [ ("E#", mv (i 1120)); ("NAME", mv (s "SMITH")); ("SEX", mv (s "M"));
          ("MGR#", m_omega) ];
      (* The unknown individual herself: number unknown, sex known. *)
      Marked.Mtuple.of_strings
        [ ("E#", m_omega); ("SEX", mv (s "F")) ];
      (* An unrelated, fully known employee. *)
      Marked.Mtuple.of_strings
        [ ("E#", mv (i 4335)); ("NAME", mv (s "BROWN")); ("SEX", mv (s "F"));
          ("MGR#", mv (i 2235)) ];
    ]

let test_value_disciplines () =
  let other = Marked.Mvalue.marked (Marked.Mvalue.mark_of_int 102) in
  (* Selection: unknown. *)
  check_tvl "mark vs constant is ni" Tvl.Ni
    (Marked.Mvalue.select_eq3 m_omega (mv (i 2235)));
  check_tvl "same mark is certainly equal" Tvl.True
    (Marked.Mvalue.select_eq3 m_omega m_omega);
  check_tvl "different marks are ni" Tvl.Ni
    (Marked.Mvalue.select_eq3 m_omega other);
  check_tvl "plain null is ni" Tvl.Ni
    (Marked.Mvalue.select_eq3 (mv Value.Null) (mv (i 1)));
  (* Join: a regular nonnull value. *)
  Alcotest.(check bool) "mark joins itself" true
    (Marked.Mvalue.join_matches m_omega m_omega);
  Alcotest.(check bool) "mark does not join a constant" false
    (Marked.Mvalue.join_matches m_omega (mv (i 2235)));
  Alcotest.(check bool) "mark does not join another mark" false
    (Marked.Mvalue.join_matches m_omega other);
  Alcotest.(check bool) "plain null joins nothing" false
    (Marked.Mvalue.join_matches (mv Value.Null) (mv Value.Null))

let test_select_is_unknown () =
  (* Who has employee number 1120? Only Smith — the marked tuple does
     not qualify for any constant. *)
  let result = Marked.Mrel.select_eq (a_ "E#") (mv (i 1120)) emp in
  Alcotest.(check int) "one certain answer" 1 (Marked.Mrel.cardinal result);
  (* Who is the unknown individual? Selecting on the mark itself finds
     her for sure. *)
  let by_mark = Marked.Mrel.select_eq (a_ "E#") m_omega emp in
  Alcotest.(check int) "the marked tuple is certain of itself" 1
    (Marked.Mrel.cardinal by_mark)

let test_join_links_occurrences () =
  (* Join employees to their managers: e.MGR# = m.E#.  Rename the
     manager side first. *)
  let rename_mgr tu =
    Marked.Mtuple.of_list
      (List.map
         (fun (a, v) -> (Attr.make ("M_" ^ Attr.name a), v))
         (Marked.Mtuple.to_list tu))
  in
  let managers = Marked.Mrel.of_list (List.map rename_mgr (Marked.Mrel.to_list emp)) in
  (* Build pairs where MGR# join-matches M_E#. *)
  let pairs =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun m ->
            if
              Marked.Mvalue.join_matches
                (Marked.Mtuple.get e (a_ "MGR#"))
                (Marked.Mtuple.get m (a_ "M_E#"))
            then Marked.Mtuple.join_on Attr.Set.empty e m
            else None)
          (Marked.Mrel.to_list managers))
      (Marked.Mrel.to_list emp)
  in
  (* Smith joins the marked manager (mark matches mark); nobody joins
     Brown's manager 2235 because no tuple carries E# = 2235. *)
  Alcotest.(check int) "exactly Smith finds his manager" 1 (List.length pairs);
  match pairs with
  | [ joined ] ->
      Alcotest.(check string) "the pair is Smith + the woman" "SMITH"
        (match Marked.Mtuple.get joined (a_ "NAME") with
        | Marked.Mvalue.Const (Value.Str n) -> n
        | _ -> "?");
      check_tvl "and her sex is F, for sure" Tvl.True
        (Marked.Mvalue.select_eq3
           (Marked.Mtuple.get joined (a_ "M_SEX"))
           (mv (s "F")))
  | _ -> Alcotest.fail "expected exactly one joined tuple"

let test_to_plain_is_sound () =
  (* Forgetting marks yields the paper's model: both occurrences of the
     mark become ni, and the F-row collapses to (SEX=F). *)
  let plain = Marked.Mrel.to_plain emp in
  Alcotest.(check bool) "Smith's MGR# became ni" true
    (Relation.mem
       (t [ ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M") ])
       plain);
  Alcotest.(check bool) "the woman's row became (SEX=F)" true
    (Relation.mem (t [ ("SEX", s "F") ]) plain)

let test_instantiate_links () =
  (* Learning that the unknown manager is 2235 updates BOTH
     occurrences — exactly what plain ni cannot do. *)
  let valuation m = if m = omega then Some (i 2235) else None in
  let resolved = Marked.Mrel.instantiate valuation emp in
  let plain = Marked.Mrel.to_plain resolved in
  Alcotest.(check bool) "Smith's manager is now 2235" true
    (Relation.mem
       (t [ ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M"); ("MGR#", i 2235) ])
       plain);
  Alcotest.(check bool) "the woman now has E# 2235" true
    (Relation.mem (t [ ("E#", i 2235); ("SEX", s "F") ]) plain);
  (* Unbound marks survive instantiation. *)
  let untouched = Marked.Mrel.instantiate (fun _ -> None) emp in
  Alcotest.check mrel "no-op valuation" emp untouched

let test_marks_listing () =
  Alcotest.(check (list int)) "one mark in play" [ 101 ]
    (List.map
       (fun (m : Marked.Mvalue.mark) -> (m :> int))
       (Marked.Mrel.marks emp))

let test_equijoin_mrel () =
  (* The packaged equijoin over a shared column. *)
  let left =
    Marked.Mrel.of_list
      [ Marked.Mtuple.of_strings [ ("K", m_omega); ("L", mv (s "left")) ] ]
  in
  let right =
    Marked.Mrel.of_list
      [
        Marked.Mtuple.of_strings [ ("K", m_omega); ("R", mv (s "right")) ];
        Marked.Mtuple.of_strings [ ("K", mv (i 7)); ("R", mv (s "other")) ];
      ]
  in
  let joined = Marked.Mrel.equijoin (aset [ "K" ]) left right in
  Alcotest.(check int) "mark-to-mark join only" 1 (Marked.Mrel.cardinal joined)

let suite =
  [
    Alcotest.test_case "value disciplines" `Quick test_value_disciplines;
    Alcotest.test_case "selection treats marks as unknown" `Quick
      test_select_is_unknown;
    Alcotest.test_case "join links occurrences" `Quick
      test_join_links_occurrences;
    Alcotest.test_case "forgetting marks is sound" `Quick
      test_to_plain_is_sound;
    Alcotest.test_case "instantiation updates all occurrences" `Quick
      test_instantiate_links;
    Alcotest.test_case "marks listing" `Quick test_marks_listing;
    Alcotest.test_case "equijoin over marks" `Quick test_equijoin_mrel;
  ]
