(* Property tests: algebraic identities of the generalized operators
   (Sections 5-6). *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let eq = Xrel.equal
let a_set = Attr.set_of_list [ "A" ]
let ab_set = Attr.set_of_list [ "A"; "B" ]
let p_a = Predicate.cmp_const "A" Predicate.Le (Value.Int 1)
let p_ab = Predicate.cmp_attrs "A" Predicate.Lt "B"

(* Rename a relation's columns into a disjoint namespace. *)
let shifted =
  List.map (fun n -> (Attr.make n, Attr.make (n ^ "'"))) universe_attrs

let disjoint x1 = Algebra.rename shifted x1

let select_distributes_over_union =
  test "select distributes over union" pair_xrel (fun (x1, x2) ->
      List.for_all
        (fun p ->
          eq
            (Algebra.select p (Xrel.union x1 x2))
            (Xrel.union (Algebra.select p x1) (Algebra.select p x2)))
        [ p_a; p_ab ])

let select_commutes =
  test "successive selections commute" arbitrary_xrel (fun x1 ->
      eq
        (Algebra.select p_a (Algebra.select p_ab x1))
        (Algebra.select p_ab (Algebra.select p_a x1)))

let select_conj_is_composition =
  test "conjunctive selection = composition" arbitrary_xrel (fun x1 ->
      eq
        (Algebra.select Predicate.(p_a &&& p_ab) x1)
        (Algebra.select p_a (Algebra.select p_ab x1)))

let select_shrinks =
  test "selection yields a contained x-relation" arbitrary_xrel (fun x1 ->
      Xrel.contains x1 (Algebra.select p_a x1))

let select_idempotent =
  test "selection is idempotent" arbitrary_xrel (fun x1 ->
      let s = Algebra.select p_a x1 in
      eq s (Algebra.select p_a s))

let select_ab_specializes =
  test "(5.1) equals the general select" arbitrary_xrel (fun x1 ->
      eq
        (Algebra.select_ab (Attr.make "A") Predicate.Lt (Attr.make "B") x1)
        (Algebra.select p_ab x1))

let project_composition =
  test "project X . project Y = project (X n Y)" arbitrary_xrel (fun x1 ->
      eq
        (Algebra.project a_set (Algebra.project ab_set x1))
        (Algebra.project (Attr.Set.inter a_set ab_set) x1))

let project_monotone =
  test "projection is monotone" pair_xrel (fun (x1, x2) ->
      (* x1 u x2 contains x2 by construction *)
      Xrel.contains
        (Algebra.project ab_set (Xrel.union x1 x2))
        (Algebra.project ab_set x2))

let project_scope_identity =
  test "projection onto the scope is the identity" arbitrary_xrel (fun x1 ->
      eq x1 (Algebra.project (Xrel.scope x1) x1))

let product_commutative =
  test "product commutes (disjoint scopes)" pair_xrel (fun (x1, x2) ->
      let x2' = disjoint x2 in
      eq (Algebra.product x1 x2') (Algebra.product x2' x1))

let product_cardinality =
  test "product cardinality on disjoint scopes" pair_xrel (fun (x1, x2) ->
      let x2' = disjoint x2 in
      Xrel.cardinal (Algebra.product x1 x2')
      = Xrel.cardinal x1 * Xrel.cardinal x2')

let product_distributes_over_union =
  test "product distributes over union" triple_xrel (fun (x1, x2, x3) ->
      let x3' = disjoint x3 in
      eq
        (Algebra.product (Xrel.union x1 x2) x3')
        (Xrel.union (Algebra.product x1 x3') (Algebra.product x2 x3')))

let theta_join_is_select_product =
  test "(5.4): theta-join = select . product" pair_xrel (fun (x1, x2) ->
      let x2' = disjoint x2 in
      eq
        (Algebra.theta_join (Attr.make "A") Predicate.Eq (Attr.make "A'") x1
           x2')
        (Algebra.select
           (Predicate.Cmp_attrs (Attr.make "A", Predicate.Eq, Attr.make "A'"))
           (Algebra.product x1 x2')))

let union_join_contains_operands =
  test "union-join contains both operands" pair_xrel (fun (x1, x2) ->
      let uj = Algebra.union_join a_set x1 x2 in
      Xrel.contains uj x1 && Xrel.contains uj x2)

let union_join_contains_equijoin =
  test "union-join contains the equijoin" pair_xrel (fun (x1, x2) ->
      Xrel.contains (Algebra.union_join a_set x1 x2)
        (Algebra.equijoin a_set x1 x2))

let union_join_commutative =
  test "union-join commutes" pair_xrel (fun (x1, x2) ->
      eq (Algebra.union_join a_set x1 x2) (Algebra.union_join a_set x2 x1))

let equijoin_commutative =
  test "equijoin commutes" pair_xrel (fun (x1, x2) ->
      eq (Algebra.equijoin a_set x1 x2) (Algebra.equijoin a_set x2 x1))

let equijoin_self =
  test "equijoin of x with itself contains x's X-total part"
    arbitrary_xrel (fun x1 ->
      Xrel.contains
        (Algebra.equijoin a_set x1 x1)
        (Xrel.filter (Tuple.is_total_on a_set) x1))

let divisions_agree =
  test "the three division characterizations agree" pair_xrel
    (fun (x1, divisor_src) ->
      (* dividend over A,B,C; divisor over shifted columns to keep the
         scopes disjoint. *)
      (* The divisor shares columns B, C with the dividend; only the
         quotient attributes Y = {A} must be outside its scope. *)
      let divisor =
        Algebra.project (Attr.set_of_list [ "B"; "C" ]) divisor_src
      in
      let d1 = Algebra.divide a_set x1 divisor in
      let d2 = Algebra.divide_algebraic a_set x1 divisor in
      let d3 = Algebra.divide_via_images a_set x1 divisor in
      eq d1 d2 && eq d1 d3)

let divide_antitone_in_divisor =
  test "division is antitone in the divisor" triple_xrel
    (fun (x1, s1, s2) ->
      let s1 = Algebra.project (Attr.set_of_list [ "B" ]) s1 in
      let s2 = Algebra.project (Attr.set_of_list [ "B" ]) s2 in
      let big = Xrel.union s1 s2 in
      Xrel.contains
        (Algebra.divide a_set x1 s1)
        (Algebra.divide a_set x1 big))

let divide_recovers_factor =
  test "(R x S) / S >= R for total operands"
    (QCheck.pair arbitrary_total_xrel arbitrary_total_xrel) (fun (x1, x2) ->
      let r = Algebra.project a_set x1 in
      let s = Algebra.project (Attr.set_of_list [ "B" ]) x2 in
      if Xrel.is_empty s then true
      else
        let product = Algebra.product r s in
        Xrel.contains (Algebra.divide a_set product s) r
        && Xrel.contains r (Algebra.divide a_set product s))

let hash_join_agrees =
  test "hash equijoin = nested-loop equijoin" pair_xrel (fun (x1, x2) ->
      eq
        (Storage.Join.hash_equijoin a_set x1 x2)
        (Algebra.equijoin a_set x1 x2)
      && eq
           (Storage.Join.hash_equijoin ab_set x1 x2)
           (Algebra.equijoin ab_set x1 x2))

let hash_union_join_agrees =
  test "hash union-join = union-join" pair_xrel (fun (x1, x2) ->
      eq
        (Storage.Join.hash_union_join a_set x1 x2)
        (Algebra.union_join a_set x1 x2))

let semijoin_antijoin_partition =
  test "semijoin and antijoin partition the left operand" pair_xrel
    (fun (x1, x2) ->
      let sj = Algebra.semijoin a_set x1 x2 in
      let aj = Algebra.antijoin a_set x1 x2 in
      eq x1 (Xrel.union sj aj)
      && List.for_all (fun r -> not (Xrel.x_mem r aj)) (Xrel.to_list sj))

let semijoin_is_join_projection =
  test "semijoin = left tuples whose join row exists" pair_xrel
    (fun (x1, x2) ->
      let joined = Algebra.equijoin a_set x1 x2 in
      let sj = Algebra.semijoin a_set x1 x2 in
      (* every semijoin tuple extends to some joined tuple *)
      List.for_all
        (fun r -> List.exists (fun j -> Tuple.more_informative j r)
            (Xrel.to_list joined))
        (Xrel.to_list sj))

let range_index_agrees =
  test "range index = select_ak for every comparison" arbitrary_xrel
    (fun x1 ->
      let a = Attr.make "A" in
      let idx = Storage.Range_index.build a x1 in
      List.for_all
        (fun cmp ->
          List.for_all
            (fun k ->
              eq
                (Storage.Range_index.select idx cmp (Value.Int k))
                (Algebra.select_ak a cmp (Value.Int k) x1))
            [ 0; 1; 2; 3 ])
        Predicate.[ Eq; Neq; Lt; Le; Gt; Ge ])

let range_index_range_scan =
  test "range scan = conjunctive selection" arbitrary_xrel (fun x1 ->
      let a = Attr.make "A" in
      let idx = Storage.Range_index.build a x1 in
      eq
        (Storage.Range_index.range idx ~lo:(Value.Int 1) ~hi:(Value.Int 2) ())
        (Algebra.select
           Predicate.(cmp_const "A" Ge (Value.Int 1) &&& cmp_const "A" Le (Value.Int 2))
           x1))

let rename_involutive =
  test "rename there and back is the identity" arbitrary_xrel (fun x1 ->
      let back = List.map (fun (o, n) -> (n, o)) shifted in
      eq x1 (Algebra.rename back (Algebra.rename shifted x1)))

let operators_preserve_minimality =
  test "operators yield minimal representations" pair_xrel (fun (x1, x2) ->
      List.for_all
        (fun xr -> Relation.is_minimal (Xrel.rep xr))
        [
          Algebra.select p_a x1;
          Algebra.product x1 (disjoint x2);
          Algebra.project ab_set x1;
          Algebra.equijoin a_set x1 x2;
          Algebra.union_join a_set x1 x2;
          Algebra.divide a_set x1
            (Algebra.project (Attr.set_of_list [ "B" ]) x2);
        ])

let suite =
  List.map to_alcotest
    [
      select_distributes_over_union;
      select_commutes;
      select_conj_is_composition;
      select_shrinks;
      select_idempotent;
      select_ab_specializes;
      project_composition;
      project_monotone;
      project_scope_identity;
      product_commutative;
      product_cardinality;
      product_distributes_over_union;
      theta_join_is_select_product;
      union_join_contains_operands;
      union_join_contains_equijoin;
      union_join_commutative;
      equijoin_commutative;
      equijoin_self;
      divisions_agree;
      divide_antitone_in_divisor;
      divide_recovers_factor;
      hash_join_agrees;
      hash_union_join_agrees;
      semijoin_antijoin_partition;
      semijoin_is_join_projection;
      range_index_agrees;
      range_index_range_scan;
      rename_involutive;
      operators_preserve_minimality;
    ]
