(* Property tests: the algebraic update semantics of Section 7. *)

open Nullrel
open Qgen

let count = 300

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let p_a = Predicate.cmp_const "A" Predicate.Le (Value.Int 1)

let tuples_arb =
  QCheck.make
    ~print:(fun ts -> Pp.to_string Relation.pp (Relation.of_list ts))
    QCheck.Gen.(list_size (int_range 0 4) tuple_gen)

let insert_monotone =
  test "insertion contains the old database"
    (QCheck.pair arbitrary_xrel tuples_arb) (fun (x1, ts) ->
      Xrel.contains (Storage.Update.insert x1 ts) x1)

let insert_contains_new =
  test "insertion contains the inserted tuples"
    (QCheck.pair arbitrary_xrel tuples_arb) (fun (x1, ts) ->
      Xrel.contains (Storage.Update.insert x1 ts) (Xrel.of_list ts))

let insert_idempotent =
  test "re-inserting is a no-op" (QCheck.pair arbitrary_xrel tuples_arb)
    (fun (x1, ts) ->
      let once = Storage.Update.insert x1 ts in
      Xrel.equal once (Storage.Update.insert once ts))

let delete_shrinks =
  test "deletion is contained in the old database" pair_xrel (fun (x1, x2) ->
      Xrel.contains x1 (Storage.Update.delete x1 x2))

let delete_removes =
  test "deleted tuples are gone" pair_xrel (fun (x1, x2) ->
      let remaining = Storage.Update.delete x1 x2 in
      List.for_all
        (fun r -> not (Xrel.x_mem r x2))
        (Xrel.to_list remaining))

let delete_insert_restores =
  test "delete then union restores containment (Prop 4.6)" pair_xrel
    (fun (base, extra) ->
      let x1 = Xrel.union base extra in
      Xrel.equal (Xrel.union (Storage.Update.delete x1 base) base) x1)

let delete_where_is_diff_of_select =
  test "delete_where = diff with the selection" arbitrary_xrel (fun x1 ->
      Xrel.equal
        (Storage.Update.delete_where p_a x1)
        (Xrel.diff x1 (Algebra.select p_a x1)))

let delete_where_partitions =
  test "select and delete_where partition the relation" arbitrary_xrel
    (fun x1 ->
      Xrel.equal x1
        (Xrel.union (Algebra.select p_a x1) (Storage.Update.delete_where p_a x1)))

let modify_identity =
  test "modification with the identity is a no-op" arbitrary_xrel (fun x1 ->
      Xrel.equal x1 (Storage.Update.modify ~where:p_a ~using:(fun r -> r) x1))

let modify_unmatched_rows_survive =
  test "modification leaves non-matching rows alone" arbitrary_xrel
    (fun x1 ->
      let bump r = Tuple.set r (Attr.make "C") (Value.Int 3) in
      let modified = Storage.Update.modify ~where:p_a ~using:bump x1 in
      Xrel.contains modified (Storage.Update.delete_where p_a x1))

let suite =
  List.map to_alcotest
    [
      insert_monotone;
      insert_contains_new;
      insert_idempotent;
      delete_shrinks;
      delete_removes;
      delete_insert_restores;
      delete_where_is_diff_of_select;
      delete_where_partitions;
      modify_identity;
      modify_unmatched_rows_survive;
    ]
