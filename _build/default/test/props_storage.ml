(* Property tests: the storage substrate — serialization roundtrips and
   index/operator agreement on random data. *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let attrs = List.map Attr.make universe_attrs

let csv_roundtrip =
  test "CSV write . read = id" arbitrary_xrel (fun x1 ->
      let _, back = Storage.Csv.read_string (Storage.Csv.write_string attrs x1) in
      Xrel.equal x1 back)

let binary_roundtrip =
  test "binary encode . decode = id" arbitrary_xrel (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

(* Strings that stress the CSV quoting rules. *)
let tricky_string_gen =
  QCheck.Gen.(
    oneofl
      [ "plain"; "a,b"; "say \"hi\""; "line\nbreak"; "-"; ""; "trailing,";
        "\"quoted\""; "semi;colon"; "sp ace" ])

let tricky_xrel_gen =
  QCheck.Gen.(
    map
      (fun cells ->
        Xrel.of_list
          (List.map
             (fun (a, b) ->
               Tuple.of_strings [ ("A", Value.Str a); ("B", Value.Str b) ])
             cells))
      (list_size (int_range 0 6) (pair tricky_string_gen tricky_string_gen)))

let arbitrary_tricky =
  QCheck.make ~print:(Pp.to_string Xrel.pp) tricky_xrel_gen

let csv_quoting_roundtrip =
  test "CSV roundtrips hostile strings" arbitrary_tricky (fun x1 ->
      let cols = [ Attr.make "A"; Attr.make "B" ] in
      let _, back = Storage.Csv.read_string (Storage.Csv.write_string cols x1) in
      Xrel.equal x1 back)

let binary_tricky_roundtrip =
  test "binary roundtrips hostile strings" arbitrary_tricky (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

let int_extremes_gen =
  QCheck.Gen.(
    map
      (fun ns ->
        Xrel.of_list
          (List.mapi
             (fun k n ->
               Tuple.of_strings [ ("K", Value.Int k); ("N", Value.Int n) ])
             ns))
      (list_size (int_range 0 5)
         (oneofl [ 0; 1; -1; max_int; min_int; 0x7fffffff; -0x80000000 ])))

let binary_int_extremes =
  test "binary roundtrips integer extremes"
    (QCheck.make ~print:(Pp.to_string Xrel.pp) int_extremes_gen) (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

let hash_index_diff_agrees =
  test "indexed diff = naive diff" pair_xrel (fun (x1, x2) ->
      Relation.equal
        (Storage.Hash_index.diff (Xrel.rep x1) (Xrel.rep x2))
        (Xrel.rep (Xrel.diff x1 x2)))

let hash_index_minimize_agrees =
  test "indexed minimize = naive minimize" arbitrary_relation (fun r ->
      Relation.equal (Storage.Hash_index.minimize r) (Relation.minimize r))

let hash_index_x_mem_agrees =
  test "indexed x_mem = naive x_mem"
    (QCheck.pair arbitrary_tuple arbitrary_relation) (fun (t, r) ->
      Storage.Hash_index.x_mem r t = Relation.x_mem t r)

let persist_schema_roundtrip =
  (* schemas drawn from a few shapes *)
  let schema_gen =
    QCheck.Gen.(
      map2
        (fun pick_key cols ->
          let cols =
            List.mapi
              (fun k d -> (Printf.sprintf "C%d" k, d))
              (List.filteri (fun k _ -> k < 4) cols)
          in
          match cols with
          | [] -> Schema.make "R" [ ("C0", Domain.Ints) ]
          | (first, _) :: _ ->
              Schema.make "R" ~key:(if pick_key then [ first ] else []) cols)
        bool
        (list_size (int_range 1 4)
           (oneofl
              [
                Domain.Ints; Domain.Floats; Domain.Strings; Domain.Bools;
                Domain.Int_range (-5, 17); Domain.Enum [ "x"; "y z" ];
              ])))
  in
  test "schema serialization roundtrips"
    (QCheck.make ~print:Storage.Persist.schema_to_string schema_gen)
    (fun schema ->
      let text = Storage.Persist.schema_to_string schema in
      String.equal text
        (Storage.Persist.schema_to_string (Storage.Persist.schema_of_string text)))

let suite =
  List.map to_alcotest
    [
      csv_roundtrip;
      binary_roundtrip;
      csv_quoting_roundtrip;
      binary_tricky_roundtrip;
      binary_int_extremes;
      hash_index_diff_agrees;
      hash_index_minimize_agrees;
      hash_index_x_mem_agrees;
      persist_schema_roundtrip;
    ]
