(* Property tests: the marked-null extension is a sound refinement of
   the plain ni model. *)

open Nullrel
open Qgen

let count = 300

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let mvalue_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Marked.Mvalue.const (Value.Int n)) (int_range 0 2));
        (1, return (Marked.Mvalue.const Value.Null));
        ( 2,
          map
            (fun m -> Marked.Mvalue.marked (Marked.Mvalue.mark_of_int m))
            (int_range 1 3) );
      ])

let mtuple_gen =
  QCheck.Gen.(
    List.fold_left
      (fun acc name ->
        acc >>= fun t ->
        map (fun v -> Marked.Mtuple.set t (Attr.make name) v) mvalue_gen)
      (return Marked.Mtuple.empty) universe_attrs)

let mrel_gen =
  QCheck.Gen.(map Marked.Mrel.of_list (list_size (int_range 0 6) mtuple_gen))

let arbitrary_mrel =
  QCheck.make ~print:(Pp.to_string Marked.Mrel.pp) mrel_gen

let a_attr = Attr.make "A"
let x_set = Attr.set_of_list [ "A" ]

let plain_x m = Xrel.of_relation (Marked.Mrel.to_plain m)

let select_is_sound =
  (* Whatever the plain model can prove, the marked model can too:
     plain selection of the forgotten relation is contained in the
     forgotten marked selection. *)
  test "plain select <= forgotten marked select" arbitrary_mrel (fun m ->
      let v = Marked.Mvalue.const (Value.Int 1) in
      let marked_sel =
        Xrel.of_relation
          (Marked.Mrel.to_plain (Marked.Mrel.select_eq a_attr v m))
      in
      let plain_sel =
        Algebra.select_ak a_attr Predicate.Eq (Value.Int 1) (plain_x m)
      in
      Xrel.contains marked_sel plain_sel)

let instantiation_adds_information =
  test "instantiation only adds information" arbitrary_mrel (fun m ->
      let valuation (mk : Marked.Mvalue.mark) =
        if (mk :> int) mod 2 = 1 then Some (Value.Int 2) else None
      in
      let resolved = Marked.Mrel.instantiate valuation m in
      Xrel.contains
        (Xrel.of_relation (Marked.Mrel.to_plain resolved))
        (plain_x m))

let instantiate_none_is_identity =
  test "empty valuation is the identity" arbitrary_mrel (fun m ->
      let same = Marked.Mrel.instantiate (fun _ -> None) m in
      Marked.Mrel.cardinal same = Marked.Mrel.cardinal m
      && List.for_all2 Marked.Mtuple.equal (Marked.Mrel.to_list same)
           (Marked.Mrel.to_list m))

let join_refines_plain =
  (* Every join the plain model finds (both sides constant on X) is
     also found by the marked join. *)
  test "plain equijoin <= forgotten marked equijoin"
    (QCheck.pair arbitrary_mrel arbitrary_mrel) (fun (m1, m2) ->
      (* avoid colliding non-X attrs: restrict both to A plus disjoint
         extras by projecting m2 onto A only *)
      let m2 = Marked.Mrel.project x_set m2 in
      let marked_join =
        Xrel.of_relation
          (Marked.Mrel.to_plain (Marked.Mrel.equijoin x_set m1 m2))
      in
      let plain_join = Algebra.equijoin x_set (plain_x m1) (plain_x m2) in
      Xrel.contains marked_join plain_join)

let marks_listing_complete =
  test "marks lists every mark in play" arbitrary_mrel (fun m ->
      let listed = List.map (fun (mk : Marked.Mvalue.mark) -> (mk :> int))
          (Marked.Mrel.marks m) in
      List.for_all
        (fun tu ->
          List.for_all
            (fun (_, v) ->
              match v with
              | Marked.Mvalue.Marked mk -> List.mem ((mk :> int)) listed
              | Marked.Mvalue.Const _ -> true)
            (Marked.Mtuple.to_list tu))
        (Marked.Mrel.to_list m))

let select_same_mark_certain =
  test "selection on a mark finds its own tuples" arbitrary_mrel (fun m ->
      (* every tuple whose A is the mark k is kept by select A = mark k *)
      List.for_all
        (fun tu ->
          match Marked.Mtuple.get tu a_attr with
          | Marked.Mvalue.Marked _ as v ->
              Marked.Mrel.mem tu (Marked.Mrel.select_eq a_attr v m)
          | Marked.Mvalue.Const _ -> true)
        (Marked.Mrel.to_list m))

let suite =
  List.map to_alcotest
    [
      select_is_sound;
      instantiation_adds_information;
      instantiate_none_is_identity;
      join_refines_plain;
      marks_listing_complete;
      select_same_mark_certain;
    ]
