(* Attribute domains: finiteness, enumeration, membership. *)

open Nullrel
open Helpers

let test_finiteness () =
  Alcotest.(check bool) "range finite" true (Domain.is_finite (Domain.Int_range (0, 5)));
  Alcotest.(check bool) "enum finite" true (Domain.is_finite (Domain.Enum [ "a" ]));
  Alcotest.(check bool) "bools finite" true (Domain.is_finite Domain.Bools);
  Alcotest.(check bool) "ints infinite" false (Domain.is_finite Domain.Ints);
  Alcotest.(check bool) "floats infinite" false (Domain.is_finite Domain.Floats);
  Alcotest.(check bool) "strings infinite" false (Domain.is_finite Domain.Strings)

let test_cardinal () =
  Alcotest.(check (option int)) "range" (Some 6) (Domain.cardinal (Domain.Int_range (0, 5)));
  Alcotest.(check (option int)) "singleton" (Some 1) (Domain.cardinal (Domain.Int_range (3, 3)));
  Alcotest.(check (option int)) "empty range" (Some 0) (Domain.cardinal (Domain.Int_range (5, 0)));
  Alcotest.(check (option int)) "enum" (Some 2) (Domain.cardinal (Domain.Enum [ "a"; "b" ]));
  Alcotest.(check (option int)) "bools" (Some 2) (Domain.cardinal Domain.Bools);
  Alcotest.(check (option int)) "ints" None (Domain.cardinal Domain.Ints)

let test_members () =
  Alcotest.(check (list value)) "range members" [ i 2; i 3; i 4 ]
    (Domain.members (Domain.Int_range (2, 4)));
  Alcotest.(check (list value)) "enum members" [ s "x"; s "y" ]
    (Domain.members (Domain.Enum [ "x"; "y" ]));
  Alcotest.(check (list value)) "bool members"
    [ Value.Bool false; Value.Bool true ]
    (Domain.members Domain.Bools);
  Alcotest.(check (list value)) "empty range members" []
    (Domain.members (Domain.Int_range (1, 0)));
  Alcotest.check_raises "infinite enumeration" (Domain.Infinite "Ints")
    (fun () -> ignore (Domain.members Domain.Ints))

let test_mem () =
  Alcotest.(check bool) "in range" true (Domain.mem (i 3) (Domain.Int_range (0, 5)));
  Alcotest.(check bool) "below range" false (Domain.mem (i (-1)) (Domain.Int_range (0, 5)));
  Alcotest.(check bool) "above range" false (Domain.mem (i 6) (Domain.Int_range (0, 5)));
  Alcotest.(check bool) "any int in Ints" true (Domain.mem (i 12345) Domain.Ints);
  Alcotest.(check bool) "enum member" true (Domain.mem (s "M") (Domain.Enum [ "M"; "F" ]));
  Alcotest.(check bool) "enum non-member" false (Domain.mem (s "X") (Domain.Enum [ "M"; "F" ]));
  Alcotest.(check bool) "type mismatch" false (Domain.mem (s "3") (Domain.Int_range (0, 5)));
  Alcotest.(check bool) "null in no domain" false (Domain.mem Value.Null Domain.Ints);
  Alcotest.(check bool) "null not in enum" false
    (Domain.mem Value.Null (Domain.Enum [ "-" ]))

let test_members_consistent_with_mem () =
  List.iter
    (fun dom ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "every member is a member" true
            (Domain.mem v dom))
        (Domain.members dom))
    [ Domain.Int_range (-2, 3); Domain.Enum [ "a"; "b"; "c" ]; Domain.Bools ]

let suite =
  [
    Alcotest.test_case "finiteness" `Quick test_finiteness;
    Alcotest.test_case "cardinal" `Quick test_cardinal;
    Alcotest.test_case "members" `Quick test_members;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "members consistent with mem" `Quick
      test_members_consistent_with_mem;
  ]
