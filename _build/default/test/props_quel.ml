(* Property tests: the mini-QUEL front end — printing and re-parsing
   random queries and statements is the identity. *)

open Nullrel
open Qgen

let count = 300

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let var_gen = QCheck.Gen.oneofl [ "e"; "m" ]
let attr_name_gen = QCheck.Gen.oneofl [ "A"; "B"; "C"; "TEL#" ]

let term_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun v a -> Quel.Ast.Attr (v, a)) var_gen attr_name_gen);
        (1, map (fun n -> Quel.Ast.Const (Value.Int n)) (int_range (-5) 20));
        (1, map (fun s -> Quel.Ast.Const (Value.Str s))
             (oneofl [ "F"; "M"; "x y"; "" ]));
      ])

let cmp_gen =
  QCheck.Gen.oneofl Predicate.[ Eq; Neq; Lt; Le; Gt; Ge ]

let rec cond_gen depth =
  QCheck.Gen.(
    if depth = 0 then
      map3 (fun t1 c t2 -> Quel.Ast.Cmp (t1, c, t2)) term_gen cmp_gen term_gen
    else
      frequency
        [
          (2, map3 (fun t1 c t2 -> Quel.Ast.Cmp (t1, c, t2)) term_gen cmp_gen term_gen);
          (1, map2 (fun a b -> Quel.Ast.And (a, b)) (cond_gen (depth - 1)) (cond_gen (depth - 1)));
          (1, map2 (fun a b -> Quel.Ast.Or (a, b)) (cond_gen (depth - 1)) (cond_gen (depth - 1)));
          (1, map (fun a -> Quel.Ast.Not a) (cond_gen (depth - 1)));
        ])

let query_gen =
  QCheck.Gen.(
    let* two_ranges = bool in
    let ranges =
      if two_ranges then [ ("e", "R"); ("m", "S") ] else [ ("e", "R") ]
    in
    let target_var = if two_ranges then var_gen else return "e" in
    let* targets = list_size (int_range 1 3) (pair target_var attr_name_gen) in
    let* where = opt (cond_gen 2) in
    (* restrict conditions to bound variables *)
    let bound v = List.mem_assoc v ranges in
    let rec cond_ok = function
      | Quel.Ast.Cmp (t1, _, t2) ->
          let term_ok = function
            | Quel.Ast.Attr (v, _) -> bound v
            | Quel.Ast.Const _ -> true
          in
          term_ok t1 && term_ok t2
      | Quel.Ast.And (a, b) | Quel.Ast.Or (a, b) -> cond_ok a && cond_ok b
      | Quel.Ast.Not a -> cond_ok a
    in
    let where =
      match where with Some c when cond_ok c -> Some c | _ -> None
    in
    return { Quel.Ast.ranges; targets; where })

let arbitrary_query =
  QCheck.make ~print:(Pp.to_string Quel.Ast.pp) query_gen

let query_pp_roundtrip =
  test "parse . print = id on queries" arbitrary_query (fun q ->
      Quel.Parser.parse (Pp.to_string Quel.Ast.pp q) = q)

let statement_gen =
  QCheck.Gen.(
    let assignment_gen =
      pair attr_name_gen
        (oneof
           [
             map (fun n -> Value.Int n) (int_range (-9) 99);
             map (fun s -> Value.Str s) (oneofl [ "a"; "b c" ]);
           ])
    in
    frequency
      [
        (2, map (fun q -> Quel.Ast.Retrieve q) query_gen);
        ( 1,
          map
            (fun values -> Quel.Ast.Append { rel = "R"; values })
            (list_size (int_range 1 3) assignment_gen) );
        ( 1,
          map
            (fun where -> Quel.Ast.Delete { var = "e"; rel = "R"; where })
            (opt
               (map3
                  (fun a c n ->
                    Quel.Ast.Cmp (Quel.Ast.Attr ("e", a), c, Quel.Ast.Const (Value.Int n)))
                  attr_name_gen cmp_gen (int_range 0 9))) );
        ( 1,
          map2
            (fun values where ->
              Quel.Ast.Replace { var = "e"; rel = "R"; values; where })
            (list_size (int_range 1 2) assignment_gen)
            (opt
               (map3
                  (fun a c n ->
                    Quel.Ast.Cmp (Quel.Ast.Attr ("e", a), c, Quel.Ast.Const (Value.Int n)))
                  attr_name_gen cmp_gen (int_range 0 9))) );
      ])

let arbitrary_statement =
  QCheck.make ~print:(Pp.to_string Quel.Ast.pp_statement) statement_gen

let statement_pp_roundtrip =
  test "parse . print = id on statements" arbitrary_statement (fun st ->
      Quel.Parser.parse_statement (Pp.to_string Quel.Ast.pp_statement st) = st)

(* Evaluation is a function of the x-relation, not the representation:
   evaluating against an inflated representation gives the same answer. *)
let eval_respects_equivalence =
  test "evaluation respects information-wise equivalence"
    (QCheck.pair arbitrary_query pair_xrel) (fun (q, (x1, x2)) ->
      let schema name =
        Schema.make name
          (List.map
             (fun n -> (n, Domain.Int_range (0, 3)))
             (universe_attrs @ [ "TEL#" ]))
      in
      let inflate x_ =
        Xrel.of_list
          (Xrel.to_list x_
          @ List.map
              (fun r -> Tuple.restrict r (Attr.set_of_list [ "A" ]))
              (Xrel.to_list x_))
      in
      let db1 : Quel.Resolve.db =
        [ ("R", (schema "R", x1)); ("S", (schema "S", x2)) ]
      in
      let db2 : Quel.Resolve.db =
        [ ("R", (schema "R", inflate x1)); ("S", (schema "S", inflate x2)) ]
      in
      match
        ( (Quel.Eval.run db1 q).Quel.Eval.rel,
          (Quel.Eval.run db2 q).Quel.Eval.rel )
      with
      | r1, r2 -> Xrel.equal r1 r2
      | exception Value.Type_error _ ->
          (* a random string-vs-int comparison: ill-typed queries raise
             the same way on both databases *)
          true)

let suite =
  List.map to_alcotest
    [ query_pp_roundtrip; statement_pp_roundtrip; eval_respects_equivalence ]
