(* Property tests: the lattice of x-relations (Sections 4 and 7). *)

open Nullrel
open Qgen

let count = 300

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let eq = Xrel.equal
let ( <= ) a b = Xrel.contains b a

let containment_partial_order =
  test "containment is a partial order" pair_xrel (fun (x1, x2) ->
      Xrel.contains x1 x1
      && if Xrel.contains x1 x2 && Xrel.contains x2 x1 then eq x1 x2 else true)

let containment_transitive =
  test "containment is transitive" triple_xrel (fun (x1, x2, x3) ->
      let a = Xrel.inter x1 x2 in
      (* a <= x1 and anything containing x1 contains a *)
      if x1 <= x3 then a <= x3 else true)

let union_commutative =
  test "union commutes" pair_xrel (fun (x1, x2) ->
      eq (Xrel.union x1 x2) (Xrel.union x2 x1))

let union_associative =
  test "union associates" triple_xrel (fun (x1, x2, x3) ->
      eq (Xrel.union (Xrel.union x1 x2) x3) (Xrel.union x1 (Xrel.union x2 x3)))

let union_idempotent =
  test "union is idempotent" arbitrary_xrel (fun x1 -> eq (Xrel.union x1 x1) x1)

let inter_commutative =
  test "x-intersection commutes" pair_xrel (fun (x1, x2) ->
      eq (Xrel.inter x1 x2) (Xrel.inter x2 x1))

let inter_associative =
  test "x-intersection associates" triple_xrel (fun (x1, x2, x3) ->
      eq (Xrel.inter (Xrel.inter x1 x2) x3) (Xrel.inter x1 (Xrel.inter x2 x3)))

let inter_idempotent =
  test "x-intersection is idempotent" arbitrary_xrel (fun x1 ->
      eq (Xrel.inter x1 x1) x1)

let absorption_laws =
  test "absorption laws" pair_xrel (fun (x1, x2) ->
      eq (Xrel.union x1 (Xrel.inter x1 x2)) x1
      && eq (Xrel.inter x1 (Xrel.union x1 x2)) x1)

let union_is_lub =
  test "union is the least upper bound (Prop 4.4)" triple_xrel
    (fun (x1, x2, upper) ->
      let u = Xrel.union x1 x2 in
      x1 <= u && x2 <= u
      && if x1 <= upper && x2 <= upper then u <= upper else true)

let inter_is_glb =
  test "x-intersection is the greatest lower bound (Prop 4.5)" triple_xrel
    (fun (x1, x2, lower) ->
      let g = Xrel.inter x1 x2 in
      g <= x1 && g <= x2
      && if lower <= x1 && lower <= x2 then lower <= g else true)

let distributivity =
  test "distributivity (4.4)/(4.5)" triple_xrel (fun (x1, x2, x3) ->
      eq
        (Xrel.inter x1 (Xrel.union x2 x3))
        (Xrel.union (Xrel.inter x1 x2) (Xrel.inter x1 x3))
      && eq
           (Xrel.union x1 (Xrel.inter x2 x3))
           (Xrel.inter (Xrel.union x1 x2) (Xrel.union x1 x3)))

let substitution_property =
  (* Proposition 4.3: operations are well-defined on equivalence
     classes — adding subsumed junk to a representation changes
     nothing. *)
  let inflate x1 =
    let tuples = Xrel.to_list x1 in
    let junk = List.map (fun r -> Tuple.restrict r (Attr.set_of_list [ "A" ])) tuples in
    Xrel.of_list (tuples @ junk @ [ Tuple.empty ])
  in
  test "substitution property (Prop 4.3)" pair_xrel (fun (x1, x2) ->
      let x1' = inflate x1 in
      eq x1 x1'
      && eq (Xrel.union x1' x2) (Xrel.union x1 x2)
      && eq (Xrel.inter x1' x2) (Xrel.inter x1 x2)
      && eq (Xrel.diff x1' x2) (Xrel.diff x1 x2)
      && eq (Xrel.diff x2 x1') (Xrel.diff x2 x1))

let diff_prop_4_6 =
  test "Prop 4.6: (x1 - x2) u x2 = x1 when x1 >= x2" pair_xrel
    (fun (base, extra) ->
      (* force containment by construction *)
      let x1 = Xrel.union base extra in
      let x2 = base in
      eq (Xrel.union (Xrel.diff x1 x2) x2) x1)

let diff_prop_4_7 =
  test "Prop 4.7: x u x2 >= x1 implies x >= x1 - x2" triple_xrel
    (fun (x1, x2, candidate) ->
      if x1 <= Xrel.union candidate x2 then Xrel.diff x1 x2 <= candidate
      else true)

let diff_self_empty =
  test "x - x = bottom" arbitrary_xrel (fun x1 ->
      Xrel.is_empty (Xrel.diff x1 x1))

let diff_below_minuend =
  test "x1 - x2 <= x1" pair_xrel (fun (x1, x2) -> Xrel.diff x1 x2 <= x1)

let diff_disjoint_from_subtrahend =
  (* Every tuple kept by (4.8) is not an x-element of the subtrahend. *)
  test "x1 - x2 shares no x-element witness with x2" pair_xrel
    (fun (x1, x2) ->
      List.for_all
        (fun r -> not (Xrel.x_mem r x2))
        (Xrel.to_list (Xrel.diff x1 x2)))

let x_mem_monotone =
  test "x-membership is monotone in the relation"
    (QCheck.pair arbitrary_tuple pair_xrel) (fun (r, (x1, x2)) ->
      if Xrel.x_mem r x1 && x1 <= x2 then Xrel.x_mem r x2 else true)

let x_mem_downward =
  test "x-membership is downward closed in the tuple"
    (QCheck.pair (QCheck.pair arbitrary_tuple arbitrary_tuple) arbitrary_xrel)
    (fun ((r, t), x1) ->
      if Xrel.x_mem r x1 && Tuple.more_informative r t then Xrel.x_mem t x1
      else true)

let pseudo_complement_laws =
  test "pseudo-complement laws over the finite universe" arbitrary_xrel
    (fun x1 ->
      let top = Xrel.top universe in
      let star = Xrel.pseudo_complement universe in
      let x1s = star x1 in
      eq (Xrel.union x1 x1s) top
      && x1s <= top
      && (* R* = R*** *)
      eq x1s (star (star x1s)))

let pseudo_complements_boolean =
  test "pseudo-complements form a Boolean sublattice" pair_xrel
    (fun (x1, x2) ->
      let star = Xrel.pseudo_complement universe in
      let a = star x1 and b = star x2 in
      (* closed under union: (a u b) is again a pseudo-complement
         (of a* n b* in the Boolean algebra) — check a u b = (a u b)**. *)
      let u = Xrel.union a b in
      eq u (star (star u)))

let scope_laws =
  (* Section 4, after (4.8): "the scope of a union is the union of the
     scopes of its operands; the scope of an x-intersection is not
     larger than the intersection of the scopes; the scope of a
     difference is not larger than the scope of the minuend." *)
  test "scope laws of the set operations" pair_xrel (fun (x1, x2) ->
      Attr.Set.equal
        (Xrel.scope (Xrel.union x1 x2))
        (Attr.Set.union (Xrel.scope x1) (Xrel.scope x2))
      && Attr.Set.subset
           (Xrel.scope (Xrel.inter x1 x2))
           (Attr.Set.inter (Xrel.scope x1) (Xrel.scope x2))
      && Attr.Set.subset (Xrel.scope (Xrel.diff x1 x2)) (Xrel.scope x1))

let minimal_invariant =
  test "all operations yield minimal representations" triple_xrel
    (fun (x1, x2, x3) ->
      List.for_all
        (fun xr -> Relation.is_minimal (Xrel.rep xr))
        [
          Xrel.union x1 x2;
          Xrel.inter x2 x3;
          Xrel.diff x1 x3;
          Xrel.union (Xrel.inter x1 x2) (Xrel.diff x3 x1);
        ])

let suite =
  List.map to_alcotest
    [
      containment_partial_order;
      containment_transitive;
      union_commutative;
      union_associative;
      union_idempotent;
      inter_commutative;
      inter_associative;
      inter_idempotent;
      absorption_laws;
      union_is_lub;
      inter_is_glb;
      distributivity;
      substitution_property;
      diff_prop_4_6;
      diff_prop_4_7;
      diff_self_empty;
      diff_below_minuend;
      diff_disjoint_from_subtrahend;
      x_mem_monotone;
      x_mem_downward;
      pseudo_complement_laws;
      pseudo_complements_boolean;
      scope_laws;
    ]
