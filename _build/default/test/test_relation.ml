(* Relations as representations: subsumption, equivalence, minimal form,
   scope and x-membership (Section 4). *)

open Nullrel
open Helpers

let ab = t [ ("A", i 1); ("B", i 2) ]
let a1 = t [ ("A", i 1) ]
let a2 = t [ ("A", i 2) ]
let b2 = t [ ("B", i 2) ]

let test_set_basics () =
  let r = rel [ ab; a1; ab ] in
  Alcotest.(check int) "duplicates collapse" 2 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem ab r);
  Alcotest.(check bool) "not mem" false (Relation.mem a2 r);
  Alcotest.(check bool) "empty" true (Relation.is_empty Relation.empty);
  Alcotest.check relation "add/remove roundtrip" r
    (Relation.remove b2 (Relation.add b2 r))

let test_x_mem () =
  let r = rel [ ab ] in
  Alcotest.(check bool) "less informative tuple x-belongs" true
    (Relation.x_mem a1 r);
  Alcotest.(check bool) "projection x-belongs" true (Relation.x_mem b2 r);
  Alcotest.(check bool) "itself x-belongs" true (Relation.x_mem ab r);
  Alcotest.(check bool) "conflicting does not" false (Relation.x_mem a2 r);
  Alcotest.(check bool) "null tuple x-belongs to non-empty" true
    (Relation.x_mem Tuple.empty r);
  Alcotest.(check bool) "nothing x-belongs to empty" false
    (Relation.x_mem Tuple.empty Relation.empty)

let test_subsumes () =
  let big = rel [ ab; a2 ] in
  let small = rel [ a1 ] in
  Alcotest.(check bool) "big subsumes small" true (Relation.subsumes big small);
  Alcotest.(check bool) "small does not subsume big" false
    (Relation.subsumes small big);
  Alcotest.(check bool) "reflexive" true (Relation.subsumes big big);
  Alcotest.(check bool) "anything subsumes empty" true
    (Relation.subsumes Relation.empty Relation.empty);
  (* Null tuples are ignored by Definition 4.1. *)
  Alcotest.(check bool) "null tuples don't matter" true
    (Relation.subsumes Relation.empty (rel [ Tuple.empty ]))

let test_subsumes_transitive () =
  let r1 = rel [ ab ] and r2 = rel [ a1; b2 ] and r3 = rel [ a1 ] in
  Alcotest.(check bool) "r1 subsumes r2" true (Relation.subsumes r1 r2);
  Alcotest.(check bool) "r2 subsumes r3" true (Relation.subsumes r2 r3);
  Alcotest.(check bool) "r1 subsumes r3" true (Relation.subsumes r1 r3)

let test_equiv () =
  (* A representation with redundant tuples is equivalent to its minimal
     form. *)
  let redundant = rel [ ab; a1; b2; Tuple.empty ] in
  let minimal = rel [ ab ] in
  Alcotest.(check bool) "redundant equiv minimal" true
    (Relation.equiv redundant minimal);
  Alcotest.(check bool) "not equiv to something else" false
    (Relation.equiv redundant (rel [ a2 ]))

let test_minimize () =
  let redundant = rel [ ab; a1; b2; Tuple.empty; a2 ] in
  let expected = rel [ ab; a2 ] in
  Alcotest.check relation "minimize drops subsumed and null" expected
    (Relation.minimize redundant);
  Alcotest.(check bool) "result is minimal" true
    (Relation.is_minimal (Relation.minimize redundant));
  Alcotest.check relation "minimize is idempotent"
    (Relation.minimize redundant)
    (Relation.minimize (Relation.minimize redundant));
  Alcotest.check relation "already minimal untouched" expected
    (Relation.minimize expected)

let test_minimize_preserves_equivalence () =
  let redundant = rel [ ab; a1; b2; Tuple.empty; a2 ] in
  Alcotest.(check bool) "minimize equiv original" true
    (Relation.equiv redundant (Relation.minimize redundant))

let test_scope () =
  Alcotest.check attr_set "scope of minimal" (aset [ "A"; "B" ])
    (Relation.scope (rel [ ab ]));
  (* Scope is computed on the minimal representation: the subsumed tuple
     with attribute C... does not exist; a null-extended column does not
     widen the scope. *)
  Alcotest.check attr_set "subsumed tuples don't widen scope"
    (aset [ "A"; "B" ])
    (Relation.scope (rel [ ab; a1 ]));
  Alcotest.check attr_set "empty scope" Attr.Set.empty
    (Relation.scope Relation.empty);
  Alcotest.check attr_set "null tuple contributes nothing" Attr.Set.empty
    (Relation.scope (rel [ Tuple.empty ]))

let test_scope_union_law () =
  (* "The scope of a union is the union of the scopes" (Section 4). *)
  let r1 = rel [ a1 ] and r2 = rel [ b2 ] in
  Alcotest.check attr_set "scope union"
    (Attr.Set.union (Relation.scope r1) (Relation.scope r2))
    (Relation.scope (Relation.union r1 r2))

let suite =
  [
    Alcotest.test_case "set basics" `Quick test_set_basics;
    Alcotest.test_case "x-membership" `Quick test_x_mem;
    Alcotest.test_case "subsumption" `Quick test_subsumes;
    Alcotest.test_case "subsumption is transitive" `Quick
      test_subsumes_transitive;
    Alcotest.test_case "information-wise equivalence" `Quick test_equiv;
    Alcotest.test_case "minimal representation" `Quick test_minimize;
    Alcotest.test_case "minimize preserves equivalence" `Quick
      test_minimize_preserves_equivalence;
    Alcotest.test_case "scope" `Quick test_scope;
    Alcotest.test_case "scope of union" `Quick test_scope_union_law;
  ]
