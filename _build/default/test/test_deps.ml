(* Functional dependencies under nulls: the candidate satisfaction
   notions, their Armstrong audit (the Section 8 open problem), and the
   classical implication machinery. *)

open Nullrel
open Helpers

let fd = Deps.Fd.make

(* A total relation satisfying A -> B but not B -> A. *)
let total_ab =
  rel
    [
      t [ ("A", i 1); ("B", i 10) ];
      t [ ("A", i 2); ("B", i 10) ];
      t [ ("A", i 3); ("B", i 30) ];
    ]

let test_classical_on_totals () =
  Alcotest.(check bool) "A -> B holds" true
    (Deps.Fd.satisfies_classical total_ab (fd [ "A" ] [ "B" ]));
  Alcotest.(check bool) "B -> A fails" false
    (Deps.Fd.satisfies_classical total_ab (fd [ "B" ] [ "A" ]));
  (* on totals, all notions coincide *)
  List.iter
    (fun (name, notion) ->
      Alcotest.(check bool) (name ^ ": A -> B") true
        (notion total_ab (fd [ "A" ] [ "B" ]));
      Alcotest.(check bool) (name ^ ": B -> A") false
        (notion total_ab (fd [ "B" ] [ "A" ])))
    [
      ("total", Deps.Fd.satisfies_total);
      ("no-conflict", Deps.Fd.satisfies_no_conflict);
    ]

(* Nulls separate the notions.  Agreeing A, one null B, one bound B. *)
let null_b = rel [ t [ ("A", i 1); ("B", i 10) ]; t [ ("A", i 1) ] ]

(* Agreeing A, two contradictory bound Bs... via a third attribute the
   pair is null on. *)
let conflict_b =
  rel [ t [ ("A", i 1); ("B", i 10) ]; t [ ("A", i 1); ("B", i 20) ] ]

let test_notions_differ_on_nulls () =
  (* total: the null pair is exempt. *)
  Alcotest.(check bool) "total: exempt pair" true
    (Deps.Fd.satisfies_total null_b (fd [ "A" ] [ "B" ]));
  (* no-conflict: a null is compatible with 10. *)
  Alcotest.(check bool) "no-conflict: compatible" true
    (Deps.Fd.satisfies_no_conflict null_b (fd [ "A" ] [ "B" ]));
  (* classical (null as constant): 10 <> ni, so it fails. *)
  Alcotest.(check bool) "classical treats ni as a value" false
    (Deps.Fd.satisfies_classical null_b (fd [ "A" ] [ "B" ]));
  (* a genuine conflict fails both meaningful notions *)
  Alcotest.(check bool) "total: conflict" false
    (Deps.Fd.satisfies_total conflict_b (fd [ "A" ] [ "B" ]));
  Alcotest.(check bool) "no-conflict: conflict" false
    (Deps.Fd.satisfies_no_conflict conflict_b (fd [ "A" ] [ "B" ]))

let small_domains _ = Domain.Int_range (0, 3)

let test_possible_world_notion () =
  let rel_ok =
    rel [ t [ ("A", i 1); ("B", i 2) ]; t [ ("A", i 1) ] ]
  in
  Alcotest.(check bool) "completion B := 2 works" true
    (Deps.Fd.satisfies_possible ~domains:small_domains rel_ok
       (fd [ "A" ] [ "B" ]));
  let rel_bad =
    rel [ t [ ("A", i 1); ("B", i 2) ]; t [ ("A", i 1); ("B", i 3) ] ]
  in
  Alcotest.(check bool) "no completion fixes a hard conflict" false
    (Deps.Fd.satisfies_possible ~domains:small_domains rel_bad
       (fd [ "A" ] [ "B" ]))

(* The transitivity counterexample of the conclusion's claim: B is null
   everywhere, so A -> B and B -> C hold vacuously while A -> C fails. *)
let transitivity_breaker =
  rel [ t [ ("A", i 1); ("C", i 1) ]; t [ ("A", i 1); ("C", i 2) ] ]

let battery =
  [ total_ab; null_b; conflict_b; transitivity_breaker;
    rel [ t [ ("A", i 1); ("B", i 1); ("C", i 1) ] ]; Relation.empty ]

let universe = aset [ "A"; "B"; "C" ]

let test_armstrong_audit_total () =
  let verdicts = Deps.Armstrong.audit Deps.Fd.satisfies_total battery ~universe in
  (match verdicts with
  | [ refl; aug; trans ] ->
      Alcotest.(check bool) "reflexivity holds" true refl.Deps.Armstrong.holds;
      Alcotest.(check bool) "augmentation holds" true aug.Deps.Armstrong.holds;
      Alcotest.(check bool) "transitivity FAILS" false
        trans.Deps.Armstrong.holds
  | _ -> Alcotest.fail "expected three verdicts");
  (* the counterexample is the one constructed above *)
  match verdicts with
  | [ _; _; { Deps.Armstrong.counterexample = Some (r, _); _ } ] ->
      Alcotest.(check bool) "counterexample found in the battery" true
        (List.exists (Relation.equal r) battery)
  | _ -> Alcotest.fail "expected a transitivity counterexample"

let test_armstrong_audit_no_conflict () =
  match
    Deps.Armstrong.audit Deps.Fd.satisfies_no_conflict battery ~universe
  with
  | [ refl; aug; trans ] ->
      Alcotest.(check bool) "reflexivity holds" true refl.Deps.Armstrong.holds;
      Alcotest.(check bool) "augmentation holds" true aug.Deps.Armstrong.holds;
      Alcotest.(check bool) "transitivity FAILS" false trans.Deps.Armstrong.holds
  | _ -> Alcotest.fail "expected three verdicts"

let test_armstrong_audit_possible_world () =
  (* The weak (possible-world) notion over tiny domains: reflexivity
     holds; transitivity fails on the same vacuous-middle battery. *)
  let tiny _ = Domain.Int_range (0, 1) in
  let notion r fd_ = Deps.Fd.satisfies_possible ~domains:tiny r fd_ in
  let small_battery =
    [
      rel [ t [ ("A", i 0); ("C", i 0) ]; t [ ("A", i 0); ("C", i 1) ] ];
      rel [ t [ ("A", i 0); ("B", i 1) ]; t [ ("A", i 0) ] ];
      Relation.empty;
    ]
  in
  match Deps.Armstrong.audit notion small_battery ~universe with
  | [ refl; _; trans ] ->
      Alcotest.(check bool) "reflexivity holds" true refl.Deps.Armstrong.holds;
      Alcotest.(check bool) "transitivity FAILS" false
        trans.Deps.Armstrong.holds
  | _ -> Alcotest.fail "expected three verdicts"

let test_armstrong_classical_on_totals () =
  (* Restricted to total relations, the classical notion passes the
     whole audit — the baseline sanity check. *)
  let totals =
    [ total_ab; rel [ t [ ("A", i 1); ("B", i 1); ("C", i 1) ] ];
      Relation.empty ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) (v.Deps.Armstrong.axiom ^ " holds on totals") true
        v.Deps.Armstrong.holds)
    (Deps.Armstrong.audit Deps.Fd.satisfies_classical totals ~universe)

let test_closure_and_keys () =
  let fds = [ fd [ "A" ] [ "B" ]; fd [ "B" ] [ "C" ] ] in
  Alcotest.check attr_set "closure of A is ABC" (aset [ "A"; "B"; "C" ])
    (Deps.Fd.closure fds (aset [ "A" ]));
  Alcotest.check attr_set "closure of B is BC" (aset [ "B"; "C" ])
    (Deps.Fd.closure fds (aset [ "B" ]));
  Alcotest.(check bool) "A -> C implied" true
    (Deps.Fd.implies fds (fd [ "A" ] [ "C" ]));
  Alcotest.(check bool) "C -> A not implied" false
    (Deps.Fd.implies fds (fd [ "C" ] [ "A" ]));
  Alcotest.(check bool) "A is a key" true
    (Deps.Fd.is_key fds ~all:universe (aset [ "A" ]));
  Alcotest.(check (list (list string))) "candidate keys"
    [ [ "A" ] ]
    (List.map
       (fun k -> List.map Attr.name (Attr.Set.elements k))
       (Deps.Fd.candidate_keys fds ~all:universe))

let test_candidate_keys_composite () =
  (* AB and C are both keys: A -> C-ish setup. *)
  let fds = [ fd [ "A"; "B" ] [ "C" ]; fd [ "C" ] [ "A"; "B" ] ] in
  Alcotest.(check (list (list string))) "two candidate keys"
    [ [ "A"; "B" ]; [ "C" ] ]
    (List.map
       (fun k -> List.map Attr.name (Attr.Set.elements k))
       (Deps.Fd.candidate_keys fds ~all:universe))

(* ----------------------------- MVDs ------------------------------ *)

let mvd_universe = aset [ "A"; "B"; "C" ]

(* The canonical MVD example: course (A) ->> teacher (B), independent of
   book (C). *)
let courses =
  rel
    [
      t [ ("A", i 1); ("B", i 10); ("C", i 100) ];
      t [ ("A", i 1); ("B", i 20); ("C", i 200) ];
      t [ ("A", i 1); ("B", i 10); ("C", i 200) ];
      t [ ("A", i 1); ("B", i 20); ("C", i 100) ];
    ]

let test_mvd_classical () =
  Alcotest.(check bool) "A ->> B holds on the full product" true
    (Deps.Mvd.satisfies_classical ~universe:mvd_universe courses
       (Deps.Mvd.make [ "A" ] [ "B" ]));
  (* drop one swap witness and it fails *)
  let broken =
    rel
      [
        t [ ("A", i 1); ("B", i 10); ("C", i 100) ];
        t [ ("A", i 1); ("B", i 20); ("C", i 200) ];
      ]
  in
  Alcotest.(check bool) "missing swap detected" false
    (Deps.Mvd.satisfies_classical ~universe:mvd_universe broken
       (Deps.Mvd.make [ "A" ] [ "B" ]))

let test_mvd_complement () =
  let m = Deps.Mvd.make [ "A" ] [ "B" ] in
  let c = Deps.Mvd.complement ~universe:mvd_universe m in
  Alcotest.check attr_set "complement rhs" (aset [ "C" ]) c.Deps.Mvd.rhs;
  (* complementation: satisfaction coincides *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "X ->> Y iff X ->> U-X-Y"
        (Deps.Mvd.satisfies_classical ~universe:mvd_universe r m)
        (Deps.Mvd.satisfies_classical ~universe:mvd_universe r c))
    [
      courses;
      rel [ t [ ("A", i 1); ("B", i 10); ("C", i 100) ] ];
      rel
        [
          t [ ("A", i 1); ("B", i 10); ("C", i 100) ];
          t [ ("A", i 1); ("B", i 20); ("C", i 200) ];
        ];
    ]

let test_fd_implies_mvd () =
  (* On every relation where the FD A -> B holds (classically), the MVD
     A ->> B holds. *)
  List.iter
    (fun r ->
      if Deps.Fd.satisfies_classical r (fd [ "A" ] [ "B" ]) then
        Alcotest.(check bool) "FD implies MVD" true
          (Deps.Mvd.satisfies_classical ~universe:mvd_universe r
             (Deps.Mvd.of_fd (fd [ "A" ] [ "B" ]))))
    [
      total_ab;
      rel
        [
          t [ ("A", i 1); ("B", i 10); ("C", i 100) ];
          t [ ("A", i 1); ("B", i 10); ("C", i 200) ];
          t [ ("A", i 2); ("B", i 30); ("C", i 100) ];
        ];
    ]

let test_mvd_total_notion_exempts_nulls () =
  (* A null-bearing tuple neither requires nor provides swaps. *)
  let with_null = Relation.add (t [ ("A", i 1); ("B", i 30) ]) courses in
  Alcotest.(check bool) "null tuple exempt under the total notion" true
    (Deps.Mvd.satisfies_total ~universe:mvd_universe with_null
       (Deps.Mvd.make [ "A" ] [ "B" ]));
  Alcotest.(check bool) "classical reading (ni as constant) breaks" false
    (Deps.Mvd.satisfies_classical ~universe:mvd_universe with_null
       (Deps.Mvd.make [ "A" ] [ "B" ]))

(* -------------------------- Normalization ------------------------ *)

(* The textbook example: LOT(id, city, lot#, area, price) with
   id -> everything, city+lot# -> id, area -> price. *)
let lot_universe = aset [ "ID"; "CITY"; "LOT"; "AREA"; "PRICE" ]

let lot_fds =
  [
    fd [ "ID" ] [ "CITY"; "LOT"; "AREA"; "PRICE" ];
    fd [ "CITY"; "LOT" ] [ "ID" ];
    fd [ "AREA" ] [ "PRICE" ];
  ]

let test_bcnf_detection () =
  Alcotest.(check bool) "LOT is not BCNF (AREA -> PRICE)" false
    (Deps.Normal.is_bcnf ~fds:lot_fds ~all:lot_universe);
  (match Deps.Normal.bcnf_violation ~fds:lot_fds ~all:lot_universe lot_fds with
  | Some v -> Alcotest.check attr_set "the violator" (aset [ "AREA" ]) v.Deps.Fd.lhs
  | None -> Alcotest.fail "expected a violation");
  Alcotest.(check bool) "a key-only schema is BCNF" true
    (Deps.Normal.is_bcnf
       ~fds:[ fd [ "ID" ] [ "CITY" ] ]
       ~all:(aset [ "ID"; "CITY" ]))

let test_bcnf_decompose () =
  let fragments = Deps.Normal.bcnf_decompose ~fds:lot_fds ~all:lot_universe in
  (* every fragment is BCNF under its projected dependencies *)
  List.iter
    (fun frag ->
      let projected = Deps.Normal.project_fds ~fds:lot_fds ~onto:frag in
      Alcotest.(check bool)
        (Nullrel.Pp.to_string Attr.pp_set frag ^ " is BCNF")
        true
        (Deps.Normal.is_bcnf ~fds:projected ~all:frag))
    fragments;
  (* the fragments cover the universe *)
  Alcotest.check attr_set "attributes preserved" lot_universe
    (List.fold_left Attr.Set.union Attr.Set.empty fragments);
  (* AREA-PRICE was split out *)
  Alcotest.(check bool) "AREA/PRICE fragment exists" true
    (List.exists (Attr.Set.equal (aset [ "AREA"; "PRICE" ])) fragments)

let test_lossless_split () =
  Alcotest.(check bool) "split on AREA -> PRICE is lossless" true
    (Deps.Normal.lossless_split ~fds:lot_fds
       (aset [ "AREA"; "PRICE" ])
       (aset [ "ID"; "CITY"; "LOT"; "AREA" ]));
  Alcotest.(check bool) "an unguided split is lossy" false
    (Deps.Normal.lossless_split ~fds:lot_fds
       (aset [ "CITY"; "PRICE" ])
       (aset [ "ID"; "LOT"; "AREA" ]))

let test_project_fds () =
  let projected =
    Deps.Normal.project_fds ~fds:lot_fds ~onto:(aset [ "AREA"; "PRICE" ])
  in
  Alcotest.(check bool) "AREA -> PRICE survives projection" true
    (Deps.Fd.implies projected (fd [ "AREA" ] [ "PRICE" ]));
  Alcotest.(check bool) "PRICE -> AREA not invented" false
    (Deps.Fd.implies projected (fd [ "PRICE" ] [ "AREA" ]))

let suite =
  [
    Alcotest.test_case "classical FDs on totals" `Quick
      test_classical_on_totals;
    Alcotest.test_case "MVD: classical swap" `Quick test_mvd_classical;
    Alcotest.test_case "MVD: complementation" `Quick test_mvd_complement;
    Alcotest.test_case "MVD: FD implies MVD" `Quick test_fd_implies_mvd;
    Alcotest.test_case "MVD: nulls exempt under total notion" `Quick
      test_mvd_total_notion_exempts_nulls;
    Alcotest.test_case "BCNF detection" `Quick test_bcnf_detection;
    Alcotest.test_case "BCNF decomposition" `Quick test_bcnf_decompose;
    Alcotest.test_case "lossless split" `Quick test_lossless_split;
    Alcotest.test_case "FD projection" `Quick test_project_fds;
    Alcotest.test_case "notions differ on nulls" `Quick
      test_notions_differ_on_nulls;
    Alcotest.test_case "possible-world satisfaction" `Quick
      test_possible_world_notion;
    Alcotest.test_case "Armstrong audit: total notion" `Quick
      test_armstrong_audit_total;
    Alcotest.test_case "Armstrong audit: no-conflict notion" `Quick
      test_armstrong_audit_no_conflict;
    Alcotest.test_case "Armstrong audit: possible-world notion" `Quick
      test_armstrong_audit_possible_world;
    Alcotest.test_case "Armstrong audit: classical on totals" `Quick
      test_armstrong_classical_on_totals;
    Alcotest.test_case "closure, implication, keys" `Quick
      test_closure_and_keys;
    Alcotest.test_case "composite candidate keys" `Quick
      test_candidate_keys_composite;
  ]
