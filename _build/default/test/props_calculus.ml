(* Property tests: the calculus/algebra correspondence the paper's
   efficiency argument rests on (Sections 5, 7) — mini-QUEL evaluation
   of a query coincides with the equivalent algebra expression. *)

open Nullrel
open Qgen

let count = 150

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let schema =
  Schema.make "R"
    (List.map (fun n -> (n, Domain.Int_range (0, 3))) universe_attrs)

let schema_s =
  Schema.make "S"
    (List.map (fun n -> (n, Domain.Int_range (0, 3))) universe_attrs)

let db_for x1 x2 : Quel.Resolve.db =
  [ ("R", (schema, x1)); ("S", (schema_s, x2)) ]

let prefixed v xr =
  Algebra.rename
    (List.map (fun n -> (Attr.make n, Attr.make (v ^ "." ^ n))) universe_attrs)
    xr

let select_query_matches_algebra =
  test "single-range selection = algebraic selection" arbitrary_xrel
    (fun x1 ->
      let result =
        Quel.Eval.run (db_for x1 Xrel.bottom)
          (Quel.Parser.parse
             "range of r is R retrieve (r.A, r.B, r.C) where r.A <= 1")
      in
      let algebraic =
        Algebra.select
          (Predicate.cmp_const "A" Predicate.Le (Value.Int 1))
          x1
      in
      Xrel.equal result.Quel.Eval.rel algebraic)

let projection_query_matches_algebra =
  test "target list = projection" arbitrary_xrel (fun x1 ->
      let result =
        Quel.Eval.run (db_for x1 Xrel.bottom)
          (Quel.Parser.parse "range of r is R retrieve (r.A, r.B)")
      in
      Xrel.equal result.Quel.Eval.rel
        (Algebra.project (Attr.set_of_list [ "A"; "B" ]) x1))

let attr_comparison_matches_algebra =
  test "attribute comparison = select_ab" arbitrary_xrel (fun x1 ->
      let result =
        Quel.Eval.run (db_for x1 Xrel.bottom)
          (Quel.Parser.parse
             "range of r is R retrieve (r.A, r.B, r.C) where r.A < r.B")
      in
      Xrel.equal result.Quel.Eval.rel
        (Algebra.select_ab (Attr.make "A") Predicate.Lt (Attr.make "B") x1))

let two_range_query_matches_theta_join =
  test "two-variable query = theta-join of renamed operands" pair_xrel
    (fun (x1, x2) ->
      let result =
        Quel.Eval.run (db_for x1 x2)
          (Quel.Parser.parse
             "range of r is R range of s is S\n\
              retrieve (r.A, r.B, r.C, s.A, s.B, s.C) where r.A = s.A")
      in
      let algebraic =
        Algebra.theta_join (Attr.make "r.A") Predicate.Eq (Attr.make "s.A")
          (prefixed "r" x1) (prefixed "s" x2)
      in
      (* Output columns are var-qualified on both sides (ambiguous
         names), so the scopes line up directly. *)
      Xrel.equal result.Quel.Eval.rel algebraic)

let true_maybe_false_partition =
  test "TRUE, MAYBE and FALSE rows partition the scan" arbitrary_xrel
    (fun x1 ->
      let db = db_for x1 Xrel.bottom in
      let q =
        Quel.Parser.parse
          "range of r is R retrieve (r.A, r.B, r.C) where r.B >= 2"
      in
      let total = List.length (Quel.Eval.combined_tuples db q) in
      let sure = Xrel.cardinal (Quel.Eval.run db q).Quel.Eval.rel in
      let maybe = Xrel.cardinal (Quel.Eval.run_maybe db q).Quel.Eval.rel in
      let p = Predicate.cmp_const "B" Predicate.Ge (Value.Int 2) in
      let falses =
        List.length
          (List.filter
             (fun r -> Tvl.equal (Predicate.eval p r) Tvl.False)
             (Xrel.to_list x1))
      in
      (* Projection is the identity here (full target list, minimal
         inputs), so cardinalities add up. *)
      sure + maybe + falses = total)

let unknown_extends_ni =
  test "unknown-interpretation answers contain the ni lower bound"
    arbitrary_xrel (fun x1 ->
      let db = db_for x1 Xrel.bottom in
      let q =
        Quel.Parser.parse
          "range of r is R retrieve (r.A, r.B, r.C) where r.B = 1 or r.B <> 1"
      in
      let lower = (Quel.Eval.run db q).Quel.Eval.rel in
      let unknown = (Quel.Eval.run_unknown db q).Quel.Eval.rel in
      Xrel.contains unknown lower)

let suite =
  List.map to_alcotest
    [
      select_query_matches_algebra;
      projection_query_matches_algebra;
      attr_comparison_matches_algebra;
      two_range_query_matches_theta_join;
      true_maybe_false_partition;
      unknown_extends_ni;
    ]
