(* Values with the ni null: equality, container order, three-valued
   comparison, parsing and printing. *)

open Nullrel
open Helpers

let test_null_basics () =
  Alcotest.(check bool) "null is null" true (Value.is_null Value.Null);
  Alcotest.(check bool) "int is not null" false (Value.is_null (i 3));
  Alcotest.check value "null = null structurally" Value.Null Value.null

let test_equal () =
  Alcotest.(check bool) "ints equal" true (Value.equal (i 3) (i 3));
  Alcotest.(check bool) "ints differ" false (Value.equal (i 3) (i 4));
  Alcotest.(check bool) "cross-type not equal" false (Value.equal (i 3) (s "3"));
  Alcotest.(check bool) "strings equal" true (Value.equal (s "x") (s "x"));
  Alcotest.(check bool)
    "bools" true
    (Value.equal (Value.Bool true) (Value.Bool true));
  Alcotest.(check bool)
    "floats" true
    (Value.equal (Value.Float 1.5) (Value.Float 1.5));
  Alcotest.(check bool) "null vs value" false (Value.equal Value.Null (i 0))

let test_container_order () =
  Alcotest.(check bool) "null sorts first" true (Value.compare Value.Null (i 0) < 0);
  Alcotest.(check int) "reflexive" 0 (Value.compare (s "a") (s "a"));
  Alcotest.(check bool) "antisymmetric" true
    (Value.compare (i 1) (i 2) = -Value.compare (i 2) (i 1))

let test_compare3 () =
  Alcotest.(check (option int)) "null left" None (Value.compare3 Value.Null (i 1));
  Alcotest.(check (option int)) "null right" None (Value.compare3 (i 1) Value.Null);
  Alcotest.(check (option int)) "null both" None (Value.compare3 Value.Null Value.Null);
  Alcotest.(check bool) "3 < 5" true
    (match Value.compare3 (i 3) (i 5) with Some c -> c < 0 | None -> false);
  Alcotest.(check bool) "strings ordered" true
    (match Value.compare3 (s "a") (s "b") with Some c -> c < 0 | None -> false);
  Alcotest.check_raises "cross-type comparison raises"
    (Value.Type_error "cannot compare int with string") (fun () ->
      ignore (Value.compare3 (i 1) (s "x")))

let test_printing () =
  Alcotest.(check string) "null prints as dash" "-" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (i 42));
  Alcotest.(check string) "string raw" "abc" (Value.to_string (s "abc"));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true))

let test_of_string_guess () =
  Alcotest.check value "dash is null" Value.Null (Value.of_string_guess "-");
  Alcotest.check value "int" (i 17) (Value.of_string_guess "17");
  Alcotest.check value "negative int" (i (-4)) (Value.of_string_guess "-4");
  Alcotest.check value "float" (Value.Float 2.5) (Value.of_string_guess "2.5");
  Alcotest.check value "bool" (Value.Bool false) (Value.of_string_guess "false");
  Alcotest.check value "fallback string" (s "p1") (Value.of_string_guess "p1")

let test_type_names () =
  Alcotest.(check string) "null" "null" (Value.type_name Value.Null);
  Alcotest.(check string) "int" "int" (Value.type_name (i 0));
  Alcotest.(check string) "float" "float" (Value.type_name (Value.Float 0.));
  Alcotest.(check string) "string" "string" (Value.type_name (s ""));
  Alcotest.(check string) "bool" "bool" (Value.type_name (Value.Bool true))

let suite =
  [
    Alcotest.test_case "null basics" `Quick test_null_basics;
    Alcotest.test_case "structural equality" `Quick test_equal;
    Alcotest.test_case "container order" `Quick test_container_order;
    Alcotest.test_case "three-valued comparison" `Quick test_compare3;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "of_string_guess" `Quick test_of_string_guess;
    Alcotest.test_case "type names" `Quick test_type_names;
  ]
