test/props_storage.ml: Attr Domain List Nullrel Pp Printf QCheck Qgen Relation Schema Storage String Tuple Value Xrel
