test/test_workload.ml: Alcotest Attr Domain Helpers List Nullrel Relation Tuple Value Workload
