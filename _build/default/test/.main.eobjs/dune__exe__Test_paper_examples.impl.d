test/test_paper_examples.ml: Alcotest Algebra Attr Codd Domain Helpers List Nullrel Predicate Quel Relation Schema Storage Tuple Tvl Value Xrel
