test/test_storage.ml: Alcotest Array Attr Domain Filename Fun Helpers List Nullrel Predicate Printf Quel Random Relation Schema Storage String Sys Tuple Value Workload Xrel
