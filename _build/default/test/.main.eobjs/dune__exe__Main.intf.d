test/main.mli:
