test/test_dml.ml: Alcotest Array Dml Filename Fun Helpers List Nullrel Paperdata Printf Quel Random Shell Storage String Sys Value Xrel
