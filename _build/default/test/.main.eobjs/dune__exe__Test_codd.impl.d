test/test_codd.ml: Alcotest Attr Codd Domain Helpers List Nullrel Predicate Relation Seq Tuple Tvl Value
