test/test_view.ml: Alcotest Attr Domain Helpers List Nullrel Plan Quel Schema
