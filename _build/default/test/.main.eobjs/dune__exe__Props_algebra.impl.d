test/props_algebra.ml: Algebra Attr List Nullrel Predicate QCheck Qgen Relation Storage Tuple Value Xrel
