test/test_predicate.ml: Alcotest Helpers List Nullrel Predicate Tuple Tvl Value
