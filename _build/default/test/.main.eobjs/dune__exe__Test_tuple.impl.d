test/test_tuple.ml: Alcotest Attr Helpers List Nullrel Tuple Value
