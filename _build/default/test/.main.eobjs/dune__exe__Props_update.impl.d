test/props_update.ml: Algebra Attr List Nullrel Pp Predicate QCheck Qgen Relation Storage Tuple Value Xrel
