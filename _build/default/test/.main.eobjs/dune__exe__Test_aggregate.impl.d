test/test_aggregate.ml: Alcotest Codd Domain Helpers List Nullrel Quel Schema Tuple Value
