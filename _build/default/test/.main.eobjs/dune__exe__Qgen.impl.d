test/qgen.ml: Attr Domain List Nullrel Pp QCheck QCheck_alcotest Relation Tuple Value Xrel
