test/test_integration.ml: Alcotest Algebra Array Domain Filename Fun Helpers List Nullrel Plan Predicate Printf Quel Random Schema Shell Storage String Sys Tuple Xrel
