test/props_embedding.ml: Algebra Attr List Nullrel Predicate QCheck Qgen Relation Tuple Value Xrel
