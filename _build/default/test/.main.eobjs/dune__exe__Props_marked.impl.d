test/props_marked.ml: Algebra Attr List Marked Nullrel Pp Predicate QCheck Qgen Value Xrel
