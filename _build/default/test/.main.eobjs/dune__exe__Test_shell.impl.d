test/test_shell.ml: Alcotest Array Filename Fun Helpers List Paperdata Printf Random Shell Storage String Sys
