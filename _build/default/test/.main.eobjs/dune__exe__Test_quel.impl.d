test/test_quel.ml: Alcotest Attr Domain Helpers List Nullrel Predicate Quel Schema Tuple Value Xrel
