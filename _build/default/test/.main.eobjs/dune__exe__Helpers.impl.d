test/helpers.ml: Alcotest Attr Nullrel Paperdata Relation Tuple Tvl Value Xrel
