test/test_relation.ml: Alcotest Attr Helpers Nullrel Relation Tuple
