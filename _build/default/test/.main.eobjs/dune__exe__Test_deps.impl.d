test/test_deps.ml: Alcotest Attr Deps Domain Helpers List Nullrel Relation
