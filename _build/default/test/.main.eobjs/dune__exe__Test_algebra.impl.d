test/test_algebra.ml: Alcotest Algebra Helpers List Nullrel Predicate Relation Value Xrel
