test/test_marked.ml: Alcotest Attr Helpers List Marked Nullrel Relation Tvl Value
