test/test_schema.ml: Alcotest Attr Domain Helpers List Nullrel Schema
