test/props_lattice.ml: Attr List Nullrel QCheck Qgen Relation Tuple Xrel
