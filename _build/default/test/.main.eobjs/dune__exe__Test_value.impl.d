test/test_value.ml: Alcotest Helpers Nullrel Value
