test/test_tvl.ml: Alcotest Helpers List Nullrel Printf Tvl
