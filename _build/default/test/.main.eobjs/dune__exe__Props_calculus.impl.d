test/props_calculus.ml: Algebra Attr Domain List Nullrel Predicate QCheck Qgen Quel Schema Tvl Value Xrel
