test/test_xrel.ml: Alcotest Domain Helpers Nullrel Relation Tuple Value Xrel
