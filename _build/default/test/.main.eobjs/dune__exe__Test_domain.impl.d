test/test_domain.ml: Alcotest Domain Helpers List Nullrel Value
