test/props_tuple.ml: Attr List Nullrel QCheck Qgen Tuple Value
