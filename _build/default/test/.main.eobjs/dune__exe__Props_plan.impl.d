test/props_plan.ml: Attr Domain List Nullrel Plan Pp Predicate QCheck Qgen Quel Schema Value Xrel
