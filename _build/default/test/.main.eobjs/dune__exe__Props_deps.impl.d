test/props_deps.ml: Attr Deps Fun List Nullrel Pp QCheck Qgen String Xrel
