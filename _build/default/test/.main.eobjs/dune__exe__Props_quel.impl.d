test/props_quel.ml: Attr Domain List Nullrel Pp Predicate QCheck Qgen Quel Schema Tuple Value Xrel
