test/test_plan.ml: Alcotest Algebra Attr Helpers List Nullrel Option Paperdata Plan Predicate Quel Schema String Xrel
