test/test_pp.ml: Alcotest Helpers List Nullrel Printf String Xrel
