test/props_aggregate.ml: Attr Codd Domain List Nullrel Pp Printf QCheck Qgen Quel Relation Schema Seq Tuple Value Xrel
