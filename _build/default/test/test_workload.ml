(* Workload generators: determinism, parameter effects, PRNG sanity. *)

open Nullrel
open Helpers

let test_prng_deterministic () =
  let g1 = Workload.Prng.create 7 and g2 = Workload.Prng.create 7 in
  let take g = List.init 20 (fun _ -> Workload.Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (take g1) (take g2);
  let g3 = Workload.Prng.create 8 in
  Alcotest.(check bool) "different seed, different stream" true
    (take (Workload.Prng.create 7) <> take g3)

let test_prng_bounds () =
  let g = Workload.Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.int g 10 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 10);
    let f = Workload.Prng.float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.(check bool) "bound must be positive" true
    (try
       ignore (Workload.Prng.int g 0);
       false
     with Invalid_argument _ -> true)

let test_prng_split_independent () =
  let g = Workload.Prng.create 3 in
  let child = Workload.Prng.split g in
  let a = List.init 10 (fun _ -> Workload.Prng.int g 100) in
  let b = List.init 10 (fun _ -> Workload.Prng.int child 100) in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_prng_choose () =
  let g = Workload.Prng.create 4 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "choice from list" true
      (List.mem (Workload.Prng.choose g [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

let spec =
  { Workload.Gen.arity = 3; rows = 200; domain_size = 50; null_density = 0.25 }

let test_gen_shape () =
  let g = Workload.Prng.create 11 in
  let tuples = Workload.Gen.tuples g spec in
  Alcotest.(check int) "row count" 200 (List.length tuples);
  List.iter
    (fun r ->
      Alcotest.(check bool) "attrs within A1..A3" true
        (Attr.Set.subset (Tuple.attrs r) (aset [ "A1"; "A2"; "A3" ]));
      Tuple.fold
        (fun _ v () ->
          match v with
          | Value.Int n ->
              Alcotest.(check bool) "value in domain" true (n >= 0 && n < 50)
          | _ -> Alcotest.fail "non-integer generated")
        r ())
    tuples

let test_gen_deterministic () =
  let r1 = Workload.Gen.relation (Workload.Prng.create 5) spec in
  let r2 = Workload.Gen.relation (Workload.Prng.create 5) spec in
  Alcotest.check relation "same seed, same relation" r1 r2

let test_gen_null_density () =
  let count_nulls spec seed =
    let tuples = Workload.Gen.tuples (Workload.Prng.create seed) spec in
    List.fold_left
      (fun acc r -> acc + (spec.Workload.Gen.arity - Attr.Set.cardinal (Tuple.attrs r)))
      0 tuples
  in
  let dense = count_nulls { spec with null_density = 0.5 } 9 in
  let sparse = count_nulls { spec with null_density = 0.05 } 9 in
  Alcotest.(check bool) "null density is monotone" true (dense > sparse);
  Alcotest.(check int) "zero density means total" 0
    (count_nulls { spec with null_density = 0.0 } 9)

let test_gen_total_relation () =
  let r = Workload.Gen.total_relation (Workload.Prng.create 2) spec in
  Relation.iter
    (fun tu ->
      Alcotest.(check bool) "fully defined" true
        (Tuple.is_total_on (aset [ "A1"; "A2"; "A3" ]) tu))
    r

let test_gen_universe () =
  let u = Workload.Gen.universe spec in
  Alcotest.(check int) "universe arity" 3 (List.length u);
  List.iter
    (fun (_, d) ->
      Alcotest.(check (option int)) "domain size" (Some 50) (Domain.cardinal d))
    u

let suite =
  [
    Alcotest.test_case "prng: determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng: split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng: choose" `Quick test_prng_choose;
    Alcotest.test_case "gen: shape" `Quick test_gen_shape;
    Alcotest.test_case "gen: determinism" `Quick test_gen_deterministic;
    Alcotest.test_case "gen: null density" `Quick test_gen_null_density;
    Alcotest.test_case "gen: total relations" `Quick test_gen_total_relation;
    Alcotest.test_case "gen: universe" `Quick test_gen_universe;
  ]
