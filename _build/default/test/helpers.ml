(* Shared test utilities: Alcotest testables for the library types, and
   re-exports of the paper fixtures from Paperdata.Fixtures. *)

open Nullrel

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let value = Alcotest.testable Value.pp Value.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal
let relation = Alcotest.testable Relation.pp Relation.equal
let xrel = Alcotest.testable Xrel.pp Xrel.equal
let attr_set = Alcotest.testable Attr.pp_set Attr.Set.equal

let i = Paperdata.Fixtures.i
let s = Paperdata.Fixtures.s
let t = Paperdata.Fixtures.t
let rel tuples = Relation.of_list tuples
let x tuples = Xrel.of_list tuples

let check_tvl = Alcotest.check tvl
let check_xrel = Alcotest.check xrel

let emp_schema_v1 = Paperdata.Fixtures.emp_schema_v1
let emp_schema_v2 = Paperdata.Fixtures.emp_schema_v2
let emp_table1 = Paperdata.Fixtures.emp
let emp_table2 = Paperdata.Fixtures.emp
let ps_tuples = Paperdata.Fixtures.ps_tuples
let ps_rel = Paperdata.Fixtures.ps_rel
let ps = Paperdata.Fixtures.ps
let ps'_tuples = Paperdata.Fixtures.ps'_tuples
let ps''_tuples = Paperdata.Fixtures.ps''_tuples
let ps' = Paperdata.Fixtures.ps'
let ps'' = Paperdata.Fixtures.ps''

let a_ name = Attr.make name
let aset names = Attr.set_of_list names
