(* Property tests: the Section 7 embedding theorem.

   Total x-relations are in one-to-one correspondence with Codd
   relations, and the correspondence preserves union, difference,
   containment, Cartesian product, selection and projection (claims
   (1)-(5) of Section 7). The reference implementations below are the
   classical two-valued operators on plain tuple sets. *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let eq = Xrel.equal
let embed (r : Relation.t) = Xrel.of_relation r

(* ---- classical reference operators on total relations ---- *)

let codd_union = Tuple.Set.union
let codd_diff = Tuple.Set.diff
let codd_subset r1 r2 = Tuple.Set.subset r2 r1 (* r1 contains r2 *)

let codd_select p r = Tuple.Set.filter (fun tu -> Predicate.holds p tu) r

let codd_project x r = Tuple.Set.map (fun tu -> Tuple.restrict tu x) r

let codd_product r1 r2 =
  Tuple.Set.fold
    (fun t1 acc ->
      Tuple.Set.fold
        (fun t2 acc ->
          match Tuple.join t1 t2 with
          | Some j -> Tuple.Set.add j acc
          | None -> acc)
        r2 acc)
    r1 Tuple.Set.empty

let pair_total = QCheck.pair arbitrary_total_xrel arbitrary_total_xrel

let as_set x1 = Relation.tuples (Xrel.rep x1)

let embedding_injective =
  test "the embedding is one-to-one" pair_total (fun (x1, x2) ->
      (* distinct total relations map to distinct x-relations *)
      Tuple.Set.equal (as_set x1) (as_set x2) = eq x1 x2)

let total_relations_are_fixed =
  test "total relations are their own minimal representation"
    arbitrary_total_xrel (fun x1 ->
      (* tuples all share the scope, so no subsumption can occur *)
      let r = as_set x1 in
      Tuple.Set.equal r (Relation.tuples (Relation.minimize (Relation.of_tuples r))))

let preserves_union =
  test "claim (1a): union is preserved" pair_total (fun (x1, x2) ->
      eq
        (Xrel.union x1 x2)
        (embed (Relation.of_tuples (codd_union (as_set x1) (as_set x2)))))

let preserves_difference =
  test "claim (1b): difference is preserved" pair_total (fun (x1, x2) ->
      eq
        (Xrel.diff x1 x2)
        (embed (Relation.of_tuples (codd_diff (as_set x1) (as_set x2)))))

let preserves_containment =
  test "claim (1c): containment is preserved" pair_total (fun (x1, x2) ->
      (* check both on the raw sets and through the lattice *)
      let forced = Xrel.union x1 x2 in
      codd_subset (as_set forced) (as_set x2)
      = Xrel.contains forced x2
      && codd_subset (as_set x1) (as_set x2) = Xrel.contains x1 x2)

let preserves_product =
  test "claim (2): Cartesian product is preserved" pair_total
    (fun (x1, x2) ->
      let x2' = Algebra.rename
          (List.map (fun n -> (Attr.make n, Attr.make (n ^ "2"))) universe_attrs)
          x2
      in
      eq
        (Algebra.product x1 x2')
        (embed (Relation.of_tuples (codd_product (as_set x1) (as_set x2')))))

let preserves_selection_const =
  test "claim (3): constant selection is preserved" arbitrary_total_xrel
    (fun x1 ->
      let p = Predicate.cmp_const "A" Predicate.Ge (Value.Int 2) in
      eq
        (Algebra.select p x1)
        (embed (Relation.of_tuples (codd_select p (as_set x1)))))

let preserves_selection_attrs =
  test "claim (4): attribute selection is preserved" arbitrary_total_xrel
    (fun x1 ->
      let p = Predicate.cmp_attrs "A" Predicate.Lt "B" in
      eq
        (Algebra.select p x1)
        (embed (Relation.of_tuples (codd_select p (as_set x1)))))

let preserves_projection =
  test "claim (5): projection is preserved" arbitrary_total_xrel (fun x1 ->
      let x = Attr.set_of_list [ "A"; "B" ] in
      eq
        (Algebra.project x x1)
        (embed (Relation.of_tuples (codd_project x (as_set x1)))))

let preserves_division =
  (* Division is derived from the five (Section 6), so its preservation
     follows; checked directly anyway. *)
  test "division is preserved" pair_total (fun (x1, x2) ->
      let y = Attr.set_of_list [ "A" ] in
      let divisor = Algebra.project (Attr.set_of_list [ "B"; "C" ]) x2 in
      let classic =
        (* y-values whose image covers the divisor *)
        Tuple.Set.filter
          (fun yv ->
            Tuple.Set.for_all
              (fun z ->
                match Tuple.join yv z with
                | Some j -> Tuple.Set.exists (fun r -> Tuple.more_informative r j) (as_set x1)
                | None -> false)
              (as_set divisor))
          (as_set (Algebra.project y x1))
      in
      eq (Algebra.divide y x1 divisor) (embed (Relation.of_tuples classic)))

let suite =
  List.map to_alcotest
    [
      embedding_injective;
      total_relations_are_fixed;
      preserves_union;
      preserves_difference;
      preserves_containment;
      preserves_product;
      preserves_selection_const;
      preserves_selection_attrs;
      preserves_projection;
      preserves_division;
    ]
