(* Property tests: the optimizer never changes the meaning of a plan,
   and compiled queries agree with the interpreter, over random
   expression trees and random databases. *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

(* --- random plans over two base relations R and S -------------- *)

let predicates =
  Predicate.
    [
      cmp_const "A" Le (Value.Int 1);
      cmp_const "B" Eq (Value.Int 2);
      cmp_attrs "A" Lt "B";
      Not (cmp_const "C" Eq (Value.Int 0));
      And (cmp_const "A" Ge (Value.Int 1), cmp_const "B" Le (Value.Int 2));
      Or (cmp_const "A" Eq (Value.Int 0), cmp_attrs "B" Ge "C");
    ]

let attr_subsets =
  List.map Attr.set_of_list
    [ [ "A" ]; [ "B" ]; [ "A"; "B" ]; [ "A"; "C" ]; [ "A"; "B"; "C" ] ]

let plan_gen =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, return (Plan.Expr.Rel "R"));
        (3, return (Plan.Expr.Rel "S"));
        (1, return (Plan.Expr.Const Xrel.bottom));
        (1, map (fun x -> Plan.Expr.Const x) xrel_gen);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      let sub = node (depth - 1) in
      frequency
        [
          (2, leaf);
          ( 3,
            map2
              (fun p e -> Plan.Expr.Select (p, e))
              (oneofl predicates) sub );
          ( 2,
            map2
              (fun x e -> Plan.Expr.Project (x, e))
              (oneofl attr_subsets) sub );
          (2, map2 (fun e1 e2 -> Plan.Expr.Union (e1, e2)) sub sub);
          (2, map2 (fun e1 e2 -> Plan.Expr.Diff (e1, e2)) sub sub);
          (1, map2 (fun e1 e2 -> Plan.Expr.Inter (e1, e2)) sub sub);
          (1, map2 (fun e1 e2 -> Plan.Expr.Product (e1, e2)) sub sub);
          ( 1,
            map3
              (fun x e1 e2 -> Plan.Expr.Equijoin (x, e1, e2))
              (oneofl attr_subsets) sub sub );
          ( 1,
            map3
              (fun y e1 e2 -> Plan.Expr.Divide (y, e1, e2))
              (oneofl attr_subsets) sub sub );
        ]
  in
  node 3

let arbitrary_plan =
  QCheck.make ~print:(Pp.to_string Plan.Expr.pp) plan_gen

let arbitrary_db = QCheck.pair arbitrary_xrel arbitrary_xrel

let env_of (r, s_) name =
  match name with "R" -> Some r | "S" -> Some s_ | _ -> None

let env_scope_of (r, s_) name =
  match name with
  | "R" -> Some (Xrel.scope r)
  | "S" -> Some (Xrel.scope s_)
  | _ -> None

let optimize_preserves_semantics =
  test "optimize preserves plan semantics"
    (QCheck.pair arbitrary_plan arbitrary_db) (fun (plan, db) ->
      let env = env_of db and env_scope = env_scope_of db in
      let optimized = Plan.Rewrite.optimize ~env_scope plan in
      Xrel.equal (Plan.Expr.eval ~env plan) (Plan.Expr.eval ~env optimized))

let optimize_is_idempotent =
  test "optimize is idempotent"
    (QCheck.pair arbitrary_plan arbitrary_db) (fun (plan, db) ->
      let env_scope = env_scope_of db in
      let once = Plan.Rewrite.optimize ~env_scope plan in
      Plan.Expr.equal once (Plan.Rewrite.optimize ~env_scope once))

let scope_bound_is_sound =
  test "scope_bound bounds the evaluated scope"
    (QCheck.pair arbitrary_plan arbitrary_db) (fun (plan, db) ->
      let env = env_of db and env_scope = env_scope_of db in
      Attr.Set.subset
        (Xrel.scope (Plan.Expr.eval ~env plan))
        (Plan.Expr.scope_bound ~env_scope plan))

(* --- compiled queries vs the interpreter ------------------------ *)

let schema_r =
  Schema.make "R"
    (List.map (fun n -> (n, Domain.Int_range (0, 3))) universe_attrs)

let schema_s =
  Schema.make "S"
    (List.map (fun n -> (n, Domain.Int_range (0, 3))) universe_attrs)

let queries =
  [
    "range of r is R retrieve (r.A, r.B)";
    "range of r is R retrieve (r.A) where r.A <= 1";
    "range of r is R retrieve (r.A, r.B, r.C) where r.A < r.B or r.C = 2";
    "range of r is R range of s is S retrieve (r.A, s.B) where r.A = s.A";
    "range of r is R range of s is S retrieve (r.A, s.C) \
     where r.B >= 1 and s.C <= 2";
    "range of r is R range of s is S retrieve (r.A) \
     where r.A = s.A and not s.B = 0";
  ]

let compiled_equals_interpreted =
  test "compiled (optimized) queries = interpreter" arbitrary_db
    (fun (r, s_) ->
      let db : Quel.Resolve.db = [ ("R", (schema_r, r)); ("S", (schema_s, s_)) ] in
      List.for_all
        (fun src ->
          let q = Quel.Parser.parse src in
          let reference = (Quel.Eval.run db q).Quel.Eval.rel in
          Xrel.equal reference (Plan.Compile.run db q).Quel.Eval.rel
          && Xrel.equal reference
               (Plan.Compile.run ~optimize:false db q).Quel.Eval.rel)
        queries)

let suite =
  List.map to_alcotest
    [
      optimize_preserves_semantics;
      optimize_is_idempotent;
      scope_bound_is_sound;
      compiled_equals_interpreted;
    ]
