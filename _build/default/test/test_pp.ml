(* Table rendering: the paper's "-" convention, alignment, footers. *)

open Nullrel
open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_rendering () =
  let out =
    Nullrel.Pp.to_string (Nullrel.Pp.table_of_schema emp_schema_v2) emp_table2
  in
  Alcotest.(check bool) "title present" true (contains out "EMP");
  let lines = String.split_on_char '\n' out in
  let data_lines =
    List.filter
      (fun l -> List.exists (contains l) [ "SMITH"; "BROWN"; "GREEN" ])
      lines
  in
  Alcotest.(check int) "three data rows" 3 (List.length data_lines);
  (* Every data row renders the null TEL# as a trailing dash. *)
  List.iter
    (fun l ->
      let trimmed = String.trim l in
      Alcotest.(check bool) "row ends with the null dash" true
        (String.length trimmed > 0
        && trimmed.[String.length trimmed - 1] = '-'))
    data_lines

let test_alignment () =
  let out =
    Nullrel.Pp.to_string
      (Nullrel.Pp.table_s [ "NAME"; "E#" ])
      (x [ t [ ("NAME", s "A"); ("E#", i 1) ]; t [ ("NAME", s "LONGNAME"); ("E#", i 2) ] ])
  in
  let lines =
    List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' out)
  in
  (* Header, separator and both rows share one width. *)
  match lines with
  | header :: sep :: rows ->
      List.iter
        (fun row ->
          Alcotest.(check int) "consistent row width" (String.length sep)
            (String.length (Printf.sprintf "%-*s" (String.length sep) row)))
        rows;
      Alcotest.(check bool) "separator is dashes" true
        (String.for_all (fun c -> c = '-' || c = ' ') sep);
      Alcotest.(check bool) "header labels present" true
        (contains header "NAME" && contains header "E#")
  | _ -> Alcotest.fail "expected at least header and separator"

let test_tuple_count_line () =
  let out = Nullrel.Pp.to_string (Nullrel.Pp.table_s [ "S#"; "P#" ]) ps in
  Alcotest.(check bool) "count footer" true (contains out "(5 tuples)");
  let one =
    Nullrel.Pp.to_string (Nullrel.Pp.table_s [ "A" ]) (x [ t [ ("A", i 1) ] ])
  in
  Alcotest.(check bool) "singular footer" true (contains one "(1 tuple)")

let test_empty_table () =
  let out = Nullrel.Pp.to_string (Nullrel.Pp.table_s [ "A"; "B" ]) Xrel.bottom in
  Alcotest.(check bool) "header still there" true (contains out "A");
  Alcotest.(check bool) "zero count" true (contains out "(0 tuples)")

let test_custom_title () =
  let out =
    Nullrel.Pp.to_string
      (Nullrel.Pp.table_of_schema ~title:"Table I" emp_schema_v1)
      emp_table1
  in
  Alcotest.(check bool) "custom title wins" true (contains out "Table I")

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "column alignment" `Quick test_alignment;
    Alcotest.test_case "tuple count footer" `Quick test_tuple_count_line;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "custom title" `Quick test_custom_title;
  ]
