(* Property tests: dependency machinery — Armstrong soundness of the
   closure on total relations, closure laws, and the null-aware notions'
   monotonicity. *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let attr_subset_gen =
  QCheck.Gen.(
    map
      (fun picks ->
        Attr.set_of_list
          (List.filteri (fun k _ -> List.nth picks k) universe_attrs
          |> List.map Fun.id))
      (list_repeat (List.length universe_attrs) bool))

let fd_gen =
  QCheck.Gen.(
    map2 (fun lhs rhs -> { Deps.Fd.lhs; rhs }) attr_subset_gen attr_subset_gen)

let fds_gen = QCheck.Gen.(list_size (int_range 0 4) fd_gen)

let pp_fds fds =
  String.concat "; " (List.map (Pp.to_string Deps.Fd.pp) fds)

let arbitrary_fds = QCheck.make ~print:pp_fds fds_gen

let universe_set = Attr.set_of_list universe_attrs

let closure_extensive =
  test "closure is extensive" (QCheck.pair arbitrary_fds (QCheck.make attr_subset_gen))
    (fun (fds, x) -> Attr.Set.subset x (Deps.Fd.closure fds x))

let closure_idempotent =
  test "closure is idempotent"
    (QCheck.pair arbitrary_fds (QCheck.make attr_subset_gen)) (fun (fds, x) ->
      let c = Deps.Fd.closure fds x in
      Attr.Set.equal c (Deps.Fd.closure fds c))

let closure_monotone =
  test "closure is monotone"
    (QCheck.triple arbitrary_fds (QCheck.make attr_subset_gen)
       (QCheck.make attr_subset_gen)) (fun (fds, x, y) ->
      let small = Attr.Set.inter x y in
      Attr.Set.subset (Deps.Fd.closure fds small) (Deps.Fd.closure fds x))

let implication_sound_on_totals =
  (* Armstrong soundness: if the closure derives X -> Y from a set of
     FDs, then every TOTAL relation satisfying the set satisfies
     X -> Y. *)
  test "implication is sound on total relations"
    (QCheck.triple arbitrary_fds (QCheck.make fd_gen) arbitrary_total_xrel)
    (fun (fds, candidate, x1) ->
      let rel = Xrel.rep x1 in
      if
        Deps.Fd.implies fds candidate
        && List.for_all (Deps.Fd.satisfies_classical rel) fds
      then Deps.Fd.satisfies_classical rel candidate
      else true)

let total_notion_weaker_than_classical =
  (* On arbitrary (null-bearing) relations, classical satisfaction
     (null as constant) of both the FD and its attributes being total
     implies the total-pairs notion. *)
  test "classical satisfaction implies total-pairs satisfaction"
    (QCheck.pair (QCheck.make fd_gen) arbitrary_xrel) (fun (fd, x1) ->
      let rel = Xrel.rep x1 in
      if Deps.Fd.satisfies_classical rel fd then
        Deps.Fd.satisfies_total rel fd
      else true)

let no_conflict_stronger_than_total =
  test "no-conflict satisfaction implies total-pairs satisfaction"
    (QCheck.pair (QCheck.make fd_gen) arbitrary_xrel) (fun (fd, x1) ->
      let rel = Xrel.rep x1 in
      if Deps.Fd.satisfies_no_conflict rel fd then
        Deps.Fd.satisfies_total rel fd
      else true)

let notions_coincide_on_totals =
  test "all notions coincide on total relations"
    (QCheck.pair (QCheck.make fd_gen) arbitrary_total_xrel) (fun (fd, x1) ->
      let rel = Xrel.rep x1 in
      let a = Deps.Fd.satisfies_classical rel fd in
      let b = Deps.Fd.satisfies_total rel fd in
      let c = Deps.Fd.satisfies_no_conflict rel fd in
      a = b && b = c)

let keys_are_superkeys =
  test "candidate keys determine the universe" arbitrary_fds (fun fds ->
      List.for_all
        (fun k -> Deps.Fd.is_key fds ~all:universe_set k)
        (Deps.Fd.candidate_keys fds ~all:universe_set))

let decomposition_covers_and_normalizes =
  test "BCNF decomposition covers the universe with BCNF fragments"
    arbitrary_fds (fun fds ->
      let fragments = Deps.Normal.bcnf_decompose ~fds ~all:universe_set in
      Attr.Set.equal universe_set
        (List.fold_left Attr.Set.union Attr.Set.empty fragments)
      && List.for_all
           (fun frag ->
             let projected = Deps.Normal.project_fds ~fds ~onto:frag in
             Deps.Normal.is_bcnf ~fds:projected ~all:frag)
           fragments)

let suite =
  List.map to_alcotest
    [
      closure_extensive;
      closure_idempotent;
      closure_monotone;
      implication_sound_on_totals;
      total_notion_weaker_than_classical;
      no_conflict_stronger_than_total;
      notions_coincide_on_totals;
      keys_are_superkeys;
      decomposition_covers_and_normalizes;
    ]
