(* A living inventory database: QUEL updates (Section 7's algebraic
   semantics), views, and aggregate bounds over the incomplete state.

   Run with: dune exec examples/inventory_dml.exe *)

open Nullrel

let printf = Format.printf
let i n = Value.Int n
let s x = Value.Str x
let t = Tuple.of_strings

let schema =
  Schema.make "STOCK" ~key:[ "SKU" ]
    [
      ("SKU", Domain.Strings);
      ("BIN", Domain.Enum [ "b1"; "b2"; "b3" ]);
      ("QTY", Domain.Int_range (0, 50));
    ]

let initial =
  Xrel.of_list
    [
      t [ ("SKU", s "bolt"); ("BIN", s "b1"); ("QTY", i 40) ];
      t [ ("SKU", s "nut"); ("BIN", s "b2"); ("QTY", i 15) ];
      (* counted, but the bin was not recorded *)
      t [ ("SKU", s "cam"); ("QTY", i 12) ];
      (* located, but never counted *)
      t [ ("SKU", s "gear"); ("BIN", s "b1") ];
    ]

let show cat =
  printf "%a@."
    (Pp.table_of_schema schema)
    (Storage.Catalog.relation cat "STOCK")

let run cat stmt =
  let outcome = Dml.exec_string cat stmt in
  printf "> %s@.  %s@." stmt
    (if outcome.Dml.message = "" then "(query)" else outcome.Dml.message);
  (match outcome.Dml.result with
  | Some r -> printf "%a@." (Pp.table r.Quel.Eval.attrs) r.Quel.Eval.rel
  | None -> ());
  outcome.Dml.catalog

let () =
  let cat = Storage.Catalog.add Storage.Catalog.empty schema initial in
  show cat;

  (* Aggregate bounds before any update: how many items sit in bin b1?
     The sure answer and the cannot-rule-out answer differ because of
     nut's unknown bin and gear's unknown quantity. *)
  let db = Storage.Catalog.to_db cat in
  let q =
    Quel.Parser.parse
      "range of v is STOCK retrieve (v.SKU) where v.BIN = \"b1\""
  in
  let count = Quel.Aggregate.bounds db q Quel.Aggregate.Count in
  let qty = Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "QTY")) in
  printf "SKUs surely/possibly in b1 : %d .. %d@." count.Quel.Aggregate.lower
    count.Quel.Aggregate.upper;
  printf "units in b1               : %d .. %d@.@." qty.Quel.Aggregate.lower
    qty.Quel.Aggregate.upper;

  (* The day's updates, in QUEL. *)
  let cat = run cat "range of v is STOCK delete v where v.QTY <= 10" in
  printf "note: nothing matched — in particular 'gear', whose quantity is@.";
  printf "unknown, is protected: QTY <= 10 is never TRUE for it.@.@.";
  let cat = run cat "append to STOCK (SKU = \"axle\", BIN = \"b3\", QTY = 5)" in
  let cat =
    run cat "range of v is STOCK replace v (QTY = 9) where v.SKU = \"gear\""
  in
  let cat = run cat "range of v is STOCK delete v where v.QTY <= 10" in
  printf "note: once gear's count became known (9), the same delete@.";
  printf "removed it — and the freshly appended axle (5) with it.@.@.";
  show cat;

  (* The same numbers after the updates. *)
  let db = Storage.Catalog.to_db cat in
  let count = Quel.Aggregate.bounds db q Quel.Aggregate.Count in
  let qty = Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "QTY")) in
  printf "SKUs surely/possibly in b1 : %d .. %d@." count.Quel.Aggregate.lower
    count.Quel.Aggregate.upper;
  printf "units in b1               : %d .. %d@." qty.Quel.Aggregate.lower
    qty.Quel.Aggregate.upper;

  (* A view over the updated stock, unfolded at query time. *)
  let views =
    [
      ( "B1",
        Quel.Parser.parse
          "range of v is STOCK retrieve (v.SKU, v.QTY) where v.BIN = \"b1\"" );
    ]
  in
  let through_view =
    Quel.Eval.run db
      (Plan.View.expand ~views
         (Quel.Parser.parse "range of b is B1 retrieve (b.SKU) where b.QTY >= 10"))
  in
  printf "@.b1 items with >= 10 units (through the B1 view):@.";
  printf "%a@."
    (Pp.table through_view.Quel.Eval.attrs)
    through_view.Quel.Eval.rel
