(* Quickstart: build a relation with nulls, query it three ways.

   Run with: dune exec examples/quickstart.exe *)

open Nullrel

let printf = Format.printf

let () =
  (* 1. Declare a schema.  Attribute domains drive integrity checking
     and (for finite domains) the lattice top. *)
  let schema =
    Schema.make "STAFF" ~key:[ "ID" ]
      [
        ("ID", Domain.Ints);
        ("NAME", Domain.Strings);
        ("DEPT", Domain.Enum [ "ENG"; "SALES"; "HR" ]);
        ("PHONE", Domain.Ints);
      ]
  in

  (* 2. Build tuples.  A missing binding IS the no-information null —
     there is nothing to write for PHONE when we know nothing. *)
  let v_int n = Value.Int n and v_str s = Value.Str s in
  let staff =
    Xrel.of_list
      [
        Tuple.of_strings
          [ ("ID", v_int 1); ("NAME", v_str "ada"); ("DEPT", v_str "ENG");
            ("PHONE", v_int 5551234) ];
        Tuple.of_strings
          [ ("ID", v_int 2); ("NAME", v_str "grace"); ("DEPT", v_str "ENG") ];
        Tuple.of_strings [ ("ID", v_int 3); ("NAME", v_str "alan") ];
      ]
  in
  (match Schema.check schema staff with
  | [] -> printf "schema check: ok@."
  | violations ->
      List.iter (fun v -> printf "violation: %a@." Schema.pp_violation v)
        violations);
  printf "%a@." (Pp.table_of_schema schema) staff;

  (* 3. Query with the algebra: who is in ENG, for sure? *)
  let eng =
    Algebra.select_ak (Attr.make "DEPT") Predicate.Eq (v_str "ENG") staff
  in
  printf "%a@."
    (Pp.table_s ~title:"select DEPT = ENG (alan's unknown DEPT excluded)"
       [ "ID"; "NAME"; "DEPT"; "PHONE" ])
    eng;

  (* 4. The same through mini-QUEL. *)
  let db = [ ("STAFF", (schema, staff)) ] in
  let result =
    Quel.Eval.run_string db
      "range of s is STAFF retrieve (s.NAME) where s.DEPT = \"ENG\""
  in
  printf "%a@."
    (Pp.table ~title:"mini-QUEL: retrieve (s.NAME) where s.DEPT = \"ENG\""
       result.Quel.Eval.attrs)
    result.Quel.Eval.rel;

  (* 5. Information-wise reasoning: learning grace's phone number makes
     the database strictly more informative. *)
  let updated =
    Storage.Update.insert staff
      [
        Tuple.of_strings
          [ ("ID", v_int 2); ("NAME", v_str "grace"); ("DEPT", v_str "ENG");
            ("PHONE", v_int 5559876) ];
      ]
  in
  printf "updated properly contains the original: %b@."
    (Xrel.properly_contains updated staff);
  printf "and grace's old partial tuple was absorbed: %d tuples (was %d)@."
    (Xrel.cardinal updated) (Xrel.cardinal staff)
