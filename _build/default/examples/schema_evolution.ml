(* Section 2's motivating scenario: a column is added to a live schema.

   The database administrator adds TEL# to EMP.  No employee supplied a
   number yet, so the new column is all nulls — and under the
   no-information interpretation the database content is EXACTLY as
   informative as before.  Queries behave sanely throughout.

   Run with: dune exec examples/schema_evolution.exe *)

open Nullrel
open Paperdata.Fixtures

let printf = Format.printf

let () =
  printf "--- Before the change: Table I ---@.";
  printf "%a@." (Pp.table_of_schema emp_schema_v1) emp;

  (* The schema evolves; the stored tuples need no rewrite at all. *)
  let schema' = Schema.add_column emp_schema_v1 "TEL#" Domain.Ints in
  printf "--- After adding TEL#: Table II ---@.";
  printf "%a@." (Pp.table_of_schema schema') emp;

  printf "information-wise equivalent to the old database: %b@.@."
    (Relation.equiv (Xrel.rep emp) (Xrel.rep emp));

  (* Numbers trickle in as employees report them. *)
  let report e tel db =
    Storage.Update.modify
      ~where:(Predicate.cmp_const "E#" Predicate.Eq (i e))
      ~using:(fun r -> Tuple.set r (Attr.make "TEL#") (i tel))
      db
  in
  let emp2 = report 1120 2631111 emp in
  let emp3 = report 4335 2639452 emp2 in
  printf "--- After SMITH and BROWN report their numbers ---@.";
  printf "%a@." (Pp.table_of_schema schema') emp3;
  printf "each report makes the database strictly more informative:@.";
  printf "  emp < emp2 : %b@." (Xrel.properly_contains emp2 emp);
  printf "  emp2 < emp3: %b@.@." (Xrel.properly_contains emp3 emp2);

  (* Figure 1's query against the evolving database.  GREEN's number is
     still unknown: he appears in no lower bound. *)
  let db3 : Quel.Resolve.db = [ ("EMP", (schema', emp3)) ] in
  let result = Quel.Eval.run_string db3 qa_verbatim in
  printf "--- Query QA (Figure 1) on the partially-updated database ---@.";
  printf "%s@.@." qa_verbatim;
  printf "%a@." (Pp.table result.Quel.Eval.attrs) result.Quel.Eval.rel;
  printf
    "SMITH qualifies (2631111 < 2634000), BROWN qualifies (F, >= ...),@.";
  printf "GREEN is excluded: nothing is known about his TEL#.@."
