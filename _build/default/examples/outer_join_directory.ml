(* Information-preserving joins (Section 5's union-join): merging two
   departmental directories that each know different things.

   HR knows employment facts; FACILITIES knows desk assignments.  A
   plain equijoin loses the people either side does not know about; the
   union-join (the paper's name for the outer join) keeps them with
   nulls, and the merged directory contains both sources — for sure.

   Run with: dune exec examples/outer_join_directory.exe *)

open Nullrel

let printf = Format.printf
let i n = Value.Int n
let s x = Value.Str x
let t = Tuple.of_strings

let hr =
  Xrel.of_list
    [
      t [ ("ID", i 1); ("NAME", s "ada"); ("ROLE", s "engineer") ];
      t [ ("ID", i 2); ("NAME", s "grace"); ("ROLE", s "director") ];
      t [ ("ID", i 3); ("NAME", s "alan"); ("ROLE", s "researcher") ];
      (* a contractor HR tracks without an ID yet *)
      t [ ("NAME", s "edsger"); ("ROLE", s "consultant") ];
    ]

let facilities =
  Xrel.of_list
    [
      t [ ("ID", i 1); ("DESK", s "B-12") ];
      t [ ("ID", i 2); ("DESK", s "A-01") ];
      t [ ("ID", i 9); ("DESK", s "C-07") ];
      (* nobody HR knows *)
    ]

let id = Attr.set_of_list [ "ID" ]
let cols = [ "ID"; "NAME"; "ROLE"; "DESK" ]

let () =
  printf "%a@." (Pp.table_s ~title:"HR" [ "ID"; "NAME"; "ROLE" ]) hr;
  printf "%a@." (Pp.table_s ~title:"FACILITIES" [ "ID"; "DESK" ]) facilities;

  let inner = Algebra.equijoin id hr facilities in
  printf "%a@."
    (Pp.table_s ~title:"equijoin on ID (alan, edsger and desk C-07 lost)" cols)
    inner;

  let merged = Algebra.union_join id hr facilities in
  printf "%a@."
    (Pp.table_s ~title:"union-join on ID (information preserving)" cols)
    merged;

  printf "merged contains HR        : %b@." (Xrel.contains merged hr);
  printf "merged contains FACILITIES: %b@." (Xrel.contains merged facilities);
  printf "merged contains equijoin  : %b@.@." (Xrel.contains merged inner);

  (* Querying the merged directory stays sound: only people with a desk
     known for sure qualify. *)
  let assigned =
    Xrel.filter (fun r -> not (Value.is_null (Tuple.get r (Attr.make "DESK"))))
      merged
  in
  printf "%a@."
    (Pp.table_s ~title:"rows with a desk known for sure" cols)
    assigned;

  (* And the lattice view: the merged directory is exactly the least
     upper bound of the two sources joined on ID plus the dangles. *)
  printf "union-join = equijoin u HR u FACILITIES: %b@."
    (Xrel.equal merged
       (Xrel.union inner (Xrel.union hr facilities)))
