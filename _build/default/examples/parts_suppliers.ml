(* Section 6's PARTS-SUPPLIERS story: universal quantification with
   nulls, and why "for sure / for sure" is the only consistent reading.

   Run with: dune exec examples/parts_suppliers.exe *)

open Nullrel
open Paperdata.Fixtures

let printf = Format.printf
let y = Attr.set_of_list [ "S#" ]
let p_only = Attr.set_of_list [ "P#" ]

let parts_of supplier =
  Algebra.project p_only
    (Algebra.select_ak (Attr.make "S#") Predicate.Eq (s supplier) ps)

let () =
  printf "%a@." (Pp.table_s ~title:"PS(S#, P#) -- display (6.6)" [ "S#"; "P#" ])
    (Xrel.unsafe_of_minimal ps_rel);

  (* Q: find each supplier who supplies every part supplied by s2. *)
  let ps2 = parts_of "s2" in
  printf "parts supplied for sure by s2: %a@.@." Xrel.pp ps2;

  let answer = Algebra.divide y ps ps2 in
  printf "Q: suppliers supplying every part s2 supplies (for sure):@.";
  printf "%a@." (Pp.table_s [ "S#" ]) answer;

  (* The same through each characterization of division. *)
  printf "via (6.2) algebraic identity : %a@." Xrel.pp
    (Algebra.divide_algebraic y ps ps2);
  printf "via (6.5) image containment  : %a@.@." Xrel.pp
    (Algebra.divide_via_images y ps ps2);

  (* Codd's TRUE/MAYBE divisions, for contrast. *)
  let codd_ps2 =
    Codd.Maybe_algebra.(
      project p_only
        (select_true (Predicate.cmp_const "S#" Predicate.Eq (s "s2")) ps_rel))
  in
  printf "Codd TRUE division  (A1): %a   -- 'no supplier', the paradox@."
    Relation.pp
    (Codd.Maybe_algebra.divide_true ~y ps_rel codd_ps2);
  printf "Codd MAYBE division (A2): %a@.@." Relation.pp
    (Codd.Maybe_algebra.divide_maybe ~y ps_rel codd_ps2);
  printf
    "Under Codd's reading, even s2 does not 'for sure' supply all the parts@.";
  printf "s2 supplies.  Our answer A3 = {s1, s2} avoids the paradox.@.@.";

  (* Q4: parts supplied by s1 but not by s2 — difference as universal
     quantification. *)
  let q4 = Xrel.diff (parts_of "s1") (parts_of "s2") in
  printf "Q4: parts supplied by s1 but not s2: %a   (the paper: {p2})@."
    Xrel.pp q4;

  (* And the images the quotient is built from. *)
  List.iter
    (fun sup ->
      printf "image of %s: %a@." sup Xrel.pp
        (Algebra.image y p_only (t [ ("S#", s sup) ]) ps))
    [ "s1"; "s2"; "s3"; "s4" ]
