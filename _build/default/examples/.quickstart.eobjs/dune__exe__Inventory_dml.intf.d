examples/inventory_dml.mli:
