examples/quickstart.mli:
