examples/outer_join_directory.mli:
