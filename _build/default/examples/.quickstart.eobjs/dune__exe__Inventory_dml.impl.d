examples/inventory_dml.ml: Dml Domain Format Nullrel Plan Pp Quel Schema Storage Tuple Value Xrel
