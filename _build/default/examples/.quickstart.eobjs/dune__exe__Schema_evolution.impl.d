examples/schema_evolution.ml: Attr Domain Format Nullrel Paperdata Pp Predicate Quel Relation Schema Storage Tuple Xrel
