examples/quickstart.ml: Algebra Attr Domain Format List Nullrel Pp Predicate Quel Schema Storage Tuple Value Xrel
