examples/query_bounds.mli:
