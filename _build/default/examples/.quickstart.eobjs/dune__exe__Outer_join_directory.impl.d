examples/outer_join_directory.ml: Algebra Attr Format Nullrel Pp Tuple Value Xrel
