examples/parts_suppliers.ml: Algebra Attr Codd Format List Nullrel Paperdata Pp Predicate Relation Xrel
