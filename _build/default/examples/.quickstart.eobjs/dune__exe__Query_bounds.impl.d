examples/query_bounds.ml: Domain Format Nullrel Pp Quel Schema Tuple Value Xrel
