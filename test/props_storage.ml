(* Property tests: the storage substrate — serialization roundtrips and
   index/operator agreement on random data. *)

open Nullrel
open Qgen

let count = 200

let test name arb prop = QCheck.Test.make ~count ~name arb prop

let attrs = List.map Attr.make universe_attrs

let csv_roundtrip =
  test "CSV write . read = id" arbitrary_xrel (fun x1 ->
      let _, back = Storage.Csv.read_string (Storage.Csv.write_string attrs x1) in
      Xrel.equal x1 back)

let binary_roundtrip =
  test "binary encode . decode = id" arbitrary_xrel (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

(* Strings that stress the CSV quoting rules. *)
let tricky_string_gen =
  QCheck.Gen.(
    oneofl
      [ "plain"; "a,b"; "say \"hi\""; "line\nbreak"; "-"; ""; "trailing,";
        "\"quoted\""; "semi;colon"; "sp ace"; "car\rriage"; "crlf\r\nend" ])

let tricky_xrel_gen =
  QCheck.Gen.(
    map
      (fun cells ->
        Xrel.of_list
          (List.map
             (fun (a, b) ->
               Tuple.of_strings [ ("A", Value.Str a); ("B", Value.Str b) ])
             cells))
      (list_size (int_range 0 6) (pair tricky_string_gen tricky_string_gen)))

let arbitrary_tricky =
  QCheck.make ~print:(Pp.to_string Xrel.pp) tricky_xrel_gen

let csv_quoting_roundtrip =
  test "CSV roundtrips hostile strings" arbitrary_tricky (fun x1 ->
      let cols = [ Attr.make "A"; Attr.make "B" ] in
      let _, back = Storage.Csv.read_string (Storage.Csv.write_string cols x1) in
      Xrel.equal x1 back)

let binary_tricky_roundtrip =
  test "binary roundtrips hostile strings" arbitrary_tricky (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

let int_extremes_gen =
  QCheck.Gen.(
    map
      (fun ns ->
        Xrel.of_list
          (List.mapi
             (fun k n ->
               Tuple.of_strings [ ("K", Value.Int k); ("N", Value.Int n) ])
             ns))
      (list_size (int_range 0 5)
         (oneofl [ 0; 1; -1; max_int; min_int; 0x7fffffff; -0x80000000 ])))

let binary_int_extremes =
  test "binary roundtrips integer extremes"
    (QCheck.make ~print:(Pp.to_string Xrel.pp) int_extremes_gen) (fun x1 ->
      Xrel.equal x1 (Storage.Binary.decode (Storage.Binary.encode x1)))

let hash_index_diff_agrees =
  test "indexed diff = naive diff" pair_xrel (fun (x1, x2) ->
      Relation.equal
        (Storage.Hash_index.diff (Xrel.rep x1) (Xrel.rep x2))
        (Xrel.rep (Xrel.diff x1 x2)))

let hash_index_minimize_agrees =
  test "indexed minimize = naive minimize" arbitrary_relation (fun r ->
      Relation.equal (Storage.Hash_index.minimize r) (Relation.minimize r))

let hash_index_x_mem_agrees =
  test "indexed x_mem = naive x_mem"
    (QCheck.pair arbitrary_tuple arbitrary_relation) (fun (t, r) ->
      Storage.Hash_index.subsuming_exists (Storage.Hash_index.build r) t
      = Relation.x_mem t r)

let persist_schema_roundtrip =
  (* schemas drawn from a few shapes *)
  let schema_gen =
    QCheck.Gen.(
      map2
        (fun pick_key cols ->
          let cols =
            List.mapi
              (fun k d -> (Printf.sprintf "C%d" k, d))
              (List.filteri (fun k _ -> k < 4) cols)
          in
          match cols with
          | [] -> Schema.make "R" [ ("C0", Domain.Ints) ]
          | (first, _) :: _ ->
              Schema.make "R" ~key:(if pick_key then [ first ] else []) cols)
        bool
        (list_size (int_range 1 4)
           (oneofl
              [
                Domain.Ints; Domain.Floats; Domain.Strings; Domain.Bools;
                Domain.Int_range (-5, 17); Domain.Enum [ "x"; "y z" ];
              ])))
  in
  test "schema serialization roundtrips"
    (QCheck.make ~print:Storage.Persist.schema_to_string schema_gen)
    (fun schema ->
      let text = Storage.Persist.schema_to_string schema in
      String.equal text
        (Storage.Persist.schema_to_string (Storage.Persist.schema_of_string text)))

(* ---------------- crash-recovery round-trips ------------------ *)

(* A randomized version of the durability matrix: a random catalog, a
   random workload, a random crash point, then recovery must land on a
   committed state. Driven by the workload generator's PRNG so failures
   reproduce from the printed seed. *)

let durability_spec =
  { Workload.Gen.arity = 3; rows = 5; domain_size = 4; null_density = 0.25 }

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_props_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let random_statement g =
  let spec = durability_spec in
  let render_tuple t =
    let cells =
      List.filter_map
        (fun a ->
          match Tuple.get t a with
          | Value.Null -> None
          | v -> Some (Printf.sprintf "%s = %s" (Attr.name a) (Value.to_string v)))
        (Workload.Gen.attrs spec)
    in
    if cells = [] then "A1 = 0" else String.concat ", " cells
  in
  match Workload.Prng.int g 4 with
  | 0 | 1 -> Printf.sprintf "append to R (%s)" (render_tuple (Workload.Gen.tuple g spec))
  | 2 ->
      Printf.sprintf "range of v is R delete v where v.A1 = %d"
        (Workload.Prng.int g spec.Workload.Gen.domain_size)
  | _ ->
      Printf.sprintf "range of v is R replace v (A2 = %d) where v.A1 = %d"
        (Workload.Prng.int g spec.Workload.Gen.domain_size)
        (Workload.Prng.int g spec.Workload.Gen.domain_size)

let random_scenario seed =
  let g = Workload.Prng.create seed in
  let schema =
    Schema.make "R"
      (List.map
         (fun a -> (Attr.name a, Domain.Ints))
         (Workload.Gen.attrs durability_spec))
  in
  let cat =
    Storage.Catalog.add Storage.Catalog.empty schema
      (Workload.Gen.xrel g durability_spec)
  in
  let stmts = List.init (1 + Workload.Prng.int g 6) (fun _ -> random_statement g) in
  let fault =
    Workload.Prng.choose g Storage.Io.[ Fail; Truncate; Short_write ]
  in
  (g, cat, stmts, fault)

let catalogs_equal c1 c2 =
  List.equal String.equal (Storage.Catalog.names c1) (Storage.Catalog.names c2)
  && List.for_all
       (fun name ->
         Xrel.equal
           (Storage.Catalog.relation c1 name)
           (Storage.Catalog.relation c2 name))
       (Storage.Catalog.names c1)

let save_fault_recover_roundtrips =
  QCheck.Test.make ~count:30 ~name:"save . fault . recover lands on a commit"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g, cat, stmts, fault = random_scenario seed in
      let checkpoint_every = 1 + Workload.Prng.int g 4 in
      (* committed states, with the real filesystem *)
      let states =
        with_temp_dir (fun dir ->
            Storage.Persist.save ~dir cat;
            let d, _ = Dml.open_durable ~checkpoint_every ~dir () in
            let states, _ =
              List.fold_left
                (fun (states, d) stmt ->
                  let d, _ = Dml.exec_durable_string d stmt in
                  (Dml.durable_catalog d :: states, d))
                ([ Dml.durable_catalog d ], d)
                stmts
            in
            Array.of_list (List.rev states))
      in
      let total =
        with_temp_dir (fun dir ->
            Storage.Persist.save ~dir cat;
            let io, ops = Storage.Io.counting Storage.Io.real in
            let d, _ = Dml.open_durable ~io ~checkpoint_every ~dir () in
            ignore
              (List.fold_left
                 (fun d stmt -> fst (Dml.exec_durable_string d stmt))
                 d stmts);
            ops ())
      in
      let after = Workload.Prng.int g total in
      with_temp_dir (fun dir ->
          Storage.Persist.save ~dir cat;
          let io = Storage.Io.faulty ~fault ~after Storage.Io.real in
          let completed = ref 0 in
          (try
             let d, _ = Dml.open_durable ~io ~checkpoint_every ~dir () in
             ignore
               (List.fold_left
                  (fun d stmt ->
                    let d, _ = Dml.exec_durable_string d stmt in
                    incr completed;
                    d)
                  d stmts)
           with Storage.Io.Injected_fault _ -> ());
          let report = Storage.Persist.recover ~dir () in
          let clean =
            List.for_all
              (fun (_, status) ->
                match status with
                | Storage.Persist.Corrupt _ -> false
                | _ -> true)
              report.Storage.Persist.statuses
          in
          clean
          && (catalogs_equal report.Storage.Persist.catalog states.(!completed)
             || !completed + 1 < Array.length states
                && catalogs_equal report.Storage.Persist.catalog
                     states.(!completed + 1))))

let wal_delta_apply_exact =
  QCheck.Test.make ~count:100 ~name:"wal delta . apply = update"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Workload.Prng.create seed in
      let spec = durability_spec in
      let schema =
        Schema.make "R"
          (List.map (fun a -> (Attr.name a, Domain.Ints)) (Workload.Gen.attrs spec))
      in
      let before = Workload.Gen.xrel g spec in
      let after = Workload.Gen.xrel g spec in
      let cat = Storage.Catalog.add Storage.Catalog.empty schema before in
      let record = Storage.Wal.delta ~lsn:1 ~rel:"R" ~before ~after in
      let cat' = Storage.Wal.apply cat record in
      Xrel.equal (Storage.Catalog.relation cat' "R") after)

(* A WAL record torn mid-append must be dropped whole on recovery —
   even when it carries a multi-relation cascade — and replaying the
   journal a second time must be a no-op. *)
let torn_cascade_replay_idempotent =
  QCheck.Test.make ~count:25 ~name:"torn mid-cascade record drops whole"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Workload.Prng.create seed in
      with_temp_dir (fun dir ->
          let ints name cols =
            Schema.make name (List.map (fun c -> (c, Domain.Ints)) cols)
          in
          let cat =
            Storage.Catalog.add Storage.Catalog.empty (ints "T" [ "K" ])
              Xrel.bottom
          in
          let cat =
            Storage.Catalog.add cat (ints "R" [ "F"; "W" ]) Xrel.bottom
          in
          Storage.Persist.save ~dir cat;
          let d, _ = Dml.open_durable ~checkpoint_every:1000 ~dir () in
          let rows = 1 + Workload.Prng.int g 3 in
          let d =
            List.fold_left
              (fun d stmt -> fst (Dml.exec_durable_string d stmt))
              d
              ("constrain fk R (F) to T (K) on delete cascade as fk_rt"
              :: List.concat_map
                   (fun k ->
                     [
                       Printf.sprintf "append to T (K = %d)" k;
                       Printf.sprintf "append to R (F = %d, W = %d)" k (k + 10);
                     ])
                   (List.init rows Fun.id))
          in
          let pre = Dml.durable_catalog (Dml.checkpoint d) in
          (* tear the cascade's journal append in half *)
          let armed = ref false in
          let base = Storage.Io.real in
          let io =
            {
              base with
              Storage.Io.note =
                (fun p ->
                  if String.equal p "dml:apply" then armed := true);
              append_file =
                (fun path contents ->
                  if !armed then begin
                    armed := false;
                    base.Storage.Io.append_file path
                      (String.sub contents 0 (String.length contents / 2));
                    raise (Storage.Io.Injected_fault "torn cascade append")
                  end
                  else base.Storage.Io.append_file path contents);
            }
          in
          (try
             let d, _ = Dml.open_durable ~io ~checkpoint_every:1000 ~dir () in
             ignore
               (Dml.exec_durable_string d
                  (Printf.sprintf "range of v is T delete v where v.K = %d"
                     (Workload.Prng.int g rows)))
           with Storage.Io.Injected_fault _ -> ());
          let r1 = Storage.Persist.recover ~dir () in
          let r2 = Storage.Persist.recover ~dir () in
          (* the torn record is invisible: full pre-crash state, no
             partial cascade, and a clean idempotent second replay *)
          catalogs_equal r1.Storage.Persist.catalog pre
          && catalogs_equal r2.Storage.Persist.catalog pre
          && Storage.Catalog.check_references r1.Storage.Persist.catalog = []))

let suite =
  List.map to_alcotest
    [
      csv_roundtrip;
      binary_roundtrip;
      csv_quoting_roundtrip;
      binary_tricky_roundtrip;
      binary_int_extremes;
      hash_index_diff_agrees;
      hash_index_minimize_agrees;
      hash_index_x_mem_agrees;
      persist_schema_roundtrip;
      save_fault_recover_roundtrips;
      wal_delta_apply_exact;
      torn_cascade_replay_idempotent;
    ]
