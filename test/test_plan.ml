(* Plans: evaluation, rewrite rules on concrete shapes, the cost model,
   and mini-QUEL compilation. *)

open Nullrel
open Helpers

let env_of bindings name = List.assoc_opt name bindings
let scope_of bindings name =
  Option.map Xrel.scope (List.assoc_opt name bindings)

let r_rel =
  x [ t [ ("A", i 1); ("B", i 2) ]; t [ ("A", i 3); ("B", i 1) ]; t [ ("A", i 5) ] ]

let s_rel = x [ t [ ("C", i 1) ]; t [ ("C", i 3) ] ]

let bindings = [ ("R", r_rel); ("S", s_rel) ]
let env = env_of bindings
let env_scope = scope_of bindings
let eval e = Plan.Expr.eval ~env e
let optimize e = Plan.Rewrite.optimize ~env_scope e

let test_eval_operators () =
  check_xrel "base relation" r_rel (eval (Plan.Expr.Rel "R"));
  check_xrel "const" s_rel (eval (Plan.Expr.Const s_rel));
  check_xrel "select"
    (Algebra.select (Predicate.cmp_const "A" Predicate.Le (i 1)) r_rel)
    (eval (Plan.Expr.Select (Predicate.cmp_const "A" Predicate.Le (i 1), Rel "R")));
  check_xrel "project"
    (Algebra.project (aset [ "A" ]) r_rel)
    (eval (Plan.Expr.Project (aset [ "A" ], Rel "R")));
  check_xrel "product"
    (Algebra.product r_rel s_rel)
    (eval (Plan.Expr.Product (Rel "R", Rel "S")));
  check_xrel "union" (Xrel.union r_rel s_rel)
    (eval (Plan.Expr.Union (Rel "R", Rel "S")));
  check_xrel "diff" (Xrel.diff r_rel s_rel)
    (eval (Plan.Expr.Diff (Rel "R", Rel "S")));
  check_xrel "inter" (Xrel.inter r_rel s_rel)
    (eval (Plan.Expr.Inter (Rel "R", Rel "S")));
  check_xrel "divide"
    (Algebra.divide (aset [ "A" ]) r_rel s_rel)
    (eval (Plan.Expr.Divide (aset [ "A" ], Rel "R", Rel "S")));
  check_xrel "rename"
    (Algebra.rename [ (a_ "A", a_ "Z") ] r_rel)
    (eval (Plan.Expr.Rename ([ (a_ "A", a_ "Z") ], Rel "R")));
  Alcotest.(check bool) "unbound relation raises" true
    (try
       ignore (eval (Plan.Expr.Rel "NOPE"));
       false
     with Plan.Expr.Unbound_relation "NOPE" -> true)

let test_scope_bound () =
  let sb e = Plan.Expr.scope_bound ~env_scope e in
  Alcotest.check attr_set "base" (aset [ "A"; "B" ]) (sb (Rel "R"));
  Alcotest.check attr_set "product"
    (aset [ "A"; "B"; "C" ])
    (sb (Plan.Expr.Product (Rel "R", Rel "S")));
  Alcotest.check attr_set "project narrows" (aset [ "A" ])
    (sb (Plan.Expr.Project (aset [ "A"; "C" ], Rel "R")));
  Alcotest.check attr_set "rename maps" (aset [ "Z"; "B" ])
    (sb (Plan.Expr.Rename ([ (a_ "A", a_ "Z") ], Rel "R")));
  Alcotest.check attr_set "divide is Y" (aset [ "A" ])
    (sb (Plan.Expr.Divide (aset [ "A" ], Rel "R", Rel "S")))

let p_a = Predicate.cmp_const "A" Predicate.Le (i 1)
let p_c = Predicate.cmp_const "C" Predicate.Eq (i 1)

let test_rewrite_pushes_select_into_product () =
  let plan = Plan.Expr.Select (p_a, Product (Rel "R", Rel "S")) in
  let optimized = optimize plan in
  Alcotest.(check bool) "select moved inside" true
    (Plan.Expr.equal optimized
       (Plan.Expr.Product (Select (p_a, Rel "R"), Rel "S")));
  check_xrel "semantics preserved" (eval plan) (eval optimized)

let test_rewrite_splits_and_pushes_both () =
  let plan =
    Plan.Expr.Select (Predicate.And (p_a, p_c), Product (Rel "R", Rel "S"))
  in
  let optimized = optimize plan in
  Alcotest.(check bool) "both conjuncts pushed" true
    (Plan.Expr.equal optimized
       (Plan.Expr.Product (Select (p_a, Rel "R"), Select (p_c, Rel "S"))));
  check_xrel "semantics preserved" (eval plan) (eval optimized)

let test_rewrite_respects_null_overlap () =
  (* A predicate over an attribute both operands can bind must NOT be
     pushed: the right operand supplies A for R's (B=...) tuples. *)
  let overlap = x [ t [ ("A", i 5); ("C", i 9) ] ] in
  let bindings = [ ("R", r_rel); ("T", overlap) ] in
  let env = env_of bindings and env_scope = scope_of bindings in
  let p = Predicate.cmp_const "A" Predicate.Eq (i 5) in
  let plan = Plan.Expr.Select (p, Product (Rel "R", Rel "T")) in
  let optimized = Plan.Rewrite.optimize ~env_scope plan in
  Alcotest.(check bool) "selection stays above the product" true
    (match optimized with Plan.Expr.Select _ -> true | _ -> false);
  check_xrel "semantics preserved"
    (Plan.Expr.eval ~env plan)
    (Plan.Expr.eval ~env optimized)

let test_rewrite_select_through_union_diff () =
  let plan = Plan.Expr.Select (p_a, Union (Rel "R", Rel "R")) in
  let optimized = optimize plan in
  Alcotest.(check bool) "distributed over union" true
    (match optimized with Plan.Expr.Union (Select _, Select _) -> true | _ -> false);
  check_xrel "union semantics" (eval plan) (eval optimized);
  let dplan = Plan.Expr.Select (p_a, Diff (Rel "R", Rel "S")) in
  let doptimized = optimize dplan in
  Alcotest.(check bool) "pushed into minuend" true
    (match doptimized with Plan.Expr.Diff (Select _, Rel "S") -> true | _ -> false);
  check_xrel "diff semantics" (eval dplan) (eval doptimized)

let test_rewrite_select_through_rename () =
  let rename_all =
    [ (a_ "A", a_ "X"); (a_ "B", a_ "Y"); (a_ "C", a_ "Z") ]
  in
  let p_x = Predicate.cmp_const "X" Predicate.Le (i 1) in
  let plan = Plan.Expr.Select (p_x, Rename (rename_all, Rel "R")) in
  let optimized = optimize plan in
  Alcotest.(check bool) "select moved below the rename" true
    (match optimized with
    | Plan.Expr.Rename (_, Select (Predicate.Cmp_const (a, _, _), Rel "R")) ->
        Attr.equal a (a_ "A")
    | _ -> false);
  check_xrel "semantics preserved" (eval plan) (eval optimized);
  (* Guard: a predicate over a rename SOURCE must stay above (the
     attribute no longer exists there — it is always ni). *)
  let p_a_src = Predicate.cmp_const "A" Predicate.Le (i 1) in
  let partial = [ (a_ "A", a_ "X") ] in
  let blocked = Plan.Expr.Select (p_a_src, Rename (partial, Rel "R")) in
  let blocked' = optimize blocked in
  Alcotest.(check bool) "source-named select stays put" true
    (match blocked' with Plan.Expr.Select _ -> true | _ -> false);
  check_xrel "blocked plan still evaluates (to empty)" Xrel.bottom
    (eval blocked)

let test_rewrite_projection_rules () =
  let cascade =
    Plan.Expr.Project (aset [ "A" ], Project (aset [ "A"; "B" ], Rel "R"))
  in
  Alcotest.(check bool) "cascades fuse" true
    (Plan.Expr.equal (optimize cascade)
       (Plan.Expr.Project (aset [ "A" ], Rel "R")));
  let identity = Plan.Expr.Project (aset [ "A"; "B"; "Z" ], Rel "R") in
  Alcotest.(check bool) "identity projection vanishes" true
    (Plan.Expr.equal (optimize identity) (Plan.Expr.Rel "R"));
  check_xrel "cascade semantics" (eval cascade) (eval (optimize cascade))

let test_rewrite_constant_folding () =
  let empty = Plan.Expr.Const Xrel.bottom in
  Alcotest.(check bool) "product with empty" true
    (Plan.Expr.equal (optimize (Product (Rel "R", empty))) empty);
  Alcotest.(check bool) "union with empty" true
    (Plan.Expr.equal (optimize (Union (empty, Rel "R"))) (Plan.Expr.Rel "R"));
  Alcotest.(check bool) "diff of empty" true
    (Plan.Expr.equal (optimize (Diff (empty, Rel "R"))) empty);
  Alcotest.(check bool) "diff with empty subtrahend" true
    (Plan.Expr.equal (optimize (Diff (Rel "R", empty))) (Plan.Expr.Rel "R"))

let stats =
  Plan.Cost.of_rowcount (fun name ->
      if name = "R" then Some 1000 else Some 100)

let test_cost_model () =
  let unpushed = Plan.Expr.Select (p_a, Product (Rel "R", Rel "S")) in
  let pushed = Plan.Expr.Product (Select (p_a, Rel "R"), Rel "S") in
  Alcotest.(check bool) "pushdown reduces estimated cost" true
    (Plan.Cost.cost ~stats pushed < Plan.Cost.cost ~stats unpushed);
  Alcotest.(check bool) "pushdown reduces estimated cardinality too" true
    (Plan.Cost.cardinality ~stats pushed
    <= Plan.Cost.cardinality ~stats unpushed);
  Alcotest.(check bool) "unknown stats use the default" true
    (Plan.Cost.cardinality
       ~stats:(Plan.Cost.of_rowcount (fun _ -> None))
       (Rel "Z")
    = Plan.Cost.default_cardinality)

let qa_db : Quel.Resolve.db =
  [ ("EMP", (Paperdata.Fixtures.emp_schema_finite_tel, Paperdata.Fixtures.emp)) ]

let test_compile_matches_eval () =
  List.iter
    (fun src ->
      let q = Quel.Parser.parse src in
      let reference = Quel.Eval.run qa_db q in
      let compiled = Plan.Compile.run qa_db q in
      let unoptimized = Plan.Compile.run ~optimize:false qa_db q in
      check_xrel "compiled = interpreter" reference.Quel.Eval.rel
        compiled.Quel.Eval.rel;
      check_xrel "unoptimized = interpreter" reference.Quel.Eval.rel
        unoptimized.Quel.Eval.rel;
      Alcotest.(check (list string)) "columns agree"
        (List.map Attr.name reference.Quel.Eval.attrs)
        (List.map Attr.name compiled.Quel.Eval.attrs))
    [
      Paperdata.Fixtures.qa_verbatim;
      "range of e is EMP retrieve (e.NAME)";
      "range of e is EMP retrieve (e.NAME, e.E#) where e.SEX = \"M\"";
      "range of e is EMP range of m is EMP retrieve (e.NAME) \
       where e.MGR# = m.E#";
      "range of e is EMP range of m is EMP retrieve (e.NAME, m.NAME) \
       where e.MGR# = m.E# and m.SEX = \"M\"";
    ]

let test_compile_plan_shape () =
  let q =
    Quel.Parser.parse
      "range of e is EMP range of m is EMP retrieve (e.NAME) \
       where m.SEX = \"M\" and e.E# >= 4000"
  in
  let schemas name =
    Option.map (fun (s_, _) -> Schema.attrs s_) (List.assoc_opt name qa_db)
  in
  let plan = Plan.Compile.query ~schemas q in
  let env_scope name =
    Option.map (fun (s_, _) -> Schema.attr_set s_) (List.assoc_opt name qa_db)
  in
  let optimized = Plan.Rewrite.optimize ~env_scope plan in
  (* Both conjuncts are single-variable: after optimization neither
     selection sits above the product any more. *)
  let rec has_select_above_product = function
    | Plan.Expr.Select (_, Plan.Expr.Product _) -> true
    | Plan.Expr.Select (_, e)
    | Plan.Expr.Project (_, e)
    | Plan.Expr.Rename (_, e) ->
        has_select_above_product e
    | Plan.Expr.Product (e1, e2)
    | Plan.Expr.Equijoin (_, e1, e2)
    | Plan.Expr.Union_join (_, e1, e2)
    | Plan.Expr.Union (e1, e2)
    | Plan.Expr.Diff (e1, e2)
    | Plan.Expr.Inter (e1, e2)
    | Plan.Expr.Divide (_, e1, e2) ->
        has_select_above_product e1 || has_select_above_product e2
    | Plan.Expr.Rel _ | Plan.Expr.Const _ -> false
  in
  Alcotest.(check bool) "selections pushed off the product" false
    (has_select_above_product optimized);
  (* and the estimated cost strictly drops *)
  let stats =
    Plan.Cost.of_rowcount (fun name ->
        Option.map (fun (_, x) -> Xrel.cardinal x) (List.assoc_opt name qa_db))
  in
  Alcotest.(check bool) "estimated cost drops" true
    (Plan.Cost.cost ~stats optimized < Plan.Cost.cost ~stats plan)

let test_pp_and_size () =
  let plan = Plan.Expr.Select (p_a, Product (Rel "R", Rel "S")) in
  Alcotest.(check int) "two operator nodes" 2 (Plan.Expr.size plan);
  let printed = Nullrel.Pp.to_string Plan.Expr.pp plan in
  Alcotest.(check bool) "rendering mentions both relations" true
    (let contains needle =
       let nh = String.length printed and nn = String.length needle in
       let rec go i =
         i + nn <= nh && (String.sub printed i nn = needle || go (i + 1))
       in
       go 0
     in
     contains "R" && contains "S" && contains "select")

let suite =
  [
    Alcotest.test_case "eval covers every operator" `Quick test_eval_operators;
    Alcotest.test_case "scope bounds" `Quick test_scope_bound;
    Alcotest.test_case "select pushes into product" `Quick
      test_rewrite_pushes_select_into_product;
    Alcotest.test_case "conjunction splits and pushes" `Quick
      test_rewrite_splits_and_pushes_both;
    Alcotest.test_case "pushdown respects null overlap" `Quick
      test_rewrite_respects_null_overlap;
    Alcotest.test_case "select through union and diff" `Quick
      test_rewrite_select_through_union_diff;
    Alcotest.test_case "select through rename" `Quick
      test_rewrite_select_through_rename;
    Alcotest.test_case "projection rules" `Quick test_rewrite_projection_rules;
    Alcotest.test_case "constant folding" `Quick test_rewrite_constant_folding;
    Alcotest.test_case "cost model" `Quick test_cost_model;
    Alcotest.test_case "compiled = interpreted" `Quick
      test_compile_matches_eval;
    Alcotest.test_case "compiled plan shape" `Quick test_compile_plan_shape;
    Alcotest.test_case "pp and size" `Quick test_pp_and_size;
  ]
