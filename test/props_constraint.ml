(* Property tests: the constraint subsystem as a random-schedule model
   check — the TLA+ MQDBConstraints actions (AddUniqueConstraint,
   AddNotNull, AddFK*, CascadeSet) driven by seeded schedules. After
   every committed transaction — including crash-recovery replays and
   concurrent-session schedules — the declared unique / not-null
   invariants hold and check_references is empty; an interrupted
   cascade leaves no partial effects. *)

open Nullrel
open Qgen

let seed_arb = QCheck.int_bound 1_000_000

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_pconstr_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------ the invariants ----------------------- *)

let tuples_of cat name =
  Tuple.Set.elements (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat name)))

let total_on t attrs = List.for_all (fun a -> Tuple.get t a <> Value.Null) attrs

(* No two tuples of the minimal representation total on the unique
   attributes carry the same values — UniqueOk with NullVal vacuous. *)
let unique_invariant cat =
  List.for_all
    (function
      | Constr.Unique { rel; attrs; _ } when Storage.Catalog.mem cat rel ->
          let keys =
            List.filter_map
              (fun t ->
                if total_on t attrs then
                  Some (List.map (fun a -> Tuple.get t a) attrs)
                else None)
              (tuples_of cat rel)
          in
          List.length keys = List.length (List.sort_uniq Stdlib.compare keys)
      | _ -> true)
    (Storage.Catalog.constraints cat)

let not_null_invariant cat =
  List.for_all
    (function
      | Constr.Not_null { rel; attr; _ } when Storage.Catalog.mem cat rel ->
          List.for_all (fun t -> Tuple.get t attr <> Value.Null) (tuples_of cat rel)
      | _ -> true)
    (Storage.Catalog.constraints cat)

let invariants_hold cat =
  Storage.Catalog.check_references cat = []
  && unique_invariant cat && not_null_invariant cat

let catalogs_equal c1 c2 =
  List.equal String.equal (Storage.Catalog.names c1) (Storage.Catalog.names c2)
  && List.for_all
       (fun name ->
         Xrel.equal
           (Storage.Catalog.relation c1 name)
           (Storage.Catalog.relation c2 name))
       (Storage.Catalog.names c1)

(* ------------------- random schedules (in-memory) -------------- *)

(* T(K, V) referenced by R(F, W) referenced by S(G): a two-level
   cascade chain. The FK action on R -> T is drawn per scenario. *)

let ints name cols = Schema.make name (List.map (fun c -> (c, Domain.Ints)) cols)

let base_catalog () =
  let cat =
    Storage.Catalog.add Storage.Catalog.empty (ints "T" [ "K"; "V" ]) Xrel.bottom
  in
  let cat = Storage.Catalog.add cat (ints "R" [ "F"; "W" ]) Xrel.bottom in
  Storage.Catalog.add cat (ints "S" [ "G" ]) Xrel.bottom

let declare cat stmts =
  List.fold_left (fun cat s -> (Dml.exec_string cat s).Dml.catalog) cat stmts

let declarations g =
  let action = Workload.Prng.choose g [ "restrict"; "cascade"; "setnull" ] in
  let always =
    [
      "constrain unique T (K) as uq_t";
      Printf.sprintf "constrain fk R (F) to T (K) on delete %s as fk_rt" action;
    ]
  in
  let chain =
    if Workload.Prng.bool g 0.6 then
      [
        "constrain unique R (W) as uq_r";
        "constrain fk S (G) to R (W) on delete cascade as fk_sr";
      ]
    else []
  in
  let nn = if Workload.Prng.bool g 0.3 then [ "constrain notnull R (W) as nn_r" ] else [] in
  always @ chain @ nn

let domain = 5

let random_statement g =
  let k () = Workload.Prng.int g domain in
  match Workload.Prng.int g 10 with
  | 0 | 1 ->
      if Workload.Prng.bool g 0.2 then Printf.sprintf "append to T (V = %d)" (k ())
      else Printf.sprintf "append to T (K = %d, V = %d)" (k ()) (k ())
  | 2 | 3 ->
      if Workload.Prng.bool g 0.3 then Printf.sprintf "append to R (W = %d)" (k ())
      else Printf.sprintf "append to R (F = %d, W = %d)" (k ()) (k ())
  | 4 -> Printf.sprintf "append to S (G = %d)" (k ())
  | 5 | 6 -> Printf.sprintf "range of v is T delete v where v.K = %d" (k ())
  | 7 -> Printf.sprintf "range of v is R delete v where v.W = %d" (k ())
  | 8 -> Printf.sprintf "range of v is R replace v (F = %d) where v.W = %d" (k ()) (k ())
  | _ -> Printf.sprintf "range of v is T replace v (V = %d) where v.K = %d" (k ()) (k ())

let schedules_preserve_invariants =
  QCheck.Test.make ~count:60
    ~name:"random schedules keep every constraint satisfied" seed_arb
    (fun seed ->
      let g = Workload.Prng.create seed in
      let cat = declare (base_catalog ()) (declarations g) in
      let steps = 4 + Workload.Prng.int g 16 in
      let cat = ref cat in
      let ok = ref (invariants_hold !cat) in
      for _ = 1 to steps do
        let stmt = random_statement g in
        (match Dml.exec_string !cat stmt with
        | out -> cat := out.Dml.catalog
        | exception Constr.Error _ -> () (* aborted: catalog untouched *)
        | exception Storage.Catalog.Violation _ -> ());
        ok := !ok && invariants_hold !cat
      done;
      !ok)

(* Declaring over violating data must be refused — the Add*Constraint
   precondition — and refuse without attaching anything. *)
let declaration_precondition =
  QCheck.Test.make ~count:40 ~name:"constraint DDL verifies existing data"
    seed_arb
    (fun seed ->
      let g = Workload.Prng.create seed in
      let k = Workload.Prng.int g domain in
      let dup =
        Xrel.of_list
          [
            Tuple.of_strings [ ("K", Value.Int k); ("V", Value.Int 1) ];
            Tuple.of_strings [ ("K", Value.Int k); ("V", Value.Int 2) ];
          ]
      in
      let dangling =
        Xrel.of_list [ Tuple.of_strings [ ("F", Value.Int (k + 100)); ("W", Value.Int 0) ] ]
      in
      let cat = Storage.Catalog.add (base_catalog ()) (ints "T" [ "K"; "V" ]) dup in
      let cat = Storage.Catalog.add cat (ints "R" [ "F"; "W" ]) dangling in
      let refused stmt =
        match Dml.exec_string cat stmt with
        | _ -> false
        | exception Constr.Error _ -> true
      in
      refused "constrain unique T (K)"
      && refused "constrain fk R (F) to T (K) on delete cascade"
      && (match Dml.exec_string cat "constrain notnull T (K)" with
         (* the duplicate rows are total on K, so notnull is fine *)
         | out -> List.length (Storage.Catalog.constraints out.Dml.catalog) = 1
         | exception Constr.Error _ -> false)
      && Storage.Catalog.constraints cat = [])

(* ---------------- crash drills: interrupted cascades ----------- *)

(* An io that tears the statement's journal append in half once the
   DML layer announces it is about to journal — a torn multi-op
   cascade record, which recovery must drop whole. *)
let tearing base =
  let armed = ref false in
  {
    base with
    Storage.Io.note =
      (fun p ->
        base.Storage.Io.note p;
        if String.equal p "dml:apply" then armed := true);
    append_file =
      (fun path contents ->
        if !armed then begin
          armed := false;
          base.Storage.Io.append_file path
            (String.sub contents 0 (String.length contents / 2));
          raise (Storage.Io.Injected_fault "torn mid-cascade append")
        end
        else base.Storage.Io.append_file path contents);
  }

let crash_io mode base =
  match mode with
  | `Before_append -> Storage.Io.crash_at ~point:"dml:apply" base
  | `Torn_append -> tearing base
  | `After_append -> Storage.Io.crash_at ~point:"dml:journaled" base

(* Seed a durable directory with the chain schema, constraints and a
   population whose keys all exist, so a delete from T fires a real
   multi-relation cascade. *)
let seed_durable g dir =
  Storage.Persist.save ~dir (base_catalog ());
  let d, _ = Dml.open_durable ~checkpoint_every:1000 ~dir () in
  let d =
    List.fold_left
      (fun d stmt -> fst (Dml.exec_durable_string d stmt))
      d
      ([
         "constrain unique T (K) as uq_t";
         Printf.sprintf "constrain fk R (F) to T (K) on delete %s as fk_rt"
           (Workload.Prng.choose g [ "cascade"; "setnull" ]);
         "constrain unique R (W) as uq_r";
         "constrain fk S (G) to R (W) on delete cascade as fk_sr";
       ]
      @ List.concat_map
          (fun k ->
            [
              Printf.sprintf "append to T (K = %d, V = %d)" k (k * 10);
              Printf.sprintf "append to R (F = %d, W = %d)" k k;
              Printf.sprintf "append to S (G = %d)" k;
            ])
          [ 0; 1; 2 ])
  in
  Dml.durable_catalog (Dml.checkpoint d)

let crash_mid_cascade_invisible =
  QCheck.Test.make ~count:30
    ~name:"a crash mid-cascade is invisible after recovery" seed_arb
    (fun seed ->
      let g = Workload.Prng.create seed in
      let mode =
        Workload.Prng.choose g [ `Before_append; `Torn_append; `After_append ]
      in
      let stmt =
        Printf.sprintf "range of v is T delete v where v.K = %d"
          (Workload.Prng.int g 3)
      in
      with_temp_dir (fun dir ->
          let pre = seed_durable g dir in
          let post =
            match Dml.exec_string pre stmt with
            | out -> out.Dml.catalog
            | exception Constr.Error _ -> pre
          in
          (* run the statement into a modelled crash *)
          (try
             let io = crash_io mode Storage.Io.real in
             let d, _ = Dml.open_durable ~io ~checkpoint_every:1000 ~dir () in
             ignore (Dml.exec_durable_string d stmt)
           with Storage.Io.Injected_fault _ -> ());
          let report = Storage.Persist.recover ~dir () in
          let recovered = report.Storage.Persist.catalog in
          let landed_on_commit =
            catalogs_equal recovered pre || catalogs_equal recovered post
          in
          (* replaying a second time must change nothing (idempotence) *)
          let again = (Storage.Persist.recover ~dir ()).Storage.Persist.catalog in
          landed_on_commit
          && invariants_hold recovered
          && List.length (Storage.Catalog.constraints recovered) = 4
          && catalogs_equal recovered again))

(* -------------------- concurrent schedules --------------------- *)

(* Two sessions race an insert-into-R against a delete-from-T over a
   shared snapshot; whatever the commit order and FK action, every
   published snapshot satisfies the constraints. *)
let concurrent_schedules_stay_clean =
  QCheck.Test.make ~count:30
    ~name:"concurrent sessions never publish a violating snapshot" seed_arb
    (fun seed ->
      let g = Workload.Prng.create seed in
      let action = Workload.Prng.choose g [ "restrict"; "cascade"; "setnull" ] in
      with_temp_dir (fun dir ->
          let cat =
            declare (base_catalog ())
              [
                "constrain unique T (K) as uq_t";
                Printf.sprintf "constrain fk R (F) to T (K) on delete %s as fk_rt"
                  action;
                "append to T (K = 1, V = 1)";
                "append to T (K = 2, V = 2)";
              ]
          in
          Storage.Persist.save ~dir cat;
          let eng, _ = Session.open_engine ~dir () in
          let a = Session.attach eng in
          let b = Session.attach eng in
          Session.begin_ a;
          Session.begin_ b;
          let stage s stmt =
            match Session.exec_string s stmt with
            | _ -> ()
            | exception Constr.Error _ -> ()
          in
          stage a
            (Printf.sprintf "append to R (F = %d, W = %d)"
               (1 + Workload.Prng.int g 2)
               (Workload.Prng.int g domain));
          stage b
            (Printf.sprintf "range of v is T delete v where v.K = %d"
               (1 + Workload.Prng.int g 2));
          if Workload.Prng.bool g 0.5 then
            stage b
              (Printf.sprintf "append to T (K = %d, V = 9)"
                 (3 + Workload.Prng.int g 2));
          let order = if Workload.Prng.bool g 0.5 then [ a; b ] else [ b; a ] in
          let commit s =
            match Session.commit s with
            | _ -> true
            | exception Session.Session_error.Error _ -> false
          in
          let outcomes = List.map commit order in
          let snap = (Session.engine_snapshot eng).Session.catalog in
          let clean_now = invariants_hold snap in
          Session.shutdown eng;
          (* recovery after the fact sees the same clean state *)
          let re = Storage.Persist.recover ~dir () in
          ignore outcomes;
          clean_now
          && invariants_hold re.Storage.Persist.catalog
          && catalogs_equal re.Storage.Persist.catalog snap))

let suite =
  List.map to_alcotest
    [
      schedules_preserve_invariants;
      declaration_precondition;
      crash_mid_cascade_invisible;
      concurrent_schedules_stay_clean;
    ]
