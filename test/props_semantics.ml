(* Property coverage for the dialect family: the differential harness
   at the acceptance volume, plus seed-randomized spot checks so the
   lattice is exercised on databases the fixed seed never generates. *)

open Workload

let acceptance_run () =
  (* The PR's acceptance bar: >= 500 generated queries, every oracle
     green, at whatever NULLREL_DOMAINS the suite runs under. *)
  let r = Diff.run ~queries:500 () in
  if not (Diff.ok r) then Alcotest.failf "%s" (Diff.render r);
  Alcotest.(check int) "all 500 ran" 500 r.Diff.queries

let seeded_lattice =
  QCheck.Test.make ~count:40 ~name:"containment lattice holds on random dbs"
    (QCheck.make
       ~print:(fun (seed, rows, nulls) ->
         Printf.sprintf "seed=%d rows=%d null_density=%.2f" seed rows
           (float_of_int nulls /. 10.))
       QCheck.Gen.(triple (int_bound 100_000) (int_range 5 30) (int_range 0 6)))
    (fun (seed, rows, nulls) ->
      let spec =
        {
          Diff.default_spec with
          Gen.rows;
          null_density = float_of_int nulls /. 10.;
        }
      in
      let r = Diff.run ~seed ~queries:25 ~spec ~relations:2 () in
      if not (Diff.ok r) then QCheck.Test.fail_report (Diff.render r);
      true)

let suite =
  [
    Alcotest.test_case "differential harness, 500 queries" `Quick
      acceptance_run;
    QCheck_alcotest.to_alcotest seeded_lattice;
  ]
