(* Aggregate bounds: COUNT / SUM / MIN / MAX bracketed over all
   completions of the nulls. *)

open Nullrel
open Helpers

let schema =
  Schema.make "R" ~key:[ "K" ]
    [ ("K", Domain.Ints); ("Q", Domain.Int_range (0, 10)); ("G", Domain.Int_range (0, 10)) ]

(* Three rows: a sure one, one with an unknown aggregated value, one
   whose qualification is unknown. *)
let r =
  x
    [
      t [ ("K", i 1); ("Q", i 5); ("G", i 3) ];
      (* qualifies (Q >= 5), G unknown: contributes 0..10 *)
      t [ ("K", i 2); ("Q", i 7) ];
      (* Q unknown: may or may not qualify; G = 4 *)
      t [ ("K", i 3); ("G", i 4) ];
    ]

let db : Quel.Resolve.db = [ ("R", (schema, r)) ]
let q = Quel.Parser.parse "range of v is R retrieve (v.K) where v.Q >= 5"

let check_bounds label expected actual =
  Alcotest.(check (triple int int bool))
    label expected
    Quel.Aggregate.(actual.lower, actual.upper, actual.may_be_empty)

let test_count () =
  check_bounds "count in [2, 3], never empty" (2, 3, false)
    (Quel.Aggregate.bounds db q Quel.Aggregate.Count)

let test_sum () =
  (* sure: G=3; row 2: G in 0..10; row 3: qualifies only for Q in 5..10,
     then contributes 4, else 0. *)
  check_bounds "sum in [3, 17]" (3, 17, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "G")))

let test_min () =
  (* lower: row 2 could have G = 0; upper: exclude row 3, maximize row 2
     to 10, row 1 fixed at 3 -> min is 3. *)
  check_bounds "min in [0, 3]" (0, 3, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Min ("v", "G")))

let test_max () =
  (* upper: row 2 at G = 10; lower: rows 1 and 2 forced, minimize both
     (3 and 0), exclude row 3 -> max = 3. *)
  check_bounds "max in [3, 10]" (3, 10, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Max ("v", "G")))

let test_total_relation_degenerates () =
  (* With no nulls the bounds collapse to the classical values. *)
  let total =
    x
      [
        t [ ("K", i 1); ("Q", i 5); ("G", i 3) ];
        t [ ("K", i 2); ("Q", i 9); ("G", i 7) ];
        t [ ("K", i 3); ("Q", i 1); ("G", i 9) ];
      ]
  in
  let db : Quel.Resolve.db = [ ("R", (schema, total)) ] in
  check_bounds "count exact" (2, 2, false)
    (Quel.Aggregate.bounds db q Quel.Aggregate.Count);
  check_bounds "sum exact" (10, 10, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "G")));
  check_bounds "min exact" (3, 3, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Min ("v", "G")));
  check_bounds "max exact" (7, 7, false)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Max ("v", "G")))

let test_possibly_empty () =
  let only_unknown = x [ t [ ("K", i 3); ("G", i 4) ] ] in
  let db : Quel.Resolve.db = [ ("R", (schema, only_unknown)) ] in
  let b = Quel.Aggregate.bounds db q Quel.Aggregate.Count in
  check_bounds "count in [0, 1], may be empty" (0, 1, true) b

let test_never_qualifying () =
  let never = x [ t [ ("K", i 1); ("Q", i 0); ("G", i 2) ] ] in
  let db : Quel.Resolve.db = [ ("R", (schema, never)) ] in
  check_bounds "count is zero" (0, 0, true)
    (Quel.Aggregate.bounds db q Quel.Aggregate.Count);
  check_bounds "sum is zero" (0, 0, true)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "G")))

let test_correlated_value_and_qualification () =
  (* The aggregated attribute IS the filtered attribute: a null Q row
     qualifies only with Q in 5..10, so its contribution range is
     5..10, not 0..10. *)
  let corr = x [ t [ ("K", i 1) ] ] in
  let db : Quel.Resolve.db = [ ("R", (schema, corr)) ] in
  check_bounds "sum of Q respects the filter" (0, 10, true)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "Q")));
  check_bounds "min of Q respects the filter" (5, 10, true)
    (Quel.Aggregate.bounds db q (Quel.Aggregate.Min ("v", "Q")))

let test_exhaustive_against_enumeration () =
  (* Ground truth by enumerating every completion of the whole relation
     (tiny domains). *)
  let tiny_schema =
    Schema.make "T" ~key:[ "K" ]
      [ ("K", Domain.Ints); ("Q", Domain.Int_range (0, 2)); ("G", Domain.Int_range (0, 2)) ]
  in
  let rel_tuples =
    [
      t [ ("K", i 1); ("Q", i 2); ("G", i 1) ];
      t [ ("K", i 2); ("G", i 2) ];
      t [ ("K", i 3); ("Q", i 1) ];
    ]
  in
  let db : Quel.Resolve.db =
    [ ("T", (tiny_schema, x rel_tuples)) ]
  in
  let q = Quel.Parser.parse "range of v is T retrieve (v.K) where v.Q >= 1" in
  let domains _ = Domain.Int_range (0, 2) in
  let over = aset [ "Q"; "G" ] in
  let completions =
    List.of_seq
      (Codd.Subst.relation_substitutions ~domains ~over rel_tuples)
  in
  let ground agg_of =
    List.filter_map
      (fun completion ->
        let qualifying =
          List.filter
            (fun row ->
              match Tuple.get row (a_ "Q") with
              | Value.Int n -> n >= 1
              | _ -> false)
            completion
        in
        agg_of qualifying)
      completions
  in
  let check_against label kind agg_of =
    let expected = ground agg_of in
    let b = Quel.Aggregate.bounds db q kind in
    Alcotest.(check int) (label ^ " lower") (List.fold_left min max_int expected)
      b.Quel.Aggregate.lower;
    Alcotest.(check int) (label ^ " upper") (List.fold_left max min_int expected)
      b.Quel.Aggregate.upper
  in
  check_against "count" Quel.Aggregate.Count (fun rows ->
      Some (List.length rows));
  check_against "sum" (Quel.Aggregate.Sum ("v", "G")) (fun rows ->
      Some
        (List.fold_left
           (fun acc row ->
             match Tuple.get row (a_ "G") with
             | Value.Int n -> acc + n
             | _ -> acc)
           0 rows));
  check_against "min" (Quel.Aggregate.Min ("v", "G")) (fun rows ->
      match rows with
      | [] -> None
      | _ ->
          Some
            (List.fold_left
               (fun acc row ->
                 match Tuple.get row (a_ "G") with
                 | Value.Int n -> min acc n
                 | _ -> acc)
               max_int rows))

let test_type_guard () =
  let sch = Schema.make "S" [ ("NAME", Domain.Strings) ] in
  let db : Quel.Resolve.db =
    [ ("S", (sch, x [ t [ ("NAME", s "x") ] ])) ]
  in
  let q = Quel.Parser.parse "range of v is S retrieve (v.NAME)" in
  Alcotest.(check bool) "non-integer aggregate rejected as bad input" true
    (try
       ignore (Quel.Aggregate.bounds db q (Quel.Aggregate.Sum ("v", "NAME")));
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true)

let suite =
  [
    Alcotest.test_case "count bounds" `Quick test_count;
    Alcotest.test_case "sum bounds" `Quick test_sum;
    Alcotest.test_case "min bounds" `Quick test_min;
    Alcotest.test_case "max bounds" `Quick test_max;
    Alcotest.test_case "total relations are exact" `Quick
      test_total_relation_degenerates;
    Alcotest.test_case "possibly empty answers" `Quick test_possibly_empty;
    Alcotest.test_case "never-qualifying rows" `Quick test_never_qualifying;
    Alcotest.test_case "value/qualification correlation" `Quick
      test_correlated_value_and_qualification;
    Alcotest.test_case "exhaustive ground truth" `Quick
      test_exhaustive_against_enumeration;
    Alcotest.test_case "type guard" `Quick test_type_guard;
  ]
