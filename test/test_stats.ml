(* The statistics subsystem: collection, serialization, the catalog
   freshness protocol, checkpoint persistence, invalidation by journal
   replay, and the estimation-quality contract of the cost model built
   on top. *)

open Nullrel
open Helpers

let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_temp_dir f =
  let dir = temp_dir "nullrel_stats" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let stats_table = Alcotest.testable Stats.pp Stats.equal

(* ------------------------- collection ------------------------- *)

let abc = [ a_ "A"; a_ "B"; a_ "C" ]

let sample =
  x
    [
      t [ ("A", i 1); ("B", i 10); ("C", s "u") ];
      t [ ("A", i 2); ("B", i 20) ];
      t [ ("A", i 3); ("C", s "v") ];
      t [ ("A", i 3); ("B", i 20); ("C", s "u") ];
    ]

let test_collect () =
  let tbl = Stats.collect ~attrs:abc sample in
  Alcotest.(check int) "rows" 4 tbl.Stats.rows;
  let col name = Option.get (Stats.column tbl (a_ name)) in
  let a = col "A" and b = col "B" and c = col "C" in
  Alcotest.(check int) "A nulls" 0 a.Stats.nulls;
  Alcotest.(check int) "A distinct" 3 a.Stats.distinct;
  Alcotest.(check (option int)) "A min" (Some 1) a.Stats.min_int;
  Alcotest.(check (option int)) "A max" (Some 3) a.Stats.max_int;
  Alcotest.(check int) "B nulls" 1 b.Stats.nulls;
  Alcotest.(check int) "B distinct" 2 b.Stats.distinct;
  Alcotest.(check (option int)) "B min" (Some 10) b.Stats.min_int;
  Alcotest.(check (option int)) "B max" (Some 20) b.Stats.max_int;
  Alcotest.(check int) "C nulls" 1 c.Stats.nulls;
  Alcotest.(check int) "C distinct" 2 c.Stats.distinct;
  Alcotest.(check (option int)) "C min (strings)" None c.Stats.min_int;
  Alcotest.(check (float 1e-9)) "B null fraction" 0.25
    (Stats.null_fraction tbl b)

let test_collect_empty () =
  let tbl = Stats.collect ~attrs:abc Xrel.bottom in
  Alcotest.(check int) "rows" 0 tbl.Stats.rows;
  let a = Option.get (Stats.column tbl (a_ "A")) in
  Alcotest.(check (float 1e-9)) "null fraction of empty" 0.
    (Stats.null_fraction tbl a)

(* The parallel fold must compute exactly the sequential answer. *)
let test_strategy_parity () =
  let spec = { Workload.Gen.default with rows = 2000 } in
  let rel = Workload.Gen.xrel (Workload.Prng.create 42) spec in
  let attrs = Workload.Gen.attrs spec in
  let seq = Stats.collect ~strategy:Kernel.Sequential ~attrs rel in
  let par = Stats.collect ~strategy:Kernel.Parallel ~attrs rel in
  let auto = Stats.collect ~attrs rel in
  Alcotest.check stats_table "parallel = sequential" seq par;
  Alcotest.check stats_table "auto = sequential" seq auto

(* ----------------------- serialization ------------------------ *)

let test_roundtrip () =
  let tbl = Stats.collect ~attrs:abc sample in
  let entries = [ ("R", "deadbeef", tbl); ("S", "00000000", tbl) ] in
  let text = Stats.tables_to_string entries in
  let back = Stats.tables_of_string text in
  Alcotest.(check int) "two entries" 2 (List.length back);
  List.iter2
    (fun (n1, c1, t1) (n2, c2, t2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.(check string) "crc" c1 c2;
      Alcotest.check stats_table "table" t1 t2)
    entries back

let test_corrupt_rejected () =
  List.iter
    (fun text ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" text)
        true
        (try
           ignore (Stats.tables_of_string text);
           false
         with Stats.Corrupt _ -> true))
    [
      "column\tA\t0\t1\n";
      "table\tR\tnot-a-number\tcafe\n";
      "garbage line\n";
      "table\tR\t3\tcafe\ncolumn\tA\t0\n";
    ]

(* -------------------- freshness protocol ---------------------- *)

let r_schema = Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ]
let r0 = x [ t [ ("A", i 1); ("B", i 10) ]; t [ ("A", i 2) ] ]

let freshness cat name =
  match Storage.Catalog.stats_status cat name with
  | Storage.Catalog.Fresh _ -> "fresh"
  | Storage.Catalog.Stale _ -> "stale"
  | Storage.Catalog.Missing -> "missing"

let test_freshness_protocol () =
  let cat = Storage.Catalog.add Storage.Catalog.empty r_schema r0 in
  Alcotest.(check string) "starts missing" "missing" (freshness cat "R");
  let tbl = Stats.collect ~attrs:(Schema.attrs r_schema) r0 in
  let cat = Storage.Catalog.set_stats cat "R" tbl in
  Alcotest.(check string) "set -> fresh" "fresh" (freshness cat "R");
  Alcotest.(check bool) "stats returns them" true
    (Storage.Catalog.stats cat "R" = Some tbl);
  let r1 = Xrel.union r0 (x [ t [ ("A", i 9); ("B", i 9) ] ]) in
  let cat = Storage.Catalog.set_relation cat "R" r1 in
  Alcotest.(check string) "mutation -> stale" "stale" (freshness cat "R");
  Alcotest.(check bool) "stats hides stale" true
    (Storage.Catalog.stats cat "R" = None);
  let cat = Storage.Catalog.set_stats cat "R" (Stats.collect ~attrs:(Schema.attrs r_schema) r1) in
  Alcotest.(check string) "re-analyze -> fresh" "fresh" (freshness cat "R");
  let cat = Storage.Catalog.add cat r_schema r0 in
  Alcotest.(check string) "add over name -> stale" "stale" (freshness cat "R");
  let cat = Storage.Catalog.clear_stats cat "R" in
  Alcotest.(check string) "clear -> missing" "missing" (freshness cat "R");
  Alcotest.(check string) "unknown relation" "missing" (freshness cat "ZZZ")

(* ----------------------- persistence -------------------------- *)

let s_schema = Schema.make "S" [ ("K", Domain.Ints); ("V", Domain.Strings) ]
let s0 = x [ t [ ("K", i 1); ("V", s "one") ] ]

let analyzed_catalog () =
  let cat = Storage.Catalog.add Storage.Catalog.empty r_schema r0 in
  let cat = Storage.Catalog.add cat s_schema s0 in
  let cat =
    Storage.Catalog.set_stats cat "R"
      (Stats.collect ~attrs:(Schema.attrs r_schema) r0)
  in
  Storage.Catalog.set_stats cat "S"
    (Stats.collect ~attrs:(Schema.attrs s_schema) s0)

let test_save_load_roundtrip () =
  with_temp_dir (fun dir ->
      let cat = analyzed_catalog () in
      Storage.Persist.save ~dir cat;
      let loaded = Storage.Persist.load ~dir () in
      List.iter
        (fun name ->
          Alcotest.(check string)
            (name ^ " fresh after load")
            "fresh" (freshness loaded name);
          Alcotest.(check (option stats_table))
            (name ^ " unchanged")
            (Storage.Catalog.stats cat name)
            (Storage.Catalog.stats loaded name))
        [ "R"; "S" ])

let test_stale_stats_not_saved () =
  with_temp_dir (fun dir ->
      let cat = analyzed_catalog () in
      (* mutate R after analysis: its stats are stale and must not be
         persisted, while S's fresh ones must survive *)
      let cat =
        Storage.Catalog.set_relation cat "R"
          (Xrel.union r0 (x [ t [ ("A", i 7); ("B", i 7) ] ]))
      in
      Storage.Persist.save ~dir cat;
      let loaded = Storage.Persist.load ~dir () in
      Alcotest.(check string) "R missing" "missing" (freshness loaded "R");
      Alcotest.(check string) "S fresh" "fresh" (freshness loaded "S"))

let test_torn_stats_file () =
  with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (analyzed_catalog ());
      let stats_path = Filename.concat dir "STATS" in
      let text = In_channel.with_open_text stats_path In_channel.input_all in
      Out_channel.with_open_text stats_path (fun oc ->
          Out_channel.output_string oc
            (String.sub text 0 (String.length text / 2)));
      (* a torn STATS is pure acceleration state: the load must succeed
         and simply come back without statistics *)
      let loaded = Storage.Persist.load ~dir () in
      Alcotest.(check string) "R missing" "missing" (freshness loaded "R");
      Alcotest.(check string) "S missing" "missing" (freshness loaded "S"))

(* Journal replay mutates through [Catalog.set_relation], so recovery
   leaves replayed relations' stats stale — never fresh-but-wrong —
   while untouched relations keep theirs. *)
let test_wal_replay_invalidates () =
  with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (analyzed_catalog ());
      let d, _ = Dml.open_durable ~checkpoint_every:1000 ~dir () in
      let d, _ = Dml.exec_durable_string d "append to R (A = 8, B = 8)" in
      ignore d;
      let report = Storage.Persist.load_report ~dir () in
      let loaded = report.Storage.Persist.catalog in
      Alcotest.(check bool) "R was recovered from the journal" true
        (List.assoc "R" report.Storage.Persist.statuses
        = Storage.Persist.Recovered 1);
      Alcotest.(check string) "replayed R -> stale" "stale"
        (freshness loaded "R");
      Alcotest.(check string) "untouched S stays fresh" "fresh"
        (freshness loaded "S"))

(* --------------------- estimation quality --------------------- *)

(* The bounded-factor contract on Workload.Gen databases: with
   collected statistics, selection and equijoin estimates stay within
   a generous constant factor of the actual cardinality (uniform data,
   so containment/independence assumptions hold up to sampling noise;
   the additive slack absorbs small-count variance). *)
let within_factor ~factor ~slack est actual =
  est <= (factor *. actual) +. slack && actual <= (factor *. est) +. slack

let test_cardinality_bounded () =
  let spec =
    { Workload.Gen.arity = 3; rows = 600; domain_size = 40; null_density = 0.2 }
  in
  List.iter
    (fun seed ->
      let prng = Workload.Prng.create seed in
      let r = Workload.Gen.xrel prng spec in
      let s = Workload.Gen.xrel (Workload.Prng.split prng) spec in
      let attrs = Workload.Gen.attrs spec in
      let r_tbl = Stats.collect ~attrs r and s_tbl = Stats.collect ~attrs s in
      let stats =
        {
          Plan.Cost.rowcount =
            (fun name ->
              match name with
              | "R" -> Some (Xrel.cardinal r)
              | "S" -> Some (Xrel.cardinal s)
              | _ -> None);
          table =
            (fun name ->
              match name with
              | "R" -> Some r_tbl
              | "S" -> Some s_tbl
              | _ -> None);
          equipped = (fun _ _ -> false);
        }
      in
      let check label plan actual =
        let est = Plan.Cost.cardinality ~stats plan in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: %s within bounds (est %.1f, actual %d)"
             seed label est actual)
          true
          (within_factor ~factor:8. ~slack:32. est (float actual))
      in
      let sel =
        Plan.Expr.Select (Predicate.cmp_const "A1" Predicate.Eq (i 7), Rel "R")
      in
      check "base relation" (Plan.Expr.Rel "R") (Xrel.cardinal r);
      check "equality selection" sel
        (Xrel.cardinal
           (Algebra.select (Predicate.cmp_const "A1" Predicate.Eq (i 7)) r));
      let range_p = Predicate.cmp_const "A1" Predicate.Le (i 10) in
      check "range selection"
        (Plan.Expr.Select (range_p, Rel "R"))
        (Xrel.cardinal (Algebra.select range_p r));
      (* QUEL plans rename each variable's columns apart, so join sides
         share only the join attributes; model that by projecting S
         down to the join column (which also routes the stats digger
         through a Project node) *)
      let join_x = aset [ "A1" ] in
      check "equijoin"
        (Plan.Expr.Equijoin (join_x, Rel "R", Project (join_x, Rel "S")))
        (Xrel.cardinal
           (Algebra.equijoin join_x r (Algebra.project join_x s))))
    [ 1; 2; 3; 4; 5 ]

(* With statistics the product chain reorders smallest-first; the
   reordering must never change the result, and must put the smaller
   relation first when sizes differ. *)
let test_reorder_smallest_first () =
  let big =
    x
      (List.init 50 (fun k ->
           t [ ("A", i (k mod 7)); ("B", i k) ]))
  in
  let small = x [ t [ ("K", i 1) ]; t [ ("K", i 2) ] ] in
  let big_schema = Schema.make "BIG" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
  let small_schema = Schema.make "SMALL" [ ("K", Domain.Ints) ] in
  let db = [ ("BIG", (big_schema, big)); ("SMALL", (small_schema, small)) ] in
  let env_scope name =
    Option.map (fun (s_, _) -> Schema.attr_set s_) (List.assoc_opt name db)
  in
  let stats =
    Plan.Cost.of_rowcount (fun name ->
        Option.map (fun (_, x) -> Xrel.cardinal x) (List.assoc_opt name db))
  in
  let plan = Plan.Expr.Product (Rel "BIG", Rel "SMALL") in
  let reordered = Plan.Rewrite.optimize ~cost:stats ~env_scope plan in
  Alcotest.(check bool) "small factor moved first" true
    (Plan.Expr.equal reordered (Plan.Expr.Product (Rel "SMALL", Rel "BIG")));
  let env name = Option.map snd (List.assoc_opt name db) in
  check_xrel "reordering preserves the result"
    (Plan.Expr.eval ~env plan)
    (Plan.Expr.eval ~env reordered);
  (* without a cost source the rule must not fire *)
  Alcotest.(check bool) "no reorder without stats" true
    (Plan.Expr.equal (Plan.Rewrite.optimize ~env_scope plan) plan)

let suite =
  [
    Alcotest.test_case "collect summarizes columns" `Quick test_collect;
    Alcotest.test_case "collect on empty relation" `Quick test_collect_empty;
    Alcotest.test_case "strategy parity" `Quick test_strategy_parity;
    Alcotest.test_case "serialization roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "corrupt stats rejected" `Quick test_corrupt_rejected;
    Alcotest.test_case "freshness protocol" `Quick test_freshness_protocol;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "stale stats not saved" `Quick test_stale_stats_not_saved;
    Alcotest.test_case "torn STATS degrades to none" `Quick test_torn_stats_file;
    Alcotest.test_case "journal replay invalidates" `Quick
      test_wal_replay_invalidates;
    Alcotest.test_case "estimates within bounded factor" `Quick
      test_cardinality_bounded;
    Alcotest.test_case "cost-based product reorder" `Quick
      test_reorder_smallest_first;
  ]
