(* End-to-end integration: a three-relation suppliers/parts/shipments
   database with nulls, exercised through the catalog, integrity
   checking, both query evaluators, the planner, updates, persistence
   and the shell — the workflow a downstream user would run. *)

open Nullrel
open Helpers

(* ------------------------- the database -------------------------- *)

let suppliers_schema =
  Schema.make "S" ~key:[ "S#" ]
    [
      ("S#", Domain.Strings);
      ("SNAME", Domain.Strings);
      ("STATUS", Domain.Int_range (0, 100));
      ("CITY", Domain.Enum [ "London"; "Paris"; "Athens" ]);
    ]

let parts_schema =
  Schema.make "P" ~key:[ "P#" ]
    [
      ("P#", Domain.Strings);
      ("PNAME", Domain.Strings);
      ("COLOR", Domain.Enum [ "Red"; "Green"; "Blue" ]);
      ("WEIGHT", Domain.Int_range (1, 100));
    ]

let shipments_schema =
  Schema.make "SP" ~key:[ "S#"; "P#" ]
    ~foreign_keys:
      [ ([ "S#" ], "S", [ "S#" ]); ([ "P#" ], "P", [ "P#" ]) ]
    [ ("S#", Domain.Strings); ("P#", Domain.Strings); ("QTY", Domain.Ints) ]

let suppliers =
  x
    [
      t [ ("S#", s "s1"); ("SNAME", s "Smith"); ("STATUS", i 20); ("CITY", s "London") ];
      t [ ("S#", s "s2"); ("SNAME", s "Jones"); ("STATUS", i 10); ("CITY", s "Paris") ];
      t [ ("S#", s "s3"); ("SNAME", s "Blake"); ("STATUS", i 30) ];
      (* city unknown *)
      t [ ("S#", s "s4"); ("SNAME", s "Clark"); ("CITY", s "London") ];
      (* status unknown *)
    ]

let parts =
  x
    [
      t [ ("P#", s "p1"); ("PNAME", s "Nut"); ("COLOR", s "Red"); ("WEIGHT", i 12) ];
      t [ ("P#", s "p2"); ("PNAME", s "Bolt"); ("COLOR", s "Green"); ("WEIGHT", i 17) ];
      t [ ("P#", s "p3"); ("PNAME", s "Screw"); ("WEIGHT", i 17) ];
      (* color unknown *)
      t [ ("P#", s "p4"); ("PNAME", s "Cam"); ("COLOR", s "Red") ];
      (* weight unknown *)
    ]

let shipments =
  x
    [
      t [ ("S#", s "s1"); ("P#", s "p1"); ("QTY", i 300) ];
      t [ ("S#", s "s1"); ("P#", s "p2"); ("QTY", i 200) ];
      t [ ("S#", s "s1"); ("P#", s "p3") ];
      (* quantity unknown *)
      t [ ("S#", s "s2"); ("P#", s "p1"); ("QTY", i 300) ];
      t [ ("S#", s "s2"); ("P#", s "p2"); ("QTY", i 400) ];
      t [ ("S#", s "s3"); ("P#", s "p2"); ("QTY", i 200) ];
      t [ ("S#", s "s4"); ("P#", s "p4"); ("QTY", i 100) ];
    ]

let catalog =
  List.fold_left
    (fun cat (schema, x_) -> Storage.Catalog.add cat schema x_)
    Storage.Catalog.empty
    [
      (suppliers_schema, suppliers);
      (parts_schema, parts);
      (shipments_schema, shipments);
    ]

let db = Storage.Catalog.to_db catalog

(* --------------------------- checks ------------------------------ *)

let test_integrity () =
  Alcotest.(check int) "no reference violations" 0
    (List.length (Storage.Catalog.check_references catalog));
  (* Break a reference and see it flagged. *)
  let broken =
    Storage.Catalog.set_relation catalog "SP"
      (Storage.Update.insert shipments
         [ t [ ("S#", s "s9"); ("P#", s "p1"); ("QTY", i 5) ] ])
  in
  Alcotest.(check int) "dangling supplier flagged" 1
    (List.length (Storage.Catalog.check_references broken))

let run src = (Quel.Eval.run db (Quel.Parser.parse src)).Quel.Eval.rel
let run_planned src = (Plan.Compile.run db (Quel.Parser.parse src)).Quel.Eval.rel

let queries_and_answers =
  [
    ( (* simple select with a null column: s4's status is unknown *)
      "range of u is S retrieve (u.S#) where u.STATUS >= 20",
      [ t [ ("S#", s "s1") ]; t [ ("S#", s "s3") ] ] );
    ( (* join through shipments: suppliers of red parts, for sure *)
      "range of sp is SP range of p is P retrieve (sp.S#) \
       where sp.P# = p.P# and p.COLOR = \"Red\"",
      [ t [ ("S#", s "s1") ]; t [ ("S#", s "s2") ]; t [ ("S#", s "s4") ] ] );
    ( (* three-way join with two qualifications *)
      "range of u is S range of sp is SP range of p is P \
       retrieve (u.SNAME, p.PNAME) \
       where u.S# = sp.S# and sp.P# = p.P# and u.CITY = \"London\" \
       and p.WEIGHT >= 15",
      [ t [ ("SNAME", s "Smith"); ("PNAME", s "Bolt") ];
        t [ ("SNAME", s "Smith"); ("PNAME", s "Screw") ] ] );
    ( (* null QTY never sure: which shipments surely exceed 250? *)
      "range of sp is SP retrieve (sp.S#, sp.P#) where sp.QTY > 250",
      [ t [ ("S#", s "s1"); ("P#", s "p1") ];
        t [ ("S#", s "s2"); ("P#", s "p1") ];
        t [ ("S#", s "s2"); ("P#", s "p2") ] ] );
  ]

let test_queries_interpreter () =
  List.iter
    (fun (src, expected) -> check_xrel src (x expected) (run src))
    queries_and_answers

let test_queries_planner_agrees () =
  List.iter
    (fun (src, _) -> check_xrel src (run src) (run_planned src))
    queries_and_answers

let test_division_who_supplies_everything_red () =
  (* Suppliers supplying, for sure, every red part. *)
  let red_parts =
    Algebra.project (aset [ "P#" ])
      (Algebra.select_ak (a_ "COLOR") Predicate.Eq (s "Red") parts)
  in
  check_xrel "red parts" (x [ t [ ("P#", s "p1") ]; t [ ("P#", s "p4") ] ])
    red_parts;
  let quotient =
    Algebra.divide (aset [ "S#" ])
      (Algebra.project (aset [ "S#"; "P#" ]) shipments)
      red_parts
  in
  (* Nobody ships both p1 and p4 for sure. *)
  check_xrel "no supplier covers all red parts" Xrel.bottom quotient;
  (* Whereas every supplier of p2 (green) alone: *)
  let green = x [ t [ ("P#", s "p2") ] ] in
  check_xrel "suppliers of every green part"
    (x [ t [ ("S#", s "s1") ]; t [ ("S#", s "s2") ]; t [ ("S#", s "s3") ] ])
    (Algebra.divide (aset [ "S#" ])
       (Algebra.project (aset [ "S#"; "P#" ]) shipments)
       green)

let test_outer_join_report () =
  (* A supplier report that keeps the supplier even when no shipment is
     known: union-join of S and SP on S#. *)
  let report = Algebra.union_join (aset [ "S#" ]) suppliers shipments in
  Alcotest.(check bool) "every supplier is represented" true
    (Xrel.contains report suppliers);
  (* Hash-based physical operator agrees. *)
  check_xrel "hash union-join agrees" report
    (Storage.Join.hash_union_join (aset [ "S#" ]) suppliers shipments)

let test_update_workflow () =
  (* Blake's city becomes known: strictly more information. *)
  let learned =
    Storage.Update.modify
      ~where:(Predicate.cmp_const "S#" Predicate.Eq (s "s3"))
      ~using:(fun r -> Tuple.set r (a_ "CITY") (s "Athens"))
      suppliers
  in
  Alcotest.(check bool) "strictly more informative" true
    (Xrel.properly_contains learned suppliers);
  (* The updated relation still satisfies the schema. *)
  Alcotest.(check int) "still valid" 0
    (List.length (Schema.check suppliers_schema learned));
  (* Deleting Paris suppliers: only sure matches go. *)
  let pruned =
    Storage.Update.delete_where
      (Predicate.cmp_const "CITY" Predicate.Eq (s "Paris"))
      learned
  in
  Alcotest.(check int) "one supplier deleted" 3 (Xrel.cardinal pruned)

let test_bounds_ordering () =
  (* lower <= upper on every query of the battery. *)
  List.iter
    (fun (src, _) ->
      let q = Quel.Parser.parse src in
      let lower = (Quel.Eval.run db q).Quel.Eval.rel in
      let upper = (Quel.Eval.run_upper db q).Quel.Eval.rel in
      Alcotest.(check bool) (src ^ ": lower <= upper") true
        (Xrel.contains upper lower))
    queries_and_answers;
  (* And on the QTY query the unknown shipment appears in the upper
     bound only. *)
  let q = Quel.Parser.parse
      "range of sp is SP retrieve (sp.S#, sp.P#) where sp.QTY > 250"
  in
  let upper = (Quel.Eval.run_upper db q).Quel.Eval.rel in
  Alcotest.(check bool) "possible shipment included above" true
    (Xrel.x_mem (t [ ("S#", s "s1"); ("P#", s "p3") ]) upper)

let test_persistence_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_spj_%d" (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Storage.Persist.save ~dir catalog;
      let back = Storage.Persist.load ~dir () in
      Alcotest.(check int) "references intact after reload" 0
        (List.length (Storage.Catalog.check_references back));
      (* the reloaded database answers the battery identically *)
      let db' = Storage.Catalog.to_db back in
      List.iter
        (fun (src, _) ->
          check_xrel (src ^ " after reload")
            (run src)
            (Quel.Eval.run db' (Quel.Parser.parse src)).Quel.Eval.rel)
        queries_and_answers)

let test_through_the_shell () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_spj_shell_%d" (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Storage.Persist.save ~dir catalog;
      let st, _ = Shell.exec Shell.initial (".open " ^ dir) in
      let _, out =
        Shell.exec st
          "range of sp is SP range of p is P retrieve (sp.S#) \
           where sp.P# = p.P# and p.COLOR = \"Red\""
      in
      let contains needle =
        let nh = String.length out and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "shell answers the join" true
        (contains "s1" && contains "s2" && contains "s4"
        && not (contains "s3")))

let suite =
  [
    Alcotest.test_case "integrity across relations" `Quick test_integrity;
    Alcotest.test_case "query battery (interpreter)" `Quick
      test_queries_interpreter;
    Alcotest.test_case "query battery (planner agrees)" `Quick
      test_queries_planner_agrees;
    Alcotest.test_case "division report" `Quick
      test_division_who_supplies_everything_red;
    Alcotest.test_case "outer-join report" `Quick test_outer_join_report;
    Alcotest.test_case "update workflow" `Quick test_update_workflow;
    Alcotest.test_case "bounds ordering" `Quick test_bounds_ordering;
    Alcotest.test_case "persistence roundtrip" `Quick
      test_persistence_roundtrip;
    Alcotest.test_case "through the shell" `Quick test_through_the_shell;
  ]
