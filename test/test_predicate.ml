(* Selection predicates: three-valued evaluation against tuples
   (Section 5). *)

open Nullrel
open Helpers
open Predicate

let emp =
  t [ ("E#", i 4335); ("NAME", s "BROWN"); ("SEX", s "F"); ("MGR#", i 2235) ]

let test_cmp_const () =
  check_tvl "equal string" Tvl.True (eval (cmp_const "SEX" Eq (s "F")) emp);
  check_tvl "unequal string" Tvl.False (eval (cmp_const "SEX" Eq (s "M")) emp);
  check_tvl "null attr gives ni" Tvl.Ni
    (eval (cmp_const "TEL#" Gt (i 2634000)) emp);
  check_tvl "int less-than" Tvl.True (eval (cmp_const "E#" Gt (i 4000)) emp);
  check_tvl "int ge boundary" Tvl.True (eval (cmp_const "E#" Ge (i 4335)) emp);
  check_tvl "neq on null is ni" Tvl.Ni (eval (cmp_const "TEL#" Neq (i 0)) emp)

let test_cmp_attrs () =
  check_tvl "E# > MGR#" Tvl.True (eval (cmp_attrs "E#" Gt "MGR#") emp);
  check_tvl "attr vs itself" Tvl.True (eval (cmp_attrs "E#" Eq "E#") emp);
  check_tvl "null on either side" Tvl.Ni (eval (cmp_attrs "E#" Eq "TEL#") emp);
  check_tvl "both null" Tvl.Ni (eval (cmp_attrs "TEL#" Eq "PHONE") emp)

let test_null_never_satisfies () =
  (* Section 5: a nonexistent/unknown value satisfies no relational
     expression — all six operators give ni on a null. *)
  List.iter
    (fun cmp ->
      check_tvl
        (comparison_to_string cmp ^ " on null")
        Tvl.Ni
        (eval (cmp_const "TEL#" cmp (i 7)) emp))
    [ Eq; Neq; Lt; Le; Gt; Ge ]

let test_connectives () =
  let p_true = cmp_const "SEX" Eq (s "F") in
  let p_false = cmp_const "SEX" Eq (s "M") in
  let p_ni = cmp_const "TEL#" Gt (i 0) in
  check_tvl "T and ni" Tvl.Ni (eval (p_true &&& p_ni) emp);
  check_tvl "F and ni" Tvl.False (eval (p_false &&& p_ni) emp);
  check_tvl "T or ni" Tvl.True (eval (p_true ||| p_ni) emp);
  check_tvl "F or ni" Tvl.Ni (eval (p_false ||| p_ni) emp);
  check_tvl "not ni" Tvl.Ni (eval (Not p_ni) emp);
  check_tvl "const short-circuit" Tvl.True (eval (Const Tvl.True) emp)

let test_excluded_middle_fails_on_null () =
  (* The QA phenomenon in miniature: p or not p is ni on a null. *)
  let p = cmp_const "TEL#" Lt (i 2634000) in
  check_tvl "p or ~p is ni" Tvl.Ni (eval (p ||| Not p) emp);
  (* ...but TRUE on a total tuple. *)
  let total = Tuple.set emp (a_ "TEL#") (i 2639452) in
  check_tvl "p or ~p is TRUE when total" Tvl.True (eval (p ||| Not p) total)

let test_negate_comparison () =
  let total = Tuple.set emp (a_ "TEL#") (i 5) in
  List.iter
    (fun cmp ->
      let p = cmp_const "TEL#" cmp (i 7) in
      let q = cmp_const "TEL#" (negate_comparison cmp) (i 7) in
      check_tvl
        ("negated " ^ comparison_to_string cmp)
        (Tvl.not_ (eval p total))
        (eval q total);
      (* On nulls both are ni — negation does not resurrect information. *)
      check_tvl
        ("negated " ^ comparison_to_string cmp ^ " on null")
        Tvl.Ni
        (eval q emp))
    [ Eq; Neq; Lt; Le; Gt; Ge ]

let test_holds () =
  Alcotest.(check bool) "True holds" true
    (holds (cmp_const "SEX" Eq (s "F")) emp);
  Alcotest.(check bool) "ni does not hold" false
    (holds (cmp_const "TEL#" Eq (i 0)) emp);
  Alcotest.(check bool) "False does not hold" false
    (holds (cmp_const "SEX" Eq (s "M")) emp)

let test_attrs () =
  let p = cmp_attrs "A" Lt "B" &&& (cmp_const "C" Eq (i 1) ||| Not (cmp_attrs "A" Eq "D")) in
  Alcotest.check attr_set "mentioned attributes" (aset [ "A"; "B"; "C"; "D" ])
    (Predicate.attrs p)

let test_constants_must_be_nonnull () =
  Alcotest.check_raises "cmp_const rejects ni"
    (Exec_error.Error
       (Exec_error.Bad_input "Predicate.cmp_const: the constant must not be ni"))
    (fun () -> ignore (cmp_const "A" Eq Value.Null))

let test_type_error_propagates () =
  Alcotest.check_raises "string vs int comparison"
    (Value.Type_error "cannot compare string with int") (fun () ->
      ignore (eval (cmp_const "NAME" Lt (i 3)) emp))

let suite =
  [
    Alcotest.test_case "attribute vs constant" `Quick test_cmp_const;
    Alcotest.test_case "attribute vs attribute" `Quick test_cmp_attrs;
    Alcotest.test_case "nulls satisfy no comparison" `Quick
      test_null_never_satisfies;
    Alcotest.test_case "connectives" `Quick test_connectives;
    Alcotest.test_case "excluded middle fails on null" `Quick
      test_excluded_middle_fails_on_null;
    Alcotest.test_case "negate_comparison" `Quick test_negate_comparison;
    Alcotest.test_case "holds (lower bound)" `Quick test_holds;
    Alcotest.test_case "mentioned attributes" `Quick test_attrs;
    Alcotest.test_case "non-null constants enforced" `Quick
      test_constants_must_be_nonnull;
    Alcotest.test_case "type errors propagate" `Quick
      test_type_error_propagates;
  ]
