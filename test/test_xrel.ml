(* X-relations: canonicalization, containment, the lattice operations and
   their laws on concrete cases (Sections 4 and 7). Property-based
   versions live in props_lattice.ml. *)

open Nullrel
open Helpers

let ab = t [ ("A", i 1); ("B", i 2) ]
let a1 = t [ ("A", i 1) ]
let a2 = t [ ("A", i 2) ]
let b2 = t [ ("B", i 2) ]
let b3 = t [ ("B", i 3) ]

let test_canonicalization () =
  let x1 = Xrel.of_list [ ab; a1; Tuple.empty ] in
  Alcotest.(check int) "minimal rep has one tuple" 1 (Xrel.cardinal x1);
  check_xrel "equal to the minimal build" (x [ ab ]) x1;
  Alcotest.(check bool) "rep is minimal" true
    (Relation.is_minimal (Xrel.rep x1))

let test_equality_is_equivalence () =
  (* Proposition 4.1 via minimal representations. *)
  let x1 = Xrel.of_list [ ab; a1 ] and x2 = Xrel.of_list [ ab; b2 ] in
  check_xrel "both minimize to {ab}" x1 x2;
  Alcotest.(check bool) "mutual containment" true
    (Xrel.contains x1 x2 && Xrel.contains x2 x1)

let test_containment () =
  let big = x [ ab; a2 ] and small = x [ a1 ] in
  Alcotest.(check bool) "big contains small" true (Xrel.contains big small);
  Alcotest.(check bool) "proper" true (Xrel.properly_contains big small);
  Alcotest.(check bool) "not proper on self" false
    (Xrel.properly_contains big big);
  Alcotest.(check bool) "everything contains bottom" true
    (Xrel.contains small Xrel.bottom)

let test_union_is_lub () =
  let x1 = x [ a1 ] and x2 = x [ b2 ] in
  let u = Xrel.union x1 x2 in
  Alcotest.(check bool) "u >= x1" true (Xrel.contains u x1);
  Alcotest.(check bool) "u >= x2" true (Xrel.contains u x2);
  (* Proposition 4.4: least among the upper bounds. *)
  let upper = x [ ab; b3 ] in
  Alcotest.(check bool) "upper >= both operands" true
    (Xrel.contains upper x1 && Xrel.contains upper x2);
  Alcotest.(check bool) "upper >= union" true (Xrel.contains upper u)

let test_union_minimizes () =
  (* (4.6) may introduce subsumed tuples across operands. *)
  check_xrel "subsumed operand tuple vanishes" (x [ ab ])
    (Xrel.union (x [ a1 ]) (x [ ab ]))

let test_inter_is_glb () =
  let x1 = x [ ab ] and x2 = x [ t [ ("A", i 1); ("B", i 9) ] ] in
  let g = Xrel.inter x1 x2 in
  check_xrel "x-intersection keeps the common part" (x [ a1 ]) g;
  Alcotest.(check bool) "x1 >= g" true (Xrel.contains x1 g);
  Alcotest.(check bool) "x2 >= g" true (Xrel.contains x2 g);
  (* Proposition 4.5: greatest among lower bounds. *)
  let lower = x [ a1 ] in
  Alcotest.(check bool) "lower <= both" true
    (Xrel.contains x1 lower && Xrel.contains x2 lower);
  Alcotest.(check bool) "lower <= inter" true (Xrel.contains g lower)

let test_inter_not_set_intersection () =
  let x1 = x [ ab ] and x2 = x [ t [ ("A", i 1); ("B", i 9) ] ] in
  check_xrel "set intersection is empty" Xrel.bottom
    (Xrel.set_inter_total x1 x2);
  Alcotest.(check bool) "x-intersection is not" false
    (Xrel.is_empty (Xrel.inter x1 x2))

let test_diff () =
  let x1 = x [ ab; a2 ] in
  check_xrel "remove subsumed tuples" (x [ a2 ]) (Xrel.diff x1 (x [ ab ]));
  (* (4.8): a minuend tuple is dropped iff the subtrahend has a MORE
     informative tuple; a less informative one does not remove it. *)
  check_xrel "less informative subtrahend keeps tuple" x1
    (Xrel.diff x1 (x [ a1 ]));
  check_xrel "diff with bottom" x1 (Xrel.diff x1 Xrel.bottom);
  check_xrel "diff of bottom" Xrel.bottom (Xrel.diff Xrel.bottom x1);
  check_xrel "self-diff is bottom" Xrel.bottom (Xrel.diff x1 x1)

let test_diff_propositions () =
  (* Propositions 4.6 and 4.7. *)
  let x1 = x [ ab; a2; b3 ] in
  let x2 = x [ ab ] in
  Alcotest.(check bool) "x1 >= x2" true (Xrel.contains x1 x2);
  check_xrel "P4.6: (x1 - x2) u x2 = x1" x1 (Xrel.union (Xrel.diff x1 x2) x2);
  (* P4.7: any x with x u x2 >= x1 contains x1 - x2. *)
  let candidate = x [ ab; a2; b3; t [ ("C", i 7) ] ] in
  Alcotest.(check bool) "candidate u x2 >= x1" true
    (Xrel.contains (Xrel.union candidate x2) x1);
  Alcotest.(check bool) "candidate >= x1 - x2" true
    (Xrel.contains candidate (Xrel.diff x1 x2))

let test_distributivity_concrete () =
  let x1 = x [ a1 ] and x2 = x [ a2 ] and x3 = x [ b2 ] in
  check_xrel "(4.4) inter over union"
    (Xrel.inter x1 (Xrel.union x2 x3))
    (Xrel.union (Xrel.inter x1 x2) (Xrel.inter x1 x3));
  check_xrel "(4.5) union over inter"
    (Xrel.union x1 (Xrel.inter x2 x3))
    (Xrel.inter (Xrel.union x1 x2) (Xrel.union x1 x3))

let test_bottom_absorbing () =
  let x1 = x [ ab; a2 ] in
  check_xrel "bottom n x = bottom" Xrel.bottom (Xrel.inter Xrel.bottom x1);
  check_xrel "bottom u x = x" x1 (Xrel.union Xrel.bottom x1)

let tiny =
  [ (a_ "A", Domain.Int_range (0, 1)); (a_ "B", Domain.Int_range (0, 2)) ]

let test_top () =
  let top = Xrel.top tiny in
  Alcotest.(check int) "2 x 3 total tuples" 6 (Xrel.cardinal top);
  let r = x [ t [ ("A", i 0); ("B", i 1) ]; t [ ("A", i 1) ] ] in
  check_xrel "R u TOP = TOP" top (Xrel.union r top);
  Alcotest.(check bool) "TOP contains everything in range" true
    (Xrel.contains top r)

let test_top_guards () =
  Alcotest.check_raises "infinite domain rejected"
    (Domain.Infinite "Xrel.top") (fun () ->
      ignore (Xrel.top [ (a_ "A", Domain.Ints) ]));
  Alcotest.check_raises "oversized universe rejected"
    (Exec_error.Error (Exec_error.Bad_input "Xrel.top: universe too large"))
    (fun () ->
      ignore
        (Xrel.top
           [
             (a_ "A", Domain.Int_range (0, 4095));
             (a_ "B", Domain.Int_range (0, 4095));
           ]))

let test_pseudo_complement_laws () =
  let star = Xrel.pseudo_complement tiny in
  let r = x [ t [ ("A", i 0); ("B", i 0) ]; t [ ("A", i 1); ("B", i 2) ] ] in
  let r_star = star r in
  check_xrel "R u R* = TOP" (Xrel.top tiny) (Xrel.union r r_star);
  (* R* is the smallest such (7.1 with Proposition 4.7). *)
  let other = Xrel.diff (Xrel.top tiny) (x [ t [ ("A", i 0); ("B", i 0) ] ]) in
  Alcotest.(check bool) "other u R = TOP" true
    (Xrel.equal (Xrel.union r other) (Xrel.top tiny));
  Alcotest.(check bool) "other >= R*" true (Xrel.contains other r_star);
  check_xrel "bottom* = TOP" (Xrel.top tiny) (star Xrel.bottom);
  check_xrel "TOP* = bottom" Xrel.bottom (star (Xrel.top tiny))

let test_unsafe_of_minimal () =
  let minimal = Relation.of_list [ ab; a2 ] in
  check_xrel "wraps without re-minimizing" (Xrel.of_relation minimal)
    (Xrel.unsafe_of_minimal minimal)

let test_filter () =
  let x1 = x [ ab; a2 ] in
  check_xrel "filter keeps matching"
    (x [ a2 ])
    (Xrel.filter (fun r -> Value.equal (Tuple.get r (a_ "A")) (i 2)) x1)

let suite =
  [
    Alcotest.test_case "canonicalization" `Quick test_canonicalization;
    Alcotest.test_case "equality is equivalence" `Quick
      test_equality_is_equivalence;
    Alcotest.test_case "containment" `Quick test_containment;
    Alcotest.test_case "union is the lub" `Quick test_union_is_lub;
    Alcotest.test_case "union re-minimizes" `Quick test_union_minimizes;
    Alcotest.test_case "x-intersection is the glb" `Quick test_inter_is_glb;
    Alcotest.test_case "x-intersection <> set intersection" `Quick
      test_inter_not_set_intersection;
    Alcotest.test_case "difference" `Quick test_diff;
    Alcotest.test_case "difference propositions 4.6/4.7" `Quick
      test_diff_propositions;
    Alcotest.test_case "distributivity (4.4)/(4.5)" `Quick
      test_distributivity_concrete;
    Alcotest.test_case "bottom laws" `Quick test_bottom_absorbing;
    Alcotest.test_case "TOP over a finite universe" `Quick test_top;
    Alcotest.test_case "TOP guards" `Quick test_top_guards;
    Alcotest.test_case "pseudo-complement laws" `Quick
      test_pseudo_complement_laws;
    Alcotest.test_case "unsafe_of_minimal" `Quick test_unsafe_of_minimal;
    Alcotest.test_case "filter" `Quick test_filter;
  ]
