(* The resource governor: budgets, deadlines, cancellation, ambient
   install/restore, and the retry-with-backoff storage layer. *)

open Nullrel

let is_timeout = function Exec_error.Timeout _ -> true | _ -> false

let tuples_exceeded = function
  | Exec_error.Budget_exceeded { resource = Exec_error.Tuples; _ } -> true
  | _ -> false

let memory_exceeded = function
  | Exec_error.Budget_exceeded { resource = Exec_error.Memory_words; _ } ->
      true
  | _ -> false

(* Runs [f] expecting a governed abort; returns the error. *)
let expect_abort name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a governed abort" name
  | exception Exec_error.Error e -> e

let test_ungoverned_ticks_are_free () =
  (* no governor installed: a million ticks change nothing and the
     ambient stays the unlimited sentinel *)
  for _ = 1 to 1_000_000 do
    Exec.tick ()
  done;
  Alcotest.(check bool) "still unlimited" false (Exec.limited (Exec.current ()));
  Alcotest.(check int) "nothing charged" 0 (Exec.charged (Exec.current ()))

let test_tuple_budget () =
  let g = Exec.make ~max_tuples:10 () in
  let e =
    expect_abort "tuple budget" (fun () ->
        Exec.with_governor g (fun () ->
            for _ = 1 to 100 do
              Exec.tick ()
            done))
  in
  Alcotest.(check bool) "tuples exceeded" true (tuples_exceeded e);
  Alcotest.(check int) "charged just past the budget" 11 (Exec.charged g);
  Alcotest.(check int) "exit code 5" 5 (Exec_error.exit_code e)

let test_tick_cost () =
  let g = Exec.make ~max_tuples:100 () in
  let e =
    expect_abort "bulk cost" (fun () ->
        Exec.with_governor g (fun () -> Exec.tick ~cost:1000 ()))
  in
  Alcotest.(check bool) "tuples exceeded" true (tuples_exceeded e)

let test_deadline_with_fake_clock () =
  let t = ref 0.0 in
  let g =
    Exec.make ~deadline_s:5.0 ~check_every:1 ~now:(fun () -> !t) ()
  in
  let e =
    expect_abort "deadline" (fun () ->
        Exec.with_governor g (fun () ->
            Exec.tick ();
            t := 10.0;
            Exec.tick ()))
  in
  Alcotest.(check bool) "timeout" true (is_timeout e);
  (match e with
  | Exec_error.Timeout { limit_s } ->
      Alcotest.(check (float 1e-9)) "reports the allowance" 5.0 limit_s
  | _ -> ());
  Alcotest.(check int) "exit code 4" 4 (Exec_error.exit_code e)

let test_expired_deadline_aborts_on_entry () =
  let t = ref 0.0 in
  let g = Exec.make ~deadline_s:1.0 ~now:(fun () -> !t) () in
  t := 2.0;
  let ran = ref false in
  let e =
    expect_abort "entry check" (fun () ->
        Exec.with_governor g (fun () -> ran := true))
  in
  Alcotest.(check bool) "timeout" true (is_timeout e);
  Alcotest.(check bool) "the body never ran" false !ran

let test_cancellation () =
  let calls = ref 0 in
  let cancelled () =
    incr calls;
    !calls > 3
  in
  let g = Exec.make ~cancelled ~check_every:1 () in
  let e =
    expect_abort "cancellation" (fun () ->
        Exec.with_governor g (fun () ->
            for _ = 1 to 100 do
              Exec.tick ()
            done))
  in
  (match e with
  | Exec_error.Cancelled -> ()
  | other -> Alcotest.failf "expected Cancelled, got %s" (Exec_error.to_string other));
  Alcotest.(check int) "exit code 6" 6 (Exec_error.exit_code e)

let test_memory_budget () =
  let g = Exec.make ~max_memory_words:100_000 ~check_every:1 () in
  let e =
    expect_abort "memory budget" (fun () ->
        Exec.with_governor g (fun () ->
            (* a large flat array lands directly on the major heap *)
            let a = Sys.opaque_identity (Array.make 1_000_000 0) in
            Exec.tick ();
            ignore (Sys.opaque_identity a)))
  in
  Alcotest.(check bool) "memory words exceeded" true (memory_exceeded e);
  Alcotest.(check bool) "high-water recorded" true
    (Exec.memory_high_water g > 100_000)

let test_ambient_restored_after_abort () =
  let g = Exec.make ~max_tuples:1 () in
  (try
     Exec.with_governor g (fun () ->
         Exec.tick ();
         Exec.tick ())
   with Exec_error.Error _ -> ());
  Alcotest.(check bool) "ambient back to unlimited" false
    (Exec.limited (Exec.current ()));
  (* and ticking afterwards is unconstrained again *)
  for _ = 1 to 100 do
    Exec.tick ()
  done

let test_nesting_restores_outer () =
  let outer = Exec.make ~max_tuples:1_000_000 () in
  let inner = Exec.make ~max_tuples:5 () in
  Exec.with_governor outer (fun () ->
      Exec.tick ();
      (try
         Exec.with_governor inner (fun () ->
             for _ = 1 to 100 do
               Exec.tick ()
             done)
       with Exec_error.Error _ -> ());
      Alcotest.(check bool) "outer governor back in charge" true
        (Exec.current () == outer);
      Exec.tick ());
  Alcotest.(check int) "outer charged its own ticks" 2 (Exec.charged outer)

let test_checkpoint_forces_check () =
  let t = ref 0.0 in
  (* enormous amortization grain: only [checkpoint] can notice *)
  let g =
    Exec.make ~deadline_s:1.0 ~check_every:max_int ~now:(fun () -> !t) ()
  in
  let e =
    expect_abort "checkpoint" (fun () ->
        Exec.with_governor g (fun () ->
            t := 2.0;
            Exec.tick ();
            (* amortized: not noticed yet *)
            Exec.checkpoint ()))
  in
  Alcotest.(check bool) "timeout via checkpoint" true (is_timeout e)

(* ---------------- governed engine operations ------------------ *)

let wide_universe =
  (* 16^5 extension tuples: far beyond a small tuple budget, well under
     Xrel.top's static cap *)
  List.map
    (fun name -> (Attr.make name, Domain.Int_range (0, 15)))
    [ "A"; "B"; "C"; "D"; "E" ]

let test_top_aborts_under_budget () =
  let e =
    expect_abort "Xrel.top" (fun () ->
        Exec.with_governor
          (Exec.make ~max_tuples:10_000 ())
          (fun () -> Xrel.top wide_universe))
  in
  Alcotest.(check bool) "tuples exceeded" true (tuples_exceeded e)

let test_product_aborts_under_budget () =
  let mk prefix n =
    Xrel.of_list
      (List.init n (fun i ->
           Tuple.of_strings [ (prefix, Value.Int i) ]))
  in
  let x1 = mk "A" 100 and x2 = mk "B" 100 in
  let e =
    expect_abort "Algebra.product" (fun () ->
        Exec.with_governor
          (Exec.make ~max_tuples:500 ())
          (fun () -> Algebra.product x1 x2))
  in
  Alcotest.(check bool) "tuples exceeded" true (tuples_exceeded e)

let test_governed_success_unchanged () =
  (* generous limits: results agree with ungoverned execution *)
  let mk prefix n =
    Xrel.of_list
      (List.init n (fun i -> Tuple.of_strings [ (prefix, Value.Int i) ]))
  in
  let x1 = mk "A" 10 and x2 = mk "B" 10 in
  let free = Algebra.product x1 x2 in
  let governed =
    Exec.with_governor
      (Exec.make ~deadline_s:60.0 ~max_tuples:1_000_000 ())
      (fun () -> Algebra.product x1 x2)
  in
  Alcotest.(check bool) "same result under a generous governor" true
    (Xrel.equal free governed)

(* -------------------- error taxonomy surface ------------------ *)

let test_error_strings_and_codes () =
  let cases =
    [
      (Exec_error.Timeout { limit_s = 1.5 }, "timeout", 4);
      ( Exec_error.Budget_exceeded
          { resource = Exec_error.Tuples; budget = 10; used = 11 },
        "budget",
        5 );
      (Exec_error.Cancelled, "cancelled", 6);
      (Exec_error.Storage_fault "disk on fire", "storage", 3);
      (Exec_error.Bad_input "no such attribute", "bad-input", 2);
    ]
  in
  List.iter
    (fun (e, cls, code) ->
      Alcotest.(check string) "class name" cls (Exec_error.class_name e);
      Alcotest.(check int) "exit code" code (Exec_error.exit_code e);
      Alcotest.(check bool) "to_string is nonempty" true
        (String.length (Exec_error.to_string e) > 0))
    cases;
  match Exec_error.protect (fun () -> Exec_error.bad_input "nope") with
  | Ok _ -> Alcotest.fail "protect should catch"
  | Error (Exec_error.Bad_input msg) ->
      Alcotest.(check string) "protect returns the payload" "nope" msg
  | Error other ->
      Alcotest.failf "unexpected error %s" (Exec_error.to_string other)

(* ---------------------- retrying storage ---------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "nullrel_exec" ".dat" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_retrying_rides_out_transients () =
  with_temp_file (fun path ->
      let io =
        Storage.Io.retrying ~attempts:3 ~backoff:0.0001
          (Storage.Io.flaky ~failures:2 Storage.Io.real)
      in
      io.Storage.Io.write_file path "payload";
      Alcotest.(check string)
        "write survived two transient faults" "payload"
        (io.Storage.Io.read_file path))

let test_retrying_exhaustion_is_storage_fault () =
  with_temp_file (fun path ->
      let io =
        Storage.Io.retrying ~attempts:3 ~backoff:0.0001
          (Storage.Io.flaky ~failures:10 Storage.Io.real)
      in
      match io.Storage.Io.write_file path "payload" with
      | () -> Alcotest.fail "expected exhaustion"
      | exception Exec_error.Error (Exec_error.Storage_fault msg) ->
          Alcotest.(check bool) "mentions the attempts" true
            (String.length msg > 0)
      | exception e ->
          Alcotest.failf "unexpected exception %s" (Printexc.to_string e))

let test_retrying_passes_injected_faults () =
  with_temp_file (fun path ->
      (* a modelled crash must not be retried *)
      let io =
        Storage.Io.retrying ~attempts:5 ~backoff:0.0001
          (Storage.Io.faulty ~fault:Storage.Io.Fail ~after:0 Storage.Io.real)
      in
      match io.Storage.Io.write_file path "payload" with
      | () -> Alcotest.fail "expected the injected crash"
      | exception Storage.Io.Injected_fault _ -> ()
      | exception e ->
          Alcotest.failf "crash was converted to %s" (Printexc.to_string e))

let suite =
  [
    Alcotest.test_case "ungoverned ticks are free" `Quick
      test_ungoverned_ticks_are_free;
    Alcotest.test_case "tuple budget aborts" `Quick test_tuple_budget;
    Alcotest.test_case "tick cost accumulates" `Quick test_tick_cost;
    Alcotest.test_case "deadline aborts (fake clock)" `Quick
      test_deadline_with_fake_clock;
    Alcotest.test_case "expired deadline aborts on entry" `Quick
      test_expired_deadline_aborts_on_entry;
    Alcotest.test_case "cooperative cancellation" `Quick test_cancellation;
    Alcotest.test_case "memory budget aborts" `Quick test_memory_budget;
    Alcotest.test_case "ambient restored after abort" `Quick
      test_ambient_restored_after_abort;
    Alcotest.test_case "nested governors restore the outer" `Quick
      test_nesting_restores_outer;
    Alcotest.test_case "checkpoint forces a full check" `Quick
      test_checkpoint_forces_check;
    Alcotest.test_case "Xrel.top aborts under a budget" `Quick
      test_top_aborts_under_budget;
    Alcotest.test_case "product aborts under a budget" `Quick
      test_product_aborts_under_budget;
    Alcotest.test_case "generous governor changes nothing" `Quick
      test_governed_success_unchanged;
    Alcotest.test_case "error classes, strings, exit codes" `Quick
      test_error_strings_and_codes;
    Alcotest.test_case "retrying io rides out transients" `Quick
      test_retrying_rides_out_transients;
    Alcotest.test_case "retry exhaustion is a storage fault" `Quick
      test_retrying_exhaustion_is_storage_fault;
    Alcotest.test_case "injected crashes are never retried" `Quick
      test_retrying_passes_injected_faults;
  ]
