(* Tuples: canonical form, the more-informative order, meet/join
   (Section 3), restriction and renaming. *)

open Nullrel
open Helpers

let ab = t [ ("A", i 1); ("B", i 2) ]
let a_only = t [ ("A", i 1) ]
let b_only = t [ ("B", i 2) ]
let conflicting = t [ ("A", i 9); ("B", i 2) ]

let test_canonical_form () =
  Alcotest.check tuple "nulls dropped on build" a_only
    (t [ ("A", i 1); ("B", Value.Null) ]);
  Alcotest.check tuple "set to null removes" a_only
    (Tuple.set ab (a_ "B") Value.Null);
  Alcotest.check value "unbound attribute reads as ni" Value.Null
    (Tuple.get a_only (a_ "ZZZ"));
  Alcotest.(check bool) "empty is the null tuple" true
    (Tuple.is_null_tuple Tuple.empty);
  Alcotest.(check bool) "all-null build is the null tuple" true
    (Tuple.is_null_tuple (t [ ("A", Value.Null); ("B", Value.Null) ]))

let test_attrs_and_totality () =
  Alcotest.check attr_set "attrs of ab" (aset [ "A"; "B" ]) (Tuple.attrs ab);
  Alcotest.(check bool) "ab is A,B-total" true
    (Tuple.is_total_on (aset [ "A"; "B" ]) ab);
  Alcotest.(check bool) "a_only is not B-total" false
    (Tuple.is_total_on (aset [ "B" ]) a_only);
  Alcotest.(check bool) "every tuple is {}-total" true
    (Tuple.is_total_on Attr.Set.empty Tuple.empty)

let test_order_basics () =
  Alcotest.(check bool) "ab >= a_only" true (Tuple.more_informative ab a_only);
  Alcotest.(check bool) "ab >= b_only" true (Tuple.more_informative ab b_only);
  Alcotest.(check bool) "a_only not >= ab" false
    (Tuple.more_informative a_only ab);
  Alcotest.(check bool) "everything >= null tuple" true
    (Tuple.more_informative a_only Tuple.empty);
  Alcotest.(check bool) "null tuple >= only itself" false
    (Tuple.more_informative Tuple.empty a_only);
  Alcotest.(check bool) "reflexive" true (Tuple.more_informative ab ab);
  Alcotest.(check bool) "strict excludes equal" false
    (Tuple.strictly_more_informative ab ab);
  Alcotest.(check bool) "strict on proper extension" true
    (Tuple.strictly_more_informative ab a_only);
  Alcotest.(check bool) "conflicting values incomparable" false
    (Tuple.more_informative conflicting ab
    || Tuple.more_informative ab conflicting)

let test_antisymmetry () =
  (* On canonical tuples, mutual informativeness is equality
     (footnote 3's equivalence collapses to identity). *)
  let r = t [ ("A", i 1); ("C", s "x") ] in
  let t' = t [ ("C", s "x"); ("A", i 1) ] in
  Alcotest.(check bool) "r >= t and t >= r" true
    (Tuple.more_informative r t' && Tuple.more_informative t' r);
  Alcotest.check tuple "then r = t" r t'

let test_meet () =
  Alcotest.check tuple "meet with disjoint attrs is null tuple" Tuple.empty
    (Tuple.meet a_only b_only);
  Alcotest.check tuple "meet keeps agreements" a_only
    (Tuple.meet ab (t [ ("A", i 1); ("B", i 99) ]));
  Alcotest.check tuple "meet with itself" ab (Tuple.meet ab ab);
  Alcotest.check tuple "meet commutes" (Tuple.meet ab conflicting)
    (Tuple.meet conflicting ab);
  (* Footnote 4: whether ni = ni is immaterial — meets never bind nulls. *)
  Alcotest.check tuple "meet of null-extended tuples" b_only
    (Tuple.meet (t [ ("B", i 2) ]) (t [ ("B", i 2); ("C", Value.Null) ]))

let test_meet_is_glb () =
  let m = Tuple.meet ab conflicting in
  Alcotest.(check bool) "meet below left" true (Tuple.more_informative ab m);
  Alcotest.(check bool) "meet below right" true
    (Tuple.more_informative conflicting m);
  Alcotest.check tuple "the common part" b_only m

let test_joinable () =
  Alcotest.(check bool) "disjoint tuples joinable" true
    (Tuple.joinable a_only b_only);
  Alcotest.(check bool) "agreeing tuples joinable" true
    (Tuple.joinable ab a_only);
  Alcotest.(check bool) "conflicting tuples not joinable" false
    (Tuple.joinable ab conflicting);
  Alcotest.(check bool) "null tuple joinable with all" true
    (Tuple.joinable Tuple.empty conflicting)

let test_join () =
  Alcotest.(check (option tuple)) "join of parts" (Some ab)
    (Tuple.join a_only b_only);
  Alcotest.(check (option tuple)) "join with subsumed" (Some ab)
    (Tuple.join ab a_only);
  Alcotest.(check (option tuple)) "join of conflict" None
    (Tuple.join ab conflicting);
  Alcotest.(check (option tuple)) "join with null tuple" (Some ab)
    (Tuple.join ab Tuple.empty)

let test_join_is_lub () =
  match Tuple.join a_only b_only with
  | None -> Alcotest.fail "expected joinable"
  | Some j ->
      Alcotest.(check bool) "join above left" true
        (Tuple.more_informative j a_only);
      Alcotest.(check bool) "join above right" true
        (Tuple.more_informative j b_only);
      (* Least: any upper bound of both is above the join. *)
      let upper = t [ ("A", i 1); ("B", i 2); ("C", i 3) ] in
      Alcotest.(check bool) "join is least" true
        (Tuple.more_informative upper j)

let test_restrict_remove () =
  Alcotest.check tuple "restrict to A" a_only (Tuple.restrict ab (aset [ "A" ]));
  Alcotest.check tuple "restrict to absent attr" Tuple.empty
    (Tuple.restrict ab (aset [ "Z" ]));
  Alcotest.check tuple "remove B" a_only (Tuple.remove ab (aset [ "B" ]));
  Alcotest.check tuple "remove nothing" ab (Tuple.remove ab Attr.Set.empty)

let test_rename () =
  let renamed = Tuple.rename [ (a_ "A", a_ "X") ] ab in
  Alcotest.check tuple "A renamed to X" (t [ ("X", i 1); ("B", i 2) ]) renamed;
  Alcotest.check tuple "swap via disjoint targets"
    (t [ ("B", i 1); ("C", i 2) ])
    (Tuple.rename [ (a_ "A", a_ "B"); (a_ "B", a_ "C") ] ab);
  Alcotest.check_raises "collision rejected"
    (Exec_error.Error
       (Exec_error.Bad_input "Tuple.rename: collision on attribute B"))
    (fun () ->
      ignore (Tuple.rename [ (a_ "A", a_ "B") ] conflicting))

let test_fold_to_list () =
  Alcotest.(check int) "fold counts bindings" 2
    (Tuple.fold (fun _ _ n -> n + 1) ab 0);
  Alcotest.(check int) "to_list length" 2 (List.length (Tuple.to_list ab));
  (* bindings come out in attribute order *)
  Alcotest.(check (list string)) "attribute order" [ "A"; "B" ]
    (List.map (fun (a, _) -> Attr.name a) (Tuple.to_list ab))

let suite =
  [
    Alcotest.test_case "canonical form" `Quick test_canonical_form;
    Alcotest.test_case "attrs and X-totality" `Quick test_attrs_and_totality;
    Alcotest.test_case "more-informative order" `Quick test_order_basics;
    Alcotest.test_case "antisymmetry on canonical form" `Quick
      test_antisymmetry;
    Alcotest.test_case "meet" `Quick test_meet;
    Alcotest.test_case "meet is the glb" `Quick test_meet_is_glb;
    Alcotest.test_case "joinability" `Quick test_joinable;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join is the lub" `Quick test_join_is_lub;
    Alcotest.test_case "restrict and remove" `Quick test_restrict_remove;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "fold and to_list" `Quick test_fold_to_list;
  ]
