(* Views: unfolding, schemas, materialization and their agreement. *)

open Nullrel
open Helpers

let s_schema =
  Schema.make "S" ~key:[ "S#" ]
    [
      ("S#", Domain.Strings);
      ("STATUS", Domain.Int_range (0, 100));
      ("CITY", Domain.Enum [ "London"; "Paris" ]);
    ]

let sp_schema =
  Schema.make "SP"
    [ ("S#", Domain.Strings); ("P#", Domain.Strings); ("QTY", Domain.Ints) ]

let suppliers =
  x
    [
      t [ ("S#", s "s1"); ("STATUS", i 20); ("CITY", s "London") ];
      t [ ("S#", s "s2"); ("STATUS", i 10); ("CITY", s "Paris") ];
      t [ ("S#", s "s3"); ("STATUS", i 30) ];
    ]

let shipments =
  x
    [
      t [ ("S#", s "s1"); ("P#", s "p1"); ("QTY", i 300) ];
      t [ ("S#", s "s2"); ("P#", s "p2"); ("QTY", i 100) ];
      t [ ("S#", s "s3"); ("P#", s "p1"); ("QTY", i 50) ];
    ]

let db : Quel.Resolve.db = [ ("S", (s_schema, suppliers)); ("SP", (sp_schema, shipments)) ]

let views : Plan.View.env =
  [
    ( "LONDONERS",
      Quel.Parser.parse
        "range of u is S retrieve (u.S#, u.STATUS) where u.CITY = \"London\"" );
    ( "BIG_SHIPMENTS",
      Quel.Parser.parse
        "range of sp is SP retrieve (sp.S#, sp.P#) where sp.QTY >= 100" );
    (* a view over a view *)
    ( "LONDON_SENIORS",
      Quel.Parser.parse
        "range of l is LONDONERS retrieve (l.S#) where l.STATUS >= 15" );
  ]

let run_with_views src =
  let q = Plan.View.expand ~views (Quel.Parser.parse src) in
  (Quel.Eval.run db q).Quel.Eval.rel

let test_expand_simple () =
  check_xrel "query through a view"
    (x [ t [ ("S#", s "s1") ] ])
    (run_with_views
       "range of l is LONDONERS retrieve (l.S#) where l.STATUS >= 15");
  (* the view's own qualification applies: s2 (Paris) never appears *)
  check_xrel "view filters apply"
    (x [ t [ ("S#", s "s1"); ("STATUS", i 20) ] ])
    (run_with_views "range of l is LONDONERS retrieve (l.S#, l.STATUS)")

let test_expand_join_of_view_and_base () =
  check_xrel "join a view against a base relation"
    (x [ t [ ("P#", s "p1") ] ])
    (run_with_views
       "range of l is LONDONERS range of sp is SP retrieve (sp.P#) \
        where l.S# = sp.S#")

let test_nested_views () =
  check_xrel "view over view"
    (x [ t [ ("S#", s "s1") ] ])
    (run_with_views "range of v is LONDON_SENIORS retrieve (v.S#)")

let test_queries_without_views_untouched () =
  let q = Quel.Parser.parse "range of u is S retrieve (u.S#)" in
  Alcotest.(check bool) "no-op expansion" true (Plan.View.expand ~views q == q)

let test_expand_matches_materialize () =
  let db' = Plan.View.db_with_views db ~views in
  List.iter
    (fun src ->
      let unfolded = run_with_views src in
      let materialized =
        (Quel.Eval.run db' (Quel.Parser.parse src)).Quel.Eval.rel
      in
      check_xrel src unfolded materialized)
    [
      "range of l is LONDONERS retrieve (l.S#, l.STATUS)";
      "range of v is LONDON_SENIORS retrieve (v.S#)";
      "range of b is BIG_SHIPMENTS retrieve (b.P#)";
      "range of l is LONDONERS range of b is BIG_SHIPMENTS retrieve (l.S#) \
       where l.S# = b.S#";
    ]

let test_view_schema () =
  let schema = Plan.View.view_schema db ~views "LONDONERS" in
  Alcotest.(check (list string)) "columns" [ "S#"; "STATUS" ]
    (List.map Attr.name (Schema.attrs schema));
  Alcotest.(check bool) "STATUS keeps its base domain" true
    (Schema.domain schema (a_ "STATUS") = Some (Domain.Int_range (0, 100)))

let test_errors () =
  Alcotest.(check bool) "unknown view column" true
    (try
       ignore (run_with_views "range of l is LONDONERS retrieve (l.CITY)");
       false
     with Plan.View.Error _ -> true);
  let cyclic : Plan.View.env =
    [
      ("V1", Quel.Parser.parse "range of v is V2 retrieve (v.A)");
      ("V2", Quel.Parser.parse "range of v is V1 retrieve (v.A)");
    ]
  in
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore
         (Plan.View.expand ~views:cyclic
            (Quel.Parser.parse "range of v is V1 retrieve (v.A)"));
       false
     with Plan.View.Cycle _ -> true);
  let ambiguous : Plan.View.env =
    [
      ( "AMB",
        Quel.Parser.parse
          "range of a is S range of b is S retrieve (a.S#, b.S#)" );
    ]
  in
  Alcotest.(check bool) "ambiguous view targets rejected" true
    (try
       ignore
         (Plan.View.expand ~views:ambiguous
            (Quel.Parser.parse "range of v is AMB retrieve (v.S#)"));
       false
     with Plan.View.Error _ -> true)

(* Regression: the view-name and column lookups used to be bare
   [List.assoc], so an unknown name escaped as [Not_found] instead of a
   classified [View.Error]. *)
let test_unknown_lookups_classified () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let error_of f =
    try
      ignore (f ());
      None
    with Plan.View.Error msg -> Some msg
  in
  (match error_of (fun () -> Plan.View.view_schema db ~views "NOPE") with
  | Some msg ->
      Alcotest.(check bool) "schema error names the view" true
        (contains msg "NOPE")
  | None -> Alcotest.fail "view_schema on unknown view did not raise");
  Alcotest.(check bool) "materialize on unknown view" true
    (error_of (fun () -> Plan.View.materialize db ~views "NOPE") <> None);
  match
    error_of (fun () ->
        run_with_views "range of l is LONDONERS retrieve (l.NO_SUCH)")
  with
  | Some msg ->
      Alcotest.(check bool) "column error names view and column" true
        (contains msg "LONDONERS" && contains msg "NO_SUCH")
  | None -> Alcotest.fail "unknown column did not raise"

let suite =
  [
    Alcotest.test_case "simple expansion" `Quick test_expand_simple;
    Alcotest.test_case "view joined with base" `Quick
      test_expand_join_of_view_and_base;
    Alcotest.test_case "nested views" `Quick test_nested_views;
    Alcotest.test_case "view-free queries untouched" `Quick
      test_queries_without_views_untouched;
    Alcotest.test_case "unfolding = materialization" `Quick
      test_expand_matches_materialize;
    Alcotest.test_case "view schemas" `Quick test_view_schema;
    Alcotest.test_case "errors and cycles" `Quick test_errors;
    Alcotest.test_case "unknown lookups are classified" `Quick
      test_unknown_lookups_classified;
  ]
