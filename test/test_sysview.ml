(* The queryable system catalog: sys_* virtual relations, their honest
   use of ni, the read-only namespace, the history ring, and the
   structured trace export. *)

open Nullrel
open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test touches the process-wide obs registries; restore the
   disabled-by-default state on the way out. *)
let with_obs f =
  Obs.Metrics.set_enabled true;
  Obs.Span.set_enabled true;
  Obs.History.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.History.set_enabled false;
      Obs.History.clear ();
      Obs.History.configure ~interval:50_000 ~capacity:64 ();
      Obs.Span.clear_events ();
      Obs.Span.clear_slow_log ();
      Obs.Span.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ();
      Sysview.Trace.clear_aborts ())
    f

let feed inputs =
  List.fold_left
    (fun (st, outputs) input ->
      let st, out = Shell.exec st input in
      (st, out :: outputs))
    (Shell.initial, []) inputs
  |> fun (st, outputs) -> (st, List.rev outputs)

let run_sys ?dir cat src =
  let db = Storage.Catalog.to_db cat @ Sysview.db ?dir cat in
  Quel.Eval.run_string db src

(* ------------------------- shape checks ------------------------ *)

let test_names_and_schemas () =
  Alcotest.(check int) "ten relations" 10 (List.length Sysview.names);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is sys") true (Sysview.is_sys n);
      Alcotest.(check bool)
        (n ^ " has a schema") true
        (List.exists (fun s_ -> Schema.name s_ = n) Sysview.schemas))
    Sysview.names;
  Alcotest.(check bool) "user names are not sys" false (Sysview.is_sys "EMP");
  let db = Sysview.db Storage.Catalog.empty in
  Alcotest.(check (list string))
    "db materializes every name in order" Sysview.names (List.map fst db);
  (* Schema/scope agreement: every materialized tuple stays inside its
     schema's attribute set. *)
  List.iter
    (fun (name, (schema, x)) ->
      let attrs = Attr.set_of_list (List.map Attr.name (Schema.attrs schema)) in
      Alcotest.(check bool)
        (name ^ " scope within schema")
        true
        (Attr.Set.subset (Xrel.scope x) attrs))
    db

(* --------------------- ni conventions ------------------------- *)

let test_metrics_ni_conventions () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter ~help:"t" "test_sysview_total" in
      let h = Obs.Metrics.histogram ~help:"t" "test_sysview_sizes" in
      Obs.Metrics.add c 7;
      Obs.Metrics.observe h 3;
      Obs.Metrics.observe h 100;
      let _, (_, x) = Sysview.sys_metrics () in
      let find name =
        List.find
          (fun t_ -> Tuple.get t_ (a_ "NAME") = Value.Str name)
          (Xrel.to_list x)
      in
      let crow = find "test_sysview_total" in
      Alcotest.check value "counter VALUE" (Value.Float 7.)
        (Tuple.get crow (a_ "VALUE"));
      Alcotest.check value "counter SUM is ni" Value.Null
        (Tuple.get crow (a_ "SUM"));
      Alcotest.check value "counter COUNT is ni" Value.Null
        (Tuple.get crow (a_ "COUNT"));
      let hrow = find "test_sysview_sizes" in
      Alcotest.check value "histogram VALUE is ni" Value.Null
        (Tuple.get hrow (a_ "VALUE"));
      Alcotest.check value "histogram SUM" (Value.Int 103)
        (Tuple.get hrow (a_ "SUM"));
      Alcotest.check value "histogram COUNT" (Value.Int 2)
        (Tuple.get hrow (a_ "COUNT")))

let test_histogram_buckets () =
  with_obs (fun () ->
      let h = Obs.Metrics.histogram ~help:"t" "test_sysview_buckets" in
      Obs.Metrics.observe h 1;
      Obs.Metrics.observe h 1;
      Obs.Metrics.observe h 1000;
      let _, (_, x) = Sysview.sys_histograms () in
      let rows =
        List.filter
          (fun t_ ->
            Tuple.get t_ (a_ "NAME") = Value.Str "test_sysview_buckets")
          (Xrel.to_list x)
      in
      Alcotest.(check bool) "has rows" true (rows <> []);
      (* The +Inf row closes every histogram and carries the total. *)
      let inf =
        List.find (fun t_ -> Tuple.get t_ (a_ "LE") = Value.Str "+Inf") rows
      in
      Alcotest.check value "cumulative total" (Value.Int 3)
        (Tuple.get inf (a_ "CUMULATIVE")))

let test_columns_ni_when_unanalyzed () =
  let cat =
    Storage.Catalog.add Storage.Catalog.empty
      (Schema.make "R" [ ("A", Domain.Ints) ])
      (x [ Tuple.of_strings [ ("A", i 1) ] ])
  in
  let _, (_, cols) = Sysview.sys_columns cat in
  match Xrel.to_list cols with
  | [ t_ ] ->
      Alcotest.check value "NULLS is ni" Value.Null (Tuple.get t_ (a_ "NULLS"));
      Alcotest.check value "MIN is ni" Value.Null (Tuple.get t_ (a_ "MIN"))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 column row, got %d"
                          (List.length l))

(* --------------------- read-only namespace --------------------- *)

let test_writes_rejected () =
  let reject src =
    match Dml.exec_string Storage.Catalog.empty src with
    | exception Exec_error.Error _ -> ()
    | _ -> Alcotest.fail (src ^ " should have been rejected")
  in
  reject "append to sys_metrics (NAME = \"x\")";
  reject "range of v is sys_metrics delete v";
  reject "range of v is sys_metrics replace v (NAME = \"x\")";
  reject "constrain notnull sys_metrics (NAME)"

let test_shell_load_refused () =
  let _, outputs = feed [ ".load sys_thing /nonexistent.csv" ] in
  match outputs with
  | [ out ] ->
      Alcotest.(check bool) "refused" true (contains out "read-only")
  | _ -> Alcotest.fail "expected one output"

(* ----------------- the acceptance-criteria queries ------------- *)

(* "Which relations have stale stats or unverified constraints?" as a
   plain Quel query over sys_relations — no dot-commands involved. *)
let test_stale_and_unverified_query () =
  let r_schema = Schema.make "R" [ ("A", Domain.Ints) ] in
  let s_schema = Schema.make "S" [ ("B", Domain.Ints) ] in
  let cat =
    Storage.Catalog.add
      (Storage.Catalog.add Storage.Catalog.empty r_schema (x [ Tuple.of_strings [ ("A", i 1) ] ]))
      s_schema
      (x [ Tuple.of_strings [ ("B", i 2) ] ])
  in
  (* R: analyzed, then changed — stale. S: never analyzed — missing. *)
  let cat =
    Storage.Catalog.set_stats cat "R"
      (Stats.collect ~attrs:[ a_ "A" ] (Storage.Catalog.relation cat "R"))
  in
  let cat =
    Storage.Catalog.set_relation cat "R" (x [ Tuple.of_strings [ ("A", i 1) ]; Tuple.of_strings [ ("A", i 2) ] ])
  in
  let stale =
    run_sys cat
      "range of r is sys_relations retrieve (r.NAME) where r.STATS = \"stale\""
  in
  Alcotest.(check (list string))
    "stale relations" [ "R" ]
    (List.map
       (fun t_ -> Value.to_string (Tuple.get t_ (a_ "NAME")))
       (Xrel.to_list stale.Quel.Eval.rel));
  (* An unverified constraint (attached as after-crash recovery does)
     shows up in both sys_constraints and the per-relation counter. *)
  let def = Constr.Unique { name = "r_key"; rel = "R"; attrs = [ a_ "A" ] } in
  let cat = Storage.Catalog.attach_constraint ~verified:false cat def in
  let unver =
    run_sys cat
      "range of r is sys_relations retrieve (r.NAME, r.UNVERIFIED) where r.UNVERIFIED > 0"
  in
  (match Xrel.to_list unver.Quel.Eval.rel with
  | [ t_ ] ->
      Alcotest.check value "name" (Value.Str "R") (Tuple.get t_ (a_ "NAME"))
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected one unverified row, got %d" (List.length l)));
  let verified_col =
    run_sys cat
      "range of c is sys_constraints retrieve (c.NAME, c.VERIFIED) where c.NAME = \"r_key\""
  in
  match Xrel.to_list verified_col.Quel.Eval.rel with
  | [ t_ ] ->
      Alcotest.check value "verified flag" (Value.Bool false)
        (Tuple.get t_ (a_ "VERIFIED"))
  | _ -> Alcotest.fail "expected the constraint row"

(* "p99 commit latency over the last N snapshots" — the history ring
   flattens histograms into _p99 series, so it's a plain retrieve. *)
let test_history_p99_query () =
  with_obs (fun () ->
      (* a huge interval: only the explicit snap_now calls snapshot —
         materializing sysview itself charges ticks (minimization runs
         under the governor), which would otherwise push extra snaps *)
      Obs.History.configure ~interval:100_000_000 ~capacity:8 ();
      let h = Obs.Metrics.histogram ~help:"t" "test_sysview_commit_us" in
      for k = 1 to 3 do
        Obs.Metrics.observe h (100 * k);
        Obs.History.snap_now ()
      done;
      let r =
        run_sys Storage.Catalog.empty
          "range of s is sys_metrics_history retrieve (s.SEQ, s.VALUE) where s.NAME = \"test_sysview_commit_us_p99\""
      in
      let rows = Xrel.to_list r.Quel.Eval.rel in
      Alcotest.(check int) "one row per snapshot" 3 (List.length rows);
      List.iter
        (fun t_ ->
          match Tuple.get t_ (a_ "VALUE") with
          | Value.Float v ->
              Alcotest.(check bool) "p99 positive" true (v > 0.)
          | v ->
              Alcotest.failf "p99 should be a float, got %s" (Value.to_string v))
        rows)

(* ------------------------ history ring ------------------------- *)

let test_history_ring_bounded () =
  with_obs (fun () ->
      Obs.History.configure ~interval:1000 ~capacity:4 ();
      for _ = 1 to 10 do
        Obs.History.snap_now ()
      done;
      let entries = Obs.History.entries () in
      Alcotest.(check int) "capacity respected" 4 (List.length entries);
      let seqs = List.map (fun s_ -> s_.Obs.History.seq) entries in
      Alcotest.(check (list int)) "latest snapshots, oldest first"
        [ 6; 7; 8; 9 ] seqs;
      (* charge-driven snapshots fire every [interval] ticks *)
      Obs.History.clear ();
      Obs.History.configure ~interval:10 ~capacity:4 ();
      for _ = 1 to 25 do
        Obs.History.charge 1
      done;
      Alcotest.(check int) "two interval crossings" 2
        (List.length (Obs.History.entries ())))

let test_history_disabled_is_inert () =
  Obs.History.clear ();
  Obs.History.set_enabled false;
  Obs.History.charge 1_000_000;
  Obs.History.snap_now ();
  Alcotest.(check int) "no snapshots when off" 0
    (List.length (Obs.History.entries ()))

(* ----------------------- durable columns ----------------------- *)

let test_wal_and_crc_columns () =
  let dir = Filename.temp_file "nullrel_sysview" "" in
  Sys.remove dir;
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cat =
        Storage.Catalog.add Storage.Catalog.empty
          (Schema.make "R" [ ("A", Domain.Ints) ])
          (x [ Tuple.of_strings [ ("A", i 1) ] ])
      in
      Storage.Persist.save ~dir cat;
      let d, _ = Dml.open_durable ~dir () in
      let d, _ = Dml.exec_durable_string d "append to R (A = 2)" in
      let cat = Dml.durable_catalog d in
      (* The checkpointed relation has CRCs; the journaled append shows
         in sys_wal with its tuple delta. *)
      let crc =
        run_sys ~dir cat
          "range of r is sys_relations retrieve (r.NAME, r.DATA_CRC)"
      in
      (match Xrel.to_list crc.Quel.Eval.rel with
      | [ t_ ] ->
          Alcotest.(check bool)
            "data crc known" true
            (Tuple.get t_ (a_ "DATA_CRC") <> Value.Null)
      | _ -> Alcotest.fail "expected one relation row");
      let wal =
        run_sys ~dir cat
          "range of w is sys_wal retrieve (w.OP, w.REL, w.ADDED) where w.REL = \"R\""
      in
      match Xrel.to_list wal.Quel.Eval.rel with
      | [ t_ ] ->
          Alcotest.check value "op" (Value.Str "change")
            (Tuple.get t_ (a_ "OP"));
          Alcotest.check value "added" (Value.Int 1)
            (Tuple.get t_ (a_ "ADDED"))
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected one wal row, got %d" (List.length l)))

(* --------------------------- .monitor -------------------------- *)

let test_shell_monitor () =
  with_obs (fun () ->
      let _, outputs =
        feed [ ".monitor on"; "range of m is sys_metrics retrieve (m.NAME)";
               ".monitor"; ".monitor off"; ".monitor bogus extra" ]
      in
      match outputs with
      | [ on; _query; monitor; off; usage ] ->
          Alcotest.(check bool) "on confirms" true (contains on "history on");
          Alcotest.(check bool) "shows header" true (contains monitor "monitor:");
          Alcotest.(check bool) "shows sessions" true (contains monitor "sessions");
          Alcotest.(check bool) "shows history" true (contains monitor "history");
          Alcotest.(check bool) "off confirms" true (contains off "history off");
          Alcotest.(check bool) "usage on junk" true (contains usage "usage")
      | _ -> Alcotest.fail "expected five outputs")

let test_shell_sys_query_and_join () =
  with_obs (fun () ->
      let _, outputs =
        feed
          [
            "range of m is sys_metrics retrieve (m.NAME, m.KIND) where m.KIND \
             = \"histogram\"";
            (* joinable against other sys relations like user data *)
            "range of m is sys_metrics range of h is sys_histograms retrieve \
             (h.NAME, h.LE) where m.NAME = h.NAME and m.KIND = \"histogram\" \
             and h.LE = \"+Inf\"";
            ".schema sys_sessions";
          ]
      in
      match outputs with
      | [ kinds; join; schema ] ->
          Alcotest.(check bool) "histograms listed" true
            (contains kinds "nullrel_minimize_input_tuples");
          Alcotest.(check bool) "join produced +Inf rows" true
            (contains join "+Inf");
          Alcotest.(check bool) "schema renders" true
            (contains schema "SNAP_LSN")
      | _ -> Alcotest.fail "expected three outputs")

(* ------------------------- trace export ------------------------ *)

let test_trace_escape () =
  Alcotest.(check string)
    "quote, backslash, newline" "a\\\"b\\\\c\\nd"
    (Sysview.Trace.escape "a\"b\\c\nd");
  Alcotest.(check string)
    "control characters" "tab\\tbell\\u0007"
    (Sysview.Trace.escape "tab\tbell\007")

let test_trace_dump_jsonl () =
  with_obs (fun () ->
      Sysview.Trace.clear_aborts ();
      Sysview.Trace.note_abort ~kind:"governor"
        ~detail:"budget \"exceeded\"\nline two";
      Obs.Span.with_span "trace.test" (fun () -> ());
      let dump = Sysview.Trace.dump () in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' dump)
      in
      Alcotest.(check int) "one span + one abort" 2 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool) "flat object" true
            (String.length line > 2
            && line.[0] = '{'
            && line.[String.length line - 1] = '}'))
        lines;
      Alcotest.(check bool) "span line" true
        (contains dump "{\"type\":\"span\",\"label\":\"trace.test\"");
      Alcotest.(check bool) "abort line escapes detail" true
        (contains dump "budget \\\"exceeded\\\"\\nline two");
      (* write_file publishes atomically (no .tmp left behind) *)
      let path = Filename.temp_file "nullrel_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          Sysview.Trace.write_file path;
          Alcotest.(check bool) "no tmp sibling" false
            (Sys.file_exists (path ^ ".tmp"));
          let ic = open_in path in
          let len = in_channel_length ic in
          let contents = really_input_string ic len in
          close_in ic;
          Alcotest.(check string) "file is the dump" dump contents))

let suite =
  [
    Alcotest.test_case "names and schemas" `Quick test_names_and_schemas;
    Alcotest.test_case "metrics ni conventions" `Quick
      test_metrics_ni_conventions;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "unanalyzed columns are ni" `Quick
      test_columns_ni_when_unanalyzed;
    Alcotest.test_case "writes rejected" `Quick test_writes_rejected;
    Alcotest.test_case "shell .load refused" `Quick test_shell_load_refused;
    Alcotest.test_case "stale stats and unverified constraints query" `Quick
      test_stale_and_unverified_query;
    Alcotest.test_case "p99 over history snapshots" `Quick
      test_history_p99_query;
    Alcotest.test_case "history ring bounded" `Quick test_history_ring_bounded;
    Alcotest.test_case "history disabled is inert" `Quick
      test_history_disabled_is_inert;
    Alcotest.test_case "wal and crc columns" `Quick test_wal_and_crc_columns;
    Alcotest.test_case "shell .monitor" `Quick test_shell_monitor;
    Alcotest.test_case "shell sys queries and joins" `Quick
      test_shell_sys_query_and_join;
    Alcotest.test_case "trace escaping" `Quick test_trace_escape;
    Alcotest.test_case "trace dump is JSONL" `Quick test_trace_dump_jsonl;
  ]
