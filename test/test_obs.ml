(* The observability layer: metrics registry, span tracing, and the
   [.explain analyze] rendering built on them. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test runs against the process-wide registry, so each one
   restores the disabled-by-default state on the way out. *)
let with_obs f =
  Obs.Metrics.set_enabled true;
  Obs.Span.set_enabled true;
  Obs.Span.set_clock (Some (fun () -> 0.));
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_clock None;
      Obs.Span.clear_events ();
      Obs.Span.clear_slow_log ();
      Obs.Span.set_slow_threshold None;
      Obs.Span.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_bucket_edges () =
  let check v expect =
    Alcotest.(check int)
      (Printf.sprintf "bucket_index %d" v)
      expect
      (Obs.Metrics.bucket_index v)
  in
  check 0 0;
  check (-7) 0;
  check 1 1;
  check 2 2;
  check 3 2;
  check 4 3;
  check 7 3;
  check 8 4;
  check max_int 62

let test_disabled_is_inert () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~help:"t" "test_obs_inert_total" in
  let h = Obs.Metrics.histogram ~help:"t" "test_obs_inert_sizes" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 5;
  Obs.Metrics.observe h 42;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h)

let test_registry_updates_and_reset () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter ~help:"t" "test_obs_reset_total" in
      let c' = Obs.Metrics.counter ~help:"t" "test_obs_reset_total" in
      let h = Obs.Metrics.histogram ~help:"t" "test_obs_reset_sizes" in
      Obs.Metrics.inc c;
      Obs.Metrics.add c' 2;
      Alcotest.(check int) "registration is idempotent" 3
        (Obs.Metrics.counter_value c);
      Obs.Metrics.observe h 5;
      Obs.Metrics.observe h 0;
      Alcotest.(check int) "observations counted" 2
        (Obs.Metrics.histogram_count h);
      Alcotest.(check int) "sum accumulates" 5 (Obs.Metrics.histogram_sum h);
      Alcotest.(check int) "5 lands in bucket 3" 1
        (Obs.Metrics.bucket_count h 3);
      Alcotest.(check int) "0 lands in bucket 0" 1
        (Obs.Metrics.bucket_count h 0);
      Obs.Metrics.reset ();
      Alcotest.(check int) "reset zeroes the counter" 0
        (Obs.Metrics.counter_value c);
      Alcotest.(check int) "reset zeroes the histogram" 0
        (Obs.Metrics.histogram_count h);
      Obs.Metrics.inc c;
      Alcotest.(check int) "registration survives reset" 1
        (Obs.Metrics.counter_value c);
      Alcotest.check_raises "kind mismatch is rejected"
        (Invalid_argument
           "Obs.Metrics: test_obs_reset_total registered as both counter \
            and gauge") (fun () ->
          ignore (Obs.Metrics.gauge ~help:"t" "test_obs_reset_total")))

let test_span_closes_on_exec_error () =
  with_obs (fun () ->
      (try
         Obs.Span.with_span "doomed" (fun () ->
             Nullrel.Exec_error.raise_
               (Nullrel.Exec_error.Timeout { limit_s = 0.1 }))
       with Nullrel.Exec_error.Error _ -> ());
      Alcotest.(check (option string))
        "span stack empty after the raise" None
        (Obs.Span.current_label ());
      match Obs.Span.events () with
      | [ e ] -> Alcotest.(check string) "event recorded" "doomed" e.label
      | es ->
          Alcotest.fail
            (Printf.sprintf "expected one event, got %d" (List.length es)))

let test_span_inclusive_ticks () =
  with_obs (fun () ->
      let (), _ =
        Obs.Span.timed "parent" (fun () ->
            Obs.Span.charge 1;
            let (), inner =
              Obs.Span.timed "child" (fun () -> Obs.Span.charge 4)
            in
            Alcotest.(check int) "child measures its own ticks" 4
              inner.Obs.Span.ticks;
            Obs.Span.charge 2)
      in
      match Obs.Span.events () with
      | [ child; parent ] ->
          Alcotest.(check string) "child closes first" "child" child.label;
          Alcotest.(check int) "child depth" 1 child.depth;
          Alcotest.(check int) "parent ticks are inclusive" 7 parent.ticks
      | es ->
          Alcotest.fail
            (Printf.sprintf "expected two events, got %d" (List.length es)))

let test_prometheus_dump () =
  with_obs (fun () ->
      let c =
        Obs.Metrics.counter
          ~labels:[ ("op", "meet") ]
          ~help:"Test counter" "test_obs_dump_total"
      in
      let h = Obs.Metrics.histogram ~help:"Test sizes" "test_obs_dump_sizes" in
      Obs.Metrics.add c 3;
      Obs.Metrics.observe h 6;
      Obs.Metrics.observe h 7;
      let dump = Obs.Metrics.dump_prometheus () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("dump contains " ^ needle) true
            (contains dump needle))
        [
          "# HELP test_obs_dump_total Test counter";
          "# TYPE test_obs_dump_total counter";
          "test_obs_dump_total{op=\"meet\"} 3";
          "# TYPE test_obs_dump_sizes histogram";
          (* 6 and 7 both have 3 significant bits: bucket le = 2^3-1 *)
          "test_obs_dump_sizes_bucket{le=\"7\"} 2";
          "test_obs_dump_sizes_bucket{le=\"+Inf\"} 2";
          "test_obs_dump_sizes_sum 13";
          "test_obs_dump_sizes_count 2";
        ])

(* Prometheus escaping: a label value escapes backslash, double-quote
   and newline — and nothing else (no OCaml-style decimal or \t
   escapes); HELP text escapes backslash and newline only. *)
let test_prometheus_escaping () =
  Alcotest.(check string)
    "label escaping"
    "a\\\\b\\\"c\\nd\te"
    (Obs.Metrics.escape_label_value "a\\b\"c\nd\te");
  with_obs (fun () ->
      let c =
        Obs.Metrics.counter
          ~labels:[ ("path", "C:\\tmp\"x\"\nend") ]
          ~help:"multi\nline \\ help" "test_obs_escape_total"
      in
      Obs.Metrics.inc c;
      let dump = Obs.Metrics.dump_prometheus () in
      Alcotest.(check bool) "label line escaped" true
        (contains dump
           "test_obs_escape_total{path=\"C:\\\\tmp\\\"x\\\"\\nend\"} 1");
      Alcotest.(check bool) "help line escaped" true
        (contains dump "# HELP test_obs_escape_total multi\\nline \\\\ help");
      (* the raw newline must not survive into the exposition text *)
      Alcotest.(check bool) "no raw newline in label" false
        (contains dump "x\"\nend"))

let test_snapshot_and_quantiles () =
  with_obs (fun () ->
      let h = Obs.Metrics.histogram ~help:"t" "test_obs_snap_sizes" in
      Obs.Metrics.observe h 1;
      Obs.Metrics.observe h 2;
      Obs.Metrics.observe h 1000;
      let info =
        List.find
          (fun (i : Obs.Metrics.info) ->
            i.Obs.Metrics.i_name = "test_obs_snap_sizes")
          (Obs.Metrics.snapshot ())
      in
      (match info.Obs.Metrics.i_value with
      | Obs.Metrics.Histogram_v { sum; count; counts } ->
          Alcotest.(check int) "sum" 1003 sum;
          Alcotest.(check int) "count" 3 count;
          (* p50 lands in the bucket of 2, p99 in the bucket of 1000 *)
          (match Obs.Metrics.quantile_of_counts counts 0.5 with
          | Some q -> Alcotest.(check bool) "p50 small" true (q <= 3.)
          | None -> Alcotest.fail "p50 missing");
          (match Obs.Metrics.quantile_of_counts counts 0.99 with
          | Some q -> Alcotest.(check bool) "p99 large" true (q >= 1000.)
          | None -> Alcotest.fail "p99 missing")
      | _ -> Alcotest.fail "expected a histogram snapshot");
      Alcotest.(check (option (float 0.)))
        "empty histogram has no quantiles" None
        (Obs.Metrics.quantile_of_counts (Array.make Obs.Metrics.buckets 0) 0.5))

let test_explain_analyze_shape () =
  with_obs (fun () ->
      let path = Filename.temp_file "nullrel_obs" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let out = open_out path in
          output_string out "S#,P#\ns1,p1\ns2,p1\ns3,p2\n";
          close_out out;
          let st, _ =
            Shell.exec Shell.initial (Printf.sprintf ".load PS %s" path)
          in
          let _, out =
            Shell.exec st
              ".explain analyze range of p is PS retrieve (p.S#) where \
               p.P# = \"p1\""
          in
          let lines = String.split_on_char '\n' out in
          (match lines with
          | sem_line :: header :: _ ->
              Alcotest.(check bool) "semantics line" true
                (contains sem_line "semantics: ni");
              Alcotest.(check bool) "header row" true
                (contains header "operator" && contains header "est"
                && contains header "actual" && contains header "ticks"
                && contains header "ms")
          | _ -> Alcotest.fail "expected semantics line and header");
          List.iter
            (fun op ->
              Alcotest.(check bool) ("plan shows " ^ op) true
                (contains out op))
            [ "project"; "select"; "PS" ];
          (* The scan leaf: est from live catalog stats, actual from the
             run -- both are the 3 loaded tuples. *)
          let leaf =
            List.find_opt (fun l -> contains l "PS") lines
            |> Option.value ~default:""
          in
          Alcotest.(check bool) "leaf est=3 actual=3 from live stats" true
            (contains leaf "3");
          (* Pinned clock: every per-node wall time renders as 0.0. *)
          Alcotest.(check bool) "no nonzero ms under the pinned clock" true
            (not (contains out "0.1"))))

let suite =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "disabled updates are inert" `Quick
      test_disabled_is_inert;
    Alcotest.test_case "registry updates and reset" `Quick
      test_registry_updates_and_reset;
    Alcotest.test_case "span closes under Exec_error" `Quick
      test_span_closes_on_exec_error;
    Alcotest.test_case "span ticks are inclusive" `Quick
      test_span_inclusive_ticks;
    Alcotest.test_case "prometheus dump is well-formed" `Quick
      test_prometheus_dump;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "snapshot and quantiles" `Quick
      test_snapshot_and_quantiles;
    Alcotest.test_case "explain analyze shape" `Quick
      test_explain_analyze_shape;
  ]
