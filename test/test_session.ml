(* The concurrent session layer: snapshot isolation, group commit,
   conflict validation, admission control, crash-fault drills — plus
   the storage-layer robustness satellites (seeded retry jitter, named
   crash points, torn group batches). *)

open Nullrel

let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_dir f =
  let dir = temp_dir "nullrel_session" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let open_seeded ?config dir =
  Session.Drive.seed ~dir ();
  let eng, _ = Session.open_engine ?config ~dir () in
  eng

let counter_of eng =
  Session.Drive.counter_value (Session.engine_snapshot eng).Session.catalog

let events_of eng =
  Session.Drive.events_cardinal (Session.engine_snapshot eng).Session.catalog

(* --------------------- snapshot isolation --------------------- *)

let test_snapshot_isolation () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let a = Session.attach eng in
  let b = Session.attach eng in
  ignore (Session.exec_string a "append to EVENTS (SID = 1, SEQ = 1)");
  (* A sees its own staged write; B and the engine do not. *)
  Alcotest.(check int) "A sees own write" 1
    (Session.Drive.events_cardinal (Session.snapshot a).Session.catalog);
  Session.begin_ b;
  Alcotest.(check int) "B sees nothing" 0
    (Session.Drive.events_cardinal (Session.snapshot b).Session.catalog);
  Alcotest.(check int) "engine sees nothing" 0 (events_of eng);
  let lsn = Session.commit a in
  Alcotest.(check int) "first commit is lsn 1" 1 lsn;
  Alcotest.(check int) "published after commit" 1 (events_of eng);
  (* B's pinned snapshot still reflects the pre-commit world. *)
  Alcotest.(check int) "B's snapshot is immutable" 0
    (Session.Drive.events_cardinal (Session.snapshot b).Session.catalog);
  Session.rollback b;
  Alcotest.(check int) "fresh view after rollback" 1
    (Session.Drive.events_cardinal (Session.snapshot b).Session.catalog);
  Session.shutdown eng

let test_group_batch () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let sessions = List.init 3 (fun _ -> Session.attach eng) in
  List.iteri
    (fun i s ->
      ignore
        (Session.exec_string s
           (Printf.sprintf "append to EVENTS (SID = %d, SEQ = 1)" (i + 1))))
    sessions;
  List.iter Session.submit sessions;
  Alcotest.(check int) "three queued" 3 (Session.queue_depth eng);
  Session.flush eng;
  let lsns = List.map Session.await sessions in
  Alcotest.(check (list int)) "lsns assigned in submit order" [ 1; 2; 3 ] lsns;
  let s = Session.stats eng in
  Alcotest.(check int) "one batch" 1 s.Session.batches;
  Alcotest.(check int) "three records in it" 3 s.Session.max_batch;
  Alcotest.(check int) "all committed" 3 s.Session.committed;
  Alcotest.(check int) "all published" 3 (events_of eng);
  Session.shutdown eng

(* ---------------------- conflict validation ------------------- *)

let stage_replace s tag =
  ignore
    (Session.exec_string s
       (Printf.sprintf "range of c is COUNTER replace c (N = %d) where c.C = 0"
          tag))

let test_first_committer_wins () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let setup = Session.attach eng in
  ignore (Session.exec_string setup "append to COUNTER (C = 0, N = 0)");
  ignore (Session.commit setup);
  let a = Session.attach eng in
  let b = Session.attach eng in
  stage_replace a 101;
  stage_replace b 202;
  ignore (Session.commit a);
  (match Session.commit b with
  | _ -> Alcotest.fail "second replace must conflict"
  | exception Session.Session_error.Error
      (Session.Session_error.Conflict { relation }) ->
      Alcotest.(check string) "conflict names the relation" "COUNTER" relation);
  Alcotest.(check (option int)) "first committer's value survives" (Some 101)
    (counter_of eng);
  (* B retries against a fresh snapshot and wins. *)
  stage_replace b 202;
  ignore (Session.commit b);
  Alcotest.(check (option int)) "retry succeeds" (Some 202) (counter_of eng);
  let s = Session.stats eng in
  Alcotest.(check int) "one conflict counted" 1 s.Session.conflicts;
  Session.shutdown eng

let test_disjoint_appends_commute () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let a = Session.attach eng in
  let b = Session.attach eng in
  (* Same relation, different tuples, overlapping snapshots — appends
     commute under union semantics, so both commit (in one batch). *)
  ignore (Session.exec_string a "append to EVENTS (SID = 1, SEQ = 1)");
  ignore (Session.exec_string b "append to EVENTS (SID = 2, SEQ = 1)");
  Session.submit a;
  Session.submit b;
  Session.flush eng;
  ignore (Session.await a);
  ignore (Session.await b);
  Alcotest.(check int) "both appends landed" 2 (events_of eng);
  Alcotest.(check int) "no conflicts" 0 (Session.stats eng).Session.conflicts;
  (* But an append that would resurrect a concurrently deleted tuple
     conflicts: d pins a snapshot, then w appends (3,3), c deletes it,
     and d's own append of (3,3) hits added(d) ∩ removed(c). (Appending
     a tuple already in one's snapshot is a no-op and stages nothing —
     the conflict needs a snapshot that predates the tuple.) *)
  let w = Session.attach eng in
  let c = Session.attach eng in
  let d = Session.attach eng in
  Session.begin_ d;
  ignore (Session.exec_string w "append to EVENTS (SID = 3, SEQ = 3)");
  ignore (Session.commit w);
  ignore
    (Session.exec_string c "range of e is EVENTS delete e where e.SID = 3");
  ignore (Session.commit c);
  ignore (Session.exec_string d "append to EVENTS (SID = 3, SEQ = 3)");
  (match Session.commit d with
  | _ -> Alcotest.fail "resurrecting a concurrently deleted tuple must abort"
  | exception Session.Session_error.Error (Session.Session_error.Conflict _)
    -> ());
  Session.shutdown eng

(* ---------------------- admission control --------------------- *)

let test_queue_full () =
  with_temp_dir @@ fun dir ->
  let config = { Session.default_config with Session.max_queue = 2 } in
  let eng = open_seeded ~config dir in
  let stage i =
    let s = Session.attach eng in
    ignore
      (Session.exec_string s
         (Printf.sprintf "append to EVENTS (SID = %d, SEQ = 1)" i));
    s
  in
  let s1 = stage 1 and s2 = stage 2 and s3 = stage 3 in
  Session.submit s1;
  Session.submit s2;
  (* The third submission is refused immediately — no blocking. *)
  (match Session.submit s3 with
  | () -> Alcotest.fail "third submit must be refused"
  | exception Session.Session_error.Error
      (Session.Session_error.Queue_full { limit }) ->
      Alcotest.(check int) "limit reported" 2 limit);
  Alcotest.(check bool) "s3's txn stays staged" true (Session.in_txn s3);
  Session.flush eng;
  ignore (Session.await s1);
  ignore (Session.await s2);
  (* Once drained, the staged transaction commits on retry. *)
  ignore (Session.commit s3);
  Alcotest.(check int) "all three landed" 3 (events_of eng);
  Alcotest.(check int) "refusal counted" 1
    (Session.stats eng).Session.queue_full;
  Session.shutdown eng

let test_shutdown () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let s = Session.attach eng in
  ignore (Session.exec_string s "append to EVENTS (SID = 1, SEQ = 1)");
  ignore (Session.commit s);
  Session.shutdown eng;
  Session.shutdown eng (* idempotent *);
  Alcotest.(check bool) "dead" false (Session.alive eng);
  ignore (Session.exec_string s "append to EVENTS (SID = 1, SEQ = 2)");
  (match Session.commit s with
  | _ -> Alcotest.fail "commit after shutdown must fail"
  | exception Session.Session_error.Error Session.Session_error.Shutdown -> ());
  (* The directory is consistent: re-open sees the committed state. *)
  let eng2, _ = Session.open_engine ~dir () in
  Alcotest.(check int) "state survived" 1 (events_of eng2);
  Session.shutdown eng2

(* ------------------- serial (per-commit fsync) ----------------- *)

let test_serial_mode () =
  with_temp_dir @@ fun dir ->
  let config = { Session.default_config with Session.group = false } in
  let eng = open_seeded ~config dir in
  let sessions = List.init 3 (fun _ -> Session.attach eng) in
  List.iteri
    (fun i s ->
      ignore
        (Session.exec_string s
           (Printf.sprintf "append to EVENTS (SID = %d, SEQ = 1)" (i + 1))))
    sessions;
  List.iter Session.submit sessions;
  Session.flush eng;
  List.iter (fun s -> ignore (Session.await s)) sessions;
  Alcotest.(check int) "serial mode commits too" 3 (events_of eng);
  Session.shutdown eng;
  let eng2, _ = Session.open_engine ~dir () in
  Alcotest.(check int) "and is durable" 3 (events_of eng2);
  Session.shutdown eng2

let test_checkpointing () =
  with_temp_dir @@ fun dir ->
  let config = { Session.default_config with Session.checkpoint_every = 2 } in
  let eng = open_seeded ~config dir in
  let s = Session.attach eng in
  for j = 1 to 5 do
    ignore
      (Session.exec_string s
         (Printf.sprintf "append to EVENTS (SID = 1, SEQ = %d)" j));
    ignore (Session.commit s)
  done;
  (* 5 records with a checkpoint every 2: the journal holds at most the
     tail since the last cut. *)
  let records, note = Storage.Wal.read ~io:Storage.Io.real ~dir in
  Alcotest.(check (option string)) "journal clean" None note;
  Alcotest.(check bool) "journal truncated by checkpoints" true
    (List.length records <= 1);
  Session.shutdown eng;
  let eng2, _ = Session.open_engine ~dir () in
  Alcotest.(check int) "nothing lost across checkpoints" 5 (events_of eng2);
  Session.shutdown eng2

(* -------------------- real multicore commits ------------------- *)

let test_concurrent_commits () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let domains = 4 and txns = 20 in
  let workers =
    List.init domains (fun k ->
        Stdlib.Domain.spawn (fun () ->
            let s = Session.attach eng in
            let committed = ref 0 in
            for j = 1 to txns do
              ignore
                (Session.exec_string s
                   (Printf.sprintf "append to EVENTS (SID = %d, SEQ = %d)"
                      (k + 1) j));
              match Session.commit s with
              | _ -> incr committed
              | exception Session.Session_error.Error _ -> ()
            done;
            !committed))
  in
  let total = List.fold_left (fun acc d -> acc + Stdlib.Domain.join d) 0 workers in
  (* Disjoint appends never conflict: every transaction must land. *)
  Alcotest.(check int) "all committed" (domains * txns) total;
  Alcotest.(check int) "all published" (domains * txns) (events_of eng);
  Session.shutdown eng;
  let eng2, _ = Session.open_engine ~dir () in
  Alcotest.(check int) "all durable" (domains * txns) (events_of eng2);
  Session.shutdown eng2

let test_contention_drive () =
  with_temp_dir @@ fun dir ->
  let eng = open_seeded dir in
  let r =
    Session.Drive.contention eng ~sessions:4 ~txns:8 ~conflict_every:2 ()
  in
  Alcotest.(check int) "every txn resolved" (4 * 8)
    (r.Session.Drive.committed + r.Session.Drive.conflicts);
  (* Conflicted transactions vanish whole: EVENTS holds exactly the
     committed appends. *)
  Alcotest.(check int) "isolation invariant" r.Session.Drive.committed
    r.Session.Drive.events;
  Session.shutdown eng

(* ----------------------- crash-fault drills -------------------- *)

let drill mode () =
  with_temp_dir @@ fun dir ->
  let d = Session.Drive.crash_matrix ~dir ~trials:12 ~mode () in
  Alcotest.(check int) "every trial crashed" d.Session.Drive.trials
    d.Session.Drive.crashes;
  Alcotest.(check int) "zero lost committed transactions" 0
    d.Session.Drive.lost;
  Alcotest.(check int) "zero resurrected aborted transactions" 0
    d.Session.Drive.resurrected;
  Alcotest.(check int) "second replay is always a no-op"
    d.Session.Drive.trials d.Session.Drive.clean_second_replays

let test_torn_batch_tail () =
  with_temp_dir @@ fun dir ->
  let io = Storage.Io.real in
  Session.Drive.seed ~io ~dir ();
  let record lsn seq =
    let tuple =
      Tuple.set
        (Tuple.set Tuple.empty (Attr.make "SID") (Value.Int 1))
        (Attr.make "SEQ") (Value.Int seq)
    in
    {
      Storage.Wal.lsn;
      ops =
        [
          Storage.Wal.Change
            {
              rel = "EVENTS";
              added = Xrel.of_tuples (Tuple.Set.singleton tuple);
              removed = Xrel.of_tuples Tuple.Set.empty;
            };
        ];
    }
  in
  let rs = [ record 1 1; record 2 2; record 3 3 ] in
  Storage.Wal.append_batch ~io ~dir rs;
  let all, note = Storage.Wal.read ~io ~dir in
  Alcotest.(check int) "batch readable" 3 (List.length all);
  Alcotest.(check (option string)) "clean tail" None note;
  (* Tear the batch mid-record: drop the last 7 bytes. *)
  let path = Storage.Wal.file ~dir in
  let data = io.Storage.Io.read_file path in
  io.Storage.Io.write_file path
    (String.sub data 0 (String.length data - 7));
  let prefix, note = Storage.Wal.read ~io ~dir in
  Alcotest.(check int) "valid prefix survives" 2 (List.length prefix);
  Alcotest.(check bool) "torn tail reported" true (note <> None);
  (* Recovery replays the prefix and truncates the tear... *)
  let report = Storage.Persist.recover ~io ~dir () in
  Alcotest.(check bool) "recovery reports the tear" true
    (report.Storage.Persist.journal_note <> None);
  Alcotest.(check int) "prefix replayed" 2
    (Session.Drive.events_cardinal report.Storage.Persist.catalog);
  (* ... so a second replay finds a clean, empty journal: idempotent. *)
  let again = Storage.Persist.load_report ~io ~dir () in
  Alcotest.(check (option string)) "second replay is clean" None
    again.Storage.Persist.journal_note;
  Alcotest.(check int) "and a no-op" 2
    (Session.Drive.events_cardinal again.Storage.Persist.catalog)

(* ------------------ storage-layer satellites ------------------- *)

let test_retry_jitter_seeded () =
  let run seed =
    let delays = ref [] in
    let io =
      Storage.Io.retrying ~attempts:4 ~backoff:0.008 ~seed
        ~sleep:(fun d -> delays := d :: !delays)
        (Storage.Io.flaky ~failures:3 Storage.Io.real)
    in
    with_temp_dir (fun dir ->
        io.Storage.Io.mkdir dir;
        io.Storage.Io.write_file (Filename.concat dir "probe") "x");
    List.rev !delays
  in
  let d1 = run 42 and d2 = run 42 and d3 = run 43 in
  Alcotest.(check int) "three retries slept" 3 (List.length d1);
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" d1 d2;
  Alcotest.(check bool) "different seed, different schedule" true (d1 <> d3);
  (* Jitter stays inside [1/2, 1] of the nominal exponential delay. *)
  List.iteri
    (fun i d ->
      let nominal = 0.008 *. (2. ** float_of_int i) in
      Alcotest.(check bool)
        (Printf.sprintf "retry %d in [nominal/2, nominal]" i)
        true
        (d >= (nominal /. 2.) -. 1e-12 && d <= nominal +. 1e-12))
    d1

let test_crash_at_point () =
  with_temp_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  let io = Storage.Io.crash_at ~point:"proto:step2" Storage.Io.real in
  let path = Filename.concat dir "f" in
  io.Storage.Io.note "proto:step1";
  io.Storage.Io.write_file path "before";
  (match io.Storage.Io.note "proto:step2" with
  | () -> Alcotest.fail "the named point must kill the process model"
  | exception Storage.Io.Injected_fault _ -> ());
  (* Dead past the point: mutations refuse, reads still work. *)
  (match io.Storage.Io.write_file path "after" with
  | () -> Alcotest.fail "writes after the crash must refuse"
  | exception Storage.Io.Injected_fault _ -> ());
  Alcotest.(check string) "debris readable post-mortem" "before"
    (io.Storage.Io.read_file path)

let test_governor_domain_local () =
  (* A governed session on a spawned domain trips its own budget
     without disturbing the main domain's (unlimited) governor. *)
  let tripped =
    Stdlib.Domain.spawn (fun () ->
        Exec.with_governor
          (Exec.make ~max_tuples:5 ())
          (fun () ->
            match
              for _ = 1 to 10 do
                Exec.tick ()
              done
            with
            | () -> false
            | exception Exec_error.Error (Exec_error.Budget_exceeded _) ->
                true))
  in
  (* Meanwhile the main domain ticks freely. *)
  for _ = 1 to 1000 do
    Exec.tick ()
  done;
  Alcotest.(check bool) "worker domain budget trips locally" true
    (Stdlib.Domain.join tripped)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_demo_deterministic () =
  let lines1 = with_temp_dir (fun dir -> Session.Drive.demo ~dir ()) in
  let lines2 = with_temp_dir (fun dir -> Session.Drive.demo ~dir ()) in
  Alcotest.(check (list string)) "demo output is reproducible" lines1 lines2;
  Alcotest.(check bool) "demo shows a conflict" true
    (List.exists
       (fun l -> contains_sub l "aborted" || contains_sub l "conflict")
       lines1)

let suite =
  [
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "group batch, one flush" `Quick test_group_batch;
    Alcotest.test_case "first committer wins" `Quick test_first_committer_wins;
    Alcotest.test_case "disjoint appends commute" `Quick
      test_disjoint_appends_commute;
    Alcotest.test_case "queue-full admission control" `Quick test_queue_full;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "serial (per-commit fsync) mode" `Quick
      test_serial_mode;
    Alcotest.test_case "checkpoints under group commit" `Quick
      test_checkpointing;
    Alcotest.test_case "concurrent multicore commits" `Quick
      test_concurrent_commits;
    Alcotest.test_case "contention drive invariants" `Quick
      test_contention_drive;
    Alcotest.test_case "crash before group fsync" `Quick
      (drill `Before_fsync);
    Alcotest.test_case "crash inside group fsync (torn)" `Quick
      (drill `Inside_fsync);
    Alcotest.test_case "crash after group fsync" `Quick (drill `After_fsync);
    Alcotest.test_case "torn group batch replay idempotence" `Quick
      test_torn_batch_tail;
    Alcotest.test_case "seeded retry jitter" `Quick test_retry_jitter_seeded;
    Alcotest.test_case "crash at a named protocol point" `Quick
      test_crash_at_point;
    Alcotest.test_case "governors are domain-local" `Quick
      test_governor_domain_local;
    Alcotest.test_case "session demo is deterministic" `Quick
      test_demo_deterministic;
  ]
