(* Property tests for the system catalog.

   Two claims from the snapshot-consistency rule (DESIGN §10):

   - Reading [sys_metrics] from another domain while the main domain
     runs parallel hash joins never observes a torn counter: within one
     materialization every cell is read exactly once, so successive
     materializations of any counter series are monotone.

   - [sys_relations] freshness is not its own bookkeeping: under a
     random schedule of loads, appends, analyzes and stat-drops, the
     STATS / STATS_ROWS / ROWS columns agree exactly with
     {!Storage.Catalog.stats_status} and the live cardinality. *)

open Nullrel
open Qgen

let a_ name = Attr.make name

(* ------------- counters monotone under parallel joins ---------- *)

(* Extract every counter series from one fresh materialization. *)
let counter_values () =
  let _, (_, x) = Sysview.sys_metrics () in
  List.filter_map
    (fun t ->
      match
        (Tuple.get t (a_ "NAME"), Tuple.get t (a_ "KIND"),
         Tuple.get t (a_ "VALUE"))
      with
      | Value.Str name, Value.Str "counter", Value.Float v -> Some (name, v)
      | _ -> None)
    (Xrel.to_list x)

let join_input n seed =
  let tup k =
    Tuple.of_strings
      [
        ("ID", Value.Int (k mod (n / 2 + 1)));
        ("PAYLOAD", Value.Int ((k * seed) land 0xffff));
      ]
  in
  Xrel.of_list (List.init n tup)

let monotone_counters =
  QCheck.Test.make ~count:6
    ~name:"sys_metrics counters monotone while parallel joins run"
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 64 256) (int_range 1 1000)))
    (fun (n, seed) ->
      Obs.Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.set_enabled false;
          Obs.Metrics.reset ())
      @@ fun () ->
      let left = join_input n seed and right = join_input n (seed + 1) in
      let stop = Atomic.make false in
      (* The reader samples from a second domain — the materializations
         race against live updates from the join kernels. *)
      let reader =
        Stdlib.Domain.spawn (fun () ->
            let failure = ref None in
            let prev = Hashtbl.create 64 in
            while not (Atomic.get stop) do
              List.iter
                (fun (name, v) ->
                  (match Hashtbl.find_opt prev name with
                  | Some v0 when v < v0 ->
                      failure :=
                        Some
                          (Printf.sprintf "%s went backwards: %g -> %g" name v0
                             v)
                  | _ -> ());
                  Hashtbl.replace prev name v)
                (counter_values ())
            done;
            !failure)
      in
      for _ = 1 to 12 do
        ignore (Algebra.equijoin (Attr.set_of_list [ "ID" ]) left right)
      done;
      Atomic.set stop true;
      match Stdlib.Domain.join reader with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* ------------- freshness agrees with the catalog --------------- *)

type op = Load of int | Append of int | Analyze of int | Drop_stats of int

let rel_name k = Printf.sprintf "PR%d" k

let op_gen =
  QCheck.Gen.(
    map2
      (fun which k ->
        match which with
        | 0 -> Load k
        | 1 -> Append k
        | 2 -> Analyze k
        | _ -> Drop_stats k)
      (int_range 0 3) (int_range 0 2))

let print_op = function
  | Load k -> Printf.sprintf "L%d" k
  | Append k -> Printf.sprintf "+%d" k
  | Analyze k -> Printf.sprintf "A%d" k
  | Drop_stats k -> Printf.sprintf "D%d" k

let arbitrary_schedule =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 1 30) op_gen)

let apply cat step op =
  match op with
  | Load k ->
      let name = rel_name k in
      if Storage.Catalog.mem cat name then cat
      else
        Storage.Catalog.add cat
          (Schema.make name [ ("A", Domain.Ints) ])
          (Xrel.of_list [ Tuple.of_strings [ ("A", Value.Int step) ] ])
  | Append k ->
      let name = rel_name k in
      if not (Storage.Catalog.mem cat name) then cat
      else
        (* through the real write path: marks stats stale *)
        (Dml.exec_string cat (Printf.sprintf "append to %s (A = %d)" name step))
          .Dml.catalog
  | Analyze k ->
      let name = rel_name k in
      if not (Storage.Catalog.mem cat name) then cat
      else
        Storage.Catalog.set_stats cat name
          (Stats.collect ~attrs:[ a_ "A" ]
             (Storage.Catalog.relation cat name))
  | Drop_stats k ->
      let name = rel_name k in
      if Storage.Catalog.mem cat name then Storage.Catalog.clear_stats cat name
      else cat

let freshness_agrees =
  QCheck.Test.make ~count:100
    ~name:"sys_relations freshness agrees with catalog stamps"
    arbitrary_schedule
    (fun ops ->
      let cat, _ =
        List.fold_left
          (fun (cat, step) op -> (apply cat step op, step + 1))
          (Storage.Catalog.empty, 0)
          ops
      in
      let _, (_, sys) = Sysview.sys_relations cat in
      let rows = Xrel.to_list sys in
      List.length rows = List.length (Storage.Catalog.names cat)
      && List.for_all
           (fun name ->
             match
               List.find_opt
                 (fun t -> Tuple.get t (a_ "NAME") = Value.Str name)
                 rows
             with
             | None -> false
             | Some t ->
                 let expect_status, expect_srows =
                   match Storage.Catalog.stats_status cat name with
                   | Storage.Catalog.Fresh tab ->
                       ("fresh", Value.Int tab.Stats.rows)
                   | Storage.Catalog.Stale tab ->
                       ("stale", Value.Int tab.Stats.rows)
                   | Storage.Catalog.Missing -> ("missing", Value.Null)
                 in
                 Tuple.get t (a_ "STATS") = Value.Str expect_status
                 && Tuple.get t (a_ "STATS_ROWS") = expect_srows
                 && Tuple.get t (a_ "ROWS")
                    = Value.Int
                        (Xrel.cardinal (Storage.Catalog.relation cat name)))
           (Storage.Catalog.names cat))

let suite = List.map to_alcotest [ monotone_counters; freshness_agrees ]
