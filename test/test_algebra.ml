(* The generalized algebra: selection, product, joins, union-join,
   projection, division (Sections 5-6). *)

open Nullrel
open Helpers

let supplier name city = t [ ("S#", s name); ("CITY", s city) ]

let suppliers =
  x
    [
      supplier "s1" "Paris";
      supplier "s2" "London";
      t [ ("S#", s "s3") ];
      (* city unknown *)
    ]

let orders =
  x
    [
      t [ ("O#", i 1); ("OS#", s "s1"); ("QTY", i 100) ];
      t [ ("O#", i 2); ("OS#", s "s2"); ("QTY", i 200) ];
      t [ ("O#", i 3); ("QTY", i 50) ];
      (* supplier unknown *)
    ]

let test_select_ak () =
  check_xrel "equality select"
    (x [ supplier "s1" "Paris" ])
    (Algebra.select_ak (a_ "CITY") Predicate.Eq (s "Paris") suppliers);
  (* s3's unknown city is not Paris for sure: excluded. *)
  check_xrel "inequality select also drops nulls"
    (x [ supplier "s2" "London" ])
    (Algebra.select_ak (a_ "CITY") Predicate.Neq (s "Paris") suppliers);
  Alcotest.check_raises "null constant rejected"
    (Exec_error.Error
       (Exec_error.Bad_input "Algebra.select_ak: the constant must not be ni"))
    (fun () ->
      ignore (Algebra.select_ak (a_ "CITY") Predicate.Eq Value.Null suppliers))

let test_select_ab () =
  let r =
    x
      [
        t [ ("A", i 1); ("B", i 2) ];
        t [ ("A", i 5); ("B", i 2) ];
        t [ ("A", i 9) ];
      ]
  in
  check_xrel "A < B keeps A,B-total satisfying rows"
    (x [ t [ ("A", i 1); ("B", i 2) ] ])
    (Algebra.select_ab (a_ "A") Predicate.Lt (a_ "B") r);
  check_xrel "A > B"
    (x [ t [ ("A", i 5); ("B", i 2) ] ])
    (Algebra.select_ab (a_ "A") Predicate.Gt (a_ "B") r)

let test_select_preserves_minimality () =
  let sel = Algebra.select_ak (a_ "CITY") Predicate.Eq (s "Paris") suppliers in
  Alcotest.(check bool) "result minimal" true (Relation.is_minimal (Xrel.rep sel))

let test_general_select () =
  let p =
    Predicate.(cmp_const "QTY" Gt (i 75) &&& cmp_const "OS#" Eq (s "s1"))
  in
  check_xrel "conjunctive qualification"
    (x [ t [ ("O#", i 1); ("OS#", s "s1"); ("QTY", i 100) ] ])
    (Algebra.select p orders)

let test_product_disjoint () =
  let left = x [ t [ ("A", i 1) ]; t [ ("A", i 2) ] ] in
  let right = x [ t [ ("B", i 7) ] ] in
  let prod = Algebra.product left right in
  check_xrel "2 x 1 product"
    (x [ t [ ("A", i 1); ("B", i 7) ]; t [ ("A", i 2); ("B", i 7) ] ])
    prod;
  check_xrel "product with bottom" Xrel.bottom
    (Algebra.product left Xrel.bottom)

let test_product_with_nulls () =
  (* (5.3): null columns just stay null in the combined tuples. *)
  let left = x [ t [ ("A", i 1) ] ] in
  let right = x [ t [ ("B", i 7); ("C", i 8) ]; t [ ("B", i 9) ] ] in
  check_xrel "null-bearing product"
    (x
       [
         t [ ("A", i 1); ("B", i 7); ("C", i 8) ];
         t [ ("A", i 1); ("B", i 9) ];
       ])
    (Algebra.product left right)

let test_product_overlapping_scopes () =
  (* With a shared column the product behaves like a natural join:
     conflicting pairs drop, agreeing pairs merge. *)
  let left = x [ t [ ("A", i 1); ("B", i 2) ] ] in
  let right = x [ t [ ("B", i 2); ("C", i 3) ]; t [ ("B", i 9); ("C", i 4) ] ] in
  check_xrel "only the agreeing pair survives"
    (x [ t [ ("A", i 1); ("B", i 2); ("C", i 3) ] ])
    (Algebra.product left right)

let test_theta_join () =
  let joined =
    Algebra.theta_join (a_ "S#") Predicate.Eq (a_ "OS#") suppliers orders
  in
  check_xrel "equality theta-join"
    (x
       [
         t [ ("S#", s "s1"); ("CITY", s "Paris"); ("O#", i 1); ("OS#", s "s1"); ("QTY", i 100) ];
         t [ ("S#", s "s2"); ("CITY", s "London"); ("O#", i 2); ("OS#", s "s2"); ("QTY", i 200) ];
       ])
    joined

let test_equijoin () =
  let left = x [ t [ ("X", i 1); ("L", s "a") ]; t [ ("L", s "dangling") ] ] in
  let right = x [ t [ ("X", i 1); ("R", s "b") ]; t [ ("X", i 2); ("R", s "c") ] ] in
  check_xrel "join on X"
    (x [ t [ ("X", i 1); ("L", s "a"); ("R", s "b") ] ])
    (Algebra.equijoin (aset [ "X" ]) left right);
  (* Tuples that are not X-total never participate (Section 5). *)
  check_xrel "non-X-total tuples don't join"
    (x [ t [ ("X", i 1); ("L", s "a"); ("R", s "b") ] ])
    (Algebra.equijoin (aset [ "X" ]) left right)

let test_semijoin_antijoin () =
  let left = x [ t [ ("X", i 1); ("L", s "a") ]; t [ ("X", i 3); ("L", s "d") ]; t [ ("L", s "nox") ] ] in
  let right = x [ t [ ("X", i 1); ("R", s "b") ]; t [ ("X", i 2); ("R", s "c") ] ] in
  check_xrel "semijoin keeps the matched tuple"
    (x [ t [ ("X", i 1); ("L", s "a") ] ])
    (Algebra.semijoin (aset [ "X" ]) left right);
  check_xrel "antijoin keeps the dangles (incl. non-X-total)"
    (x [ t [ ("X", i 3); ("L", s "d") ]; t [ ("L", s "nox") ] ])
    (Algebra.antijoin (aset [ "X" ]) left right);
  check_xrel "semijoin u antijoin = left" left
    (Xrel.union
       (Algebra.semijoin (aset [ "X" ]) left right)
       (Algebra.antijoin (aset [ "X" ]) left right))

let test_union_join () =
  let left = x [ t [ ("X", i 1); ("L", s "a") ]; t [ ("X", i 3); ("L", s "d") ] ] in
  let right = x [ t [ ("X", i 1); ("R", s "b") ]; t [ ("X", i 2); ("R", s "c") ] ] in
  let uj = Algebra.union_join (aset [ "X" ]) left right in
  check_xrel "outer join keeps dangling tuples"
    (x
       [
         t [ ("X", i 1); ("L", s "a"); ("R", s "b") ];
         t [ ("X", i 3); ("L", s "d") ];
         t [ ("X", i 2); ("R", s "c") ];
       ])
    uj;
  (* Information preservation: both operands are contained in it. *)
  Alcotest.(check bool) "contains left" true (Xrel.contains uj left);
  Alcotest.(check bool) "contains right" true (Xrel.contains uj right)

let test_union_join_total_match () =
  (* When every tuple participates, the union-join IS the equijoin. *)
  let left = x [ t [ ("X", i 1); ("L", s "a") ] ] in
  let right = x [ t [ ("X", i 1); ("R", s "b") ] ] in
  check_xrel "no dangles"
    (Algebra.equijoin (aset [ "X" ]) left right)
    (Algebra.union_join (aset [ "X" ]) left right)

let test_project () =
  check_xrel "project suppliers to city"
    (x [ t [ ("CITY", s "Paris") ]; t [ ("CITY", s "London") ] ])
    (Algebra.project (aset [ "CITY" ]) suppliers);
  (* Projection re-minimizes: s3's projection is the null tuple. *)
  check_xrel "project to missing column is bottom" Xrel.bottom
    (Algebra.project (aset [ "ZZZ" ]) suppliers);
  check_xrel "project to scope is identity" suppliers
    (Algebra.project (aset [ "S#"; "CITY" ]) suppliers)

let test_project_merges_subsumed () =
  let r = x [ t [ ("A", i 1); ("B", i 1) ]; t [ ("A", i 1); ("B", i 2) ] ] in
  check_xrel "two tuples collapse to one"
    (x [ t [ ("A", i 1) ] ])
    (Algebra.project (aset [ "A" ]) r)

let test_rename () =
  check_xrel "rename S# to SUP"
    (x
       [
         t [ ("SUP", s "s1"); ("CITY", s "Paris") ];
         t [ ("SUP", s "s2"); ("CITY", s "London") ];
         t [ ("SUP", s "s3") ];
       ])
    (Algebra.rename [ (a_ "S#", a_ "SUP") ] suppliers)

let test_image () =
  let img =
    Algebra.image (aset [ "S#" ]) (aset [ "P#" ]) (t [ ("S#", s "s1") ]) ps
  in
  check_xrel "P#-image of s1"
    (x [ t [ ("P#", s "p1") ]; t [ ("P#", s "p2") ] ])
    img;
  check_xrel "image of unknown supplier" Xrel.bottom
    (Algebra.image (aset [ "S#" ]) (aset [ "P#" ]) (t [ ("S#", s "zz") ]) ps)

let test_divide_edge_cases () =
  let y = aset [ "S#" ] in
  (* Empty divisor: every Y-total Y-value qualifies. *)
  check_xrel "empty divisor"
    (Algebra.project y ps)
    (Algebra.divide y ps Xrel.bottom);
  (* Empty dividend: empty quotient. *)
  check_xrel "empty dividend" Xrel.bottom
    (Algebra.divide y Xrel.bottom (x [ t [ ("P#", s "p1") ] ]));
  (* Divisor nobody covers. *)
  check_xrel "impossible divisor" Xrel.bottom
    (Algebra.divide y ps (x [ t [ ("P#", s "p1") ]; t [ ("P#", s "p4") ] ]))

let test_divide_total_classical () =
  (* On total relations the quotient is the classical one. *)
  let r =
    x
      [
        t [ ("S#", s "a"); ("P#", i 1) ];
        t [ ("S#", s "a"); ("P#", i 2) ];
        t [ ("S#", s "b"); ("P#", i 1) ];
      ]
  in
  let divisor = x [ t [ ("P#", i 1) ]; t [ ("P#", i 2) ] ] in
  check_xrel "classical division"
    (x [ t [ ("S#", s "a") ] ])
    (Algebra.divide (aset [ "S#" ]) r divisor)

let test_closure () =
  (* Section 7: x-relations are closed — all operators apply regardless
     of attribute sets. Codd relations would reject these operands. *)
  let odd = x [ t [ ("A", i 1) ]; t [ ("B", i 2); ("C", i 3) ] ] in
  let other = x [ t [ ("D", i 4) ] ] in
  List.iter
    (fun xr -> Alcotest.(check bool) "operation yields a valid x-relation" true
        (Relation.is_minimal (Xrel.rep xr)))
    [
      Xrel.union odd other;
      Xrel.inter odd other;
      Xrel.diff odd other;
      Algebra.product odd other;
      Algebra.project (aset [ "A"; "D" ]) (Xrel.union odd other);
      Algebra.select_ak (a_ "A") Predicate.Eq (i 1) odd;
      Algebra.union_join (aset [ "A" ]) odd other;
      Algebra.divide (aset [ "A" ]) odd other;
    ]

let suite =
  [
    Alcotest.test_case "select A theta k" `Quick test_select_ak;
    Alcotest.test_case "select A theta B" `Quick test_select_ab;
    Alcotest.test_case "selection preserves minimality" `Quick
      test_select_preserves_minimality;
    Alcotest.test_case "general selection" `Quick test_general_select;
    Alcotest.test_case "product (disjoint scopes)" `Quick
      test_product_disjoint;
    Alcotest.test_case "product with nulls" `Quick test_product_with_nulls;
    Alcotest.test_case "product with overlapping scopes" `Quick
      test_product_overlapping_scopes;
    Alcotest.test_case "theta-join" `Quick test_theta_join;
    Alcotest.test_case "equijoin" `Quick test_equijoin;
    Alcotest.test_case "semijoin and antijoin" `Quick test_semijoin_antijoin;
    Alcotest.test_case "union-join keeps dangles" `Quick test_union_join;
    Alcotest.test_case "union-join without dangles" `Quick
      test_union_join_total_match;
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "projection re-minimizes" `Quick
      test_project_merges_subsumed;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "image" `Quick test_image;
    Alcotest.test_case "division edge cases" `Quick test_divide_edge_cases;
    Alcotest.test_case "division on total relations" `Quick
      test_divide_total_classical;
    Alcotest.test_case "closure property" `Quick test_closure;
  ]
