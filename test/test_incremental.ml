(* Incremental maintenance and persistent secondary indexes: the
   truncation taxonomy of the binary codec, the no-op [set_relation]
   guard that keeps memoized indexes alive, the INDEX file freshness
   protocol (attach verbatim on a matching stamp, rebuild on a stale or
   anomalous dump, drop declarations on a torn file), and the
   probe-served compiled-query path. *)

open Nullrel

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

(* Current value of an unlabelled counter, parsed out of the Prometheus
   dump ("name value" lines). *)
let metric name =
  let prefix = name ^ " " in
  List.fold_left
    (fun acc line ->
      if
        String.length line > String.length prefix
        && String.sub line 0 (String.length prefix) = prefix
      then
        int_of_string_opt
          (String.trim
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix)))
        |> Option.value ~default:acc
      else acc)
    0
    (String.split_on_char '\n' (Obs.Metrics.dump_prometheus ()))

(* ------------------- binary corruption taxonomy ----------------- *)

let fuzz_seed =
  Xrel.of_list
    [
      Tuple.of_strings [ ("A", Value.Int 1); ("B", Value.Str "one") ];
      Tuple.of_strings [ ("A", Value.Int 2); ("B", Value.Str "tab\there") ];
      Tuple.of_strings [ ("A", Value.Int max_int) ];
      Tuple.of_strings [ ("B", Value.Str ""); ("C", Value.Bool true) ];
      Tuple.of_strings [ ("C", Value.Float 2.5) ];
    ]

let test_binary_truncation_fuzz () =
  let enc = Storage.Binary.encode fuzz_seed in
  for n = 0 to String.length enc - 1 do
    match Storage.Binary.decode (String.sub enc 0 n) with
    | exception Storage.Binary.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "prefix of length %d raised %s, not Corrupt" n
          (Printexc.to_string e)
    | _ -> Alcotest.failf "decoded a strict prefix of length %d" n
  done

let test_binary_byteflip_fuzz () =
  let enc = Storage.Binary.encode fuzz_seed in
  for i = 0 to String.length enc - 1 do
    let b = Bytes.of_string enc in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match Storage.Binary.decode (Bytes.to_string b) with
    | exception Storage.Binary.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "flip at %d raised %s, not Corrupt" i
          (Printexc.to_string e)
    | _ -> Alcotest.failf "flip at byte %d went undetected" i
  done

(* ---------------- no-op set_relation keeps the index ------------- *)

let test_noop_set_relation_keeps_index () =
  with_metrics (fun () ->
      let schema = Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
      let cat = Storage.Catalog.add Storage.Catalog.empty schema Xrel.bottom in
      let cat = (Dml.exec_string cat "append to R (A = 1, B = 10)").Dml.catalog in
      let builds = metric "nullrel_subsume_index_builds_total" in
      let advances = metric "nullrel_subsume_index_advances_total" in
      Alcotest.(check bool) "first statement built an index" true (builds >= 1);
      (* Writing a relation's own value back must be the identity — the
         memoized subsumption index survives untouched. *)
      let cat' =
        Storage.Catalog.set_relation cat "R" (Storage.Catalog.relation cat "R")
      in
      Alcotest.(check bool) "no-op set_relation returns the catalog itself"
        true (cat' == cat);
      let cat'' =
        (Dml.exec_string cat' "append to R (A = 2, B = 20)").Dml.catalog
      in
      Alcotest.(check int) "no rebuild after the no-op write" builds
        (metric "nullrel_subsume_index_builds_total");
      Alcotest.(check bool) "the second statement advanced instead" true
        (metric "nullrel_subsume_index_advances_total" > advances);
      Alcotest.(check int) "both appends landed" 2
        (Xrel.cardinal (Storage.Catalog.relation cat'' "R")))

(* ---------------- INDEX file persistence protocol ---------------- *)

let attr s = Attr.make s
let single s = Attr.Set.singleton (attr s)

let indexed_seed () =
  let schema = Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
  let x =
    Xrel.of_list
      [
        Tuple.of_strings [ ("A", Value.Int 1); ("B", Value.Int 10) ];
        Tuple.of_strings [ ("A", Value.Int 1); ("B", Value.Int 20) ];
        Tuple.of_strings [ ("A", Value.Int 2); ("B", Value.Int 30) ];
        Tuple.of_strings [ ("A", Value.Int 3) ];
        Tuple.of_strings [ ("B", Value.Int 40) ];
      ]
  in
  let cat = Storage.Catalog.add Storage.Catalog.empty schema x in
  let cat = Storage.Catalog.create_index cat "R" ~kind:"hash" (single "A") in
  Storage.Catalog.create_index cat "R" ~kind:"range" (single "B")

(* Every probe through the catalog must agree with the naive filter:
   exact matches on the attribute for total tuples, nothing for tuples
   null there. *)
let check_probe_agrees cat name a =
  match Storage.Catalog.equi_probe cat name (Attr.Set.singleton a) with
  | None -> Alcotest.failf "no equi probe on %s" (Attr.name a)
  | Some probe ->
      let tuples = Xrel.to_list (Storage.Catalog.relation cat name) in
      List.iter
        (fun t ->
          let expect =
            if not (Tuple.is_total_on (Attr.Set.singleton a) t) then []
            else
              List.filter
                (fun u ->
                  Tuple.is_total_on (Attr.Set.singleton a) u
                  && Value.equal (Tuple.get u a) (Tuple.get t a))
                tuples
          in
          Alcotest.(check bool)
            (Printf.sprintf "probe on %s agrees with filter" (Attr.name a))
            true
            (List.sort Tuple.compare (probe t)
            = List.sort Tuple.compare expect))
        tuples

let index_file dir = Filename.concat dir "INDEX"

(* Rewrite the INDEX file through [f] (a line filter/mapper over the
   entry lines), recomputing the self-checksum trailer so only the
   stale-dump protocol — not the whole-file damage path — is exercised. *)
let rewrite_index dir f =
  let path = index_file dir in
  let text = In_channel.with_open_text path In_channel.input_all in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let entries =
    List.filter
      (fun l -> not (String.length l >= 4 && String.sub l 0 4 = "end\t"))
      lines
  in
  let body =
    String.concat "" (List.map (fun l -> l ^ "\n") (List.filter_map f entries))
  in
  let text =
    Printf.sprintf "%send\t%s\n" body
      (Storage.Crc32.to_hex (Storage.Crc32.digest body))
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)

let is_line_entry l = String.length l >= 5 && String.sub l 0 5 = "line\t"

let test_index_persist_roundtrip () =
  Test_durability.with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (indexed_seed ());
      with_metrics (fun () ->
          let report = Storage.Persist.load_report ~dir () in
          Alcotest.(check (option string)) "clean load" None
            report.Storage.Persist.journal_note;
          let cat = report.Storage.Persist.catalog in
          Alcotest.(check int) "both declarations survive" 2
            (List.length (Storage.Catalog.all_indexes cat));
          Alcotest.(check int) "both dumps re-attached verbatim" 2
            (metric "storage_index_attach_total");
          Alcotest.(check int) "nothing rebuilt" 0
            (metric "storage_index_rebuild_total");
          check_probe_agrees cat "R" (attr "A");
          check_probe_agrees cat "R" (attr "B")))

let test_index_stripped_dump_rebuilds () =
  Test_durability.with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (indexed_seed ());
      (* Declarations and stamps intact, dumps gone: the loader must
         degrade to rebuilding from data, never fail. *)
      rewrite_index dir (fun l -> if is_line_entry l then None else Some l);
      with_metrics (fun () ->
          let report = Storage.Persist.load_report ~dir () in
          let cat = report.Storage.Persist.catalog in
          Alcotest.(check int) "declarations survive without dumps" 2
            (List.length (Storage.Catalog.all_indexes cat));
          Alcotest.(check int) "nothing attached verbatim" 0
            (metric "storage_index_attach_total");
          Alcotest.(check int) "both rebuilt from data" 2
            (metric "storage_index_rebuild_total");
          check_probe_agrees cat "R" (attr "A");
          check_probe_agrees cat "R" (attr "B")))

let test_index_garbled_payload_rebuilds () =
  Test_durability.with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (indexed_seed ());
      (* Reverse the range dump's position list: the checksum still
         passes (we recompute it) but restore must spot the broken sort
         order and degrade to a rebuild — stale-never-wrong. *)
      rewrite_index dir (fun l ->
          match String.split_on_char '\t' l with
          | [ "line"; rel; "range"; attrs; payload ] ->
              let reversed =
                String.concat " "
                  (List.rev (String.split_on_char ' ' payload))
              in
              Some
                (String.concat "\t" [ "line"; rel; "range"; attrs; reversed ])
          | _ -> Some l);
      with_metrics (fun () ->
          let report = Storage.Persist.load_report ~dir () in
          let cat = report.Storage.Persist.catalog in
          Alcotest.(check int) "declarations survive" 2
            (List.length (Storage.Catalog.all_indexes cat));
          Alcotest.(check int) "the intact hash dump still attaches" 1
            (metric "storage_index_attach_total");
          Alcotest.(check int) "the anomalous range dump rebuilds" 1
            (metric "storage_index_rebuild_total");
          check_probe_agrees cat "R" (attr "A");
          check_probe_agrees cat "R" (attr "B")))

let test_index_torn_file_drops_declarations () =
  Test_durability.with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (indexed_seed ());
      let path = index_file dir in
      let text = In_channel.with_open_text path In_channel.input_all in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (String.sub text 0 (String.length text / 2)));
      let report = Storage.Persist.load_report ~dir () in
      (match report.Storage.Persist.journal_note with
      | Some note ->
          Alcotest.(check bool) "the journal note names the INDEX file" true
            (contains note "INDEX file damaged")
      | None -> Alcotest.fail "torn INDEX file must be reported");
      let cat = report.Storage.Persist.catalog in
      Alcotest.(check int) "declarations are dropped, not guessed" 0
        (List.length (Storage.Catalog.all_indexes cat));
      List.iter
        (fun (name, status) ->
          match status with
          | Storage.Persist.Ok | Storage.Persist.Recovered _ -> ()
          | Storage.Persist.Corrupt r ->
              Alcotest.failf "relation %s quarantined: %s" name r)
        report.Storage.Persist.statuses;
      Alcotest.(check int) "data unaffected" 5
        (Xrel.cardinal (Storage.Catalog.relation cat "R")))

(* -------------- probe-served compiled queries ------------------- *)

let test_compiled_query_probe_parity () =
  let emp = Schema.make "EMP" [ ("ENAME", Domain.Strings); ("EDEPT", Domain.Ints) ] in
  let dept = Schema.make "DEPT" [ ("DDEPT", Domain.Ints); ("LOC", Domain.Strings) ] in
  let emp_x =
    Xrel.of_list
      [
        Tuple.of_strings [ ("ENAME", Value.Str "smith"); ("EDEPT", Value.Int 1) ];
        Tuple.of_strings [ ("ENAME", Value.Str "jones"); ("EDEPT", Value.Int 2) ];
        Tuple.of_strings [ ("ENAME", Value.Str "blake"); ("EDEPT", Value.Int 2) ];
        Tuple.of_strings [ ("ENAME", Value.Str "clark") ];
      ]
  in
  let dept_x =
    Xrel.of_list
      [
        Tuple.of_strings [ ("DDEPT", Value.Int 1); ("LOC", Value.Str "ny") ];
        Tuple.of_strings [ ("DDEPT", Value.Int 2); ("LOC", Value.Str "sf") ];
        Tuple.of_strings [ ("DDEPT", Value.Int 3); ("LOC", Value.Str "la") ];
      ]
  in
  let cat =
    Storage.Catalog.add
      (Storage.Catalog.add Storage.Catalog.empty emp emp_x)
      dept dept_x
  in
  let cat = Storage.Catalog.create_index cat "DEPT" ~kind:"hash" (single "DDEPT") in
  let db = Storage.Catalog.to_db cat in
  let q =
    match
      Quel.Parser.parse_statement
        "range of e is EMP range of d is DEPT retrieve (e.ENAME, d.LOC) \
         where e.EDEPT = d.DDEPT"
    with
    | Quel.Ast.Retrieve q -> q
    | _ -> Alcotest.fail "expected a retrieve"
  in
  let stats =
    {
      Plan.Cost.rowcount =
        (fun name ->
          Option.map (fun (_, x) -> Xrel.cardinal x) (List.assoc_opt name db));
      table = (fun _ -> None);
      equipped = Storage.Catalog.has_equi cat;
    }
  in
  let fired = ref 0 in
  let index_probe node =
    match
      Plan.Compile.index_probe_of ~stats
        ~probe_for:(Storage.Catalog.equi_probe cat) node
    with
    | Some p ->
        incr fired;
        Some p
    | None -> None
  in
  let indexed = Plan.Compile.run ~stats ~index_probe db q in
  let plain = Plan.Compile.run db q in
  Alcotest.(check bool) "probe-served result = product-select result" true
    (Xrel.equal indexed.Quel.Eval.rel plain.Quel.Eval.rel);
  Alcotest.(check bool) "the declared index actually served the join" true
    (!fired >= 1);
  Alcotest.(check int) "null-department employee joins nothing" 3
    (Xrel.cardinal indexed.Quel.Eval.rel)

let suite =
  [
    Alcotest.test_case "binary: every truncation raises Corrupt" `Quick
      test_binary_truncation_fuzz;
    Alcotest.test_case "binary: every byte flip raises Corrupt" `Quick
      test_binary_byteflip_fuzz;
    Alcotest.test_case "no-op set_relation keeps the memoized index" `Quick
      test_noop_set_relation_keeps_index;
    Alcotest.test_case "INDEX roundtrip re-attaches without rebuilding" `Quick
      test_index_persist_roundtrip;
    Alcotest.test_case "stripped INDEX dumps degrade to rebuild" `Quick
      test_index_stripped_dump_rebuilds;
    Alcotest.test_case "garbled INDEX payload degrades to rebuild" `Quick
      test_index_garbled_payload_rebuilds;
    Alcotest.test_case "torn INDEX file drops declarations with a note" `Quick
      test_index_torn_file_drops_declarations;
    Alcotest.test_case "compiled join is probe-served and agrees" `Quick
      test_compiled_query_probe_parity;
  ]
