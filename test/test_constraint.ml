(* The constraint subsystem: ni-tolerant uniqueness, not-null, foreign
   keys with restrict/cascade/set-null, declaration-time verification,
   serialization, persistence, and the session layer's typed rejection. *)

open Nullrel

let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_dir f =
  let dir = temp_dir "nullrel_constr" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ints name cols = Schema.make name (List.map (fun c -> (c, Domain.Ints)) cols)

let tup cells =
  Tuple.of_strings (List.map (fun (a, v) -> (a, Value.Int v)) cells)

let xrel rows = Xrel.of_list (List.map tup rows)

(* T(K, V) / R(F, W) / S(G): R.F references T.K, S.G references R.W. *)
let base ?(t = [ [ ("K", 1); ("V", 10) ] ]) ?(r = []) ?(s = []) () =
  let cat = Storage.Catalog.add Storage.Catalog.empty (ints "T" [ "K"; "V" ]) (xrel t) in
  let cat = Storage.Catalog.add cat (ints "R" [ "F"; "W" ]) (xrel r) in
  Storage.Catalog.add cat (ints "S" [ "G" ]) (xrel s)

let run cat stmt = Dml.exec_string cat stmt
let run_cat cat stmt = (run cat stmt).Dml.catalog

let check_violation name pred cat stmt =
  match run cat stmt with
  | _ -> Alcotest.failf "%s: expected a constraint violation" name
  | exception Constr.Error v ->
      Alcotest.(check bool)
        (name ^ ": violation class")
        true
        (pred (Constr.class_name v))

(* ---------------------- unique, ni-tolerant -------------------- *)

let test_unique_ignores_ni () =
  let cat = base ~t:[] () in
  let cat = run_cat cat "constrain unique T (K) as uq" in
  (* two tuples null on K collide with nothing *)
  let cat = run_cat cat "append to T (V = 1)" in
  let cat = run_cat cat "append to T (V = 2)" in
  let cat = run_cat cat "append to T (K = 1, V = 3)" in
  (* re-appending the same tuple is idempotent, not a duplicate *)
  let cat = run_cat cat "append to T (K = 1, V = 3)" in
  Alcotest.(check int) "three distinct tuples" 3
    (Tuple.Set.cardinal (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat "T"))));
  check_violation "duplicate key"
    (String.equal "unique")
    cat "append to T (K = 1, V = 9)"

(* -------------------------- not-null --------------------------- *)

let test_not_null () =
  let cat = base ~t:[] () in
  let cat = run_cat cat "constrain notnull T (K) as nn" in
  let cat = run_cat cat "append to T (K = 1, V = 1)" in
  check_violation "ni on a not-null attribute"
    (String.equal "not-null")
    cat "append to T (V = 2)"

(* ----------------------- foreign keys -------------------------- *)

let test_fk_null_reference_passes () =
  let cat = base () in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete restrict as fkr" in
  (* a tuple null on the local attribute asserts nothing *)
  let cat = run_cat cat "append to R (W = 7)" in
  Alcotest.(check (list Alcotest.reject)) "no reference violations" []
    (Storage.Catalog.check_references cat);
  check_violation "dangling total reference"
    (String.equal "fk-dangling")
    cat "append to R (F = 9, W = 8)"

let test_fk_restrict () =
  let cat = base ~r:[ [ ("F", 1); ("W", 2) ] ] () in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete restrict as fkr" in
  check_violation "restrict blocks the delete"
    (String.equal "fk-restricted")
    cat "range of v is T delete v where v.K = 1"

let test_fk_cascade_transitive () =
  let cat =
    base
      ~t:[ [ ("K", 1); ("V", 10) ]; [ ("K", 2); ("V", 20) ] ]
      ~r:[ [ ("F", 1); ("W", 5) ]; [ ("F", 2); ("W", 6) ] ]
      ~s:[ [ ("G", 5) ] ]
      ()
  in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete cascade as fkr" in
  let cat = run_cat cat "constrain fk S (G) to R (W) on delete cascade as fks" in
  let out = run cat "range of v is T delete v where v.K = 1" in
  Alcotest.(check (list string))
    "touched lists the whole chain" [ "R"; "S"; "T" ] out.Dml.touched;
  Alcotest.(check bool) "message narrates the cascade" true
    (let rec contains i =
       i + 7 <= String.length out.Dml.message
       && (String.equal (String.sub out.Dml.message i 7) "cascade"
          || contains (i + 1))
     in
     contains 0);
  let cat = out.Dml.catalog in
  let card n =
    Tuple.Set.cardinal (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat n)))
  in
  Alcotest.(check int) "T keeps the other tuple" 1 (card "T");
  Alcotest.(check int) "R loses the orphan" 1 (card "R");
  Alcotest.(check int) "S loses the transitive orphan" 0 (card "S");
  Alcotest.(check (list Alcotest.reject)) "referentially clean" []
    (Storage.Catalog.check_references cat)

let test_fk_set_null () =
  let cat = base ~r:[ [ ("F", 1); ("W", 2) ] ] () in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete setnull as fkr" in
  let cat = run_cat cat "range of v is T delete v where v.K = 1" in
  let tuples =
    Tuple.Set.elements (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat "R")))
  in
  (match tuples with
  | [ t ] ->
      Alcotest.(check bool) "F rewritten to ni" true
        (Tuple.get t (Attr.make "F") = Value.Null);
      Alcotest.(check bool) "W untouched" true
        (Tuple.get t (Attr.make "W") = Value.Int 2)
  | _ -> Alcotest.fail "R should keep exactly one (nulled) tuple");
  Alcotest.(check (list Alcotest.reject)) "referentially clean" []
    (Storage.Catalog.check_references cat)

let test_fk_set_null_blocked_by_not_null () =
  let cat = base ~r:[ [ ("F", 1); ("W", 2) ] ] () in
  let cat = run_cat cat "constrain notnull R (F) as nn" in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete setnull as fkr" in
  check_violation "set-null forbidden by not-null"
    (String.equal "set-null-blocked")
    cat "range of v is T delete v where v.K = 1";
  (* the aborted delete left everything in place *)
  Alcotest.(check int) "T unchanged" 1
    (Tuple.Set.cardinal (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat "T"))))

let test_fk_set_null_blocked_by_key () =
  let t = Schema.make "T" [ ("K", Domain.Ints) ] in
  let r = Schema.make "R" ~key:[ "F" ] [ ("F", Domain.Ints) ] in
  let cat = Storage.Catalog.add Storage.Catalog.empty t (xrel [ [ ("K", 1) ] ]) in
  let cat = Storage.Catalog.add cat r (xrel [ [ ("F", 1) ] ]) in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete setnull as fkr" in
  check_violation "set-null forbidden by the primary key"
    (String.equal "set-null-blocked")
    cat "range of v is T delete v where v.K = 1"

(* ------------------- declaration-time verify ------------------- *)

let test_declare_verifies_existing_data () =
  let cat = base ~t:[ [ ("K", 1); ("V", 1) ]; [ ("K", 1); ("V", 2) ] ] () in
  (match run cat "constrain unique T (K)" with
  | _ -> Alcotest.fail "declaring over duplicates must fail"
  | exception Constr.Error _ -> ());
  Alcotest.(check int) "nothing was attached" 0
    (List.length (Storage.Catalog.constraints cat));
  (* dangling data blocks a foreign key too *)
  let cat = base ~r:[ [ ("F", 9); ("W", 1) ] ] () in
  match run cat "constrain fk R (F) to T (K) on delete restrict" with
  | _ -> Alcotest.fail "declaring over dangling references must fail"
  | exception Constr.Error _ -> ()

let test_unconstrain () =
  let cat = base ~r:[ [ ("F", 1); ("W", 2) ] ] () in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete restrict as fkr" in
  let cat = run_cat cat "unconstrain fkr" in
  Alcotest.(check int) "dropped" 0 (List.length (Storage.Catalog.constraints cat));
  (* the restricted delete now goes through *)
  let cat = run_cat cat "range of v is T delete v where v.K = 1" in
  Alcotest.(check int) "T empty" 0
    (Tuple.Set.cardinal (Relation.tuples (Xrel.rep (Storage.Catalog.relation cat "T"))))

(* ----------------------- serialization ------------------------- *)

let test_def_line_roundtrip () =
  let defs =
    [
      Constr.Unique { name = "uq"; rel = "T"; attrs = [ Attr.make "K"; Attr.make "V" ] };
      Constr.Not_null { name = "nn"; rel = "R"; attr = Attr.make "F" };
      Constr.Foreign_key
        {
          name = "fk1"; rel = "R"; target = "T";
          pairs = [ (Attr.make "F", Attr.make "K") ];
          on_delete = Constr.Restrict;
        };
      Constr.Foreign_key
        {
          name = "fk2"; rel = "S"; target = "R";
          pairs = [ (Attr.make "G", Attr.make "W"); (Attr.make "H", Attr.make "F") ];
          on_delete = Constr.Cascade;
        };
      Constr.Foreign_key
        {
          name = "fk3"; rel = "R"; target = "T";
          pairs = [ (Attr.make "F", Attr.make "K") ];
          on_delete = Constr.Set_null;
        };
    ]
  in
  List.iter
    (fun def ->
      match Constr.def_of_line (Constr.def_to_line def) with
      | Some back ->
          Alcotest.(check string)
            ("roundtrip " ^ Constr.name def)
            (Constr.def_to_line def) (Constr.def_to_line back)
      | None -> Alcotest.failf "unparseable line for %s" (Constr.name def))
    defs;
  Alcotest.(check bool) "garbage is None" true
    (Constr.def_of_line "nonsense\tT\tK" = None)

(* ------------------------ persistence -------------------------- *)

let test_constraints_persist () =
  with_temp_dir @@ fun dir ->
  let cat = base ~r:[ [ ("F", 1); ("W", 2) ] ] () in
  let cat = run_cat cat "constrain unique T (K) as uq" in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete cascade as fkr" in
  Storage.Persist.save ~dir cat;
  let loaded = Storage.Persist.load ~dir () in
  Alcotest.(check (list string))
    "definitions restored" [ "uq"; "fkr" ]
    (List.map Constr.name (Storage.Catalog.constraints loaded));
  Alcotest.(check (list string))
    "restored as verified" []
    (Storage.Catalog.unverified_constraints loaded);
  (* enforcement is live on the loaded catalog *)
  match run loaded "append to T (K = 1, V = 99)" with
  | _ -> Alcotest.fail "loaded unique constraint must still fire"
  | exception Constr.Error _ -> ()

let test_stale_constraints_reported () =
  with_temp_dir @@ fun dir ->
  let cat = base () in
  let cat = run_cat cat "constrain unique T (K) as uq" in
  (* a wholesale reload of T marks the constraint unverified *)
  let cat =
    Storage.Catalog.add cat (ints "T" [ "K"; "V" ])
      (xrel [ [ ("K", 3); ("V", 1) ]; [ ("K", 4); ("V", 2) ] ])
  in
  Alcotest.(check (list string)) "stale before save" [ "uq" ]
    (Storage.Catalog.unverified_constraints cat);
  Storage.Persist.save ~dir cat;
  let report = Storage.Persist.load_report ~dir () in
  Alcotest.(check (list string)) "stale after load" [ "uq" ]
    (Storage.Catalog.unverified_constraints report.Storage.Persist.catalog);
  let mentions_stale =
    List.exists
      (fun line ->
        let rec contains i =
          i + 5 <= String.length line
          && (String.equal (String.sub line i 5) "stale" || contains (i + 1))
        in
        contains 0)
      (Storage.Persist.report_lines report)
  in
  Alcotest.(check bool) "load report surfaces the staleness" true mentions_stale;
  (* revalidation clears it *)
  let cat, violations =
    Storage.Catalog.revalidate_constraints report.Storage.Persist.catalog
  in
  Alcotest.(check int) "clean data revalidates" 0 (List.length violations);
  Alcotest.(check (list string)) "verified again" []
    (Storage.Catalog.unverified_constraints cat)

(* ------------------- session-layer rejection ------------------- *)

let test_session_constraint_rejection () =
  with_temp_dir @@ fun dir ->
  let cat = base () in
  let cat = run_cat cat "constrain fk R (F) to T (K) on delete restrict as fkr" in
  Storage.Persist.save ~dir cat;
  let eng, _ = Session.open_engine ~dir () in
  let a = Session.attach eng in
  let b = Session.attach eng in
  Session.begin_ a;
  Session.begin_ b;
  ignore (Session.exec_string a "append to R (F = 1, W = 7)");
  (* B's snapshot has no referencing row, so the delete stages fine *)
  ignore (Session.exec_string b "range of v is T delete v where v.K = 1");
  ignore (Session.commit a);
  (match Session.commit b with
  | _ -> Alcotest.fail "B's delete must be rejected at commit"
  | exception Session.Session_error.Error e ->
      (match e with
      | Session.Session_error.Constraint v ->
          Alcotest.(check string) "restricted" "fk-restricted" (Constr.class_name v)
      | _ -> Alcotest.fail "expected a Constraint rejection");
      Alcotest.(check int) "constraint rejections exit 10" 10
        (Session.Session_error.exit_code e));
  let snap = (Session.engine_snapshot eng).Session.catalog in
  Alcotest.(check (list Alcotest.reject)) "published snapshot is clean" []
    (Storage.Catalog.check_references snap);
  Session.shutdown eng

let suite =
  [
    Alcotest.test_case "unique ignores ni" `Quick test_unique_ignores_ni;
    Alcotest.test_case "not-null forbids ni" `Quick test_not_null;
    Alcotest.test_case "fk: null reference passes" `Quick test_fk_null_reference_passes;
    Alcotest.test_case "fk: restrict blocks" `Quick test_fk_restrict;
    Alcotest.test_case "fk: cascade is transitive" `Quick test_fk_cascade_transitive;
    Alcotest.test_case "fk: set-null rewrites to ni" `Quick test_fk_set_null;
    Alcotest.test_case "set-null blocked by not-null" `Quick
      test_fk_set_null_blocked_by_not_null;
    Alcotest.test_case "set-null blocked by the key" `Quick
      test_fk_set_null_blocked_by_key;
    Alcotest.test_case "declare verifies existing data" `Quick
      test_declare_verifies_existing_data;
    Alcotest.test_case "unconstrain drops enforcement" `Quick test_unconstrain;
    Alcotest.test_case "def line roundtrip" `Quick test_def_line_roundtrip;
    Alcotest.test_case "constraints persist" `Quick test_constraints_persist;
    Alcotest.test_case "stale constraints reported" `Quick
      test_stale_constraints_reported;
    Alcotest.test_case "session rejects with exit 10" `Quick
      test_session_constraint_rejection;
  ]
