(* Property tests: snapshot isolation and group commit against a
   model. A random schedule of transactions — which session acts,
   whether it touches the write-write hotspot, when the queue is
   flushed — is run sequentially (hence deterministically) through the
   engine; the committed/aborted outcomes reported by [await] induce a
   model of what the database must contain, which is checked both
   against the live snapshot and against a from-disk recovery. *)

open Qgen

let count = 60

let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* One step of a schedule: session [who] stages a transaction
   (guaranteed-unique EVENTS append, plus the COUNTER hotspot when
   [hot]); [flush_now] decides whether the queue is drained before the
   next step piles on. *)
type step = { who : int; hot : bool; flush_now : bool }

let step_gen =
  QCheck.Gen.(
    map3
      (fun who hot flush_now -> { who; hot; flush_now })
      (int_range 0 2) bool bool)

let schedule_gen = QCheck.Gen.(list_size (int_range 1 24) step_gen)

let print_schedule sched =
  String.concat ";"
    (List.map
       (fun s ->
         Printf.sprintf "s%d%s%s" s.who
           (if s.hot then "!" else "")
           (if s.flush_now then "|" else ""))
       sched)

let arbitrary_schedule = QCheck.make ~print:print_schedule schedule_gen

(* Awaiting a session's in-flight transaction updates the model: on
   commit, its append (and hotspot tag, at its commit lsn) become
   expected state; on conflict they must never appear. *)
type inflight = { seq : int; tag : int option }

let run_schedule sched =
  let dir = temp_dir "nullrel_props_session" in
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  Session.Drive.seed ~dir ();
  let eng, _ = Session.open_engine ~dir () in
  let setup = Session.attach eng in
  ignore (Session.exec_string setup "append to COUNTER (C = 0, N = 0)");
  ignore (Session.commit setup);
  let sessions = Array.init 3 (fun _ -> Session.attach eng) in
  let inflight = Array.make 3 None in
  let next_seq = Array.make 3 0 in
  let expected_events = ref [] in
  let forbidden_events = ref [] in
  let committed_tags = ref [] (* (lsn, tag) *) in
  let tag_of who seq = 10_000 + (who * 1000) + seq in
  let await who =
    match inflight.(who) with
    | None -> ()
    | Some fl -> (
        inflight.(who) <- None;
        match Session.await sessions.(who) with
        | lsn ->
            expected_events := (who, fl.seq) :: !expected_events;
            Option.iter
              (fun tag -> committed_tags := (lsn, tag) :: !committed_tags)
              fl.tag
        | exception Session.Session_error.Error
            (Session.Session_error.Conflict _) ->
            forbidden_events := (who, fl.seq) :: !forbidden_events)
  in
  List.iter
    (fun { who; hot; flush_now } ->
      (* A session with a submitted txn must collect it first. *)
      await who;
      let s = sessions.(who) in
      next_seq.(who) <- next_seq.(who) + 1;
      let seq = next_seq.(who) in
      ignore
        (Session.exec_string s
           (Printf.sprintf "append to EVENTS (SID = %d, SEQ = %d)" (who + 1)
              seq));
      let tag =
        if hot then begin
          ignore
            (Session.exec_string s
               (Printf.sprintf
                  "range of c is COUNTER replace c (N = %d) where c.C = 0"
                  (tag_of who seq)));
          Some (tag_of who seq)
        end
        else None
      in
      (match Session.submit s with
      | () -> inflight.(who) <- Some { seq; tag }
      | exception Session.Session_error.Error
          (Session.Session_error.Queue_full _) ->
          (* Drain and resubmit; the txn stayed staged. *)
          Session.flush eng;
          Session.submit s;
          inflight.(who) <- Some { seq; tag });
      if flush_now then Session.flush eng)
    sched;
  Session.flush eng;
  for who = 0 to 2 do
    await who
  done;
  let final = (Session.engine_snapshot eng).Session.catalog in
  Session.shutdown eng;
  (* Recovery from disk must reproduce the live snapshot exactly. *)
  let recovered = (Storage.Persist.recover ~dir ()).Storage.Persist.catalog in
  let ok_events cat =
    List.for_all
      (fun (who, seq) -> Session.Drive.has_event cat ~sid:(who + 1) ~seq)
      !expected_events
    && List.for_all
         (fun (who, seq) ->
           not (Session.Drive.has_event cat ~sid:(who + 1) ~seq))
         !forbidden_events
    && Session.Drive.events_cardinal cat = List.length !expected_events
  in
  let expected_counter =
    match
      List.sort (fun (a, _) (b, _) -> compare b a) !committed_tags
    with
    | (_, tag) :: _ -> tag
    | [] -> 0
  in
  let ok_counter cat = Session.Drive.counter_value cat = Some expected_counter in
  ok_events final && ok_counter final && ok_events recovered
  && ok_counter recovered

let isolation_and_durability =
  QCheck.Test.make ~count ~name:"random schedules: isolation + durability"
    arbitrary_schedule run_schedule

(* Committed-batch replay exactness, directly at the journal level: a
   group batch appended and torn at every byte boundary either replays
   a whole-record prefix or reports the tear — never garbage. *)
let torn_everywhere =
  QCheck.Test.make ~count:20 ~name:"group batch torn at any byte is a prefix"
    QCheck.(make Gen.(int_range 1 5))
    (fun n ->
      let dir = temp_dir "nullrel_props_torn" in
      Fun.protect ~finally:(fun () -> rm_rf dir)
      @@ fun () ->
      let io = Storage.Io.real in
      Session.Drive.seed ~io ~dir ();
      let record lsn =
        let tuple =
          Nullrel.Tuple.set
            (Nullrel.Tuple.set Nullrel.Tuple.empty
               (Nullrel.Attr.make "SID") (Nullrel.Value.Int lsn))
            (Nullrel.Attr.make "SEQ") (Nullrel.Value.Int lsn)
        in
        {
          Storage.Wal.lsn;
          ops =
            [
              Storage.Wal.Change
                {
                  rel = "EVENTS";
                  added =
                    Nullrel.Xrel.of_tuples (Nullrel.Tuple.Set.singleton tuple);
                  removed = Nullrel.Xrel.of_tuples Nullrel.Tuple.Set.empty;
                };
            ];
        }
      in
      let rs = List.init n (fun i -> record (i + 1)) in
      let path = Storage.Wal.file ~dir in
      (* Each record's frame size, measured one at a time. *)
      let sizes =
        List.map
          (fun r ->
            Storage.Wal.reset ~io ~dir;
            Storage.Wal.append ~io ~dir r;
            String.length (io.Storage.Io.read_file path))
          rs
      in
      let boundaries =
        List.rev
          (List.fold_left (fun acc s -> (List.hd acc + s) :: acc) [ 0 ] sizes)
      in
      Storage.Wal.reset ~io ~dir;
      Storage.Wal.append_batch ~io ~dir rs;
      let data = io.Storage.Io.read_file path in
      let full = String.length data in
      let ok = ref (full = List.nth boundaries n) in
      for cut = 0 to full - 1 do
        io.Storage.Io.write_file path (String.sub data 0 cut);
        let prefix, note = Storage.Wal.read ~io ~dir in
        let k = List.length prefix in
        (* How many whole frames fit in [cut] bytes. *)
        let whole =
          List.length (List.filter (fun b -> b <= cut) boundaries) - 1
        in
        let at_boundary = List.mem cut boundaries in
        (* The valid prefix is exactly the whole frames, in order, and
           a cut inside a frame — a genuine tear — must be flagged,
           while a cut on a boundary reads clean (indistinguishable
           from a shorter committed log). *)
        ok :=
          !ok && k = whole
          && List.for_all2
               (fun (r : Storage.Wal.record) l -> r.Storage.Wal.lsn = l)
               prefix
               (List.init k (fun i -> i + 1))
          && (if at_boundary then note = None else note <> None)
      done;
      !ok)

let suite = List.map to_alcotest [ isolation_and_durability; torn_everywhere ]
