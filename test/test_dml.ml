(* QUEL update statements: parsing and Section 7 execution semantics. *)

open Nullrel
open Helpers

let fresh_catalog () =
  Storage.Catalog.add Storage.Catalog.empty Paperdata.Fixtures.emp_schema_v2
    Paperdata.Fixtures.emp

let emp_of cat = Storage.Catalog.relation cat "EMP"

(* ------------------------- parsing ------------------------ *)

let test_parse_statements () =
  (match Quel.Parser.parse_statement "range of e is EMP retrieve (e.NAME)" with
  | Quel.Ast.Retrieve _ -> ()
  | _ -> Alcotest.fail "expected retrieve");
  (match
     Quel.Parser.parse_statement "append to EMP (E# = 1, NAME = \"X\")"
   with
  | Quel.Ast.Append { rel = "EMP"; values = [ ("E#", Value.Int 1); ("NAME", Value.Str "X") ] } ->
      ()
  | _ -> Alcotest.fail "expected append");
  (match
     Quel.Parser.parse_statement
       "range of e is EMP delete e where e.E# = 1120"
   with
  | Quel.Ast.Delete { var = "e"; rel = "EMP"; where = Some _ } -> ()
  | _ -> Alcotest.fail "expected delete");
  match
    Quel.Parser.parse_statement
      "range of e is EMP replace e (TEL# = 2631111) where e.E# = 1120"
  with
  | Quel.Ast.Replace { var = "e"; rel = "EMP"; values = [ ("TEL#", Value.Int 2631111) ]; where = Some _ } ->
      ()
  | _ -> Alcotest.fail "expected replace"

let test_parse_statement_errors () =
  let fails src =
    try
      ignore (Quel.Parser.parse_statement src);
      false
    with Quel.Parser.Error _ -> true
  in
  Alcotest.(check bool) "delete without range" true (fails "delete e");
  Alcotest.(check bool) "mismatched delete variable" true
    (fails "range of e is EMP delete f");
  Alcotest.(check bool) "two ranges for replace" true
    (fails "range of e is EMP range of f is EMP replace e (A = 1)");
  Alcotest.(check bool) "append without assignments" true
    (fails "append to EMP");
  Alcotest.(check bool) "assignment needs a literal" true
    (fails "append to EMP (A = e.B)")

let test_statement_pp_roundtrip () =
  List.iter
    (fun src ->
      let st = Quel.Parser.parse_statement src in
      let printed = Nullrel.Pp.to_string Quel.Ast.pp_statement st in
      Alcotest.(check bool) (src ^ " roundtrips") true
        (Quel.Parser.parse_statement printed = st))
    [
      "append to EMP (E# = 1, NAME = \"X\")";
      "range of e is EMP delete e where e.E# = 1120";
      "range of e is EMP replace e (TEL# = 5) where e.SEX = \"F\"";
      "range of e is EMP retrieve (e.NAME) where e.E# > 2000";
    ]

(* ------------------------ execution ----------------------- *)

let test_append () =
  let cat = fresh_catalog () in
  let outcome =
    Dml.exec_string cat
      "append to EMP (E# = 9999, NAME = \"NEW\", SEX = \"F\")"
  in
  Alcotest.(check string) "message" "1 tuple appended" outcome.Dml.message;
  let updated = emp_of outcome.Dml.catalog in
  Alcotest.(check int) "four employees" 4 (Xrel.cardinal updated);
  Alcotest.(check bool) "monotone" true
    (Xrel.properly_contains updated Paperdata.Fixtures.emp)

let test_append_absorbs () =
  let cat = fresh_catalog () in
  (* Learning BROWN's TEL# replaces her old, less informative row. *)
  let outcome =
    Dml.exec_string cat
      "append to EMP (E# = 4335, NAME = \"BROWN\", SEX = \"F\", MGR# = 2235, \
       TEL# = 2639452)"
  in
  let updated = emp_of outcome.Dml.catalog in
  Alcotest.(check int) "still three employees" 3 (Xrel.cardinal updated);
  Alcotest.(check bool) "strictly more informative" true
    (Xrel.properly_contains updated Paperdata.Fixtures.emp)

let test_append_guards () =
  let cat = fresh_catalog () in
  Alcotest.(check bool) "unknown attribute" true
    (try
       ignore (Dml.exec_string cat "append to EMP (NOPE = 1)");
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true);
  Alcotest.(check bool) "unknown relation" true
    (try
       ignore (Dml.exec_string cat "append to NOPE (A = 1)");
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true);
  (* A key violation aborts: the catalog is unchanged. *)
  Alcotest.(check bool) "duplicate key rejected" true
    (try
       ignore (Dml.exec_string cat "append to EMP (E# = 1120, NAME = \"DUP\")");
       false
     with Storage.Catalog.Violation _ -> true)

let test_delete () =
  let cat = fresh_catalog () in
  let outcome =
    Dml.exec_string cat "range of e is EMP delete e where e.SEX = \"M\""
  in
  Alcotest.(check string) "message" "2 tuples deleted" outcome.Dml.message;
  check_xrel "only BROWN remains"
    (x
       [
         t [ ("E#", i 4335); ("NAME", s "BROWN"); ("SEX", s "F"); ("MGR#", i 2235) ];
       ])
    (emp_of outcome.Dml.catalog)

let test_delete_never_touches_null_rows () =
  (* The lower-bound discipline: a tuple whose TEL# is unknown is never
     deleted by a TEL#-based condition. *)
  let cat = fresh_catalog () in
  let outcome =
    Dml.exec_string cat "range of e is EMP delete e where e.TEL# < 9999999"
  in
  Alcotest.(check string) "nothing surely matches" "0 tuples deleted"
    outcome.Dml.message;
  check_xrel "unchanged" Paperdata.Fixtures.emp (emp_of outcome.Dml.catalog)

let test_delete_all () =
  let cat = fresh_catalog () in
  let outcome = Dml.exec_string cat "range of e is EMP delete e" in
  Alcotest.(check string) "all deleted" "3 tuples deleted" outcome.Dml.message;
  Alcotest.(check bool) "empty" true
    (Xrel.is_empty (emp_of outcome.Dml.catalog))

let test_replace () =
  let cat = fresh_catalog () in
  let outcome =
    Dml.exec_string cat
      "range of e is EMP replace e (TEL# = 2631111) where e.E# = 1120"
  in
  Alcotest.(check string) "message" "1 tuple replaced" outcome.Dml.message;
  let updated = emp_of outcome.Dml.catalog in
  Alcotest.(check bool) "SMITH now has a TEL#" true
    (Xrel.x_mem
       (t
          [
            ("E#", i 1120); ("NAME", s "SMITH"); ("SEX", s "M");
            ("MGR#", i 2235); ("TEL#", i 2631111);
          ])
       updated);
  Alcotest.(check bool) "replacement added information" true
    (Xrel.properly_contains updated Paperdata.Fixtures.emp)

let test_replace_qualification_scope () =
  let cat = fresh_catalog () in
  Alcotest.(check bool) "foreign variable rejected" true
    (try
       ignore
         (Dml.exec_string cat
            "range of e is EMP replace e (TEL# = 1) where f.E# = 1");
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true)

let test_retrieve_statement () =
  let cat = fresh_catalog () in
  let outcome =
    Dml.exec_string cat "range of e is EMP retrieve (e.NAME) where e.SEX = \"F\""
  in
  match outcome.Dml.result with
  | Some result ->
      check_xrel "retrieve works through exec"
        (x [ t [ ("NAME", s "BROWN") ] ])
        result.Quel.Eval.rel
  | None -> Alcotest.fail "expected a result table"

let test_through_the_shell () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_dml_%d" (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Storage.Persist.save ~dir (fresh_catalog ());
      let feed st line = fst (Shell.exec st line) in
      let st = feed Shell.initial (".open " ^ dir) in
      let st = feed st "range of e is EMP delete e where e.E# = 8799" in
      let st, out = Shell.exec st "range of e is EMP retrieve (e.NAME)" in
      ignore st;
      let contains needle =
        let nh = String.length out and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "GREEN deleted via the shell" true
        (contains "SMITH" && contains "BROWN" && not (contains "GREEN")))

let suite =
  [
    Alcotest.test_case "statement parsing" `Quick test_parse_statements;
    Alcotest.test_case "statement parse errors" `Quick
      test_parse_statement_errors;
    Alcotest.test_case "statement pp roundtrip" `Quick
      test_statement_pp_roundtrip;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "append absorbs" `Quick test_append_absorbs;
    Alcotest.test_case "append guards" `Quick test_append_guards;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "delete spares null rows" `Quick
      test_delete_never_touches_null_rows;
    Alcotest.test_case "delete all" `Quick test_delete_all;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "replace qualification scope" `Quick
      test_replace_qualification_scope;
    Alcotest.test_case "retrieve through exec" `Quick test_retrieve_statement;
    Alcotest.test_case "DML through the shell" `Quick test_through_the_shell;
  ]
