(* Storage substrate: hash indexes, CSV, catalog and algebraic updates. *)

open Nullrel
open Helpers

(* ----------------------- Hash_index ----------------------- *)

let ab = t [ ("A", i 1); ("B", i 2) ]
let abc = t [ ("A", i 1); ("B", i 2); ("C", i 3) ]
let a1 = t [ ("A", i 1) ]
let a2 = t [ ("A", i 2) ]

let test_index_probes () =
  let idx = Storage.Hash_index.build (rel [ ab; a2 ]) in
  Alcotest.(check int) "count at a1: ab matches" 1
    (Storage.Hash_index.count_at idx a1);
  Alcotest.(check int) "count at ab" 1 (Storage.Hash_index.count_at idx ab);
  Alcotest.(check int) "count at a2" 1 (Storage.Hash_index.count_at idx a2);
  Alcotest.(check int) "no match" 0
    (Storage.Hash_index.count_at idx (t [ ("A", i 9) ]));
  Alcotest.(check bool) "subsuming exists" true
    (Storage.Hash_index.subsuming_exists idx a1);
  Alcotest.(check bool) "strictly subsuming (a1 < ab)" true
    (Storage.Hash_index.strictly_subsuming_exists idx a1);
  Alcotest.(check bool) "ab not strictly subsumed" false
    (Storage.Hash_index.strictly_subsuming_exists idx ab)

let test_index_strict_with_member () =
  (* a1 is itself indexed: its own presence must not count as a strict
     subsumer, but ab's must. *)
  let idx = Storage.Hash_index.build (rel [ a1; ab ]) in
  Alcotest.(check int) "two tuples agree on A=1" 2
    (Storage.Hash_index.count_at idx a1);
  Alcotest.(check bool) "a1 strictly subsumed by ab" true
    (Storage.Hash_index.strictly_subsuming_exists idx a1);
  let idx_alone = Storage.Hash_index.build (rel [ a1; a2 ]) in
  Alcotest.(check bool) "a1 alone not strictly subsumed" false
    (Storage.Hash_index.strictly_subsuming_exists idx_alone a1)

let test_index_diff_agrees () =
  let r1 = rel [ ab; a2; t [ ("B", i 9) ] ] in
  let r2 = rel [ abc; t [ ("A", i 2) ] ] in
  let naive =
    Relation.filter (fun r -> not (Relation.x_mem r r2)) r1
  in
  Alcotest.check relation "indexed diff = naive diff" naive
    (Storage.Hash_index.diff r1 r2)

let test_index_minimize_agrees () =
  let redundant = rel [ ab; abc; a1; a2; Tuple.empty; t [ ("C", i 3) ] ] in
  Alcotest.check relation "indexed minimize = naive minimize"
    (Relation.minimize redundant)
    (Storage.Hash_index.minimize redundant)

let test_index_randomized_agreement () =
  (* Cross-validate on generated relations with nulls. *)
  let g = Workload.Prng.create 42 in
  let spec =
    { Workload.Gen.arity = 3; rows = 120; domain_size = 4; null_density = 0.3 }
  in
  for _ = 1 to 10 do
    let r1 = Workload.Gen.relation g spec in
    let r2 = Workload.Gen.relation g spec in
    Alcotest.check relation "diff agreement"
      (Relation.filter (fun r -> not (Relation.x_mem r r2)) r1)
      (Storage.Hash_index.diff r1 r2);
    Alcotest.check relation "minimize agreement" (Relation.minimize r1)
      (Storage.Hash_index.minimize r1)
  done

let test_index_x_mem () =
  (* The one-shot [x_mem] helper is gone: a membership probe is a
     [build] + [subsuming_exists], so repeated probes share the index. *)
  let idx = Storage.Hash_index.build (rel [ ab ]) in
  Alcotest.(check bool) "indexed x_mem" true
    (Storage.Hash_index.subsuming_exists idx a1);
  Alcotest.(check bool) "indexed x_mem negative" false
    (Storage.Hash_index.subsuming_exists idx a2)

(* --------------------------- Csv -------------------------- *)

let emp_csv = "E#,NAME,SEX,MGR#,TEL#\n1120,SMITH,M,2235,-\n4335,BROWN,F,2235,-\n8799,GREEN,M,1255,-\n"

let test_csv_read () =
  let attrs, x1 = Storage.Csv.read_string emp_csv in
  Alcotest.(check (list string)) "header"
    [ "E#"; "NAME"; "SEX"; "MGR#"; "TEL#" ]
    (List.map Attr.name attrs);
  check_xrel "Table II roundtrips from CSV" emp_table1 x1

let test_csv_roundtrip () =
  let attrs = Schema.attrs emp_schema_v2 in
  let out = Storage.Csv.write_string attrs emp_table2 in
  let _, back = Storage.Csv.read_string out in
  check_xrel "write . read = id" emp_table2 back

let test_csv_quoting () =
  let tricky =
    x
      [
        t [ ("A", s "a,b"); ("B", s "say \"hi\"") ];
        t [ ("A", s "-") ];
        (* the string dash, not the null *)
        t [ ("B", s "line1") ];
      ]
  in
  let out = Storage.Csv.write_string [ a_ "A"; a_ "B" ] tricky in
  let _, back = Storage.Csv.read_string out in
  check_xrel "quoting roundtrips" tricky back

let test_csv_with_schema () =
  let schema =
    Schema.make "R" [ ("A", Domain.Int_range (0, 99)); ("B", Domain.Strings) ]
  in
  let _, x1 = Storage.Csv.read_string ~schema "A,B\n7,42\n" in
  (* With the schema, B's 42 stays a string. *)
  check_xrel "typed parse" (x [ t [ ("A", i 7); ("B", s "42") ] ]) x1

let test_csv_errors () =
  let fails src =
    try
      ignore (Storage.Csv.read_string src);
      false
    with Storage.Csv.Error _ -> true
  in
  Alcotest.(check bool) "ragged row" true (fails "A,B\n1\n");
  Alcotest.(check bool) "empty input" true (fails "");
  Alcotest.(check bool) "unterminated quote" true (fails "A\n\"oops\n")

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "nullrel" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.Csv.write_file path (Schema.attrs emp_schema_v1) emp_table1;
      let _, back = Storage.Csv.read_file path in
      check_xrel "file roundtrip" emp_table1 back)

(* ------------------------- Catalog ------------------------ *)

let test_catalog_basics () =
  let cat = Storage.Catalog.add Storage.Catalog.empty emp_schema_v1 emp_table1 in
  Alcotest.(check bool) "mem" true (Storage.Catalog.mem cat "EMP");
  Alcotest.(check (list string)) "names" [ "EMP" ] (Storage.Catalog.names cat);
  check_xrel "relation back" emp_table1 (Storage.Catalog.relation cat "EMP");
  Alcotest.(check string) "schema back" "EMP"
    (Schema.name (Storage.Catalog.schema cat "EMP"));
  Alcotest.(check bool) "remove" false
    (Storage.Catalog.mem (Storage.Catalog.remove cat "EMP") "EMP")

let test_catalog_checks () =
  (* A duplicate key must be rejected at registration. *)
  let dup =
    x
      [
        t [ ("E#", i 1); ("NAME", s "X"); ("SEX", s "M") ];
        t [ ("E#", i 1); ("NAME", s "Y"); ("SEX", s "F") ];
      ]
  in
  Alcotest.(check bool) "violation raised" true
    (try
       ignore (Storage.Catalog.add Storage.Catalog.empty emp_schema_v1 dup);
       false
     with Storage.Catalog.Violation _ -> true);
  (* add_unchecked lets it through. *)
  Alcotest.(check bool) "unchecked accepts" true
    (Storage.Catalog.mem
       (Storage.Catalog.add_unchecked Storage.Catalog.empty emp_schema_v1 dup)
       "EMP")

let test_catalog_to_db () =
  let cat = Storage.Catalog.add Storage.Catalog.empty emp_schema_v1 emp_table1 in
  let db = Storage.Catalog.to_db cat in
  let result =
    Quel.Eval.run db
      (Quel.Parser.parse "range of e is EMP retrieve (e.NAME) where e.SEX = \"M\"")
  in
  check_xrel "query through catalog"
    (x [ t [ ("NAME", s "SMITH") ]; t [ ("NAME", s "GREEN") ] ])
    result.Quel.Eval.rel

let orders_schema =
  Schema.make "ORDERS" ~key:[ "O#" ]
    ~foreign_keys:[ ([ "CUST" ], "EMP", [ "E#" ]) ]
    [ ("O#", Domain.Ints); ("CUST", Domain.Ints) ]

let test_referential_integrity () =
  let orders ok_cust =
    x
      [
        t [ ("O#", i 1); ("CUST", i ok_cust) ];
        t [ ("O#", i 2) ];
        (* customer unknown: asserts nothing, never a violation *)
      ]
  in
  let cat =
    Storage.Catalog.add
      (Storage.Catalog.add Storage.Catalog.empty emp_schema_v1 emp_table1)
      orders_schema (orders 1120)
  in
  Alcotest.(check int) "valid references" 0
    (List.length (Storage.Catalog.check_references cat));
  (* A dangling total reference is flagged. *)
  let bad =
    Storage.Catalog.set_relation cat "ORDERS" (orders 9999)
  in
  let violations = Storage.Catalog.check_references bad in
  Alcotest.(check int) "one dangling reference" 1 (List.length violations);
  (match violations with
  | [ v ] ->
      Alcotest.(check string) "names the referencing relation" "ORDERS"
        v.Storage.Catalog.relation
  | _ -> Alcotest.fail "expected one violation");
  (* A missing target relation flags every total reference. *)
  let orphan =
    Storage.Catalog.add Storage.Catalog.empty orders_schema (orders 1120)
  in
  Alcotest.(check int) "absent target flags the reference" 1
    (List.length (Storage.Catalog.check_references orphan))

let test_foreign_key_declaration_guards () =
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore
         (Schema.make "R"
            ~foreign_keys:[ ([ "A" ], "S", [ "X"; "Y" ]) ]
            [ ("A", Domain.Ints) ]);
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true);
  Alcotest.(check bool) "unknown local attribute rejected" true
    (try
       ignore
         (Schema.make "R"
            ~foreign_keys:[ ([ "Z" ], "S", [ "X" ]) ]
            [ ("A", Domain.Ints) ]);
       false
     with Exec_error.Error (Exec_error.Bad_input _) -> true)

(* ------------------------- Binary ------------------------- *)

let test_binary_roundtrip () =
  List.iter
    (fun x_ ->
      check_xrel "decode . encode = id" x_
        (Storage.Binary.decode (Storage.Binary.encode x_)))
    [
      emp_table1;
      ps;
      Xrel.bottom;
      x [ t [ ("A", Value.Float 1.5); ("B", Value.Bool true) ] ];
      x [ t [ ("S", s "with,comma\"quote\nnewline") ] ];
      x [ t [ ("N", i (-123456789)) ]; t [ ("N", i max_int) ] ];
    ]

let test_binary_randomized () =
  let g = Workload.Prng.create 99 in
  for _ = 1 to 20 do
    let spec =
      { Workload.Gen.arity = 4; rows = 50; domain_size = 1000; null_density = 0.4 }
    in
    let x_ = Workload.Gen.xrel g spec in
    check_xrel "randomized roundtrip" x_
      (Storage.Binary.decode (Storage.Binary.encode x_))
  done

let test_binary_corruption () =
  let good = Storage.Binary.encode emp_table1 in
  let fails data =
    try
      ignore (Storage.Binary.decode data);
      false
    with Storage.Binary.Corrupt _ -> true
  in
  Alcotest.(check bool) "bad magic" true (fails ("XXXX" ^ String.sub good 4 (String.length good - 4)));
  Alcotest.(check bool) "truncated" true
    (fails (String.sub good 0 (String.length good - 3)));
  Alcotest.(check bool) "trailing bytes" true (fails (good ^ "!"));
  Alcotest.(check bool) "empty input" true (fails "")

let test_binary_file_roundtrip () =
  let path = Filename.temp_file "nullrel" ".nrx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.Binary.write_file path ps;
      check_xrel "file roundtrip" ps (Storage.Binary.read_file path))

let test_binary_compactness () =
  (* Sparse data: nulls cost nothing in the binary form. *)
  let g = Workload.Prng.create 123 in
  let spec =
    { Workload.Gen.arity = 6; rows = 300; domain_size = 100; null_density = 0.6 }
  in
  let x_ = Workload.Gen.xrel g spec in
  let attrs = Workload.Gen.attrs spec in
  let csv = Storage.Csv.write_string attrs x_ in
  let bin = Storage.Binary.encode x_ in
  Alcotest.(check bool) "binary smaller than CSV on sparse data" true
    (String.length bin < String.length csv)

(* ------------------------- Update ------------------------- *)

let test_insert_monotone () =
  let inserted = Storage.Update.insert ps' [ t [ ("P#", s "p9"); ("S#", s "s9") ] ] in
  Alcotest.(check bool) "new contains old" true (Xrel.contains inserted ps');
  (* Inserting already-subsumed information is a no-op. *)
  check_xrel "subsumed insert is identity" ps'
    (Storage.Update.insert ps' [ t [ ("S#", s "s2") ] ])

let test_delete () =
  check_xrel "delete a tuple"
    (x [ t [ ("S#", s "s1") ] ])
    (Storage.Update.delete ps' (x [ t [ ("P#", s "p1"); ("S#", s "s2") ] ]));
  (* Deleting with a less informative tuple removes everything it
     subsumes... nothing here, since (S#=s2) is less informative. *)
  check_xrel "less informative delete keeps the tuple" ps'
    (Storage.Update.delete ps' (x [ t [ ("P#", s "p9"); ("S#", s "s2") ] ]))

let test_delete_where () =
  let remaining =
    Storage.Update.delete_where
      (Predicate.cmp_const "S#" Predicate.Eq (s "s2"))
      ps'
  in
  check_xrel "only the sure match goes" (x [ t [ ("S#", s "s1") ] ]) remaining

(* ------------------------- Persist ------------------------ *)

let test_schema_roundtrip () =
  List.iter
    (fun schema ->
      let text = Storage.Persist.schema_to_string schema in
      let back = Storage.Persist.schema_of_string text in
      Alcotest.(check string) "same serialization"
        text
        (Storage.Persist.schema_to_string back))
    [ emp_schema_v1; emp_schema_v2; orders_schema;
      Schema.make "PLAIN" [ ("X", Domain.Bools); ("Y", Domain.Floats) ] ]

let test_schema_parse_errors () =
  let fails text =
    try
      ignore (Storage.Persist.schema_of_string text);
      false
    with Storage.Persist.Error _ -> true
  in
  Alcotest.(check bool) "no relation line" true (fails "column\tA\tint\n");
  Alcotest.(check bool) "bad domain" true
    (fails "relation\tR\ncolumn\tA\tzorp\n");
  Alcotest.(check bool) "odd fk" true
    (fails "relation\tR\ncolumn\tA\tint\nfk\tS\tA\n")

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nullrel_test_%d" (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_catalog_roundtrip () =
  with_temp_dir (fun dir ->
      let cat =
        Storage.Catalog.add
          (Storage.Catalog.add Storage.Catalog.empty emp_schema_v1 emp_table1)
          orders_schema
          (x [ t [ ("O#", i 1); ("CUST", i 1120) ]; t [ ("O#", i 2) ] ])
      in
      Storage.Persist.save ~dir cat;
      let back = Storage.Persist.load ~dir () in
      Alcotest.(check (list string)) "names preserved"
        (Storage.Catalog.names cat)
        (Storage.Catalog.names back);
      List.iter
        (fun name ->
          check_xrel (name ^ " preserved")
            (Storage.Catalog.relation cat name)
            (Storage.Catalog.relation back name);
          Alcotest.(check string) (name ^ " schema preserved")
            (Storage.Persist.schema_to_string (Storage.Catalog.schema cat name))
            (Storage.Persist.schema_to_string
               (Storage.Catalog.schema back name)))
        (Storage.Catalog.names cat);
      Alcotest.(check int) "references still valid" 0
        (List.length (Storage.Catalog.check_references back)))

let test_modify () =
  let modified =
    Storage.Update.modify
      ~where:(Predicate.cmp_const "S#" Predicate.Eq (s "s2"))
      ~using:(fun r -> Tuple.set r (a_ "P#") (s "p7"))
      ps'
  in
  check_xrel "modification rewrites the matching tuple"
    (x [ t [ ("S#", s "s1") ]; t [ ("P#", s "p7"); ("S#", s "s2") ] ])
    modified

(* Line-ending robustness: CRLF files, CR-only files, and a final row
   with no trailing newline must all parse to the same relation. *)
let test_csv_line_endings () =
  let replace_newlines sep =
    String.concat sep (String.split_on_char '\n' emp_csv)
  in
  let chop src = String.sub src 0 (String.length src - 1) in
  let _, expected = Storage.Csv.read_string emp_csv in
  List.iter
    (fun (label, src) ->
      let _, got = Storage.Csv.read_string src in
      check_xrel label expected got)
    [
      ("crlf line endings", replace_newlines "\r\n");
      ("cr-only line endings", chop (replace_newlines "\r"));
      ("no final newline", chop emp_csv);
      ("crlf, no final newline", chop (chop (replace_newlines "\r\n")));
      ("cr at end of file", chop (replace_newlines "\r"));
    ]

let test_csv_quoted_cr_preserved () =
  (* a CR inside quotes is data, not a row break, and survives the
     write/read roundtrip *)
  let tricky = x [ t [ ("A", s "one\rtwo"); ("B", s "three\r\nfour") ] ] in
  let out = Storage.Csv.write_string [ a_ "A"; a_ "B" ] tricky in
  let _, back = Storage.Csv.read_string out in
  check_xrel "quoted CR roundtrips" tricky back

(* Every proper prefix of an encoding must be rejected: the checksum
   trailer makes arbitrary truncation detectable. *)
let test_binary_truncation_fuzz () =
  let enc = Storage.Binary.encode emp_table2 in
  for len = 0 to String.length enc - 1 do
    match Storage.Binary.decode (String.sub enc 0 len) with
    | _ -> Alcotest.failf "truncation to %d of %d bytes was accepted" len
             (String.length enc)
    | exception Storage.Binary.Corrupt _ -> ()
  done

let suite =
  [
    Alcotest.test_case "index: probes" `Quick test_index_probes;
    Alcotest.test_case "index: strictness bookkeeping" `Quick
      test_index_strict_with_member;
    Alcotest.test_case "index: diff agrees with naive" `Quick
      test_index_diff_agrees;
    Alcotest.test_case "index: minimize agrees with naive" `Quick
      test_index_minimize_agrees;
    Alcotest.test_case "index: randomized agreement" `Quick
      test_index_randomized_agreement;
    Alcotest.test_case "index: one-shot x_mem" `Quick test_index_x_mem;
    Alcotest.test_case "csv: read" `Quick test_csv_read;
    Alcotest.test_case "csv: roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv: quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv: schema-typed parse" `Quick test_csv_with_schema;
    Alcotest.test_case "csv: errors" `Quick test_csv_errors;
    Alcotest.test_case "csv: line endings" `Quick test_csv_line_endings;
    Alcotest.test_case "csv: quoted CR preserved" `Quick
      test_csv_quoted_cr_preserved;
    Alcotest.test_case "csv: file roundtrip" `Quick test_csv_file_roundtrip;
    Alcotest.test_case "catalog: basics" `Quick test_catalog_basics;
    Alcotest.test_case "catalog: schema enforcement" `Quick
      test_catalog_checks;
    Alcotest.test_case "catalog: to_db" `Quick test_catalog_to_db;
    Alcotest.test_case "catalog: referential integrity" `Quick
      test_referential_integrity;
    Alcotest.test_case "catalog: foreign-key guards" `Quick
      test_foreign_key_declaration_guards;
    Alcotest.test_case "update: insert is monotone" `Quick
      test_insert_monotone;
    Alcotest.test_case "update: delete" `Quick test_delete;
    Alcotest.test_case "update: delete_where" `Quick test_delete_where;
    Alcotest.test_case "update: modify" `Quick test_modify;
    Alcotest.test_case "persist: schema roundtrip" `Quick
      test_schema_roundtrip;
    Alcotest.test_case "persist: schema parse errors" `Quick
      test_schema_parse_errors;
    Alcotest.test_case "persist: catalog roundtrip" `Quick
      test_catalog_roundtrip;
    Alcotest.test_case "binary: roundtrip" `Quick test_binary_roundtrip;
    Alcotest.test_case "binary: randomized roundtrip" `Quick
      test_binary_randomized;
    Alcotest.test_case "binary: corruption detected" `Quick
      test_binary_corruption;
    Alcotest.test_case "binary: file roundtrip" `Quick
      test_binary_file_roundtrip;
    Alcotest.test_case "binary: compactness" `Quick test_binary_compactness;
    Alcotest.test_case "binary: truncation fuzz" `Quick
      test_binary_truncation_fuzz;
  ]
