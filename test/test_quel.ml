(* Mini-QUEL: lexer, parser, resolution and evaluation mechanics.
   Figure 1/2 reproductions live in test_paper_examples.ml. *)

open Nullrel
open Helpers

(* ------------------------- Lexer -------------------------- *)

let test_lexer_basics () =
  let toks = Quel.Lexer.tokenize "range of e is EMP" in
  Alcotest.(check int) "token count incl. eof" 6 (List.length toks);
  Alcotest.(check bool) "keywords recognized" true
    (match toks with
    | [ Kw_range; Kw_of; Ident "e"; Kw_is; Ident "EMP"; Eof ] -> true
    | _ -> false)

let test_lexer_attributes_with_hash () =
  Alcotest.(check bool) "TEL# is one identifier" true
    (match Quel.Lexer.tokenize "e.TEL#" with
    | [ Ident "e"; Dot; Ident "TEL#"; Eof ] -> true
    | _ -> false)

let test_lexer_literals () =
  Alcotest.(check bool) "int, float, string" true
    (match Quel.Lexer.tokenize "42 2.5 \"F\"" with
    | [ Int 42; Float 2.5; String "F"; Eof ] -> true
    | _ -> false);
  Alcotest.(check bool) "negative int" true
    (match Quel.Lexer.tokenize "-7" with [ Int (-7); Eof ] -> true | _ -> false)

let test_lexer_operators () =
  Alcotest.(check bool) "all comparison operators" true
    (match Quel.Lexer.tokenize "= <> != < <= > >=" with
    | [
        Cmp Predicate.Eq;
        Cmp Predicate.Neq;
        Cmp Predicate.Neq;
        Cmp Predicate.Lt;
        Cmp Predicate.Le;
        Cmp Predicate.Gt;
        Cmp Predicate.Ge;
        Eof;
      ] ->
        true
    | _ -> false)

let test_lexer_case_insensitive_keywords () =
  Alcotest.(check bool) "RANGE = range" true
    (match Quel.Lexer.tokenize "RANGE Of iS" with
    | [ Kw_range; Kw_of; Kw_is; Eof ] -> true
    | _ -> false)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string raises" true
    (try
       ignore (Quel.Lexer.tokenize "\"oops");
       false
     with Quel.Lexer.Error _ -> true);
  Alcotest.(check bool) "stray character raises" true
    (try
       ignore (Quel.Lexer.tokenize "a @ b");
       false
     with Quel.Lexer.Error _ -> true)

(* ------------------------- Parser ------------------------- *)

let fig1 =
  "range of e is EMP\n\
   retrieve (e.NAME, e.E#)\n\
   where (e.SEX = \"F\" and e.TEL# > 2634000) or (e.TEL# < 2634000)"

let test_parse_fig1 () =
  let q = Quel.Parser.parse fig1 in
  Alcotest.(check int) "one range" 1 (List.length q.Quel.Ast.ranges);
  Alcotest.(check int) "two targets" 2 (List.length q.Quel.Ast.targets);
  Alcotest.(check bool) "where parsed" true (q.Quel.Ast.where <> None)

let test_parse_fig2 () =
  let q =
    Quel.Parser.parse
      "range of e is EMP\n\
       range of m is EMP\n\
       retrieve (e.NAME)\n\
       where m.SEX = \"M\" and e.MGR# = m.E# and e.MGR# <> e.E# and e.E# <> \
       m.MGR#"
  in
  Alcotest.(check (list (pair string string))) "two ranges"
    [ ("e", "EMP"); ("m", "EMP") ]
    q.Quel.Ast.ranges

let test_parse_precedence () =
  (* and binds tighter than or. *)
  let c = Quel.Parser.parse_cond "e.A = 1 or e.B = 2 and e.C = 3" in
  Alcotest.(check bool) "or of (cmp, and)" true
    (match c with
    | Quel.Ast.Or (Quel.Ast.Cmp _, Quel.Ast.And (Quel.Ast.Cmp _, Quel.Ast.Cmp _))
      ->
        true
    | _ -> false);
  (* parentheses override. *)
  let c2 = Quel.Parser.parse_cond "(e.A = 1 or e.B = 2) and e.C = 3" in
  Alcotest.(check bool) "and of (or, cmp)" true
    (match c2 with
    | Quel.Ast.And (Quel.Ast.Or _, Quel.Ast.Cmp _) -> true
    | _ -> false)

let test_parse_not () =
  let c = Quel.Parser.parse_cond "not e.A = 1 and e.B = 2" in
  Alcotest.(check bool) "not binds tightest" true
    (match c with
    | Quel.Ast.And (Quel.Ast.Not (Quel.Ast.Cmp _), Quel.Ast.Cmp _) -> true
    | _ -> false)

let test_parse_errors () =
  let fails src =
    try
      ignore (Quel.Parser.parse src);
      false
    with Quel.Parser.Error _ -> true
  in
  Alcotest.(check bool) "missing retrieve" true (fails "range of e is EMP");
  Alcotest.(check bool) "no ranges" true (fails "retrieve (e.A)");
  Alcotest.(check bool) "trailing garbage" true
    (fails "range of e is EMP retrieve (e.A) extra");
  Alcotest.(check bool) "bad where" true
    (fails "range of e is EMP retrieve (e.A) where e.A")

let test_roundtrip_pp () =
  let q = Quel.Parser.parse fig1 in
  let printed = Nullrel.Pp.to_string Quel.Ast.pp q in
  let q2 = Quel.Parser.parse printed in
  Alcotest.(check bool) "parse . print . parse is stable" true (q = q2)

(* ----------------------- Resolution ----------------------- *)

let r_schema =
  Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Int_range (0, 9)) ]

let s_schema = Schema.make "S" [ ("C", Domain.Ints) ]

let db : Quel.Resolve.db =
  [
    ("R", (r_schema, x [ t [ ("A", i 1); ("B", i 2) ]; t [ ("A", i 3) ] ]));
    ("S", (s_schema, x [ t [ ("C", i 1) ]; t [ ("C", i 9) ] ]));
  ]

let resolve_fails src =
  try
    ignore (Quel.Eval.run db (Quel.Parser.parse src));
    false
  with Quel.Resolve.Error _ -> true

let test_resolution_errors () =
  Alcotest.(check bool) "unknown relation" true
    (resolve_fails "range of e is NOPE retrieve (e.A)");
  Alcotest.(check bool) "unknown attribute" true
    (resolve_fails "range of e is R retrieve (e.ZZ)");
  Alcotest.(check bool) "unbound variable in where" true
    (resolve_fails "range of e is R retrieve (e.A) where q.A = 1");
  Alcotest.(check bool) "duplicate variable" true
    (resolve_fails "range of e is R range of e is S retrieve (e.A)")

(* ----------------------- Evaluation ----------------------- *)

let run src = (Quel.Eval.run db (Quel.Parser.parse src)).Quel.Eval.rel

let test_eval_single_range () =
  check_xrel "select on A"
    (x [ t [ ("A", i 1) ] ])
    (run "range of e is R retrieve (e.A) where e.A < 2");
  check_xrel "null B never qualifies"
    (x [ t [ ("A", i 1) ] ])
    (run "range of e is R retrieve (e.A) where e.B >= 0");
  check_xrel "projection may expose nulls"
    (x [ t [ ("B", i 2) ] ])
    (run "range of e is R retrieve (e.B)")

let test_eval_no_where () =
  check_xrel "full scan"
    (x [ t [ ("A", i 1); ("B", i 2) ]; t [ ("A", i 3) ] ])
    (run "range of e is R retrieve (e.A, e.B)")

let test_eval_join () =
  check_xrel "two-variable join"
    (x [ t [ ("A", i 1); ("C", i 1) ] ])
    (run "range of e is R range of f is S retrieve (e.A, f.C) where e.A = f.C")

let test_eval_cartesian_count () =
  let rows = Quel.Eval.combined_tuples db (Quel.Parser.parse
    "range of e is R range of f is S retrieve (e.A)") in
  Alcotest.(check int) "2 x 2 combinations" 4 (List.length rows)

let test_eval_flipped_constant () =
  check_xrel "constant on the left"
    (x [ t [ ("A", i 3) ] ])
    (run "range of e is R retrieve (e.A) where 2 < e.A")

let test_eval_ambiguous_targets () =
  (* Two targets with the same attribute name get var-qualified columns. *)
  let result =
    Quel.Eval.run db
      (Quel.Parser.parse
         "range of e is R range of f is R retrieve (e.A, f.A) where e.A < f.A")
  in
  Alcotest.(check (list string)) "qualified columns" [ "e.A"; "f.A" ]
    (List.map Attr.name result.Quel.Eval.attrs);
  check_xrel "one qualifying pair"
    (x [ t [ ("e.A", i 1); ("f.A", i 3) ] ])
    result.Quel.Eval.rel

let test_run_maybe () =
  (* Codd's MAYBE retrieval: rows whose qualification is ni.  R's
     second tuple (A=3, B null) is the only maybe-answer for B >= 0. *)
  let q = Quel.Parser.parse "range of e is R retrieve (e.A) where e.B >= 0" in
  check_xrel "MAYBE rows"
    (x [ t [ ("A", i 3) ] ])
    (Quel.Eval.run_maybe db q).Quel.Eval.rel;
  (* TRUE and MAYBE answers are disjoint. *)
  let sure = (Quel.Eval.run db q).Quel.Eval.rel in
  let maybe = (Quel.Eval.run_maybe db q).Quel.Eval.rel in
  Alcotest.(check bool) "disjoint answers" true
    (Xrel.is_empty
       (Xrel.filter (fun r -> Xrel.x_mem r maybe) sure))

let test_run_upper () =
  (* Upper bound ||Q||+: rows that cannot be ruled out.  For B >= 0 over
     domain 0..9, the null-B tuple may satisfy it: included. *)
  let q = Quel.Parser.parse "range of e is R retrieve (e.A) where e.B >= 0" in
  let lower = (Quel.Eval.run db q).Quel.Eval.rel in
  let upper = (Quel.Eval.run_upper db q).Quel.Eval.rel in
  check_xrel "upper includes the possible row"
    (x [ t [ ("A", i 1) ]; t [ ("A", i 3) ] ])
    upper;
  Alcotest.(check bool) "lower <= upper" true (Xrel.contains upper lower);
  (* An unsatisfiable qualification rules the null row out even in the
     upper bound. *)
  let q2 =
    Quel.Parser.parse
      "range of e is R retrieve (e.A) where e.B > 5 and e.B < 3"
  in
  check_xrel "contradiction is ruled out" Xrel.bottom
    (Quel.Eval.run_upper db q2).Quel.Eval.rel;
  (* Constraints narrow the upper bound: with every legal B at least 5,
     the null-B row can no longer satisfy B < 3; the row whose B = 2 is
     stored (a sure TRUE) is untouched by substitution reasoning. *)
  let legal r =
    match Tuple.get r (Attr.make "e.B") with
    | Value.Int b -> b >= 5
    | _ -> true
  in
  let q3 = Quel.Parser.parse "range of e is R retrieve (e.A) where e.B < 3" in
  check_xrel "unconstrained upper keeps the null row"
    (x [ t [ ("A", i 1) ]; t [ ("A", i 3) ] ])
    (Quel.Eval.run_upper db q3).Quel.Eval.rel;
  check_xrel "legal substitutions exclude the null row"
    (x [ t [ ("A", i 1) ] ])
    (Quel.Eval.run_upper ~legal db q3).Quel.Eval.rel

let test_run_unknown_requires_finite_domain () =
  (* A's domain is infinite: when a null A must be enumerated, the
     brute-force tautology path must fail loudly, not silently guess. *)
  let t_schema = Schema.make "T" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
  let db2 : Quel.Resolve.db =
    [ ("T", (t_schema, x [ t [ ("B", i 1) ] ])) ]
  in
  Alcotest.(check bool) "infinite domain raises" true
    (try
       ignore
         (Quel.Eval.run_unknown ~strategy:Quel.Eval.Brute_force db2
            (Quel.Parser.parse
               "range of e is T retrieve (e.B) where e.A = 1 or e.A <> 1"));
       false
     with Domain.Infinite _ | Exec_error.Error (Exec_error.Bad_input _) -> true);
  (* The symbolic strategy handles the same query without enumeration. *)
  check_xrel "symbolic needs no enumeration"
    (x [ t [ ("B", i 1) ] ])
    (Quel.Eval.run_unknown ~strategy:Quel.Eval.Symbolic_first db2
       (Quel.Parser.parse
          "range of e is T retrieve (e.B) where e.A = 1 or e.A <> 1"))
      .Quel.Eval.rel

let test_run_unknown_symbolic () =
  (* B = 1 or B <> 1 is a tautology; the A-total tuple with null B is
     included under the unknown interpretation, excluded under ni. *)
  let q =
    Quel.Parser.parse "range of e is R retrieve (e.A) where e.B = 1 or e.B <> 1"
  in
  check_xrel "ni excludes the null row"
    (x [ t [ ("A", i 1) ] ])
    (Quel.Eval.run db q).Quel.Eval.rel;
  check_xrel "unknown includes it"
    (x [ t [ ("A", i 1) ]; t [ ("A", i 3) ] ])
    (Quel.Eval.run_unknown db q).Quel.Eval.rel

let suite =
  [
    Alcotest.test_case "lexer: basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer: # identifiers" `Quick
      test_lexer_attributes_with_hash;
    Alcotest.test_case "lexer: literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: keyword case" `Quick
      test_lexer_case_insensitive_keywords;
    Alcotest.test_case "lexer: errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser: Figure 1" `Quick test_parse_fig1;
    Alcotest.test_case "parser: Figure 2" `Quick test_parse_fig2;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: not" `Quick test_parse_not;
    Alcotest.test_case "parser: errors" `Quick test_parse_errors;
    Alcotest.test_case "parser: print/parse roundtrip" `Quick
      test_roundtrip_pp;
    Alcotest.test_case "resolution errors" `Quick test_resolution_errors;
    Alcotest.test_case "eval: single range" `Quick test_eval_single_range;
    Alcotest.test_case "eval: no where clause" `Quick test_eval_no_where;
    Alcotest.test_case "eval: join" `Quick test_eval_join;
    Alcotest.test_case "eval: cartesian size" `Quick test_eval_cartesian_count;
    Alcotest.test_case "eval: flipped constant" `Quick
      test_eval_flipped_constant;
    Alcotest.test_case "eval: ambiguous targets" `Quick
      test_eval_ambiguous_targets;
    Alcotest.test_case "eval: MAYBE version" `Quick test_run_maybe;
    Alcotest.test_case "eval: upper bound" `Quick test_run_upper;
    Alcotest.test_case "unknown: infinite domain" `Quick
      test_run_unknown_requires_finite_domain;
    Alcotest.test_case "unknown: symbolic tautology" `Quick
      test_run_unknown_symbolic;
  ]
