(* The domain pool and the parallel kernels: strategy parity on
   arbitrary inputs (results are sets, per-tuple verdicts independent,
   so fan-out cannot change any answer), governor semantics across
   domains (timeout / budget / cancellation raised mid-parallel-run
   leave no stuck domains), and pool lifecycle (resize, reuse after an
   abort). *)

open Nullrel
open Qgen

(* Run [f] with the pool forced to [d] domains, restoring the previous
   degree (and thus the previous pool) afterwards. *)
let with_domains d f =
  let saved = Par.Pool.domains () in
  Par.Pool.set_domains d;
  Fun.protect ~finally:(fun () -> Par.Pool.set_domains saved) f

let check_prop ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

(* A relation big enough that [Parallel] genuinely chunks (several
   chunks per worker) yet small enough for a 1-core CI box. *)
let big_relation ?(rows = 2000) seed =
  let g = Workload.Prng.create seed in
  Workload.Gen.relation g
    { Workload.Gen.arity = 5; rows; domain_size = 10; null_density = 0.3 }

let big_xrel seed =
  let g = Workload.Prng.create seed in
  Workload.Gen.xrel g
    { Workload.Gen.arity = 4; rows = 1200; domain_size = 6; null_density = 0.2 }

(* -- parity ------------------------------------------------------- *)

let test_minimize_parity () =
  with_domains 4 (fun () ->
      check_prop "parallel minimize = sequential minimize"
        arbitrary_relation (fun r ->
          Relation.equal
            (Kernel.minimize ~strategy:Parallel r)
            (Relation.minimize r)))

let test_subsumes_parity () =
  with_domains 4 (fun () ->
      check_prop "all subsumption strategies agree"
        (QCheck.pair arbitrary_relation arbitrary_relation) (fun (r1, r2) ->
          let expected = Relation.subsumes r1 r2 in
          Kernel.subsumes ~strategy:Sequential r1 r2 = expected
          && Kernel.subsumes ~strategy:Indexed r1 r2 = expected
          && Kernel.subsumes ~strategy:Parallel r1 r2 = expected))

let test_x_mem_parity () =
  with_domains 4 (fun () ->
      check_prop "all x-membership strategies agree"
        (QCheck.pair arbitrary_tuple arbitrary_relation) (fun (t, r) ->
          let expected = Relation.x_mem t r in
          Kernel.x_mem ~strategy:Indexed t r = expected
          && Kernel.x_mem ~strategy:Parallel t r = expected))

let test_scope_is_fold () =
  (* the Def 4.7 invariant behind the direct-fold [scope]: minimizing
     first cannot change the answer *)
  check_prop "scope r = scope (minimize r)" arbitrary_relation (fun r ->
      Attr.Set.equal (Relation.scope r) (Relation.scope (Relation.minimize r)))

let test_large_workload_parity () =
  with_domains 4 (fun () ->
      let r = big_relation 7 in
      let seq = Relation.minimize r in
      Alcotest.(check bool)
        "indexed minimize on 2000 rows" true
        (Relation.equal seq (Kernel.minimize ~strategy:Indexed r));
      Alcotest.(check bool)
        "parallel minimize on 2000 rows" true
        (Relation.equal seq (Kernel.minimize ~strategy:Parallel r));
      let r2 = big_relation 8 in
      Alcotest.(check bool)
        "parallel subsumes on 2000 rows" true
        (Kernel.subsumes ~strategy:Parallel r r2
        = Relation.subsumes r r2))

let test_join_parity () =
  with_domains 4 (fun () ->
      let x1 = big_xrel 11 and x2 = big_xrel 12 in
      let x = Attr.set_of_list [ "A1" ] in
      let seq = Storage.Join.hash_equijoin ~strategy:Kernel.Sequential x x1 x2 in
      Alcotest.(check bool)
        "parallel equijoin = sequential" true
        (Xrel.equal seq
           (Storage.Join.hash_equijoin ~strategy:Kernel.Parallel x x1 x2));
      Alcotest.(check bool)
        "range-indexed equijoin agrees with the hash index" true
        (Xrel.equal seq
           (Storage.Join.hash_equijoin ~strategy:Kernel.Parallel
              ~index:(module Storage.Range_index.Equi)
              x x1 x2));
      let useq =
        Storage.Join.hash_union_join ~strategy:Kernel.Sequential x x1 x2
      in
      Alcotest.(check bool)
        "parallel union-join = sequential" true
        (Xrel.equal useq
           (Storage.Join.hash_union_join ~strategy:Kernel.Parallel x x1 x2)))

(* -- governance across domains ------------------------------------ *)

let expect_abort name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a governed abort" name
  | exception Exec_error.Error e -> e

let pool_still_works r =
  (* "no stuck domains": the same pool computes a correct answer
     immediately after the abort *)
  Relation.equal (Kernel.minimize ~strategy:Parallel r) (Relation.minimize r)

let test_timeout_mid_parallel () =
  with_domains 4 (fun () ->
      let r = big_relation 21 in
      (* a fake clock that jumps past the deadline as soon as any
         worker-counted work has been drained: construction and the
         entry checkpoint see t=0, and since [tick] charges before it
         consults the clock, the first drain -- wherever chunk
         scheduling puts it -- deterministically times out *)
      let g_ref = ref Exec.unlimited in
      let now () = if Exec.charged !g_ref > 0 then 1000.0 else 0.0 in
      let g = Exec.make ~deadline_s:1.0 ~check_every:1 ~now () in
      g_ref := g;
      let e =
        expect_abort "timeout" (fun () ->
            Exec.with_governor g (fun () ->
                ignore (Kernel.minimize ~strategy:Parallel r)))
      in
      (match e with
      | Exec_error.Timeout _ -> ()
      | e -> Alcotest.failf "expected Timeout, got %s" (Exec_error.to_string e));
      Alcotest.(check bool) "pool usable after timeout" true (pool_still_works r))

let test_budget_mid_parallel () =
  with_domains 4 (fun () ->
      let r = big_relation 22 in
      let g = Exec.make ~max_tuples:100 () in
      let e =
        expect_abort "budget" (fun () ->
            Exec.with_governor g (fun () ->
                ignore (Kernel.minimize ~strategy:Parallel r)))
      in
      (match e with
      | Exec_error.Budget_exceeded { resource = Exec_error.Tuples; _ } -> ()
      | e ->
          Alcotest.failf "expected Budget_exceeded, got %s"
            (Exec_error.to_string e));
      Alcotest.(check bool) "pool usable after budget abort" true
        (pool_still_works r))

let test_cancel_mid_parallel () =
  with_domains 4 (fun () ->
      let r = big_relation 23 in
      (* same trick as the timeout test: the flag flips once any
         drained work has been charged, so the abort lands at a drain
         regardless of which domains ran the chunks *)
      let g_ref = ref Exec.unlimited in
      let cancelled () = Exec.charged !g_ref > 0 in
      let g = Exec.make ~cancelled ~check_every:1 () in
      g_ref := g;
      let e =
        expect_abort "cancel" (fun () ->
            Exec.with_governor g (fun () ->
                ignore (Kernel.minimize ~strategy:Parallel r)))
      in
      (match e with
      | Exec_error.Cancelled -> ()
      | e ->
          Alcotest.failf "expected Cancelled, got %s" (Exec_error.to_string e));
      Alcotest.(check bool) "pool usable after cancellation" true
        (pool_still_works r))

(* -- pool lifecycle ----------------------------------------------- *)

let test_resize () =
  let r = big_relation 31 in
  let seq = Relation.minimize r in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          Alcotest.(check int) "degree applied" d (Par.Pool.domains ());
          Alcotest.(check bool)
            (Printf.sprintf "parallel minimize correct at %d domains" d)
            true
            (Relation.equal seq (Kernel.minimize ~strategy:Parallel r))))
    [ 1; 2; 4; 2 ]

let test_pool_metrics () =
  with_domains 4 (fun () ->
      (* registration is idempotent by name, so this is the same
         counter the pool increments *)
      let tasks =
        Obs.Metrics.counter ~help:"Parallel fan-out tasks run to completion."
          "nullrel_par_tasks_total"
      in
      let saved = !Obs.Metrics.enabled in
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.set_enabled saved)
        (fun () ->
          Obs.Metrics.set_enabled true;
          let before = Obs.Metrics.counter_value tasks in
          ignore (Kernel.minimize ~strategy:Parallel (big_relation 41));
          let after = Obs.Metrics.counter_value tasks in
          Alcotest.(check bool) "par task counted" true (after > before)))

let suite =
  [
    Alcotest.test_case "parallel minimize parity (qcheck)" `Quick
      test_minimize_parity;
    Alcotest.test_case "subsumes strategy parity (qcheck)" `Quick
      test_subsumes_parity;
    Alcotest.test_case "x_mem strategy parity (qcheck)" `Quick
      test_x_mem_parity;
    Alcotest.test_case "scope ignores subsumed tuples" `Quick test_scope_is_fold;
    Alcotest.test_case "large workload parity" `Quick
      test_large_workload_parity;
    Alcotest.test_case "join strategy and index parity" `Quick test_join_parity;
    Alcotest.test_case "timeout mid-parallel minimize" `Quick
      test_timeout_mid_parallel;
    Alcotest.test_case "tuple budget mid-parallel minimize" `Quick
      test_budget_mid_parallel;
    Alcotest.test_case "cancellation mid-parallel minimize" `Quick
      test_cancel_mid_parallel;
    Alcotest.test_case "pool resize" `Quick test_resize;
    Alcotest.test_case "pool metrics" `Quick test_pool_metrics;
  ]
