(* The first-class semantics dialects: the capability records, the
   banded evaluator behind them, the compat shims, and every selection
   surface (shell dot-command, Dml, sessions, sys_sessions). *)

open Nullrel
open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let sem d = Semantics.of_dialect d
let rel_check = Alcotest.check relation

(* ------------------- the records themselves ------------------- *)

(* All four instances carry Table III: the record's connectives agree
   with Tvl on every input (exhaustive — Tvl.all is the whole type). *)
let test_truth_tables () =
  List.iter
    (fun (s_ : Semantics.t) ->
      let name op = Printf.sprintf "%s.%s" s_.Semantics.name op in
      List.iter
        (fun a ->
          check_tvl (name "not") (Tvl.not_ a) (s_.Semantics.not_ a);
          List.iter
            (fun b ->
              check_tvl (name "and") (Tvl.conj [ a; b ])
                (s_.Semantics.and_ a b);
              check_tvl (name "or") (Tvl.disj [ a; b ]) (s_.Semantics.or_ a b))
            Tvl.all)
        Tvl.all;
      check_tvl (name "conj_empty") Tvl.True s_.Semantics.conj_empty;
      Alcotest.(check bool) (name "std_tables") true s_.Semantics.std_tables)
    Semantics.all

let test_admission_rules () =
  let admit d v = (sem d).Semantics.admit v in
  let band = Alcotest.testable
      (fun ppf -> function
        | Semantics.Sure -> Format.pp_print_string ppf "Sure"
        | Semantics.Maybe -> Format.pp_print_string ppf "Maybe"
        | Semantics.Out -> Format.pp_print_string ppf "Out")
      ( = )
  in
  let check_band = Alcotest.check band in
  List.iter
    (fun d ->
      check_band "True is Sure everywhere" Semantics.Sure
        (admit d Tvl.True);
      check_band "False is Out everywhere" Semantics.Out
        (admit d Tvl.False))
    Semantics.dialects;
  check_band "ni drops Ni" Semantics.Out (admit Semantics.Ni_lower Tvl.Ni);
  check_band "certain drops Ni" Semantics.Out (admit Semantics.Certain Tvl.Ni);
  check_band "codd banks Ni" Semantics.Maybe
    (admit Semantics.Codd_maybe Tvl.Ni);
  check_band "sql banks Ni" Semantics.Maybe (admit Semantics.Sql_3vl Tvl.Ni)

let test_names_round_trip () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Semantics.to_string d ^ " round-trips") true
        (Semantics.of_string (Semantics.to_string d) = Some d))
    Semantics.dialects;
  Alcotest.(check bool) "alias ni-lower" true
    (Semantics.of_string "ni-lower" = Some Semantics.Ni_lower);
  Alcotest.(check bool) "alias maybe" true
    (Semantics.of_string "maybe" = Some Semantics.Codd_maybe);
  Alcotest.(check bool) "alias 3vl" true
    (Semantics.of_string "3vl" = Some Semantics.Sql_3vl);
  Alcotest.(check bool) "alias certain-answers" true
    (Semantics.of_string "certain-answers" = Some Semantics.Certain);
  Alcotest.(check bool) "unknown name" true
    (Semantics.of_string "fuzzy" = None);
  Alcotest.(check (list string))
    "names in dialect order"
    (List.map Semantics.to_string Semantics.dialects)
    Semantics.names

let test_admit_tuple () =
  let scope = aset [ "S#"; "P#" ] in
  let total = t [ ("S#", s "s1"); ("P#", s "p1") ] in
  let partial = t [ ("S#", s "s1") ] in
  List.iter
    (fun (s_ : Semantics.t) ->
      Alcotest.(check bool)
        (s_.Semantics.name ^ " admits total") true
        (Semantics.admit_tuple s_ scope total);
      Alcotest.(check bool)
        (s_.Semantics.name ^ " on partial")
        (not s_.Semantics.total_only)
        (Semantics.admit_tuple s_ scope partial))
    Semantics.all

let test_ambient_slot () =
  Alcotest.(check string) "default is ni" "ni"
    (Semantics.current ()).Semantics.name;
  let inside =
    Semantics.with_semantics (sem Semantics.Sql_3vl) (fun () ->
        (Semantics.current ()).Semantics.name)
  in
  Alcotest.(check string) "scoped override" "sql" inside;
  Alcotest.(check string) "restored after" "ni"
    (Semantics.current ()).Semantics.name;
  (* Exception-safe restore, like Exec.with_governor. *)
  (try
     Semantics.with_semantics (sem Semantics.Certain) (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "restored after raise" "ni"
    (Semantics.current ()).Semantics.name

(* ----------------- the banded evaluator on PS ------------------ *)

let ps_db =
  [
    ( "PS",
      ( Schema.make "PS" [ ("S#", Domain.Strings); ("P#", Domain.Strings) ],
        Paperdata.Fixtures.ps ) );
  ]

let p1_query = "range of p is PS retrieve (p.S#) where p.P# = \"p1\""

let bands_under d src =
  Quel.Eval.query
    (Quel.Eval.ctx ~semantics:(sem d) ())
    ps_db (Quel.Parser.parse src)

let s_rel names = rel (List.map (fun n -> t [ ("S#", s n) ]) names)

(* The paper's "who supplies p1" on PS, under all four dialects: the
   golden differential table this PR is about. *)
let test_ps_differential () =
  let ni = bands_under Semantics.Ni_lower p1_query in
  let codd = bands_under Semantics.Codd_maybe p1_query in
  let sql = bands_under Semantics.Sql_3vl p1_query in
  let certain = bands_under Semantics.Certain p1_query in
  rel_check "ni sure" (s_rel [ "s1"; "s2" ]) ni.Quel.Eval.sure;
  Alcotest.(check bool) "ni has no maybe band" true
    (ni.Quel.Eval.maybe = None);
  rel_check "codd sure" (s_rel [ "s1"; "s2" ]) codd.Quel.Eval.sure;
  rel_check "codd maybe" (s_rel [ "s3" ])
    (Option.get codd.Quel.Eval.maybe);
  rel_check "sql sure" (s_rel [ "s1"; "s2" ]) sql.Quel.Eval.sure;
  rel_check "sql unknown" (s_rel [ "s3" ]) (Option.get sql.Quel.Eval.maybe);
  rel_check "certain" (s_rel [ "s1"; "s2" ]) certain.Quel.Eval.sure;
  Alcotest.(check bool) "certain has no maybe band" true
    (certain.Quel.Eval.maybe = None)

(* Projection keeps partial tuples under ni but not under certain:
   retrieve the whole of PS and the dialects finally disagree. *)
let test_certain_strictly_below_ni () =
  let src = "range of p is PS retrieve (p.S#, p.P#)" in
  let ni = bands_under Semantics.Ni_lower src in
  let certain = bands_under Semantics.Certain src in
  rel_check "ni keeps the s3 partial tuple"
    (Relation.minimize Paperdata.Fixtures.ps_rel)
    ni.Quel.Eval.sure;
  rel_check "certain drops it"
    (Relation.filter
       (Tuple.is_total_on (aset [ "S#"; "P#" ]))
       (Relation.minimize Paperdata.Fixtures.ps_rel))
    certain.Quel.Eval.sure;
  Alcotest.(check bool) "strictly fewer" true
    (Relation.cardinal certain.Quel.Eval.sure
    < Relation.cardinal ni.Quel.Eval.sure)

(* The Section 5 pin, twice over: an absent qualification is the empty
   conjunction (True — nothing lands in a maybe band), and an empty
   divisor divides vacuously the same way in both algebras. *)
let test_empty_qualification_pin () =
  let src = "range of p is PS retrieve (p.S#)" in
  List.iter
    (fun d ->
      let b = bands_under d src in
      match b.Quel.Eval.maybe with
      | None -> ()
      | Some m ->
          rel_check
            (Semantics.to_string d ^ " maybe band empty without a where")
            Relation.empty m)
    Semantics.dialects;
  List.iter
    (fun (s_ : Semantics.t) ->
      check_tvl
        (s_.Semantics.name ^ " empty conjunction is True")
        Tvl.True
        (Semantics.eval s_ (Predicate.Const s_.Semantics.conj_empty)
           Tuple.empty))
    Semantics.all;
  let y = aset [ "S#" ] in
  let by_algebra =
    Algebra.divide y Paperdata.Fixtures.ps (Xrel.of_list [])
  in
  let by_codd =
    Codd.Maybe_algebra.divide_true ~y
      (Xrel.rep Paperdata.Fixtures.ps)
      Relation.empty
  in
  rel_check "empty divisor: both algebras vacuous the same way"
    (Xrel.rep by_algebra) by_codd

(* -------------------------- the shims -------------------------- *)

let test_compat_shims () =
  let q = Quel.Parser.parse p1_query in
  let run = Quel.Eval.run ps_db q in
  let ni = bands_under Semantics.Ni_lower p1_query in
  check_xrel "run is the ni sure band"
    (Xrel.of_relation ni.Quel.Eval.sure)
    run.Quel.Eval.rel;
  let maybe = Quel.Eval.run_maybe ps_db q in
  let codd = bands_under Semantics.Codd_maybe p1_query in
  check_xrel "run_maybe is the codd maybe band"
    (Xrel.of_relation (Option.get codd.Quel.Eval.maybe))
    maybe.Quel.Eval.rel;
  (* Codd's own select operators run through the same admission rule. *)
  let p =
    Predicate.Cmp_const (a_ "P#", Predicate.Eq, Value.Str "p1")
  in
  let r = Xrel.rep Paperdata.Fixtures.ps in
  rel_check "select_true = sure rows"
    (Relation.filter (fun t_ -> Predicate.eval p t_ = Tvl.True) r)
    (Codd.Maybe_algebra.select_true p r);
  rel_check "select_maybe = ni rows"
    (Relation.filter (fun t_ -> Predicate.eval p t_ = Tvl.Ni) r)
    (Codd.Maybe_algebra.select_maybe p r)

(* Planner dispatch: under a reporting dialect Plan.Compile.run returns
   the sure band; under ni it is the physical pipeline, same answer. *)
let test_planner_dispatch () =
  let q = Quel.Parser.parse p1_query in
  List.iter
    (fun d ->
      let by_plan = Plan.Compile.run ~semantics:(sem d) ps_db q in
      let b = bands_under d p1_query in
      check_xrel
        (Semantics.to_string d ^ " planner agrees")
        (Xrel.of_relation b.Quel.Eval.sure)
        by_plan.Quel.Eval.rel)
    Semantics.dialects;
  Alcotest.(check bool) "render names the dialect" true
    (contains
       (Plan.Analyze.render ~semantics:"codd"
          {
            Plan.Analyze.label = "rel PS";
            est_rows = 1.;
            actual_rows = 1;
            ticks = 0;
            elapsed_s = 0.;
            children = [];
          })
       "semantics: codd")

(* ------------------------ the surfaces ------------------------- *)

let feed inputs =
  List.fold_left
    (fun (st, outputs) input ->
      let st, out = Shell.exec st input in
      (st, out :: outputs))
    (Shell.initial, []) inputs
  |> fun (st, outputs) -> (st, List.rev outputs)

let with_ps_csv f =
  let path = Filename.temp_file "nullrel_semantics" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.Csv.write_file path [ a_ "S#"; a_ "P#" ] Paperdata.Fixtures.ps;
      f path)

let shell_query = "range of p is PS retrieve (p.S#) where p.P# = \"p1\""

let test_shell_round_trip () =
  with_ps_csv @@ fun path ->
  let _, outputs =
    feed
      [
        Printf.sprintf ".load PS %s" path;
        ".semantics";
        ".semantics codd";
        shell_query;
        ".semantics sql";
        shell_query;
        ".semantics certain";
        shell_query;
        ".semantics ni";
        shell_query;
        ".semantics bogus";
        ".semantics one two";
      ]
  in
  match outputs with
  | [ _; show; set_codd; codd; _; sql; _; certain; _; ni; bogus; usage ] ->
      Alcotest.(check bool) "default shown with the list" true
        (contains show "semantics: ni" && contains show "codd"
        && contains show "certain");
      Alcotest.(check bool) "selection echoed" true
        (contains set_codd "semantics: codd");
      Alcotest.(check bool) "codd prints a MAYBE band" true
        (contains codd "MAYBE band" && contains codd "s3");
      Alcotest.(check bool) "sql prints an UNKNOWN band" true
        (contains sql "UNKNOWN band" && contains sql "s3");
      Alcotest.(check bool) "certain prints no band" true
        (not (contains certain "band"));
      Alcotest.(check bool) "ni prints no band" true
        (not (contains ni "band"));
      Alcotest.(check bool) "unknown dialect is an error" true
        (contains bogus "error: unknown dialect"
        && contains bogus "ni, codd, sql, certain");
      Alcotest.(check bool) "usage on extra words" true
        (contains usage "usage: .semantics")
  | outs -> Alcotest.failf "expected 12 outputs, got %d" (List.length outs)

let test_dml_bands () =
  let cat =
    Storage.Catalog.add Storage.Catalog.empty
      (Schema.make "PS" [ ("S#", Domain.Strings); ("P#", Domain.Strings) ])
      Paperdata.Fixtures.ps
  in
  let stmt = Quel.Parser.parse_statement shell_query in
  let ni = Dml.exec cat stmt in
  Alcotest.(check bool) "ni read has no bands" true (ni.Dml.bands = None);
  Alcotest.(check bool) "ni read has a result" true (ni.Dml.result <> None);
  let codd = Dml.exec ~semantics:(sem Semantics.Codd_maybe) cat stmt in
  let b = Option.get codd.Dml.bands in
  rel_check "dml codd maybe band" (s_rel [ "s3" ])
    (Option.get b.Quel.Eval.maybe);
  check_xrel "dml compat result is the sure band"
    (Xrel.of_relation b.Quel.Eval.sure)
    (Option.get codd.Dml.result).Quel.Eval.rel;
  (* The ambient slot reaches Dml too — that is how sessions and the
     shell select a dialect without threading arguments. *)
  let ambient =
    Semantics.with_semantics (sem Semantics.Sql_3vl) (fun () ->
        Dml.exec cat stmt)
  in
  Alcotest.(check bool) "ambient dialect reaches Dml" true
    (ambient.Dml.bands <> None);
  (* Writes are dialect-independent: same outcome under every dialect. *)
  let append = Quel.Parser.parse_statement "append to PS (S# = \"s9\")" in
  let w1 = Dml.exec cat append in
  let w2 = Dml.exec ~semantics:(sem Semantics.Certain) cat append in
  Alcotest.(check bool) "writes carry no bands" true
    (w1.Dml.bands = None && w2.Dml.bands = None);
  check_xrel "writes agree across dialects"
    (snd (Storage.Catalog.get w1.Dml.catalog "PS"))
    (snd (Storage.Catalog.get w2.Dml.catalog "PS"))

(* Sessions: the dialect is fixed at attach, reported by sys_sessions,
   and installed around every statement. *)
let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let test_session_semantics () =
  let dir = temp_dir "nullrel_semantics" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Session.Drive.seed ~dir ();
  let eng, _ = Session.open_engine ~dir () in
  Fun.protect ~finally:(fun () -> Session.shutdown eng) @@ fun () ->
  let a = Session.attach eng in
  let b = Session.attach ~semantics:(sem Semantics.Codd_maybe) eng in
  Alcotest.(check string) "default attach is ambient ni" "ni"
    (Session.semantics a).Semantics.name;
  Alcotest.(check string) "explicit attach" "codd"
    (Session.semantics b).Semantics.name;
  let infos = Session.sessions_info eng in
  Alcotest.(check (list string))
    "sessions_info reports the dialects" [ "ni"; "codd" ]
    (List.map (fun si -> si.Session.si_semantics) infos);
  (* The SEMANTICS column of sys_sessions round-trips the selection. *)
  let _, (_, x) = Sysview.sys_sessions () in
  let column =
    List.filter_map
      (fun t_ ->
        match (Tuple.get t_ (a_ "SID"), Tuple.get t_ (a_ "SEMANTICS")) with
        | Value.Int sid, Value.Str s_ -> Some (sid, s_)
        | _ -> None)
      (Xrel.to_list x)
  in
  Alcotest.(check bool) "SEMANTICS column round-trips" true
    (List.mem (Session.id a, "ni") column
    && List.mem (Session.id b, "codd") column);
  (* A read through the codd session carries bands; through the ni
     session it does not — with no ambient set-up in this test. *)
  let stmt =
    Quel.Parser.parse_statement
      "range of e is EVENTS retrieve (e.SID, e.SEQ)"
  in
  Alcotest.(check bool) "ni session read: no bands" true
    ((Session.exec a stmt).Dml.bands = None);
  Alcotest.(check bool) "codd session read: bands" true
    ((Session.exec b stmt).Dml.bands <> None)

let suite =
  [
    Alcotest.test_case "truth tables are Table III" `Quick test_truth_tables;
    Alcotest.test_case "admission rules" `Quick test_admission_rules;
    Alcotest.test_case "names round-trip" `Quick test_names_round_trip;
    Alcotest.test_case "admit_tuple totality" `Quick test_admit_tuple;
    Alcotest.test_case "ambient slot scoping" `Quick test_ambient_slot;
    Alcotest.test_case "PS differential (golden)" `Quick test_ps_differential;
    Alcotest.test_case "certain strictly below ni" `Quick
      test_certain_strictly_below_ni;
    Alcotest.test_case "empty-qualification pin" `Quick
      test_empty_qualification_pin;
    Alcotest.test_case "compat shims" `Quick test_compat_shims;
    Alcotest.test_case "planner dispatch" `Quick test_planner_dispatch;
    Alcotest.test_case "shell .semantics round-trip" `Quick
      test_shell_round_trip;
    Alcotest.test_case "dml bands and ambient" `Quick test_dml_bands;
    Alcotest.test_case "session attach + sys_sessions" `Quick
      test_session_semantics;
  ]
