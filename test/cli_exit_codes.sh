#!/bin/sh
# Exit-code contract of the nullrel CLI:
#   0 success, 2 bad input (parse/resolve/CSV), 3 storage faults,
#   4 timeout, 5 budget exceeded, 10 constraint violation.
# Usage: cli_exit_codes.sh PATH-TO-NULLREL-CLI
set -u

CLI="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# expect WANT DESCRIPTION CMD...
expect() {
    want="$1"; shift
    desc="$1"; shift
    "$@" >/dev/null 2>&1
    got=$?
    [ "$got" -eq "$want" ] || fail "$desc: expected exit $want, got $got"
}

cat > "$tmp/r.csv" <<EOF
A,B
1,10
2,-
3,30
EOF

printf 'this is not a binary relation\n' > "$tmp/garbage.nrx"

# --- 0: success ------------------------------------------------
expect 0 "plain query" \
    "$CLI" query --rel "R=$tmp/r.csv" 'range of r is R retrieve (r.A)'
expect 0 "query under generous limits" \
    "$CLI" query --timeout 60 --max-tuples 1000000 \
    --rel "R=$tmp/r.csv" 'range of r is R retrieve (r.A)'

# --- 2: bad input ----------------------------------------------
expect 2 "parse error" \
    "$CLI" query --rel "R=$tmp/r.csv" 'range of r is'
expect 2 "unknown relation" \
    "$CLI" query --rel "R=$tmp/r.csv" 'range of x is NOPE retrieve (x.A)'
expect 2 "malformed --rel binding" \
    "$CLI" query --rel "RNOFILE" 'range of r is R retrieve (r.A)'

# --- 3: storage faults -----------------------------------------
expect 3 "corrupt binary relation" \
    "$CLI" convert "$tmp/garbage.nrx" "$tmp/out.csv"

# --- 4: timeout ------------------------------------------------
expect 4 "zero deadline" \
    "$CLI" query --timeout 0 --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A)'
expect 4 "zero deadline on an algebra command" \
    "$CLI" join --timeout 0 --on A "$tmp/r.csv" "$tmp/r.csv"

# --- 5: budget exceeded ----------------------------------------
expect 5 "tiny tuple budget" \
    "$CLI" query --max-tuples 1 --rel "R=$tmp/r.csv" \
    'range of r is R range of s is R retrieve (r.A, s.B)'
expect 5 "tiny budget on an algebra command" \
    "$CLI" outerjoin --max-tuples 1 --on A "$tmp/r.csv" "$tmp/r.csv"

# --- metrics survive aborts ------------------------------------
# --metrics-file must produce a well-formed Prometheus dump even when
# the run is killed by the governor (exits 4 and 5), and the dump must
# carry the abort class.
expect 4 "timeout with --metrics-file" \
    "$CLI" query --timeout 0 --metrics-file "$tmp/m_timeout.prom" \
    --rel "R=$tmp/r.csv" 'range of r is R retrieve (r.A)'
[ -s "$tmp/m_timeout.prom" ] || fail "no metrics dump after timeout abort"
grep -q '^# TYPE' "$tmp/m_timeout.prom" \
    || fail "timeout dump is not Prometheus text"
grep -q 'nullrel_aborts_total{class="timeout"} 1' "$tmp/m_timeout.prom" \
    || fail "timeout dump does not count the abort"

expect 5 "budget abort with --metrics-file" \
    "$CLI" query --max-tuples 1 --metrics-file "$tmp/m_budget.prom" \
    --rel "R=$tmp/r.csv" 'range of r is R range of s is R retrieve (r.A, s.B)'
[ -s "$tmp/m_budget.prom" ] || fail "no metrics dump after budget abort"
grep -q '^# TYPE' "$tmp/m_budget.prom" \
    || fail "budget dump is not Prometheus text"
grep -q 'nullrel_aborts_total{class="budget"} 1' "$tmp/m_budget.prom" \
    || fail "budget dump does not count the abort"

# --- aggregate bounds ------------------------------------------
cat > "$tmp/names.csv" <<EOF
ID,NAME
1,ada
2,grace
3,-
EOF

expect 0 "agg count" \
    "$CLI" agg count --rel "R=$tmp/r.csv" 'range of r is R retrieve (r.A)'
expect 0 "agg sum over a null-free column" \
    "$CLI" agg sum --attr r.A --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A)'
# completing a null needs a finite domain; CSV columns are guessed as
# unbounded, so this must be classified bad input, not a crash
expect 2 "agg sum over a nullable unbounded column" \
    "$CLI" agg sum --attr r.B --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A)'
# regression: aggregating a string column used to escape as an
# unclassified exception; it must be reported as bad input (2)
expect 2 "agg sum over a string column" \
    "$CLI" agg sum --attr v.NAME --rel "S=$tmp/names.csv" \
    'range of v is S retrieve (v.ID)'
expect 2 "agg count rejects --attr" \
    "$CLI" agg count --attr r.B --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A)'
expect 2 "agg sum without --attr" \
    "$CLI" agg sum --rel "R=$tmp/r.csv" 'range of r is R retrieve (r.A)'
expect 2 "agg with malformed --attr" \
    "$CLI" agg sum --attr nodot --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A)'

# --- 10: constraint violations ---------------------------------
cat > "$tmp/t.csv" <<EOF
K,V
1,10
2,20
EOF
cat > "$tmp/fk.csv" <<EOF
F,W
1,5
EOF

mkdir -p "$tmp/restrictdb"
expect 10 "restrict-blocked delete" \
    "$CLI" dml --dir "$tmp/restrictdb" \
    --load "T=$tmp/t.csv" --load "R=$tmp/fk.csv" \
    'constrain fk R (F) to T (K) on delete restrict as fkr' \
    'range of v is T delete v where v.K = 1'

mkdir -p "$tmp/cascadedb"
expect 0 "cascading delete" \
    "$CLI" dml --dir "$tmp/cascadedb" \
    --load "T=$tmp/t.csv" --load "R=$tmp/fk.csv" \
    'constrain fk R (F) to T (K) on delete cascade as fkr' \
    'range of v is T delete v where v.K = 1'
# the cascade's effect must be durable: the referencing row is gone
# on the next process's recovered snapshot
"$CLI" dml --dir "$tmp/cascadedb" \
    'range of v is R retrieve (v.F, v.W)' 2>/dev/null \
    | grep -q '5' && fail "cascade did not remove the referencing row"

mkdir -p "$tmp/uniquedb"
expect 10 "duplicate under a unique constraint" \
    "$CLI" dml --dir "$tmp/uniquedb" --load "T=$tmp/t.csv" \
    'constrain unique T (K) as uq' \
    'append to T (K = 1, V = 99)'
# ni-tolerance: a tuple null on the unique attribute collides with nothing
expect 0 "null key under a unique constraint" \
    "$CLI" dml --dir "$tmp/uniquedb" 'append to T (V = 7)'

# --- statistics-driven planning --------------------------------
expect 0 "query with --analyze" \
    "$CLI" query --analyze --rel "R=$tmp/r.csv" \
    'range of r is R retrieve (r.A) where r.B = 10'

echo "cli exit codes: ok"
