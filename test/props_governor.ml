(* Property: cancelling (or timing out) a governed durable-DML run at a
   PRNG-chosen point always recovers to a committed state — the abort
   behaves exactly like a crash that the journal protocol already
   survives, and because every governed checkpoint sits strictly before
   the journal append, recovery lands on precisely the state after the
   last fully completed statement. *)

open Nullrel
open Qgen

let with_temp_dir = Test_durability.with_temp_dir
let seed_catalog = Test_durability.seed_catalog
let workload = Test_durability.workload
let catalogs_equal = Test_durability.catalogs_equal
let committed_states = Test_durability.committed_states
let no_corruption = Test_durability.no_corruption

(* One governed run, cancelled after [k] cancellation polls: returns the
   number of fully completed statements (or [None] if the budget never
   fired and the workload ran to completion). *)
let cancelled_run ~k dir =
  Storage.Persist.save ~dir (seed_catalog ());
  let polls = ref 0 in
  let cancelled () =
    incr polls;
    !polls >= k
  in
  let g = Exec.make ~cancelled ~check_every:1 () in
  let completed = ref 0 in
  let aborted =
    match
      Exec.with_governor g (fun () ->
          let d, _ =
            Dml.open_durable ~checkpoint_every:Test_durability.checkpoint_every
              ~dir ()
          in
          ignore
            (List.fold_left
               (fun d stmt ->
                 let d, _ = Dml.exec_durable_string d stmt in
                 incr completed;
                 d)
               d workload))
    with
    | () -> false
    | exception Exec_error.Error Exec_error.Cancelled -> true
  in
  (!completed, aborted)

let cancel_anywhere_recovers =
  QCheck.Test.make ~count:60
    ~name:"cancel at any point recovers to the committed state"
    QCheck.(int_range 1 2000)
    (fun k ->
      let states = committed_states () in
      with_temp_dir (fun dir ->
          let completed, aborted = cancelled_run ~k dir in
          let report = Storage.Persist.recover ~dir () in
          no_corruption report;
          (match report.Storage.Persist.journal_note with
          | Some note -> QCheck.Test.fail_reportf "journal note: %s" note
          | None -> ());
          let recovered = report.Storage.Persist.catalog in
          if aborted then begin
            (* Abort-before-apply: the state is exactly the one after
               the last completed statement, never a torn in-between. *)
            if not (catalogs_equal recovered states.(completed)) then
              QCheck.Test.fail_reportf
                "cancelled after %d polls (%d statements committed): \
                 recovery does not match the committed state"
                k completed;
            true
          end
          else begin
            (* the flag never fired: the full workload committed *)
            if completed <> List.length workload then
              QCheck.Test.fail_reportf "uncancelled run stopped early";
            catalogs_equal recovered states.(Array.length states - 1)
          end))

let timeout_mid_workload_recovers =
  QCheck.Test.make ~count:30
    ~name:"deadline mid-workload recovers to a committed state"
    QCheck.(int_range 1 500)
    (fun budget ->
      (* a tuple budget stands in for the deadline: same code path
         (amortized full check -> Exec_error), deterministic trigger *)
      let states = committed_states () in
      with_temp_dir (fun dir ->
          Storage.Persist.save ~dir (seed_catalog ());
          let completed = ref 0 in
          (try
             Exec.with_governor
               (Exec.make ~max_tuples:budget ~check_every:1 ())
               (fun () ->
                 let d, _ =
                   Dml.open_durable
                     ~checkpoint_every:Test_durability.checkpoint_every ~dir ()
                 in
                 ignore
                   (List.fold_left
                      (fun d stmt ->
                        let d, _ = Dml.exec_durable_string d stmt in
                        incr completed;
                        d)
                      d workload))
           with Exec_error.Error _ -> ());
          let report = Storage.Persist.recover ~dir () in
          no_corruption report;
          let recovered = report.Storage.Persist.catalog in
          (* A budget abort can fire between the journal append and the
             in-memory apply only if some code ticked there; the design
             forbids ticks in that window, so recovery must land on
             [completed] or (if the abort hit the post-append
             bookkeeping) [completed + 1]. *)
          let candidates =
            states.(!completed)
            :: (if !completed + 1 < Array.length states then
                  [ states.(!completed + 1) ]
                else [])
          in
          List.exists (catalogs_equal recovered) candidates))

let suite =
  List.map to_alcotest [ cancel_anywhere_recovers; timeout_mid_workload_recovers ]
