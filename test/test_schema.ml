(* Schemas: construction, evolution, integrity checking. *)

open Nullrel
open Helpers

let violation = Alcotest.testable Schema.pp_violation ( = )

let parts =
  Schema.make "PARTS" ~key:[ "P#" ]
    [
      ("P#", Domain.Enum [ "p1"; "p2"; "p3" ]);
      ("WEIGHT", Domain.Int_range (0, 100));
      ("COLOR", Domain.Strings);
    ]

let test_make () =
  Alcotest.(check string) "name" "PARTS" (Schema.name parts);
  Alcotest.(check (list string)) "attrs in order" [ "P#"; "WEIGHT"; "COLOR" ]
    (List.map Attr.name (Schema.attrs parts));
  Alcotest.check attr_set "key" (aset [ "P#" ]) (Schema.key parts);
  Alcotest.(check bool) "mem" true (Schema.mem parts (a_ "WEIGHT"));
  Alcotest.(check bool) "not mem" false (Schema.mem parts (a_ "ZZ"));
  Alcotest.(check bool) "domain lookup" true
    (Schema.domain parts (a_ "WEIGHT") = Some (Domain.Int_range (0, 100)));
  Alcotest.(check int) "universe size" 3 (List.length (Schema.universe parts))

let test_make_rejects () =
  Alcotest.check_raises "duplicate column"
    (Exec_error.Error (Exec_error.Bad_input "Schema.make: duplicate attribute A"))
    (fun () ->
      ignore (Schema.make "R" [ ("A", Domain.Ints); ("A", Domain.Ints) ]));
  Alcotest.check_raises "key not a column"
    (Exec_error.Error
       (Exec_error.Bad_input "Schema.make: key attribute K not a column"))
    (fun () ->
      ignore (Schema.make "R" ~key:[ "K" ] [ ("A", Domain.Ints) ]))

let test_add_column () =
  let evolved = Schema.add_column parts "ORIGIN" Domain.Strings in
  Alcotest.(check (list string)) "appended"
    [ "P#"; "WEIGHT"; "COLOR"; "ORIGIN" ]
    (List.map Attr.name (Schema.attrs evolved));
  Alcotest.check attr_set "key preserved" (aset [ "P#" ]) (Schema.key evolved);
  Alcotest.check_raises "existing column rejected"
    (Exec_error.Error
       (Exec_error.Bad_input "Schema.add_column: P# already exists"))
    (fun () ->
      ignore (Schema.add_column parts "P#" Domain.Strings))

let good = t [ ("P#", s "p1"); ("WEIGHT", i 10); ("COLOR", s "red") ]

let test_check_tuple () =
  Alcotest.(check (list violation)) "valid tuple" [] (Schema.check_tuple parts good);
  Alcotest.(check (list violation)) "null key"
    [ Schema.Null_in_key (a_ "P#") ]
    (Schema.check_tuple parts (t [ ("WEIGHT", i 10) ]));
  Alcotest.(check (list violation)) "out-of-domain value"
    [ Schema.Domain_mismatch (a_ "WEIGHT", i 500) ]
    (Schema.check_tuple parts (t [ ("P#", s "p1"); ("WEIGHT", i 500) ]));
  Alcotest.(check (list violation)) "unknown attribute"
    [ Schema.Unknown_attribute (a_ "ZZ") ]
    (Schema.check_tuple parts (t [ ("P#", s "p1"); ("ZZ", i 0) ]));
  (* Nulls in non-key columns are always fine: that is the point. *)
  Alcotest.(check (list violation)) "null non-key ok" []
    (Schema.check_tuple parts (t [ ("P#", s "p2") ]))

let test_check_relation () =
  let ok = x [ good; t [ ("P#", s "p2"); ("WEIGHT", i 5) ] ] in
  Alcotest.(check (list violation)) "clean relation" [] (Schema.check parts ok);
  let dup =
    x
      [
        t [ ("P#", s "p1"); ("WEIGHT", i 10) ];
        t [ ("P#", s "p1"); ("COLOR", s "blue") ];
      ]
  in
  Alcotest.(check (list violation)) "duplicate key detected"
    [ Schema.Duplicate_key (t [ ("P#", s "p1") ]) ]
    (Schema.check parts dup)

let test_keyless_schema () =
  let keyless = Schema.make "LOG" [ ("MSG", Domain.Strings) ] in
  Alcotest.(check bool) "empty key" true (Attr.Set.is_empty (Schema.key keyless));
  Alcotest.(check (list violation)) "no key checks" []
    (Schema.check keyless (x [ t [ ("MSG", s "a") ]; t [ ("MSG", s "b") ] ]))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_make;
    Alcotest.test_case "construction guards" `Quick test_make_rejects;
    Alcotest.test_case "schema evolution" `Quick test_add_column;
    Alcotest.test_case "tuple checking" `Quick test_check_tuple;
    Alcotest.test_case "relation checking" `Quick test_check_relation;
    Alcotest.test_case "keyless schema" `Quick test_keyless_schema;
  ]
