(* The headline robustness tests: the fault-injection matrix (crash the
   injected filesystem after its Nth operation, for every N, and verify
   recovery lands on a committed state — never a torn intermediate),
   plus deliberate corruption of every durable artifact. *)

open Nullrel

let temp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))
  in
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_temp_dir f =
  let dir = temp_dir "nullrel_durability" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------ the workload ------------------------ *)

let seed_catalog () =
  let r_schema =
    Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ]
  in
  let s_schema =
    Schema.make "S" [ ("K", Domain.Ints); ("V", Domain.Strings) ]
  in
  Storage.Catalog.add
    (Storage.Catalog.add Storage.Catalog.empty r_schema Xrel.bottom)
    s_schema Xrel.bottom

let workload =
  [
    "append to R (A = 1, B = 10)";
    "append to R (A = 2)";
    "append to S (K = 1, V = \"one\")";
    "range of r is R replace r (B = 99) where r.A = 1";
    "range of r is R delete r where r.A = 2";
    "append to S (K = 2)";
    "append to R (A = 3, B = 7)";
    "range of s is S delete s where s.K = 1";
    "range of r is R replace r (A = 4) where r.B = 99";
    "append to R (A = 5, B = 1)";
  ]

let checkpoint_every = 3

let catalogs_equal c1 c2 =
  List.equal String.equal (Storage.Catalog.names c1) (Storage.Catalog.names c2)
  && List.for_all
       (fun name ->
         Xrel.equal
           (Storage.Catalog.relation c1 name)
           (Storage.Catalog.relation c2 name)
         && String.equal
              (Storage.Persist.schema_to_string (Storage.Catalog.schema c1 name))
              (Storage.Persist.schema_to_string (Storage.Catalog.schema c2 name)))
       (Storage.Catalog.names c1)

(* Every state a committed run passes through: the seed, then the state
   after each statement. *)
let committed_states () =
  with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (seed_catalog ());
      let d, _ = Dml.open_durable ~checkpoint_every ~dir () in
      let states, _ =
        List.fold_left
          (fun (states, d) stmt ->
            let d, _ = Dml.exec_durable_string d stmt in
            (Dml.durable_catalog d :: states, d))
          ([ Dml.durable_catalog d ], d)
          workload
      in
      Array.of_list (List.rev states))

(* One faulted run: seed, open, execute until the injected crash, count
   fully completed statements. *)
let faulted_run ~fault ~after dir =
  Storage.Persist.save ~dir (seed_catalog ());
  let io = Storage.Io.faulty ~fault ~after Storage.Io.real in
  let completed = ref 0 in
  (try
     let d, _ = Dml.open_durable ~io ~checkpoint_every ~dir () in
     ignore
       (List.fold_left
          (fun d stmt ->
            let d, _ = Dml.exec_durable_string d stmt in
            incr completed;
            d)
          d workload)
   with Storage.Io.Injected_fault _ -> ());
  !completed

let count_fs_ops () =
  with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (seed_catalog ());
      let io, ops = Storage.Io.counting Storage.Io.real in
      let d, _ = Dml.open_durable ~io ~checkpoint_every ~dir () in
      ignore
        (List.fold_left
           (fun d stmt -> fst (Dml.exec_durable_string d stmt))
           d workload);
      ops ())

let no_corruption report =
  List.iter
    (fun (name, status) ->
      match status with
      | Storage.Persist.Corrupt reason ->
          Alcotest.failf "relation %s quarantined after crash: %s" name reason
      | _ -> ())
    report.Storage.Persist.statuses

let test_fault_matrix fault () =
  let states = committed_states () in
  let total = count_fs_ops () in
  Alcotest.(check bool)
    "the workload performs filesystem operations" true (total > 10);
  for after = 0 to total - 1 do
    with_temp_dir (fun dir ->
        let completed = faulted_run ~fault ~after dir in
        let report = Storage.Persist.recover ~dir () in
        no_corruption report;
        let recovered = report.Storage.Persist.catalog in
        (* The crash happened during statement [completed] (0-based): its
           journal append either committed or it did not, so recovery must
           land exactly on the state after [completed] or [completed+1]
           statements — anything else is a torn or lost update. *)
        let candidates =
          states.(completed)
          :: (if completed + 1 < Array.length states then
                [ states.(completed + 1) ]
              else [])
        in
        if not (List.exists (catalogs_equal recovered) candidates) then
          Alcotest.failf
            "crash at fs-op %d (after %d statements): recovered catalog \
             matches no committed state"
            after completed;
        (* And the repaired directory must now load cleanly. *)
        let clean = Storage.Persist.load_report ~dir () in
        no_corruption clean;
        (match clean.Storage.Persist.journal_note with
        | Some note -> Alcotest.failf "journal note after repair: %s" note
        | None -> ());
        if not (catalogs_equal clean.Storage.Persist.catalog recovered) then
          Alcotest.failf "crash at fs-op %d: repaired directory reloads \
                          differently" after)
  done

(* --------------------- deliberate corruption ------------------ *)

let clobber path f =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (f data))

let flip_last_byte data =
  let n = String.length data in
  String.mapi
    (fun i c -> if i = n - 2 then Char.chr (Char.code c lxor 0x01) else c)
    data

let populated_dir dir =
  Storage.Persist.save ~dir (seed_catalog ());
  let d, _ = Dml.open_durable ~checkpoint_every:1000 ~dir () in
  ignore
    (List.fold_left
       (fun d stmt -> fst (Dml.exec_durable_string d stmt))
       d workload)

let test_corrupt_csv_quarantined () =
  with_temp_dir (fun dir ->
      populated_dir dir;
      (* checkpoint so the csv files reflect the workload *)
      let _ = Storage.Persist.recover ~dir () in
      clobber (Filename.concat dir "R.csv") flip_last_byte;
      let report = Storage.Persist.load_report ~dir () in
      (match List.assoc "R" report.Storage.Persist.statuses with
      | Storage.Persist.Corrupt reason ->
          Alcotest.(check bool)
            "reason mentions the checksum" true
            (String.length reason > 0)
      | _ -> Alcotest.fail "R should be quarantined");
      (match List.assoc "S" report.Storage.Persist.statuses with
      | Storage.Persist.Ok -> ()
      | _ -> Alcotest.fail "S should be untouched");
      Alcotest.(check (list string))
        "catalog holds only the healthy relation" [ "S" ]
        (Storage.Catalog.names report.Storage.Persist.catalog);
      (* load (the strict variant) refuses *)
      (match Storage.Persist.load ~dir () with
      | _ -> Alcotest.fail "strict load should raise"
      | exception Storage.Persist.Error _ -> ());
      (* repair: the quarantined relation is dropped from the manifest *)
      let repaired = Storage.Persist.recover ~dir () in
      ignore repaired;
      let clean = Storage.Persist.load_report ~dir () in
      Alcotest.(check (list string))
        "after fsck only the healthy relation is listed" [ "S" ]
        (List.map fst clean.Storage.Persist.statuses);
      no_corruption clean)

let test_missing_csv_quarantined () =
  with_temp_dir (fun dir ->
      Storage.Persist.save ~dir (seed_catalog ());
      Sys.remove (Filename.concat dir "S.csv");
      let report = Storage.Persist.load_report ~dir () in
      match List.assoc "S" report.Storage.Persist.statuses with
      | Storage.Persist.Corrupt _ -> ()
      | _ -> Alcotest.fail "S should be quarantined")

let test_garbage_journal_tail () =
  with_temp_dir (fun dir ->
      populated_dir dir;
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644
          (Filename.concat dir "wal")
      in
      output_string oc "garbage tail bytes";
      close_out oc;
      let report = Storage.Persist.load_report ~dir () in
      (match report.Storage.Persist.journal_note with
      | Some _ -> ()
      | None -> Alcotest.fail "torn journal tail should be reported");
      no_corruption report;
      (* the committed prefix still replays *)
      let states = committed_states () in
      Alcotest.(check bool)
        "catalog is the fully committed state" true
        (catalogs_equal report.Storage.Persist.catalog
           states.(Array.length states - 1)))

let test_torn_manifest_degrades () =
  with_temp_dir (fun dir ->
      populated_dir dir;
      let _ = Storage.Persist.recover ~dir () in
      clobber (Filename.concat dir "MANIFEST") (fun data ->
          String.sub data 0 (String.length data / 2));
      (* a torn manifest degrades to the legacy (checksum-free) loader
         rather than refusing the directory *)
      let report = Storage.Persist.load_report ~dir () in
      no_corruption report;
      Alcotest.(check (list string))
        "both relations still load" [ "R"; "S" ]
        (List.map fst report.Storage.Persist.statuses))

let test_wal_replay_exactness () =
  (* the delta of two states replays the exact minimal representation *)
  let states = committed_states () in
  let last = states.(Array.length states - 1) in
  with_temp_dir (fun dir ->
      populated_dir dir;
      (* no checkpoint since open: the journal alone must rebuild it *)
      let report = Storage.Persist.load_report ~dir () in
      Alcotest.(check bool)
        "journal replay reproduces the final catalog exactly" true
        (catalogs_equal report.Storage.Persist.catalog last);
      List.iter
        (fun (name, status) ->
          match status with
          | Storage.Persist.Recovered n ->
              Alcotest.(check bool)
                (name ^ " replayed at least one record") true (n > 0)
          | Storage.Persist.Ok -> ()
          | Storage.Persist.Corrupt reason ->
              Alcotest.failf "%s quarantined: %s" name reason)
        report.Storage.Persist.statuses)

let suite =
  [
    Alcotest.test_case "fault matrix: fail-stop" `Slow
      (test_fault_matrix Storage.Io.Fail);
    Alcotest.test_case "fault matrix: truncating crash" `Slow
      (test_fault_matrix Storage.Io.Truncate);
    Alcotest.test_case "fault matrix: torn writes" `Slow
      (test_fault_matrix Storage.Io.Short_write);
    Alcotest.test_case "corrupt csv is quarantined, not fatal" `Quick
      test_corrupt_csv_quarantined;
    Alcotest.test_case "missing data file is quarantined" `Quick
      test_missing_csv_quarantined;
    Alcotest.test_case "garbage journal tail is dropped and reported" `Quick
      test_garbage_journal_tail;
    Alcotest.test_case "torn manifest degrades to legacy load" `Quick
      test_torn_manifest_degrades;
    Alcotest.test_case "journal replay is exact" `Quick
      test_wal_replay_exactness;
  ]
