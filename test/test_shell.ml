(* The interactive shell engine, driven by feeding input strings. *)


open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let feed inputs =
  List.fold_left
    (fun (st, outputs) input ->
      let st, out = Shell.exec st input in
      (st, out :: outputs))
    (Shell.initial, []) inputs
  |> fun (st, outputs) -> (st, List.rev outputs)

let with_ps_csv f =
  let path = Filename.temp_file "nullrel_shell" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.Csv.write_file path
        [ a_ "S#"; a_ "P#" ]
        Paperdata.Fixtures.ps;
      f path)

let test_help_and_quit () =
  let st, outputs = feed [ ".help"; ".quit" ] in
  Alcotest.(check bool) "finished after quit" true (Shell.finished st);
  (match outputs with
  | [ help; bye ] ->
      Alcotest.(check bool) "help mentions .load" true (contains help ".load");
      Alcotest.(check string) "bye" "bye" bye
  | _ -> Alcotest.fail "expected two outputs")

let test_load_list_show_query () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".list";
            ".show PS";
            "range of p is PS retrieve (p.S#) where p.P# = \"p1\"";
          ]
      in
      match outputs with
      | [ loaded; listed; shown; queried ] ->
          Alcotest.(check bool) "loaded 5 tuples" true
            (contains loaded "5 tuples");
          Alcotest.(check string) "list" "PS" listed;
          Alcotest.(check bool) "show prints the table" true
            (contains shown "s4" && contains shown "p4");
          Alcotest.(check bool) "query answers s1 and s2" true
            (contains queried "s1" && contains queried "s2"
            && not (contains queried "s3"))
      | _ -> Alcotest.fail "expected four outputs")

let test_plan_command () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".plan range of p is PS retrieve (p.S#) where p.P# = \"p1\"";
          ]
      in
      match outputs with
      | [ _; planned ] ->
          Alcotest.(check bool) "shows raw and optimized" true
            (contains planned "raw:" && contains planned "optimized:");
          Alcotest.(check bool) "selection pushed to the base" true
            (contains planned "select[P# = p1](PS)")
      | _ -> Alcotest.fail "expected two outputs")

let test_errors_are_text () =
  let _, outputs =
    feed
      [
        ".show NOPE";
        ".load X /nonexistent/file.csv";
        "range of e is NOPE retrieve (e.A)";
        "range of";
        ".bogus";
      ]
  in
  List.iter
    (fun out ->
      Alcotest.(check bool) "every failure reports as text" true
        (contains out "error" || contains out "parse error"))
    outputs

let test_save_open_roundtrip () =
  with_ps_csv (fun path ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "nullrel_shell_%d" (Random.int 1_000_000))
      in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists dir then begin
            Array.iter
              (fun e -> Sys.remove (Filename.concat dir e))
              (Sys.readdir dir);
            Sys.rmdir dir
          end)
        (fun () ->
          let _, outputs =
            feed
              [
                Printf.sprintf ".load PS %s" path;
                Printf.sprintf ".save %s" dir;
                ".quit";
              ]
          in
          Alcotest.(check bool) "saved" true
            (match outputs with [ _; saved; _ ] -> contains saved "saved" | _ -> false);
          let _, outputs =
            feed [ Printf.sprintf ".open %s" dir; ".check"; ".list" ]
          in
          match outputs with
          | [ opened; checked; listed ] ->
              Alcotest.(check bool) "opened one relation" true
                (contains opened "1 relations");
              Alcotest.(check bool) "integrity ok" true (contains checked "ok");
              Alcotest.(check string) "PS is back" "PS" listed
          | _ -> Alcotest.fail "expected three outputs"))

let test_agg_command () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".agg count range of p is PS retrieve (p.P#) where p.S# = \"s1\"";
            ".agg count range of p is PS retrieve (p.S#) where p.P# = \"p1\"";
            ".agg bogus range of p is PS retrieve (p.S#)";
          ]
      in
      match outputs with
      | [ _; counted; infinite; bad ] ->
          Alcotest.(check bool) "count bounds printed" true
            (contains counted "bounds: 2 .. 2");
          Alcotest.(check bool) "infinite domain reported" true
            (contains infinite "infinite domain");
          Alcotest.(check bool) "bad kind reported" true (contains bad "error")
      | _ -> Alcotest.fail "expected four outputs")

(* The contract: [Shell.exec] never raises. Whatever garbage arrives,
   the result is an error string and the catalog is untouched. *)
let hostile_inputs =
  [
    ".open /nonexistent/place";
    ".open /dev/null";
    ".fsck /nonexistent/place";
    ".save /nonexistent/parent/dir/x";
    ".load";
    ".load X";
    ".open";
    ".fsck";
    ".save";
    ".show";
    ".schema";
    ".load PS /etc";
    ".plan not a query at all";
    ".plan range of p is MISSING retrieve (p.A)";
    ".agg sum nonsense range of p is PS retrieve (p.A)";
    ".agg";
    "range of p is";
    "append to NOWHERE (A = 1)";
    "range of v is NOWHERE delete v";
    "append to";
    "\"unterminated";
    ".quit extra args";
    "....";
    ".";
    ".limit bogus";
    ".limit time";
    ".limit time x";
    ".limit time -1";
    ".limit tuples";
    ".limit tuples x";
    ".limit tuples -3";
    ".limit tuples 0";
    ".limit time 1 extra";
    ".analyze MISSING";
    ".stats-catalog extra args";
    (* out-of-range integer literal: must be a lexer error, not a crash *)
    "range of p is PS retrieve (p.S#) where p.P# = 99999999999999999999";
  ]

let test_never_raises () =
  with_ps_csv (fun path ->
      let st, _ = Shell.exec Shell.initial (Printf.sprintf ".load PS %s" path) in
      let before = Storage.Catalog.to_db (Shell.catalog st) in
      List.iter
        (fun input ->
          match Shell.exec st input with
          | st', out ->
              Alcotest.(check bool)
                (Printf.sprintf "%S reports an error" input)
                true
                (contains out "error" || contains out "problems found");
              Alcotest.(check bool)
                (Printf.sprintf "%S leaves the catalog unchanged" input)
                true
                (List.length (Storage.Catalog.to_db (Shell.catalog st'))
                 = List.length before)
          | exception e ->
              Alcotest.failf "%S raised %s" input (Printexc.to_string e))
        hostile_inputs)

let test_limits () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".limit";
            ".limit time 30";
            ".limit tuples 100000";
            ".limit";
            (* generous limits: the query still answers *)
            "range of p is PS retrieve (p.S#) where p.P# = \"p1\"";
            ".limit off";
            ".limit";
          ]
      in
      match outputs with
      | [ _; off0; set_t; set_n; both; answered; cleared; off1 ] ->
          Alcotest.(check string) "initially off" "limits: off" off0;
          Alcotest.(check bool) "time set" true (contains set_t "time 30s");
          Alcotest.(check bool) "tuples set" true
            (contains set_n "tuples 100000");
          Alcotest.(check bool) "both reported" true
            (contains both "time 30s" && contains both "tuples 100000");
          Alcotest.(check bool) "query still answers under limits" true
            (contains answered "s1");
          Alcotest.(check string) "off clears" "limits: off" cleared;
          Alcotest.(check string) "stays off" "limits: off" off1
      | _ -> Alcotest.fail "expected eight outputs")

let test_limit_timeout_aborts () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".limit time 0";
            "range of p is PS retrieve (p.S#)";
            ".list";
          ]
      in
      match outputs with
      | [ _; _; aborted; listed ] ->
          Alcotest.(check bool) "statement aborts with a timeout" true
            (contains aborted "timeout");
          Alcotest.(check string) "the shell survives" "PS" listed
      | _ -> Alcotest.fail "expected four outputs")

let test_limit_admission_control () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".limit tuples 2";
            (* a self-product of PS (5 tuples): estimated cost far above 2 *)
            "range of p is PS range of q is PS retrieve (p.S#, q.P#)";
          ]
      in
      match outputs with
      | [ _; _; rejected ] ->
          Alcotest.(check bool) "rejected by admission control" true
            (contains rejected "rejected"
            && contains rejected "tuple budget 2")
      | _ -> Alcotest.fail "expected three outputs")

let test_limit_budget_aborts_dml () =
  with_ps_csv (fun path ->
      (* updates bypass admission control (no plan): the runtime budget
         must catch them instead *)
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".limit tuples 1";
            "range of p is PS delete p where p.S# = \"s1\"";
            ".limit off";
            ".show PS";
          ]
      in
      match outputs with
      | [ _; _; aborted; _; shown ] ->
          Alcotest.(check bool) "budget abort reported" true
            (contains aborted "tuples exceeded"
            || contains aborted "budget");
          Alcotest.(check bool) "catalog untouched by the abort" true
            (contains shown "s1")
      | _ -> Alcotest.fail "expected five outputs")

(* Regression: an out-of-range int literal used to escape the lexer as
   a bare [Failure] from [int_of_string]; it must come back classified. *)
let test_out_of_range_literal () =
  let _, out =
    Shell.exec Shell.initial
      "range of p is PS retrieve (p.S#) where p.P# = 99999999999999999999"
  in
  Alcotest.(check bool) "classified as a lex error" true
    (contains out "error" && contains out "out of range")

let test_analyze_and_stats_catalog () =
  with_ps_csv (fun path ->
      let _, outputs =
        feed
          [
            Printf.sprintf ".load PS %s" path;
            ".stats-catalog";
            ".analyze";
            ".stats-catalog";
            "append to PS (S# = \"s9\", P# = \"p9\")";
            ".stats-catalog";
            ".analyze PS";
            ".stats-catalog";
          ]
      in
      match outputs with
      | [ _; unanalyzed; analyzed; fresh; _; stale; reanalyzed; fresh2 ] ->
          Alcotest.(check bool) "starts unanalyzed" true
            (contains unanalyzed "not analyzed");
          Alcotest.(check bool) "analyze reports the scan" true
            (contains analyzed "analyzed PS: 5 rows");
          Alcotest.(check bool) "fresh after analyze" true
            (contains fresh "fresh");
          Alcotest.(check bool) "append makes them stale" true
            (contains stale "stale");
          Alcotest.(check bool) "re-analyze targets one relation" true
            (contains reanalyzed "analyzed PS");
          Alcotest.(check bool) "fresh again" true (contains fresh2 "fresh")
      | _ -> Alcotest.fail "expected eight outputs")

let test_empty_input () =
  let st, out = Shell.exec Shell.initial "" in
  Alcotest.(check string) "empty input, empty output" "" out;
  Alcotest.(check bool) "not finished" false (Shell.finished st)

let suite =
  [
    Alcotest.test_case "help and quit" `Quick test_help_and_quit;
    Alcotest.test_case "load, list, show, query" `Quick
      test_load_list_show_query;
    Alcotest.test_case ".plan" `Quick test_plan_command;
    Alcotest.test_case "errors come back as text" `Quick test_errors_are_text;
    Alcotest.test_case "save / open roundtrip" `Quick
      test_save_open_roundtrip;
    Alcotest.test_case ".agg" `Quick test_agg_command;
    Alcotest.test_case "hostile input never raises" `Quick test_never_raises;
    Alcotest.test_case ".limit set, report, clear" `Quick test_limits;
    Alcotest.test_case ".limit time 0 aborts statements" `Quick
      test_limit_timeout_aborts;
    Alcotest.test_case "admission control rejects costly plans" `Quick
      test_limit_admission_control;
    Alcotest.test_case "runtime budget catches updates" `Quick
      test_limit_budget_aborts_dml;
    Alcotest.test_case "out-of-range literal is classified" `Quick
      test_out_of_range_literal;
    Alcotest.test_case ".analyze and .stats-catalog" `Quick
      test_analyze_and_stats_catalog;
    Alcotest.test_case "empty input" `Quick test_empty_input;
  ]
