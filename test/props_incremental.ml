(* Property tests for incremental maintenance: random DML schedules
   executed incrementally must land on exactly the catalog the legacy
   full-rewrite pipeline (the oracle) produces, and the equi-index
   [advance] must be indistinguishable from a fresh [build]. *)

open Nullrel
open Qgen

let count = 100

let test name arb prop = QCheck.Test.make ~count ~name arb prop

(* --------------- incremental DML = full-rewrite oracle ----------- *)

let seed_catalog () =
  let r = Schema.make "R" [ ("A", Domain.Ints); ("B", Domain.Ints) ] in
  let s =
    Schema.make "S" ~key:[ "K" ]
      [ ("K", Domain.Ints); ("V", Domain.Strings) ]
  in
  Storage.Catalog.add
    (Storage.Catalog.add Storage.Catalog.empty r Xrel.bottom)
    s Xrel.bottom

let stmt_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map2
            (fun a b -> Printf.sprintf "append to R (A = %d, B = %d)" a b)
            (int_range 0 3) (int_range 0 3) );
        (2, map (fun a -> Printf.sprintf "append to R (A = %d)" a) (int_range 0 3));
        (1, map (fun b -> Printf.sprintf "append to R (B = %d)" b) (int_range 0 3));
        ( 2,
          map2
            (fun k v -> Printf.sprintf "append to S (K = %d, V = \"v%d\")" k v)
            (int_range 0 2) (int_range 0 3) );
        ( 2,
          map
            (fun a -> Printf.sprintf "range of r is R delete r where r.A = %d" a)
            (int_range 0 3) );
        ( 2,
          map2
            (fun b a ->
              Printf.sprintf "range of r is R replace r (B = %d) where r.A = %d"
                b a)
            (int_range 0 3) (int_range 0 3) );
        ( 1,
          map
            (fun k -> Printf.sprintf "range of s is S delete s where s.K = %d" k)
            (int_range 0 2) );
      ])

let schedule_gen = QCheck.Gen.(list_size (int_range 1 25) stmt_gen)

let arbitrary_schedule =
  QCheck.make ~print:(String.concat "\n") schedule_gen

(* Execute a whole schedule on one pipeline. Statements that violate a
   constraint leave the catalog unchanged on both pipelines; the exact
   violation lists may differ (the oracle re-checks whole relations,
   the incremental path checks the delta), so outcomes compare
   coarsely: per-statement tag plus the success messages. *)
let run_schedule ~incremental stmts =
  let was = !Dml.incremental in
  Dml.incremental := incremental;
  Fun.protect
    ~finally:(fun () -> Dml.incremental := was)
    (fun () ->
      List.fold_left
        (fun (cat, log) stmt ->
          match Dml.exec_string cat stmt with
          | outcome ->
              (outcome.Dml.catalog, ("ok: " ^ outcome.Dml.message) :: log)
          | exception Storage.Catalog.Violation _ -> (cat, "violation" :: log))
        (seed_catalog (), [])
        stmts)

let incremental_matches_oracle =
  test "incremental DML schedule = full-rewrite oracle" arbitrary_schedule
    (fun stmts ->
      let cat_inc, log_inc = run_schedule ~incremental:true stmts in
      let cat_ora, log_ora = run_schedule ~incremental:false stmts in
      Test_durability.catalogs_equal cat_inc cat_ora
      && List.equal String.equal log_inc log_ora)

(* ---------------- equi-index advance = fresh build --------------- *)

let x_attr = Attr.Set.singleton (Attr.make "A")

let delta_between l1 l2 =
  let removed = List.filter (fun t -> not (List.exists (Tuple.equal t) l2)) l1 in
  let added = List.filter (fun t -> not (List.exists (Tuple.equal t) l1)) l2 in
  (added, removed)

let advance_parity (module I : Storage.Index_intf.S) name =
  let probes_agree i1 i2 probes =
    List.for_all
      (fun t ->
        List.sort Tuple.compare (I.probe i1 t)
        = List.sort Tuple.compare (I.probe i2 t))
      probes
  in
  test name triple_xrel (fun (x1, x2, x3) ->
      (* Two chained statement deltas, so the overlay (and possibly its
         compaction) is exercised, then compare against building from
         the final relation alone. *)
      let l1 = Xrel.to_list x1
      and l2 = Xrel.to_list x2
      and l3 = Xrel.to_list x3 in
      let a12, r12 = delta_between l1 l2 in
      let a23, r23 = delta_between l2 l3 in
      let advanced =
        I.advance
          (I.advance (I.build x_attr x1) ~added:a12 ~removed:r12)
          ~added:a23 ~removed:r23
      in
      let fresh = I.build x_attr x3 in
      I.cardinal advanced = I.cardinal fresh
      && probes_agree advanced fresh (l1 @ l2 @ l3))

let hash_advance_parity =
  advance_parity (module Storage.Hash_index.Equi) "hash advance = fresh build"

let range_advance_parity =
  advance_parity (module Storage.Range_index.Equi) "range advance = fresh build"

(* ---------------- dump . restore = identity --------------------- *)

let dump_restore_parity (module I : Storage.Index_intf.S) name =
  let probes_agree i1 i2 probes =
    List.for_all
      (fun t ->
        List.sort Tuple.compare (I.probe i1 t)
        = List.sort Tuple.compare (I.probe i2 t))
      probes
  in
  test name arbitrary_xrel (fun x ->
      let idx = I.build x_attr x in
      let arr = Array.of_list (Xrel.to_list x) in
      let pos t =
        let rec go i =
          if i >= Array.length arr then None
          else if Tuple.equal arr.(i) t then Some i
          else go (i + 1)
        in
        go 0
      in
      match I.dump idx ~pos with
      | None -> false (* [pos] is total here, so dump must succeed *)
      | Some lines -> (
          match I.restore x_attr arr lines with
          | None -> false
          | Some restored ->
              I.cardinal restored = I.cardinal idx
              && probes_agree restored idx (Array.to_list arr)))

let hash_dump_restore =
  dump_restore_parity (module Storage.Hash_index.Equi)
    "hash dump . restore = id"

let range_dump_restore =
  dump_restore_parity (module Storage.Range_index.Equi)
    "range dump . restore = id"

let suite =
  List.map to_alcotest
    [
      incremental_matches_oracle;
      hash_advance_parity;
      range_advance_parity;
      hash_dump_restore;
      range_dump_restore;
    ]
