(* nullrel: a command-line front end for relations with null values.

   Relations are CSV files ("-" is the null); the first line names the
   attributes.  Subcommands expose the generalized algebra and the
   mini-QUEL evaluator.

     nullrel show r.csv
     nullrel minimize r.csv
     nullrel union r1.csv r2.csv
     nullrel diff r1.csv r2.csv
     nullrel inter r1.csv r2.csv
     nullrel join --on ID r1.csv r2.csv
     nullrel outerjoin --on ID r1.csv r2.csv
     nullrel divide --quotient S# r.csv divisor.csv
     nullrel query --rel EMP=emp.csv 'range of e is EMP retrieve (e.NAME)'
     nullrel query --analyze --rel EMP=emp.csv '...'   (stats-costed plan)
     nullrel agg sum --attr e.QTY --rel SP=sp.csv '...'

   Exit codes: 0 success, 1 generic/quarantine, 2 bad input (parse,
   resolve, CSV shape), 3 storage/I-O faults, 4 timeout, 5 budget
   exceeded, 6 cancelled, 7 commit conflict, 8 commit queue full,
   9 engine shut down, 10 constraint violation. *)

open Nullrel
open Cmdliner

let load path =
  try Storage.Csv.read_file path with
  | Storage.Csv.Error msg -> raise (Storage.Csv.Error (path ^ ": " ^ msg))

(* Column order for printing a result: requested attrs first, then any
   remaining scope attributes. *)
let columns_for preferred x =
  let scope = Xrel.scope x in
  let in_preferred a = List.exists (Attr.equal a) preferred in
  preferred @ List.filter (fun a -> not (in_preferred a)) (Attr.Set.elements scope)

let emit ~as_csv attrs x =
  if as_csv then print_string (Storage.Csv.write_string attrs x)
  else Format.printf "%a@?" (Pp.table attrs) x

(* --------------------- errors and limits ------------------- *)

(* One exception story for every subcommand: each error class gets its
   own nonzero exit code, so scripts can distinguish a typo (2) from a
   failing disk (3) from a governor abort (4..6). Every branch also
   records a structured abort event, so a --trace-file dump written
   from at_exit carries the reason the process died. *)
let handle f =
  let abort kind detail = Sysview.Trace.note_abort ~kind ~detail in
  try f () with
  | Session.Session_error.Error e ->
      let msg = Session.Session_error.to_string e in
      abort "session" msg;
      Printf.eprintf "error: %s\n" msg;
      exit (Session.Session_error.exit_code e)
  | Constr.Error v ->
      let msg = Constr.to_string v in
      abort "constraint" msg;
      Printf.eprintf "constraint violation: %s\n" msg;
      exit Constr.exit_code
  | Exec_error.Error e ->
      let msg = Exec_error.to_string e in
      abort "governor" msg;
      Printf.eprintf "error: %s\n" msg;
      exit (Exec_error.exit_code e)
  | Quel.Parser.Error msg ->
      abort "parse" msg;
      Printf.eprintf "parse error: %s\n" msg;
      exit 2
  | Quel.Lexer.Error (msg, pos) ->
      abort "parse" msg;
      Printf.eprintf "lexical error at %d: %s\n" pos msg;
      exit 2
  | Quel.Resolve.Error msg ->
      abort "resolve" msg;
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Storage.Csv.Error msg ->
      abort "csv" msg;
      Printf.eprintf "csv error: %s\n" msg;
      exit 2
  | Storage.Catalog.Violation violations ->
      let text =
        String.concat "\n"
          (List.map (Pp.to_string Schema.pp_violation) violations)
      in
      abort "integrity" text;
      Printf.eprintf "integrity violations:\n%s\n" text;
      exit 2
  | Storage.Binary.Corrupt msg ->
      abort "storage" msg;
      Printf.eprintf "error: corrupt relation file: %s\n" msg;
      exit 3
  | Storage.Persist.Error msg ->
      abort "storage" msg;
      Printf.eprintf "error: %s\n" msg;
      exit 3
  | Sys_error msg ->
      abort "io" msg;
      Printf.eprintf "error: %s\n" msg;
      exit 3

(* --metrics-file / --trace / --trace-file all enable collection up
   front and flush through [at_exit], so the dump is written even when
   [handle] leaves with a nonzero code on a governor abort. *)
let metrics_dumped = ref false
let trace_dumped = ref false

let setup_obs metrics_file trace trace_file =
  if metrics_file <> None || trace || trace_file <> None then begin
    Obs.Metrics.set_enabled true;
    Obs.Span.set_enabled true;
    Option.iter
      (fun path ->
        at_exit (fun () ->
            (* Exactly one aggregated dump per process: every session
               and every domain feeds the same global registry, so a
               single writer sees it all — and writing a sibling then
               renaming publishes the file atomically, so a concurrent
               reader (or a crash mid-dump) never observes interleaved
               or half-written text. *)
            if not !metrics_dumped then begin
              metrics_dumped := true;
              try
                let tmp = path ^ ".tmp" in
                let oc = open_out tmp in
                output_string oc (Obs.Metrics.dump_prometheus ());
                close_out oc;
                Sys.rename tmp path
              with Sys_error _ -> prerr_endline ("cannot write " ^ path)
            end))
      metrics_file;
    Option.iter
      (fun path ->
        at_exit (fun () ->
            (* Same once-guard + sibling-rename story as the metrics
               dump: the JSONL file appears atomically and exactly
               once, after every span (and any abort event noted by
               [handle]) has been recorded. *)
            if not !trace_dumped then begin
              trace_dumped := true;
              try Sysview.Trace.write_file path
              with Sys_error _ -> prerr_endline ("cannot write " ^ path)
            end))
      trace_file;
    if trace then
      at_exit (fun () ->
          List.iter
            (fun (e : Obs.Span.event) ->
              Printf.eprintf "trace: %s%s  %.1fms  %d ticks\n"
                (String.make (2 * e.Obs.Span.depth) ' ')
                e.Obs.Span.label
                (e.Obs.Span.duration_s *. 1000.)
                e.Obs.Span.ticks)
            (Obs.Span.events ()))
  end

let set_semantics dialect =
  Option.iter
    (fun d -> Semantics.set_default (Semantics.of_dialect d))
    dialect

let governed deadline_s max_tuples metrics_file trace trace_file domains
    semantics f =
  Option.iter Par.Pool.set_domains domains;
  set_semantics semantics;
  setup_obs metrics_file trace trace_file;
  handle (fun () ->
      match (deadline_s, max_tuples) with
      | None, None -> f ()
      | _ -> Exec.with_governor (Exec.make ?deadline_s ?max_tuples ()) f)

(* ------------------------- arguments ---------------------- *)

let csv_flag =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let timeout_arg =
  let doc =
    "Abort with exit code 4 if execution runs longer than $(docv) seconds."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~doc ~docv:"SECS")

let max_tuples_arg =
  let doc =
    "Abort with exit code 5 if execution touches more than $(docv) tuples."
  in
  Arg.(value & opt (some int) None & info [ "max-tuples" ] ~doc ~docv:"N")

let metrics_file_arg =
  let doc =
    "Enable metrics collection and write a Prometheus text dump to $(docv) \
     on exit (including aborts)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-file" ] ~doc ~docv:"PATH")

let trace_flag =
  let doc = "Enable span tracing; print recorded spans to stderr on exit." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_file_arg =
  let doc =
    "Enable span tracing and write a structured JSONL trace (spans, slow \
     statements, governed-abort events) to $(docv) on exit (including \
     aborts)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-file" ] ~doc ~docv:"PATH")

let domains_arg =
  let doc =
    "Parallelism degree: how many OCaml domains the kernels may use \
     (default: $(b,NULLREL_DOMAINS) or the hardware recommendation; 1 \
     disables parallel execution)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

let semantics_arg =
  let doc =
    "Null-semantics dialect queries answer under: $(b,ni) (the paper's \
     lower bound, the default), $(b,codd) (TRUE answers plus a MAYBE \
     band), $(b,sql) (TRUE plus an UNKNOWN band), $(b,certain) (total \
     sure answers only)."
  in
  let dialect_conv =
    Arg.enum
      (List.map
         (fun n -> (n, Option.get (Semantics.of_string n)))
         Semantics.names)
  in
  Arg.(
    value
    & opt (some dialect_conv) None
    & info [ "semantics" ] ~doc ~docv:"DIALECT")

let file n = Arg.(required & pos n (some file) None & info [] ~docv:"FILE")

let on_arg =
  let doc = "Comma-separated join attributes." in
  Arg.(required & opt (some string) None & info [ "on" ] ~doc ~docv:"ATTRS")

let quotient_arg =
  let doc = "Comma-separated quotient (Y) attributes." in
  Arg.(
    required
    & opt (some string) None
    & info [ "quotient"; "y" ] ~doc ~docv:"ATTRS")

let attr_set_of_string s_ =
  Attr.set_of_list (String.split_on_char ',' s_ |> List.map String.trim)

(* ------------------------- commands ----------------------- *)

let show_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d path =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let attrs, x = load path in
        emit ~as_csv attrs x)
  in
  let doc = "Print a relation (as loaded, minimized)." in
  Cmd.v (Cmd.info "show" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ file 0)

let minimize_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d path =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let attrs, x = load path in
        (* load already canonicalizes; echoing it shows the minimal form *)
        emit ~as_csv attrs x;
        Printf.eprintf "minimal representation: %d tuples\n" (Xrel.cardinal x))
  in
  let doc = "Reduce a relation to its minimal representation." in
  Cmd.v (Cmd.info "minimize" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ file 0)

let binop_cmd name doc op =
  let run as_csv timeout tuples metrics trace tracef domains sem_d p1 p2 =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let a1, x1 = load p1 in
        let _, x2 = load p2 in
        let result = op x1 x2 in
        emit ~as_csv (columns_for a1 result) result)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ file 0 $ file 1)

let union_cmd =
  binop_cmd "union" "Generalized union (lattice least upper bound)."
    Xrel.union

let diff_cmd =
  binop_cmd "diff" "Generalized difference, per (4.8)." Xrel.diff

let inter_cmd =
  binop_cmd "inter" "X-intersection (lattice greatest lower bound)."
    Xrel.inter

let join_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d on p1 p2 =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let a1, x1 = load p1 in
        let _, x2 = load p2 in
        let result = Algebra.equijoin (attr_set_of_string on) x1 x2 in
        emit ~as_csv (columns_for a1 result) result)
  in
  let doc = "Equijoin on the given attributes (join columns not repeated)." in
  Cmd.v (Cmd.info "join" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ on_arg $ file 0 $ file 1)

let outerjoin_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d on p1 p2 =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let a1, x1 = load p1 in
        let _, x2 = load p2 in
        let result = Algebra.union_join (attr_set_of_string on) x1 x2 in
        emit ~as_csv (columns_for a1 result) result)
  in
  let doc = "Union-join (the information-preserving outer join)." in
  Cmd.v (Cmd.info "outerjoin" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ on_arg $ file 0 $ file 1)

let divide_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d y p1 p2 =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let _, x1 = load p1 in
        let _, x2 = load p2 in
        let y = attr_set_of_string y in
        let result = Algebra.divide y x1 x2 in
        emit ~as_csv (Attr.Set.elements y) result)
  in
  let doc = "Y-quotient: dividend / divisor, the 'for sure' division." in
  Cmd.v (Cmd.info "divide" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ quotient_arg $ file 0 $ file 1)

let project_cmd =
  let run as_csv timeout tuples metrics trace tracef domains sem_d attrs path =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let _, x = load path in
        let xs = attr_set_of_string attrs in
        let result = Algebra.project xs x in
        emit ~as_csv (Attr.Set.elements xs) result)
  in
  let doc = "Projection onto the given attributes (re-minimized)." in
  let attrs_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTRS")
  in
  Cmd.v (Cmd.info "project" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ attrs_arg $ file 1)

let rel_arg =
  let doc = "Bind a relation: NAME=FILE.csv (repeatable)." in
  Arg.(value & opt_all string [] & info [ "rel"; "r" ] ~doc ~docv:"NAME=FILE")

let db_of_rels rels =
  List.map
    (fun binding ->
      match String.index_opt binding '=' with
      | None -> Exec_error.bad_inputf "--rel expects NAME=FILE, got %s" binding
      | Some idx ->
          let name = String.sub binding 0 idx in
          let path =
            String.sub binding (idx + 1) (String.length binding - idx - 1)
          in
          let attrs, x = load path in
          let schema =
            Schema.make name
              (List.map
                 (fun a ->
                   ( Attr.name a,
                     (* guess the domain from the first non-null value *)
                     match
                       List.find_map
                         (fun r ->
                           match Tuple.get r a with
                           | Value.Null -> None
                           | Value.Int _ -> Some Domain.Ints
                           | Value.Float _ -> Some Domain.Floats
                           | Value.Bool _ -> Some Domain.Bools
                           | Value.Str _ -> Some Domain.Strings)
                         (Xrel.to_list x)
                     with
                     | Some d -> d
                     | None -> Domain.Strings ))
                 attrs)
          in
          (name, (schema, x)))
    rels

(* An in-memory catalog over the --rel bindings, feeding sys_relations
   and sys_columns rows for them (stats are Missing, constraints none —
   honestly reported as such). *)
let catalog_of_db db =
  List.fold_left
    (fun cat (_, (schema, x)) -> Storage.Catalog.add cat schema x)
    Storage.Catalog.empty db

let query_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")
  in
  let analyze_flag =
    let doc =
      "Collect statistics over every bound relation first, then run the \
       query through the cost-based planner (null-aware selectivities, \
       product reordering, join dispatch hints)."
    in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  let run as_csv timeout tuples metrics trace tracef domains sem_d analyze rels query_src =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let user_db = db_of_rels rels in
        (* The system catalog rides along: sys_* virtual relations over
           a throwaway catalog holding the bound CSVs, so a query can
           range over sys_metrics or sys_relations with no setup. *)
        let db = user_db @ Sysview.db (catalog_of_db user_db) in
        let sem = Semantics.current () in
        match (sem.Semantics.dialect, analyze) with
        | Semantics.Ni_lower, false ->
            let result = Quel.Eval.run_string db query_src in
            emit ~as_csv result.Quel.Eval.attrs result.Quel.Eval.rel
        | _, true ->
            (* The planner path: under a reporting dialect the result is
               the sure band (re-minimized); bands need the calculus
               evaluator, i.e. drop --analyze. *)
            let collected =
              List.map
                (fun (name, (schema, x)) ->
                  (name, Stats.collect ~attrs:(Schema.attrs schema) x))
                user_db
            in
            let stats =
              {
                Plan.Cost.rowcount =
                  (fun name ->
                    Option.map
                      (fun (_, x) -> Xrel.cardinal x)
                      (List.assoc_opt name db));
                table = (fun name -> List.assoc_opt name collected);
                equipped = (fun _ _ -> false);
              }
            in
            let result =
              Plan.Compile.run ~stats ~semantics:sem db
                (Quel.Parser.parse query_src)
            in
            emit ~as_csv result.Quel.Eval.attrs result.Quel.Eval.rel
        | (Semantics.Codd_maybe | Semantics.Sql_3vl | Semantics.Certain), false
          ->
            if as_csv then
              Exec_error.bad_input
                "--csv emits x-relations; the reporting dialects produce \
                 plain-set bands (drop --csv, or use --semantics ni)";
            let q = Quel.Parser.parse query_src in
            let b = Quel.Eval.query (Quel.Eval.ctx ~semantics:sem ()) db q in
            Format.printf "%a@?"
              (Pp.table_rel b.Quel.Eval.attrs)
              b.Quel.Eval.sure;
            Option.iter
              (fun band ->
                Format.printf "%a@?"
                  (Pp.table_rel
                     ~title:(sem.Semantics.maybe_label ^ " band")
                     b.Quel.Eval.attrs)
                  band)
              b.Quel.Eval.maybe)
  in
  let doc =
    "Evaluate a mini-QUEL query (the paper's lower bound ||Q||-)."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ csv_flag $ timeout_arg $ max_tuples_arg $ metrics_file_arg
      $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg $ analyze_flag $ rel_arg $ query_arg)

let agg_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("count", `Count); ("sum", `Sum); ("min", `Min); ("max", `Max) ])) None
      & info [] ~docv:"KIND")
  in
  let attr_arg =
    let doc = "The aggregated attribute, written $(i,v.ATTR)." in
    Arg.(value & opt (some string) None & info [ "attr" ] ~doc ~docv:"V.ATTR")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let run timeout tuples metrics trace tracef domains sem_d rels kind attr query_src =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let user_db = db_of_rels rels in
        let db = user_db @ Sysview.db (catalog_of_db user_db) in
        let parse_ref r =
          match String.index_opt r '.' with
          | Some idx ->
              ( String.sub r 0 idx,
                String.sub r (idx + 1) (String.length r - idx - 1) )
          | None ->
              Exec_error.bad_input "--attr must be written v.ATTR"
        in
        let kind =
          match (kind, attr) with
          | `Count, None -> Quel.Aggregate.Count
          | `Count, Some _ -> Exec_error.bad_input "count takes no --attr"
          | `Sum, Some r ->
              let v, a = parse_ref r in
              Quel.Aggregate.Sum (v, a)
          | `Min, Some r ->
              let v, a = parse_ref r in
              Quel.Aggregate.Min (v, a)
          | `Max, Some r ->
              let v, a = parse_ref r in
              Quel.Aggregate.Max (v, a)
          | (`Sum | `Min | `Max), None ->
              Exec_error.bad_input "sum/min/max need --attr V.ATTR"
        in
        let q = Quel.Parser.parse query_src in
        let b =
          try Quel.Aggregate.bounds db q kind
          with Domain.Infinite what ->
            Exec_error.bad_inputf
              "%s has an infinite domain; aggregate bounds need finite \
               domains (int ranges stay finite in .nrdb schemas, but CSV \
               columns are guessed as unbounded)"
              what
        in
        Printf.printf "bounds: %d .. %d%s\n" b.Quel.Aggregate.lower
          b.Quel.Aggregate.upper
          (if b.Quel.Aggregate.may_be_empty then "   (the answer may be empty)"
           else ""))
  in
  let doc =
    "Exact aggregate bounds over all completions of the nulls (count, sum, \
     min, max)."
  in
  Cmd.v (Cmd.info "agg" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ rel_arg $ kind_arg $ attr_arg $ query_arg)

let convert_cmd =
  let run timeout tuples metrics trace tracef domains sem_d src dst =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let load_any path =
          if Filename.check_suffix path ".nrx" then
            let x = Storage.Binary.read_file path in
            (Attr.Set.elements (Xrel.scope x), x)
          else load path
        in
        let attrs, x = load_any src in
        if Filename.check_suffix dst ".nrx" then Storage.Binary.write_file dst x
        else Storage.Csv.write_file dst attrs x;
        Printf.eprintf "%s -> %s (%d tuples)\n" src dst (Xrel.cardinal x))
  in
  let doc = "Convert between .csv and the compact .nrx binary format." in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ file 0
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"DEST"))

let fsck_cmd =
  let dry_flag =
    let doc = "Report only; do not rewrite the checkpoint or the journal." in
    Arg.(value & flag & info [ "dry-run"; "n" ] ~doc)
  in
  let dir_arg = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let run timeout tuples metrics trace tracef domains sem_d dry dir =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let report =
          if dry then Storage.Persist.load_report ~dir ()
          else Storage.Persist.recover ~dir ()
        in
        List.iter print_endline (Storage.Persist.report_lines report);
        Printf.printf "%d relations, lsn %d%s\n"
          (List.length (Storage.Catalog.names report.Storage.Persist.catalog))
          report.Storage.Persist.lsn
          (if dry then "" else " (checkpoint rewritten, journal empty)");
        let corrupt =
          List.exists
            (fun (_, s_) ->
              match s_ with Storage.Persist.Corrupt _ -> true | _ -> false)
            report.Storage.Persist.statuses
        in
        if corrupt then exit 1)
  in
  let doc =
    "Check a catalog directory (checksums, journal) and repair it: replay \
     the committed journal tail, quarantine corrupt relations, rewrite a \
     clean checkpoint. Exits 1 if anything was quarantined, 3 if the \
     directory itself is unreadable."
  in
  Cmd.v (Cmd.info "fsck" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ dry_flag $ dir_arg)

let sessions_cmd =
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  let dir_arg =
    let doc =
      "Catalog directory for the drive (created if absent). Default: a \
       throwaway temporary directory, removed afterwards."
    in
    Arg.(value & opt (some string) None & info [ "dir" ] ~doc ~docv:"DIR")
  in
  let sessions_arg =
    let doc = "Concurrent sessions to drive." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~doc ~docv:"N")
  in
  let txns_arg =
    let doc = "Transactions per session." in
    Arg.(value & opt int 100 & info [ "txns" ] ~doc ~docv:"N")
  in
  let conflict_arg =
    let doc =
      "Make every $(docv)th transaction hit a shared write-write hotspot \
       (0 disables contention)."
    in
    Arg.(value & opt int 0 & info [ "conflict-every" ] ~doc ~docv:"K")
  in
  let serial_flag =
    let doc = "One fsync per transaction instead of group commit." in
    Arg.(value & flag & info [ "serial" ] ~doc)
  in
  let demo_flag =
    let doc =
      "Print the deterministic two-session walkthrough (snapshot isolation, \
       one group batch, a conflict, a retry) instead of the load drive."
    in
    Arg.(value & flag & info [ "demo" ] ~doc)
  in
  let run timeout tuples metrics trace tracef domains sem_d dir nsessions txns
      conflict_every serial demo =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let with_dir f =
          match dir with
          | Some d -> f d
          | None ->
              let d = Filename.temp_file "nullrel_sessions" "" in
              Sys.remove d;
              Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)
        in
        with_dir @@ fun dir ->
        if demo then
          List.iter print_endline (Session.Drive.demo ~dir ())
        else begin
          Session.Drive.seed ~dir ();
          let config =
            { Session.default_config with Session.group = not serial }
          in
          let eng, _ = Session.open_engine ~config ~dir () in
          let r =
            Session.Drive.contention eng ~sessions:nsessions ~txns
              ~conflict_every ()
          in
          Session.shutdown eng;
          let s = r.Session.Drive.engine_stats in
          let lat = r.Session.Drive.latencies_s in
          Printf.printf
            "sessions %d  txns/session %d  mode %s\n\
             committed %d  conflicts %d  queue-full retries %d  events %d\n\
             throughput %.0f txn/s  commit latency p50 %.2f ms  p99 %.2f ms\n\
             batches %d  records %d  max batch %d\n"
            r.Session.Drive.sessions r.Session.Drive.txns_per_session
            (if serial then "serial (one fsync per txn)" else "group commit")
            r.Session.Drive.committed r.Session.Drive.conflicts
            r.Session.Drive.queue_full_retries r.Session.Drive.events
            (float_of_int r.Session.Drive.committed
            /. Float.max 1e-9 r.Session.Drive.elapsed_s)
            (1e3 *. Session.Drive.percentile lat 50.)
            (1e3 *. Session.Drive.percentile lat 99.)
            s.Session.batches s.Session.records s.Session.max_batch
        end)
  in
  let doc =
    "Drive concurrent sessions with snapshot isolation and group commit: a \
     contention benchmark over the domain pool, or (--demo) a deterministic \
     walkthrough. Conflicts exit 7, a full commit queue 8, a poisoned \
     engine 9 — but the drive retries those internally and exits 0."
  in
  Cmd.v (Cmd.info "sessions" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ dir_arg $ sessions_arg $ txns_arg $ conflict_arg
      $ serial_flag $ demo_flag)

let dml_cmd =
  let dir_arg =
    let doc = "Durable catalog directory (created if absent)." in
    Arg.(required & opt (some string) None & info [ "dir" ] ~doc ~docv:"DIR")
  in
  let load_args =
    let doc =
      "Register relation NAME from FILE.csv before running the statements \
       (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "load" ] ~doc ~docv:"NAME=FILE")
  in
  let key_args =
    let doc =
      "Declare a primary key for a --load'ed relation: NAME=A,B \
       (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "key" ] ~doc ~docv:"NAME=ATTRS")
  in
  let stmt_args =
    Arg.(value & pos_all string [] & info [] ~docv:"STATEMENT")
  in
  let split_eq what binding =
    match String.index_opt binding '=' with
    | None -> Exec_error.bad_inputf "%s expects NAME=..., got %s" what binding
    | Some idx ->
        ( String.sub binding 0 idx,
          String.sub binding (idx + 1) (String.length binding - idx - 1) )
  in
  let guessed_schema ?key name attrs x =
    Schema.make ?key name
      (List.map
         (fun a ->
           ( Attr.name a,
             match
               List.find_map
                 (fun r ->
                   match Tuple.get r a with
                   | Value.Null -> None
                   | Value.Int _ -> Some Domain.Ints
                   | Value.Float _ -> Some Domain.Floats
                   | Value.Bool _ -> Some Domain.Bools
                   | Value.Str _ -> Some Domain.Strings)
                 (Xrel.to_list x)
             with
             | Some d -> d
             | None -> Domain.Strings ))
         attrs)
  in
  let run timeout tuples metrics trace tracef domains sem_d dir loads keys stmts =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        (* Phase 1: register any CSVs as relations of the directory's
           catalog (a checkpoint write, like the shell's .load+.save). *)
        if loads <> [] then begin
          let cat =
            if Sys.file_exists dir then
              (Storage.Persist.load_report ~dir ()).Storage.Persist.catalog
            else Storage.Catalog.empty
          in
          let keys = List.map (split_eq "--key") keys in
          let cat =
            List.fold_left
              (fun cat binding ->
                let name, path = split_eq "--load" binding in
                let attrs, x = load path in
                let key =
                  Option.map
                    (fun ks ->
                      List.map String.trim (String.split_on_char ',' ks))
                    (List.assoc_opt name keys)
                in
                Storage.Catalog.add cat (guessed_schema ?key name attrs x) x)
              cat loads
          in
          Storage.Persist.save ~dir cat
        end;
        (* Phase 2: run the statements through the durable write path —
           constraint enforcement, cascades and the journal included. *)
        let d, report = Dml.open_durable ~dir () in
        List.iter
          (fun l -> Printf.eprintf "recovery: %s\n" l)
          (Storage.Persist.report_lines report);
        let d =
          List.fold_left
            (fun d src ->
              let d, outcome = Dml.exec_durable_string d src in
              (match outcome.Dml.result with
              | Some result ->
                  Format.printf "%a@?"
                    (Pp.table result.Quel.Eval.attrs)
                    result.Quel.Eval.rel
              | None ->
                  if outcome.Dml.message <> "" then
                    print_endline outcome.Dml.message);
              d)
            d stmts
        in
        ignore (Dml.checkpoint d))
  in
  let doc =
    "Run mini-QUEL statements against a durable catalog directory: \
     journalled updates, declared-constraint enforcement (cascades in the \
     same transaction), checkpoint on exit. A constraint violation exits \
     10 with the directory unchanged."
  in
  Cmd.v (Cmd.info "dml" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ dir_arg $ load_args $ key_args $ stmt_args)

let semantics_cmd =
  let queries_arg =
    let doc = "Generated queries per run." in
    Arg.(value & opt int 500 & info [ "queries" ] ~doc ~docv:"N")
  in
  let seed_arg =
    let doc = "PRNG seed (the run is deterministic given it)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let rows_arg =
    let doc = "Rows per generated relation." in
    Arg.(value & opt int 40 & info [ "rows" ] ~doc ~docv:"N")
  in
  let nulls_arg =
    let doc = "Probability that a generated cell is null." in
    Arg.(value & opt float 0.25 & info [ "null-density" ] ~doc ~docv:"P")
  in
  let run timeout tuples metrics trace tracef domains sem_d queries seed rows
      nulls =
    governed timeout tuples metrics trace tracef domains sem_d (fun () ->
        let spec =
          { Workload.Diff.default_spec with Workload.Gen.rows;
            null_density = nulls }
        in
        let report = Workload.Diff.run ~seed ~queries ~spec () in
        print_endline (Workload.Diff.render report);
        if not (Workload.Diff.ok report) then exit 1)
  in
  let doc =
    "Differential semantics harness: random queries evaluated under all \
     four dialects (ni, codd, sql, certain), with the containment lattice \
     between their answers checked query by query. Exits 1 on any oracle \
     failure."
  in
  Cmd.v (Cmd.info "semantics" ~doc)
    Term.(
      const run $ timeout_arg $ max_tuples_arg $ metrics_file_arg $ trace_flag
      $ trace_file_arg $ domains_arg $ semantics_arg $ queries_arg $ seed_arg
      $ rows_arg $ nulls_arg)

let repl_cmd =
  let run metrics trace tracef domains sem_d =
    Option.iter Par.Pool.set_domains domains;
    set_semantics sem_d;
    setup_obs metrics trace tracef;
    print_endline "nullrel shell -- .help for commands, .quit to leave";
    let rec loop st =
      if Shell.finished st then ()
      else begin
        print_string "> ";
        match read_line () with
        | exception End_of_file -> print_newline ()
        | line ->
            let st, output = Shell.exec st line in
            if output <> "" then print_endline output;
            loop st
      end
    in
    loop Shell.initial
  in
  let doc = "Interactive shell: load CSVs, run queries, inspect plans." in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(const run $ metrics_file_arg $ trace_flag $ trace_file_arg $ domains_arg $ semantics_arg)

let () =
  let doc = "relational algebra with no-information nulls (Zaniolo 1982)" in
  let info = Cmd.info "nullrel" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            show_cmd;
            minimize_cmd;
            union_cmd;
            diff_cmd;
            inter_cmd;
            join_cmd;
            outerjoin_cmd;
            divide_cmd;
            project_cmd;
            query_cmd;
            agg_cmd;
            convert_cmd;
            fsck_cmd;
            sessions_cmd;
            dml_cmd;
            semantics_cmd;
            repl_cmd;
          ]))
