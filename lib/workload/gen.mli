(** Random relation generators for the benchmarks (experiments E7/E8).

    Relations are generated over integer columns [A1 .. Ak] with
    controllable cardinality, arity, per-column domain size and null
    density — null density is the probability that any given cell holds
    [ni]. Deterministic given the seed. *)

open Nullrel

type spec = {
  arity : int;  (** Number of columns [A1..Ak]. *)
  rows : int;  (** Tuples to draw (duplicates collapse; see {!relation}). *)
  domain_size : int;  (** Each cell value is uniform in [0..domain_size-1]. *)
  null_density : float;  (** Probability that a cell is null. *)
}

val default : spec
(** 4 columns, 1000 rows, domain 1000, 10% nulls. *)

val attrs : spec -> Attr.t list
(** The column attributes [A1 .. Ak]. *)

val universe : spec -> Xrel.universe
(** The columns paired with their [Int_range] domains. *)

val tuple : Prng.t -> spec -> Tuple.t
(** One random tuple. *)

val tuples : Prng.t -> spec -> Tuple.t list
(** [spec.rows] random tuples (before set collapse). *)

val relation : Prng.t -> spec -> Relation.t
(** A random representation — {e not} minimized, so it can contain
    subsumed tuples; feed to [Relation.minimize]/[Xrel.of_relation] to
    canonicalize. *)

val xrel : Prng.t -> spec -> Xrel.t
(** A random x-relation (minimized). *)

val total_relation : Prng.t -> spec -> Relation.t
(** A random fully-defined (null-free) representation, whatever
    [spec.null_density] says. *)

val schema : spec -> string -> Schema.t
(** A schema for [name] over {!universe}'s columns and domains. *)

val db : Prng.t -> spec -> int -> (string * (Schema.t * Xrel.t)) list
(** [db g spec k] is [k] random relations named [R1 .. Rk], each a
    fresh draw of {!xrel} under [spec] — structurally a
    [Quel.Resolve.db], built without depending on quel (the pair list
    is the shared database shape). The differential harness
    ({!Diff}) queries it under every dialect. *)
