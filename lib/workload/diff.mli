(** The differential semantics harness: random mini-QUEL queries
    evaluated under every {!Nullrel.Semantics} dialect, with the
    containment lattice between their answers checked as oracles.

    The lattice is the point of the dialect family: on any database
    and query,

    - certain answers ⊆ the paper's ni lower bound (certain adds the
      totality requirement to the same TRUE rows; total tuples are
      never subsumption-minimized away);
    - ni lower bound ⊆ Codd's TRUE band (minimization only drops
      rows from the same plain set);
    - SQL's TRUE band = Codd's TRUE band (identical admission);
    - SQL's UNKNOWN band ⊆ Codd's MAYBE band, and is disjoint from
      SQL's own TRUE band (UNKNOWN subtracts the sure answers —
      Codd's MAYBE keeps the overlap, which is why no disjointness
      is asserted for Codd);

    plus three structural oracles: certain answers are all-total, the
    ni band is subsumption-minimal, and the optimizing planner agrees
    with the calculus evaluator on the ni dialect. Queries with no
    qualification additionally pin the Section 5 vacuous-truth
    reading: the empty conjunction is True, so nothing may land in a
    maybe band.

    Used by the CLI's [semantics] subcommand, the [props_semantics]
    qcheck suite, and bench E25. Deterministic given the seed. *)

val gen_query :
  Prng.t -> (string * (Nullrel.Schema.t * Nullrel.Xrel.t)) list ->
  Quel.Ast.query
(** A random query over a generated db ({!Gen.db}): 1–2 range
    variables, 1–3 distinct targets, and (usually) a random
    qualification tree of comparisons; ~15% of queries have no
    qualification, to exercise the empty-conjunction pin. *)

type verdict = { oracle : string; passed : bool; detail : string }

val check :
  (string * (Nullrel.Schema.t * Nullrel.Xrel.t)) list ->
  Quel.Ast.query -> verdict list
(** Evaluate one query under all four dialects and judge every
    applicable oracle. An all-[passed] list is the expected outcome on
    any input. *)

type report = {
  queries : int;
  per_oracle : (string * (int * int)) list;
      (** Oracle name to (passed, run), in first-seen order. *)
  failures : string list;
      (** The first few failing checks, rendered with their query. *)
}

val ok : report -> bool

val default_spec : Gen.spec
(** Small relations over small domains with 25% nulls — dense enough
    that every band is regularly non-empty. *)

val run :
  ?seed:int -> ?queries:int -> ?spec:Gen.spec -> ?relations:int -> unit ->
  report
(** Generate a db and [queries] (default 500) random queries, check
    each, tally per oracle. *)

val render : report -> string
(** Human-readable tally: one ["oracle: ok (N/N)"] line per oracle,
    the retained failures, and a final ["containment lattice: ok"] /
    [FAILED] verdict line. *)
