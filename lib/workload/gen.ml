open Nullrel

type spec = {
  arity : int;
  rows : int;
  domain_size : int;
  null_density : float;
}

let default = { arity = 4; rows = 1000; domain_size = 1000; null_density = 0.1 }

let attrs spec =
  List.init spec.arity (fun i -> Attr.make (Printf.sprintf "A%d" (i + 1)))

let universe spec =
  List.map (fun a -> (a, Domain.Int_range (0, spec.domain_size - 1))) (attrs spec)

let tuple_with g spec ~nulls =
  List.fold_left
    (fun t a ->
      if nulls && Prng.bool g spec.null_density then t
      else Tuple.set t a (Value.Int (Prng.int g spec.domain_size)))
    Tuple.empty (attrs spec)

let tuple g spec = tuple_with g spec ~nulls:true
let tuples g spec = List.init spec.rows (fun _ -> tuple g spec)
let relation g spec = Relation.of_list (tuples g spec)
let xrel g spec = Xrel.of_relation (relation g spec)

let total_relation g spec =
  Relation.of_list
    (List.init spec.rows (fun _ -> tuple_with g spec ~nulls:false))

let schema spec name =
  Schema.make name
    (List.map
       (fun a -> (Attr.name a, Domain.Int_range (0, spec.domain_size - 1)))
       (attrs spec))

(* Structurally a [Quel.Resolve.db] — the pair list is the database
   shape every evaluator consumes, but building it needs nothing from
   quel, so the generator library keeps its nullrel-only dependency. *)
let db g spec k =
  List.init k (fun i ->
      let name = Printf.sprintf "R%d" (i + 1) in
      (name, (schema spec name, xrel g spec)))
