open Nullrel

(* ------------------------ query generation -------------------- *)

(* Small trees over a generated db: 1-2 range variables, a random
   non-empty target list, and a random qualification whose atoms
   compare attribute references to constants (or to each other).
   Constants are drawn slightly wider than the column domain so some
   comparisons are unsatisfiable — the band splits must survive both
   dense and empty answers. *)

let vars = [ "x"; "y" ]

let gen_cond g (refs : (string * string) list) depth =
  let const () = Value.Int (Prng.int g 8) in
  let atom () =
    let r = Quel.Ast.Attr (fst (Prng.choose g refs), snd (Prng.choose g refs)) in
    let cmp =
      Prng.choose g
        [ Predicate.Eq; Predicate.Neq; Predicate.Lt; Predicate.Le;
          Predicate.Gt; Predicate.Ge ]
    in
    if Prng.bool g 0.3 then
      let s = Quel.Ast.Attr (fst (Prng.choose g refs), snd (Prng.choose g refs)) in
      Quel.Ast.Cmp (r, cmp, s)
    else Quel.Ast.Cmp (r, cmp, Quel.Ast.Const (const ()))
  in
  let rec go depth =
    if depth = 0 || Prng.bool g 0.5 then atom ()
    else
      match Prng.int g 3 with
      | 0 -> Quel.Ast.And (go (depth - 1), go (depth - 1))
      | 1 -> Quel.Ast.Or (go (depth - 1), go (depth - 1))
      | _ -> Quel.Ast.Not (go (depth - 1))
  in
  go depth

let gen_query g (db : (string * (Schema.t * Xrel.t)) list) =
  let n_ranges = 1 + Prng.int g 2 in
  let ranges =
    List.init n_ranges (fun i ->
        (List.nth vars i, fst (Prng.choose g db)))
  in
  let refs =
    List.concat_map
      (fun (v, rel) ->
        let schema, _ = List.assoc rel db in
        List.map (fun a -> (v, Attr.name a)) (Schema.attrs schema))
      ranges
  in
  let n_targets = 1 + Prng.int g (min 3 (List.length refs)) in
  (* Sampling without replacement keeps output attribute names unique
     (duplicate targets would collide after renaming). *)
  let targets, _ =
    List.fold_left
      (fun (acc, pool) _ ->
        match pool with
        | [] -> (acc, [])
        | pool ->
            let pick = Prng.choose g pool in
            (pick :: acc, List.filter (fun r -> r <> pick) pool))
      ([], refs)
      (List.init n_targets Fun.id)
  in
  let where =
    if Prng.bool g 0.15 then None else Some (gen_cond g refs (1 + Prng.int g 2))
  in
  { Quel.Ast.ranges; targets = List.rev targets; where }

(* --------------------------- oracles --------------------------- *)

type verdict = { oracle : string; passed : bool; detail : string }

let sem d = Semantics.of_dialect d

let bands_under d db q =
  Quel.Eval.query (Quel.Eval.ctx ~semantics:(sem d) ()) db q

let subset a b = Tuple.Set.subset (Relation.tuples a) (Relation.tuples b)

let v oracle passed detail = { oracle; passed; detail }

let card r = Tuple.Set.cardinal (Relation.tuples r)

let check db q =
  let ni = bands_under Semantics.Ni_lower db q in
  let codd = bands_under Semantics.Codd_maybe db q in
  let sql = bands_under Semantics.Sql_3vl db q in
  let certain = bands_under Semantics.Certain db q in
  let maybe_of b =
    match b.Quel.Eval.maybe with Some m -> m | None -> Relation.empty
  in
  let codd_maybe = maybe_of codd and sql_unknown = maybe_of sql in
  let scope = Attr.Set.of_list ni.Quel.Eval.attrs in
  let planner =
    Plan.Compile.run ~semantics:(sem Semantics.Ni_lower) db q
  in
  let counts a b = Printf.sprintf "%d vs %d tuples" (card a) (card b) in
  [
    (* The containment lattice: each dialect's sure band sits inside
       the next-weaker reading's. *)
    v "certain-subset-ni"
      (subset certain.Quel.Eval.sure ni.Quel.Eval.sure)
      (counts certain.Quel.Eval.sure ni.Quel.Eval.sure);
    v "ni-subset-codd-true"
      (subset ni.Quel.Eval.sure codd.Quel.Eval.sure)
      (counts ni.Quel.Eval.sure codd.Quel.Eval.sure);
    v "sql-true-equals-codd-true"
      (Relation.equal sql.Quel.Eval.sure codd.Quel.Eval.sure)
      (counts sql.Quel.Eval.sure codd.Quel.Eval.sure);
    v "sql-unknown-subset-codd-maybe"
      (subset sql_unknown codd_maybe)
      (counts sql_unknown codd_maybe);
    v "sql-bands-disjoint"
      (Tuple.Set.is_empty
         (Tuple.Set.inter
            (Relation.tuples sql_unknown)
            (Relation.tuples sql.Quel.Eval.sure)))
      (counts sql_unknown sql.Quel.Eval.sure);
    v "certain-all-total"
      (List.for_all
         (Tuple.is_total_on scope)
         (Relation.to_list certain.Quel.Eval.sure))
      (Printf.sprintf "%d tuples" (card certain.Quel.Eval.sure));
    v "ni-band-minimal"
      (Relation.is_minimal ni.Quel.Eval.sure)
      (Printf.sprintf "%d tuples" (card ni.Quel.Eval.sure));
    v "planner-agrees-on-ni"
      (Xrel.equal planner.Quel.Eval.rel (Xrel.unsafe_of_minimal ni.Quel.Eval.sure))
      (counts (Xrel.rep planner.Quel.Eval.rel) ni.Quel.Eval.sure);
  ]
  @
  (* The Section 5 pin: an absent qualification is the empty
     conjunction, True in every dialect — nothing may land in a
     maybe band. *)
  match q.Quel.Ast.where with
  | Some _ -> []
  | None ->
      [
        v "empty-qualification-no-maybe"
          (Tuple.Set.is_empty (Relation.tuples codd_maybe)
          && Tuple.Set.is_empty (Relation.tuples sql_unknown))
          (counts codd_maybe sql_unknown);
      ]

(* ---------------------------- runs ----------------------------- *)

type report = {
  queries : int;
  per_oracle : (string * (int * int)) list;  (** passed, run — in order. *)
  failures : string list;
}

let ok r = List.for_all (fun (_, (passed, run)) -> passed = run) r.per_oracle

let max_failures = 5

let default_spec =
  { Gen.rows = 40; domain_size = 6; arity = 3; null_density = 0.25 }

let run ?(seed = 42) ?(queries = 500) ?(spec = default_spec) ?(relations = 3)
    () =
  let g = Prng.create seed in
  let db = Gen.db (Prng.split g) spec relations in
  let tally = Hashtbl.create 16 in
  let order = ref [] in
  let failures = ref [] in
  for _ = 1 to queries do
    let q = gen_query g db in
    List.iter
      (fun { oracle; passed; detail } ->
        if not (Hashtbl.mem tally oracle) then order := oracle :: !order;
        let p, r =
          Option.value (Hashtbl.find_opt tally oracle) ~default:(0, 0)
        in
        Hashtbl.replace tally oracle ((p + if passed then 1 else 0), r + 1);
        if (not passed) && List.length !failures < max_failures then
          failures :=
            Format.asprintf "%s: %s — %a" oracle detail Quel.Ast.pp q
            :: !failures)
      (check db q)
  done;
  {
    queries;
    per_oracle =
      List.rev_map (fun o -> (o, Hashtbl.find tally o)) !order;
    failures = List.rev !failures;
  }

let render r =
  let lines =
    Printf.sprintf "differential harness: %d queries" r.queries
    :: List.map
         (fun (oracle, (passed, run)) ->
           Printf.sprintf "  %-30s %s (%d/%d)" oracle
             (if passed = run then "ok" else "FAIL")
             passed run)
         r.per_oracle
    @ List.map (fun f -> "  failure: " ^ f) r.failures
    @ [
        (if ok r then "containment lattice: ok"
         else "containment lattice: FAILED");
      ]
  in
  String.concat "\n" lines
