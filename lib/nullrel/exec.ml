type t = {
  now : unit -> float;
  deadline : float;  (** absolute; [infinity] when unbounded *)
  limit_s : float;  (** the configured allowance, for error reports *)
  max_tuples : int;  (** [max_int] when unbounded *)
  max_memory_words : int;  (** [max_int] when unbounded *)
  start_heap_words : int;
  cancelled : unit -> bool;
  check_every : int;
  mutable charged : int;
  mutable until_check : int;
  mutable hwm_words : int;
}

let never_cancelled () = false

(* Wall time clamped to be non-decreasing: good enough as a monotonic
   deadline clock without reaching for an external library. *)
let monotonic_now =
  let last = ref neg_infinity in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let unlimited =
  {
    now = monotonic_now;
    deadline = infinity;
    limit_s = infinity;
    max_tuples = max_int;
    max_memory_words = max_int;
    start_heap_words = 0;
    cancelled = never_cancelled;
    check_every = max_int;
    charged = 0;
    until_check = max_int;
    hwm_words = 0;
  }

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let make ?deadline_s ?max_tuples ?max_memory_words ?cancelled
    ?(check_every = 256) ?(now = monotonic_now) () =
  let check_every = max 1 check_every in
  {
    now;
    deadline =
      (match deadline_s with Some d -> now () +. d | None -> infinity);
    limit_s = (match deadline_s with Some d -> d | None -> infinity);
    max_tuples = Option.value max_tuples ~default:max_int;
    max_memory_words = Option.value max_memory_words ~default:max_int;
    start_heap_words =
      (match max_memory_words with Some _ -> heap_words () | None -> 0);
    cancelled = Option.value cancelled ~default:never_cancelled;
    check_every;
    charged = 0;
    until_check = check_every;
    hwm_words = 0;
  }

(* The amortized slice: everything that is too expensive to consult on
   every tick. *)
let full_check g =
  g.until_check <- g.check_every;
  if g.cancelled () then Exec_error.raise_ Exec_error.Cancelled;
  (* >= so a zero allowance aborts deterministically even when the
     clock has not visibly advanced since [make] *)
  (if g.deadline < infinity && g.now () >= g.deadline then
     Exec_error.raise_ (Exec_error.Timeout { limit_s = g.limit_s }));
  if g.max_memory_words < max_int then begin
    let grown = heap_words () - g.start_heap_words in
    if grown > g.hwm_words then g.hwm_words <- grown;
    if grown > g.max_memory_words then
      Exec_error.raise_
        (Exec_error.Budget_exceeded
           {
             resource = Exec_error.Memory_words;
             budget = g.max_memory_words;
             used = grown;
           })
  end

(* A second physically-distinct no-op sentinel, installed in place of
   [unlimited] while observability is live ([Obs.Metrics.hot]). The
   ungoverned, unobserved fast path of [tick] is then still the single
   pointer comparison it was before the Obs layer existed; the obs
   branch only runs once that comparison has already failed. *)
let unlimited_observed = { unlimited with charged = 0 }

(* The ambient slot is domain-local (one ref cell per domain, lazily
   allocated by DLS), so concurrent sessions running on their own
   domains each govern themselves: a tick on one session's domain can
   never charge — or race on — another domain's governor. The fast
   path gains one DLS array load over the old plain global. *)
let ambient : t ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref unlimited)

let slot () = Stdlib.Domain.DLS.get ambient
let current () = !(slot ())
let limited g = g != unlimited && g != unlimited_observed

(* The base sentinel the ambient slot must hold when no governor is
   installed, given the current obs state. Only the main domain swaps
   to [unlimited_observed]: span tracing is main-domain state, and a
   freshly spawned session domain starts at plain [unlimited] anyway
   (its DLS initializer cannot observe later hot flips). *)
let base_sentinel () =
  if !Obs.Metrics.hot && Stdlib.Domain.is_main_domain () then
    unlimited_observed
  else unlimited

let () =
  Obs.Metrics.on_hot_change :=
    (fun _ ->
      let r = slot () in
      if !r == unlimited || !r == unlimited_observed then
        r := base_sentinel ())

let m_ticks =
  Obs.Metrics.counter ~help:"Governor ticks charged by the engine hot loops"
    "nullrel_exec_ticks_total"

let tick ?(cost = 1) () =
  let g = !(Stdlib.Domain.DLS.get ambient) in
  if g != unlimited then begin
    (if !Obs.Metrics.hot then begin
       (* Span state lives on the main domain; governed session
          domains skip the span charge but still count ticks (the
          counter is atomic). *)
       if Stdlib.Domain.is_main_domain () then begin
         Obs.Span.charge cost;
         (* The history ring is single-writer; this is the writer. *)
         Obs.History.charge cost
       end;
       Obs.Metrics.add m_ticks cost
     end);
    if g != unlimited_observed then begin
      g.charged <- g.charged + cost;
      if g.charged > g.max_tuples then
        Exec_error.raise_
          (Exec_error.Budget_exceeded
             {
               resource = Exec_error.Tuples;
               budget = g.max_tuples;
               used = g.charged;
             });
      g.until_check <- g.until_check - cost;
      if g.until_check <= 0 then full_check g
    end
  end

(* Worker domains must never touch the ambient slot ([charged] and the
   amortization countdown are unsynchronized), so parallel kernels
   count work into a per-task atomic and the coordinator charges it
   between its own chunks. *)
let drain_ticks a =
  let n = Atomic.exchange a 0 in
  if n > 0 then tick ~cost:n ()

let checkpoint () =
  let g = !(slot ()) in
  if limited g then full_check g

let with_governor g f =
  let r = slot () in
  let saved = !r in
  r := g;
  Fun.protect
    ~finally:(fun () ->
      (* Re-derive a stale sentinel: obs may have flipped while [f]
         ran (e.g. a span opened just outside this scope closed). *)
      r :=
        (if saved == unlimited || saved == unlimited_observed then
           base_sentinel ()
         else saved))
    (fun () ->
      if limited g then full_check g;
      f ())

let charged g = g.charged
let memory_high_water g = g.hwm_words
