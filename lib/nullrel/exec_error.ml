type resource = Tuples | Memory_words

type t =
  | Timeout of { limit_s : float }
  | Budget_exceeded of { resource : resource; budget : int; used : int }
  | Cancelled
  | Storage_fault of string
  | Bad_input of string

exception Error of t

let class_name = function
  | Timeout _ -> "timeout"
  | Budget_exceeded _ -> "budget"
  | Cancelled -> "cancelled"
  | Storage_fault _ -> "storage"
  | Bad_input _ -> "bad-input"

let m_abort =
  let make cls =
    ( cls,
      Obs.Metrics.counter ~labels:[ ("class", cls) ]
        ~help:"Typed execution errors raised, by class"
        "nullrel_aborts_total" )
  in
  List.map make [ "timeout"; "budget"; "cancelled"; "storage"; "bad-input" ]

let raise_ e =
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.inc (List.assoc (class_name e) m_abort);
  raise (Error e)
let bad_input msg = raise_ (Bad_input msg)
let bad_inputf fmt = Printf.ksprintf bad_input fmt
let storage_fault msg = raise_ (Storage_fault msg)

let exit_code = function
  | Bad_input _ -> 2
  | Storage_fault _ -> 3
  | Timeout _ -> 4
  | Budget_exceeded _ -> 5
  | Cancelled -> 6

let resource_noun = function
  | Tuples -> "tuple budget"
  | Memory_words -> "memory budget (words)"

let to_string = function
  | Timeout { limit_s } -> Printf.sprintf "timeout: exceeded %gs" limit_s
  | Budget_exceeded { resource; budget; used } ->
      Printf.sprintf "%s exceeded: used %d of %d" (resource_noun resource)
        used budget
  | Cancelled -> "cancelled"
  | Storage_fault msg -> "storage fault: " ^ msg
  | Bad_input msg -> msg

let pp ppf e = Format.pp_print_string ppf (to_string e)
let protect f = match f () with v -> Ok v | exception Error e -> Result.Error e
