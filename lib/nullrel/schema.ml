type foreign_key = { fk_target : string; fk_pairs : (Attr.t * Attr.t) list }

type t = {
  name : string;
  columns : (Attr.t * Domain.t) list;
  key : Attr.Set.t;
  foreign_keys : foreign_key list;
}

let make ?(key = []) ?(foreign_keys = []) name columns =
  let columns = List.map (fun (n, d) -> (Attr.make n, d)) columns in
  let names = List.map fst columns in
  let rec dup = function
    | [] -> None
    | a :: rest -> if List.exists (Attr.equal a) rest then Some a else dup rest
  in
  (match dup names with
  | Some a ->
      Exec_error.bad_inputf "Schema.make: duplicate attribute %s" (Attr.name a)
  | None -> ());
  let key = Attr.set_of_list key in
  Attr.Set.iter
    (fun k ->
      if not (List.exists (Attr.equal k) names) then
        Exec_error.bad_inputf "Schema.make: key attribute %s not a column"
          (Attr.name k))
    key;
  let foreign_keys =
    List.map
      (fun (locals, target, targets) ->
        if List.length locals <> List.length targets then
          Exec_error.bad_inputf
            "Schema.make: foreign key to %s has mismatched arity" target;
        let pair local referenced =
          let a = Attr.make local in
          if not (List.exists (fun (c, _) -> Attr.equal c a) columns) then
            Exec_error.bad_inputf
              "Schema.make: foreign-key attribute %s not a column" local;
          (a, Attr.make referenced)
        in
        { fk_target = target; fk_pairs = List.map2 pair locals targets })
      foreign_keys
  in
  { name; columns; key; foreign_keys }

let name s = s.name
let attrs s = List.map fst s.columns
let attr_set s = Attr.Set.of_list (attrs s)
let key s = s.key
let foreign_keys s = s.foreign_keys

let domain s a =
  List.find_map
    (fun (a', d) -> if Attr.equal a a' then Some d else None)
    s.columns

let mem s a = List.exists (fun (a', _) -> Attr.equal a a') s.columns
let universe s = s.columns

let add_column s name dom =
  let a = Attr.make name in
  if mem s a then
    Exec_error.bad_inputf "Schema.add_column: %s already exists" name;
  { s with columns = s.columns @ [ (a, dom) ] }

type violation =
  | Unknown_attribute of Attr.t
  | Domain_mismatch of Attr.t * Value.t
  | Null_in_key of Attr.t
  | Duplicate_key of Tuple.t

let pp_violation ppf = function
  | Unknown_attribute a -> Format.fprintf ppf "unknown attribute %a" Attr.pp a
  | Domain_mismatch (a, v) ->
      Format.fprintf ppf "value %a outside the domain of %a" Value.pp v Attr.pp
        a
  | Null_in_key a -> Format.fprintf ppf "null in key attribute %a" Attr.pp a
  | Duplicate_key k -> Format.fprintf ppf "duplicate key %a" Tuple.pp k

let check_tuple s r =
  let domain_violations =
    Tuple.fold
      (fun a v acc ->
        match domain s a with
        | None -> Unknown_attribute a :: acc
        | Some d -> if Domain.mem v d then acc else Domain_mismatch (a, v) :: acc)
      r []
  in
  let key_violations =
    Attr.Set.fold
      (fun a acc ->
        if Value.is_null (Tuple.get r a) then Null_in_key a :: acc else acc)
      s.key []
  in
  List.rev_append domain_violations key_violations

let check s x =
  let per_tuple =
    List.concat_map (fun r -> check_tuple s r) (Xrel.to_list x)
  in
  let duplicates =
    if Attr.Set.is_empty s.key then []
    else
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun r ->
          let k = Tuple.restrict r s.key in
          let repr = Tuple.to_list k in
          if Hashtbl.mem seen repr then Some (Duplicate_key k)
          else (
            Hashtbl.add seen repr ();
            None))
        (Xrel.to_list x)
  in
  per_tuple @ duplicates

let pp ppf s =
  let pp_col ppf (a, d) = Format.fprintf ppf "%a: %a" Attr.pp a Domain.pp d in
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_col)
    s.columns;
  if not (Attr.Set.is_empty s.key) then
    Format.fprintf ppf " key %a" Attr.pp_set s.key
