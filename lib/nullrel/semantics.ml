type dialect = Ni_lower | Codd_maybe | Sql_3vl | Certain

type band = Sure | Maybe | Out

type t = {
  dialect : dialect;
  name : string;
  description : string;
  not_ : Tvl.t -> Tvl.t;
  and_ : Tvl.t -> Tvl.t -> Tvl.t;
  or_ : Tvl.t -> Tvl.t -> Tvl.t;
  conj_empty : Tvl.t;
  std_tables : bool;
  admit : Tvl.t -> band;
  total_only : bool;
  minimize : bool;
  reports_maybe : bool;
  exclude_sure : bool;
  maybe_label : string;
}

(* All four dialects read qualifications through Table III; what
   differs is admission, set discipline and reporting. [conj_empty] is
   True everywhere: an absent qualification (and an empty divisor) is
   vacuously satisfied — the Section 5 reading that [Tvl.conj []] and
   the Codd division both already implement, pinned here so no dialect
   can drift. *)
let kleene name dialect ~description admit ~total_only ~minimize
    ~reports_maybe ~exclude_sure ~maybe_label =
  {
    dialect;
    name;
    description;
    not_ = Tvl.not_;
    and_ = Tvl.and_;
    or_ = Tvl.or_;
    conj_empty = Tvl.True;
    std_tables = true;
    admit;
    total_only;
    minimize;
    reports_maybe;
    exclude_sure;
    maybe_label;
  }

let ni_lower =
  kleene "ni" Ni_lower
    ~description:
      "the paper's lower bound ||Q||-: TRUE rows only, minimized x-relation"
    (function Tvl.True -> Sure | Tvl.False | Tvl.Ni -> Out)
    ~total_only:false ~minimize:true ~reports_maybe:false ~exclude_sure:false
    ~maybe_label:"MAYBE"

let codd_maybe =
  kleene "codd" Codd_maybe
    ~description:
      "Codd's baseline: a TRUE band plus the MAYBE band of all ni rows, \
       plain sets"
    (function Tvl.True -> Sure | Tvl.Ni -> Maybe | Tvl.False -> Out)
    ~total_only:false ~minimize:false ~reports_maybe:true ~exclude_sure:false
    ~maybe_label:"MAYBE"

let sql_3vl =
  kleene "sql" Sql_3vl
    ~description:
      "SQL's 3VL: the TRUE band plus an UNKNOWN band (maybe minus the \
       already-certain answers)"
    (function Tvl.True -> Sure | Tvl.Ni -> Maybe | Tvl.False -> Out)
    ~total_only:false ~minimize:false ~reports_maybe:true ~exclude_sure:true
    ~maybe_label:"UNKNOWN"

let certain =
  kleene "certain" Certain
    ~description:
      "certain answers by naive evaluation: TRUE rows with a total output \
       tuple"
    (function Tvl.True -> Sure | Tvl.False | Tvl.Ni -> Out)
    ~total_only:true ~minimize:false ~reports_maybe:false ~exclude_sure:false
    ~maybe_label:"MAYBE"

let of_dialect = function
  | Ni_lower -> ni_lower
  | Codd_maybe -> codd_maybe
  | Sql_3vl -> sql_3vl
  | Certain -> certain

let dialects = [ Ni_lower; Codd_maybe; Sql_3vl; Certain ]
let all = List.map of_dialect dialects
let to_string d = (of_dialect d).name
let names = List.map (fun sem -> sem.name) all

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "ni" | "ni-lower" -> Some Ni_lower
  | "codd" | "maybe" -> Some Codd_maybe
  | "sql" | "3vl" -> Some Sql_3vl
  | "certain" | "certain-answers" -> Some Certain
  | _ -> None

(* Evaluation through the record's tables. The atomic comparisons are
   dialect-independent (every dialect reads a null comparison as its
   third value); only the connectives route through the record — and
   with [std_tables] the whole walk collapses to [Predicate.eval],
   which is the Ni_lower fast path E25 holds within 3%. *)
let rec eval_tables sem p r =
  match p with
  | Predicate.Cmp_attrs _ | Predicate.Cmp_const _ | Predicate.Const _ ->
      Predicate.eval p r
  | Predicate.And (p1, p2) -> sem.and_ (eval_tables sem p1 r) (eval_tables sem p2 r)
  | Predicate.Or (p1, p2) -> sem.or_ (eval_tables sem p1 r) (eval_tables sem p2 r)
  | Predicate.Not p -> sem.not_ (eval_tables sem p r)

let eval sem p r =
  if sem.std_tables then Predicate.eval p r else eval_tables sem p r

let admit_tuple sem scope r =
  (not sem.total_only) || Tuple.is_total_on scope r

(* The ambient slot, shaped like Exec's governor: one ref per domain
   (allocated by DLS), swapped and restored by [with_semantics]. *)
let ambient : t ref Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> ref ni_lower)

let slot () = Stdlib.Domain.DLS.get ambient
let current () = !(slot ())
let set_default sem = slot () := sem

let with_semantics sem f =
  let r = slot () in
  let saved = !r in
  r := sem;
  Fun.protect ~finally:(fun () -> r := saved) f
