(** The resource governor: an execution context carrying a deadline, a
    tuple/intermediate-cardinality budget, a heap high-water estimate
    and a cooperative cancellation flag.

    The governor is ambient: {!with_governor} installs one for the
    dynamic extent of a computation, and the engine's hot loops call
    {!tick} per unit of work (one tuple considered, joined, probed or
    substituted). When no governor is installed, [tick] is a single
    pointer comparison, so ungoverned execution pays (almost) nothing.

    Checks are amortized: the tuple budget is verified on every tick
    (two integer compares), while the clock, the cancellation flag and
    the heap estimate are consulted every [check_every] ticks. On
    violation the governor raises {!Exec_error.Error} — it never
    returns a degraded answer.

    The ambient slot is {e domain-local} (one cell per domain, lazily
    created): a session running on its own domain installs and ticks
    its own governor without ever racing another domain's — the basis
    of the per-session governors in {!Session}. Worker domains spawned
    by {!Par.Pool} still must never call {!tick} against a governor
    they did not install — [charged] and the amortization countdown
    are unsynchronized within a domain. Parallel kernels instead count
    work into a per-task [Atomic.t] which the coordinator charges via
    {!drain_ticks} between the chunks it runs itself, preserving
    deadline, budget and cancellation semantics across domains
    (workers observe the pool's cancel flag at chunk boundaries when
    the drain raises). *)

type t

val unlimited : t
(** The no-op governor; installed by default. *)

val make :
  ?deadline_s:float ->
  ?max_tuples:int ->
  ?max_memory_words:int ->
  ?cancelled:(unit -> bool) ->
  ?check_every:int ->
  ?now:(unit -> float) ->
  unit ->
  t
(** [make ()] builds a governor. [deadline_s] is relative to now on a
    monotonic clock (never runs backwards); [max_tuples] bounds the
    work charged through {!tick}; [max_memory_words] bounds the growth
    of the major heap (GC estimate) since the governor started;
    [cancelled] is polled at every amortized check; [check_every]
    (default 256) sets the amortization grain; [now] overrides the
    clock (tests). *)

val with_governor : t -> (unit -> 'a) -> 'a
(** Installs [t] as the ambient governor for the call, restoring the
    previous one on exit (also on exception). Performs one full check
    on entry, so an already-expired deadline or a pre-raised
    cancellation flag aborts before any work. *)

val current : unit -> t
val limited : t -> bool

val tick : ?cost:int -> unit -> unit
(** Charges [cost] (default 1) units of work to the ambient governor.
    Raises {!Exec_error.Error} on violation; no-op when unlimited. *)

val drain_ticks : int Atomic.t -> unit
(** [drain_ticks a] atomically takes the tick count accumulated in [a]
    (resetting it to 0) and charges it through {!tick}. Called on the
    coordinator between parallel chunks, and once more after fan-in so
    no worker-counted work goes uncharged. May raise like {!tick}. *)

val checkpoint : unit -> unit
(** Forces a full check (clock, cancellation, memory) of the ambient
    governor right now, regardless of amortization. *)

val charged : t -> int
(** Work units charged so far. *)

val memory_high_water : t -> int
(** Largest observed major-heap growth (words) since [make]; only
    sampled when [max_memory_words] is set. *)

val monotonic_now : unit -> float
(** The governor's default clock: wall time clamped to never decrease. *)
