(* Canonical form: the map binds only non-null values, so information-wise
   equivalence is structural equality and [more_informative] is submap
   inclusion. *)

type t = Value.t Attr.Map.t

let empty = Attr.Map.empty

let set r a v =
  if Value.is_null v then Attr.Map.remove a r else Attr.Map.add a v r

let of_list bindings =
  List.fold_left (fun r (a, v) -> set r a v) Attr.Map.empty bindings

let of_strings bindings =
  of_list (List.map (fun (name, v) -> (Attr.make name, v)) bindings)

let to_list r = Attr.Map.bindings r

let get r a =
  match Attr.Map.find_opt a r with Some v -> v | None -> Value.Null

let attrs r = Attr.Map.fold (fun a _ acc -> Attr.Set.add a acc) r Attr.Set.empty
let is_null_tuple r = Attr.Map.is_empty r
let is_total_on x r = Attr.Set.for_all (fun a -> Attr.Map.mem a r) x
let equal r t = Attr.Map.equal Value.equal r t
let compare r t = Attr.Map.compare Value.compare r t
let hash r = Hashtbl.hash (Attr.Map.bindings r)

let more_informative r t =
  Attr.Map.for_all (fun a v -> Value.equal (get r a) v) t

let strictly_more_informative r t = more_informative r t && not (equal r t)

let meet r1 r2 =
  Attr.Map.merge
    (fun _ v1 v2 ->
      match (v1, v2) with
      | Some v1, Some v2 when Value.equal v1 v2 -> Some v1
      | _ -> None)
    r1 r2

let joinable r1 r2 =
  Attr.Map.for_all
    (fun a v1 ->
      match Attr.Map.find_opt a r2 with
      | None -> true
      | Some v2 -> Value.equal v1 v2)
    r1

exception Conflict

let join r1 r2 =
  let merge _ v1 v2 =
    match (v1, v2) with
    | (Some _ as v), None | None, (Some _ as v) -> v
    | Some v1, Some v2 -> if Value.equal v1 v2 then Some v1 else raise Conflict
    | None, None -> None
  in
  match Attr.Map.merge merge r1 r2 with
  | joined -> Some joined
  | exception Conflict -> None

let restrict r x = Attr.Map.filter (fun a _ -> Attr.Set.mem a x) r
let remove r x = Attr.Map.filter (fun a _ -> not (Attr.Set.mem a x)) r

let rename mapping r =
  let target a =
    match List.find_opt (fun (old, _) -> Attr.equal old a) mapping with
    | Some (_, fresh) -> fresh
    | None -> a
  in
  Attr.Map.fold
    (fun a v acc ->
      let a' = target a in
      match Attr.Map.find_opt a' acc with
      | Some v' when not (Value.equal v v') ->
          Exec_error.bad_inputf "Tuple.rename: collision on attribute %s"
            (Attr.name a')
      | _ -> Attr.Map.add a' v acc)
    r Attr.Map.empty

let fold f r init = Attr.Map.fold f r init

let pp ppf r =
  let pp_binding ppf (a, v) = Format.fprintf ppf "%a=%a" Attr.pp a Value.pp v in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_binding)
    (to_list r)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
