type comparison = Eq | Neq | Lt | Le | Gt | Ge

let comparison_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let negate_comparison = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt

let sign_matches cmp c =
  match cmp with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* Table III accounting: every comparison lands in exactly one of the
   three truth values, counted per verdict. *)
let m_verdict =
  let make v =
    Obs.Metrics.counter ~labels:[ ("verdict", v) ]
      ~help:"Three-valued comparison verdicts (Table III)"
      "nullrel_comparison_verdicts_total"
  in
  (make "true", make "false", make "ni")

let count_verdict t =
  let m_true, m_false, m_ni = m_verdict in
  match t with
  | Tvl.True -> Obs.Metrics.inc m_true
  | Tvl.False -> Obs.Metrics.inc m_false
  | Tvl.Ni -> Obs.Metrics.inc m_ni

let apply_comparison cmp v w =
  let t =
    match Value.compare3 v w with
    | None -> Tvl.Ni
    | Some c -> Tvl.of_bool (sign_matches cmp c)
  in
  (* direct ref read: no call on the disabled path *)
  if !Obs.Metrics.enabled then count_verdict t;
  t

type t =
  | Cmp_attrs of Attr.t * comparison * Attr.t
  | Cmp_const of Attr.t * comparison * Value.t
  | And of t * t
  | Or of t * t
  | Not of t
  | Const of Tvl.t

let ( &&& ) p q = And (p, q)
let ( ||| ) p q = Or (p, q)

let cmp_const name cmp v =
  if Value.is_null v then
    Exec_error.bad_input "Predicate.cmp_const: the constant must not be ni";
  Cmp_const (Attr.make name, cmp, v)

let cmp_attrs a cmp b = Cmp_attrs (Attr.make a, cmp, Attr.make b)

let rec eval p r =
  match p with
  | Cmp_attrs (a, cmp, b) -> apply_comparison cmp (Tuple.get r a) (Tuple.get r b)
  | Cmp_const (a, cmp, k) -> apply_comparison cmp (Tuple.get r a) k
  | And (p, q) -> Tvl.and_ (eval p r) (eval q r)
  | Or (p, q) -> Tvl.or_ (eval p r) (eval q r)
  | Not p -> Tvl.not_ (eval p r)
  | Const v -> v

let holds p r = Tvl.equal (eval p r) Tvl.True

let rec attrs = function
  | Cmp_attrs (a, _, b) -> Attr.Set.of_list [ a; b ]
  | Cmp_const (a, _, _) -> Attr.Set.singleton a
  | And (p, q) | Or (p, q) -> Attr.Set.union (attrs p) (attrs q)
  | Not p -> attrs p
  | Const _ -> Attr.Set.empty

let rec map_attrs f = function
  | Cmp_attrs (a, cmp, b) -> Cmp_attrs (f a, cmp, f b)
  | Cmp_const (a, cmp, k) -> Cmp_const (f a, cmp, k)
  | And (p, q) -> And (map_attrs f p, map_attrs f q)
  | Or (p, q) -> Or (map_attrs f p, map_attrs f q)
  | Not p -> Not (map_attrs f p)
  | Const v -> Const v

let rec pp ppf = function
  | Cmp_attrs (a, cmp, b) ->
      Format.fprintf ppf "%a %s %a" Attr.pp a (comparison_to_string cmp) Attr.pp
        b
  | Cmp_const (a, cmp, k) ->
      Format.fprintf ppf "%a %s %a" Attr.pp a (comparison_to_string cmp)
        Value.pp k
  | And (p, q) -> Format.fprintf ppf "(%a /\\ %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a \\/ %a)" pp p pp q
  | Not p -> Format.fprintf ppf "~%a" pp p
  | Const v -> Tvl.pp ppf v
