let cell r a = Value.to_string (Tuple.get r a)

let rows_table ?title attrs ppf rows =
  let header = List.map Attr.name attrs in
  let body = List.map (fun r -> List.map (cell r) attrs) rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      body
  in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths
         cells)
  in
  (match title with
  | Some t -> Format.fprintf ppf "%s@\n" t
  | None -> ());
  Format.fprintf ppf "%s@\n" (render_row header);
  Format.fprintf ppf "%s@\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@\n" (render_row row)) body;
  Format.fprintf ppf "(%d tuple%s)@\n" (List.length body)
    (if List.length body = 1 then "" else "s")

let table ?title attrs ppf x = rows_table ?title attrs ppf (Xrel.to_list x)

let table_rel ?title attrs ppf rel =
  rows_table ?title attrs ppf (Relation.to_list rel)

let table_s ?title names ppf x = table ?title (List.map Attr.make names) ppf x

let table_of_schema ?title schema ppf x =
  let title = match title with Some t -> t | None -> Schema.name schema in
  table ~title (Schema.attrs schema) ppf x

let to_string pp v =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 78;
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
