(* Per-operator tuple flow, one labeled counter pair per operator.
   Registration is memoized so the hot path is a Hashtbl hit only when
   metrics are enabled; cardinals (O(n)) are likewise only computed
   when someone is watching. *)
let op_counter =
  let tbl = Hashtbl.create 32 in
  fun op direction ->
    match Hashtbl.find_opt tbl (op, direction) with
    | Some c -> c
    | None ->
        let c =
          Obs.Metrics.counter
            ~labels:[ ("op", op); ("direction", direction) ]
            ~help:"Tuples flowing into and out of algebra operators"
            "nullrel_operator_tuples_total"
        in
        Hashtbl.add tbl (op, direction) c;
        c

let observed op ~ins result =
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.add (op_counter op "in") (ins ());
    Obs.Metrics.add (op_counter op "out") (Xrel.cardinal result)
  end;
  result

let observed1 op x result =
  observed op ~ins:(fun () -> Xrel.cardinal x) result

let observed2 op x1 x2 result =
  observed op ~ins:(fun () -> Xrel.cardinal x1 + Xrel.cardinal x2) result

let select p x = observed1 "select" x (Xrel.filter (Predicate.holds p) x)

let select_ab a cmp b x = select (Predicate.Cmp_attrs (a, cmp, b)) x

let select_ak a cmp k x =
  if Value.is_null k then
    Exec_error.bad_input "Algebra.select_ak: the constant must not be ni";
  select (Predicate.Cmp_const (a, cmp, k)) x

(* Pairwise tuple joins of the non-null tuples of the two operands. Null
   tuples never occur in minimal representations, so no explicit filter is
   needed. On disjoint scopes the result of minimal operands is minimal
   (restricting a strict subsumption to either scope would contradict the
   operand's minimality); otherwise we re-minimize. *)
let pairwise_joins keep x1 x2 =
  Relation.fold
    (fun r1 acc ->
      Relation.fold
        (fun r2 acc ->
          Exec.tick ();
          if keep r1 r2 then
            match Tuple.join r1 r2 with
            | Some joined -> Relation.add joined acc
            | None -> acc
          else acc)
        (Xrel.rep x2) acc)
    (Xrel.rep x1) Relation.empty

let product x1 x2 =
  let raw = pairwise_joins (fun _ _ -> true) x1 x2 in
  observed2 "product" x1 x2
    (if Attr.Set.disjoint (Xrel.scope x1) (Xrel.scope x2) then
       Xrel.unsafe_of_minimal raw
     else Xrel.of_relation raw)

let theta_join a cmp b x1 x2 = select_ab a cmp b (product x1 x2)

let equijoin x x1 x2 =
  let both_x_total r1 r2 = Tuple.is_total_on x r1 && Tuple.is_total_on x r2 in
  observed2 "equijoin" x1 x2
    (Xrel.of_relation (pairwise_joins both_x_total x1 x2))

let union_join x x1 x2 =
  observed2 "union-join" x1 x2
    (Xrel.union (equijoin x x1 x2) (Xrel.union x1 x2))

(* Participation matches the equijoin exactly: both sides X-total,
   agreeing on X, and joinable overall — a pair that conflicts on a
   shared non-X column yields no join tuple and therefore does not
   participate. *)
let participates x other r =
  Tuple.is_total_on x r
  && Relation.fold
       (fun partner found ->
         Exec.tick ();
         found
         || (Tuple.is_total_on x partner
            && Tuple.equal (Tuple.restrict r x) (Tuple.restrict partner x)
            && Tuple.joinable r partner))
       (Xrel.rep other) false

let semijoin x x1 x2 =
  observed2 "semijoin" x1 x2 (Xrel.filter (participates x x2) x1)

let antijoin x x1 x2 =
  observed2 "antijoin" x1 x2
    (Xrel.filter (fun r -> not (participates x x2 r)) x1)

let project x xr =
  observed1 "project" xr
    (Xrel.of_list (List.map (fun r -> Tuple.restrict r x) (Xrel.to_list xr)))

let rename mapping xr =
  observed1 "rename" xr
    (Xrel.of_list (List.map (Tuple.rename mapping) (Xrel.to_list xr)))

let y_total_part y xr = Xrel.filter (Tuple.is_total_on y) xr

let image y z t xr =
  let matches r = Tuple.equal (Tuple.restrict r y) t in
  project z (Xrel.filter matches xr)

let divide y xr s =
  let r_y = y_total_part y xr in
  let candidates = project y r_y in
  (* Every candidate probes the same dividend, so prepare one prober
     (Kernel picks a scan or a subsumption index by |r_y|). *)
  let in_r_y = Kernel.prober (Xrel.rep r_y) in
  let qualifies cand =
    List.for_all
      (fun z ->
        Exec.tick ();
        match Tuple.join cand z with
        | Some joined -> in_r_y joined
        | None -> false)
      (Xrel.to_list s)
  in
  observed2 "divide" xr s (Xrel.filter qualifies candidates)

let divide_algebraic y xr s =
  let r_y = y_total_part y xr in
  let r_y_on_y = project y r_y in
  let missing = project y (Xrel.diff (product r_y_on_y s) r_y) in
  Xrel.diff r_y_on_y missing

let divide_via_images y xr s =
  let r_y = y_total_part y xr in
  let z = Attr.Set.diff (Xrel.scope r_y) y in
  let candidates = project y r_y in
  let qualifies cand = Xrel.contains (image y z cand r_y) s in
  Xrel.filter qualifies candidates
