type t = string

let make s =
  if String.length s = 0 then
    Exec_error.bad_input "Attr.make: empty attribute name";
  s

let name a = a
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf a = Format.pp_print_string ppf a

module Set = Set.Make (String)
module Map = Map.Make (String)

let set_of_list names = Set.of_list (List.map make names)

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp)
    (Set.elements s)
