(** The typed error taxonomy for query execution.

    Every way a statement can fail — resource limits, cooperative
    cancellation, storage trouble, or plain bad input — is one
    constructor of {!t}, raised as {!Error} and caught at the engine
    boundary (shell, CLI, DML), where it flows onward as a [result].
    Nothing a user can type should surface any other exception. *)

type resource =
  | Tuples  (** intermediate-cardinality budget: tuples touched *)
  | Memory_words  (** heap high-water estimate, in words *)

type t =
  | Timeout of { limit_s : float }
      (** The deadline passed; [limit_s] is the configured allowance. *)
  | Budget_exceeded of { resource : resource; budget : int; used : int }
      (** A resource budget ran out mid-execution. *)
  | Cancelled  (** The cooperative cancellation flag was raised. *)
  | Storage_fault of string
      (** An I/O fault that persisted through the retry policy. *)
  | Bad_input of string
      (** The request itself is invalid (unknown attribute, null
          constant, malformed schema, ...). *)

exception Error of t

val raise_ : t -> 'a
val bad_input : string -> 'a
val bad_inputf : ('a, unit, string, 'b) format4 -> 'a
val storage_fault : string -> 'a

val class_name : t -> string
(** Stable one-word class: ["timeout"], ["budget"], ["cancelled"],
    ["storage"], ["bad-input"]. *)

val exit_code : t -> int
(** Distinct nonzero process exit code per class: bad input 2, storage
    fault 3, timeout 4, budget 5, cancelled 6. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val protect : (unit -> 'a) -> ('a, t) result
(** Runs the thunk, catching {!Error} (only) into [Error _]. *)
