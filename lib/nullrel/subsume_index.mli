(** Hash-accelerated subsumption probes — the engine-core index behind
    {!Kernel}'s indexed and parallel strategies ({!Storage.Hash_index}
    re-exports it for storage-layer callers).

    The paper notes after (4.6)-(4.8) that the naive implementations of
    difference and reduction to minimal form are quadratic, and that
    "more sophisticated techniques, such as combinatorial hashing, can
    provide more efficient solutions". This module is that technique:
    tuples are bucketed by their restriction to the probe's attribute
    set, so the inner universal quantification of (4.8) becomes an
    expected-constant-time lookup.

    The key observation: [t >= r] iff [t] agrees with [r] on [attrs r] —
    in particular [t] is total on [attrs r] and its restriction there
    equals [r]. So all subsumption probes for tuples with non-null
    attribute set [pi] are answered by one hash table keyed on
    [pi]-restrictions, shared across the (usually few) null patterns of
    the data. Tables are built lazily, one per distinct probe
    signature — which mutates the index, so concurrent probing requires
    {!prepare} first.

    The index is {e persistent} under DML: {!advance} layers a
    statement's delta over the existing probe tables without rebuilding
    them, returning a new value that shares the old base — an older
    snapshot holding the previous value keeps probing its own view.
    The overlay is compacted into a fresh base once it outgrows about
    the square root of the relation size, so a statement's probe cost
    stays sublinear where a from-scratch rebuild is linear. *)

type t
(** An index over a relation: an immutable probe-table base plus a
    functional overlay of tuples added/removed since the base was
    built. *)

val build : Relation.t -> t
(** Indexes a relation from scratch. O(n) now; probe tables are built
    on first use. Counted by [nullrel_subsume_index_builds_total]. *)

val advance : t -> added:Tuple.t list -> removed:Tuple.t list -> t
(** [advance idx ~added ~removed] is the index over the relation with
    [removed] taken out and then [added] put in. Tuples already absent
    (for [removed]) or already present (for [added]) are ignored, so
    applying a recorded statement delta is idempotent. The result
    shares [idx]'s probe tables; [idx] itself is unchanged and remains
    valid for the old contents. Cost: O(delta · log n) plus an
    amortized O(sqrt n) share of the next compaction. Counted by
    [nullrel_subsume_index_advances_total] (compactions by
    [nullrel_subsume_index_compactions_total]). *)

val prepare : t -> Tuple.t list -> unit
(** [prepare idx probes] force-builds the table of every probe
    signature occurring in [probes], after which probing any of those
    tuples (from any domain) is a pure read. Required before handing
    the index to {!Par.Pool} workers: the lazy build in {!count_at}
    mutates the table registry and is not domain-safe. *)

val count_at : t -> Tuple.t -> int
(** [count_at idx r]: how many indexed tuples are more informative than
    or equal to [r] (i.e. agree with [r] on [attrs r]). *)

val subsuming_exists : t -> Tuple.t -> bool
(** [count_at idx r > 0] — is [r] an x-element of the indexed relation? *)

val strictly_subsuming_exists : t -> Tuple.t -> bool
(** Is some indexed tuple {e strictly} more informative than [r]? When
    [r] itself is indexed this is [count_at idx r >= 2] (distinct set
    elements with equal restrictions must differ elsewhere); otherwise it
    checks the candidates directly. *)

val mem : t -> Tuple.t -> bool
(** Exact membership of the indexed relation (not subsumption). *)

val cardinal : t -> int
(** Number of indexed tuples. *)

val subsumed_within : t -> Tuple.t -> Tuple.t list
(** [subsumed_within idx u]: the indexed tuples strictly less
    informative than [u] — exactly the tuples an insert of [u] must
    evict to keep the relation minimal. Because tuples are canonical,
    the only candidate per distinct null signature [pi] is [u]'s own
    [pi]-restriction, so the cost is O(signatures · log n), independent
    of the relation's cardinality. *)

val to_list : t -> Tuple.t list
(** The indexed tuples (base plus overlay), in no particular order. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Indexed difference per (4.8): keeps the minuend tuples with no
    subsuming tuple in the subtrahend. Expected O(|R1| + |R2|), vs the
    naive O(|R1| x |R2|) of [Xrel.diff]. *)

val minimize : Relation.t -> Relation.t
(** Indexed reduction to minimal form (Definition 4.6). Expected
    O(n x s) with [s] the number of distinct null patterns. Agrees with
    [Relation.minimize]. *)
