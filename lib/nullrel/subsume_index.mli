(** Hash-accelerated subsumption probes — the engine-core index behind
    {!Kernel}'s indexed and parallel strategies ({!Storage.Hash_index}
    re-exports it for storage-layer callers).

    The paper notes after (4.6)-(4.8) that the naive implementations of
    difference and reduction to minimal form are quadratic, and that
    "more sophisticated techniques, such as combinatorial hashing, can
    provide more efficient solutions". This module is that technique:
    tuples are bucketed by their restriction to the probe's attribute
    set, so the inner universal quantification of (4.8) becomes an
    expected-constant-time lookup.

    The key observation: [t >= r] iff [t] agrees with [r] on [attrs r] —
    in particular [t] is total on [attrs r] and its restriction there
    equals [r]. So all subsumption probes for tuples with non-null
    attribute set [pi] are answered by one hash table keyed on
    [pi]-restrictions, shared across the (usually few) null patterns of
    the data. Tables are built lazily, one per distinct probe
    signature — which mutates the index, so concurrent probing requires
    {!prepare} first. *)

type t
(** An index over a fixed relation. *)

val build : Relation.t -> t
(** Indexes a relation. O(n) now; probe tables are built on first use. *)

val prepare : t -> Tuple.t list -> unit
(** [prepare idx probes] force-builds the table of every probe
    signature occurring in [probes], after which probing any of those
    tuples (from any domain) is a pure read. Required before handing
    the index to {!Par.Pool} workers: the lazy build in {!count_at}
    mutates the table registry and is not domain-safe. *)

val count_at : t -> Tuple.t -> int
(** [count_at idx r]: how many indexed tuples are more informative than
    or equal to [r] (i.e. agree with [r] on [attrs r]). *)

val subsuming_exists : t -> Tuple.t -> bool
(** [count_at idx r > 0] — is [r] an x-element of the indexed relation? *)

val strictly_subsuming_exists : t -> Tuple.t -> bool
(** Is some indexed tuple {e strictly} more informative than [r]? When
    [r] itself is indexed this is [count_at idx r >= 2] (distinct set
    elements with equal restrictions must differ elsewhere); otherwise it
    checks the candidates directly. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Indexed difference per (4.8): keeps the minuend tuples with no
    subsuming tuple in the subtrahend. Expected O(|R1| + |R2|), vs the
    naive O(|R1| x |R2|) of [Xrel.diff]. *)

val minimize : Relation.t -> Relation.t
(** Indexed reduction to minimal form (Definition 4.6). Expected
    O(n x s) with [s] the number of distinct null patterns. Agrees with
    [Relation.minimize]. *)

val x_mem : Relation.t -> Tuple.t -> bool
(** One-shot indexed x-membership (builds a throwaway index; prefer
    {!build} + {!subsuming_exists} for repeated probes). *)
