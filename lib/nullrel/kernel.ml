type strategy = Auto | Sequential | Indexed | Parallel

let strategy_name = function
  | Auto -> "auto"
  | Sequential -> "sequential"
  | Indexed -> "indexed"
  | Parallel -> "parallel"

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Some Auto
  | "sequential" | "seq" -> Some Sequential
  | "indexed" | "index" -> Some Indexed
  | "parallel" | "par" -> Some Parallel
  | _ -> None

(* Below [indexed_cutover] the index build costs more than the scan it
   avoids — and keeping small inputs on the plain scans preserves the
   exact tick counts that governed callers and the golden bench output
   were written against. *)
let indexed_cutover = 64
let parallel_cutover = 512

(* Same family as the counter in [Relation]; registration is
   idempotent so this aliases it. *)
let m_subsumption =
  Obs.Metrics.counter
    ~help:"Tuple subsumption comparisons in x-membership and minimization"
    "nullrel_subsumption_comparisons_total"

let dispatch_counter =
  let tbl = Hashtbl.create 16 in
  fun kernel strat ->
    let key = (kernel, strat) in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c =
          Obs.Metrics.counter
            ~labels:[ ("kernel", kernel); ("strategy", strategy_name strat) ]
            ~help:"Kernel dispatches by chosen strategy"
            "nullrel_kernel_dispatch_total"
        in
        Hashtbl.add tbl key c;
        c

let count_dispatch kernel strat =
  if !Obs.Metrics.enabled then Obs.Metrics.inc (dispatch_counter kernel strat)

(* The [Auto] rule as a function of a size — exposed so a planner can
   pre-commit a strategy from an {e estimated} cardinality instead of
   waiting for the materialized input. *)
let strategy_for n =
  if n < indexed_cutover then Sequential
  else if n >= parallel_cutover && Par.Pool.parallelizable () then Parallel
  else Indexed

(* Chunking: enough chunks for load balance across the pool (stragglers
   hand work back), but at least [chunk_grain] tuples each so the
   per-chunk dispatch cost stays invisible. *)
let chunk_grain = 256

let chunk_count n =
  let d = Par.Pool.domains () in
  min n (max (4 * d) ((n + chunk_grain - 1) / chunk_grain))

let chunk_bounds ~n ~chunks c = (c * n / chunks, (c + 1) * n / chunks)

(* ------------------------------------------------------------------ *)
(* minimize *)

let indexed_keep idx t =
  (not (Tuple.is_null_tuple t))
  && not (Subsume_index.strictly_subsuming_exists idx t)

let indexed_minimize r =
  let idx = Subsume_index.build r in
  Relation.filter
    (fun t ->
      Exec.tick ();
      Obs.Metrics.inc m_subsumption;
      indexed_keep idx t)
    r

let parallel_minimize r =
  let arr = Array.of_list (Relation.to_list r) in
  let n = Array.length arr in
  if n = 0 then r
  else begin
    let idx = Subsume_index.build r in
    (* Freeze the lazy probe tables: probing below must be a pure read
       on every domain. *)
    Subsume_index.prepare idx (Array.to_list arr);
    let keep = Array.make n false in
    let ticks = Atomic.make 0 in
    let chunks = chunk_count n in
    Par.Pool.run ~chunks
      ~progress:(fun () -> Exec.drain_ticks ticks)
      (fun c ->
        let lo, hi = chunk_bounds ~n ~chunks c in
        for j = lo to hi - 1 do
          keep.(j) <- indexed_keep idx arr.(j)
        done;
        Obs.Metrics.add m_subsumption (hi - lo);
        ignore (Atomic.fetch_and_add ticks (hi - lo)));
    Exec.drain_ticks ticks;
    let out = ref Relation.empty in
    Array.iteri (fun j t -> if keep.(j) then out := Relation.add t !out) arr;
    !out
  end

let minimize ?(strategy = Auto) r =
  let strat =
    match strategy with
    | Auto ->
        let n = Relation.cardinal r in
        if n < indexed_cutover then Sequential
        else if n >= parallel_cutover && Par.Pool.parallelizable () then
          Parallel
        else Indexed
    | s -> s
  in
  count_dispatch "minimize" strat;
  match strat with
  | Sequential | Auto -> Relation.minimize r
  | Indexed -> indexed_minimize r
  | Parallel -> parallel_minimize r

(* ------------------------------------------------------------------ *)
(* subsumes *)

let subsumed_probe idx t =
  Tuple.is_null_tuple t || Subsume_index.subsuming_exists idx t

let indexed_subsumes r1 r2 =
  let idx = Subsume_index.build r1 in
  Relation.fold
    (fun t acc ->
      acc
      &&
      (Exec.tick ();
       Obs.Metrics.inc m_subsumption;
       subsumed_probe idx t))
    r2 true

let parallel_subsumes r1 r2 =
  let arr = Array.of_list (Relation.to_list r2) in
  let n = Array.length arr in
  if n = 0 then true
  else begin
    let idx = Subsume_index.build r1 in
    Subsume_index.prepare idx (Array.to_list arr);
    let failed = Atomic.make false in
    let ticks = Atomic.make 0 in
    let chunks = chunk_count n in
    Par.Pool.run ~chunks
      ~progress:(fun () -> Exec.drain_ticks ticks)
      (fun c ->
        if not (Atomic.get failed) then begin
          let lo, hi = chunk_bounds ~n ~chunks c in
          let ok = ref true and j = ref lo in
          while !ok && !j < hi do
            if not (subsumed_probe idx arr.(!j)) then ok := false;
            incr j
          done;
          Obs.Metrics.add m_subsumption (!j - lo);
          ignore (Atomic.fetch_and_add ticks (!j - lo));
          if not !ok then Atomic.set failed true
        end);
    Exec.drain_ticks ticks;
    not (Atomic.get failed)
  end

let subsumes ?(strategy = Auto) r1 r2 =
  let strat =
    match strategy with
    | Auto ->
        let n1 = Relation.cardinal r1 and n2 = Relation.cardinal r2 in
        if max n1 n2 < indexed_cutover then Sequential
        else if n2 >= parallel_cutover && Par.Pool.parallelizable () then
          Parallel
        else Indexed
    | s -> s
  in
  count_dispatch "subsumes" strat;
  match strat with
  | Sequential | Auto -> Relation.subsumes r1 r2
  | Indexed -> indexed_subsumes r1 r2
  | Parallel -> parallel_subsumes r1 r2

(* ------------------------------------------------------------------ *)
(* x_mem *)

let parallel_x_mem t r =
  let arr = Array.of_list (Relation.to_list r) in
  let n = Array.length arr in
  if n = 0 then false
  else begin
    let found = Atomic.make false in
    let ticks = Atomic.make 0 in
    let chunks = chunk_count n in
    Par.Pool.run ~chunks
      ~progress:(fun () -> Exec.drain_ticks ticks)
      (fun c ->
        if not (Atomic.get found) then begin
          let lo, hi = chunk_bounds ~n ~chunks c in
          let hit = ref false and j = ref lo in
          while (not !hit) && !j < hi do
            if Tuple.more_informative arr.(!j) t then hit := true;
            incr j
          done;
          Obs.Metrics.add m_subsumption (!j - lo);
          ignore (Atomic.fetch_and_add ticks (!j - lo));
          if !hit then Atomic.set found true
        end);
    Exec.drain_ticks ticks;
    Atomic.get found
  end

let x_mem ?(strategy = Auto) t r =
  (* [Auto] stays sequential: one probe never amortizes an index
     build, and the scan is too short to fan out. The dispatch counter
     is skipped on this innermost path. *)
  match strategy with
  | Auto | Sequential -> Relation.x_mem t r
  | Indexed ->
      Exec.tick ();
      Obs.Metrics.inc m_subsumption;
      Subsume_index.subsuming_exists (Subsume_index.build r) t
  | Parallel -> parallel_x_mem t r

(* ------------------------------------------------------------------ *)
(* fold_chunks *)

(* A governed, chunked array fold: [chunk ~lo ~hi] summarizes one slice
   (it must be a pure read of [arr]), [combine] merges summaries
   left-to-right. One tick per element either way, so the governor sees
   the same cost whichever strategy runs. *)
let fold_chunks ?(strategy = Auto) arr ~chunk ~combine ~init =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let strat =
      match strategy with
      | Auto ->
          if n >= parallel_cutover && Par.Pool.parallelizable () then Parallel
          else Sequential
      | Indexed -> Sequential (* no index to speak of: a scan is a scan *)
      | s -> s
    in
    count_dispatch "fold" strat;
    match strat with
    | Sequential | Indexed | Auto ->
        let acc = ref init in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk_grain) in
          acc := combine !acc (chunk ~lo:!lo ~hi);
          Exec.tick ~cost:(hi - !lo) ();
          lo := hi
        done;
        !acc
    | Parallel ->
        let chunks = chunk_count n in
        let parts = Array.make chunks None in
        let ticks = Atomic.make 0 in
        Par.Pool.run ~chunks
          ~progress:(fun () -> Exec.drain_ticks ticks)
          (fun c ->
            let lo, hi = chunk_bounds ~n ~chunks c in
            parts.(c) <- Some (chunk ~lo ~hi);
            ignore (Atomic.fetch_and_add ticks (hi - lo)));
        Exec.drain_ticks ticks;
        Array.fold_left
          (fun acc part ->
            match part with Some p -> combine acc p | None -> acc)
          init parts
  end

(* ------------------------------------------------------------------ *)
(* prober *)

let prober ?(strategy = Auto) r =
  let strat =
    match strategy with
    | Auto ->
        if Relation.cardinal r < indexed_cutover then Sequential else Indexed
    | Parallel ->
        (* One probe at a time: indexed is the parallel-friendly shape
           (a prepared prober is what the parallel kernels use). *)
        Indexed
    | s -> s
  in
  count_dispatch "prober" strat;
  match strat with
  | Sequential | Auto | Parallel -> fun t -> Relation.x_mem t r
  | Indexed ->
      let idx = Subsume_index.build r in
      fun t ->
        Exec.tick ();
        Obs.Metrics.inc m_subsumption;
        Subsume_index.subsuming_exists idx t
