(* Probe tables are keyed by the probe's non-null attribute set [pi]
   (as a sorted name list) and map a [pi]-restriction (as a canonical
   binding list) to:
   - [count]: how many indexed tuples agree with it on [pi];
   - [exact]: whether one of them is that restriction itself
     (i.e. its non-null attribute set is exactly [pi]). *)

type bucket = { mutable count : int; mutable exact : bool }

type t = {
  tuples : Tuple.t list;
  tables : (string list, ((Attr.t * Value.t) list, bucket) Hashtbl.t) Hashtbl.t;
}

let build rel = { tuples = Relation.to_list rel; tables = Hashtbl.create 8 }
let sig_key pi = List.map Attr.name (Attr.Set.elements pi)

let table idx pi =
  let key = sig_key pi in
  match Hashtbl.find_opt idx.tables key with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create (List.length idx.tuples) in
      List.iter
        (fun t ->
          if Tuple.is_total_on pi t then begin
            let k = Tuple.to_list (Tuple.restrict t pi) in
            let bucket =
              match Hashtbl.find_opt tbl k with
              | Some b -> b
              | None ->
                  let b = { count = 0; exact = false } in
                  Hashtbl.add tbl k b;
                  b
            in
            bucket.count <- bucket.count + 1;
            if Attr.Set.equal (Tuple.attrs t) pi then bucket.exact <- true
          end)
        idx.tuples;
      Hashtbl.add idx.tables key tbl;
      tbl

let prepare idx probes =
  List.iter (fun t -> ignore (table idx (Tuple.attrs t))) probes

let bucket_at idx r =
  let pi = Tuple.attrs r in
  Hashtbl.find_opt (table idx pi) (Tuple.to_list r)

let count_at idx r =
  match bucket_at idx r with Some b -> b.count | None -> 0

let subsuming_exists idx r = count_at idx r > 0

let strictly_subsuming_exists idx r =
  match bucket_at idx r with
  | None -> false
  | Some b -> b.count - (if b.exact then 1 else 0) > 0

let diff r1 r2 =
  let idx = build r2 in
  Relation.filter (fun r -> not (subsuming_exists idx r)) r1

let minimize rel =
  let idx = build rel in
  Relation.filter
    (fun r ->
      (not (Tuple.is_null_tuple r)) && not (strictly_subsuming_exists idx r))
    rel

let x_mem rel r = subsuming_exists (build rel) r
