(* Probe tables are keyed by the probe's non-null attribute set [pi]
   (as a sorted name list) and map a [pi]-restriction (as a canonical
   binding list) to:
   - [count]: how many indexed tuples agree with it on [pi];
   - [exact]: whether one of them is that restriction itself
     (i.e. its non-null attribute set is exactly [pi]).

   The index is persistent under DML: an immutable [base] of probe
   tables plus a small functional overlay ([added]/[removed]) that
   {!advance} extends without touching the base, so snapshots pinned
   by older catalog entries keep probing their own view. The overlay
   is folded into a fresh base once it outgrows ~sqrt(n); a probe pays
   O(overlay) on top of the hash lookup, which keeps the per-statement
   cost sublinear in the relation size. *)

module Sigmap = Map.Make (Attr.Set)

type bucket = { mutable count : int; mutable exact : bool }

type base = {
  tuples : Tuple.t list;
  tables : (string list, ((Attr.t * Value.t) list, bucket) Hashtbl.t) Hashtbl.t;
  (* Forced only by DML-style callers ({!advance}, {!mem},
     {!subsumed_within}); pure probe workloads never pay for them. *)
  set : Tuple.Set.t Lazy.t;
  size : int Lazy.t;
}

type t = {
  base : base;
  added : Tuple.t list; (* live, not in base *)
  removed : Tuple.Set.t; (* in base, not live *)
  overlay : int; (* |added| + |removed| *)
  live : Tuple.Set.t Lazy.t; (* base.set minus removed plus added *)
  sigs : int Sigmap.t Lazy.t; (* live tuples per non-null signature *)
  size : int Lazy.t; (* |live| *)
}

let m_builds =
  Obs.Metrics.counter
    ~help:"Subsumption indexes built from scratch (bulk load / oracle path)"
    "nullrel_subsume_index_builds_total"

let m_advances =
  Obs.Metrics.counter
    ~help:"Subsumption indexes advanced by a statement delta"
    "nullrel_subsume_index_advances_total"

let m_compactions =
  Obs.Metrics.counter
    ~help:"Subsumption-index overlay compactions (overlay folded into base)"
    "nullrel_subsume_index_compactions_total"

let sigs_of tuples =
  List.fold_left
    (fun m t ->
      Sigmap.update (Tuple.attrs t)
        (function None -> Some 1 | Some c -> Some (c + 1))
        m)
    Sigmap.empty tuples

let of_base base =
  {
    base;
    added = [];
    removed = Tuple.Set.empty;
    overlay = 0;
    live = base.set;
    sigs = lazy (sigs_of base.tuples);
    size = base.size;
  }

let build rel =
  if !Obs.Metrics.enabled then Obs.Metrics.inc m_builds;
  let tuples = Relation.to_list rel in
  of_base
    {
      tuples;
      tables = Hashtbl.create 8;
      set = lazy (Tuple.Set.of_list tuples);
      size = lazy (List.length tuples);
    }

let sig_key pi = List.map Attr.name (Attr.Set.elements pi)

let table idx pi =
  let key = sig_key pi in
  match Hashtbl.find_opt idx.base.tables key with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create (List.length idx.base.tuples) in
      List.iter
        (fun t ->
          if Tuple.is_total_on pi t then begin
            let k = Tuple.to_list (Tuple.restrict t pi) in
            let bucket =
              match Hashtbl.find_opt tbl k with
              | Some b -> b
              | None ->
                  let b = { count = 0; exact = false } in
                  Hashtbl.add tbl k b;
                  b
            in
            bucket.count <- bucket.count + 1;
            if Attr.Set.equal (Tuple.attrs t) pi then bucket.exact <- true
          end)
        idx.base.tuples;
      Hashtbl.add idx.base.tables key tbl;
      tbl

let prepare idx probes =
  List.iter (fun t -> ignore (table idx (Tuple.attrs t))) probes;
  (* With a live overlay the strict probe consults [live]; freeze it
     here so probing stays a pure read on every domain. *)
  if idx.overlay > 0 then ignore (Lazy.force idx.live)

let bucket_at idx r =
  let pi = Tuple.attrs r in
  Hashtbl.find_opt (table idx pi) (Tuple.to_list r)

let base_count idx r =
  match bucket_at idx r with Some b -> b.count | None -> 0

(* How the overlay changes the number of indexed tuples subsuming [r]. *)
let overlay_count idx r =
  let plus =
    List.fold_left
      (fun acc t -> if Tuple.more_informative t r then acc + 1 else acc)
      0 idx.added
  in
  Tuple.Set.fold
    (fun t acc -> if Tuple.more_informative t r then acc - 1 else acc)
    idx.removed plus

let count_at idx r =
  if idx.overlay = 0 then base_count idx r
  else base_count idx r + overlay_count idx r

let subsuming_exists idx r = count_at idx r > 0

let strictly_subsuming_exists idx r =
  if idx.overlay = 0 then
    match bucket_at idx r with
    | None -> false
    | Some b -> b.count - (if b.exact then 1 else 0) > 0
  else
    let self = if Tuple.Set.mem r (Lazy.force idx.live) then 1 else 0 in
    count_at idx r - self > 0

let mem idx t = Tuple.Set.mem t (Lazy.force idx.live)
let cardinal idx = Lazy.force idx.size

let subsumed_within idx u =
  let live = Lazy.force idx.live in
  let au = Tuple.attrs u in
  Sigmap.fold
    (fun pi _count acc ->
      (* A live tuple with signature [pi] strictly below [u] can only
         be [u]'s own [pi]-restriction (canonical forms), so one set
         lookup per distinct signature decides eviction. *)
      if Attr.Set.subset pi au && not (Attr.Set.equal pi au) then begin
        let c = Tuple.restrict u pi in
        if Tuple.Set.mem c live then c :: acc else acc
      end
      else acc)
    (Lazy.force idx.sigs) []

(* Compaction threshold: the slack keeps tiny relations from
   compacting on every other statement. *)
let compaction_slack = 16

let compact ~live ~sigs ~size =
  if !Obs.Metrics.enabled then Obs.Metrics.inc m_compactions;
  of_base
    {
      tuples = Tuple.Set.elements live;
      tables = Hashtbl.create 8;
      set = Lazy.from_val live;
      size = Lazy.from_val size;
    }
  |> fun idx -> { idx with sigs = Lazy.from_val sigs }

let advance idx ~added ~removed =
  if !Obs.Metrics.enabled then Obs.Metrics.inc m_advances;
  let live = Lazy.force idx.live in
  let sigs = Lazy.force idx.sigs in
  let size = Lazy.force idx.size in
  let bump delta pi m =
    Sigmap.update pi
      (function
        | None -> if delta > 0 then Some delta else None
        | Some c -> if c + delta <= 0 then None else Some (c + delta))
      m
  in
  (* Removals first, then additions, each gated on the live set, keep
     the invariants: [added] disjoint from base, [removed] inside it. *)
  let a, rm, live, sigs, size =
    List.fold_left
      (fun (a, rm, live, sigs, size) t ->
        if not (Tuple.Set.mem t live) then (a, rm, live, sigs, size)
        else
          let live = Tuple.Set.remove t live
          and sigs = bump (-1) (Tuple.attrs t) sigs
          and size = size - 1 in
          if List.exists (Tuple.equal t) a then
            (List.filter (fun u -> not (Tuple.equal u t)) a, rm, live, sigs, size)
          else (a, Tuple.Set.add t rm, live, sigs, size))
      (idx.added, idx.removed, live, sigs, size)
      removed
  in
  let a, rm, live, sigs, size =
    List.fold_left
      (fun (a, rm, live, sigs, size) t ->
        if Tuple.Set.mem t live then (a, rm, live, sigs, size)
        else
          let live = Tuple.Set.add t live
          and sigs = bump 1 (Tuple.attrs t) sigs
          and size = size + 1 in
          if Tuple.Set.mem t rm then (a, Tuple.Set.remove t rm, live, sigs, size)
          else (t :: a, rm, live, sigs, size))
      (a, rm, live, sigs, size) added
  in
  let overlay = List.length a + Tuple.Set.cardinal rm in
  if overlay > compaction_slack + int_of_float (sqrt (float_of_int size)) then
    compact ~live ~sigs ~size
  else
    {
      idx with
      added = a;
      removed = rm;
      overlay;
      live = Lazy.from_val live;
      sigs = Lazy.from_val sigs;
      size = Lazy.from_val size;
    }

let to_list idx =
  if idx.overlay = 0 then idx.base.tuples
  else Tuple.Set.elements (Lazy.force idx.live)

let diff r1 r2 =
  let idx = build r2 in
  Relation.filter (fun r -> not (subsuming_exists idx r)) r1

let minimize rel =
  let idx = build rel in
  Relation.filter
    (fun r ->
      (not (Tuple.is_null_tuple r)) && not (strictly_subsuming_exists idx r))
    rel
