(** First-class null-semantics dialects.

    The engine grew four ways of reading the same three-valued
    qualification verdicts: the paper's [ni] lower bound [||Q||-]
    (Section 5), Codd's TRUE/MAYBE pair the paper argues against
    (Sections 1, 5), SQL's three-valued logic (Franconi & Tessaris,
    "On the Logic of SQL Nulls"), and certain answers by naive
    evaluation (Grahne & Moallemi, "Universal (and Existential)
    Nulls"). They differ not in the truth tables — all four share
    Table III — but in three policies this record makes explicit:

    - {b admission}: which verdicts place a combined tuple in which
      output band ([Sure], [Maybe], [Out]);
    - {b set discipline}: whether the output is an x-relation
      (subsumption-minimized, the paper's Section 4 quotient) or a
      plain Codd-style set of rows where the null rides along as a
      syntactic value;
    - {b reporting}: whether a second MAYBE/UNKNOWN band accompanies
      the sure answers, and what it is called.

    A dialect value is threaded through evaluation the same way
    {!Exec} governors are: an ambient per-domain slot with an
    explicit override ({!with_semantics}), so the shell, the CLI and
    the session layer can select a dialect per statement without
    changing any evaluator signature. *)

type dialect =
  | Ni_lower  (** The paper's [ni] interpretation: keep TRUE rows only,
                  minimize the result (the lower bound [||Q||-]). *)
  | Codd_maybe
      (** Codd's baseline: a TRUE band plus a MAYBE band holding every
          row whose qualification is [ni]; plain sets, no
          minimization. *)
  | Sql_3vl
      (** SQL's 3VL: the TRUE band of [Codd_maybe] plus an UNKNOWN
          band — the MAYBE rows minus the answers already certain, so
          UNKNOWN is always a subset of Codd's MAYBE. *)
  | Certain
      (** Certain answers by naive evaluation: TRUE rows whose output
          tuple is total. Sound because [ni] nulls are pairwise
          uninformative labels; see DESIGN section 12 for why this
          coincides with naive evaluation on the positive fragment. *)

type band = Sure | Maybe | Out
(** Where an admission rule places one combined tuple. *)

type t = {
  dialect : dialect;
  name : string;  (** The round-trip name: ni, codd, sql, certain. *)
  description : string;
  not_ : Tvl.t -> Tvl.t;
  and_ : Tvl.t -> Tvl.t -> Tvl.t;
  or_ : Tvl.t -> Tvl.t -> Tvl.t;
      (** The connective tables. All four instances use Table III —
          the record carries them so a non-Kleene dialect could be
          added without touching any evaluator. *)
  conj_empty : Tvl.t;
      (** The empty-conjunction unit: what an absent qualification
          (and an empty divisor) evaluates to. Pinned to [Tvl.True]
          in every instance — the Section 5 vacuous-truth reading
          that {!Tvl.conj} and [Codd.Maybe_algebra.divide_with]
          both implement. *)
  std_tables : bool;
      (** The tables above are exactly {!Tvl}'s; evaluators may then
          use {!Predicate.eval} directly (the [Ni_lower] fast path
          benchmarked by E25). *)
  admit : Tvl.t -> band;  (** The tuple-admission rule. *)
  total_only : bool;
      (** Keep only output tuples total on the target attributes
          ([Certain]). *)
  minimize : bool;
      (** X-relation discipline: minimize the sure band by
          subsumption ([Ni_lower]); otherwise plain sets. *)
  reports_maybe : bool;  (** A second band accompanies the answers. *)
  exclude_sure : bool;
      (** Subtract the sure band from the reported second band after
          projection ([Sql_3vl]'s UNKNOWN; Codd's MAYBE keeps the
          overlap). *)
  maybe_label : string;  (** "MAYBE" (Codd) or "UNKNOWN" (SQL). *)
}

val of_dialect : dialect -> t
val dialects : dialect list
val all : t list

val to_string : dialect -> string
(** ["ni"], ["codd"], ["sql"], ["certain"] — inverse of
    {!of_string}. *)

val of_string : string -> dialect option
(** Accepts the canonical names plus the aliases [ni-lower],
    [maybe], [3vl] and [certain-answers]. *)

val names : string list
(** The canonical names, in {!dialects} order. *)

val eval : t -> Predicate.t -> Tuple.t -> Tvl.t
(** Three-valued evaluation through the dialect's tables. When
    [std_tables] holds this {e is} {!Predicate.eval} — no per-node
    indirection on the common path. *)

val admit_tuple : t -> Attr.Set.t -> Tuple.t -> bool
(** The output-tuple admission rule over the target scope: total
    tuples only under [total_only], everything otherwise. *)

(** {1 The ambient dialect}

    Mirrors {!Exec}'s governor slot: a per-domain default, explicit
    scoping with {!with_semantics}. Worker domains of the parallel
    pool start at [Ni_lower] — the kernels only ever run the paper's
    algebra; dialect dispatch happens before plans reach them. *)

val current : unit -> t
(** The ambient dialect of the calling domain ([Ni_lower] unless
    set). *)

val set_default : t -> unit
(** Replace the calling domain's ambient dialect (the CLI's
    [--semantics] flag). *)

val with_semantics : t -> (unit -> 'a) -> 'a
(** Run with the ambient dialect swapped, restoring on exit —
    exception-safe, like [Exec.with_governor]. *)
