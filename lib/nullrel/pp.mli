(** Paper-style table rendering.

    Renders relations as aligned ASCII tables with ["-"] for nulls,
    mirroring the tables of the paper (Tables I, II, display (6.6)). *)

val table :
  ?title:string -> Attr.t list -> Format.formatter -> Xrel.t -> unit
(** [table ~title attrs ppf x] prints [x] with one column per attribute
    of [attrs], in order, tuples sorted by their values for stable
    output. *)

val table_rel :
  ?title:string -> Attr.t list -> Format.formatter -> Relation.t -> unit
(** {!table} over a plain representation — no minimization, so the
    Codd-style bands of the non-[ni] semantics dialects print exactly
    the rows they contain. *)

val table_s :
  ?title:string -> string list -> Format.formatter -> Xrel.t -> unit
(** {!table} with attribute names as strings. *)

val table_of_schema :
  ?title:string -> Schema.t -> Format.formatter -> Xrel.t -> unit
(** {!table} using the schema's declared attribute order and, by default,
    the schema name as title. *)

val to_string : (Format.formatter -> 'a -> unit) -> 'a -> string
(** Renders any printer to a string (78-column margin). *)
