(* Invariant: the wrapped relation is always a minimal representation. *)

type t = Relation.t

let h_minimize_in =
  Obs.Metrics.histogram
    ~help:"Relation size entering minimization (tuples)"
    "nullrel_minimize_input_tuples"

let h_minimize_out =
  Obs.Metrics.histogram
    ~help:"Minimal representation size after minimization (tuples)"
    "nullrel_minimize_output_tuples"

let minimized r =
  if Obs.Metrics.is_enabled () then begin
    (* Cardinal is O(n); only pay for it when someone is watching. *)
    Obs.Metrics.observe h_minimize_in (Relation.cardinal r);
    let m = Kernel.minimize r in
    Obs.Metrics.observe h_minimize_out (Relation.cardinal m);
    m
  end
  else Kernel.minimize r

let of_relation r = minimized r
let of_list ts = of_relation (Relation.of_list ts)
let of_tuples ts = of_relation (Relation.of_tuples ts)
let unsafe_of_minimal r = r
let rep x = x
let to_list = Relation.to_list
let cardinal = Relation.cardinal
let is_empty = Relation.is_empty
let scope = Relation.scope
let equal = Relation.equal
let compare = Relation.compare
let x_mem t x = Kernel.x_mem t x
let contains x1 x2 = Kernel.subsumes x1 x2
let properly_contains x1 x2 = contains x1 x2 && not (equal x1 x2)
let union x1 x2 = minimized (Relation.union x1 x2)

let inter x1 x2 =
  let meets =
    Relation.fold
      (fun r1 acc ->
        Relation.fold
          (fun r2 acc ->
            Exec.tick ();
            Relation.add (Tuple.meet r1 r2) acc)
          x2 acc)
      x1 Relation.empty
  in
  minimized meets

let diff x1 x2 = Relation.filter (fun r -> not (Relation.x_mem r x2)) x1
let bottom = Relation.empty

type universe = (Attr.t * Domain.t) list

let top universe =
  let budget = 1 lsl 20 in
  let size =
    List.fold_left
      (fun acc (_, dom) ->
        match Domain.cardinal dom with
        | Some n when acc * max n 1 <= budget -> acc * max n 1
        | Some _ -> Exec_error.bad_input "Xrel.top: universe too large"
        | None -> raise (Domain.Infinite "Xrel.top"))
      1 universe
  in
  ignore size;
  let rec build = function
    | [] -> [ Tuple.empty ]
    | (a, dom) :: rest ->
        let tails = build rest in
        List.concat_map
          (fun v ->
            List.map
              (fun t ->
                Exec.tick ();
                Tuple.set t a v)
              tails)
          (Domain.members dom)
  in
  of_list (build universe)

let pseudo_complement universe x = diff (top universe) x

let filter p x =
  Relation.filter
    (fun r ->
      Exec.tick ();
      p r)
    x
let set_inter_total x1 x2 = Relation.filter (fun r -> Relation.mem r x2) x1

let pp ppf x = Relation.pp ppf x
