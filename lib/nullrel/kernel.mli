(** The one entry point for the subsumption kernels — minimization
    (Definition 4.6), relation subsumption (Definition 4.7) and
    x-membership (4.2') — behind a size- and pool-aware strategy
    dispatch.

    Callers used to pick between [Relation.minimize] (naive
    quadratic), [Storage.Hash_index.minimize] (combinatorial hashing)
    and ad-hoc loops. This facade makes that an implementation choice:
    [Auto] (the default) selects sequential scans for small inputs,
    the {!Subsume_index} for medium ones, and chunked fan-out over the
    {!Par.Pool} domains for large ones. Every strategy computes the
    same set — results are sets and per-tuple verdicts are independent,
    so merge order cannot change semantics (property-tested).

    Governance: sequential and indexed strategies charge
    {!Exec.tick} per comparison or probe as before. Parallel
    strategies count work into a per-task [Atomic.t] on the worker
    domains and the coordinator drains it via {!Exec.drain_ticks}
    between its own chunks — a governor violation raised there cancels
    the remaining chunks at chunk boundaries. *)

type strategy =
  | Auto  (** pick by input size and pool availability (default) *)
  | Sequential  (** the plain [Relation] scans, bit-for-bit *)
  | Indexed  (** {!Subsume_index} probes on the calling domain *)
  | Parallel
      (** chunked fan-out over {!Par.Pool} against a prepared, shared
          read-only {!Subsume_index}; inline when the pool has size 1 *)

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option

val indexed_cutover : int
(** [Auto] stays [Sequential] below this cardinality (64): below it
    the index build costs more than the quadratic scan it avoids, and
    small governed callers keep their exact historical tick counts. *)

val parallel_cutover : int
(** [Auto] considers [Parallel] from this cardinality (512) up,
    provided {!Par.Pool.parallelizable}. *)

val strategy_for : int -> strategy
(** The [Auto] rule as a function of a size: [Sequential] below
    {!indexed_cutover}, [Parallel] from {!parallel_cutover} up when
    the pool can help, [Indexed] in between. Exposed so a cost-based
    planner can pre-commit a strategy from an {e estimated}
    cardinality instead of waiting for the materialized input. *)

val fold_chunks :
  ?strategy:strategy ->
  'a array ->
  chunk:(lo:int -> hi:int -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'b
(** Governed, chunked fold over an array: [chunk ~lo ~hi] summarizes
    the slice [lo, hi) (it must be a pure read), [combine] merges
    summaries left-to-right starting from [init]. Charges one
    {!Exec.tick} per element under every strategy (per-task atomics
    drained by the coordinator when parallel). [Auto] fans out over
    the {!Par.Pool} from {!parallel_cutover} elements; [Indexed]
    degrades to [Sequential] (a scan has no index). The statistics
    analyzer is the main client. *)

val minimize : ?strategy:strategy -> Relation.t -> Relation.t
(** Reduction to minimal form; agrees with [Relation.minimize]. *)

val subsumes : ?strategy:strategy -> Relation.t -> Relation.t -> bool
(** [subsumes r1 r2]: does [r1] x-contain every non-null tuple of
    [r2]? Agrees with [Relation.subsumes]. *)

val x_mem : ?strategy:strategy -> Tuple.t -> Relation.t -> bool
(** X-membership of one tuple; agrees with [Relation.x_mem]. [Auto]
    stays [Sequential]: a single probe never amortizes an index build,
    and the linear scan is too short to fan out. *)

val prober : ?strategy:strategy -> Relation.t -> Tuple.t -> bool
(** [prober r] prepares a repeated x-membership test against [r] and
    returns the probe function: under [Auto]/[Indexed] a
    {!Subsume_index} is built once (when [r] is large enough) and each
    probe is an expected-O(1) lookup; under [Sequential] each probe
    scans. The returned closure is for the calling domain only. *)
