type t = Tuple.Set.t

let empty = Tuple.Set.empty
let of_list = Tuple.Set.of_list
let of_tuples s = s
let to_list = Tuple.Set.elements
let tuples r = r
let cardinal = Tuple.Set.cardinal
let is_empty = Tuple.Set.is_empty
let add = Tuple.Set.add
let remove = Tuple.Set.remove
let mem = Tuple.Set.mem
let m_subsumption =
  Obs.Metrics.counter
    ~help:"Tuple subsumption comparisons in x-membership and minimization"
    "nullrel_subsumption_comparisons_total"

(* x_mem and minimize are the innermost loops of the whole engine, so
   the subsumption counter must not cost even a branch per comparison
   when metrics are off: [body cmp t] picks the counted or the plain
   comparison closure once, outside the loop. (The counter itself is
   atomic, so the counted variant stays correct even when a Kernel
   worker domain runs it.) *)
let body cmp t =
  if !Obs.Metrics.enabled then fun r' ->
    Exec.tick ();
    Obs.Metrics.inc m_subsumption;
    cmp r' t
  else fun r' ->
    Exec.tick ();
    cmp r' t

let x_mem t r = Tuple.Set.exists (body Tuple.more_informative t) r
let filter = Tuple.Set.filter
let fold f r init = Tuple.Set.fold f r init
let iter = Tuple.Set.iter
let map = Tuple.Set.map
let union = Tuple.Set.union
let equal = Tuple.Set.equal
let compare = Tuple.Set.compare

let subsumes r1 r2 =
  Tuple.Set.for_all (fun t -> Tuple.is_null_tuple t || x_mem t r1) r2

let equiv r1 r2 = subsumes r1 r2 && subsumes r2 r1

let minimize r =
  Tuple.Set.filter
    (fun t ->
      (not (Tuple.is_null_tuple t))
      && not (Tuple.Set.exists (body Tuple.strictly_more_informative t) r))
    r

let is_minimal r = equal r (minimize r)

(* Minimization cannot change the scope: a strictly subsumed tuple's
   non-null attributes are a subset of its subsumer's, and null tuples
   contribute none — so fold over the relation as-is instead of paying
   a quadratic minimize per call. *)
let scope r =
  Tuple.Set.fold
    (fun t acc -> Attr.Set.union (Tuple.attrs t) acc)
    r Attr.Set.empty

let pp ppf r =
  Format.fprintf ppf "{@[<hv>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (to_list r)
