open Nullrel

(* The shell links the storage layer, so it installs the physical join
   operators into the planner's link-time seams (the planner itself
   cannot depend on storage). *)
let () =
  Plan.Expr.equijoin_impl :=
    (fun strategy x r1 r2 -> Storage.Join.hash_equijoin ~strategy x r1 r2);
  Plan.Expr.union_join_impl :=
    (fun strategy x r1 r2 -> Storage.Join.hash_union_join ~strategy x r1 r2);
  Plan.Expr.equijoin_probe_impl :=
    (fun strategy _x r1 probe -> Storage.Join.probe_equijoin ~strategy ~probe r1)

type limits = { time_s : float option; max_tuples : int option }

type state = {
  cat : Storage.Catalog.t;
  finished : bool;
  limits : limits;
  dir : string option;
      (* The durable directory behind the catalog (.open) — lets the
         sys_wal and CRC columns of the system catalog see the disk. *)
  semantics : Semantics.t option;
      (* [.semantics NAME] selection; [None] defers to the ambient
         dialect, so a CLI [--semantics] flag and the dot-command
         compose instead of fighting. *)
}

let no_limits = { time_s = None; max_tuples = None }

let initial =
  { cat = Storage.Catalog.empty; finished = false; limits = no_limits;
    dir = None; semantics = None }

let effective_semantics st =
  match st.semantics with Some sem -> sem | None -> Semantics.current ()

let catalog st = st.cat
let finished st = st.finished

(* The database one statement sees: the user catalog plus the sys_*
   virtual relations, materialized together at this instant (the
   snapshot-consistency rule — build once per statement, share between
   admission, planning and evaluation). The system catalog is only
   materialized when the statement's range clauses actually mention a
   sys_* name: building those xrels runs minimization under the
   governor, and a statement over user data alone must not spend its
   tick budget (or any time) on telemetry it never asked for. *)
let full_db ?ranges st =
  let wanted =
    match ranges with
    | None -> true
    | Some rs -> List.exists (fun (_, rel) -> Sysview.is_sys rel) rs
  in
  Storage.Catalog.to_db st.cat
  @ (if wanted then Sysview.db ?dir:st.dir st.cat else [])

let describe_limits = function
  | { time_s = None; max_tuples = None } -> "limits: off"
  | { time_s; max_tuples } ->
      let parts =
        List.filter_map Fun.id
          [
            Option.map (Printf.sprintf "time %gs") time_s;
            Option.map (Printf.sprintf "tuples %d") max_tuples;
          ]
      in
      "limits: " ^ String.concat ", " parts

(* Run [f] under a governor when any limit is set; a fresh governor per
   input, so budgets do not leak across statements. *)
let governed st f =
  match st.limits with
  | { time_s = None; max_tuples = None } -> f ()
  | { time_s; max_tuples } ->
      Exec.with_governor
        (Exec.make ?deadline_s:time_s ?max_tuples:max_tuples ())
        f

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let help =
  ".agg KIND [v.A] QUERY  aggregate bounds (count | sum | min | max)\n\
   .analyze [NAME ...]    collect planner statistics (all relations by \
   default)\n\
   .check                 run schema, constraint + referential integrity \
   checks\n\
   .constraints           list declared constraints and their verification \
   state\n\
   .domains [N]           show or set the parallelism degree (domains)\n\
   .explain analyze QUERY run a query; show est/actual rows, ticks, time per \
   operator\n\
   .fsck DIR              check a catalog directory and repair it\n\
   .help                  this text\n\
   .index REL KIND ATTRS  declare a secondary index (hash | range; \
   ATTRS comma-separated)\n\
   .index drop REL KIND ATTRS  drop one\n\
   .indexes               list declared secondary indexes\n\
   .limit                 show the current execution limits\n\
   .limit off             clear all limits\n\
   .limit time SECS       abort statements running longer than SECS\n\
   .limit tuples N        abort statements touching more than N tuples\n\
   .list                  list relations (the sys_* system catalog is \
   always queryable)\n\
   .load NAME FILE.csv    register a CSV file as relation NAME\n\
   .monitor [N | on | off] live top-style view from sys_sessions + \
   sys_metrics_history\n\
   .open DIR              load a saved catalog directory\n\
   .plan QUERY            show the optimized algebra plan for a query\n\
   .quit                  leave\n\
   .save DIR              save the catalog (atomic, checksummed)\n\
   .schema NAME           print a relation's schema\n\
   .semantics [NAME]      show or set the null-semantics dialect (ni | codd \
   | sql | certain)\n\
   .session [DIR]         two-session walkthrough: snapshot isolation, group \
   commit, a conflict, a retry\n\
   .show NAME             print a relation\n\
   .slowlog [MS | off]    show the slow-statement log, or set its threshold\n\
   .stats [reset]         dump metrics (Prometheus text), or zero them\n\
   .stats-catalog         show collected statistics and their freshness\n\
   .trace [on | off]      show recent operator spans, or toggle tracing\n\
   range of ... retrieve (...) [where ...]    evaluate ||Q||-\n\
   append to REL (A = 1, ...)                 insert (union)\n\
   range of v is REL delete v [where ...]     delete (difference)\n\
   range of v is REL replace v (A = 2) [where ...]\n\
   constrain unique REL (A, B) [as NAME]      declare a null-tolerant key\n\
   constrain notnull REL (A) [as NAME]        forbid ni on A\n\
   constrain fk REL (F) to T (K) on delete restrict|cascade|setnull [as \
   NAME]\n\
   unconstrain NAME                           drop a constraint"

(* Guess per-column domains from the data so the loaded relation gets a
   usable schema. *)
let guessed_schema name attrs x =
  Schema.make name
    (List.map
       (fun a ->
         let domain =
           List.find_map
             (fun r ->
               match Tuple.get r a with
               | Value.Null -> None
               | Value.Int _ -> Some Domain.Ints
               | Value.Float _ -> Some Domain.Floats
               | Value.Bool _ -> Some Domain.Bools
               | Value.Str _ -> Some Domain.Strings)
             (Xrel.to_list x)
         in
         (Attr.name a, Option.value domain ~default:Domain.Strings))
       attrs)

let with_relation st name f =
  match Storage.Catalog.find st.cat name with
  | None when Sysview.is_sys name -> (
      (* Materialize just for display: sys_* names resolve in .show and
         .schema exactly as they do in queries. *)
      match List.assoc_opt name (Sysview.db ?dir:st.dir st.cat) with
      | Some (schema, x) -> f schema x
      | None -> Printf.sprintf "error: no relation %s (try .list)" name)
  | None -> Printf.sprintf "error: no relation %s (try .list)" name
  | Some (schema, x) -> f schema x

(* One source of truth for the planner's catalog callbacks: attribute
   lists and scopes for compilation, a {!Plan.Cost.source} for costing
   — {e live} cardinalities (so estimates track the loaded data rather
   than [Cost.default_cardinality]) plus whatever fresh [.analyze]
   statistics the catalog holds — and the evaluation environment. Used
   by admission control, [.plan], [.explain analyze] and plain
   retrieves alike so their estimates can never drift apart. Every
   per-relation statistics lookup is counted as a hit, miss or stale
   in [nullrel_stats_lookups_total]. *)
type db_context = {
  schemas : string -> Attr.t list option;
  env_scope : string -> Attr.Set.t option;
  stats : Plan.Cost.source;
  env : string -> Xrel.t option;
  index_probe : Plan.Expr.t -> (Tuple.t -> Tuple.t list) option;
      (* Per-join-node probes served by declared secondary indexes,
         rename-translated — [Plan.Compile.run]'s [index_probe]. *)
}

let db_context db cat =
  let find name = List.assoc_opt name db in
  let stats =
    {
      Plan.Cost.rowcount =
        (fun name -> Option.map (fun (_, x) -> Xrel.cardinal x) (find name));
      table =
        (fun name ->
          (* Virtual relations have live cardinalities but no stored
             statistics; keep them out of the hit/miss accounting. *)
          if Sysview.is_sys name then None
          else
            match Storage.Catalog.stats_status cat name with
            | Storage.Catalog.Fresh t ->
                Stats.count_hit ();
                Some t
            | Storage.Catalog.Stale _ ->
                Stats.count_stale ();
                None
            | Storage.Catalog.Missing ->
                Stats.count_miss ();
                None);
      equipped = Storage.Catalog.has_equi cat;
    }
  in
  {
    schemas = (fun name -> Option.map (fun (s_, _) -> Schema.attrs s_) (find name));
    env_scope =
      (fun name -> Option.map (fun (s_, _) -> Schema.attr_set s_) (find name));
    stats;
    env = (fun name -> Option.map snd (find name));
    index_probe =
      Plan.Compile.index_probe_of ~stats
        ~probe_for:(Storage.Catalog.equi_probe cat);
  }

(* Admission control: before a governed retrieve runs at all, compare
   the optimizer's cost estimate for the chosen plan against the tuple
   budget and reject queries that cannot plausibly fit. *)
let admission st db q =
  match st.limits.max_tuples with
  | None -> None
  | Some budget ->
      Quel.Resolve.check db q;
      let ctx = db_context db st.cat in
      let plan =
        Plan.Rewrite.optimize ~cost:ctx.stats ~env_scope:ctx.env_scope
          (Plan.Compile.query ~schemas:ctx.schemas q)
      in
      let est = Plan.Cost.cost ~stats:ctx.stats plan in
      if est > float_of_int budget then Some (est, budget) else None

(* Statements: retrieves go through the optimizing planner; updates go
   through the Section 7 semantics of [Dml]. *)
let run_statement st src =
  match Quel.Parser.parse_statement src with
  | Quel.Ast.Retrieve q -> (
      let db = full_db ~ranges:q.Quel.Ast.ranges st in
      match admission st db q with
      | Some (est, budget) ->
          ( st,
            Printf.sprintf
              "rejected: estimated cost %.0f exceeds the tuple budget %d \
               (raise .limit tuples, or refine the query)"
              est budget )
      | None -> (
          let sem = effective_semantics st in
          match sem.Semantics.dialect with
          | Semantics.Ni_lower ->
              let ctx = db_context db st.cat in
              let result =
                Plan.Compile.run ~stats:ctx.stats ~semantics:sem
                  ~index_probe:ctx.index_probe db q
              in
              ( st,
                Pp.to_string (Pp.table result.Quel.Eval.attrs)
                  result.Quel.Eval.rel )
          | Semantics.Codd_maybe | Semantics.Sql_3vl | Semantics.Certain ->
              let b = Plan.Compile.run_bands ~semantics:sem db q in
              let sure =
                Pp.to_string (Pp.table_rel b.Quel.Eval.attrs) b.Quel.Eval.sure
              in
              ( st,
                match b.Quel.Eval.maybe with
                | None -> sure
                | Some band ->
                    sure ^ "\n"
                    ^ Pp.to_string
                        (Pp.table_rel
                           ~title:(sem.Semantics.maybe_label ^ " band")
                           b.Quel.Eval.attrs)
                        band )))
  | statement ->
      let outcome = Dml.exec ?semantics:st.semantics st.cat statement in
      ({ st with cat = outcome.Dml.catalog }, outcome.Dml.message)

let show_plan st src =
  let q = Quel.Parser.parse src in
  let db = full_db ~ranges:q.Quel.Ast.ranges st in
  Quel.Resolve.check db q;
  let ctx = db_context db st.cat in
  let raw = Plan.Compile.query ~schemas:ctx.schemas q in
  let optimized =
    Plan.Rewrite.optimize ~cost:ctx.stats ~env_scope:ctx.env_scope raw
  in
  Printf.sprintf "raw:       %s\noptimized: %s\nest. cost: %.0f -> %.0f"
    (Pp.to_string Plan.Expr.pp raw)
    (Pp.to_string Plan.Expr.pp optimized)
    (Plan.Cost.cost ~stats:ctx.stats raw)
    (Plan.Cost.cost ~stats:ctx.stats optimized)

let explain_analyze st src =
  let q = Quel.Parser.parse src in
  let db = full_db ~ranges:q.Quel.Ast.ranges st in
  Quel.Resolve.check db q;
  let ctx = db_context db st.cat in
  let plan =
    Plan.Rewrite.optimize ~cost:ctx.stats ~env_scope:ctx.env_scope
      (Plan.Compile.query ~schemas:ctx.schemas q)
  in
  let _result, node =
    Plan.Analyze.run
      ~join_strategy:(Plan.Compile.join_strategy_of ~stats:ctx.stats)
      ~stats:ctx.stats ~env:ctx.env plan
  in
  Plan.Analyze.render
    ~semantics:
      (Semantics.to_string (effective_semantics st).Semantics.dialect)
    node

(* .analyze [NAME ...]: one governed statistics scan per relation,
   results stamped into the catalog (fresh until the next mutation). *)
let analyze st names =
  let names =
    match names with [] -> Storage.Catalog.names st.cat | names -> names
  in
  let missing =
    List.filter (fun n -> not (Storage.Catalog.mem st.cat n)) names
  in
  match missing with
  | n :: _ -> (st, Printf.sprintf "error: no relation %s (try .list)" n)
  | [] ->
      let cat, lines =
        List.fold_left
          (fun (cat, lines) name ->
            let schema, x = Storage.Catalog.get cat name in
            let t = Stats.collect ~attrs:(Schema.attrs schema) x in
            ( Storage.Catalog.set_stats cat name t,
              Printf.sprintf "analyzed %s: %d rows, %d columns" name
                t.Stats.rows
                (List.length t.Stats.columns)
              :: lines ))
          (st.cat, []) names
      in
      ({ st with cat }, String.concat "\n" (List.rev lines))

let stats_catalog st =
  match Storage.Catalog.names st.cat with
  | [] -> "(no relations loaded)"
  | names ->
      String.concat "\n"
        (List.map
           (fun name ->
             match Storage.Catalog.stats_status st.cat name with
             | Storage.Catalog.Missing -> name ^ ": not analyzed"
             | Storage.Catalog.Fresh t ->
                 Format.asprintf "%s (fresh): %a" name Stats.pp t
             | Storage.Catalog.Stale t ->
                 Format.asprintf "%s (stale — re-run .analyze): %a" name
                   Stats.pp t)
           names)

(* .monitor [N]: a top-style snapshot rendered from the same virtual
   relations a query would see — sys_sessions for the live session
   table, sys_metrics_history for the last N flight-recorder rows. *)
let monitor n =
  let on = !Obs.History.enabled in
  (* Fold "now" into the view so the newest line is current. *)
  if on then Obs.History.snap_now ();
  let engine_lines =
    match Session.list_engines () with
    | [] -> [ "engines: none open" ]
    | engines ->
        List.map
          (fun eng ->
            let s = Session.stats eng in
            Printf.sprintf
              "engine %s: queue %d, committed %d, conflicts %d, batches %d"
              (Session.engine_dir eng) (Session.queue_depth eng)
              s.Session.committed s.Session.conflicts s.Session.batches)
          engines
  in
  let _, (sess_schema, sess_x) = Sysview.sys_sessions () in
  let session_lines =
    if Xrel.is_empty sess_x then [ "sessions: none attached" ]
    else [ Pp.to_string (Pp.table_of_schema sess_schema) sess_x ]
  in
  let snaps = Obs.History.entries () in
  let keep =
    let len = List.length snaps in
    if len <= n then snaps else List.filteri (fun i _ -> i >= len - n) snaps
  in
  let history_lines =
    match keep with
    | [] ->
        [
          (if on then "history: no snapshots yet (run some governed work)"
           else "history: off (.monitor on starts the flight recorder)");
        ]
    | snaps ->
        let series snap name =
          match List.assoc_opt name snap.Obs.History.series with
          | Some v when not (Float.is_nan v) -> Printf.sprintf "%.0f" v
          | _ -> "-"
        in
        Printf.sprintf "%6s %12s %10s %14s %12s" "seq" "ticks" "Δticks"
          "commit_p99_us" "commits"
        :: List.rev
             (fst
                (List.fold_left
                   (fun (acc, prev) snap ->
                     let line =
                       Printf.sprintf "%6d %12d %10d %14s %12s"
                         snap.Obs.History.seq snap.Obs.History.ticks
                         (snap.Obs.History.ticks - prev)
                         (series snap "nullrel_session_commit_us_p99")
                         (series snap "nullrel_session_commits_total")
                     in
                     (line :: acc, snap.Obs.History.ticks))
                   ([], 0) snaps))
  in
  String.concat "\n"
    ((Printf.sprintf "monitor: history %s, %d/%d snapshots retained"
        (if on then "on" else "off")
        (List.length snaps) (Obs.History.capacity ())
     :: engine_lines)
    @ session_lines @ history_lines)

let pp_span_event (e : Obs.Span.event) =
  Printf.sprintf "%s%s  %.1fms  %d ticks"
    (String.make (2 * e.Obs.Span.depth) ' ')
    e.Obs.Span.label
    (e.Obs.Span.duration_s *. 1000.)
    e.Obs.Span.ticks

(* .agg KIND [v.ATTR] QUERY *)
let run_aggregate st words =
  let parse_ref r =
    match String.index_opt r '.' with
    | Some idx ->
        ( String.sub r 0 idx,
          String.sub r (idx + 1) (String.length r - idx - 1) )
    | None -> Exec_error.bad_input "aggregate attribute must be written v.ATTR"
  in
  let kind, rest =
    match words with
    | "count" :: rest -> (Quel.Aggregate.Count, rest)
    | "sum" :: r :: rest ->
        let v, a = parse_ref r in
        (Quel.Aggregate.Sum (v, a), rest)
    | "min" :: r :: rest ->
        let v, a = parse_ref r in
        (Quel.Aggregate.Min (v, a), rest)
    | "max" :: r :: rest ->
        let v, a = parse_ref r in
        (Quel.Aggregate.Max (v, a), rest)
    | _ -> Exec_error.bad_input ".agg count|sum|min|max [v.ATTR] QUERY"
  in
  let q = Quel.Parser.parse (String.concat " " rest) in
  let db = full_db ~ranges:q.Quel.Ast.ranges st in
  let b = Quel.Aggregate.bounds db q kind in
  Printf.sprintf "bounds: %d .. %d%s" b.Quel.Aggregate.lower
    b.Quel.Aggregate.upper
    (if b.Quel.Aggregate.may_be_empty then "   (the answer may be empty)"
     else "")

let check st =
  let schema_issues =
    List.concat_map
      (fun (name, (schema, x)) ->
        List.map
          (fun v ->
            Printf.sprintf "%s: %s" name (Pp.to_string Schema.pp_violation v))
          (Schema.check schema x))
      (Storage.Catalog.to_db st.cat)
  in
  let reference_issues =
    List.map
      (Pp.to_string Storage.Catalog.pp_reference_violation)
      (Storage.Catalog.check_references st.cat)
  in
  (* Re-verify any constraints whose data changed wholesale (.load /
     restored stale): the ones that pass become verified again. *)
  let stale_before = Storage.Catalog.unverified_constraints st.cat in
  let cat, constraint_issues =
    Storage.Catalog.revalidate_constraints st.cat
  in
  let constraint_issues =
    List.map
      (fun (_, v) -> Pp.to_string Constr.pp_violation v)
      constraint_issues
  in
  let revalidated =
    List.filter
      (fun n ->
        not (List.mem n (Storage.Catalog.unverified_constraints cat)))
      stale_before
  in
  let notes =
    if revalidated = [] then []
    else
      [
        Printf.sprintf "re-verified %s"
          (String.concat ", " revalidated);
      ]
  in
  ( { st with cat },
    match schema_issues @ reference_issues @ constraint_issues with
    | [] -> String.concat "\n" ("ok: no violations" :: notes)
    | issues -> String.concat "\n" (issues @ notes) )

let constraints_listing st =
  match Storage.Catalog.constraints st.cat with
  | [] -> "(no constraints declared)"
  | defs ->
      let stale = Storage.Catalog.unverified_constraints st.cat in
      String.concat "\n"
        (List.map
           (fun def ->
             let mark =
               if List.mem (Constr.name def) stale then
                 "  [stale -- data changed since verification; run .check]"
               else ""
             in
             Pp.to_string Constr.pp_def def ^ mark)
           defs)

let pp_attr_list attrs =
  String.concat "," (List.map Attr.name (Attr.Set.elements attrs))

let parse_index_attrs s =
  let names = List.map String.trim (String.split_on_char ',' s) in
  if names = [] || List.exists (String.equal "") names then None
  else Some (Attr.set_of_list names)

let indexes_listing st =
  match Storage.Catalog.all_indexes st.cat with
  | [] -> "(no indexes declared -- .index REL KIND ATTRS declares one)"
  | decls ->
      String.concat "\n"
        (List.map
           (fun (rel, kind, attrs) ->
             let card =
               List.find_map
                 (fun (k, a, n) ->
                   if String.equal k kind && Attr.Set.equal a attrs then Some n
                   else None)
                 (Storage.Catalog.indexes st.cat rel)
             in
             Printf.sprintf "%s %s(%s) -- %d tuples indexed" rel kind
               (pp_attr_list attrs)
               (Option.value ~default:0 card))
           decls)

let split_words line =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' line)

let exec st line =
  let line = String.trim line in
  try
    if line = "" then (st, "")
    else if line.[0] <> '.' then
      let label =
        if String.length line > 48 then String.sub line 0 48 ^ "..." else line
      in
      Obs.Span.with_span ("stmt: " ^ label) (fun () ->
          governed st (fun () -> run_statement st line))
    else
      match split_words line with
      | [ ".quit" ] | [ ".exit" ] -> ({ st with finished = true }, "bye")
      | [ ".help" ] -> (st, help)
      | [ ".list" ] -> (
          match Storage.Catalog.names st.cat with
          | [] -> (st, "(no relations loaded)")
          | names -> (st, String.concat "\n" names))
      | [ ".load"; name; _file ] when Sysview.is_sys name ->
          ( st,
            Printf.sprintf
              "error: %s is in the reserved sys_ namespace (read-only \
               system catalog)"
              name )
      | [ ".load"; name; file ] ->
          let attrs, x = Storage.Csv.read_file file in
          let schema = guessed_schema name attrs x in
          ( { st with cat = Storage.Catalog.add st.cat schema x },
            Printf.sprintf "loaded %s (%d tuples)" name (Xrel.cardinal x) )
      | [ ".open"; dir ] ->
          let report = Storage.Persist.load_report ~dir () in
          let cat = report.Storage.Persist.catalog in
          let clean =
            List.for_all
              (fun (_, s_) -> s_ = Storage.Persist.Ok)
              report.Storage.Persist.statuses
            && report.Storage.Persist.journal_note = None
          in
          let headline =
            Printf.sprintf "opened %s (%d relations)" dir
              (List.length (Storage.Catalog.names cat))
          in
          ( { st with cat; dir = Some dir },
            if clean then headline
            else
              String.concat "\n"
                ((headline ^ " -- problems found, run .fsck to repair:")
                :: List.map (fun l -> "  " ^ l)
                     (Storage.Persist.report_lines report)) )
      | [ ".fsck"; dir ] ->
          let report = Storage.Persist.recover ~dir () in
          ( st,
            String.concat "\n"
              (Printf.sprintf "%s: checkpointed %d relations at lsn %d, journal empty"
                 dir
                 (List.length
                    (Storage.Catalog.names report.Storage.Persist.catalog))
                 report.Storage.Persist.lsn
              :: List.map (fun l -> "  " ^ l)
                   (Storage.Persist.report_lines report)) )
      | [ ".save"; dir ] ->
          Storage.Persist.save ~dir st.cat;
          ({ st with dir = Some dir }, Printf.sprintf "saved to %s" dir)
      | [ ".open" ] | [ ".fsck" ] | [ ".save" ] | [ ".load" ] | [ ".show" ]
      | [ ".schema" ] ->
          (st, "error: missing argument (try .help)")
      | [ ".semantics" ] ->
          let sem = effective_semantics st in
          ( st,
            String.concat "\n"
              (Printf.sprintf "semantics: %s — %s" sem.Semantics.name
                 sem.Semantics.description
              :: List.map
                   (fun (s_ : Semantics.t) ->
                     Printf.sprintf "  %s%s  %s"
                       (if s_.Semantics.name = sem.Semantics.name then "* "
                        else "  ")
                       s_.Semantics.name s_.Semantics.description)
                   Semantics.all) )
      | [ ".semantics"; name ] -> (
          match Semantics.of_string name with
          | Some d ->
              let sem = Semantics.of_dialect d in
              ( { st with semantics = Some sem },
                Printf.sprintf "semantics: %s — %s" sem.Semantics.name
                  sem.Semantics.description )
          | None ->
              ( st,
                Printf.sprintf "error: unknown dialect %s (one of: %s)" name
                  (String.concat ", " Semantics.names) ))
      | ".semantics" :: _ -> (st, "error: usage: .semantics [NAME]")
      | [ ".session" ] ->
          let dir = Filename.temp_file "nullrel_session_demo" "" in
          Sys.remove dir;
          let lines =
            Fun.protect
              ~finally:(fun () -> rm_rf dir)
              (fun () -> Session.Drive.demo ~dir ())
          in
          (st, String.concat "\n" lines)
      | [ ".session"; dir ] ->
          (st, String.concat "\n" (Session.Drive.demo ~dir ()))
      | [ ".show"; name ] ->
          ( st,
            with_relation st name (fun schema x ->
                Pp.to_string (Pp.table_of_schema schema) x) )
      | [ ".schema"; name ] ->
          ( st,
            with_relation st name (fun schema _ ->
                Pp.to_string Schema.pp schema) )
      | ".plan" :: rest when rest <> [] ->
          (st, show_plan st (String.concat " " rest))
      | ".explain" :: "analyze" :: rest when rest <> [] ->
          ( st,
            governed st (fun () -> explain_analyze st (String.concat " " rest))
          )
      | ".explain" :: _ -> (st, "error: usage: .explain analyze QUERY")
      | [ ".stats" ] ->
          ( st,
            (if Obs.Metrics.is_enabled () then ""
             else "# collection is off (.trace on enables it)\n")
            ^ Obs.Metrics.dump_prometheus () )
      | [ ".stats"; "reset" ] ->
          Obs.Metrics.reset ();
          (st, "stats: reset")
      | [ ".trace" ] -> (
          match Obs.Span.events () with
          | [] -> (st, "trace: no spans recorded (.trace on enables tracing)")
          | evs -> (st, String.concat "\n" (List.map pp_span_event evs)))
      | [ ".trace"; "on" ] ->
          Obs.Metrics.set_enabled true;
          Obs.Span.set_enabled true;
          (st, "trace: on (metrics collection enabled too)")
      | [ ".trace"; "off" ] ->
          Obs.Metrics.set_enabled false;
          Obs.Span.set_enabled false;
          (st, "trace: off")
      | [ ".slowlog" ] -> (
          match Obs.Span.slow_log () with
          | [] ->
              ( st,
                match Obs.Span.slow_threshold () with
                | None -> "slow log: threshold off (.slowlog MS sets it)"
                | Some t ->
                    Printf.sprintf "slow log: empty (threshold %.1fms)"
                      (t *. 1000.) )
          | evs -> (st, String.concat "\n" (List.map pp_span_event evs)))
      | [ ".slowlog"; "off" ] ->
          Obs.Span.set_slow_threshold None;
          (st, "slow log: off")
      | [ ".slowlog"; ms ] -> (
          match float_of_string_opt ms with
          | Some v when v >= 0. && Float.is_finite v ->
              Obs.Span.set_slow_threshold (Some (v /. 1000.));
              (* Recording spans needs tracing on; make the command
                 self-sufficient instead of a silent no-op. *)
              Obs.Span.set_enabled true;
              (st, Printf.sprintf "slow log: threshold %gms (tracing on)" v)
          | _ -> (st, "error: .slowlog [MILLISECONDS | off]"))
      | ".agg" :: rest when rest <> [] ->
          (st, governed st (fun () -> run_aggregate st rest))
      | ".analyze" :: names -> governed st (fun () -> analyze st names)
      | [ ".stats-catalog" ] -> (st, stats_catalog st)
      | [ ".check" ] -> check st
      | [ ".constraints" ] -> (st, constraints_listing st)
      | [ ".indexes" ] -> (st, indexes_listing st)
      | [ ".index"; "drop"; rel; kind; attrs ] -> (
          match parse_index_attrs attrs with
          | None -> (st, "error: usage: .index [drop] REL KIND ATTR[,ATTR...]")
          | Some attrs ->
              ( { st with cat = Storage.Catalog.drop_index st.cat rel ~kind attrs },
                Printf.sprintf "dropped index %s %s(%s)" rel kind
                  (pp_attr_list attrs) ))
      | [ ".index"; rel; kind; attrs ] -> (
          match parse_index_attrs attrs with
          | None -> (st, "error: usage: .index [drop] REL KIND ATTR[,ATTR...]")
          | Some attrs ->
              let cat = Storage.Catalog.create_index st.cat rel ~kind attrs in
              ( { st with cat },
                Printf.sprintf "index %s %s(%s) -- %d tuples indexed" rel kind
                  (pp_attr_list attrs)
                  (Option.value ~default:0
                     (List.find_map
                        (fun (k, a, n) ->
                          if String.equal k kind && Attr.Set.equal a attrs then
                            Some n
                          else None)
                        (Storage.Catalog.indexes cat rel))) ))
      | ".index" :: _ ->
          (st, "error: usage: .index [drop] REL KIND ATTR[,ATTR...]")
      | [ ".domains" ] ->
          ( st,
            Printf.sprintf "domains: %d (hardware recommends %d, cap %d)"
              (Par.Pool.domains ())
              (Stdlib.Domain.recommended_domain_count ())
              Par.Pool.hard_cap )
      | [ ".domains"; n ] -> (
          match int_of_string_opt n with
          | Some k when k >= 1 ->
              Par.Pool.set_domains k;
              (st, Printf.sprintf "domains: %d" (Par.Pool.domains ()))
          | _ -> (st, "error: .domains N (a positive integer)"))
      | ".domains" :: _ -> (st, "error: usage: .domains [N]")
      | [ ".monitor" ] -> (st, monitor 8)
      | [ ".monitor"; "on" ] ->
          (* History snapshots are charged from the governed hot path,
             so recording needs metrics collection live too. *)
          Obs.Metrics.set_enabled true;
          Obs.History.set_enabled true;
          (st, "monitor: history on (metrics collection enabled too)")
      | [ ".monitor"; "off" ] ->
          Obs.History.set_enabled false;
          (st, "monitor: history off (metrics collection left as it was)")
      | [ ".monitor"; n ] -> (
          match int_of_string_opt n with
          | Some k when k >= 1 -> (st, monitor k)
          | _ -> (st, "error: .monitor [N | on | off]"))
      | ".monitor" :: _ -> (st, "error: usage: .monitor [N | on | off]")
      | [ ".limit" ] -> (st, describe_limits st.limits)
      | [ ".limit"; "off" ] -> ({ st with limits = no_limits }, "limits: off")
      | [ ".limit"; "time"; secs ] -> (
          match float_of_string_opt secs with
          | Some s when s >= 0. && Float.is_finite s ->
              let st =
                { st with limits = { st.limits with time_s = Some s } }
              in
              (st, describe_limits st.limits)
          | _ -> (st, "error: .limit time SECONDS (a non-negative number)"))
      | [ ".limit"; "tuples"; n ] -> (
          match int_of_string_opt n with
          | Some k when k > 0 ->
              let st =
                { st with limits = { st.limits with max_tuples = Some k } }
              in
              (st, describe_limits st.limits)
          | _ -> (st, "error: .limit tuples N (a positive integer)"))
      | ".limit" :: _ ->
          (st, "error: usage: .limit [off | time SECS | tuples N]")
      | cmd :: _ -> (st, Printf.sprintf "error: unknown command %s (try .help)" cmd)
      | [] -> (st, "")
  with
  | Quel.Parser.Error msg -> (st, "parse error: " ^ msg)
  | Quel.Lexer.Error (msg, pos) ->
      (st, Printf.sprintf "lexical error at %d: %s" pos msg)
  | Quel.Resolve.Error msg -> (st, "error: " ^ msg)
  | Storage.Csv.Error msg -> (st, "csv error: " ^ msg)
  | Storage.Persist.Error msg -> (st, "error: " ^ msg)
  | Storage.Catalog.Violation violations ->
      ( st,
        "integrity violations:\n"
        ^ String.concat "\n"
            (List.map (Pp.to_string Schema.pp_violation) violations) )
  | Constr.Error v -> (st, "constraint violation: " ^ Constr.to_string v)
  | Value.Type_error msg -> (st, "type error: " ^ msg)
  | Exec_error.Error e -> (st, "error: " ^ Exec_error.to_string e)
  | Domain.Infinite what ->
      ( st,
        Printf.sprintf
          "error: %s has an infinite domain; substitution reasoning needs \
           finite domains (intrange/enum in the schema)"
          what )
  | Failure msg -> (st, "error: " ^ msg)
  | Sys_error msg -> (st, "error: " ^ msg)
