(** The interactive shell's engine: a pure command interpreter over a
    catalog, independent of any terminal so it can be tested by feeding
    strings.

    Inputs are either dot-commands or mini-QUEL queries:
    {v
    .load NAME FILE.csv    register a CSV file as relation NAME
    .open DIR              load a saved catalog directory
    .save DIR              save the catalog
    .list                  list relations
    .show NAME             print a relation
    .schema NAME           print a relation's schema
    .plan QUERY            show the optimized algebra plan for a query
    .agg KIND [v.A] QUERY  aggregate bounds (count | sum | min | max)
    .check                 run schema + referential integrity checks
    .limit [off|time SECS|tuples N]   execution limits (see below)
    .help                  this text
    .quit                  leave
    range of ... retrieve (...) [where ...]    evaluate ||Q||-
    append to REL (A = 1, ...)                 insert (union)
    range of v is REL delete v [where ...]     delete (difference)
    range of v is REL replace v (A = 2) [where ...]
    v}

    When limits are set ([.limit time]/[.limit tuples]), every
    statement and [.agg] runs under a fresh {!Nullrel.Exec} governor; a
    violation aborts the statement (reported as text, the catalog is
    unchanged). A tuple budget additionally enables admission control:
    retrieves whose optimized-plan cost estimate ({!Plan.Cost}) already
    exceeds the budget are rejected before running. *)

type state

val initial : state
val catalog : state -> Storage.Catalog.t
val finished : state -> bool
(** True after [.quit]. *)

val exec : state -> string -> state * string
(** Executes one input (command or query); returns the new state and
    the text to display. Never raises: errors come back as text. *)

val help : string
