(** The interactive shell's engine: a pure command interpreter over a
    catalog, independent of any terminal so it can be tested by feeding
    strings.

    Inputs are either dot-commands or mini-QUEL queries:
    {v
    .agg KIND [v.A] QUERY  aggregate bounds (count | sum | min | max)
    .analyze [NAME ...]    collect planner statistics (all relations by default)
    .check                 run schema, constraint + referential integrity checks
    .constraints           list declared constraints and their verification state
    .explain analyze QUERY run a query; per-operator est/actual/ticks/time
    .fsck DIR              check a catalog directory and repair it
    .help                  this text
    .limit [off|time SECS|tuples N]   execution limits (see below)
    .list                  list relations
    .load NAME FILE.csv    register a CSV file as relation NAME
    .monitor [N | on | off]  top-style view from sys_sessions + sys_metrics_history
    .open DIR              load a saved catalog directory
    .plan QUERY            show the optimized algebra plan for a query
    .quit                  leave
    .save DIR              save the catalog
    .schema NAME           print a relation's schema
    .semantics [NAME]      show or set the null-semantics dialect
    .show NAME             print a relation
    .slowlog [MS | off]    show the slow-statement log, or set its threshold
    .stats [reset]         dump metrics (Prometheus text), or zero them
    .stats-catalog         show collected statistics and their freshness
    .trace [on | off]      show recent operator spans, or toggle tracing
    range of ... retrieve (...) [where ...]    evaluate ||Q||-
    append to REL (A = 1, ...)                 insert (union)
    range of v is REL delete v [where ...]     delete (difference)
    range of v is REL replace v (A = 2) [where ...]
    constrain unique REL (A, B) [as NAME]      declare a null-tolerant key
    constrain notnull REL (A) [as NAME]        forbid ni on A
    constrain fk REL (F) to T (K) on delete restrict|cascade|setnull [as NAME]
    unconstrain NAME                           drop a constraint
    v}

    When limits are set ([.limit time]/[.limit tuples]), every
    statement and [.agg] runs under a fresh {!Nullrel.Exec} governor; a
    violation aborts the statement (reported as text, the catalog is
    unchanged). A tuple budget additionally enables admission control:
    retrieves whose optimized-plan cost estimate ({!Plan.Cost}) already
    exceeds the budget are rejected before running.

    Observability ([.trace on], [.stats], [.slowlog], [.explain
    analyze]) is backed by the {!Obs} registry; collection is off by
    default and costs one branch per governor tick when off.

    Every statement additionally sees the {e system catalog}
    ({!Sysview}): the [sys_*] virtual relations — metrics, histogram
    buckets, spans, the slow log, live sessions, relation freshness,
    journal contents, constraints, and the {!Obs.History} metric ring —
    materialized fresh per statement and queryable/joinable like user
    data, with [ni] for honestly unknown fields. Statements that never
    range over a [sys_*] name skip the materialization entirely, so
    ordinary queries pay nothing (in particular no governor ticks) for
    the system catalog. The namespace is read-only: writes targeting
    [sys_*] fail, [.load] refuses the prefix, and [.save] never
    persists them.

    [.semantics NAME] selects the {!Nullrel.Semantics} dialect
    retrieves answer under (ni, codd, sql, certain — DESIGN §12).
    With no selection the shell follows the ambient dialect (the
    CLI's [--semantics] flag); the reporting dialects print the sure
    band followed by a separately-titled MAYBE/UNKNOWN band, as plain
    (unminimized) representations. *)

type state

val initial : state
val catalog : state -> Storage.Catalog.t
val finished : state -> bool
(** True after [.quit]. *)

val exec : state -> string -> state * string
(** Executes one input (command or query); returns the new state and
    the text to display. Never raises: errors come back as text. *)

val help : string
