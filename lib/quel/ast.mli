(** Abstract syntax of the mini-QUEL query language.

    The paper uses QUEL (the INGRES language, \[21\]) for its example
    queries (Figures 1 and 2). A query consists of a [range] clause
    binding tuple variables to relations, a [retrieve] clause giving the
    target list, and an optional [where] clause with the qualification. *)

open Nullrel

type var = string
(** A tuple-variable name ([e], [m], ...). *)

type term =
  | Attr of var * string  (** [e.NAME] *)
  | Const of Value.t  (** A literal: int, float, string or bool. *)

type cond =
  | Cmp of term * Predicate.comparison * term
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type query = {
  ranges : (var * string) list;
      (** [range of e is EMP] clauses, in order. *)
  targets : (var * string) list;
      (** The target list: attribute references to retrieve. *)
  where : cond option;
}

val pp_term : Format.formatter -> term -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> query -> unit

val cond_attrs : cond -> (var * string) list
(** The attribute references mentioned by a qualification (with
    duplicates removed). *)

(** {1 Data manipulation (QUEL's update statements)}

    Updates are defined algebraically in Section 7: appending is union,
    deleting is difference, replacing is a deletion followed by an
    addition. *)

type assignment = string * Value.t
(** [ATTR = literal]; a null literal is not expressible — information
    is removed by saying nothing, not by storing ni explicitly. *)

(** {1 Constraint DDL}

    Declared integrity constraints over the stored catalog, with the
    null semantics of the paper: a unique constraint never treats two
    ni marks as equal, and a foreign key whose local attributes are not
    all total asserts nothing. *)

type ref_action = Restrict | Cascade | Set_null
(** What a delete from the target relation does to total references. *)

type constraint_spec =
  | C_unique of string list  (** [constrain unique REL (A, B)] *)
  | C_not_null of string  (** [constrain notnull REL (A)] *)
  | C_foreign_key of {
      attrs : string list;
      target : string;
      target_attrs : string list;
      on_delete : ref_action;
    }
      (** [constrain fk REL (F) to TARGET (K) on delete cascade] *)

type statement =
  | Retrieve of query
  | Append of { rel : string; values : assignment list }
      (** [append to REL (A = 1, B = "x")] *)
  | Delete of { var : var; rel : string; where : cond option }
      (** [range of v is REL delete v [where ...]] *)
  | Replace of {
      var : var;
      rel : string;
      values : assignment list;
      where : cond option;
    }  (** [range of v is REL replace v (A = 2) [where ...]] *)
  | Constrain of { cname : string option; rel : string; spec : constraint_spec }
      (** Declares a constraint; [as NAME] names it, else one is
          derived. Existing data must satisfy it. *)
  | Unconstrain of { cname : string }  (** Drops a constraint by name. *)

val action_to_string : ref_action -> string
val pp_statement : Format.formatter -> statement -> unit
