open Nullrel

type result = { attrs : Attr.t list; rel : Xrel.t }

type bands = {
  attrs : Attr.t list;
  sure : Relation.t;
  maybe : Relation.t option;
}

type tautology_strategy = Brute_force | Symbolic_first

type ctx = {
  semantics : Semantics.t;
  governor : Exec.t option;
  strategy : tautology_strategy;
  legal : (Tuple.t -> bool) option;
}

let ctx ?semantics ?governor ?(strategy = Symbolic_first) ?legal () =
  let semantics =
    match semantics with Some sem -> sem | None -> Semantics.current ()
  in
  { semantics; governor; strategy; legal }

let target_attr targets (v, a) =
  let same_attr = List.filter (fun (_, a') -> String.equal a a') targets in
  if List.length same_attr <= 1 then Attr.make a else Resolve.prefixed v a

let flip = function
  | Predicate.Eq -> Predicate.Eq
  | Predicate.Neq -> Predicate.Neq
  | Predicate.Lt -> Predicate.Gt
  | Predicate.Gt -> Predicate.Lt
  | Predicate.Le -> Predicate.Ge
  | Predicate.Ge -> Predicate.Le

let rec predicate_of_cond = function
  | Ast.Cmp (Ast.Attr (v, a), cmp, Ast.Attr (w, b)) ->
      Predicate.Cmp_attrs (Resolve.prefixed v a, cmp, Resolve.prefixed w b)
  | Ast.Cmp (Ast.Attr (v, a), cmp, Ast.Const k) ->
      Predicate.Cmp_const (Resolve.prefixed v a, cmp, k)
  | Ast.Cmp (Ast.Const k, cmp, Ast.Attr (v, a)) ->
      Predicate.Cmp_const (Resolve.prefixed v a, flip cmp, k)
  | Ast.Cmp (Ast.Const k1, cmp, Ast.Const k2) ->
      Predicate.Const (Predicate.apply_comparison cmp k1 k2)
  | Ast.And (c1, c2) ->
      Predicate.And (predicate_of_cond c1, predicate_of_cond c2)
  | Ast.Or (c1, c2) -> Predicate.Or (predicate_of_cond c1, predicate_of_cond c2)
  | Ast.Not c -> Predicate.Not (predicate_of_cond c)

(* A range variable's tuples, re-keyed onto prefixed attributes. *)
let prefixed_tuples db (v, rel_name) =
  let _, x = Resolve.relation db rel_name in
  List.map
    (fun r ->
      Tuple.fold
        (fun a value acc -> Tuple.set acc (Resolve.prefixed v (Attr.name a)) value)
        r Tuple.empty)
    (Xrel.to_list x)

let combined_tuples db q =
  Resolve.check db q;
  List.fold_left
    (fun acc range ->
      let tuples = prefixed_tuples db range in
      List.concat_map
        (fun combined ->
          List.filter_map
            (fun r ->
              Exec.tick ();
              Tuple.join combined r)
            tuples)
        acc)
    [ Tuple.empty ] q.Ast.ranges

let output_attrs q = List.map (target_attr q.Ast.targets) q.Ast.targets

let project_row q attrs r =
  List.fold_left2
    (fun acc (v, a) out -> Tuple.set acc out (Tuple.get r (Resolve.prefixed v a)))
    Tuple.empty q.Ast.targets attrs

let project_targets q rows =
  let attrs = output_attrs q in
  { attrs; rel = Xrel.of_list (List.map (project_row q attrs) rows) }

(* The dialect's empty-qualification default comes from the capability
   record, not from a literal: Section 5 reads an absent qualification
   as vacuously satisfied, and [Semantics.conj_empty] pins that for
   every dialect (the regression tests hold this against
   [Tvl.conj []] and the empty-divisor division). *)
let qualification ?(semantics = Semantics.of_dialect Semantics.Ni_lower) q =
  match q.Ast.where with
  | None -> Predicate.Const semantics.Semantics.conj_empty
  | Some c -> predicate_of_cond c

(* Qualification loops charge one tick per candidate row: predicate
   evaluation over the combined tuples is real work the governor must
   see (the joins in [combined_tuples] are charged separately). *)
let ticked keep r =
  Exec.tick ();
  keep r

(* The dialect-parameterized core: one pass over the combined tuples,
   each placed in a band by the dialect's admission rule, then the
   dialect's set discipline applied to the projections. Every entry
   point below is a shim over this. *)
let query ctx db q =
  let sem = ctx.semantics in
  let run () =
    Obs.Span.with_span ("quel.query." ^ sem.Semantics.name) (fun () ->
        let p = qualification ~semantics:sem q in
        let sure_rows, maybe_rows =
          List.fold_left
            (fun (sure, maybe) r ->
              Exec.tick ();
              match sem.Semantics.admit (Semantics.eval sem p r) with
              | Semantics.Sure -> (r :: sure, maybe)
              | Semantics.Maybe -> (sure, r :: maybe)
              | Semantics.Out -> (sure, maybe))
            ([], []) (combined_tuples db q)
        in
        let attrs = output_attrs q in
        let scope = Attr.Set.of_list attrs in
        let project rows =
          List.filter
            (Semantics.admit_tuple sem scope)
            (List.map (project_row q attrs) (List.rev rows))
        in
        let sure =
          let projected = project sure_rows in
          (* Through Xrel so the minimizing dialect pays the kernel
             minimizer (bucketed, parallel-capable), not the naive
             quadratic Relation.minimize — E25 gates this path. *)
          if sem.Semantics.minimize then Xrel.rep (Xrel.of_list projected)
          else Relation.of_list projected
        in
        let maybe =
          if not sem.Semantics.reports_maybe then None
          else
            let band = Relation.of_list (project maybe_rows) in
            Some
              (if sem.Semantics.exclude_sure then
                 Relation.filter (fun r -> not (Relation.mem r sure)) band
               else band)
        in
        { attrs; sure; maybe })
  in
  match ctx.governor with
  | None -> run ()
  | Some g -> Exec.with_governor g run

let run db q =
  let b = query (ctx ~semantics:(Semantics.of_dialect Semantics.Ni_lower) ()) db q in
  { attrs = b.attrs; rel = Xrel.unsafe_of_minimal b.sure }

let run_string db src = run db (Parser.parse src)

let run_maybe db q =
  let b = query (ctx ~semantics:(Semantics.of_dialect Semantics.Codd_maybe) ()) db q in
  let band = match b.maybe with Some m -> m | None -> Relation.empty in
  { attrs = b.attrs; rel = Xrel.of_relation band }

(* Domain of a prefixed attribute [v.A], from [v]'s schema. *)
let domains_for db q =
  let schemas =
    List.map (fun (v, rel) -> (v, fst (Resolve.relation db rel))) q.Ast.ranges
  in
  fun attr ->
    let name = Attr.name attr in
    match String.index_opt name '.' with
    | None -> Exec_error.bad_input ("Eval: unprefixed attribute " ^ name)
    | Some i -> (
        let v = String.sub name 0 i in
        let a = String.sub name (i + 1) (String.length name - i - 1) in
        match List.assoc_opt v schemas with
        | None -> Exec_error.bad_input ("Eval: unknown variable in " ^ name)
        | Some schema -> (
            match Schema.domain schema (Attr.make a) with
            | Some d -> d
            | None -> Exec_error.bad_input ("Eval: unknown attribute " ^ name)))

(* Shared scaffolding for the bounds that must reason about
   substitutions: [decide] gets the compiled predicate, the domain
   oracle and a combined tuple whose qualification evaluated to ni. *)
let run_with_ni_decision db q decide =
  let p = qualification q in
  let domains = domains_for db q in
  let keep r =
    match Predicate.eval p r with
    | Tvl.True -> true
    | Tvl.False -> false
    | Tvl.Ni -> decide p domains r
  in
  let rows = List.filter (ticked keep) (combined_tuples db q) in
  project_targets q rows

let run_upper ?legal db q =
  Obs.Span.with_span "quel.run_upper" (fun () ->
      let legal_fn = Option.value legal ~default:(fun _ -> true) in
      run_with_ni_decision db q (fun p domains r ->
          match (legal, Codd.Tautology.breakpoints_exists p r) with
          | None, Some answer -> answer
          | _ -> Codd.Tautology.brute_force_exists ~domains ~legal:legal_fn p r))

let run_unknown ?(strategy = Symbolic_first) ?legal db q =
  Obs.Span.with_span "quel.run_unknown" (fun () ->
      let p = qualification q in
      let domains = domains_for db q in
      let legal_fn = Option.value legal ~default:(fun _ -> true) in
      let brute r = Codd.Tautology.brute_force ~domains ~legal:legal_fn p r in
      let tautology r =
        match (strategy, legal) with
        (* The symbolic checker cannot see integrity constraints; any
           [legal] forces the brute-force path. *)
        | Brute_force, _ | Symbolic_first, Some _ -> brute r
        | Symbolic_first, None -> (
            match Codd.Tautology.breakpoints p r with
            | Some answer -> answer
            | None -> brute r)
      in
      let keep r =
        match Predicate.eval p r with
        | Tvl.True -> true
        | Tvl.False -> false
        | Tvl.Ni -> tautology r
      in
      let rows = List.filter (ticked keep) (combined_tuples db q) in
      project_targets q rows)
