open Nullrel

type result = { attrs : Attr.t list; rel : Xrel.t }

let target_attr targets (v, a) =
  let same_attr = List.filter (fun (_, a') -> String.equal a a') targets in
  if List.length same_attr <= 1 then Attr.make a else Resolve.prefixed v a

let flip = function
  | Predicate.Eq -> Predicate.Eq
  | Predicate.Neq -> Predicate.Neq
  | Predicate.Lt -> Predicate.Gt
  | Predicate.Gt -> Predicate.Lt
  | Predicate.Le -> Predicate.Ge
  | Predicate.Ge -> Predicate.Le

let rec predicate_of_cond = function
  | Ast.Cmp (Ast.Attr (v, a), cmp, Ast.Attr (w, b)) ->
      Predicate.Cmp_attrs (Resolve.prefixed v a, cmp, Resolve.prefixed w b)
  | Ast.Cmp (Ast.Attr (v, a), cmp, Ast.Const k) ->
      Predicate.Cmp_const (Resolve.prefixed v a, cmp, k)
  | Ast.Cmp (Ast.Const k, cmp, Ast.Attr (v, a)) ->
      Predicate.Cmp_const (Resolve.prefixed v a, flip cmp, k)
  | Ast.Cmp (Ast.Const k1, cmp, Ast.Const k2) ->
      Predicate.Const (Predicate.apply_comparison cmp k1 k2)
  | Ast.And (c1, c2) ->
      Predicate.And (predicate_of_cond c1, predicate_of_cond c2)
  | Ast.Or (c1, c2) -> Predicate.Or (predicate_of_cond c1, predicate_of_cond c2)
  | Ast.Not c -> Predicate.Not (predicate_of_cond c)

(* A range variable's tuples, re-keyed onto prefixed attributes. *)
let prefixed_tuples db (v, rel_name) =
  let _, x = Resolve.relation db rel_name in
  List.map
    (fun r ->
      Tuple.fold
        (fun a value acc -> Tuple.set acc (Resolve.prefixed v (Attr.name a)) value)
        r Tuple.empty)
    (Xrel.to_list x)

let combined_tuples db q =
  Resolve.check db q;
  List.fold_left
    (fun acc range ->
      let tuples = prefixed_tuples db range in
      List.concat_map
        (fun combined ->
          List.filter_map
            (fun r ->
              Exec.tick ();
              Tuple.join combined r)
            tuples)
        acc)
    [ Tuple.empty ] q.Ast.ranges

let project_targets q rows =
  let attrs = List.map (target_attr q.Ast.targets) q.Ast.targets in
  let project r =
    List.fold_left2
      (fun acc (v, a) out ->
        Tuple.set acc out (Tuple.get r (Resolve.prefixed v a)))
      Tuple.empty q.Ast.targets attrs
  in
  { attrs; rel = Xrel.of_list (List.map project rows) }

let qualification q =
  match q.Ast.where with
  | None -> Predicate.Const Tvl.True
  | Some c -> predicate_of_cond c

(* Qualification loops charge one tick per candidate row: predicate
   evaluation over the combined tuples is real work the governor must
   see (the joins in [combined_tuples] are charged separately). *)
let ticked keep r =
  Exec.tick ();
  keep r

let run db q =
  Obs.Span.with_span "quel.run" (fun () ->
      let p = qualification q in
      let rows =
        List.filter (ticked (Predicate.holds p)) (combined_tuples db q)
      in
      project_targets q rows)

let run_string db src = run db (Parser.parse src)

let run_maybe db q =
  Obs.Span.with_span "quel.run_maybe" (fun () ->
      let p = qualification q in
      let rows =
        List.filter
          (ticked (fun r -> Tvl.equal (Predicate.eval p r) Tvl.Ni))
          (combined_tuples db q)
      in
      project_targets q rows)

type tautology_strategy = Brute_force | Symbolic_first

(* Domain of a prefixed attribute [v.A], from [v]'s schema. *)
let domains_for db q =
  let schemas =
    List.map (fun (v, rel) -> (v, fst (Resolve.relation db rel))) q.Ast.ranges
  in
  fun attr ->
    let name = Attr.name attr in
    match String.index_opt name '.' with
    | None -> Exec_error.bad_input ("Eval: unprefixed attribute " ^ name)
    | Some i -> (
        let v = String.sub name 0 i in
        let a = String.sub name (i + 1) (String.length name - i - 1) in
        match List.assoc_opt v schemas with
        | None -> Exec_error.bad_input ("Eval: unknown variable in " ^ name)
        | Some schema -> (
            match Schema.domain schema (Attr.make a) with
            | Some d -> d
            | None -> Exec_error.bad_input ("Eval: unknown attribute " ^ name)))

(* Shared scaffolding for the bounds that must reason about
   substitutions: [decide] gets the compiled predicate, the domain
   oracle and a combined tuple whose qualification evaluated to ni. *)
let run_with_ni_decision db q decide =
  let p = qualification q in
  let domains = domains_for db q in
  let keep r =
    match Predicate.eval p r with
    | Tvl.True -> true
    | Tvl.False -> false
    | Tvl.Ni -> decide p domains r
  in
  let rows = List.filter (ticked keep) (combined_tuples db q) in
  project_targets q rows

let run_upper ?legal db q =
  Obs.Span.with_span "quel.run_upper" (fun () ->
      let legal_fn = Option.value legal ~default:(fun _ -> true) in
      run_with_ni_decision db q (fun p domains r ->
          match (legal, Codd.Tautology.breakpoints_exists p r) with
          | None, Some answer -> answer
          | _ -> Codd.Tautology.brute_force_exists ~domains ~legal:legal_fn p r))

let run_unknown ?(strategy = Symbolic_first) ?legal db q =
  Obs.Span.with_span "quel.run_unknown" (fun () ->
      let p = qualification q in
      let domains = domains_for db q in
      let legal_fn = Option.value legal ~default:(fun _ -> true) in
      let brute r = Codd.Tautology.brute_force ~domains ~legal:legal_fn p r in
      let tautology r =
        match (strategy, legal) with
        (* The symbolic checker cannot see integrity constraints; any
           [legal] forces the brute-force path. *)
        | Brute_force, _ | Symbolic_first, Some _ -> brute r
        | Symbolic_first, None -> (
            match Codd.Tautology.breakpoints p r with
            | Some answer -> answer
            | None -> brute r)
      in
      let keep r =
        match Predicate.eval p r with
        | Tvl.True -> true
        | Tvl.False -> false
        | Tvl.Ni -> tautology r
      in
      let rows = List.filter (ticked keep) (combined_tuples db q) in
      project_targets q rows)
