open Nullrel

type var = string

type term = Attr of var * string | Const of Value.t

type cond =
  | Cmp of term * Predicate.comparison * term
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type query = {
  ranges : (var * string) list;
  targets : (var * string) list;
  where : cond option;
}

let pp_term ppf = function
  | Attr (v, a) -> Format.fprintf ppf "%s.%s" v a
  | Const (Value.Str s) -> Format.fprintf ppf "%S" s
  | Const v -> Value.pp ppf v

let rec pp_cond ppf = function
  | Cmp (t1, cmp, t2) ->
      Format.fprintf ppf "%a %s %a" pp_term t1
        (Predicate.comparison_to_string cmp)
        pp_term t2
  | And (c1, c2) -> Format.fprintf ppf "(%a and %a)" pp_cond c1 pp_cond c2
  | Or (c1, c2) -> Format.fprintf ppf "(%a or %a)" pp_cond c1 pp_cond c2
  | Not c -> Format.fprintf ppf "not %a" pp_cond c

let pp ppf q =
  List.iter
    (fun (v, rel) -> Format.fprintf ppf "range of %s is %s@\n" v rel)
    q.ranges;
  Format.fprintf ppf "retrieve (%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (v, a) -> Format.fprintf ppf "%s.%s" v a))
    q.targets;
  match q.where with
  | Some c -> Format.fprintf ppf "@\nwhere %a" pp_cond c
  | None -> ()

type assignment = string * Value.t

type ref_action = Restrict | Cascade | Set_null

type constraint_spec =
  | C_unique of string list
  | C_not_null of string
  | C_foreign_key of {
      attrs : string list;
      target : string;
      target_attrs : string list;
      on_delete : ref_action;
    }

type statement =
  | Retrieve of query
  | Append of { rel : string; values : assignment list }
  | Delete of { var : var; rel : string; where : cond option }
  | Replace of {
      var : var;
      rel : string;
      values : assignment list;
      where : cond option;
    }
  | Constrain of { cname : string option; rel : string; spec : constraint_spec }
  | Unconstrain of { cname : string }

let pp_assignments ppf values =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (a, v) ->
         match v with
         | Value.Str s -> Format.fprintf ppf "%s = %S" a s
         | v -> Format.fprintf ppf "%s = %a" a Value.pp v))
    values

let pp_where ppf = function
  | None -> ()
  | Some c -> Format.fprintf ppf "@\nwhere %a" pp_cond c

let action_to_string = function
  | Restrict -> "restrict"
  | Cascade -> "cascade"
  | Set_null -> "setnull"

let pp_attr_list ppf attrs =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    attrs

let pp_spec rel ppf = function
  | C_unique attrs -> Format.fprintf ppf "unique %s %a" rel pp_attr_list attrs
  | C_not_null attr ->
      Format.fprintf ppf "notnull %s %a" rel pp_attr_list [ attr ]
  | C_foreign_key { attrs; target; target_attrs; on_delete } ->
      Format.fprintf ppf "fk %s %a to %s %a on delete %s" rel pp_attr_list
        attrs target pp_attr_list target_attrs
        (action_to_string on_delete)

let pp_statement ppf = function
  | Retrieve q -> pp ppf q
  | Append { rel; values } ->
      Format.fprintf ppf "append to %s %a" rel pp_assignments values
  | Delete { var; rel; where } ->
      Format.fprintf ppf "range of %s is %s@\ndelete %s%a" var rel var
        pp_where where
  | Replace { var; rel; values; where } ->
      Format.fprintf ppf "range of %s is %s@\nreplace %s %a%a" var rel var
        pp_assignments values pp_where where
  | Constrain { cname; rel; spec } ->
      Format.fprintf ppf "constrain %a%a" (pp_spec rel) spec
        (fun ppf -> function
          | None -> ()
          | Some name -> Format.fprintf ppf " as %s" name)
        cname
  | Unconstrain { cname } -> Format.fprintf ppf "unconstrain %s" cname

let cond_attrs c =
  let rec go acc = function
    | Cmp (t1, _, t2) ->
        let add acc = function Attr (v, a) -> (v, a) :: acc | Const _ -> acc in
        add (add acc t1) t2
    | And (c1, c2) | Or (c1, c2) -> go (go acc c1) c2
    | Not c -> go acc c
  in
  List.sort_uniq compare (go [] c)
