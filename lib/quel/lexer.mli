(** Tokenizer for mini-QUEL. *)

type token =
  | Ident of string  (** Identifier; may contain [#] as in [TEL#]. *)
  | Int of int
  | Float of float
  | String of string  (** Double-quoted literal. *)
  | Kw_range
  | Kw_of
  | Kw_is
  | Kw_retrieve
  | Kw_where
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_append
  | Kw_to
  | Kw_delete
  | Kw_replace
  | Kw_constrain
  | Kw_unconstrain
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Cmp of Nullrel.Predicate.comparison
  | Eof

exception Error of string * int
(** Lexical error with its character position. *)

val tokenize : string -> token list
(** Tokenizes a query string. Keywords are case-insensitive; identifiers
    keep their case. Raises {!Error} on malformed input. *)

val pp_token : Format.formatter -> token -> unit
