open Nullrel

type kind =
  | Count
  | Sum of Ast.var * string
  | Min of Ast.var * string
  | Max of Ast.var * string

type bounds = { lower : int; upper : int; may_be_empty : bool }

(* Per-row analysis: can the row qualify, can it be excluded, and what
   range can the aggregated value take among qualifying completions? *)
type row_info = {
  can_qualify : bool;
  can_be_excluded : bool;
  vmin : int;  (* meaningful only when can_qualify *)
  vmax : int;
}

(* Aggregating a non-integer column is a query error: classify it as
   bad input so shells and the CLI map it to their usual taxonomy
   (exit 2) instead of an unclassified exception. *)
let int_of_value attr = function
  | Value.Int n -> n
  | v ->
      Exec_error.bad_inputf "%s is %s, not an integer" (Attr.name attr)
        (Value.type_name v)

let analyze_row ~domains ~p ~agg_attr row =
  let relevant =
    match agg_attr with
    | None -> Predicate.attrs p
    | Some a -> Attr.Set.add a (Predicate.attrs p)
  in
  let nulls =
    Attr.Set.filter (fun a -> Value.is_null (Tuple.get row a)) relevant
  in
  if Attr.Set.is_empty nulls then
    (* fast path: everything relevant is bound *)
    let qualifies = Predicate.holds p row in
    let v =
      match agg_attr with
      | Some a when qualifies -> int_of_value a (Tuple.get row a)
      | _ -> 0
    in
    {
      can_qualify = qualifies;
      can_be_excluded = not qualifies;
      vmin = v;
      vmax = v;
    }
  else
    Seq.fold_left
      (fun acc row' ->
        if Predicate.holds p row' then
          let v =
            match agg_attr with
            | Some a -> int_of_value a (Tuple.get row' a)
            | None -> 0
          in
          {
            acc with
            can_qualify = true;
            vmin = min acc.vmin v;
            vmax = max acc.vmax v;
          }
        else { acc with can_be_excluded = true })
      { can_qualify = false; can_be_excluded = false; vmin = max_int; vmax = min_int }
      (Codd.Subst.tuple_substitutions ~domains ~over:nulls row)

let bounds db q kind =
  let p =
    match q.Ast.where with
    | None -> Predicate.Const Tvl.True
    | Some c -> Eval.predicate_of_cond c
  in
  let domains = Eval.domains_for db q in
  let agg_attr =
    match kind with
    | Count -> None
    | Sum (v, a) | Min (v, a) | Max (v, a) -> Some (Resolve.prefixed v a)
  in
  let infos =
    List.filter_map
      (fun row ->
        let info = analyze_row ~domains ~p ~agg_attr row in
        if info.can_qualify then Some info else None)
      (Eval.combined_tuples db q)
  in
  let forced = List.filter (fun i -> not i.can_be_excluded) infos in
  let may_be_empty = forced = [] in
  match kind with
  | Count ->
      { lower = List.length forced; upper = List.length infos; may_be_empty }
  | Sum _ ->
      let lower =
        List.fold_left
          (fun acc i ->
            acc + if i.can_be_excluded then min 0 i.vmin else i.vmin)
          0 infos
      in
      let upper =
        List.fold_left
          (fun acc i ->
            acc + if i.can_be_excluded then max 0 i.vmax else i.vmax)
          0 infos
      in
      { lower; upper; may_be_empty }
  | Min _ ->
      let lower =
        List.fold_left (fun acc i -> min acc i.vmin) max_int infos
      in
      let upper =
        if forced <> [] then
          (* maximize every forced row, exclude everything excludable *)
          List.fold_left (fun acc i -> min acc i.vmax) max_int forced
        else
          (* a non-empty scenario keeps a single, maximized row *)
          List.fold_left (fun acc i -> max acc i.vmax) min_int infos
      in
      { lower; upper; may_be_empty }
  | Max _ ->
      let upper =
        List.fold_left (fun acc i -> max acc i.vmax) min_int infos
      in
      let lower =
        if forced <> [] then
          List.fold_left (fun acc i -> max acc i.vmin) min_int forced
        else List.fold_left (fun acc i -> min acc i.vmin) max_int infos
      in
      { lower; upper; may_be_empty }
