(** Query evaluation (Section 5 and the Appendix), parameterized by a
    semantics dialect.

    The evaluator considers all tuple combinations of the range relations
    (the Cartesian product), evaluates the where clause on each combined
    tuple, and places it in an output band according to the active
    {!Nullrel.Semantics} dialect's admission rule. One core entry point,
    {!query}, serves every dialect; the historical entry points
    ({!run}, {!run_maybe}) remain as shims over it.

    - {!run} / [query] under [Ni_lower]: the paper's strategy —
      three-valued evaluation under the [ni] interpretation, keeping only
      TRUE rows, minimized. This computes the correct lower bound
      [||Q||-] with no tautology machinery.
    - [query] under [Codd_maybe] / [Sql_3vl] / [Certain]: Codd's
      TRUE+MAYBE pair, SQL's 3VL with its UNKNOWN band, and certain
      answers by naive evaluation.
    - {!run_unknown}: the "unknown" interpretation — a combined tuple
      whose qualification evaluates to [ni] is additionally included if
      it {e defines a tautology} (TRUE under every legal substitution of
      its nulls). This is the expensive discipline the Appendix
      dissects; it is not a dialect but a bound, like {!run_upper}. *)

open Nullrel

type result = {
  attrs : Attr.t list;  (** Output columns, in target-list order. *)
  rel : Xrel.t;
}

type bands = {
  attrs : Attr.t list;  (** Output columns, in target-list order. *)
  sure : Relation.t;
      (** The dialect's answer band. Under [Ni_lower] this is the
          minimal representation of [||Q||-]; under the plain-set
          dialects it is the unminimized row set. *)
  maybe : Relation.t option;
      (** The second band of a reporting dialect: Codd's MAYBE rows,
          or SQL's UNKNOWN (MAYBE minus the already-certain answers).
          [None] when the dialect reports a single band. *)
}

type tautology_strategy =
  | Brute_force  (** Enumerate every legal substitution ({!Codd.Tautology.brute_force}). *)
  | Symbolic_first
      (** Try {!Codd.Tautology.breakpoints}; fall back to brute force
          when the symbolic fragment does not apply. *)

type ctx = {
  semantics : Semantics.t;  (** The dialect answering the query. *)
  governor : Exec.t option;
      (** Run under this governor ([Exec.with_governor]) — [None]
          inherits whatever governor is ambient. *)
  strategy : tautology_strategy;
      (** For the substitution-based bounds ({!run_unknown}). *)
  legal : (Tuple.t -> bool) option;
      (** Integrity constraints on fully substituted tuples, for the
          substitution-based bounds. *)
}
(** The evaluation context: one record carrying everything the old
    positional entry points took separately. *)

val ctx :
  ?semantics:Semantics.t ->
  ?governor:Exec.t ->
  ?strategy:tautology_strategy ->
  ?legal:(Tuple.t -> bool) ->
  unit ->
  ctx
(** Context builder. [semantics] defaults to the ambient dialect
    ({!Semantics.current}), [strategy] to {!Symbolic_first}. *)

val query : ctx -> Resolve.db -> Ast.query -> bands
(** The dialect-parameterized core: evaluate the qualification on every
    combined tuple through the context's semantics, admit each into its
    band, project, and apply the dialect's set discipline. Raises
    {!Resolve.Error} on name errors. *)

val target_attr : (Ast.var * string) list -> Ast.var * string -> Attr.t
(** Output column name for a target: the bare attribute name when
    unambiguous in the target list, otherwise [v.A]. *)

val predicate_of_cond : Ast.cond -> Predicate.t
(** Compiles a qualification over combined-tuple attributes ([v.A]).
    Constant-to-constant comparisons fold to a truth value; comparisons
    with the constant on the left are flipped. *)

val combined_tuples : Resolve.db -> Ast.query -> Tuple.t list
(** The Cartesian product of the range relations as combined tuples with
    prefixed attributes. Exposed for the benchmarks. *)

val domains_for : Resolve.db -> Ast.query -> Attr.t -> Domain.t
(** Domain oracle for the prefixed attributes ([v.A] resolves through
    [v]'s schema). Used by the substitution-based evaluators and the
    aggregate bounds. Raises [Invalid_argument] on unknown names. *)

val run : Resolve.db -> Ast.query -> result
(** Lower-bound evaluation under the [ni] interpretation — the
    [Ni_lower] dialect of {!query}, kept as a shim for existing
    callers. Raises {!Resolve.Error} on name errors. *)

val run_string : Resolve.db -> string -> result
(** [run] composed with {!Parser.parse}. *)

val run_maybe : Resolve.db -> Ast.query -> result
(** Codd's MAYBE version of the query — the [Codd_maybe] dialect's
    second band, minimized into an x-relation for compatibility (the
    plain-set band is {!query}'s [maybe]). Disjoint from {!run} before
    projection. The paper's practical complaint — low selectivity at
    full scan cost — is visible directly: with any null-bearing range
    this returns large, weakly informative results. Note this is {e
    not} the upper bound [||Q||+] of Section 5, whose correct
    computation the paper defers (footnote 6); it is the operator
    Codd's systems actually offered. *)

val run_upper :
  ?legal:(Tuple.t -> bool) ->
  Resolve.db ->
  Ast.query ->
  result
(** The upper bound [||Q||+] of Section 5: "the set of objects which may
    possibly satisfy Q (on the basis of the available information, they
    cannot be ruled out)". A combined tuple qualifies when its
    qualification is TRUE, or is [ni] and {e some} legal substitution of
    its nulls makes it TRUE (symbolic single-null decision first,
    brute-force enumeration otherwise — finite domains required on the
    enumerated attributes). The paper notes this bound is "of less
    practical interest and also the source of some difficult problems"
    (footnote 6) — here it is exact for finite domains, and the E8
    benchmark shows what it costs. [run q <= run_upper q] always holds. *)

val run_unknown :
  ?strategy:tautology_strategy ->
  ?legal:(Tuple.t -> bool) ->
  Resolve.db ->
  Ast.query ->
  result
(** Evaluation under the "unknown" interpretation (default strategy
    {!Symbolic_first}). [legal] expresses the schema's integrity
    constraints on fully substituted combined tuples — substitutions
    violating it are not considered (Appendix, query QB); supplying it
    forces the brute-force path, since the symbolic checker cannot see
    constraints. Requires finite domains for the null attributes the
    qualification touches when brute force is engaged. *)
