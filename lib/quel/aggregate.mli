(** Aggregate bounds under incomplete information.

    QUEL had aggregate functions; the paper does not treat them, but its
    Section 5 framework — bracket every answer between what is sure and
    what cannot be ruled out — extends naturally. For a query [Q] and an
    integer aggregate, this module computes exact bounds over {e all
    completions} of the nulls (finite domains required for the
    enumerated attributes):

    - [lower <= agg(Q under sigma) <= upper] for every completion
      [sigma] in which the answer set is non-empty, and both ends are
      attained by some completion;
    - [may_be_empty] reports whether some completion empties the answer
      (in which case COUNT attains 0 and MIN/MAX are undefined there).

    Rows complete independently, so the analysis is per combined tuple:
    for each row we enumerate the completions of the nulls the
    qualification and the aggregated attribute mention, recording
    whether the row can qualify, whether it can be excluded, and the
    range of the aggregated value among qualifying completions. The
    enumeration is exponential in the per-row null count — the same
    price tag the Appendix puts on all substitution reasoning. *)

type kind =
  | Count  (** number of qualifying rows *)
  | Sum of Ast.var * string  (** sum of [v.A] over qualifying rows *)
  | Min of Ast.var * string
  | Max of Ast.var * string

type bounds = { lower : int; upper : int; may_be_empty : bool }

val bounds : Resolve.db -> Ast.query -> kind -> bounds
(** Raises {!Nullrel.Exec_error.Error} ([Bad_input]) when the
    aggregated attribute produces a non-integer value,
    [Domain.Infinite] when an enumerated attribute has an infinite
    domain, and {!Resolve.Error} on name errors. For [Min]/[Max] with
    an answer that is {e always} empty, [lower = max_int] /
    [upper = min_int] respectively (the neutral elements) and
    [may_be_empty = true]. *)
