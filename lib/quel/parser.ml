open Nullrel

exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail_at st what =
  raise
    (Error
       (Format.asprintf "expected %s but found %a" what Lexer.pp_token
          (peek st)))

let expect st tok what =
  if peek st = tok then advance st else fail_at st what

let ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail_at st "an identifier"

let range_clause st =
  expect st Lexer.Kw_range "'range'";
  expect st Lexer.Kw_of "'of'";
  let v = ident st in
  expect st Lexer.Kw_is "'is'";
  let rel = ident st in
  (v, rel)

let target st =
  let v = ident st in
  expect st Lexer.Dot "'.'";
  let a = ident st in
  (v, a)

let term st =
  match peek st with
  | Lexer.Ident _ ->
      let v, a = target st in
      Ast.Attr (v, a)
  | Lexer.Int i ->
      advance st;
      Ast.Const (Value.Int i)
  | Lexer.Float f ->
      advance st;
      Ast.Const (Value.Float f)
  | Lexer.String s ->
      advance st;
      Ast.Const (Value.Str s)
  | _ -> fail_at st "a term"

let rec or_expr st =
  let left = and_expr st in
  if peek st = Lexer.Kw_or then (
    advance st;
    Ast.Or (left, or_expr st))
  else left

and and_expr st =
  let left = not_expr st in
  if peek st = Lexer.Kw_and then (
    advance st;
    Ast.And (left, and_expr st))
  else left

and not_expr st =
  if peek st = Lexer.Kw_not then (
    advance st;
    Ast.Not (not_expr st))
  else atom st

and atom st =
  match peek st with
  | Lexer.Lparen ->
      advance st;
      let c = or_expr st in
      expect st Lexer.Rparen "')'";
      c
  | _ -> (
      let t1 = term st in
      match peek st with
      | Lexer.Cmp cmp ->
          advance st;
          let t2 = term st in
          Ast.Cmp (t1, cmp, t2)
      | _ -> fail_at st "a comparison operator")

let range_clauses st =
  let rec ranges acc =
    if peek st = Lexer.Kw_range then ranges (range_clause st :: acc)
    else List.rev acc
  in
  ranges []

let literal st =
  match peek st with
  | Lexer.Int i ->
      advance st;
      Value.Int i
  | Lexer.Float f ->
      advance st;
      Value.Float f
  | Lexer.String s ->
      advance st;
      Value.Str s
  | _ -> fail_at st "a literal"

let assignments st =
  expect st Lexer.Lparen "'('";
  let rec go acc =
    let a = ident st in
    (match peek st with
    | Lexer.Cmp Predicate.Eq -> advance st
    | _ -> fail_at st "'='");
    let v = literal st in
    if peek st = Lexer.Comma then (
      advance st;
      go ((a, v) :: acc))
    else List.rev ((a, v) :: acc)
  in
  let values = go [] in
  expect st Lexer.Rparen "')'";
  values

let where_opt st =
  if peek st = Lexer.Kw_where then (
    advance st;
    Some (or_expr st))
  else None

let query st =
  let ranges = range_clauses st in
  if ranges = [] then raise (Error "a query needs at least one range clause");
  expect st Lexer.Kw_retrieve "'retrieve'";
  expect st Lexer.Lparen "'('";
  let rec targets acc =
    let t = target st in
    if peek st = Lexer.Comma then (
      advance st;
      targets (t :: acc))
    else List.rev (t :: acc)
  in
  let targets = targets [] in
  expect st Lexer.Rparen "')'";
  let where = where_opt st in
  expect st Lexer.Eof "end of input";
  { Ast.ranges; targets; where }

(* Shared continuation for delete/replace: the target variable must be
   bound by exactly one range clause. *)
let single_range what ranges var =
  match ranges with
  | [ (v, rel) ] when String.equal v var -> rel
  | [ (v, _) ] ->
      raise
        (Error
           (Printf.sprintf "%s targets %s but the range binds %s" what var v))
  | _ ->
      raise
        (Error (what ^ " takes exactly one range clause binding its target"))

(* [constrain]'s sub-syntax uses soft keywords — [unique], [notnull],
   [fk], [on], [restrict], [cascade], [setnull], [as] are ordinary
   identifiers everywhere else, so relations and attributes may still
   carry those names. *)
let attr_list st =
  expect st Lexer.Lparen "'('";
  let rec go acc =
    let a = ident st in
    if peek st = Lexer.Comma then (
      advance st;
      go (a :: acc))
    else List.rev (a :: acc)
  in
  let attrs = go [] in
  expect st Lexer.Rparen "')'";
  attrs

let soft_keyword st what =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      String.lowercase_ascii s
  | _ -> fail_at st what

let constraint_name st =
  match peek st with
  | Lexer.Ident s when String.lowercase_ascii s = "as" ->
      advance st;
      Some (ident st)
  | _ -> None

let constrain_statement st =
  let kind = soft_keyword st "'unique', 'notnull' or 'fk'" in
  let rel = ident st in
  let spec =
    match kind with
    | "unique" -> Ast.C_unique (attr_list st)
    | "notnull" -> (
        match attr_list st with
        | [ a ] -> Ast.C_not_null a
        | _ -> raise (Error "notnull takes exactly one attribute"))
    | "fk" ->
        let attrs = attr_list st in
        expect st Lexer.Kw_to "'to'";
        let target = ident st in
        let target_attrs = attr_list st in
        (match soft_keyword st "'on'" with
        | "on" -> ()
        | _ -> raise (Error "expected 'on delete' after the target"));
        expect st Lexer.Kw_delete "'delete'";
        let on_delete =
          match soft_keyword st "'restrict', 'cascade' or 'setnull'" with
          | "restrict" -> Ast.Restrict
          | "cascade" -> Ast.Cascade
          | "setnull" -> Ast.Set_null
          | other ->
              raise
                (Error
                   (Printf.sprintf
                      "unknown referential action %s (expected restrict, \
                       cascade or setnull)"
                      other))
        in
        Ast.C_foreign_key { attrs; target; target_attrs; on_delete }
    | other ->
        raise
          (Error
             (Printf.sprintf
                "unknown constraint kind %s (expected unique, notnull or fk)"
                other))
  in
  let cname = constraint_name st in
  expect st Lexer.Eof "end of input";
  Ast.Constrain { cname; rel; spec }

let statement st =
  match peek st with
  | Lexer.Kw_constrain ->
      advance st;
      constrain_statement st
  | Lexer.Kw_unconstrain ->
      advance st;
      let cname = ident st in
      expect st Lexer.Eof "end of input";
      Ast.Unconstrain { cname }
  | Lexer.Kw_append ->
      advance st;
      expect st Lexer.Kw_to "'to'";
      let rel = ident st in
      let values = assignments st in
      expect st Lexer.Eof "end of input";
      Ast.Append { rel; values }
  | _ -> (
      let ranges = range_clauses st in
      match peek st with
      | Lexer.Kw_retrieve ->
          if ranges = [] then
            raise (Error "a query needs at least one range clause");
          advance st;
          expect st Lexer.Lparen "'('";
          let rec targets acc =
            let t = target st in
            if peek st = Lexer.Comma then (
              advance st;
              targets (t :: acc))
            else List.rev (t :: acc)
          in
          let targets = targets [] in
          expect st Lexer.Rparen "')'";
          let where = where_opt st in
          expect st Lexer.Eof "end of input";
          Ast.Retrieve { Ast.ranges; targets; where }
      | Lexer.Kw_delete ->
          advance st;
          let var = ident st in
          let rel = single_range "delete" ranges var in
          let where = where_opt st in
          expect st Lexer.Eof "end of input";
          Ast.Delete { var; rel; where }
      | Lexer.Kw_replace ->
          advance st;
          let var = ident st in
          let rel = single_range "replace" ranges var in
          let values = assignments st in
          let where = where_opt st in
          expect st Lexer.Eof "end of input";
          Ast.Replace { var; rel; values; where }
      | _ -> fail_at st "'retrieve', 'delete' or 'replace'")

let parse src = query { toks = Lexer.tokenize src }

let parse_statement src = statement { toks = Lexer.tokenize src }

let parse_cond src =
  let st = { toks = Lexer.tokenize src } in
  let c = or_expr st in
  expect st Lexer.Eof "end of input";
  c
