type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Kw_range
  | Kw_of
  | Kw_is
  | Kw_retrieve
  | Kw_where
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_append
  | Kw_to
  | Kw_delete
  | Kw_replace
  | Kw_constrain
  | Kw_unconstrain
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Cmp of Nullrel.Predicate.comparison
  | Eof

exception Error of string * int

let keyword s =
  match String.lowercase_ascii s with
  | "range" -> Some Kw_range
  | "of" -> Some Kw_of
  | "is" -> Some Kw_is
  | "retrieve" -> Some Kw_retrieve
  | "where" -> Some Kw_where
  | "and" -> Some Kw_and
  | "or" -> Some Kw_or
  | "not" -> Some Kw_not
  | "append" -> Some Kw_append
  | "to" -> Some Kw_to
  | "delete" -> Some Kw_delete
  | "replace" -> Some Kw_replace
  | "constrain" -> Some Kw_constrain
  | "unconstrain" -> Some Kw_unconstrain
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '#'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' when i + 1 >= n || not (is_digit src.[i + 1]) ->
          go (i + 1) (Dot :: acc)
      | '=' -> go (i + 1) (Cmp Nullrel.Predicate.Eq :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
          go (i + 2) (Cmp Nullrel.Predicate.Neq :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
          go (i + 2) (Cmp Nullrel.Predicate.Le :: acc)
      | '<' -> go (i + 1) (Cmp Nullrel.Predicate.Lt :: acc)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
          go (i + 2) (Cmp Nullrel.Predicate.Ge :: acc)
      | '>' -> go (i + 1) (Cmp Nullrel.Predicate.Gt :: acc)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          go (i + 2) (Cmp Nullrel.Predicate.Neq :: acc)
      | '"' ->
          let rec scan j buf =
            if j >= n then raise (Error ("unterminated string", i))
            else if src.[j] = '"' then (j + 1, Buffer.contents buf)
            else (
              Buffer.add_char buf src.[j];
              scan (j + 1) buf)
          in
          let j, s = scan (i + 1) (Buffer.create 16) in
          go j (String s :: acc)
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1]) ->
          let j = ref (i + 1) in
          let seen_dot = ref false in
          while
            !j < n
            && (is_digit src.[!j] || (src.[!j] = '.' && not !seen_dot))
          do
            if src.[!j] = '.' then seen_dot := true;
            incr j
          done;
          let text = String.sub src i (!j - i) in
          (* [int_of_string] rejects literals past max_int with a bare
             [Failure] — user input must surface as a lexer error, not
             an unclassified exception. *)
          let tok =
            if !seen_dot then
              match float_of_string_opt text with
              | Some f -> Float f
              | None -> raise (Error ("bad numeric literal " ^ text, i))
            else
              match int_of_string_opt text with
              | Some k -> Int k
              | None ->
                  raise (Error ("integer literal out of range " ^ text, i))
          in
          go !j (tok :: acc)
      | c when is_ident_start c ->
          let j = ref (i + 1) in
          while !j < n && is_ident_char src.[!j] do
            incr j
          done;
          let text = String.sub src i (!j - i) in
          let tok =
            match keyword text with Some kw -> kw | None -> Ident text
          in
          go !j (tok :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0 []

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Float f -> Format.fprintf ppf "float %g" f
  | String s -> Format.fprintf ppf "string %S" s
  | Kw_range -> Format.pp_print_string ppf "'range'"
  | Kw_of -> Format.pp_print_string ppf "'of'"
  | Kw_is -> Format.pp_print_string ppf "'is'"
  | Kw_retrieve -> Format.pp_print_string ppf "'retrieve'"
  | Kw_where -> Format.pp_print_string ppf "'where'"
  | Kw_and -> Format.pp_print_string ppf "'and'"
  | Kw_or -> Format.pp_print_string ppf "'or'"
  | Kw_not -> Format.pp_print_string ppf "'not'"
  | Kw_append -> Format.pp_print_string ppf "'append'"
  | Kw_to -> Format.pp_print_string ppf "'to'"
  | Kw_delete -> Format.pp_print_string ppf "'delete'"
  | Kw_replace -> Format.pp_print_string ppf "'replace'"
  | Kw_constrain -> Format.pp_print_string ppf "'constrain'"
  | Kw_unconstrain -> Format.pp_print_string ppf "'unconstrain'"
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Dot -> Format.pp_print_string ppf "'.'"
  | Cmp c ->
      Format.fprintf ppf "'%s'" (Nullrel.Predicate.comparison_to_string c)
  | Eof -> Format.pp_print_string ppf "end of input"
