(** Crash-safe saving and loading of a catalog directory.

    Each relation [NAME] is stored as two files:
    - [NAME.schema] — a line-oriented, tab-separated description:
      {v
      relation <TAB> NAME
      column <TAB> ATTR <TAB> int|float|string|bool
      column <TAB> ATTR <TAB> intrange <TAB> LO <TAB> HI
      column <TAB> ATTR <TAB> enum <TAB> V1 <TAB> V2 ...
      key <TAB> ATTR ...
      fk <TAB> TARGET <TAB> LOCAL <TAB> REFERENCED [<TAB> LOCAL <TAB> REFERENCED ...]
      v}
    - [NAME.csv] — the relation in the {!Csv} dialect ([-] for nulls),
      written in the schema's column order.

    On top of those sits a [MANIFEST] naming every relation with the
    CRC-32 of both files, a format version and the journal position
    (LSN) the checkpoint reflects:
    {v
    nullrel-manifest <TAB> 1 <TAB> LSN
    relation <TAB> NAME <TAB> SCHEMA-CRC <TAB> DATA-CRC
    ...
    end <TAB> CRC            (of every preceding byte — a torn
                              manifest is detected, not misread)
    v}

    {!save} is atomic per file and ordered so that a crash at {e any}
    point leaves a recoverable directory: every file is written to a
    [*.tmp] sibling and fsynced before being renamed into place; the
    next manifest is staged as [MANIFEST.next] {e before} any data file
    is renamed and promoted to [MANIFEST] {e after} all of them, so a
    reader can always tell a half-renamed checkpoint (file matches
    [MANIFEST.next]) from corruption (file matches neither).

    A [STATS] file rides along with the checkpoint: the {!Stats}
    serialization of every relation's {e fresh} statistics, each entry
    stamped with the CRC of the data file it describes, closed by the
    same self-checksum trailer as the manifest. The loader attaches an
    entry only when its stamp matches the data file actually loaded
    and does so {e before} journal replay, so replayed mutations leave
    the stats observably stale (see {!Catalog.stats_status}). Statistics
    are pure acceleration state: a missing, torn or superseded [STATS]
    file silently yields a catalog without stats, never a load failure.

    An [INDEX] file rides along the same way: every secondary-index
    declaration ([decl] lines), a per-relation CRC stamp cut against
    the data file written beside it ([stamp] lines), and a positional
    dump of each built structure ([line] lines referring to tuples by
    their canonical position), closed by the self-checksum trailer:
    {v
    nullrel-indexes <TAB> 1 <TAB> LSN
    decl <TAB> REL <TAB> hash|range <TAB> ATTR[,ATTR...]
    stamp <TAB> REL <TAB> DATA-CRC
    line <TAB> REL <TAB> KIND <TAB> ATTRS <TAB> PAYLOAD
    end <TAB> CRC
    v}
    The loader re-attaches a dump ({!Catalog.restore_index}) only while
    its stamp matches the data file actually loaded — skipping the
    build entirely — and degrades to a from-scratch rebuild of the
    declaration on a stale stamp, missing dump, or any payload anomaly:
    slower, never wrong. Attachment happens {e before} journal replay,
    so replayed deltas advance the restored indexes exactly as live
    statements would. A damaged [INDEX] file (torn trailer, checksum
    mismatch) loses the declarations themselves; like CONSTRAINTS
    damage this is reported in the journal note rather than silently
    degraded, since the declarations affect planning.

    {!load_report} degrades gracefully: a corrupt, truncated or
    checksum-mismatched relation is quarantined with a reason instead of
    aborting the whole catalog, and committed journal records
    ({!Wal}) past the checkpoint are replayed. {!recover} additionally
    repairs the directory: it rewrites a clean checkpoint and empties
    the journal.

    Loading re-validates every relation against its schema
    ({!Catalog.add}); cross-relation references are {e not} checked at
    load time — call {!Catalog.check_references} afterwards. Legacy
    directories without a [MANIFEST] still load (without checksum
    verification). *)

exception Error of string

type status =
  | Ok  (** Checksums verified (or legacy file parsed cleanly). *)
  | Corrupt of string  (** Quarantined: the reason it was rejected. *)
  | Recovered of int
      (** Loaded, then brought up to date by replaying this many
          journal records. *)

type report = {
  catalog : Catalog.t;
      (** Every relation that loaded ([Ok] or [Recovered]); quarantined
          relations are absent. *)
  statuses : (string * status) list;  (** Per relation, sorted by name. *)
  lsn : int;  (** The journal position the catalog reflects. *)
  journal_note : string option;
      (** Set when the journal had a torn or corrupt tail, or records
          that could not be replayed. *)
}

val save : ?io:Io.t -> ?lsn:int -> dir:string -> Catalog.t -> unit
(** Writes a full checkpoint of every relation plus the [MANIFEST]
    (default [lsn] 0). Creates [dir] if needed; overwrites existing
    files for the saved names, leaves other files alone (though only
    manifest-listed relations are loaded back). *)

val load_report : ?io:Io.t -> dir:string -> unit -> report
(** Read-only: loads what it can, quarantines what it cannot, replays
    the committed journal tail in memory. Raises {!Error} only if the
    directory itself is missing or the manifest claims an unsupported
    format version. *)

val load : ?io:Io.t -> dir:string -> unit -> Catalog.t
(** {!load_report}, raising {!Error} if any relation was quarantined.
    Replayed journal records ([Recovered]) are not an error. *)

val recover : ?io:Io.t -> dir:string -> unit -> report
(** {!load_report}, then repairs the directory: writes a fresh
    checkpoint of the surviving catalog at the recovered LSN, empties
    the journal and removes stale [*.tmp] staging files. Quarantined
    relations keep their on-disk files (for post-mortems) but are no
    longer listed in the manifest. *)

val manifest_crcs :
  ?io:Io.t -> dir:string -> unit -> (string * (string * string)) list
(** The primary [MANIFEST]'s per-relation (schema CRC, data CRC) stamps
    as hex strings, in manifest order. Empty when the directory has no
    readable manifest — sysview renders that absence as [ni]. *)

val pp_status : Format.formatter -> status -> unit
val report_lines : report -> string list
(** Human-readable per-relation lines ("EMP: ok", "SP: quarantined —
    ..."), plus the journal note — what the shell prints for [.open]
    and [.fsck]. *)

val schema_to_string : Nullrel.Schema.t -> string
val schema_of_string : string -> Nullrel.Schema.t
(** The [NAME.schema] format, exposed for tests and tooling. *)
