let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let digest ?(init = 0) s =
  let table = Lazy.force table in
  let c = ref (init lxor 0xffffffff) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let to_hex n = Printf.sprintf "%08x" (n land 0xffffffff)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some n when n >= 0 && n <= 0xffffffff -> Some n
    | _ -> None
