open Nullrel

let op_counter =
  let tbl = Hashtbl.create 4 in
  fun op direction ->
    match Hashtbl.find_opt tbl (op, direction) with
    | Some c -> c
    | None ->
        let c =
          Obs.Metrics.counter
            ~labels:[ ("op", op); ("direction", direction) ]
            ~help:"Tuples flowing into and out of algebra operators"
            "nullrel_operator_tuples_total"
        in
        Hashtbl.add tbl (op, direction) c;
        c

let observed2 op x1 x2 result =
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.add (op_counter op "in") (Xrel.cardinal x1 + Xrel.cardinal x2);
    Obs.Metrics.add (op_counter op "out") (Xrel.cardinal result)
  end;
  result

let default_index : (module Index_intf.S) = (module Hash_index.Equi)

let chunk_grain = 256

let chunk_count n =
  let d = Par.Pool.domains () in
  min n (max (4 * d) ((n + chunk_grain - 1) / chunk_grain))

(* Probe-side join: each probe tuple looks up its bucket and attempts
   the tuple joins. [tick] is charged once per probe and once per
   attempted join — [Exec.tick] directly when sequential, a local
   count drained by the coordinator when a worker runs the chunk. *)
let join_chunk ~probe probes ~tick lo hi =
  let acc = ref Relation.empty in
  for j = lo to hi - 1 do
    let t1 = probes.(j) in
    tick ();
    List.iter
      (fun t2 ->
        tick ();
        match Tuple.join t1 t2 with
        | Some joined -> acc := Relation.add joined !acc
        | None -> ())
      (probe t1)
  done;
  !acc

let probe_core strategy probe r1 =
  let probes = Array.of_list (Xrel.to_list r1) in
  let n = Array.length probes in
  let parallel =
    match strategy with
    | Kernel.Parallel -> n > 1 && Par.Pool.parallelizable ()
    | Kernel.Auto ->
        n >= Kernel.parallel_cutover && Par.Pool.parallelizable ()
    | Kernel.Sequential | Kernel.Indexed -> false
  in
  if not parallel then
    join_chunk ~probe probes ~tick:(fun () -> Exec.tick ()) 0 n
  else begin
    (* Probe-side chunks against the shared read-only bucket table;
       per-chunk partial relations are merged by set union, so chunk
       boundaries and merge order cannot change the result. *)
    let chunks = chunk_count n in
    let parts = Array.make chunks Relation.empty in
    let ticks = Atomic.make 0 in
    Par.Pool.run ~chunks
      ~progress:(fun () -> Exec.drain_ticks ticks)
      (fun c ->
        let lo = c * n / chunks and hi = (c + 1) * n / chunks in
        let cost = ref 0 in
        parts.(c) <-
          join_chunk ~probe probes ~tick:(fun () -> incr cost) lo hi;
        ignore (Atomic.fetch_and_add ticks !cost));
    Exec.drain_ticks ticks;
    Array.fold_left Relation.union Relation.empty parts
  end

let equijoin_core strategy index x r1 r2 =
  let (module I : Index_intf.S) = index in
  let idx = I.build x r2 in
  probe_core strategy (I.probe idx) r1

let hash_equijoin ?(strategy = Kernel.Auto) ?(index = default_index) x r1 r2 =
  observed2 "hash-equijoin" r1 r2
    (Xrel.of_relation (equijoin_core strategy index x r1 r2))

(* Same probe loop against a pre-built index probe (a declared
   secondary index served by the catalog): the build side is never
   materialized, so the cost is the probe side plus the output. *)
let observed_probe op r1 result =
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.add (op_counter op "in") (Xrel.cardinal r1);
    Obs.Metrics.add (op_counter op "out") (Xrel.cardinal result)
  end;
  result

let probe_equijoin ?(strategy = Kernel.Indexed) ~probe r1 =
  observed_probe "probe-equijoin" r1
    (Xrel.of_relation (probe_core strategy probe r1))

let hash_union_join ?strategy ?index x r1 r2 =
  observed2 "hash-union-join" r1 r2
    (Xrel.union (hash_equijoin ?strategy ?index x r1 r2) (Xrel.union r1 r2))
