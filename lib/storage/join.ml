open Nullrel

(* Bucket an operand's X-total tuples by their canonical X-restriction. *)
let partition x rel =
  let table = Hashtbl.create (Xrel.cardinal rel) in
  List.iter
    (fun r ->
      if Tuple.is_total_on x r then begin
        let key = Tuple.to_list (Tuple.restrict r x) in
        Hashtbl.replace table key
          (r :: Option.value (Hashtbl.find_opt table key) ~default:[])
      end)
    (Xrel.to_list rel);
  table

let op_counter =
  let tbl = Hashtbl.create 4 in
  fun op direction ->
    match Hashtbl.find_opt tbl (op, direction) with
    | Some c -> c
    | None ->
        let c =
          Obs.Metrics.counter
            ~labels:[ ("op", op); ("direction", direction) ]
            ~help:"Tuples flowing into and out of algebra operators"
            "nullrel_operator_tuples_total"
        in
        Hashtbl.add tbl (op, direction) c;
        c

let observed2 op x1 x2 result =
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.add (op_counter op "in") (Xrel.cardinal x1 + Xrel.cardinal x2);
    Obs.Metrics.add (op_counter op "out") (Xrel.cardinal result)
  end;
  result

let hash_equijoin x r1 r2 =
  let buckets2 = partition x r2 in
  let joined =
    List.fold_left
      (fun acc t1 ->
        if not (Tuple.is_total_on x t1) then acc
        else
          let key = Tuple.to_list (Tuple.restrict t1 x) in
          List.fold_left
            (fun acc t2 ->
              match Tuple.join t1 t2 with
              | Some j -> Relation.add j acc
              | None -> acc)
            acc
            (Option.value (Hashtbl.find_opt buckets2 key) ~default:[]))
      Relation.empty (Xrel.to_list r1)
  in
  observed2 "hash-equijoin" r1 r2 (Xrel.of_relation joined)

let hash_union_join x r1 r2 =
  observed2 "hash-union-join" r1 r2
    (Xrel.union (hash_equijoin x r1 r2) (Xrel.union r1 r2))
