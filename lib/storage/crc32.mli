(** CRC-32 (the IEEE 802.3 / zlib polynomial, reflected, table-driven).

    Checksums guard every durable artifact: the {!Binary} trailer, the
    per-relation entries of the {!Persist} [MANIFEST], and each
    {!Wal} journal frame. The digest is kept as a plain non-negative
    [int] in [0 .. 2^32-1] (OCaml ints are 63-bit, so this is exact). *)

val digest : ?init:int -> string -> int
(** [digest s] is the CRC-32 of [s]. [?init] feeds a previous digest
    back in, so [digest ~init:(digest a) b = digest (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width lowercase ["%08x"] rendering. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] on anything that is not 8 hex digits. *)
