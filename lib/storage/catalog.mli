(** A catalog of named relations with schema enforcement.

    Functional (persistent) — updating returns a new catalog, mirroring
    the algebraic definition of updates in Section 7. *)

open Nullrel

type t

exception Violation of Schema.violation list
(** Raised by the checked update operations. *)

val empty : t

val add : t -> Schema.t -> Xrel.t -> t
(** Registers (or replaces) a relation under its schema's name. Raises
    {!Violation} if the relation violates the schema. *)

val add_unchecked : t -> Schema.t -> Xrel.t -> t

val find : t -> string -> (Schema.t * Xrel.t) option
val get : t -> string -> Schema.t * Xrel.t
(** Like {!find} but raises [Not_found]. *)

val relation : t -> string -> Xrel.t
val schema : t -> string -> Schema.t
val names : t -> string list
val mem : t -> string -> bool
val remove : t -> string -> t

val set_relation : t -> string -> Xrel.t -> t
(** Replaces the relation stored under a name, re-checking its schema. *)

val to_db : t -> (string * (Schema.t * Xrel.t)) list
(** Export in the shape the {!Quel.Resolve} evaluator consumes. *)

(** {1 Statistics}

    Each relation carries an internal data version, bumped by every
    write ({!add} over an existing name, {!set_relation} — including
    journal replay during recovery). Stats set through {!set_stats}
    are stamped with the version current at that moment and count as
    fresh only while no write has happened since; a mutation
    invalidates them implicitly, with no path that forgets to. *)

type stats_status =
  | Fresh of Stats.table  (** Collected against the current data. *)
  | Stale of Stats.table  (** The relation changed since collection. *)
  | Missing  (** Never analyzed (or unknown relation). *)

val stats_status : t -> string -> stats_status

val stats : t -> string -> Stats.table option
(** Fresh stats only; [None] when stale or missing. *)

val set_stats : t -> string -> Stats.table -> t
(** Stamps and stores; no-op on an unknown name. *)

val clear_stats : t -> string -> t

type reference_violation = {
  relation : string;  (** Referencing relation. *)
  fk : Schema.foreign_key;
  tuple : Tuple.t;  (** The dangling referencing tuple. *)
}

val pp_reference_violation : Format.formatter -> reference_violation -> unit

val check_references : t -> reference_violation list
(** Referential integrity across the whole catalog, with the null
    semantics of {!Schema.foreign_key}: a referencing tuple that is
    null on {e any} foreign-key attribute asserts nothing and passes; a
    total reference must be matched, for sure, by some tuple of the
    target relation. A foreign key whose target relation is absent
    flags every total reference. *)
