(** A catalog of named relations with schema enforcement.

    Functional (persistent) — updating returns a new catalog, mirroring
    the algebraic definition of updates in Section 7. *)

open Nullrel

type t

exception Violation of Schema.violation list
(** Raised by the checked update operations. *)

val empty : t

val add : t -> Schema.t -> Xrel.t -> t
(** Registers (or replaces) a relation under its schema's name. Raises
    {!Violation} if the relation violates the schema. *)

val add_unchecked : t -> Schema.t -> Xrel.t -> t

val find : t -> string -> (Schema.t * Xrel.t) option
val get : t -> string -> Schema.t * Xrel.t
(** Like {!find} but raises [Not_found]. *)

val relation : t -> string -> Xrel.t
val schema : t -> string -> Schema.t
val names : t -> string list
val mem : t -> string -> bool
val remove : t -> string -> t

val set_relation : t -> string -> Xrel.t -> t
(** Replaces the relation stored under a name, re-checking its schema.
    Declared constraints stay verified — the caller is responsible for
    having enforced them ({!enforce}). A write of the {e identical}
    relation is a no-op: the entry (memoized subsumption index,
    secondary indexes, statistics stamp) is kept untouched. Prefer
    {!apply_delta} when the statement's delta is known — it maintains
    minimality and the indexes incrementally instead of rebuilding. *)

val apply_delta :
  t ->
  string ->
  added:Tuple.t list ->
  removed:Tuple.t list ->
  t * (Tuple.Set.t * Tuple.Set.t)
(** The incremental DML write path. Removes [removed] (tuples not
    present are ignored; removing from an antichain needs no repair),
    then admits each tuple of [added] by the Section 7 insert
    discipline: reject it if some stored tuple already subsumes it,
    otherwise admit it and evict the stored tuples it strictly
    subsumes — one bounded index probe per tuple, never a full
    re-minimize. The entry's subsumption index and every declared
    secondary index are {e advanced} by the statement's net delta and
    survive the write. Returns the new catalog and the net
    [(added, removed)] tuple sets actually applied — the seeds
    constraint enforcement consumes. When the net delta is empty the
    catalog is returned unchanged (no version bump, stats stay
    fresh). Raises {!Violation} (and leaves the catalog unchanged) if
    an admitted tuple breaks its schema: domains and entity integrity
    per tuple, key uniqueness by one probe of the key restriction.
    Raises [Not_found] on an unknown name. *)

val probe_index : t -> string -> Nullrel.Subsume_index.t option
(** A subsumption index over the relation's current minimal
    representation, built lazily at most once per write — the probe
    side of incremental constraint enforcement. *)

(** {1 Secondary indexes}

    Declared equi-probe indexes ([hash] or [range]) live in the entry
    beside the data they accelerate. They are advanced in place by
    {!apply_delta}, rebuilt by wholesale replacement, and persisted by
    {!Persist} under the same CRC-stamp freshness protocol as
    statistics: re-attach on stamp match, degrade to rebuild, never
    wrong. *)

val index_kinds : string list
(** The declarable kinds: [["hash"; "range"]]. *)

val create_index : t -> string -> kind:string -> Attr.Set.t -> t
(** Declares and builds an index. Idempotent on an identical
    declaration. Raises [Exec_error] on an unknown relation or kind,
    on attributes outside the schema, or (for [range]) on a key of
    more than one attribute. *)

val drop_index : t -> string -> kind:string -> Attr.Set.t -> t
(** No-op on an unknown declaration. *)

val indexes : t -> string -> (string * Attr.Set.t * int) list
(** The declared indexes of one relation: kind, attributes, indexed
    cardinality. *)

val all_indexes : t -> (string * string * Attr.Set.t) list
(** Every declaration in the catalog: relation, kind, attributes. *)

val equi_probe : t -> string -> Attr.Set.t -> (Tuple.t -> Tuple.t list) option
(** An equality probe over the named relation on exactly these
    attributes, served by a declared index of any kind; [None] when no
    index covers them. *)

val has_equi : t -> string -> Attr.Set.t -> bool

val dump_index : t -> string -> kind:string -> Attr.Set.t -> string list option
(** Serializes a declared index as text lines referring to tuples by
    canonical position ([Xrel.to_list] order) — the {!Persist} INDEX
    payload. [None] when the declaration is absent or inconsistent. *)

val restore_index :
  t -> string -> kind:string -> Attr.Set.t -> lines:string list option -> t * bool
(** Re-declares an index from a persisted dump. [lines = Some _]
    attempts a positional re-attach and falls back to a from-scratch
    build on any anomaly; [None] (stale or damaged payload) builds
    directly. Returns whether the dump was attached verbatim. Skips
    silently (catalog unchanged, [false]) when the relation or its
    attributes no longer exist — a persisted declaration is never a
    source of truth. *)

val to_db : t -> (string * (Schema.t * Xrel.t)) list
(** Export in the shape the {!Quel.Resolve} evaluator consumes. *)

(** {1 Statistics}

    Each relation carries an internal data version, bumped by every
    write ({!add} over an existing name, {!set_relation} — including
    journal replay during recovery). Stats set through {!set_stats}
    are stamped with the version current at that moment and count as
    fresh only while no write has happened since; a mutation
    invalidates them implicitly, with no path that forgets to. *)

type stats_status =
  | Fresh of Stats.table  (** Collected against the current data. *)
  | Stale of Stats.table  (** The relation changed since collection. *)
  | Missing  (** Never analyzed (or unknown relation). *)

val stats_status : t -> string -> stats_status

val stats : t -> string -> Stats.table option
(** Fresh stats only; [None] when stale or missing. *)

val set_stats : t -> string -> Stats.table -> t
(** Stamps and stores; no-op on an unknown name. *)

val clear_stats : t -> string -> t

(** {1 Constraints}

    Declared integrity constraints ({!Constr.def}) live in the catalog
    beside the relations they govern. A declaration fully verifies the
    current data (the TLA+ [Add*Constraint] precondition); afterwards
    the DML layer keeps them satisfied incrementally through
    {!enforce}. A wholesale replacement of a relation ({!add} over an
    existing name — the shell's [.load]) marks every constraint
    involving it {e unverified}: still enforced on new writes, but the
    bulk-loaded data itself has not been checked — mirroring the stats
    Fresh/Stale protocol. *)

val constraints : t -> Constr.def list
(** In declaration order. *)

val constraint_def : t -> string -> Constr.def option

val add_constraint : t -> Constr.def -> t
(** Verifies the current data satisfies the definition (raises
    {!Constr.Error} with the first violation otherwise), then attaches
    it. A definition with the same name is replaced. *)

val attach_constraint : ?verified:bool -> t -> Constr.def -> t
(** Attaches without verification — the journal-replay and
    checkpoint-load path ("replay re-enforces rather than re-checks").
    [~verified:false] records it as unverified. *)

val drop_constraint : t -> string -> t
(** No-op on an unknown name. *)

val unverified_constraints : t -> string list
(** Names whose last verification predates the data. *)

val revalidate_constraints : t -> t * (string * Constr.violation) list
(** Re-runs full verification on every unverified constraint; the ones
    that pass are marked verified, the violations of the rest are
    returned (those stay unverified). *)

val enforce_env : t -> Constr.env
(** The catalog as an enforcement environment: relation lookup, lazy
    probe indexes, primary keys. *)

val enforce : t -> Constr.delta list -> Constr.delta list
(** {!Constr.enforce} against this catalog's state and declarations. *)

val verify_constraint : t -> Constr.def -> Constr.violation list

type reference_violation = {
  relation : string;  (** Referencing relation. *)
  fk : Schema.foreign_key;
  tuple : Tuple.t;  (** The dangling referencing tuple. *)
}

val pp_reference_violation : Format.formatter -> reference_violation -> unit

val check_references : t -> reference_violation list
(** Referential integrity across the whole catalog, with the null
    semantics of {!Schema.foreign_key}: a referencing tuple that is
    null on {e any} foreign-key attribute asserts nothing and passes; a
    total reference must be matched, for sure, by some tuple of the
    target relation. A foreign key whose target relation is absent
    flags every total reference. Declared {!Constr.Foreign_key}
    constraints are included alongside the schema-level ones. *)
