exception Injected_fault of string

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  append_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  fsync_dir : string -> unit;
  note : string -> unit;
      (* Protocol narration: durable protocols announce named points
         ("group-commit:fsynced", ...) so {!crash_at} can kill the
         modelled process exactly there. [ignore] on {!real}. *)
}

(* --------------------------- real ----------------------------- *)

let m_fsyncs =
  Obs.Metrics.counter ~help:"fsync calls issued by the storage layer"
    "storage_fsyncs_total"

let m_retries =
  Obs.Metrics.counter
    ~help:"Transient Sys_error retries performed by Io.retrying"
    "storage_io_retries_total"

let fsync_fd fd =
  Obs.Metrics.inc m_fsyncs;
  try Unix.fsync fd with Unix.Unix_error _ -> ()

(* Everything in {!real} raises [Sys_error] like the stdlib does, so
   callers (the shell in particular) need one exception story. *)
let sys_error path = function
  | Unix.Unix_error (err, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message err))
  | e -> raise e

let write_channel path flags contents =
  match
    let fd = Unix.openfile path flags 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = String.length contents in
        let written = ref 0 in
        while !written < len do
          written :=
            !written
            + Unix.write_substring fd contents !written (len - !written)
        done;
        fsync_fd fd)
  with
  | () -> ()
  | exception e -> sys_error path e

let real =
  {
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    write_file =
      (fun path contents ->
        write_channel path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] contents);
    append_file =
      (fun path contents ->
        write_channel path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] contents);
    rename = Sys.rename;
    remove = Sys.remove;
    mkdir = (fun path -> Sys.mkdir path 0o755);
    readdir = Sys.readdir;
    file_exists = Sys.file_exists;
    fsync_dir =
      (fun path ->
        match Unix.openfile path [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            fsync_fd fd;
            (try Unix.close fd with Unix.Unix_error _ -> ()));
    note = ignore;
  }

(* ----------------------- fault injection ---------------------- *)

type fault = Fail | Truncate | Short_write

let faulty ~fault ~after base =
  let ops = ref 0 in
  (* [mutating name apply] runs one mutating operation: pass-through
     before the fault point, the configured fault at it, a plain crash
     after it. [partial] is the side effect the fault leaves behind. *)
  let mutating name ?(partial = fun () -> ()) apply =
    let n = !ops in
    incr ops;
    if n < after then apply ()
    else if n = after then begin
      (match fault with
      | Fail -> ()
      | Truncate | Short_write -> partial ());
      raise
        (Injected_fault (Printf.sprintf "fault injected at op %d (%s)" n name))
    end
    else
      raise
        (Injected_fault
           (Printf.sprintf "operation %d (%s) after injected crash" n name))
  in
  let prefix contents =
    match fault with
    | Truncate -> ""
    | _ -> String.sub contents 0 (String.length contents / 2)
  in
  {
    read_file = base.read_file;
    write_file =
      (fun path contents ->
        mutating "write_file"
          ~partial:(fun () -> base.write_file path (prefix contents))
          (fun () -> base.write_file path contents));
    append_file =
      (fun path contents ->
        mutating "append_file"
          ~partial:(fun () -> base.append_file path (prefix contents))
          (fun () -> base.append_file path contents));
    rename =
      (fun src dst -> mutating "rename" (fun () -> base.rename src dst));
    remove = (fun path -> mutating "remove" (fun () -> base.remove path));
    mkdir = (fun path -> mutating "mkdir" (fun () -> base.mkdir path));
    readdir = base.readdir;
    file_exists = base.file_exists;
    fsync_dir = (fun path -> mutating "fsync_dir" (fun () -> base.fsync_dir path));
    note = base.note;
  }

(* ---------------------- named crash points --------------------- *)

let crash_at ~point base =
  let dead = ref false in
  let guard name f x =
    if !dead then
      raise
        (Injected_fault
           (Printf.sprintf "operation %s after crash at %s" name point))
    else f x
  in
  {
    (* Reads pass through so a post-mortem can inspect the debris. *)
    read_file = base.read_file;
    readdir = base.readdir;
    file_exists = base.file_exists;
    write_file = (fun p c -> guard "write_file" (base.write_file p) c);
    append_file = (fun p c -> guard "append_file" (base.append_file p) c);
    rename = (fun s d -> guard "rename" (base.rename s) d);
    remove = (fun p -> guard "remove" base.remove p);
    mkdir = (fun p -> guard "mkdir" base.mkdir p);
    fsync_dir = (fun p -> guard "fsync_dir" base.fsync_dir p);
    note =
      (fun p ->
        base.note p;
        if (not !dead) && String.equal p point then begin
          dead := true;
          raise (Injected_fault ("crash injected at point " ^ point))
        end);
  }

(* ----------------------- transient faults --------------------- *)

let flaky ~failures base =
  let left = ref failures in
  let fallible name f x =
    if !left > 0 then begin
      decr left;
      raise (Sys_error (name ^ ": transient fault (injected)"))
    end
    else f x
  in
  {
    base with
    read_file = (fun p -> fallible "read_file" base.read_file p);
    write_file = (fun p c -> fallible "write_file" (base.write_file p) c);
    append_file = (fun p c -> fallible "append_file" (base.append_file p) c);
    rename = (fun s d -> fallible "rename" (base.rename s) d);
    remove = (fun p -> fallible "remove" base.remove p);
    mkdir = (fun p -> fallible "mkdir" base.mkdir p);
    fsync_dir = (fun p -> fallible "fsync_dir" base.fsync_dir p);
  }

(* Distinct default seed per wrapper: colliding sessions each carry
   their own [retrying] wrapper, so their backoff sequences must not
   share phase — identical jitter would retry in lockstep and collide
   again (a thundering herd). *)
let next_retry_seed = Atomic.make 1

(* A tiny 48-bit LCG (Java's [Random] constants): deterministic for a
   given seed, good enough to decorrelate sleep schedules. *)
let lcg_next state =
  state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  (* top 24 of the 48 state bits as a float in [0, 1) *)
  float_of_int (!state lsr 24) /. 16777216.

let retrying ?(attempts = 3) ?(backoff = 0.002) ?seed
    ?(sleep = fun d -> try Unix.sleepf d with Unix.Unix_error _ -> ()) base =
  let attempts = max 1 attempts in
  let seed =
    match seed with
    | Some s -> s
    | None -> Atomic.fetch_and_add next_retry_seed 1
  in
  let rng = ref (seed lxor 0x9E3779B9) in
  let retry f x =
    let rec go n delay =
      match f x with
      | v -> v
      | exception Sys_error msg ->
          (* Only [Sys_error] is considered transient. [Injected_fault]
             models a crashed process and must propagate untouched, or
             the crash-matrix tests would observe phantom retries. *)
          if n + 1 >= attempts then
            Nullrel.Exec_error.storage_fault
              (Printf.sprintf "%s (after %d attempts)" msg attempts)
          else begin
            Obs.Metrics.inc m_retries;
            (* Exponential backoff with seeded jitter: sleep a uniform
               fraction in [1/2, 1] of the nominal delay, so two
               wrappers that failed together drift apart instead of
               hammering the same contended resource in lockstep. *)
            sleep (delay *. (0.5 +. (0.5 *. lcg_next rng)));
            go (n + 1) (Float.min (delay *. 2.) 0.05)
          end
    in
    go 0 backoff
  in
  {
    base with
    read_file = (fun p -> retry base.read_file p);
    write_file = (fun p c -> retry (base.write_file p) c);
    append_file = (fun p c -> retry (base.append_file p) c);
    rename = (fun s d -> retry (base.rename s) d);
    remove = (fun p -> retry base.remove p);
    mkdir = (fun p -> retry base.mkdir p);
    fsync_dir = (fun p -> retry base.fsync_dir p);
  }

let counting base =
  let ops = ref 0 in
  let count f x =
    incr ops;
    f x
  in
  ( {
      base with
      write_file = (fun p c -> count (base.write_file p) c);
      append_file = (fun p c -> count (base.append_file p) c);
      rename = (fun s d -> count (base.rename s) d);
      remove = count base.remove;
      mkdir = count base.mkdir;
      fsync_dir = count base.fsync_dir;
    },
    fun () -> !ops )
