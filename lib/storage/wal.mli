(** The write-ahead journal: whole transactions as serialized operation
    lists.

    Section 7 defines every update algebraically, so the effect of any
    statement on a relation is captured exactly by two antichains of
    tuples: the rows its minimal representation gained and the rows it
    lost. A {!change} stores precisely that (re-using {!Binary}'s
    encoding), which makes replay {e exact}: applying a change to the
    pre-state reproduces the post-state byte for byte, because a subset
    of a minimal representation is itself minimal and therefore survives
    the encode/decode roundtrip unchanged.

    A {!record} is one {e atomic transaction}: the list of relation
    changes a statement produced — including every cascade and set-null
    delta its constraints fired — plus any constraint DDL, in a single
    frame. The frame is the atomicity unit of the journal: {!read}
    returns whole frames only, so a crash mid-append can never surface
    half a cascade; the torn tail drops the entire transaction.

    The journal file is [DIR/wal], a sequence of frames:
    {v
    frame ::= payload-length:4 bytes LE  payload  crc32(payload):4 bytes LE
    payload ::= lsn:8 bytes LE  op-count:4 bytes LE  op*
    op ::= 'C'  rel-name-block  added-block:Binary  removed-block:Binary
         | 'A'  constraint-def-line-block
         | 'D'  constraint-name-block
    block ::= length:4 bytes LE  bytes
    v}
    A frame is committed once {!append} returns (the write is fsynced).
    {!read} returns the longest valid prefix of frames; a torn tail —
    the signature of a crash mid-append — is reported, not raised. *)

open Nullrel

type change = {
  rel : string;  (** The relation the operation touched. *)
  added : Xrel.t;  (** Rows the minimal representation gained. *)
  removed : Xrel.t;  (** Rows the minimal representation lost. *)
}

type op =
  | Change of change
  | Add_constraint of Constr.def  (** Constraint DDL rides the journal. *)
  | Drop_constraint of string

type record = {
  lsn : int;  (** Log sequence number, strictly increasing from 1. *)
  ops : op list;  (** The whole transaction, in application order. *)
}

exception Error of string
(** Raised by {!apply} when a record does not fit the catalog. *)

val file : dir:string -> string
(** [DIR/wal]. *)

val change : rel:string -> before:Xrel.t -> after:Xrel.t -> change
(** The exact difference of two states of one relation. *)

val change_is_noop : change -> bool

val delta : lsn:int -> rel:string -> before:Xrel.t -> after:Xrel.t -> record
(** A single-change transaction record. *)

val is_noop : record -> bool
(** True when the record changes nothing (every op a no-op change; DDL
    ops never are). *)

val rels : record -> string list
(** The relations the record's changes touch, sorted, deduplicated. *)

val apply_op : ?verify_constraints:bool -> Catalog.t -> op -> Catalog.t
(** Replays one operation. [Change] splices the delta into the
    relation's minimal representation. [Add_constraint] attaches the
    definition — {e without} re-verifying the data by default (replay
    re-enforces rather than re-checks: the original commit verified
    it); pass [~verify_constraints:true] to fully verify instead (the
    session layer's speculative apply does, so a concurrent commit that
    broke a just-validated declaration is caught, raising
    {!Constr.Error}). Raises {!Error} if a change's relation is not in
    the catalog, and {!Catalog.Violation} if the spliced relation fails
    its schema — both mean the journal does not belong to this
    catalog. *)

val apply : ?verify_constraints:bool -> Catalog.t -> record -> Catalog.t
(** {!apply_op} over the whole transaction, in order. *)

val append : io:Io.t -> dir:string -> record -> unit
(** Appends one frame, fsynced; the commit point of a durable update. *)

val append_batch : io:Io.t -> dir:string -> record list -> unit
(** Appends every frame in one [append_file] call — one fsync for the
    whole batch, the group-commit primitive. The frames are bytewise
    identical to [List.iter (append ...)], so {!read} cannot tell
    batched commits from individual ones; a crash mid-append leaves a
    torn {e tail} (some prefix of the batch committed whole, the rest
    gone), exactly like a torn single append. No-op on the empty
    list. *)

val read : io:Io.t -> dir:string -> record list * string option
(** All committed records, in order, plus a description of the torn or
    corrupt tail if the file does not end cleanly (never raises — the
    valid prefix is always returned). A missing journal is
    [([], None)]. *)

val reset : io:Io.t -> dir:string -> unit
(** Empties the journal (atomically, via rename) after a checkpoint. *)
