(** The write-ahead journal: DML effects as serialized x-relation
    deltas.

    Section 7 defines every update algebraically, so the effect of any
    statement on a relation is captured exactly by two antichains of
    tuples: the rows its minimal representation gained and the rows it
    lost. A {!record} stores precisely that (re-using {!Binary}'s
    encoding), which makes replay {e exact}: applying a record to the
    pre-state reproduces the post-state byte for byte, because a subset
    of a minimal representation is itself minimal and therefore survives
    the encode/decode roundtrip unchanged.

    The journal file is [DIR/wal], a sequence of frames:
    {v
    frame ::= payload-length:4 bytes LE  payload  crc32(payload):4 bytes LE
    payload ::= lsn:8 bytes LE
                rel-name-length:4 bytes LE  rel-name
                added-length:4 bytes LE     added:Binary
                removed-length:4 bytes LE   removed:Binary
    v}
    A frame is committed once {!append} returns (the write is fsynced).
    {!read} returns the longest valid prefix of frames; a torn tail —
    the signature of a crash mid-append — is reported, not raised. *)

open Nullrel

type record = {
  lsn : int;  (** Log sequence number, strictly increasing from 1. *)
  rel : string;  (** The relation the statement touched. *)
  added : Xrel.t;  (** Rows the minimal representation gained. *)
  removed : Xrel.t;  (** Rows the minimal representation lost. *)
}

exception Error of string
(** Raised by {!apply} when a record does not fit the catalog. *)

val file : dir:string -> string
(** [DIR/wal]. *)

val delta : lsn:int -> rel:string -> before:Xrel.t -> after:Xrel.t -> record
(** The exact difference of two states of one relation. *)

val is_noop : record -> bool
(** True when the record changes nothing (both deltas empty). *)

val apply : Catalog.t -> record -> Catalog.t
(** Replays one record: splices the delta into the relation's minimal
    representation. Raises {!Error} if the relation is not in the
    catalog, and {!Catalog.Violation} if the spliced relation fails its
    schema — both mean the journal does not belong to this catalog. *)

val append : io:Io.t -> dir:string -> record -> unit
(** Appends one frame, fsynced; the commit point of a durable update. *)

val append_batch : io:Io.t -> dir:string -> record list -> unit
(** Appends every frame in one [append_file] call — one fsync for the
    whole batch, the group-commit primitive. The frames are bytewise
    identical to [List.iter (append ...)], so {!read} cannot tell
    batched commits from individual ones; a crash mid-append leaves a
    torn {e tail} (some prefix of the batch committed whole, the rest
    gone), exactly like a torn single append. No-op on the empty
    list. *)

val read : io:Io.t -> dir:string -> record list * string option
(** All committed records, in order, plus a description of the torn or
    corrupt tail if the file does not end cleanly (never raises — the
    valid prefix is always returned). A missing journal is
    [([], None)]. *)

val reset : io:Io.t -> dir:string -> unit
(** Empties the journal (atomically, via rename) after a checkpoint. *)
