open Nullrel

(** The one signature through which {!Join} (and future physical
    operators) select an equi-probe index, instead of hard-coding
    calls into a concrete index module.

    An implementation indexes the X-total tuples of a relation by
    their X-restriction; {!probe} answers "which indexed tuples agree
    with this one on X". Tuples null somewhere on X never participate
    in an equijoin (Section 5), so they are absent from the index and
    probing with one returns []. *)
module type S = sig
  type t

  val kind : string
  (** Short name for dispatch logs and error messages. *)

  val build : Attr.Set.t -> Xrel.t -> t
  (** [build x rel] indexes the X-total tuples of [rel]. The result is
      immutable after build: probing from {!Par.Pool} workers is a
      pure read. May raise [Exec_error] if the implementation cannot
      index on [x] (e.g. a sorted index needs a single attribute). *)

  val cardinal : t -> int
  (** Indexed (X-total) tuples. *)

  val probe : t -> Tuple.t -> Tuple.t list
  (** [probe idx r]: the indexed tuples whose X-restriction equals
      [r]'s. [] when [r] is not total on X. *)
end
