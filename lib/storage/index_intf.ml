open Nullrel

(** The one signature through which {!Join} (and future physical
    operators) select an equi-probe index, instead of hard-coding
    calls into a concrete index module.

    An implementation indexes the X-total tuples of a relation by
    their X-restriction; {!probe} answers "which indexed tuples agree
    with this one on X". Tuples null somewhere on X never participate
    in an equijoin (Section 5), so they are absent from the index and
    probing with one returns []. *)
module type S = sig
  type t

  val kind : string
  (** Short name for dispatch logs and error messages. *)

  val build : Attr.Set.t -> Xrel.t -> t
  (** [build x rel] indexes the X-total tuples of [rel]. The result is
      immutable after build: probing from {!Par.Pool} workers is a
      pure read. May raise [Exec_error] if the implementation cannot
      index on [x] (e.g. a sorted index needs a single attribute). *)

  val cardinal : t -> int
  (** Indexed (X-total) tuples. *)

  val probe : t -> Tuple.t -> Tuple.t list
  (** [probe idx r]: the indexed tuples whose X-restriction equals
      [r]'s. [] when [r] is not total on X. *)

  val advance : t -> added:Tuple.t list -> removed:Tuple.t list -> t
  (** [advance idx ~added ~removed] is the index over the relation with
      [removed] taken out and then [added] put in — a statement delta,
      applied without rebuilding. The result shares [idx]'s bulk
      structure through a small functional overlay; [idx] itself is
      unchanged, so snapshots pinned by older catalog entries keep
      probing their own view. Idempotent: tuples already absent (for
      [removed]) or present (for [added]) are ignored. The overlay is
      folded into a fresh base once it outgrows about the square root
      of the indexed cardinality. *)

  val dump : t -> pos:(Tuple.t -> int option) -> string list option
  (** [dump idx ~pos] serializes the index as text lines referring to
      tuples by their position in the relation's canonical enumeration
      ([Xrel.to_list] order), as given by [pos]. Lines contain no tabs
      or newlines. [None] if some indexed tuple has no position (the
      index does not match the relation) — callers then skip
      persistence rather than write a wrong file. *)

  val restore : Attr.Set.t -> Tuple.t array -> string list -> t option
  (** [restore x arr lines] re-attaches an index dumped by {!dump},
      resolving positions against [arr] (the relation's canonical
      enumeration). [None] on any structural anomaly — out-of-range
      position, malformed line, tuple not total on X — in which case
      the caller degrades to {!build}. Only sound when [arr] is the
      same enumeration [dump] saw; the persistence layer guarantees
      that with a CRC stamp over the data file. *)
end
