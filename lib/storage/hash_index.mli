(** Hash-accelerated subsumption probes.

    The paper notes after (4.6)-(4.8) that the naive implementations of
    difference and reduction to minimal form are quadratic, and that
    "more sophisticated techniques, such as combinatorial hashing, can
    provide more efficient solutions". This module is that technique:
    tuples are bucketed by their restriction to the probe's attribute
    set, so the inner universal quantification of (4.8) becomes an
    expected-constant-time lookup.

    The key observation: [t >= r] iff [t] agrees with [r] on [attrs r] —
    in particular [t] is total on [attrs r] and its restriction there
    equals [r]. So all subsumption probes for tuples with non-null
    attribute set [pi] are answered by one hash table keyed on
    [pi]-restrictions, shared across the (usually few) null patterns of
    the data. Tables are built lazily, one per distinct probe
    signature.

    The implementation lives in {!Nullrel.Subsume_index} (so
    {!Nullrel.Kernel} can dispatch to it); this module re-exports it
    and adds the {!Equi} equality-probe index used by {!Join}. *)

open Nullrel

type t
(** An index over a relation: an immutable probe-table base plus a
    functional overlay of tuples added/removed since the base was
    built. *)

val build : Relation.t -> t
(** Indexes a relation from scratch. O(n) now; probe tables are built
    on first use. *)

val advance : t -> added:Tuple.t list -> removed:Tuple.t list -> t
(** [advance idx ~added ~removed] is the index over the relation with
    [removed] taken out and then [added] put in, sharing [idx]'s probe
    tables through a functional overlay. Idempotent on tuples already
    absent/present; O(delta · log n) plus an amortized O(sqrt n)
    compaction share. [idx] itself is unchanged. *)

val prepare : t -> Tuple.t list -> unit
(** Force-builds the probe table of every signature occurring in the
    given probes, so subsequent probing is a pure read (required
    before sharing the index across {!Par.Pool} domains). *)

val count_at : t -> Tuple.t -> int
(** [count_at idx r]: how many indexed tuples are more informative than
    or equal to [r] (i.e. agree with [r] on [attrs r]). *)

val subsuming_exists : t -> Tuple.t -> bool
(** [count_at idx r > 0] — is [r] an x-element of the indexed relation? *)

val strictly_subsuming_exists : t -> Tuple.t -> bool
(** Is some indexed tuple {e strictly} more informative than [r]? When
    [r] itself is indexed this is [count_at idx r >= 2] (distinct set
    elements with equal restrictions must differ elsewhere); otherwise it
    checks the candidates directly. *)

val mem : t -> Tuple.t -> bool
(** Exact membership of the indexed relation (not subsumption). *)

val cardinal : t -> int
(** Number of indexed tuples. *)

val subsumed_within : t -> Tuple.t -> Tuple.t list
(** The indexed tuples strictly less informative than the probe —
    exactly what an insert must evict to keep the relation minimal. *)

val to_list : t -> Tuple.t list
(** The indexed tuples, in no particular order. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Indexed difference per (4.8): keeps the minuend tuples with no
    subsuming tuple in the subtrahend. Expected O(|R1| + |R2|), vs the
    naive O(|R1| x |R2|) of [Xrel.diff]. *)

val minimize : Relation.t -> Relation.t
(** Indexed reduction to minimal form (Definition 4.6). Expected
    O(n x s) with [s] the number of distinct null patterns. Agrees with
    [Relation.minimize]. *)

module Equi : Index_intf.S
(** Equality probes for the equijoin: X-total tuples bucketed by their
    canonical X-restriction. Expected-O(1) probes on any attribute
    set. *)
