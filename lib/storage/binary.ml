open Nullrel

exception Corrupt of string

let corrupt msg = raise (Corrupt msg)
let magic = "NRX2"

(* ------------------------- encoding --------------------------- *)

(* The int is treated as an unsigned 63-bit pattern: logical shifts make
   the loop terminate even when zigzag wraps to a negative OCaml int
   (e.g. for max_int). *)
let add_varint buf n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let add_string_pfx buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_value buf = function
  | Value.Int n ->
      Buffer.add_char buf '\x00';
      add_varint buf (zigzag n)
  | Value.Float f ->
      Buffer.add_char buf '\x01';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_char buf '\x02';
      add_string_pfx buf s
  | Value.Bool b ->
      Buffer.add_char buf '\x03';
      Buffer.add_char buf (if b then '\x01' else '\x00')
  | Value.Null ->
      (* Documented internal assert, deliberately not an Exec_error:
         Tuple's canonical form drops null bindings before they reach
         the encoder, so this is unreachable from any user input. *)
      invalid_arg "Binary.add_value: ni is never stored"

let encode x =
  let tuples = Xrel.to_list x in
  (* attribute dictionary: every attribute appearing in any tuple *)
  let dict =
    Attr.Set.elements
      (List.fold_left
         (fun acc r -> Attr.Set.union acc (Tuple.attrs r))
         Attr.Set.empty tuples)
  in
  let index_of =
    let table = Hashtbl.create 16 in
    List.iteri (fun idx a -> Hashtbl.replace table (Attr.name a) idx) dict;
    fun a ->
      (* The dictionary is derived from these very tuples, so a miss
         means the in-memory value is inconsistent — surface it as the
         classified integrity error, not a bare [Not_found] that
         callers cannot tell from a lookup bug. *)
      match Hashtbl.find_opt table (Attr.name a) with
      | Some idx -> idx
      | None ->
          corrupt
            (Printf.sprintf "attribute %s missing from the dictionary"
               (Attr.name a))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  add_varint buf (List.length dict);
  List.iter (fun a -> add_string_pfx buf (Attr.name a)) dict;
  add_varint buf (List.length tuples);
  List.iter
    (fun r ->
      let bindings = Tuple.to_list r in
      add_varint buf (List.length bindings);
      List.iter
        (fun (a, v) ->
          add_varint buf (index_of a);
          add_value buf v)
        bindings)
    tuples;
  (* checksum trailer: CRC-32 of everything before it, little-endian *)
  let crc = Crc32.digest (Buffer.contents buf) in
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * k)) land 0xff))
  done;
  Buffer.contents buf

(* ------------------------- decoding --------------------------- *)

type cursor = { data : string; mutable pos : int }

let byte cur =
  if cur.pos >= String.length cur.data then corrupt "truncated input";
  let c = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_varint cur =
  let rec go shift acc =
    if shift > 62 then corrupt "varint too long";
    let b = byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_bytes cur n =
  if cur.pos + n > String.length cur.data then corrupt "truncated input";
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let read_string_pfx cur = read_bytes cur (read_varint cur)

let read_value cur =
  match byte cur with
  | 0x00 -> Value.Int (unzigzag (read_varint cur))
  | 0x01 ->
      let bits = read_bytes cur 8 in
      let n = ref 0L in
      for k = 7 downto 0 do
        n := Int64.logor (Int64.shift_left !n 8) (Int64.of_int (Char.code bits.[k]))
      done;
      Value.Float (Int64.float_of_bits !n)
  | 0x02 -> Value.Str (read_string_pfx cur)
  | 0x03 -> Value.Bool (byte cur <> 0)
  | tag -> corrupt (Printf.sprintf "unknown value tag 0x%02x" tag)

let decode data =
  let cur = { data; pos = 0 } in
  if read_bytes cur 4 <> magic then corrupt "bad magic";
  let dict_len = read_varint cur in
  (* Every dictionary entry and tuple costs at least one byte, so a
     count exceeding the input length is corruption — reject it before
     [Array.init]/[List.init] turn it into an allocation failure. *)
  if dict_len > String.length data then corrupt "implausible dictionary length";
  let dict = Array.init dict_len (fun _ -> Attr.make (read_string_pfx cur)) in
  let tuple_count = read_varint cur in
  if tuple_count > String.length data then corrupt "implausible tuple count";
  let read_tuple () =
    let bindings = read_varint cur in
    let rec go k acc =
      if k = 0 then acc
      else
        let idx = read_varint cur in
        if idx >= dict_len then corrupt "attribute index out of range";
        let v = read_value cur in
        go (k - 1) (Tuple.set acc dict.(idx) v)
    in
    go bindings Tuple.empty
  in
  let tuples = List.init tuple_count (fun _ -> read_tuple ()) in
  if String.length data - cur.pos < 4 then corrupt "missing checksum trailer";
  let payload_len = cur.pos in
  let trailer = read_bytes cur 4 in
  if cur.pos <> String.length data then corrupt "trailing bytes";
  let stored = ref 0 in
  for k = 3 downto 0 do
    stored := (!stored lsl 8) lor Char.code trailer.[k]
  done;
  let computed = Crc32.digest (String.sub data 0 payload_len) in
  if !stored <> computed then
    corrupt
      (Printf.sprintf "checksum mismatch (stored %s, computed %s)"
         (Crc32.to_hex !stored) (Crc32.to_hex computed));
  Xrel.of_list tuples

let write_file path x =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode x))

let read_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode data
